let table ~header ~rows ppf =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m r ->
        match List.nth_opt r c with
        | Some s -> max m (String.length s)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row r =
    List.mapi (fun c w -> pad (Option.value (List.nth_opt r c) ~default:"") w) widths
    |> String.concat "  "
  in
  let sep =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf ppf "%s@.%s@." (render_row header) sep;
  List.iter (fun r -> Format.fprintf ppf "%s@." (render_row r)) rows

let ratio measured base =
  if base = 0. || Float.is_nan measured || Float.is_nan base then "-"
  else Printf.sprintf "%.2fx" (measured /. base)

let pct_change ~base v =
  if base = 0. || Float.is_nan v then "-"
  else Printf.sprintf "%+.0f%%" ((v -. base) /. base *. 100.)

(* Nearest-rank percentile: the q-quantile of n samples is the
   ceil(q*n)-th smallest (1-based), clamped into range so q=0.0 reads
   the minimum and q=1.0 the maximum.  The previous truncating
   [int_of_float (q *. float (n - 1))] biased high quantiles low on
   small sample sets (p99 of 10 samples returned the 9th, not the 10th),
   and [Array.sort compare] paid polymorphic-compare dispatch per
   element.  [Obs.Hist.quantile] follows this same convention over its
   log buckets (rank ceil(q*n), 1-based), so exact and bucketed
   quantiles agree to within the bucket error and are regression-tested
   against each other in test_obs.ml. *)
let percentiles samples qs =
  if Array.length samples = 0 then []
  else begin
    let sorted = Array.copy samples in
    Array.sort Int.compare sorted;
    let n = Array.length sorted in
    List.map
      (fun q ->
        let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
        let ix = min (n - 1) (max 0 (rank - 1)) in
        (q, sorted.(ix)))
      qs
  end
