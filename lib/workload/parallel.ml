(* Multicore fan-out for independent simulation cells.

   Every cell the harness runs — a Table 1 (variant, seed) pair, one
   sweep point, one fault-campaign crash — is a pure function of its
   config: it builds its own Pmem, Scheduler and RNGs and shares no
   mutable state with any other cell.  That makes the sweep suites
   embarrassingly parallel, and [map] fans them across OCaml 5 domains
   with a bounded worker pool.  Results are collected positionally, so
   the output list is always in input order: [map ~jobs:n f xs] returns
   the same value for every [n], and [~jobs:1] does not spawn domains at
   all — it is literally [List.map]. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (f items.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          go ()
        end
      in
      go ()
    in
    (* The calling domain is one of the workers, so [jobs] bounds the
       total concurrency, not the number of extra domains. *)
    let helpers =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    (* Ordered collection; like List.map, the first failing item (in
       input order, not completion order) determines the exception. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let run_all ?jobs thunks = map ?jobs (fun f -> f ()) thunks
