(** YCSB-style workload mixes over the persistent maps.

    The paper's microbenchmark fixes one operation mix; real key-value
    evaluations standardise on the YCSB core workloads with a Zipfian
    request distribution.  This module adds both, so the TSP overhead
    story can be read at the operating points practitioners expect:

    - A: update heavy (50% read / 50% update)
    - B: read mostly (95% read / 5% update)
    - C: read only
    - F: read-modify-write (50% read / 50% atomic RMW)

    Updates overwrite existing records (the working set is pre-loaded);
    no workload here inserts, so the record count is an invariant the
    verifier checks after crashes. *)

type preset = A | B | C | F

val preset_to_string : preset -> string
val preset_of_string : string -> (preset, string) result
val all_presets : preset list

val read_fraction : preset -> float
val rmw_fraction : preset -> float

(** {1 Zipfian request distribution}

    The standard Gray et al. rejection-free generator with
    [theta = 0.99], as used by YCSB itself: rank 0 is the hottest key. *)

module Zipf : sig
  type t

  val create : ?theta:float -> n:int -> unit -> t
  (** Precomputes the harmonic normalisers for [n] items.
      [theta = 0.] is accepted as the uniform degenerate case (every
      rank equally likely).
      @raise Invalid_argument unless [0 <= theta < 1] and [n > 0]. *)

  val sample : t -> Sched.Sim_rng.t -> int
  (** A rank in [\[0, n)], skewed toward small ranks. *)

  val n : t -> int
  val theta : t -> float
end

type op = Read | Update | Rmw

val pick_op : preset -> Sched.Sim_rng.t -> op
(** Draw the next operation per the preset's mix. *)
