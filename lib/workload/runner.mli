(** End-to-end experiment driver: build a simulated machine, run the
    Section 5.1 workload on it, optionally crash it, recover, verify.

    A run proceeds through the phases a real experiment would:

    + format the NVM region (heap in front, undo-log region at the end),
      build the map, pre-populate it, and persist the initial state;
    + spawn the worker threads under the deterministic scheduler with the
      device's step hook wired to it;
    + run to completion — or to the injected crash point, at which every
      thread is abandoned mid-operation;
    + on a crash: let the TSP policy decide the device's crash behaviour
      for the configured hardware and failure class (rescue vs. discard),
      then recover: re-attach the heap, run Atlas rollback (mutex
      variants), run the recovery GC, and audit the heap;
    + dump the map and check the workload's invariants. *)

type variant = Machine.variant =
  | Mutex_map of Atlas.Mode.t  (** the separate-chaining hash table *)
  | Mutex_btree of Atlas.Mode.t
      (** the Atlas-fortified B+-tree: an extension beyond the paper's
          two structures, whose node splits are large critical sections *)
  | Nonblocking_map  (** the lock-free skip list *)
  | Nvtraverse_map
      (** the NVTraverse-transformed skip list: unflushed traversal,
          O(1) flushes in the critical update window *)
  | Delayfree_map
      (** the delay-free recoverable-CAS table: announced CASes a crash
          leaves re-executable exactly once *)

type workload =
  | Counters of { h_keys : int; preload : bool }
      (** the 3-step iteration of Section 5.1 *)
  | Mixed of { h_keys : int; read_pct : int }
      (** Section 5.1 iterations diluted with read-only iterations:
          [read_pct]%% of iterations perform three gets instead of three
          stores.  Reads are never logged or flushed, so fortification
          overhead falls with the write density (experiment E12). *)
  | Wide of { h_keys : int; value_words : int }
      (** every iteration rewrites all [value_words] words of one value:
          a multi-store update that can tear without rollback even under
          a TSP crash — durability of the store prefix is not atomicity
          (experiment E13; mutex variants only) *)
  | Ycsb of { preset : Ycsb.preset; records : int }
      (** YCSB core mixes (A/B/C/F) with a Zipfian request distribution
          over a pre-loaded record set; records are value-congruent to
          their keys so crashes are detectable *)
  | Transfers of { accounts : int; initial_balance : int }
      (** bank transfers: multi-store critical sections (mutex variants
          only) *)

type config = {
  platform : Nvm.Config.t;
  variant : variant;
  workload : workload;
  threads : int;
  iterations : int;  (** per thread *)
  seed : int;
  crash_at_step : int option;
  populate_objects : int;
      (** extra map entries pre-loaded via {!Populate} before the
          workload runs (0 = none) — ballast for the recovery-at-scale
          experiments.  The workload preload overwrites its own keys
          afterwards, so invariants are unaffected; the region is grown
          to fit ({!Populate.sized_spec}). *)
  recovery_mode : Machine.recovery_mode;
      (** how a crashed run recovers; non-eager modes use the streamed
          analytic cost model.  The driver always drives an incremental
          collection to completion before dumping, so results are final
          whatever the mode. *)
  hardware : Tsp_core.Hardware.t;
  failure : Tsp_core.Failure_class.t;
  fault_model : Nvm.Fault_model.t option;
      (** [None]: the crash follows the TSP verdict (rescue or discard),
          exactly the paper's binary semantics.  [Some fm]: the crash is
          executed under the adversarial model [fm] instead, with its
          randomness drawn from a seed-derived stream so the run stays
          reproducible. *)
  journal : bool;  (** record store history for the recovery observer *)
  n_buckets : int;
  log_mib : int;  (** undo-log region size *)
  atlas_costs : Atlas.Runtime.costs;
  cost_jitter : int;  (** per-step cost jitter, for interleaving diversity *)
  iter_cycles : int;  (** charged per workload iteration (loop overhead) *)
  hash_op_cycles : int;  (** per-operation charge of the hash map *)
  skip_op_cycles : int;  (** per-operation charge of the skip list *)
  record_latency : bool;
      (** collect per-operation latency samples (YCSB workload only) *)
  instrument :
    (Sched.Scheduler.t -> Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops)
    option;
      (** interpose on the map's operation interface after construction —
          the hook point for the durable-linearizability history recorder
          ({!Check.History.wrap}) and for mutation harnesses.  The wrapped
          ops are invoked only from inside simulated threads; population
          ([set_plain]) and recovery-time dumps bypass it.  [None] (the
          default) leaves the run bit-identical to an uninstrumented
          build. *)
  tracer : Obs.Tracer.t option;
      (** attach an {!Obs.Tracer} to the run: device ops, undo-log
          appends, OCS boundaries, context switches, the crash and each
          recovery phase emit packed events with virtual-clock
          timestamps and dirty-line exposure samples.  Tracing reads
          simulation state but never mutates it — no RNG draws, no
          cycles, no allocation — so a traced run's simulated cycles
          are byte-identical to an untraced one's. *)
  quantum : bool;
      (** (default [true]) let the scheduler grant batched-execution
          quanta, so bursts of uncontended loads/stores charge the
          thread clock without re-entering the scheduler.  A host-speed
          knob only: steps, clocks, interleavings, crash points, traces
          and histories are bit-identical with it on or off (the
          [quantum_batching] bench cell and [test_quantum.ml] assert
          this). *)
  deterministic_slice : int;
      (** (default {!Sched.Scheduler.default_slice}) the scheduler's
          inline-step slice; [0] reproduces the historical
          suspend-per-step execution (and starves quantum grants, whose
          budgets never exceed the slice).  Host-speed only, like
          [quantum]. *)
}

val default_config : config
(** Desktop platform, unfortified mutex map, counter workload, 8 threads,
    no crash. *)

val calibrated_config : Nvm.Config.t -> config
(** [default_config] specialised to [platform], with the per-platform
    charges (lock cost, logging cost, per-op CPU overhead) solved so the
    counter workload lands at the paper's Table 1 operating point.  The
    variant ordering and every qualitative claim hold with uncalibrated
    charges too; calibration only matches the absolute numbers. *)

type crash_report = {
  verdict : Tsp_core.Policy.verdict;
  observer : Tsp_core.Recovery_observer.verdict option;
  atlas_recovery : Atlas.Recovery.report option;
  gc : Pheap.Heap_gc.stats option;
  gc_quarantine : Pheap.Heap_gc.quarantine option;
      (** what the graceful recovery GC had to give up on (see
          {!Pheap.Heap_gc.collect_graceful}); present whenever [gc] is *)
  recovery_verdict : Atlas.Recovery.verdict;
      (** the whole recovery pipeline's structured verdict: [Clean] when
          every stage trusted all of the image, [Degraded] with one
          reason per discounted part, [Unrecoverable] when the heap
          could not even be attached *)
  heap_audit_ok : bool;
  recovery_errors : string list;
  recovery_cycles : int;
      (** simulated cycles spent on the whole recovery pipeline (log
          scan, rollback, GC, audit) — the procrastinator's bill *)
  rescued_lines : int;
      (** dirty cache lines the crash-time TSP rescue wrote back *)
  rescue_bill : Tsp_core.Crash_executor.execution;
      (** the executed crash-time actions with their time/energy cost *)
}

type outcome = Completed | Crashed of int | Deadlocked of string list

type result = {
  config : config;
  outcome : outcome;
  iterations_done : int;
  elapsed_cycles : int;
  miters_per_sec : float;  (** the Table 1 metric, in simulated time *)
  invariants : Invariant.result;
  crash : crash_report option;
  entries : (int * int64) list;  (** post-run/post-recovery map dump *)
  total_steps : int;
  wall_seconds : float;  (** host time the simulation took (informational) *)
  device_stats : Nvm.Stats.t;
      (** operation counters of the simulated device (loads, flushes,
          write-backs, rescued/dropped lines, ...) *)
  latencies_cycles : int array;
      (** per-operation latency samples in simulated cycles; empty unless
          [record_latency] *)
}

val run : config -> result

val consistent : result -> bool
(** Invariants hold and (after a crash) the heap audit passed. *)

(** {1 Restart: crash, recover, resume, finish}

    Exercises the paper's full recovery contract: after the crash and
    recovery, fresh workers derive their restart point from the
    {e persistent} state (each thread's c2 counter names its last
    finished iteration) and run the workload to completion on the same
    device.  Because the three steps of an iteration are separate atomic
    operations, resumption is at-least-once: a thread killed between its
    data increment and its c2 update redoes one increment, so the final
    H-range total may exceed T x iterations by at most T — the report
    verifies exactly that bound. *)

type resume_report = {
  first : result;  (** the crashed phase, fully verified *)
  resumed : bool;  (** a resume phase actually ran *)
  resume_iterations : int;
  final_entries : (int * int64) list;
  final_invariants : Invariant.result;
  completion_ok : bool;
      (** every thread reached [iterations]; invariants hold; duplicated
          work within the at-least-once bound *)
  duplicated_increments : int;
}

val run_with_resume : config -> resume_report
(** @raise Invalid_argument for the transfer workload (its resumption is
    trivially conservation-preserving and thus unobservable). *)

val pp_resume_report : resume_report Fmt.t

val variant_to_string : variant -> string

val ops_per_iteration : workload -> int
(** Map operations per workload iteration (3 for counters/mixed, 1
    otherwise): the denominator of the per-op psync rates. *)

val completed_ops : result -> int
(** [iterations_done * ops_per_iteration]: what to pass to
    {!Obs.Metrics.of_tracer} so commit-free variants report per-op psync
    rates. *)

val pp_result : result Fmt.t
