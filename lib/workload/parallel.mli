(** Multicore fan-out for independent, deterministic simulation cells.

    Each cell (a Table 1 variant x seed pair, a sweep point, a
    fault-campaign crash) is a pure function of its configuration, so
    cells may run on separate OCaml 5 domains without changing any
    simulated result.  Results are collected in input order; the number
    of jobs affects wall-clock time only. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one job per available core.
    This is what [--jobs auto] (the CLI and bench default) resolves to,
    so on a single-core host every fan-out degrades to the sequential
    path below and dispatch costs nothing — parallelism is only paid
    for where it can win. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] using at most
    [jobs] domains (the calling domain included) and returns the results
    in input order.  [jobs] defaults to {!default_jobs}; with [~jobs:1]
    (or a singleton list) no domain is spawned and the call is exactly
    [List.map f xs].  If any application raises, the exception of the
    earliest failing {e input} is re-raised with its backtrace after all
    workers drain. *)

val run_all : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run_all thunks = map (fun f -> f ()) thunks]: run heterogeneous
    cells concurrently, results in order. *)
