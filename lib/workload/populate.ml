module Rng = Sched.Sim_rng

let keys ~objects ~seed =
  let a = Array.init objects Key_space.h_key in
  (* Fisher-Yates with a seed-derived stream: the insertion order is
     deterministic but uncorrelated with key order, so chains, towers
     and tree splits exercise their general shapes rather than the
     append-only special case. *)
  let rng = Rng.create ~seed:(seed lxor 0x5eed) in
  for i = objects - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* Per-object footprint estimates (header word included, rounded up with
   slack): hash node = header + key + next + value words; btree ~120 B
   per key amortised over order-7 nodes at worst-case fill; skip node =
   header + 3 fixed words + a geometric tower. *)
let bytes_per_object (spec : Machine.spec) =
  match spec.Machine.variant with
  | Machine.Mutex_map _ -> (4 + spec.Machine.value_words) * 8
  | Machine.Mutex_btree _ -> 120
  | Machine.Nonblocking_map | Machine.Nvtraverse_map -> 96
  | Machine.Delayfree_map ->
      (* Objects live in the preallocated fixed-capacity table, whose
         footprint is counted by [table_bytes] below. *)
      0

let buckets_for (spec : Machine.spec) ~objects =
  match spec.Machine.variant with
  | Machine.Mutex_map _ ->
      (* Keep chains O(1) so population stays linear in [objects]. *)
      max spec.Machine.n_buckets objects
  | Machine.Delayfree_map ->
      (* The fixed table derives its capacity (8 slots per bucket) from
         [n_buckets]: scale it with the population so the load factor
         stays bounded. *)
      max spec.Machine.n_buckets objects
  | _ -> spec.Machine.n_buckets

(* Bucket-array (chained map) or whole-table (delay-free) footprint. *)
let table_bytes (spec : Machine.spec) ~n_buckets =
  match spec.Machine.variant with
  | Machine.Delayfree_map ->
      Tsp_maps.Delayfree_map.capacity_for ~n_buckets * 8 * 8
  | _ -> n_buckets * 8

let sized_spec (spec : Machine.spec) ~objects =
  if objects < 0 then invalid_arg "Populate.sized_spec: negative count";
  let n_buckets = buckets_for spec ~objects in
  let needed =
    (2 * 1024 * 1024)
    + (objects * bytes_per_object spec)
    + table_bytes spec ~n_buckets
    + (spec.Machine.log_mib * 1024 * 1024)
  in
  let region =
    max spec.Machine.platform.Nvm.Config.region_size
      ((needed + (1024 * 1024) - 1) / (1024 * 1024) * 1024 * 1024)
  in
  {
    spec with
    Machine.platform = Nvm.Config.with_region_size spec.Machine.platform region;
    n_buckets;
  }

let fill (m : Machine.t) ~objects ~seed =
  let ks = keys ~objects ~seed in
  Array.iter
    (fun k -> m.Machine.map.Machine.set_plain ~key:k ~value:(Int64.of_int k))
    ks;
  Nvm.Pmem.persist_all m.Machine.pmem

let build spec ~objects ~seed =
  let spec = sized_spec spec ~objects in
  let m = Machine.create spec in
  fill m ~objects ~seed;
  m
