module Heap_gc = Pheap.Heap_gc

type cell = {
  variant : Machine.variant;
  objects : int;
  mode : Machine.recovery_mode;
  outage_cycles : int;
  background_cycles : int;
  on_demand_touches : int;
  phases : (string * int) list;
  gc : Heap_gc.stats option;
  verdict : string;
  heap_audit_ok : bool;
  image_hash : int;
  host_ms : float;
  recover_host_ms : float;
}

(* FNV-1a over every heap word (peeks: free, no cache effects).  Two
   recoveries that leave byte-identical heap images hash equal; any
   divergence — stats aside — shows up here. *)
let image_hash pmem ~lo ~hi =
  let h = ref 0x3bf29ce484222325 (* FNV offset basis, truncated to 62 bits *) in
  let a = ref lo in
  while !a < hi do
    let w = Nvm.Pmem.peek_int pmem !a in
    h := (!h lxor w) * 0x100000001b3 land max_int;
    a := !a + 8
  done;
  !h

let default_spec ~variant ~seed =
  {
    Machine.platform = Nvm.Config.desktop;
    variant;
    threads = 4;
    seed;
    journal = false;
    n_buckets = 16384;
    log_mib = 8;
    atlas_costs = Atlas.Runtime.default_costs;
    cost_jitter = 3;
    hash_op_cycles = 30;
    skip_op_cycles = 25;
    value_words = 1;
    quantum = false;
    deterministic_slice = Sched.Scheduler.default_slice;
    tracer = None;
    hardware = Tsp_core.Hardware.nvram_machine;
    failure = Tsp_core.Failure_class.Process_crash;
  }

(* One measurement: build a heap of [objects] entries, crash it, recover
   in [mode], and account every phase.  The pre-crash image is a pure
   function of (variant, objects, seed), so cells are comparable across
   modes and job counts.  [touch] keys are recovered on demand first in
   incremental mode (simulating the requests that arrive mid-recovery)
   before the background collection is driven to completion. *)
let run_cell ?(spec = None) ~variant ~objects ~mode ~seed ?(touches = 0) () =
  let tracer = Obs.Tracer.create ~ring_cap:4096 () in
  let base = match spec with Some s -> s | None -> default_spec ~variant ~seed in
  let base = { base with Machine.tracer = Some tracer } in
  let t0 = Sys.time () in
  let m = Populate.build base ~objects ~seed in
  let pmem = m.Machine.pmem in
  let stats = Nvm.Pmem.stats pmem in
  ignore (Machine.crash_execute m : Tsp_core.Crash_executor.execution);
  let clock0 = stats.Nvm.Stats.clock in
  let tr0 = Sys.time () in
  let r = Machine.recover ~mode m in
  let outage_cycles = stats.Nvm.Stats.clock - clock0 in
  (* Incremental: the machine is already serving; charge a sample of
     on-demand touches (first-touch key recoveries), then let the
     background collector finish.  Everything after [outage_cycles] is
     availability-overlapped work. *)
  let on_demand_touches = ref 0 in
  (match r.Machine.gc_pending with
  | Some inc ->
      for _ = 1 to touches do
        ignore (Heap_gc.Incremental.on_demand inc : int)
      done;
      ignore (Heap_gc.Incremental.advance inc ~budget:max_int : int);
      on_demand_touches := Heap_gc.Incremental.on_demand_count inc
  | None -> ());
  let background_cycles =
    match r.Machine.gc_pending with
    | Some inc -> Heap_gc.Incremental.total_cycles inc
    | None -> 0
  in
  ignore
    (Machine.finish_background_gc m
      : (Heap_gc.stats * Heap_gc.quarantine) option);
  let recover_host_ms = (Sys.time () -. tr0) *. 1000. in
  let host_ms = (Sys.time () -. t0) *. 1000. in
  let phases =
    List.init Obs.Event.n_phases (fun p ->
        (Obs.Event.phase_name p, Obs.Tracer.phase_cycles tracer p))
    |> List.filter (fun (_, c) -> c > 0)
  in
  {
    variant;
    objects;
    mode;
    outage_cycles;
    background_cycles;
    on_demand_touches = !on_demand_touches;
    phases;
    gc = r.Machine.gc;
    verdict = Fmt.str "%a" Atlas.Recovery.pp_verdict r.Machine.recovery_verdict;
    heap_audit_ok = r.Machine.heap_audit_ok;
    image_hash = image_hash pmem ~lo:0 ~hi:(Machine.log_base m.Machine.spec);
    host_ms;
    recover_host_ms;
  }

(* Structural identity, minus the fields that legitimately vary between
   two runs of the same measurement: [mode] (jobs-identity compares
   parallel:1 against parallel:N) and [host_ms] (wall clock). *)
let cells_match a b =
  a.variant = b.variant && a.objects = b.objects
  && a.outage_cycles = b.outage_cycles
  && a.background_cycles = b.background_cycles
  && a.on_demand_touches = b.on_demand_touches
  && a.phases = b.phases && a.gc = b.gc && a.verdict = b.verdict
  && a.heap_audit_ok = b.heap_audit_ok
  && a.image_hash = b.image_hash

let pp_cell ppf c =
  Fmt.pf ppf
    "%-16s %8d objs %-12s outage %12d cycles bg %12d audit %b %s"
    (Machine.variant_to_string c.variant)
    c.objects
    (Machine.recovery_mode_to_string c.mode)
    c.outage_cycles c.background_cycles c.heap_audit_ok c.verdict

(* One measurement cell as a results-artifact object.  Host wall-clock
   fields are deliberately excluded: they vary run to run, and the
   artifact identity contract only admits pure functions of the cell
   parameters. *)
let cell_to_json j c =
  let module J = Obs.Json in
  J.obj_open j;
  J.key j "variant";
  J.str j (Machine.variant_to_cli_string c.variant);
  J.key j "objects";
  J.int j c.objects;
  J.key j "mode";
  J.str j (Machine.recovery_mode_to_string c.mode);
  J.key j "outage_cycles";
  J.int j c.outage_cycles;
  J.key j "background_cycles";
  J.int j c.background_cycles;
  J.key j "on_demand_touches";
  J.int j c.on_demand_touches;
  J.key j "phases";
  J.obj_open j;
  List.iter
    (fun (name, cy) ->
      J.key j name;
      J.int j cy)
    c.phases;
  J.obj_close j;
  J.key j "verdict";
  J.str j c.verdict;
  J.key j "heap_audit_ok";
  J.bool j c.heap_audit_ok;
  J.key j "image_hash";
  J.str j (Printf.sprintf "%016x" c.image_hash);
  J.obj_close j
