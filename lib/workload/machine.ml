module Heap = Pheap.Heap
module Heap_gc = Pheap.Heap_gc
module Rt = Atlas.Runtime
module Scheduler = Sched.Scheduler
module Rng = Sched.Sim_rng
module Hashmap = Tsp_maps.Chained_hashmap
module Skiplist = Tsp_maps.Lockfree_skiplist
module Btree = Tsp_maps.Btree
module Nvt = Tsp_maps.Nvtraverse_skiplist
module Delayfree = Tsp_maps.Delayfree_map

type variant =
  | Mutex_map of Atlas.Mode.t
  | Mutex_btree of Atlas.Mode.t
  | Nonblocking_map
  | Nvtraverse_map
  | Delayfree_map

let variant_to_string = function
  | Mutex_map m -> "mutex/" ^ Atlas.Mode.to_string m
  | Mutex_btree m -> "btree/" ^ Atlas.Mode.to_string m
  | Nonblocking_map -> "non-blocking"
  | Nvtraverse_map -> "nvtraverse"
  | Delayfree_map -> "delay-free"

(* Canonical CLI spelling of each variant.  This is the single source of
   truth shared by the `tsp` argument parser and the fault injector's
   copy-pasteable reproducers; [variant_of_string] accepts these plus
   historical aliases, and the two functions round-trip for every
   variant. *)
let variant_to_cli_string = function
  | Mutex_map Atlas.Mode.No_log -> "no-log"
  | Mutex_map Atlas.Mode.Log_only -> "log-only"
  | Mutex_map Atlas.Mode.Log_flush -> "log-flush"
  | Mutex_map Atlas.Mode.Log_flush_async -> "log-flush-async"
  | Mutex_btree Atlas.Mode.No_log -> "btree-no-log"
  | Mutex_btree Atlas.Mode.Log_only -> "btree"
  | Mutex_btree Atlas.Mode.Log_flush -> "btree-flush"
  | Mutex_btree Atlas.Mode.Log_flush_async -> "btree-flush-async"
  | Nonblocking_map -> "non-blocking"
  | Nvtraverse_map -> "nvtraverse"
  | Delayfree_map -> "delay-free"

let variant_of_string = function
  | "no-log" | "native" -> Ok (Mutex_map Atlas.Mode.No_log)
  | "log-only" | "log" | "tsp" -> Ok (Mutex_map Atlas.Mode.Log_only)
  | "log-flush" | "flush" -> Ok (Mutex_map Atlas.Mode.Log_flush)
  | "log-flush-async" | "async" -> Ok (Mutex_map Atlas.Mode.Log_flush_async)
  | "non-blocking" | "skiplist" -> Ok Nonblocking_map
  | "nvtraverse" | "nv-traverse" -> Ok Nvtraverse_map
  | "delay-free" | "delayfree" | "rcas" -> Ok Delayfree_map
  | "btree" | "btree-log" -> Ok (Mutex_btree Atlas.Mode.Log_only)
  | "btree-no-log" -> Ok (Mutex_btree Atlas.Mode.No_log)
  | "btree-flush" -> Ok (Mutex_btree Atlas.Mode.Log_flush)
  | "btree-flush-async" | "btree-async" ->
      Ok (Mutex_btree Atlas.Mode.Log_flush_async)
  | s -> Error (Printf.sprintf "unknown variant %S" s)

let all_variants =
  [
    Mutex_map Atlas.Mode.No_log;
    Mutex_map Atlas.Mode.Log_only;
    Mutex_map Atlas.Mode.Log_flush;
    Mutex_map Atlas.Mode.Log_flush_async;
    Mutex_btree Atlas.Mode.No_log;
    Mutex_btree Atlas.Mode.Log_only;
    Mutex_btree Atlas.Mode.Log_flush;
    Mutex_btree Atlas.Mode.Log_flush_async;
    Nonblocking_map;
    Nvtraverse_map;
    Delayfree_map;
  ]

type spec = {
  platform : Nvm.Config.t;
  variant : variant;
  threads : int;
  seed : int;
  journal : bool;
  n_buckets : int;
  log_mib : int;
  atlas_costs : Atlas.Runtime.costs;
  cost_jitter : int;
  hash_op_cycles : int;
  skip_op_cycles : int;
  value_words : int;
  quantum : bool;
  deterministic_slice : int;
  tracer : Obs.Tracer.t option;
  hardware : Tsp_core.Hardware.t;
  failure : Tsp_core.Failure_class.t;
}

type map = {
  map_ops : Tsp_maps.Map_intf.ops;
  set_plain : key:int -> value:int64 -> unit;
  fold_root :
    Heap.t ->
    root:Heap.addr ->
    (int -> int64 -> (int * int64) list -> (int * int64) list) ->
    (int * int64) list;
  hashmap : Hashmap.t option;
}

type t = {
  spec : spec;
  pmem : Nvm.Pmem.t;
  mutable heap : Heap.t;
  mutable sched : Scheduler.t;
  mutable atlas : Rt.t option;
  mutable map : map;
  mutable gc_pending : Heap_gc.Incremental.t option;
}

let log_base spec = spec.platform.Nvm.Config.region_size - (spec.log_mib * 1024 * 1024)
let log_size spec = spec.log_mib * 1024 * 1024

(* Attach the machine's tracer (if any) to its device/scheduler pair:
   ops and ctx switches emit events, each event samples the cache's
   dirty-line count, and timestamps come from the executing thread's
   virtual clock — falling back to the device's own clock in harness
   code (setup, crash handling, recovery), where no thread is running.
   Reads only: tracing never perturbs the simulation.  The context
   closures are per-tracer, which is why a tracer must be private to
   one machine. *)
let wire_tracer spec pmem sched =
  match spec.tracer with
  | None -> ()
  | Some tr ->
      Nvm.Pmem.set_tracer pmem (Some tr);
      Scheduler.set_tracer sched (Some tr);
      Obs.Tracer.set_tid tr (fun () -> Scheduler.current_id sched);
      let stats = Nvm.Pmem.stats pmem in
      Obs.Tracer.set_clock tr (fun () ->
          if Scheduler.in_thread sched then Scheduler.now sched
          else stats.Nvm.Stats.clock)

let in_phase m phase f =
  match m.spec.tracer with
  | None -> f ()
  | Some tr ->
      Obs.Tracer.phase_begin tr ~phase;
      let r = f () in
      Obs.Tracer.phase_end tr ~phase;
      r

let build_map spec heap atlas sched =
  match spec.variant with
  | Mutex_map _ ->
      let atlas = Option.get atlas in
      let hm =
        Hashmap.create heap ~atlas ~sched ~n_buckets:spec.n_buckets
          ~op_cycles:spec.hash_op_cycles ~value_words:spec.value_words ()
      in
      {
        map_ops = Hashmap.ops hm;
        set_plain = (fun ~key ~value -> Hashmap.set_plain hm ~key ~value);
        fold_root = (fun h ~root f -> Hashmap.fold_plain h ~root f []);
        hashmap = Some hm;
      }
  | Mutex_btree _ ->
      let atlas = Option.get atlas in
      let bt = Btree.create heap ~atlas ~sched ~op_cycles:spec.hash_op_cycles () in
      {
        map_ops = Btree.ops bt;
        set_plain = (fun ~key ~value -> Btree.set_plain bt ~key ~value);
        fold_root = (fun h ~root f -> Btree.fold_plain h ~root f []);
        hashmap = None;
      }
  | Nonblocking_map ->
      let sl =
        Skiplist.create heap ~num_threads:spec.threads
          ~op_cycles:spec.skip_op_cycles ~seed:(spec.seed + 7) ()
      in
      {
        map_ops = Skiplist.ops sl;
        set_plain = (fun ~key ~value -> Skiplist.set_plain sl ~key ~value);
        fold_root = (fun h ~root f -> Skiplist.fold_plain h ~root f []);
        hashmap = None;
      }
  | Nvtraverse_map ->
      let sl =
        Nvt.create heap ~num_threads:spec.threads
          ~op_cycles:spec.skip_op_cycles ~seed:(spec.seed + 7) ()
      in
      {
        map_ops = Nvt.ops sl;
        set_plain = (fun ~key ~value -> Nvt.set_plain sl ~key ~value);
        fold_root = (fun h ~root f -> Nvt.fold_plain h ~root f []);
        hashmap = None;
      }
  | Delayfree_map ->
      let df =
        Delayfree.create heap ~op_cycles:spec.hash_op_cycles
          ~capacity:(Delayfree.capacity_for ~n_buckets:spec.n_buckets) ()
      in
      {
        map_ops = Delayfree.ops df;
        set_plain = (fun ~key ~value -> Delayfree.set_plain df ~key ~value);
        fold_root = (fun h ~root f -> Delayfree.fold_plain h ~root f []);
        hashmap = None;
      }

let create spec =
  let pmem = Nvm.Pmem.create ~journal:spec.journal spec.platform in
  let heap = Heap.create pmem ~base:0 ~size:(log_base spec) in
  let sched =
    Scheduler.create ~seed:spec.seed ~cost_jitter:spec.cost_jitter
      ~quantum:spec.quantum ~deterministic_slice:spec.deterministic_slice ()
  in
  wire_tracer spec pmem sched;
  let atlas =
    match spec.variant with
    | Mutex_map mode | Mutex_btree mode ->
        Some
          (Rt.create ~costs:spec.atlas_costs ~mode ~heap
             ~log_base:(log_base spec) ~log_size:(log_size spec)
             ~num_threads:spec.threads ())
    | Nonblocking_map | Nvtraverse_map | Delayfree_map -> None
  in
  let map = build_map spec heap atlas sched in
  { spec; pmem; heap; sched; atlas; map; gc_pending = None }

let instrument m wrap = m.map <- { m.map with map_ops = wrap m.map.map_ops }

let execute ?crash_at_step m =
  Nvm.Pmem.set_step_hook m.pmem (fun ~cost -> Scheduler.step m.sched ~cost);
  Nvm.Pmem.set_quantum m.pmem (Scheduler.quantum_handle m.sched);
  Fun.protect
    ~finally:(fun () ->
      Nvm.Pmem.clear_quantum m.pmem;
      Nvm.Pmem.clear_step_hook m.pmem)
    (fun () -> Scheduler.run ?crash_at_step m.sched)

let crash_execute ?fault m =
  (* The crash draws (torn-word counts, bit-flip targets) come from
     their own seed-derived stream, so a given (spec, crash step) is
     bit-reproducible regardless of what the workload drew. *)
  let crash_rng =
    let r = Rng.create ~seed:((m.spec.seed * 31) + 17) in
    fun bound -> Rng.int r bound
  in
  in_phase m Obs.Event.phase_rescue (fun () ->
      Tsp_core.Crash_executor.execute ?fault ~rng:crash_rng m.pmem
        ~hardware:m.spec.hardware ~failure:m.spec.failure)

type recovery_mode = Eager | Parallel_gc of int | Incremental_gc

let recovery_mode_to_string = function
  | Eager -> "eager"
  | Parallel_gc jobs -> Fmt.str "parallel:%d" jobs
  | Incremental_gc -> "incremental"

type recovery = {
  heap : Heap.t option;
  observer : Tsp_core.Recovery_observer.verdict option;
  atlas_recovery : Atlas.Recovery.report option;
  rcas_repair : Tsp_maps.Delayfree_map.repair option;
  gc : Heap_gc.stats option;
  gc_quarantine : Heap_gc.quarantine option;
  gc_pending : Heap_gc.Incremental.t option;
  recovery_verdict : Atlas.Recovery.verdict;
  heap_audit_ok : bool;
  recovery_errors : string list;
}

(* Post-crash pipeline: device-level crash semantics, then recovery,
   then audit.  Every step can fail when the crash was not TSP-covered;
   failures are reported, not raised. *)
let recover ?(mode = Eager) m =
  let spec = m.spec in
  let pmem = m.pmem in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  (* The streamed modes share one fanout: chunk thunks run on the domain
     pool ([Parallel_gc]) or inline ([Incremental_gc] — its win is the
     shorter outage, not host parallelism).  [Parallel.run_all ~jobs:1]
     is exactly sequential iteration, so jobs only changes wall-clock. *)
  let fanout =
    match mode with
    | Eager -> None
    | Parallel_gc jobs ->
        Some (fun tasks -> ignore (Parallel.run_all ~jobs tasks : unit list))
    | Incremental_gc -> Some (fun tasks -> List.iter (fun f -> f ()) tasks)
  in
  let observer =
    if spec.journal then Some (Tsp_core.Recovery_observer.observe pmem)
    else None
  in
  Nvm.Pmem.recover pmem;
  let heap =
    (* [Invalid_argument] too: after bit rot the persisted header fields
       can be arbitrary garbage, not merely inconsistent. *)
    try Some (Heap.attach pmem ~base:0 ~size:(log_base spec)) with
    | Heap.Corrupt msg ->
        err "heap attach failed: %s" msg;
        None
    | Invalid_argument msg ->
        err "heap attach failed: %s" msg;
        None
  in
  let atlas_recovery =
    match (heap, spec.variant) with
    | Some heap, (Mutex_map _ | Mutex_btree _) -> begin
        (* [Recovery.run] is graceful by construction; the handler is a
           belt-and-braces backstop so one buggy path cannot take the
           whole campaign down. *)
        let scan = Option.map (fun f -> Atlas.Recovery.Streamed_scan f) fanout in
        try Some (Atlas.Recovery.run ?scan ~heap ~log_base:(log_base spec) ())
        with exn ->
          err "atlas recovery failed: %s" (Printexc.to_string exn);
          None
      end
    | _ -> None
  in
  (* The delay-free map's recovery obligation: complete or abort every
     in-flight announced CAS exactly once, before anything reads the
     table.  [rcas_failed] feeds the verdict — a table we could not even
     scan is a degraded recovery, not a clean one. *)
  let rcas_repair, rcas_failed =
    match (heap, spec.variant) with
    | Some heap, Delayfree_map -> begin
        try (Some (Delayfree.repair heap (Heap.get_root heap)), false)
        with exn ->
          err "rcas repair failed: %s" (Printexc.to_string exn);
          (None, true)
      end
    | _ -> (None, false)
  in
  let gc, gc_quarantine, gc_pending =
    match heap with
    | None -> (None, None, None)
    | Some heap -> begin
        match mode with
        | Eager ->
            let stats, quarantine =
              in_phase m Obs.Event.phase_heap_gc (fun () ->
                  Heap_gc.collect_graceful heap)
            in
            (Some stats, Some quarantine, None)
        | Parallel_gc _ ->
            let stats, quarantine =
              in_phase m Obs.Event.phase_heap_gc (fun () ->
                  Heap_gc.collect_streamed ?fanout heap)
            in
            (Some stats, Some quarantine, None)
        | Incremental_gc ->
            (* Plan only: no stores, no charges.  The collection bill is
               paid later — by the background fiber and by on-demand
               touches — so the outage window ends here.  The planned
               stats (with analytic mark/sweep cycles) and quarantine
               are final; only their application is deferred. *)
            let inc = Heap_gc.Incremental.start ?fanout heap in
            let stats, quarantine = Heap_gc.Incremental.plan inc in
            (Some stats, Some quarantine, Some inc)
      end
  in
  let heap_audit_ok =
    match heap with
    | None -> false
    | Some heap -> begin
        match
          in_phase m Obs.Event.phase_audit (fun () ->
              try Heap_gc.verify heap
              with exn -> Error [ Printexc.to_string exn ])
        with
        | Ok () -> true
        | Error es ->
            List.iter (fun e -> err "audit: %s" e) es;
            false
      end
  in
  let recovery_verdict =
    match heap with
    | None ->
        Atlas.Recovery.Unrecoverable
          (match List.rev !errors with e :: _ -> e | [] -> "heap unrecoverable")
    | Some _ ->
        let reasons =
          (match atlas_recovery with
          | Some a -> begin
              match a.Atlas.Recovery.verdict with
              | Atlas.Recovery.Clean -> []
              | Atlas.Recovery.Degraded rs -> rs
              | Atlas.Recovery.Unrecoverable m ->
                  [ "undo log unrecoverable: " ^ m ]
            end
          | None -> [])
          @ (match gc_quarantine with
            | Some q
              when q.Heap_gc.unscannable > 0 || q.Heap_gc.quarantined_words > 0
              ->
                q.Heap_gc.reasons
            | _ -> [])
          @ (if rcas_failed then [ "rcas repair failed" ] else [])
          @ if heap_audit_ok then [] else [ "heap audit failed" ]
        in
        (match reasons with
        | [] -> Atlas.Recovery.Clean
        | rs -> Atlas.Recovery.Degraded rs)
  in
  (match heap with
  | Some h ->
      m.heap <- h;
      (* the old runtime and map handles point into the pre-crash heap;
         [reattach] rebuilds them *)
      m.atlas <- None
  | None -> ());
  m.gc_pending <- gc_pending;
  {
    heap;
    observer;
    atlas_recovery;
    rcas_repair;
    gc;
    gc_quarantine;
    gc_pending;
    recovery_verdict;
    heap_audit_ok;
    recovery_errors = List.rev !errors;
  }

let finish_background_gc (m : t) =
  match m.gc_pending with
  | None -> None
  | Some inc ->
      let result = Heap_gc.Incremental.finish inc in
      m.gc_pending <- None;
      Some result

let reattach (m : t) ~seed ~first_seq =
  let spec = m.spec in
  let sched =
    Scheduler.create ~seed ~cost_jitter:spec.cost_jitter ~quantum:spec.quantum
      ~deterministic_slice:spec.deterministic_slice ()
  in
  (* The restarted machine gets a fresh scheduler: repoint the tracer's
     thread and clock closures at it so post-recovery events keep
     flowing. *)
  wire_tracer spec m.pmem sched;
  let atlas =
    match spec.variant with
    | Mutex_map mode | Mutex_btree mode ->
        Some
          (Rt.create ~costs:spec.atlas_costs ~mode ~heap:m.heap
             ~log_base:(log_base spec) ~log_size:(log_size spec)
             ~num_threads:spec.threads ~first_seq ())
    | Nonblocking_map | Nvtraverse_map | Delayfree_map -> None
  in
  let root = Heap.get_root m.heap in
  let map =
    match spec.variant with
    | Mutex_map _ ->
        let hm =
          Hashmap.attach m.heap ~atlas:(Option.get atlas) ~sched
            ~op_cycles:spec.hash_op_cycles root
        in
        {
          map_ops = Hashmap.ops hm;
          set_plain = (fun ~key ~value -> Hashmap.set_plain hm ~key ~value);
          fold_root = (fun h ~root f -> Hashmap.fold_plain h ~root f []);
          hashmap = Some hm;
        }
    | Mutex_btree _ ->
        let bt =
          Btree.attach m.heap ~atlas:(Option.get atlas) ~sched
            ~op_cycles:spec.hash_op_cycles root
        in
        {
          map_ops = Btree.ops bt;
          set_plain = (fun ~key ~value -> Btree.set_plain bt ~key ~value);
          fold_root = (fun h ~root f -> Btree.fold_plain h ~root f []);
          hashmap = None;
        }
    | Nonblocking_map ->
        let sl =
          Skiplist.attach m.heap ~op_cycles:spec.skip_op_cycles
            ~num_threads:spec.threads ~seed:(spec.seed + 7) root
        in
        {
          map_ops = Skiplist.ops sl;
          set_plain = (fun ~key ~value -> Skiplist.set_plain sl ~key ~value);
          fold_root = (fun h ~root f -> Skiplist.fold_plain h ~root f []);
          hashmap = None;
        }
    | Nvtraverse_map ->
        let sl =
          Nvt.attach m.heap ~op_cycles:spec.skip_op_cycles
            ~num_threads:spec.threads ~seed:(spec.seed + 7) root
        in
        {
          map_ops = Nvt.ops sl;
          set_plain = (fun ~key ~value -> Nvt.set_plain sl ~key ~value);
          fold_root = (fun h ~root f -> Nvt.fold_plain h ~root f []);
          hashmap = None;
        }
    | Delayfree_map ->
        let df = Delayfree.attach m.heap ~op_cycles:spec.hash_op_cycles root in
        {
          map_ops = Delayfree.ops df;
          set_plain = (fun ~key ~value -> Delayfree.set_plain df ~key ~value);
          fold_root = (fun h ~root f -> Delayfree.fold_plain h ~root f []);
          hashmap = None;
        }
  in
  m.sched <- sched;
  m.atlas <- atlas;
  m.map <- map;
  root

let dump (m : t) =
  let root = Heap.get_root m.heap in
  m.map.fold_root m.heap ~root (fun k v acc -> (k, v) :: acc)
