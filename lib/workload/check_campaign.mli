(** Durable-linearizability checking campaigns: the workload-layer
    driver for [lib/check].

    For every enumerated crash point the campaign runs the workload with
    the history recorder interposed on the map ({!Runner.config}'s
    [instrument] hook), crashes it, recovers via the normal pipeline
    ({!Atlas.Recovery} for the mutex variants, re-attachment for the
    skip list), and asks {!Check.Dl} whether the recovered entries are
    explained by some linearization of a prefix-closed subset of the
    recorded history — completed operations must survive, pending ones
    may take effect or not, nothing else may appear.

    The strict verdict is only sound under rescue-class crash semantics
    (every acknowledged store reaches the durable medium), so {!run}
    rejects specs whose crash would execute discard semantics or an
    adversarial fault model other than [Full_rescue].

    Enumeration mirrors {!Fault_injector}: every [stride]-th step of a
    window, no randomness, parameters fixed before the parallel fan-out
    — so verdicts and the rendered summary are byte-identical for any
    [jobs] value (pinned by [test/test_checker.ml]).

    A seeded mutation harness rides along: {!non_durable} plants a
    wrapper that silently swallows a deterministic, seeded selection of
    write operations — completed in the history, absent from NVM — the
    exact bug class the checker exists to catch. *)

type spec = {
  base : Runner.config;
  from_step : int;
  window : int;  (** crash steps [from_step, from_step + window) *)
  stride : int;  (** enumerate every [stride]-th step (min 1) *)
  mutate : (Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops) option;
      (** applied {e under} the recorder: the history sees the intended
          operations, the map sees what the mutant lets through *)
  mutate_label : string;  (** shown in the summary header; "" for none *)
}

val default_spec : Runner.config -> spec
(** [from_step = 500], [window = 2000], [stride = 100], no mutation. *)

type point = {
  crash_step : int;  (** requested crash step *)
  crashed : bool;  (** false: the run completed before the crash point *)
  ops_recorded : int;
  ops_completed : int;
  ops_pending : int;
  dl : Check.Dl.verdict;
  recovery_verdict : Atlas.Recovery.verdict option;
  cycle_totals : int array;
      (** per-category device cycles ({!Nvm.Stats.cycle_totals}) of this
          point's run *)
}

type summary = {
  spec : spec;
  points : point list;  (** in crash-step order *)
  total : int;
  crashes : int;
  explained : int;
  flagged : int;  (** points whose recovered state no linearization explains *)
  capped_points : int;
      (** points where at least one key hit {!Check.Dl.subset_limit} and
          was accepted conservatively rather than proved *)
  capped_keys : int;  (** total capped keys across all points *)
  clean_recoveries : int;
  degraded_recoveries : int;
}

val initial_entries : Runner.config -> (int * int64) list
(** The map contents after {!Runner}'s pre-run population, derived from
    the config alone (population is deterministic and unrecorded).
    @raise Invalid_argument for workloads the checker does not support
    (wide values and transfers bypass the recorded op interface). *)

val non_durable :
  seed:int -> every:int -> Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops
(** The planted bug: a variant whose writes are not durably linearizable.
    Roughly one in [every] destructive operations ([set]/[incr]/[remove],
    chosen by a seeded RNG stream so runs are reproducible) is silently
    swallowed — acknowledged to the caller, never issued to the map.  A
    fresh RNG is created per call, so each run in a parallel campaign
    mutates deterministically. *)

val capped_of : point -> int
(** Subset-sum-capped key count of a point's DL verdict: how many of its
    keys were accepted conservatively rather than proved. *)

val run : ?jobs:int -> spec -> summary
(** Execute the campaign.
    @raise Invalid_argument if the spec's workload or crash semantics
    are outside the strict checker's soundness envelope (see above). *)

val clean : summary -> bool
(** No flagged points. *)

val breakdown : summary -> int array
(** Element-wise sum of every point's [cycle_totals], printable with
    {!Nvm.Stats.pp_breakdown_totals}.  Jobs-invariant. *)

val pp_summary : summary Fmt.t
(** Header, per-verdict ledger, and one line per flagged point (first 20)
    with the per-key diagnoses.  Deterministic: independent of [jobs]
    and of wall-clock. *)

val signature_of_point : spec:spec -> point -> Obs.Signature.t option
(** Normalized failure signature of a flagged point ([None] when the
    point is explained): DL-violation class x variant x normalized
    first per-key diagnosis x flagged-key shape.  Crash steps, op
    counts and recovered values normalize out, so the same planted bug
    at two crash points yields the same signature. *)

val distinct_signatures : summary -> (Obs.Signature.t * int) list
(** Deduped signatures with multiplicities, in first-seen order. *)

val to_json : Obs.Json.t -> summary -> unit
(** Emit this campaign's results-artifact object: spec echo, totals,
    deduped signatures and per-point outcome rows.  Byte-identical
    across [--jobs]. *)
