(** Deterministic heap population at scale.

    The recovery-complexity experiments (E22) need heaps of 10^5..10^6+
    objects whose exact image is a pure function of (variant, object
    count, seed) — the same heap must be reproducible across runs,
    modes and job counts so recovery measurements compare like with
    like.  This module sizes a machine's region for the requested count,
    builds the map through its uninstrumented [set_plain] path, and
    persists everything, producing a durable heap ready to crash. *)

val keys : objects:int -> seed:int -> int array
(** The population's key sequence: the first [objects] data keys
    ({!Key_space.h_key}), Fisher-Yates-shuffled by a seed-derived
    stream.  Values are the keys themselves ([Int64.of_int key]), so
    every read-back is self-checking. *)

val sized_spec : Machine.spec -> objects:int -> Machine.spec
(** Grow the spec's region (never shrink) to fit [objects] map entries
    plus log and slack, and — for the hash-map variant — scale the
    bucket count with the population so insertion stays linear. *)

val fill : Machine.t -> objects:int -> seed:int -> unit
(** Insert the {!keys} population via [set_plain] and persist the
    device.  The machine must have been created with a {!sized_spec}
    (or an otherwise large-enough region). *)

val build : Machine.spec -> objects:int -> seed:int -> Machine.t
(** [create (sized_spec spec ~objects)] + {!fill}. *)
