type cell = {
  variant : Runner.variant;
  paper_miters : float;
  measured_miters : float;  (* mean over the seeds *)
  spread_miters : float;  (* max - min over the seeds; 0 for one seed *)
  result : Runner.result;  (* the first seed's run *)
}

type row = { platform : Nvm.Config.t; cells : cell list }

let paper_desktop = [ 3.66; 2.36; 1.58; 2.54 ]
let paper_server = [ 2.13; 1.50; 1.06; 2.00 ]

let variants =
  [
    Runner.Mutex_map Atlas.Mode.No_log;
    Runner.Mutex_map Atlas.Mode.Log_only;
    Runner.Mutex_map Atlas.Mode.Log_flush;
    Runner.Nonblocking_map;
  ]

let run_row ?(threads = 8) ?(iterations = 4000) ?(seed = 11) ?(repeats = 1)
    ?jobs platform paper =
  let repeats = max 1 repeats in
  (* Every (variant, seed) pair is an independent deterministic cell;
     flatten them all and fan out.  Collection is positional, so the
     per-cell results (and hence the printed table) are identical for
     any job count. *)
  let cell_configs =
    List.concat_map
      (fun variant ->
        List.init repeats (fun i ->
            ( variant,
              {
                (Runner.calibrated_config platform) with
                Runner.variant;
                threads;
                iterations;
                seed = seed + (31 * i);
              } )))
      variants
  in
  let results =
    Parallel.map ?jobs
      (fun (variant, config) ->
        let result = Runner.run config in
        if not (Runner.consistent result) then
          Fmt.failwith
            "Table 1 run inconsistent for %s on %s (seed %d, %d sim cycles): \
             %a"
            (Runner.variant_to_string variant)
            platform.Nvm.Config.name config.Runner.seed
            result.Runner.elapsed_cycles Invariant.pp result.Runner.invariants;
        result)
      cell_configs
  in
  let cell i variant paper_miters =
    let results =
      List.filteri (fun j _ -> j / repeats = i) results
    in
    let ms = List.map (fun r -> r.Runner.miters_per_sec) results in
    let mean = List.fold_left ( +. ) 0. ms /. float_of_int (List.length ms) in
    let spread =
      List.fold_left Float.max neg_infinity ms
      -. List.fold_left Float.min infinity ms
    in
    {
      variant;
      paper_miters;
      measured_miters = mean;
      spread_miters = (if List.length ms > 1 then spread else 0.);
      result = List.hd results;
    }
  in
  { platform; cells = List.mapi (fun i (v, p) -> cell i v p)
        (List.combine variants paper) }

let run ?threads ?iterations ?seed ?repeats ?jobs () =
  [
    run_row ?threads ?iterations ?seed ?repeats ?jobs Nvm.Config.desktop
      paper_desktop;
    run_row ?threads ?iterations ?seed ?repeats ?jobs Nvm.Config.server
      paper_server;
  ]

let nth_meas row i = (List.nth row.cells i).measured_miters

let shape_ok row =
  let native = nth_meas row 0
  and log_only = nth_meas row 1
  and log_flush = nth_meas row 2 in
  native > log_only && log_only > log_flush
  && log_only /. log_flush >= 1.25

let render rows ppf =
  let header =
    [
      "Platform";
      "no Atlas";
      "log only";
      "log+flush";
      "non-blocking";
      "TSP speedup";
    ]
  in
  let data_row label f extra =
    label :: List.map f [ 0; 1; 2; 3 ] @ [ extra ]
  in
  let table_rows =
    List.concat_map
      (fun row ->
        let meas i = nth_meas row i in
        let paper i = (List.nth row.cells i).paper_miters in
        let speedup = Report.ratio (meas 1) (meas 2) in
        let paper_speedup = Report.ratio (paper 1) (paper 2) in
        let spread i = (List.nth row.cells i).spread_miters in
        [
          data_row
            (row.platform.Nvm.Config.name ^ " (measured)")
            (fun i ->
              if spread i > 0. then
                Printf.sprintf "%.2f (+-%.2f)" (meas i) (spread i /. 2.)
              else Printf.sprintf "%.2f" (meas i))
            speedup;
          data_row
            (row.platform.Nvm.Config.name ^ " (paper)")
            (fun i -> Printf.sprintf "%.2f" (paper i))
            paper_speedup;
          data_row
            (row.platform.Nvm.Config.name ^ " (overhead vs native)")
            (fun i -> Report.pct_change ~base:(meas 0) (meas i))
            "";
          data_row
            (row.platform.Nvm.Config.name ^ " (paper overhead)")
            (fun i -> Report.pct_change ~base:(paper 0) (paper i))
            "";
        ])
      rows
  in
  Format.fprintf ppf
    "Table 1: throughput in millions of iterations/second (8 worker \
     threads,@ each iteration = 3 atomic map operations)@.@.";
  Report.table ~header ~rows:table_rows ppf;
  List.iter
    (fun row ->
      Format.fprintf ppf "@.%s: ordering no-Atlas > log-only > log+flush: %s@."
        row.platform.Nvm.Config.name
        (if shape_ok row then "HOLDS" else "VIOLATED"))
    rows

let render_breakdown row ppf =
  Format.fprintf ppf
    "@.Cycle decomposition on %s (where each variant's time goes):@.@."
    row.platform.Nvm.Config.name;
  List.iter
    (fun cell ->
      Format.fprintf ppf "%s:@.%a@.@."
        (Runner.variant_to_string cell.variant)
        Nvm.Stats.pp_breakdown cell.result.Runner.device_stats)
    row.cells
