module FM = Nvm.Fault_model
module Rng = Sched.Sim_rng

type spec = {
  base : Runner.config;
  from_step : int;
  window : int;
  stride : int;
  mutate : (Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops) option;
  mutate_label : string;
}

let default_spec base =
  {
    base;
    from_step = 500;
    window = 2000;
    stride = 100;
    mutate = None;
    mutate_label = "";
  }

type point = {
  crash_step : int;
  crashed : bool;
  ops_recorded : int;
  ops_completed : int;
  ops_pending : int;
  dl : Check.Dl.verdict;
  recovery_verdict : Atlas.Recovery.verdict option;
  cycle_totals : int array;
      (* per-category device cycles of this point's run, recorded in its
         own Parallel.map domain so the summed ledger is jobs-invariant *)
}

type summary = {
  spec : spec;
  points : point list;
  total : int;
  crashes : int;
  explained : int;
  flagged : int;
  capped_points : int;
  capped_keys : int;
  clean_recoveries : int;
  degraded_recoveries : int;
}

let capped_of p =
  match p.dl with
  | Check.Dl.Explained s | Check.Dl.Violation (s, _) -> s.Check.Dl.capped

(* Population (Runner.populate) is single-threaded, unrecorded and a
   pure function of the config, so the recording baseline can be
   re-derived instead of dumped — dumping would touch the simulated
   cache and perturb the run under test. *)
let initial_entries config =
  let counters () =
    List.concat_map
      (fun tid -> [ (Key_space.c1 ~tid, 0L); (Key_space.c2 ~tid, 0L) ])
      (List.init config.Runner.threads Fun.id)
  in
  let h_range n value_of =
    List.init n (fun i ->
        let k = Key_space.h_key i in
        (k, value_of k))
  in
  match config.Runner.workload with
  | Runner.Counters { h_keys; preload = true } ->
      counters () @ h_range h_keys (fun _ -> 0L)
  | Runner.Counters { h_keys = _; preload = false } -> counters ()
  | Runner.Mixed { h_keys; _ } -> counters () @ h_range h_keys (fun _ -> 0L)
  | Runner.Ycsb { records; _ } -> h_range records Int64.of_int
  | Runner.Wide _ | Runner.Transfers _ ->
      invalid_arg
        "Check_campaign: wide-value and transfer workloads bypass the \
         recorded operation interface (set_wide / transfer); use counters, \
         mixed or YCSB"

(* Strict durable linearizability — completed operations must survive —
   is only a sound expectation when the crash executes rescue semantics:
   every store issued before the crash reaches the durable image, and
   Atlas rollback undoes only uncommitted (hence pending) sections.
   Under discard/partial/torn/bit-rot semantics completed work may
   legitimately vanish, and a "violation" would indict the fault model,
   not the structure. *)
let validate spec =
  ignore (initial_entries spec.base : (int * int64) list);
  (match spec.base.Runner.fault_model with
  | None ->
      let verdict =
        Tsp_core.Policy.decide spec.base.Runner.hardware
          spec.base.Runner.failure
      in
      if not (Tsp_core.Policy.is_tsp verdict) then
        invalid_arg
          "Check_campaign: the hardware/failure pair gets a non-TSP verdict \
           (discard semantics); strict durable linearizability cannot be \
           expected of it"
  | Some FM.Full_rescue -> ()
  | Some fm ->
      Fmt.invalid_arg
        "Check_campaign: fault model %s is outside the strict checker's \
         soundness envelope (rescue-class semantics required)"
        (FM.to_string fm));
  if spec.stride < 1 then
    invalid_arg "Check_campaign: stride must be >= 1";
  if spec.window < 1 then
    invalid_arg "Check_campaign: window must be >= 1"

let non_durable ~seed ~every ops =
  if every < 1 then invalid_arg "Check_campaign.non_durable: every must be >= 1";
  let rng = Rng.create ~seed in
  let swallow () = Rng.int rng every = 0 in
  {
    ops with
    Tsp_maps.Map_intf.set =
      (fun ~tid ~key ~value ->
        if not (swallow ()) then ops.Tsp_maps.Map_intf.set ~tid ~key ~value);
    incr =
      (fun ~tid ~key ~by ->
        if not (swallow ()) then ops.Tsp_maps.Map_intf.incr ~tid ~key ~by);
    remove =
      (fun ~tid ~key ->
        if swallow () then false else ops.Tsp_maps.Map_intf.remove ~tid ~key);
  }

let one spec ~crash_step =
  let recorder = ref None in
  let instrument sched ops =
    let ops = match spec.mutate with Some m -> m ops | None -> ops in
    let h = Check.History.create ~sched () in
    recorder := Some h;
    Check.History.wrap h ops
  in
  let config =
    {
      spec.base with
      Runner.crash_at_step = Some crash_step;
      instrument = Some instrument;
    }
  in
  let r = Runner.run config in
  let h =
    match !recorder with
    | Some h -> h
    | None -> Fmt.failwith "Check_campaign: instrument hook never ran"
  in
  let crashed =
    match r.Runner.outcome with Runner.Crashed _ -> true | _ -> false
  in
  let dl =
    match r.Runner.outcome with
    | Runner.Deadlocked names ->
        Check.Dl.Violation
          ( {
              Check.Dl.ops = Check.History.length h;
              completed = Check.History.completed h;
              pending = Check.History.pending h;
              keys = 0;
              capped = 0;
            },
            [
              {
                Check.Dl.key = -1;
                found = None;
                detail =
                  Fmt.str "run deadlocked (%a)"
                    Fmt.(list ~sep:comma string)
                    names;
              };
            ] )
    | Runner.Completed | Runner.Crashed _ ->
        Check.Dl.check ~initial:(initial_entries config) ~history:h
          ~recovered:r.Runner.entries
  in
  {
    crash_step;
    crashed;
    ops_recorded = Check.History.length h;
    ops_completed = Check.History.completed h;
    ops_pending = Check.History.pending h;
    dl;
    recovery_verdict =
      Option.map (fun c -> c.Runner.recovery_verdict) r.Runner.crash;
    cycle_totals = Nvm.Stats.cycle_totals r.Runner.device_stats;
  }

let run ?jobs spec =
  validate spec;
  let stride = max 1 spec.stride in
  let steps = (spec.window + stride - 1) / stride in
  let params = List.init steps (fun i -> spec.from_step + (i * stride)) in
  let points =
    Parallel.map ?jobs (fun crash_step -> one spec ~crash_step) params
  in
  let count p = List.length (List.filter p points) in
  {
    spec;
    points;
    total = List.length points;
    crashes = count (fun p -> p.crashed);
    explained = count (fun p -> Check.Dl.is_explained p.dl);
    flagged = count (fun p -> not (Check.Dl.is_explained p.dl));
    capped_points = count (fun p -> capped_of p > 0);
    capped_keys = List.fold_left (fun n p -> n + capped_of p) 0 points;
    clean_recoveries =
      count (fun p -> p.recovery_verdict = Some Atlas.Recovery.Clean);
    degraded_recoveries =
      count (fun p ->
          match p.recovery_verdict with
          | Some (Atlas.Recovery.Degraded _) -> true
          | _ -> false);
  }

let clean s = s.flagged = 0

let breakdown s =
  let acc = Array.make (Array.length Nvm.Stats.cycle_category_names) 0 in
  List.iter
    (fun p ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) p.cycle_totals)
    s.points;
  acc

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>check: %s on %s, exhaustive steps [%d,%d) stride %d, strict \
     durable linearizability%s@ %d points: %d crashed; %d explained, %d \
     FLAGGED@ recovery verdicts: %d clean, %d degraded"
    (Runner.variant_to_string s.spec.base.Runner.variant)
    s.spec.base.Runner.platform.Nvm.Config.name s.spec.from_step
    (s.spec.from_step + s.spec.window)
    (max 1 s.spec.stride)
    (if String.equal s.spec.mutate_label "" then ""
     else " [mutant: " ^ s.spec.mutate_label ^ "]")
    s.total s.crashes s.explained s.flagged s.clean_recoveries
    s.degraded_recoveries;
  (* The subset-sum search inside the per-key DL check caps its
     enumeration (Check.Dl.subset_limit); a capped key is accepted
     conservatively, not proved.  Keep that ledger explicit so
     "explained" can be read as "proved" exactly when it shows 0. *)
  Fmt.pf ppf
    "@ conservative accepts: %d points hit the subset-sum cap (%d keys \
     accepted unproved)"
    s.capped_points s.capped_keys;
  Fmt.pf ppf "@ device cycles across all points:@ %a"
    Nvm.Stats.pp_breakdown_totals (breakdown s);
  let shown = ref 0 in
  let hidden = ref 0 in
  List.iter
    (fun p ->
      if not (Check.Dl.is_explained p.dl) then
        if !shown >= 20 then incr hidden
        else begin
          incr shown;
          Fmt.pf ppf "@ step %d (%d ops, %d pending): %a" p.crash_step
            p.ops_recorded p.ops_pending Check.Dl.pp_verdict p.dl
        end)
    s.points;
  if !hidden > 0 then Fmt.pf ppf "@ ... and %d more flagged points" !hidden;
  Fmt.pf ppf "@]"

(* Normalized failure signature of a flagged point: DL violation x
   campaign variant x the first per-key diagnosis (digit runs
   normalized away) x the flagged-key-set shape.  The crash step, op
   counts and recovered values all normalize out, so the same planted
   bug flagged at two crash points dedupes to one signature. *)
let signature_of_point ~(spec : spec) (p : point) =
  match p.dl with
  | Check.Dl.Explained _ -> None
  | Check.Dl.Violation (_, violations) ->
      let detail =
        match violations with
        | [] -> "violation"
        | v :: _ -> v.Check.Dl.detail
      in
      Some
        (Obs.Signature.make ~klass:"dl-violation"
           ~phase:(Machine.variant_to_cli_string spec.base.Runner.variant)
           ~invariant:detail
           ~shape:(Obs.Signature.shape_of_count (List.length violations)))

let distinct_signatures s =
  List.fold_left
    (fun acc p ->
      match signature_of_point ~spec:s.spec p with
      | None -> acc
      | Some sg ->
          if List.exists (fun (g, _) -> Obs.Signature.equal g sg) acc then
            List.map
              (fun (g, n) ->
                if Obs.Signature.equal g sg then (g, n + 1) else (g, n))
              acc
          else acc @ [ (sg, 1) ])
    [] s.points

(* The campaign's slice of a results artifact: spec echo, point totals,
   per-point outcome rows and deduped signatures.  Everything here is a
   pure function of the spec (points are enumerated, not sampled), so
   the document is byte-identical across --jobs. *)
let to_json j s =
  let module J = Obs.Json in
  let b = s.spec.base in
  J.obj_open j;
  J.key j "variant";
  J.str j (Machine.variant_to_cli_string b.Runner.variant);
  J.key j "platform";
  J.str j b.Runner.platform.Nvm.Config.name;
  J.key j "threads";
  J.int j b.Runner.threads;
  J.key j "iterations";
  J.int j b.Runner.iterations;
  J.key j "seed";
  J.int j b.Runner.seed;
  J.key j "mutant";
  J.str j s.spec.mutate_label;
  J.key j "crash_window";
  J.obj_open j;
  J.key j "from";
  J.int j s.spec.from_step;
  J.key j "window";
  J.int j s.spec.window;
  J.key j "stride";
  J.int j (max 1 s.spec.stride);
  J.obj_close j;
  J.key j "total";
  J.int j s.total;
  J.key j "crashes";
  J.int j s.crashes;
  J.key j "explained";
  J.int j s.explained;
  J.key j "flagged";
  J.int j s.flagged;
  J.key j "capped_points";
  J.int j s.capped_points;
  J.key j "capped_keys";
  J.int j s.capped_keys;
  J.key j "clean_recoveries";
  J.int j s.clean_recoveries;
  J.key j "degraded_recoveries";
  J.int j s.degraded_recoveries;
  J.key j "signatures";
  J.arr_open j;
  List.iter
    (fun (sg, n) ->
      J.obj_open j;
      J.key j "signature";
      Obs.Signature.to_json j sg;
      J.key j "count";
      J.int j n;
      J.obj_close j)
    (distinct_signatures s);
  J.arr_close j;
  J.key j "points";
  J.arr_open j;
  List.iter
    (fun p ->
      J.obj_open j;
      J.key j "crash_step";
      J.int j p.crash_step;
      J.key j "crashed";
      J.bool j p.crashed;
      J.key j "ops_recorded";
      J.int j p.ops_recorded;
      J.key j "ops_completed";
      J.int j p.ops_completed;
      J.key j "ops_pending";
      J.int j p.ops_pending;
      J.key j "explained";
      J.bool j (Check.Dl.is_explained p.dl);
      J.key j "capped_keys";
      J.int j (capped_of p);
      J.key j "recovery";
      (match p.recovery_verdict with
      | None -> J.null j
      | Some v -> J.str j (Fmt.str "%a" Atlas.Recovery.pp_verdict v));
      (match signature_of_point ~spec:s.spec p with
      | None -> ()
      | Some sg ->
          J.key j "signature";
          J.str j sg.Obs.Signature.hash;
          J.key j "detail";
          J.str j (Fmt.str "%a" Check.Dl.pp_verdict p.dl));
      J.obj_close j)
    s.points;
  J.arr_close j;
  J.key j "cycle_totals";
  J.arr_open j;
  Array.iter (fun c -> J.int j c) (breakdown s);
  J.arr_close j;
  J.obj_close j
