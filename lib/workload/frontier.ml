(* The fence-complexity frontier (ROADMAP item 1): every map design run
   on one identical counter workload, charted as dynamic psync
   complexity per completed operation vs throughput vs crash-recovery
   verdict.  Two legs per variant, both deterministic:

   - a traced crash-free run for throughput and the psync counters
     (per-op rates — the per-commit ones are undefined for the three
     commit-free designs);
   - one exhaustive-checker point — crash mid-run under TSP rescue
     semantics, recover, and check strict durable linearizability of
     the recovered state against the recorded history.

   The rows substantiate the paper's procrastination thesis end to end:
   designs that flush less (procrastinate more) sit strictly higher on
   the throughput axis at the same "explained" recovery verdict. *)

type row = {
  variant : Machine.variant;
  miters : float;
  elapsed_cycles : int;
  completed_ops : int;
  ocs_commits : int;
  flushes_per_op : float;
  fences_per_op : float;
  appends_per_op : float;
  dl_explained : bool;
  dl_capped : int;  (* subset-sum-capped keys: accepted, not proved *)
  recovery_verdict : Atlas.Recovery.verdict option;
}

(* The six designs of the frontier table (EXPERIMENTS E23). *)
let default_variants =
  [
    Machine.Mutex_map Atlas.Mode.No_log;
    Machine.Mutex_map Atlas.Mode.Log_only;
    Machine.Mutex_map Atlas.Mode.Log_flush;
    Machine.Nonblocking_map;
    Machine.Nvtraverse_map;
    Machine.Delayfree_map;
  ]

let base_config ~platform ~threads ~iterations ~seed =
  {
    Runner.default_config with
    Runner.platform;
    threads;
    iterations;
    seed;
    workload = Runner.Counters { h_keys = 256; preload = true };
    n_buckets = 512;
    log_mib = 1;
  }

let measure ~config ~crash_step variant =
  let config = { config with Runner.variant } in
  (* Leg 1: traced crash-free run.  The tracer is private to this
     machine; only its exact counters are read, so the small ring is
     irrelevant. *)
  let tracer = Obs.Tracer.create ~ring_cap:4096 () in
  let r = Runner.run { config with Runner.tracer = Some tracer } in
  let completed_ops = Runner.completed_ops r in
  let m = Obs.Metrics.of_tracer ~completed_ops tracer in
  (* Leg 2: one strict-DL crash point (untraced). *)
  let spec =
    {
      (Check_campaign.default_spec config) with
      Check_campaign.from_step = crash_step;
      window = 1;
      stride = 1;
    }
  in
  let summary = Check_campaign.run ~jobs:1 spec in
  let point = List.hd summary.Check_campaign.points in
  {
    variant;
    miters = r.Runner.miters_per_sec;
    elapsed_cycles = r.Runner.elapsed_cycles;
    completed_ops;
    ocs_commits = m.Obs.Metrics.ocs_commits;
    flushes_per_op = m.Obs.Metrics.flushes_per_op;
    fences_per_op = m.Obs.Metrics.fences_per_op;
    appends_per_op = m.Obs.Metrics.appends_per_op;
    dl_explained = Check.Dl.is_explained point.Check_campaign.dl;
    dl_capped = Check_campaign.capped_of point;
    recovery_verdict = point.Check_campaign.recovery_verdict;
  }

let run ?jobs ?(variants = default_variants) ?(threads = 4)
    ?(iterations = 2000) ?(crash_step = 40_000) ?(seed = 42) ~platform () =
  (* All parameters are fixed before the fan-out, so the rows are
     byte-identical for any [jobs]. *)
  let config = base_config ~platform ~threads ~iterations ~seed in
  Parallel.map ?jobs (measure ~config ~crash_step) variants

let find rows variant =
  List.find_opt (fun r -> r.variant = variant) rows

(* The tentpole claim: the NVTraverse transformation strictly reduces
   flushes per operation versus eager log-flush fortification at equal
   or better throughput. *)
let nvtraverse_beats_logflush rows =
  match
    ( find rows Machine.Nvtraverse_map,
      find rows (Machine.Mutex_map Atlas.Mode.Log_flush) )
  with
  | Some nvt, Some lf ->
      nvt.flushes_per_op < lf.flushes_per_op && nvt.miters >= lf.miters
  | _ -> false

let pp_verdict ppf = function
  | None -> Fmt.string ppf "-"
  | Some Atlas.Recovery.Clean -> Fmt.string ppf "clean"
  | Some (Atlas.Recovery.Degraded _) -> Fmt.string ppf "degraded"
  | Some (Atlas.Recovery.Unrecoverable _) -> Fmt.string ppf "UNRECOVERABLE"

let pp ppf rows =
  Fmt.pf ppf
    "@[<v>fence-complexity frontier (counter workload; psync per \
     completed op):@ ";
  Fmt.pf ppf "%-16s %10s %10s %10s %9s %9s  %-12s %s@ " "variant"
    "flushes/op" "fences/op" "appends/op" "commits" "Miters/s" "DL verdict"
    "recovery";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s %10.3f %10.3f %10.3f %9d %9.2f  %-12s %a@ "
        (Machine.variant_to_cli_string r.variant)
        r.flushes_per_op r.fences_per_op r.appends_per_op r.ocs_commits
        r.miters
        (if r.dl_explained then
           if r.dl_capped = 0 then "explained"
           else Fmt.str "explained*%d" r.dl_capped
         else "FLAGGED")
        pp_verdict r.recovery_verdict)
    rows;
  Fmt.pf ppf
    "(*N: N keys accepted via the conservative subset-sum cap, not \
     proved)@ ";
  Fmt.pf ppf "NVTraverse < log-flush on flushes/op at >= throughput: %s@]"
    (if nvtraverse_beats_logflush rows then "yes" else "NO")

(* The frontier's slice of a results artifact: one row per design with
   its throughput, psync-per-op rates and verdicts — the E23 chart as
   data.  Rows are pure functions of the run parameters, so the
   document is byte-identical across --jobs. *)
let to_json j rows =
  let module J = Obs.Json in
  J.arr_open j;
  List.iter
    (fun r ->
      J.obj_open j;
      J.key j "variant";
      J.str j (Machine.variant_to_cli_string r.variant);
      J.key j "miters";
      J.float j r.miters;
      J.key j "elapsed_cycles";
      J.int j r.elapsed_cycles;
      J.key j "completed_ops";
      J.int j r.completed_ops;
      J.key j "ocs_commits";
      J.int j r.ocs_commits;
      J.key j "flushes_per_op";
      J.float j r.flushes_per_op;
      J.key j "fences_per_op";
      J.float j r.fences_per_op;
      J.key j "appends_per_op";
      J.float j r.appends_per_op;
      J.key j "dl_explained";
      J.bool j r.dl_explained;
      J.key j "dl_capped";
      J.int j r.dl_capped;
      J.key j "recovery";
      (match r.recovery_verdict with
      | None -> J.null j
      | Some v -> J.str j (Fmt.str "%a" Atlas.Recovery.pp_verdict v));
      J.obj_close j)
    rows;
  J.arr_close j
