(** Reproduction of Table 1: throughput of the four map variants on the
    two hardware platforms, with the paper's published numbers alongside
    for shape comparison (experiments E1 and E2 of DESIGN.md). *)

type cell = {
  variant : Runner.variant;
  paper_miters : float;  (** the value printed in the paper's Table 1 *)
  measured_miters : float;  (** mean over the seeds *)
  spread_miters : float;  (** max − min across seeds (0 for one seed) *)
  result : Runner.result;  (** first seed's full run *)
}

type row = { platform : Nvm.Config.t; cells : cell list }

val paper_desktop : float list
(** no-Atlas, log-only, log+flush, non-blocking: 3.66; 2.36; 1.58; 2.54 *)

val paper_server : float list
(** 2.13; 1.50; 1.06; 2.00 *)

val variants : Runner.variant list
(** The four columns, in Table 1 order. *)

val run_row :
  ?threads:int ->
  ?iterations:int ->
  ?seed:int ->
  ?repeats:int ->
  ?jobs:int ->
  Nvm.Config.t ->
  float list ->
  row

val run :
  ?threads:int ->
  ?iterations:int ->
  ?seed:int ->
  ?repeats:int ->
  ?jobs:int ->
  unit ->
  row list
(** Both platforms; defaults: 8 threads, 4000 iterations per thread, one
    seed.  [repeats > 1] reruns each cell with distinct seeds and reports
    the mean with the half-spread.  [jobs] fans the independent cells
    across that many domains (default: the host core count); every cell
    is deterministic, so the table is identical for any [jobs]. *)

val shape_ok : row -> bool
(** The qualitative claims of Section 5.2 hold: [no-Atlas > log-only >
    log+flush], and the TSP mode beats the non-TSP mode by a wide margin
    (>= 25%). *)

val render : row list -> Format.formatter -> unit
(** Print measured vs. paper numbers, normalised overheads, and the
    TSP-vs-non-TSP speedup — the quantities Section 5.2 discusses. *)

val render_breakdown : row -> Format.formatter -> unit
(** Per-variant cycle decomposition (loads / stores / CAS / flushes /
    fences / compute): shows {e where} each fortification level spends
    its time — logging shows up as extra loads+stores+compute, the
    non-TSP mode additionally as flush and fence cycles. *)
