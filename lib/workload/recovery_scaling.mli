(** Recovery-at-scale measurement cells (experiment E22).

    Each cell builds a deterministic heap of N map entries
    ({!Populate}), crashes it, recovers in a chosen
    {!Machine.recovery_mode}, and accounts the outage: total simulated
    cycles, the per-phase split from the tracer registry, GC statistics,
    the deferred background bill (incremental mode) and an FNV digest of
    the recovered heap image.  Because the pre-crash image is a pure
    function of (variant, objects, seed), cells are comparable across
    modes — and the digest plus stats make the byte-identity of the
    parallel path checkable against the sequential one. *)

type cell = {
  variant : Machine.variant;
  objects : int;
  mode : Machine.recovery_mode;
  outage_cycles : int;
      (** simulated cycles from device recovery to "serving again":
          everything {!Machine.recover} charged *)
  background_cycles : int;
      (** incremental mode: the collection bill paid after the shard is
          already serving; 0 in the other modes *)
  on_demand_touches : int;  (** objects recovered on demand (incremental) *)
  phases : (string * int) list;
      (** nonzero tracer phase registry entries (rescue, log_scan,
          rollback, heap_gc, audit, gc_mark, gc_sweep) *)
  gc : Pheap.Heap_gc.stats option;
  verdict : string;
  heap_audit_ok : bool;
  image_hash : int;
      (** FNV-1a over every heap word after collection completes *)
  host_ms : float;  (** wall-clock cost of the whole cell (host side) *)
  recover_host_ms : float;
      (** wall-clock cost of the recovery pipeline alone — [recover]
          through the completed collection — the number mode-to-mode
          host comparisons should use (population dominates [host_ms]
          and is identical across modes) *)
}

val image_hash : Nvm.Pmem.t -> lo:int -> hi:int -> int
(** FNV-1a over the words of [\[lo, hi)] via cost-free peeks. *)

val default_spec : variant:Machine.variant -> seed:int -> Machine.spec

val run_cell :
  ?spec:Machine.spec option ->
  variant:Machine.variant ->
  objects:int ->
  mode:Machine.recovery_mode ->
  seed:int ->
  ?touches:int ->
  unit ->
  cell
(** Build, crash, recover, account.  [touches] (incremental mode only)
    charges that many on-demand first-touch recoveries before the
    background collection is driven to completion; the collection is
    always finished — and its allocator reset applied — before the
    image digest is taken. *)

val cells_match : cell -> cell -> bool
(** Structural identity of two cells, ignoring [mode] and [host_ms] —
    the jobs-identity check: a parallel cell at any job count must
    [cells_match] the same measurement at jobs = 1. *)

val pp_cell : cell Fmt.t

val cell_to_json : Obs.Json.t -> cell -> unit
(** Emit one cell as a results-artifact object.  The host wall-clock
    fields ([host_ms], [recover_host_ms]) are excluded — the artifact
    identity contract only admits pure functions of the cell
    parameters. *)
