(** The fence-complexity frontier (ROADMAP item 1, EXPERIMENTS E23):
    every map design measured on one identical counter workload and
    charted as dynamic psync complexity {e per completed operation} vs
    throughput vs crash-recovery verdict, with the strict
    durable-linearizability verdict (and its conservative-accept
    ledger) alongside.

    Per variant, two deterministic legs: a traced crash-free run
    (throughput + exact psync counters) and a single exhaustive-checker
    crash point under TSP rescue semantics (DL + recovery verdicts).
    Rows are byte-identical for any [jobs]. *)

type row = {
  variant : Machine.variant;
  miters : float;
  elapsed_cycles : int;  (** simulated cycles of the crash-free leg *)
  completed_ops : int;
  ocs_commits : int;  (** 0 for the commit-free designs *)
  flushes_per_op : float;
  fences_per_op : float;
  appends_per_op : float;
  dl_explained : bool;
  dl_capped : int;
      (** keys accepted via the subset-sum cap rather than proved *)
  recovery_verdict : Atlas.Recovery.verdict option;
}

val default_variants : Machine.variant list
(** The six frontier designs: no-log, log-only, log-flush, non-blocking,
    nvtraverse, delay-free. *)

val run :
  ?jobs:int ->
  ?variants:Machine.variant list ->
  ?threads:int ->
  ?iterations:int ->
  ?crash_step:int ->
  ?seed:int ->
  platform:Nvm.Config.t ->
  unit ->
  row list

val find : row list -> Machine.variant -> row option

val nvtraverse_beats_logflush : row list -> bool
(** The tentpole claim: NVTraverse shows strictly fewer flushes per op
    than log-flush at equal or better throughput. *)

val pp : row list Fmt.t

val to_json : Obs.Json.t -> row list -> unit
(** Emit the frontier as a JSON array (one object per design row) —
    the E23 chart as results-artifact data.  Byte-identical across
    [--jobs]. *)
