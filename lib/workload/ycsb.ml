module Rng = Sched.Sim_rng

type preset = A | B | C | F

let preset_to_string = function A -> "A" | B -> "B" | C -> "C" | F -> "F"

let preset_of_string = function
  | "A" | "a" -> Ok A
  | "B" | "b" -> Ok B
  | "C" | "c" -> Ok C
  | "F" | "f" -> Ok F
  | s -> Error (Printf.sprintf "unknown YCSB preset %S (A, B, C or F)" s)

let all_presets = [ A; B; C; F ]

let read_fraction = function A -> 0.5 | B -> 0.95 | C -> 1.0 | F -> 0.5
let rmw_fraction = function F -> 0.5 | A | B | C -> 0.0

module Zipf = struct
  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    zeta2 : float;
  }

  let zeta n theta =
    let acc = ref 0. in
    for i = 1 to n do
      acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
    done;
    !acc

  let create ?(theta = 0.99) ~n () =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    (* theta = 0 is the uniform degenerate case: zetan = n, alpha = 1,
       eta = 1, so [sample] reduces to floor(n * u) exactly. *)
    if theta < 0. || theta >= 1. then
      invalid_arg "Zipf.create: theta must be in [0, 1)";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; zeta2 }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 t.theta then 1
    else
      let rank =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha
      in
      let r = int_of_float rank in
      if r >= t.n then t.n - 1 else if r < 0 then 0 else r

  let n t = t.n
  let theta t = t.theta
end

type op = Read | Update | Rmw

let pick_op preset rng =
  let u = Rng.float rng 1.0 in
  if u < read_fraction preset then Read
  else if u < read_fraction preset +. rmw_fraction preset then Rmw
  else Update
