(** Systematic crash-point campaigns over the workload runner
    (experiments E3 and E9, extended to the adversarial fault models of
    E16).

    A campaign executes many independent crash-and-recover runs and
    verifies every one.  Two enumeration modes:

    - {e sampled} (the default): [runs] crash points drawn from the
      campaign RNG inside [\[min_step, max_step\]], with a fresh per-run
      seed — the paper's SIGKILL methodology with an explicit, finer
      crash point;
    - {e exhaustive}: every [stride]-th simulator step inside a window,
      with a single pinned seed — no randomness at all, so coverage of a
      step range is complete and the schedule is a pure function of the
      spec.

    Either mode can run each crash point under a list of
    {!Nvm.Fault_model.t}s ([None] meaning the TSP-verdict-derived binary
    behaviour).  The binary models are judged on full consistency; the
    adversarial models are judged on {e graceful degradation}: recovery
    must return a structured verdict rather than raise, and only
    [Bit_rot] may report [Unrecoverable] (it alone can corrupt region
    headers).  Every violating run carries a complete, copy-pasteable
    [tsp faults] reproducer, and failing configurations can be shrunk to
    a minimal one automatically.

    All parameters are drawn from the campaign RNG {e before} fanning
    the runs out over domains, so results are independent of [jobs]. *)

type exhaustive = {
  from_step : int;  (** first crash step enumerated *)
  window : int;  (** steps [from_step, from_step + window) are covered *)
  stride : int;  (** enumerate every [stride]-th step (min 1) *)
}

type spec = {
  base : Runner.config;  (** crash point and seed are overridden per run *)
  runs : int;  (** sampled mode: crash points per fault model *)
  min_step : int;  (** earliest crash step to draw *)
  max_step : int;  (** latest crash step to draw *)
  campaign_seed : int;
  fault_models : Nvm.Fault_model.t option list;
      (** models to run every crash point under; [None] = binary
          TSP-verdict behaviour.  Default [[None]]. *)
  exhaustive : exhaustive option;  (** [Some _] selects exhaustive mode *)
  run_seed : int option;
      (** exhaustive mode only: the pinned per-run seed (defaults to
          [campaign_seed]) *)
  shrink : bool;  (** shrink the first violation to a minimal reproducer *)
  repro_tag : string;
      (** extra flags appended verbatim to generated reproducers (e.g.
          ["--smoke"]), so they replay under the same preset *)
}

type run_outcome = {
  seed : int;
  crash_step : int;
  fault : Nvm.Fault_model.t option;
  crashed : bool;  (** false when the run finished before the crash point *)
  consistent : bool;
  graceful : bool;  (** the run returned instead of raising *)
  recovery_verdict : Atlas.Recovery.verdict option;
  violation : bool;  (** this run broke its fault model's promise *)
  expected : bool;
      (** the violation is the documented behaviour of the configuration
          (e.g. an unfortified variant under discard semantics) *)
  repro : string;  (** complete [tsp faults] invocation replaying this run *)
  iterations_done : int;
  invariants : Invariant.result;
  observer_prefix_ok : bool option;
  rolled_back : int;  (** undo updates applied during recovery *)
  cascaded : int;
  gc_freed : int;
  errors : string list;
  cycle_totals : int array;
      (** per-category device cycles ({!Nvm.Stats.cycle_totals}) of this
          run, recorded in its own domain so campaign aggregation is
          jobs-invariant *)
}

type model_tally = {
  model : Nvm.Fault_model.t option;
  m_runs : int;
  m_crashes : int;
  m_consistent : int;
  m_clean : int;  (** crashed runs whose recovery verdict was [Clean] *)
  m_degraded : int;
  m_unrecoverable : int;
  m_violations : int;
  m_unexpected : int;
}

type shrunk = {
  original : string;  (** reproducer of the violation as found *)
  minimized : string;  (** reproducer after shrinking *)
  attempts : int;  (** probe runs the shrinker spent *)
  final_iterations : int;
  final_crash_step : int;
}

type summary = {
  spec : spec;
  outcomes : run_outcome list;
  total : int;
  crashes : int;
  consistent_recoveries : int;
  violations : int;  (** runs that broke their fault model's promise *)
  unexpected_violations : int;
      (** violations not explained by the configuration — these should
          fail a CI campaign *)
  per_model : model_tally list;  (** one ledger row per fault model *)
  shrunk : shrunk option;
}

val default_spec : Runner.config -> spec
(** 100 sampled runs, crash step drawn from [500, 150000], campaign
    seed 99, binary fault behaviour, no shrinking. *)

val model_label : Nvm.Fault_model.t option -> string
(** ["policy"] for [None], {!Nvm.Fault_model.to_string} otherwise. *)

val one :
  spec ->
  fault:Nvm.Fault_model.t option ->
  seed:int ->
  crash_step:int ->
  run_outcome
(** Execute and judge a single crash-and-recover run.  Never raises: an
    escaped exception is recorded as a non-graceful, unexpected
    violation. *)

val tally : model:Nvm.Fault_model.t option -> run_outcome list -> model_tally
(** One verdict-ledger row: bucket [model]'s outcomes by recovery
    verdict ([Clean]/[Degraded]/[Unrecoverable]) and judgement.  This is
    exactly what {!run} computes per fault model; exposed so the
    bookkeeping is testable on hand-built outcomes. *)

val run : ?jobs:int -> spec -> summary
(** Execute the campaign.  Crash points and per-run seeds are drawn from
    the campaign RNG up front, so the schedule — and every outcome — is
    a pure function of [spec] regardless of [jobs] (default: host core
    count), which only fans the independent runs across domains. *)

val all_consistent : summary -> bool
(** No violations, and every run (crashed or not) passed its
    invariants. *)

val violation_rate : summary -> float
(** Violations as a fraction of crashed runs. *)

val breakdown : summary -> int array
(** Element-wise sum of every outcome's [cycle_totals]: where the
    campaign's simulated device time went, printable with
    {!Nvm.Stats.pp_breakdown_totals}. *)

val pp_summary : summary Fmt.t
(** Campaign header, per-fault-model verdict ledger, distinct failure
    signatures, one line per violation with its reproducer (first 20),
    and the shrinking result if any. *)

val failure_detail : run_outcome -> string
(** The deterministic one-line diagnosis of a violating outcome (first
    failing invariant, first recovery error, or the inconsistency
    class), shared by {!pp_summary}, {!signature_of} and the artifact. *)

val signature_of : run_outcome -> Obs.Signature.t option
(** Normalized failure signature of a violating outcome ([None] for
    clean runs): failure class x fault model x normalized diagnosis x
    failing-check shape.  Stable across seeds, crash steps and cycle
    counts — the same bug at two crash points yields the same
    signature. *)

val distinct_signatures : summary -> (Obs.Signature.t * int) list
(** Deduped signatures with multiplicities, in first-seen order. *)

val ledger_row : model_tally -> string
(** The exact verdict-ledger line {!pp_summary} prints for this model —
    also embedded verbatim in the results artifact, so the replay
    gate's byte-identity covers the same bytes a human reads. *)

val to_json : Obs.Json.t -> summary -> unit
(** Emit this campaign's results-artifact object: spec echo, totals,
    the verdict ledger, deduped signatures, per-violation rows with
    reproducers, the shrinking result and the jobs-invariant cycle
    breakdown. *)
