(** Fault-injection campaigns (experiment E3, plus the E9 negative
    control).

    The paper's methodology: run the workload, deliver SIGKILL at an
    arbitrary moment, recover, verify the invariants — hundreds of times.
    Here the crash point is an explicit step index drawn from a seeded
    RNG, so every run in a campaign is reproducible in isolation, and the
    crash can land between {e any} two memory operations, which is finer
    and more adversarial than wall-clock SIGKILL delivery. *)

type spec = {
  base : Runner.config;  (** crash point and seed are overridden per run *)
  runs : int;
  min_step : int;  (** earliest crash step to draw *)
  max_step : int;  (** latest crash step to draw *)
  campaign_seed : int;
}

type run_outcome = {
  seed : int;
  crash_step : int;
  crashed : bool;  (** false when the run finished before the crash point *)
  consistent : bool;
  iterations_done : int;
  invariants : Invariant.result;
  observer_prefix_ok : bool option;
  rolled_back : int;  (** undo updates applied during recovery *)
  cascaded : int;
  gc_freed : int;
  errors : string list;
}

type summary = {
  spec : spec;
  outcomes : run_outcome list;
  total : int;
  crashes : int;
  consistent_recoveries : int;
  violations : int;  (** crashed runs that failed verification *)
}

val default_spec : Runner.config -> spec
(** 100 runs, crash step drawn from [500, 150000]. *)

val run : ?jobs:int -> spec -> summary
(** Execute the campaign.  Crash points and per-run seeds are drawn from
    the campaign RNG up front, so the schedule — and every outcome — is
    a pure function of [spec] regardless of [jobs] (default: host core
    count), which only fans the independent runs across domains. *)

val all_consistent : summary -> bool
(** Every crashed run recovered to a verified-consistent state. *)

val violation_rate : summary -> float
val pp_summary : summary Fmt.t
