(** Parameter sweeps: the prose claims of the paper made measurable, plus
    the ablations DESIGN.md calls out (experiments E4, E7, E8 and the
    cache ablation).  The paper itself contains no figures; each sweep
    here regenerates a claim as a data series. *)

type point = { x : float; values : (string * float) list }

type series_table = {
  title : string;
  x_label : string;
  series_names : string list;
  points : point list;
}

(** Every sweep below accepts [?jobs]: its points are independent
    deterministic cells, fanned across that many domains via
    {!Parallel.map} (default: host core count).  The resulting series is
    identical for any job count; only wall-clock time changes. *)

val flush_latency :
  ?iterations:int -> ?latencies:int list -> ?jobs:int -> unit -> series_table
(** E7: throughput of Atlas log-only (TSP) vs log+flush (no TSP) as the
    NVM flush latency grows.  TSP's advantage is the flush count times
    this latency, so the gap must widen — quantifying "emerging
    architectures sometimes reward procrastination handsomely". *)

val thread_scaling :
  ?iterations:int -> ?thread_counts:int list -> ?jobs:int -> unit -> series_table
(** E8: all four Table 1 variants from 1 to 16 threads. *)

val log_cost_ablation :
  ?iterations:int -> ?log_cycles:int list -> ?jobs:int -> unit -> series_table
(** E4: overhead factor (native / fortified) of log-only and log+flush as
    the per-entry logging cost grows.  Locates the regime in which the
    paper's earlier application study saw 3x (log) and 5x (log+flush). *)

val cache_ablation :
  ?iterations:int -> ?cache_lines:int list -> ?jobs:int -> unit -> series_table
(** Design ablation: a smaller cache evicts (and thus writes back) dirty
    lines sooner, narrowing the window TSP must rescue — but also raising
    miss costs.  Reports log-only throughput and the dirty lines left at
    a crash point per cache size. *)

val render : series_table -> Format.formatter -> unit

val read_ratio :
  ?iterations:int -> ?read_pcts:int list -> ?jobs:int -> unit -> series_table
(** E12: fortification overhead vs the share of read-only iterations.
    Undo logging and flushing act only on stores, so both overheads must
    fall monotonically as reads dominate. *)

(** {1 E11: the procrastinator's ledger}

    TSP's bargain quantified for one crash: how many synchronous flushes
    the prevention strategy paid before the crash, versus how many dirty
    lines the procrastination strategy had to rescue at crash time and
    what its recovery pipeline cost. *)

type ledger = {
  crash_step : int;
  runtime_flushes_no_tsp : int;
  rescued_lines_tsp : int;
  recovery_cycles_tsp : int;
  recovery_cycles_no_tsp : int;
  flushes_avoided_per_rescued_line : float;
}

val procrastination_ledger :
  ?iterations:int -> ?crash_step:int -> ?jobs:int -> unit -> ledger

val pp_ledger : ledger Fmt.t

val ycsb_table :
  ?iterations:int ->
  ?records:int ->
  ?jobs:int ->
  Ycsb.preset ->
  Ycsb.preset * int * string list list
(** Run one YCSB preset across the map variants (hash map in three Atlas
    modes, the B+-tree, the skip list) and tabulate throughput plus
    per-operation latency percentiles in simulated cycles. *)

val render_ycsb :
  Ycsb.preset * int * string list list -> Format.formatter -> unit
