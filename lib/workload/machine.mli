(** One simulated "machine": a private NVM device, scheduler, Atlas
    runtime and map instance, bundled so that several of them can
    coexist in one process.

    Historically {!Runner} built this quintet inline and assumed it was
    alone in the world; the sharded service layer ([lib/service]) needs
    N of them side by side — one per shard — each crashing and
    recovering independently while the others keep executing.  This
    module is that refactor: everything device-, scheduler- or
    map-shaped that {!Runner.run} used to wire by hand now lives behind
    one handle, and {!Runner} itself is a client.

    {b Multi-instance safety} (audited for this refactor): every piece
    of state the machine touches is per-instance —
    {!Sched.Scheduler.t} carries its own RNG, thread table, quantum and
    tracer field; {!Nvm.Pmem.t} its own cache, images, hooks and stats;
    {!Atlas.Runtime} and the maps live inside their machine's heap.
    The only cross-instance values are {!Sched.Scheduler.null_quantum}
    — a deliberately shared sentinel whose budget can never become
    positive (its owning scheduler never runs) — and the tracer a spec
    may carry.  A {!Obs.Tracer.t} registers per-ring context closures
    ([set_clock]/[set_tid]/[set_dirty]), and {!create}/{!reattach}
    point them at {e this} machine's scheduler and device: sharing one
    tracer between two live machines would cross-wire those closures,
    so every machine must be given its own tracer (or none).  *)

type variant =
  | Mutex_map of Atlas.Mode.t
  | Mutex_btree of Atlas.Mode.t
  | Nonblocking_map
  | Nvtraverse_map
      (** {!Tsp_maps.Nvtraverse_skiplist}: traversal unflushed, O(1)
          flushes in the critical update window *)
  | Delayfree_map
      (** {!Tsp_maps.Delayfree_map}: recoverable CAS, announce/ack
          protocol re-executed exactly once by recovery *)

val variant_to_string : variant -> string
(** Display form ("mutex/log-only", "non-blocking", "nvtraverse", ...). *)

val variant_to_cli_string : variant -> string
(** Canonical `tsp --variant` spelling; the single source of truth for
    the CLI parser and the fault injector's reproducer lines. *)

val variant_of_string : string -> (variant, string) result
(** Parse a CLI spelling (canonical or alias).  Round-trips with
    {!variant_to_cli_string} for every variant in {!all_variants}. *)

val all_variants : variant list
(** Every constructor (mutex and btree maps at each Atlas mode, plus the
    three commit-free designs), for frontier sweeps and round-trip
    tests. *)

type spec = {
  platform : Nvm.Config.t;
  variant : variant;
  threads : int;
      (** simulated threads the map must support (Atlas per-thread logs,
          skip-list tower RNGs) *)
  seed : int;
  journal : bool;
  n_buckets : int;
  log_mib : int;
  atlas_costs : Atlas.Runtime.costs;
  cost_jitter : int;
  hash_op_cycles : int;
  skip_op_cycles : int;
  value_words : int;  (** hash-map value width; 1 for every workload but Wide *)
  quantum : bool;
  deterministic_slice : int;
  tracer : Obs.Tracer.t option;
      (** must be private to this machine — see the module header *)
  hardware : Tsp_core.Hardware.t;
  failure : Tsp_core.Failure_class.t;
}

(** The map under test with the handles recovery-time verification
    needs: [fold_root] dumps the persistent structure with plain loads
    against {e any} heap handle over the same device, so it works on the
    re-attached post-crash heap too. *)
type map = {
  map_ops : Tsp_maps.Map_intf.ops;
  set_plain : key:int -> value:int64 -> unit;
  fold_root :
    Pheap.Heap.t ->
    root:Pheap.Heap.addr ->
    (int -> int64 -> (int * int64) list -> (int * int64) list) ->
    (int * int64) list;
  hashmap : Tsp_maps.Chained_hashmap.t option;
      (** the richer interface (transfers, wide values); mutex map only *)
}

type t = {
  spec : spec;
  pmem : Nvm.Pmem.t;
  mutable heap : Pheap.Heap.t;
      (** re-pointed at the recovered heap by a successful {!recover} *)
  mutable sched : Sched.Scheduler.t;
      (** replaced by {!reattach} (a restart gets a fresh scheduler) *)
  mutable atlas : Atlas.Runtime.t option;
  mutable map : map;
  mutable gc_pending : Pheap.Heap_gc.Incremental.t option;
      (** set by an [Incremental_gc] {!recover}; cleared by
          {!finish_background_gc} *)
}

val log_base : spec -> int
(** First byte of the undo-log region (= heap size). *)

val create : spec -> t
(** Build the machine: device, heap, scheduler (with the spec's tracer
    wired), Atlas runtime (mutex variants) and an empty map.  Population
    and thread spawning are the caller's business. *)

val instrument :
  t -> (Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops) -> unit
(** Interpose on the map's operation record (history recorders, mutation
    harnesses).  [set_plain] and [fold_root] bypass the wrapper. *)

val execute : ?crash_at_step:int -> t -> Sched.Scheduler.outcome
(** Wire the device's step hook and quantum handle to this machine's
    scheduler, run every spawned thread to completion/deadlock/crash,
    and unwire (even on exceptions). *)

val in_phase : t -> int -> (unit -> 'a) -> 'a
(** Bracket [f] with {!Obs.Tracer.phase_begin}/[phase_end] events when
    the spec carries a tracer; just run it otherwise. *)

val crash_execute :
  ?fault:Nvm.Fault_model.t -> t -> Tsp_core.Crash_executor.execution
(** Execute the crash-time TSP rescue plan (or the adversarial [fault])
    for the spec's hardware and failure class.  The crash draws come
    from their own seed-derived stream, so a given (spec, crash step)
    is bit-reproducible regardless of what the workload drew. *)

(** How {!recover} runs the expensive phases (log scan + heap GC):

    - [Eager]: the historical path — every word through the costed cache
      simulation, GC completes before {!recover} returns.  This is the
      charge sequence the committed benchmark snapshots pin.
    - [Parallel_gc jobs]: the streamed engines — log rings and GC mark
      chunks scanned with cost-free peeks on up to [jobs] domains, one
      analytic cold-miss bill.  Stats, verdicts and the recovered heap
      image are byte-identical for {e any} [jobs] (including 1); only
      host wall-clock changes.
    - [Incremental_gc]: streamed discovery, deferred application.
      {!recover} returns as soon as rollback and GC {e planning} are
      done; the collection bill sits in [gc_pending] for a background
      fiber to drain ({!Pheap.Heap_gc.Incremental.advance}/[touch]),
      and {!finish_background_gc} applies the allocator reset.  The
      planned [gc] stats and [gc_quarantine] — and hence the verdict —
      are already final. *)
type recovery_mode = Eager | Parallel_gc of int | Incremental_gc

val recovery_mode_to_string : recovery_mode -> string

type recovery = {
  heap : Pheap.Heap.t option;  (** [None]: attach failed (unrecoverable) *)
  observer : Tsp_core.Recovery_observer.verdict option;
  atlas_recovery : Atlas.Recovery.report option;
  rcas_repair : Tsp_maps.Delayfree_map.repair option;
      (** [Delayfree_map] only: outcome of completing/aborting every
          in-flight announced CAS (exactly once) before the table is
          read *)
  gc : Pheap.Heap_gc.stats option;
  gc_quarantine : Pheap.Heap_gc.quarantine option;
  gc_pending : Pheap.Heap_gc.Incremental.t option;
      (** [Incremental_gc] only: the deferred collection *)
  recovery_verdict : Atlas.Recovery.verdict;
  heap_audit_ok : bool;
  recovery_errors : string list;
}

val recover : ?mode:recovery_mode -> t -> recovery
(** The whole post-crash pipeline: device recovery, heap re-attach,
    Atlas rollback (mutex variants), graceful GC, audit.  Failures are
    reported, never raised.  On success [t.heap] is re-pointed at the
    recovered heap; [t.atlas] and [t.map] are stale until {!reattach}
    (the recovered state can still be dumped via [map.fold_root] against
    [recovery.heap]).  [mode] defaults to [Eager]. *)

val finish_background_gc :
  t -> (Pheap.Heap_gc.stats * Pheap.Heap_gc.quarantine) option
(** Complete a pending incremental collection (pay any remaining budget,
    apply the allocator reset) and clear [gc_pending].  [None] when no
    collection is pending. *)

val reattach : t -> seed:int -> first_seq:int -> Pheap.Heap.addr
(** Restart the machine on its recovered heap: fresh scheduler (with the
    tracer re-wired), fresh Atlas runtime starting at [first_seq], and
    the map re-attached at the persistent root, which is returned (the
    root read is a simulated load; callers wanting the root must reuse
    this one, not re-read it).  After this the machine serves again:
    spawn threads and {!execute}. *)

val dump : t -> (int * int64) list
(** [map.fold_root] over the machine's current heap and root. *)
