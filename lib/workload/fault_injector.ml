module Rng = Sched.Sim_rng
module FM = Nvm.Fault_model

type exhaustive = { from_step : int; window : int; stride : int }

type spec = {
  base : Runner.config;
  runs : int;
  min_step : int;
  max_step : int;
  campaign_seed : int;
  fault_models : FM.t option list;
  exhaustive : exhaustive option;
  run_seed : int option;
  shrink : bool;
  repro_tag : string;
}

type run_outcome = {
  seed : int;
  crash_step : int;
  fault : FM.t option;
  crashed : bool;
  consistent : bool;
  graceful : bool;
  recovery_verdict : Atlas.Recovery.verdict option;
  violation : bool;
  expected : bool;
  repro : string;
  iterations_done : int;
  invariants : Invariant.result;
  observer_prefix_ok : bool option;
  rolled_back : int;
  cascaded : int;
  gc_freed : int;
  errors : string list;
  cycle_totals : int array;
}

type model_tally = {
  model : FM.t option;
  m_runs : int;
  m_crashes : int;
  m_consistent : int;
  m_clean : int;
  m_degraded : int;
  m_unrecoverable : int;
  m_violations : int;
  m_unexpected : int;
}

type shrunk = {
  original : string;
  minimized : string;
  attempts : int;
  final_iterations : int;
  final_crash_step : int;
}

type summary = {
  spec : spec;
  outcomes : run_outcome list;
  total : int;
  crashes : int;
  consistent_recoveries : int;
  violations : int;
  unexpected_violations : int;
  per_model : model_tally list;
  shrunk : shrunk option;
}

let default_spec base =
  {
    base;
    runs = 100;
    min_step = 500;
    max_step = 150_000;
    campaign_seed = 99;
    fault_models = [ None ];
    exhaustive = None;
    run_seed = None;
    shrink = false;
    repro_tag = "";
  }

let model_label = function None -> "policy" | Some m -> FM.to_string m

(* The CLI spelling of each variant, for copy-pasteable reproducers:
   the canonical spellings live in [Machine] next to the parser, so the
   two cannot drift. *)
let variant_flag = Machine.variant_to_cli_string

(* A complete `tsp faults` invocation replaying exactly this run: the
   exhaustive enumerator with a one-step window and a pinned per-run
   seed is the single-run special case of a campaign. *)
let repro_of spec ~fault ~seed ~crash_step =
  let b = spec.base in
  let buf = Buffer.create 160 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "tsp faults --variant %s --hardware '%s' --failure %s"
    (variant_flag b.Runner.variant)
    b.Runner.hardware.Tsp_core.Hardware.name
    (Tsp_core.Failure_class.to_string b.Runner.failure);
  if
    not
      (String.equal b.Runner.platform.Nvm.Config.name
         Nvm.Config.desktop.Nvm.Config.name)
  then add " --platform server";
  (match b.Runner.workload with
  | Runner.Transfers _ -> add " --transfers"
  | Runner.Wide { value_words; _ } -> add " --wide %d" value_words
  | Runner.Counters _ | Runner.Mixed _ | Runner.Ycsb _ -> ());
  if b.Runner.journal then add " --journal";
  add " --threads %d --iterations %d" b.Runner.threads b.Runner.iterations;
  (match fault with
  | Some fm -> add " --fault-model %s" (FM.to_string fm)
  | None -> ());
  add " --campaign-seed %d" spec.campaign_seed;
  add " --exhaustive --from %d --window 1 --run-seed %d" crash_step seed;
  if not (String.equal spec.repro_tag "") then add " %s" spec.repro_tag;
  Buffer.contents buf

let one spec ~fault ~seed ~crash_step =
  let repro = repro_of spec ~fault ~seed ~crash_step in
  let config =
    {
      spec.base with
      Runner.seed;
      crash_at_step = Some crash_step;
      fault_model = fault;
    }
  in
  match Runner.run config with
  | r ->
      let crashed =
        match r.Runner.outcome with Runner.Crashed _ -> true | _ -> false
      in
      let consistent = Runner.consistent r in
      let recovery_verdict =
        Option.map (fun c -> c.Runner.recovery_verdict) r.Runner.crash
      in
      let adversarial =
        match fault with Some f -> FM.adversarial f | None -> false
      in
      let tsp_covered =
        match r.Runner.crash with
        | Some c -> Tsp_core.Policy.is_tsp c.Runner.verdict
        | None -> true
      in
      (* Judging rules: the binary models (and the verdict-derived
         default) promise full consistency; the adversarial models only
         promise graceful degradation — recovery must come back with a
         structured verdict, and only Bit_rot is allowed to reach
         [Unrecoverable] (it alone can hit region headers). *)
      let violation =
        if not crashed then not consistent
        else if adversarial then
          match (recovery_verdict, fault) with
          | Some (Atlas.Recovery.Unrecoverable _), Some (FM.Bit_rot _) ->
              false
          | Some (Atlas.Recovery.Unrecoverable _), _ -> true
          | _ -> false
        else not consistent
      in
      let expected =
        violation
        &&
        match fault with
        | Some FM.Full_discard -> true
        | Some _ -> false
        | None -> not tsp_covered
      in
      let observer_prefix_ok =
        Option.bind r.Runner.crash (fun c ->
            Option.map
              (fun o -> o.Tsp_core.Recovery_observer.prefix_ok)
              c.Runner.observer)
      in
      let rolled_back, cascaded =
        match r.Runner.crash with
        | Some { Runner.atlas_recovery = Some a; _ } ->
            (a.Atlas.Recovery.updates_applied, a.Atlas.Recovery.cascaded)
        | _ -> (0, 0)
      in
      let gc_freed =
        match r.Runner.crash with
        | Some { Runner.gc = Some g; _ } -> g.Pheap.Heap_gc.freed_objects
        | _ -> 0
      in
      let errors =
        match r.Runner.crash with
        | Some c -> c.Runner.recovery_errors
        | None -> []
      in
      {
        seed;
        crash_step;
        fault;
        crashed;
        consistent;
        graceful = true;
        recovery_verdict;
        violation;
        expected;
        repro;
        iterations_done = r.Runner.iterations_done;
        invariants = r.Runner.invariants;
        observer_prefix_ok;
        rolled_back;
        cascaded;
        gc_freed;
        errors;
        cycle_totals = Nvm.Stats.cycle_totals r.Runner.device_stats;
      }
  | exception exn ->
      (* An escaped exception is the one thing no fault model tolerates:
         the run is recorded as a non-graceful, unexpected violation
         instead of killing the campaign. *)
      let msg = Printexc.to_string exn in
      {
        seed;
        crash_step;
        fault;
        crashed = true;
        consistent = false;
        graceful = false;
        recovery_verdict = None;
        violation = true;
        expected = false;
        repro;
        iterations_done = 0;
        invariants = Invariant.failed ("raised: " ^ msg);
        observer_prefix_ok = None;
        rolled_back = 0;
        cascaded = 0;
        gc_freed = 0;
        errors = [ "raised: " ^ msg ];
        cycle_totals =
          Array.make (Array.length Nvm.Stats.cycle_category_names) 0;
      }

(* Greedy bounded shrinking: try to halve the crash step and the
   iteration count (and to collapse Bit_rot to a single flip) while the
   violation persists; each accepted candidate restarts the pass. *)
let minimize spec o =
  let budget = ref 40 in
  let attempts = ref 0 in
  let still_fails ~iterations ~crash_step ~fault =
    if !budget <= 0 then false
    else begin
      decr budget;
      incr attempts;
      let s =
        { spec with base = { spec.base with Runner.iterations } }
      in
      (one s ~fault ~seed:o.seed ~crash_step).violation
    end
  in
  let iterations = ref spec.base.Runner.iterations in
  let crash_step = ref o.crash_step in
  let fault = ref o.fault in
  (match !fault with
  | Some (FM.Bit_rot { flips }) when flips > 1 ->
      let cand = Some (FM.Bit_rot { flips = 1 }) in
      if still_fails ~iterations:!iterations ~crash_step:!crash_step ~fault:cand
      then fault := cand
  | _ -> ());
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let cand_step = max 1 (!crash_step / 2) in
    if
      cand_step < !crash_step
      && still_fails ~iterations:!iterations ~crash_step:cand_step
           ~fault:!fault
    then begin
      crash_step := cand_step;
      progress := true
    end;
    let cand_iters = max 1 (!iterations / 2) in
    if
      cand_iters < !iterations
      && still_fails ~iterations:cand_iters ~crash_step:!crash_step
           ~fault:!fault
    then begin
      iterations := cand_iters;
      progress := true
    end
  done;
  let min_spec =
    { spec with base = { spec.base with Runner.iterations = !iterations } }
  in
  {
    original = o.repro;
    minimized =
      repro_of min_spec ~fault:!fault ~seed:o.seed ~crash_step:!crash_step;
    attempts = !attempts;
    final_iterations = !iterations;
    final_crash_step = !crash_step;
  }

(* One ledger row: the outcomes of [model]'s runs, bucketed by recovery
   verdict and judgement.  Public so the verdict bookkeeping (including
   the [Unrecoverable] bucket, which only Bit_rot may legitimately
   reach) is testable on hand-built outcomes. *)
let tally ~model outcomes =
  let mine = List.filter (fun o -> o.fault = model) outcomes in
  let c p = List.length (List.filter p mine) in
  {
    model;
    m_runs = List.length mine;
    m_crashes = c (fun o -> o.crashed);
    m_consistent = c (fun o -> o.crashed && o.consistent);
    m_clean = c (fun o -> o.recovery_verdict = Some Atlas.Recovery.Clean);
    m_degraded =
      c (fun o ->
          match o.recovery_verdict with
          | Some (Atlas.Recovery.Degraded _) -> true
          | _ -> false);
    m_unrecoverable =
      c (fun o ->
          match o.recovery_verdict with
          | Some (Atlas.Recovery.Unrecoverable _) -> true
          | _ -> false);
    m_violations = c (fun o -> o.violation);
    m_unexpected = c (fun o -> o.violation && not o.expected);
  }

let run ?jobs spec =
  let models =
    match spec.fault_models with [] -> [ None ] | ms -> ms
  in
  (* Draw every run's parameters before fanning out, so the schedule is
     a pure function of the spec regardless of [jobs].  The sampled
     stream continues across models, and a single-model sampled
     campaign draws exactly what the pre-fault-model code drew. *)
  let params =
    match spec.exhaustive with
    | Some { from_step; window; stride } ->
        let stride = max 1 stride in
        let seed = Option.value spec.run_seed ~default:spec.campaign_seed in
        let steps = (window + stride - 1) / stride in
        List.concat_map
          (fun m ->
            List.init steps (fun i -> (m, seed, from_step + (i * stride))))
          models
    | None ->
        let rng = Rng.create ~seed:spec.campaign_seed in
        List.concat_map
          (fun m ->
            List.init spec.runs (fun i ->
                let seed = 10_000 + (13 * i) + Rng.int rng 7 in
                let crash_step =
                  spec.min_step
                  + Rng.int rng (max 1 (spec.max_step - spec.min_step))
                in
                (m, seed, crash_step)))
          models
  in
  let outcomes =
    Parallel.map ?jobs
      (fun (fault, seed, crash_step) -> one spec ~fault ~seed ~crash_step)
      params
  in
  let count p = List.length (List.filter p outcomes) in
  let crashes = count (fun o -> o.crashed) in
  let consistent_recoveries = count (fun o -> o.crashed && o.consistent) in
  let violations = count (fun o -> o.violation) in
  let unexpected_violations =
    count (fun o -> o.violation && not o.expected)
  in
  let per_model = List.map (fun m -> tally ~model:m outcomes) models in
  let shrunk =
    if not spec.shrink then None
    else
      let pick =
        match
          List.find_opt (fun o -> o.violation && not o.expected) outcomes
        with
        | Some o -> Some o
        | None -> List.find_opt (fun o -> o.violation) outcomes
      in
      Option.map (minimize spec) pick
  in
  {
    spec;
    outcomes;
    total = List.length params;
    crashes;
    consistent_recoveries;
    violations;
    unexpected_violations;
    per_model;
    shrunk;
  }

let all_consistent s =
  s.violations = 0 && List.for_all (fun o -> o.consistent) s.outcomes

let violation_rate s =
  if s.crashes = 0 then 0. else float_of_int s.violations /. float_of_int s.crashes

(* Device cycles summed across every run in the campaign.  Each outcome
   carries its own per-category totals (recorded inside whichever
   [Parallel.map] domain ran it), so the sum is jobs-invariant. *)
let breakdown s =
  let acc = Array.make (Array.length Nvm.Stats.cycle_category_names) 0 in
  List.iter
    (fun o ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) o.cycle_totals)
    s.outcomes;
  acc

(* The deterministic one-line diagnosis of a violating outcome, shared
   by the summary printer, the failure signature and the artifact. *)
let failure_detail o =
  if not o.graceful then
    match o.errors with e :: _ -> e | [] -> "raised"
  else if not o.invariants.Invariant.ok then
    match
      List.find_opt
        (fun (c : Invariant.check) -> not c.Invariant.ok)
        o.invariants.Invariant.checks
    with
    | Some c -> c.Invariant.name ^ ": " ^ c.Invariant.detail
    | None -> "inconsistent"
  else "inconsistent recovery"

(* Normalized failure signature: class x fault model x normalized
   diagnosis x failing-check shape — never the seed, crash step or any
   cycle count, so the same bug at two crash points (or under two
   campaign seeds) dedupes to one identity. *)
let signature_of o =
  if not o.violation then None
  else
    let klass =
      if not o.graceful then "raise"
      else
        match o.recovery_verdict with
        | Some (Atlas.Recovery.Unrecoverable _) -> "unrecoverable"
        | _ ->
            if not o.invariants.Invariant.ok then "invariant"
            else "inconsistent"
    in
    let failing =
      List.length
        (List.filter
           (fun (c : Invariant.check) -> not c.Invariant.ok)
           o.invariants.Invariant.checks)
    in
    Some
      (Obs.Signature.make ~klass ~phase:(model_label o.fault)
         ~invariant:(failure_detail o)
         ~shape:(Obs.Signature.shape_of_count failing))

(* Distinct signatures with multiplicities, in first-seen order. *)
let distinct_signatures s =
  List.fold_left
    (fun acc o ->
      match signature_of o with
      | None -> acc
      | Some sg -> (
          match
            List.assoc_opt sg.Obs.Signature.hash
              (List.map (fun (g, n) -> (g.Obs.Signature.hash, n)) acc)
          with
          | Some _ ->
              List.map
                (fun (g, n) ->
                  if Obs.Signature.equal g sg then (g, n + 1) else (g, n))
                acc
          | None -> acc @ [ (sg, 1) ]))
    [] s.outcomes

(* One verdict-ledger line per fault model; the exact string is an
   identity witness (the replay gate compares it byte-for-byte), so it
   is built here and reused verbatim by [pp_summary] and the artifact. *)
let ledger_row t =
  Printf.sprintf
    "%-20s %4d runs, %4d crashed, %4d consistent; verdicts \
     clean/degraded/unrecoverable %d/%d/%d; %d violations (%d unexpected)"
    (model_label t.model) t.m_runs t.m_crashes t.m_consistent t.m_clean
    t.m_degraded t.m_unrecoverable t.m_violations t.m_unexpected

let pp_summary ppf s =
  let total_rb = List.fold_left (fun a o -> a + o.rolled_back) 0 s.outcomes in
  let total_casc = List.fold_left (fun a o -> a + o.cascaded) 0 s.outcomes in
  let total_gc = List.fold_left (fun a o -> a + o.gc_freed) 0 s.outcomes in
  Fmt.pf ppf
    "@[<v>campaign: %s, %s vs %s on %s%s@ %d runs: %d crashed, %d recovered \
     consistent, %d VIOLATIONS (%d unexpected, rate %.1f%%)@ rollback work: \
     %d updates, %d cascaded sections, %d objects GC'd"
    (Runner.variant_to_string s.spec.base.Runner.variant)
    (Tsp_core.Failure_class.to_string s.spec.base.Runner.failure)
    s.spec.base.Runner.hardware.Tsp_core.Hardware.name
    s.spec.base.Runner.platform.Nvm.Config.name
    (match s.spec.exhaustive with
    | Some e ->
        Printf.sprintf " (exhaustive steps [%d,%d) stride %d)" e.from_step
          (e.from_step + e.window) e.stride
    | None -> "")
    s.total s.crashes s.consistent_recoveries s.violations
    s.unexpected_violations
    (100. *. violation_rate s)
    total_rb total_casc total_gc;
  Fmt.pf ppf "@ device cycles across all runs:@ %a" Nvm.Stats.pp_breakdown_totals
    (breakdown s);
  List.iter (fun t -> Fmt.pf ppf "@ %s" (ledger_row t)) s.per_model;
  (match distinct_signatures s with
  | [] -> ()
  | sigs ->
      Fmt.pf ppf "@ distinct failure signatures: %d" (List.length sigs);
      List.iter
        (fun (sg, n) -> Fmt.pf ppf "@   %a x%d" Obs.Signature.pp sg n)
        sigs);
  let shown = ref 0 in
  let hidden = ref 0 in
  List.iter
    (fun o ->
      if o.violation then
        if !shown >= 20 then incr hidden
        else begin
          incr shown;
          Fmt.pf ppf
            "@ VIOLATION (%s) fault=%s campaign-seed=%d seed=%d step=%d: %s@ \
            \  repro: %s"
            (if o.expected then "expected" else "UNEXPECTED")
            (model_label o.fault) s.spec.campaign_seed o.seed o.crash_step
            (failure_detail o) o.repro
        end)
    s.outcomes;
  if !hidden > 0 then Fmt.pf ppf "@ ... and %d more violations" !hidden;
  (match s.shrunk with
  | None -> ()
  | Some sh ->
      Fmt.pf ppf
        "@ shrunk (%d probe runs): crash step %d, %d iterations@ \
        \  minimal repro: %s"
        sh.attempts sh.final_crash_step sh.final_iterations sh.minimized);
  Fmt.pf ppf "@]"

(* The campaign's slice of a results artifact: spec echo, verdict
   ledger (reusing [ledger_row] verbatim, so the replay gate's
   string-identity covers the same bytes a human reads), every
   violation with its normalized signature and reproducer, and the
   jobs-invariant cycle breakdown.  Seeds and crash steps are drawn
   before the parallel fan-out, so including them keeps the document
   byte-identical across --jobs. *)
let to_json j s =
  let module J = Obs.Json in
  let b = s.spec.base in
  J.obj_open j;
  J.key j "variant";
  J.str j (variant_flag b.Runner.variant);
  J.key j "hardware";
  J.str j b.Runner.hardware.Tsp_core.Hardware.name;
  J.key j "failure";
  J.str j (Tsp_core.Failure_class.to_string b.Runner.failure);
  J.key j "platform";
  J.str j b.Runner.platform.Nvm.Config.name;
  J.key j "threads";
  J.int j b.Runner.threads;
  J.key j "iterations";
  J.int j b.Runner.iterations;
  J.key j "campaign_seed";
  J.int j s.spec.campaign_seed;
  J.key j "fault_models";
  J.arr_open j;
  List.iter (fun m -> J.str j (model_label m)) s.spec.fault_models;
  J.arr_close j;
  (match s.spec.exhaustive with
  | Some e ->
      J.key j "crash_window";
      J.obj_open j;
      J.key j "from";
      J.int j e.from_step;
      J.key j "window";
      J.int j e.window;
      J.key j "stride";
      J.int j e.stride;
      J.obj_close j
  | None ->
      J.key j "runs";
      J.int j s.spec.runs;
      J.key j "crash_window";
      J.obj_open j;
      J.key j "min_step";
      J.int j s.spec.min_step;
      J.key j "max_step";
      J.int j s.spec.max_step;
      J.obj_close j);
  J.key j "total";
  J.int j s.total;
  J.key j "crashes";
  J.int j s.crashes;
  J.key j "consistent_recoveries";
  J.int j s.consistent_recoveries;
  J.key j "violations";
  J.int j s.violations;
  J.key j "unexpected_violations";
  J.int j s.unexpected_violations;
  J.key j "ledger";
  J.arr_open j;
  List.iter (fun t -> J.str j (ledger_row t)) s.per_model;
  J.arr_close j;
  J.key j "signatures";
  J.arr_open j;
  List.iter
    (fun (sg, n) ->
      J.obj_open j;
      J.key j "signature";
      Obs.Signature.to_json j sg;
      J.key j "count";
      J.int j n;
      J.obj_close j)
    (distinct_signatures s);
  J.arr_close j;
  J.key j "violation_rows";
  J.arr_open j;
  List.iter
    (fun o ->
      if o.violation then begin
        J.obj_open j;
        J.key j "fault";
        J.str j (model_label o.fault);
        J.key j "seed";
        J.int j o.seed;
        J.key j "crash_step";
        J.int j o.crash_step;
        J.key j "expected";
        J.bool j o.expected;
        J.key j "detail";
        J.str j (failure_detail o);
        (match signature_of o with
        | Some sg ->
            J.key j "signature";
            J.str j sg.Obs.Signature.hash
        | None -> ());
        J.key j "repro";
        J.str j o.repro;
        J.obj_close j
      end)
    s.outcomes;
  J.arr_close j;
  (match s.shrunk with
  | None -> ()
  | Some sh ->
      J.key j "shrunk";
      J.obj_open j;
      J.key j "original";
      J.str j sh.original;
      J.key j "minimized";
      J.str j sh.minimized;
      J.key j "attempts";
      J.int j sh.attempts;
      J.key j "final_iterations";
      J.int j sh.final_iterations;
      J.key j "final_crash_step";
      J.int j sh.final_crash_step;
      J.obj_close j);
  J.key j "cycle_totals";
  J.arr_open j;
  Array.iter (fun c -> J.int j c) (breakdown s);
  J.arr_close j;
  J.obj_close j
