module Rng = Sched.Sim_rng

type spec = {
  base : Runner.config;
  runs : int;
  min_step : int;
  max_step : int;
  campaign_seed : int;
}

type run_outcome = {
  seed : int;
  crash_step : int;
  crashed : bool;
  consistent : bool;
  iterations_done : int;
  invariants : Invariant.result;
  observer_prefix_ok : bool option;
  rolled_back : int;
  cascaded : int;
  gc_freed : int;
  errors : string list;
}

type summary = {
  spec : spec;
  outcomes : run_outcome list;
  total : int;
  crashes : int;
  consistent_recoveries : int;
  violations : int;
}

let default_spec base =
  { base; runs = 100; min_step = 500; max_step = 150_000; campaign_seed = 99 }

let one spec ~seed ~crash_step =
  let config =
    { spec.base with Runner.seed; crash_at_step = Some crash_step }
  in
  let r = Runner.run config in
  let crashed = match r.Runner.outcome with Runner.Crashed _ -> true | _ -> false in
  let observer_prefix_ok =
    Option.bind r.Runner.crash (fun c ->
        Option.map
          (fun o -> o.Tsp_core.Recovery_observer.prefix_ok)
          c.Runner.observer)
  in
  let rolled_back, cascaded =
    match r.Runner.crash with
    | Some { Runner.atlas_recovery = Some a; _ } ->
        (a.Atlas.Recovery.updates_applied, a.Atlas.Recovery.cascaded)
    | _ -> (0, 0)
  in
  let gc_freed =
    match r.Runner.crash with
    | Some { Runner.gc = Some g; _ } -> g.Pheap.Heap_gc.freed_objects
    | _ -> 0
  in
  let errors =
    match r.Runner.crash with
    | Some c -> c.Runner.recovery_errors
    | None -> []
  in
  {
    seed;
    crash_step;
    crashed;
    consistent = Runner.consistent r;
    iterations_done = r.Runner.iterations_done;
    invariants = r.Runner.invariants;
    observer_prefix_ok;
    rolled_back;
    cascaded;
    gc_freed;
    errors;
  }

let run ?jobs spec =
  let rng = Rng.create ~seed:spec.campaign_seed in
  (* Draw every run's parameters from the campaign RNG sequentially so
     the schedule is a pure function of the campaign seed, then fan the
     (independent, deterministic) runs across domains. *)
  let params =
    List.init spec.runs (fun i ->
        let seed = 10_000 + (13 * i) + Rng.int rng 7 in
        let crash_step =
          spec.min_step + Rng.int rng (max 1 (spec.max_step - spec.min_step))
        in
        (seed, crash_step))
  in
  let outcomes =
    Parallel.map ?jobs
      (fun (seed, crash_step) -> one spec ~seed ~crash_step)
      params
  in
  let crashes = List.length (List.filter (fun o -> o.crashed) outcomes) in
  let consistent_recoveries =
    List.length (List.filter (fun o -> o.crashed && o.consistent) outcomes)
  in
  {
    spec;
    outcomes;
    total = spec.runs;
    crashes;
    consistent_recoveries;
    violations = crashes - consistent_recoveries;
  }

let all_consistent s = s.violations = 0 && List.for_all (fun o -> o.consistent) s.outcomes

let violation_rate s =
  if s.crashes = 0 then 0. else float_of_int s.violations /. float_of_int s.crashes

let pp_summary ppf s =
  let total_rb = List.fold_left (fun a o -> a + o.rolled_back) 0 s.outcomes in
  let total_casc = List.fold_left (fun a o -> a + o.cascaded) 0 s.outcomes in
  let total_gc = List.fold_left (fun a o -> a + o.gc_freed) 0 s.outcomes in
  Fmt.pf ppf
    "@[<v>campaign: %s, %s vs %s on %s@ %d runs: %d crashed, %d recovered \
     consistent, %d VIOLATIONS (rate %.1f%%)@ rollback work: %d updates, %d \
     cascaded sections, %d objects GC'd@]"
    (Runner.variant_to_string s.spec.base.Runner.variant)
    (Tsp_core.Failure_class.to_string s.spec.base.Runner.failure)
    s.spec.base.Runner.hardware.Tsp_core.Hardware.name
    s.spec.base.Runner.platform.Nvm.Config.name s.total s.crashes
    s.consistent_recoveries s.violations
    (100. *. violation_rate s)
    total_rb total_casc total_gc
