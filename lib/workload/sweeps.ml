type point = { x : float; values : (string * float) list }

type series_table = {
  title : string;
  x_label : string;
  series_names : string list;
  points : point list;
}

let run_config config =
  let r = Runner.run config in
  if not (Runner.consistent r) then
    Fmt.failwith
      "sweep run inconsistent for %s (seed %d, %d threads x %d iterations, %d \
       sim cycles): %a"
      (Runner.variant_to_string config.Runner.variant)
      config.Runner.seed config.Runner.threads config.Runner.iterations
      r.Runner.elapsed_cycles Invariant.pp r.Runner.invariants;
  r

let miters config = (run_config config).Runner.miters_per_sec

let flush_latency ?(iterations = 1500)
    ?(latencies = [ 50; 100; 250; 500; 750; 1000 ]) ?jobs () =
  let base = { (Runner.calibrated_config Nvm.Config.desktop) with Runner.iterations } in
  let point lat =
    let platform = { base.Runner.platform with Nvm.Config.flush_cost = lat } in
    let cfg variant = { base with Runner.platform; variant } in
    let log_only = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_only)) in
    let log_flush = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_flush)) in
    let log_async = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_flush_async)) in
    {
      x = float_of_int lat;
      values =
        [
          ("log-only (TSP)", log_only);
          ("log+flush (no TSP)", log_flush);
          ("deferred (no TSP)", log_async);
          ("TSP speedup", log_only /. log_flush);
        ];
    }
  in
  {
    title = "E7: TSP advantage vs NVM flush latency (desktop, 8 threads)";
    x_label = "flush latency (cycles)";
    series_names =
      [
        "log-only (TSP)";
        "log+flush (no TSP)";
        "deferred (no TSP)";
        "TSP speedup";
      ];
    points = Parallel.map ?jobs point latencies;
  }

let thread_scaling ?(iterations = 1500) ?(thread_counts = [ 1; 2; 4; 8; 16 ])
    ?jobs () =
  let point threads =
    let cfg variant =
      {
        (Runner.calibrated_config Nvm.Config.desktop) with
        Runner.threads;
        iterations;
        variant;
      }
    in
    let v name variant = (name, miters (cfg variant)) in
    {
      x = float_of_int threads;
      values =
        [
          v "no Atlas" (Runner.Mutex_map Atlas.Mode.No_log);
          v "log only" (Runner.Mutex_map Atlas.Mode.Log_only);
          v "log+flush" (Runner.Mutex_map Atlas.Mode.Log_flush);
          v "non-blocking" Runner.Nonblocking_map;
        ];
    }
  in
  {
    title = "E8: throughput scaling with worker threads (desktop)";
    x_label = "threads";
    series_names = [ "no Atlas"; "log only"; "log+flush"; "non-blocking" ];
    points = Parallel.map ?jobs point thread_counts;
  }

let log_cost_ablation ?(iterations = 1500)
    ?(log_cycles = [ 45; 150; 310; 600; 1200 ]) ?jobs () =
  let point lc =
    let base = Runner.calibrated_config Nvm.Config.desktop in
    let costs =
      { base.Runner.atlas_costs with Atlas.Runtime.log_cycles = lc }
    in
    let cfg variant =
      { base with Runner.iterations; atlas_costs = costs; variant }
    in
    let native = miters (cfg (Runner.Mutex_map Atlas.Mode.No_log)) in
    let log_only = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_only)) in
    let log_flush = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_flush)) in
    {
      x = float_of_int lc;
      values =
        [
          ("overhead log-only", native /. log_only);
          ("overhead log+flush", native /. log_flush);
        ];
    }
  in
  {
    title =
      "E4: fortification overhead factor vs per-entry logging cost (the \
       application study regime: ~3x log, ~5x log+flush)";
    x_label = "log entry cost (cycles)";
    series_names = [ "overhead log-only"; "overhead log+flush" ];
    points = Parallel.map ?jobs point log_cycles;
  }

let cache_ablation ?(iterations = 1500)
    ?(cache_lines = [ 512; 2048; 8192; 32768 ]) ?jobs () =
  let point lines =
    let base = Runner.calibrated_config Nvm.Config.desktop in
    let platform =
      { base.Runner.platform with Nvm.Config.cache_lines = lines }
    in
    let cfg =
      {
        base with
        Runner.platform;
        iterations;
        variant = Runner.Mutex_map Atlas.Mode.Log_only;
      }
    in
    let r = run_config cfg in
    (* A second run crashes mid-stream without TSP to count how much
       dirty data a rescue would have had to save at that instant. *)
    let crash_cfg =
      {
        cfg with
        Runner.crash_at_step = Some 50_000;
        journal = true;
        hardware = Tsp_core.Hardware.conventional_server;
        failure = Tsp_core.Failure_class.Power_outage;
      }
    in
    let cr = Runner.run crash_cfg in
    let dropped = cr.Runner.device_stats.Nvm.Stats.dropped_lines in
    {
      x = float_of_int lines;
      values =
        [
          ("log-only Miter/s", r.Runner.miters_per_sec);
          ("hit rate %", 100. *. Nvm.Stats.hit_rate r.Runner.device_stats);
          ("dirty lines lost at crash", float_of_int dropped);
        ];
    }
  in
  {
    title =
      "cache-size ablation: natural write-back shrinks the data a TSP \
       rescue must save, at the price of miss latency";
    x_label = "cache lines";
    series_names =
      [ "log-only Miter/s"; "hit rate %"; "dirty lines lost at crash" ];
    points = Parallel.map ?jobs point cache_lines;
  }

let render t ppf =
  let header = t.x_label :: t.series_names in
  let rows =
    List.map
      (fun p ->
        Printf.sprintf "%g" p.x
        :: List.map
             (fun name ->
               match List.assoc_opt name p.values with
               | Some v -> Printf.sprintf "%.2f" v
               | None -> "-")
             t.series_names)
      t.points
  in
  Format.fprintf ppf "%s@.@." t.title;
  Report.table ~header ~rows ppf

let read_ratio ?(iterations = 1500) ?(read_pcts = [ 0; 25; 50; 75; 90 ]) ?jobs
    () =
  let point read_pct =
    let base = Runner.calibrated_config Nvm.Config.desktop in
    let cfg variant =
      {
        base with
        Runner.iterations;
        workload = Runner.Mixed { h_keys = 65536; read_pct };
        variant;
      }
    in
    let native = miters (cfg (Runner.Mutex_map Atlas.Mode.No_log)) in
    let log_only = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_only)) in
    let log_flush = miters (cfg (Runner.Mutex_map Atlas.Mode.Log_flush)) in
    {
      x = float_of_int read_pct;
      values =
        [
          ("no Atlas", native);
          ("log only", log_only);
          ("log+flush", log_flush);
          ("overhead log-only", native /. log_only);
          ("overhead log+flush", native /. log_flush);
        ];
    }
  in
  {
    title =
      "E12: fortification overhead vs read share (reads are never logged \
       or flushed, so procrastination costs nothing on them)";
    x_label = "read-only iterations (%)";
    series_names =
      [
        "no Atlas";
        "log only";
        "log+flush";
        "overhead log-only";
        "overhead log+flush";
      ];
    points = Parallel.map ?jobs point read_pcts;
  }

(* E11: the procrastinator's ledger.  TSP trades failure-free flushes
   for crash-time and recovery-time work; both sides of that trade are
   measurable.  For one crash point we report the synchronous flushes
   the non-TSP mode performed before the same crash, against the lines
   the TSP rescue had to write back plus the recovery pipeline's cost. *)
type ledger = {
  crash_step : int;
  runtime_flushes_no_tsp : int;  (** flushes log+flush issued before the crash *)
  rescued_lines_tsp : int;  (** lines the TSP rescue saved at crash time *)
  recovery_cycles_tsp : int;
  recovery_cycles_no_tsp : int;
  flushes_avoided_per_rescued_line : float;
}

let procrastination_ledger ?(iterations = 1200) ?(crash_step = 100_000) ?jobs
    () =
  let base =
    {
      (Runner.calibrated_config Nvm.Config.desktop) with
      Runner.iterations;
      crash_at_step = Some crash_step;
    }
  in
  let crashed cfg =
    let r = Runner.run cfg in
    match (r.Runner.outcome, r.Runner.crash) with
    | Runner.Crashed _, Some c -> (r, c)
    | _ -> Fmt.failwith "ledger: crash point %d not reached" crash_step
  in
  let tsp_side, no_tsp_side =
    match
      Parallel.map ?jobs crashed
        [
          {
            base with
            Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
            hardware = Tsp_core.Hardware.nvram_machine;
            failure = Tsp_core.Failure_class.Power_outage;
          };
          {
            base with
            Runner.variant = Runner.Mutex_map Atlas.Mode.Log_flush;
            hardware = Tsp_core.Hardware.conventional_server;
            failure = Tsp_core.Failure_class.Power_outage;
          };
        ]
    with
    | [ a; b ] -> (a, b)
    | rs ->
        Fmt.invalid_arg
          "Sweeps.procrastination_ledger: Parallel.map returned %d results \
           for 2 configs"
          (List.length rs)
  in
  let _, tsp_crash = tsp_side in
  let no_tsp_run, no_tsp_crash = no_tsp_side in
  let runtime_flushes = no_tsp_run.Runner.device_stats.Nvm.Stats.flushes in
  let rescued = tsp_crash.Runner.rescued_lines in
  {
    crash_step;
    runtime_flushes_no_tsp = runtime_flushes;
    rescued_lines_tsp = rescued;
    recovery_cycles_tsp = tsp_crash.Runner.recovery_cycles;
    recovery_cycles_no_tsp = no_tsp_crash.Runner.recovery_cycles;
    flushes_avoided_per_rescued_line =
      (if rescued = 0 then infinity
       else float_of_int runtime_flushes /. float_of_int rescued);
  }

let pp_ledger ppf l =
  Fmt.pf ppf
    "@[<v>E11: the procrastinator's ledger (crash at step %d)@ @ \
     prevention (log+flush, no TSP): %d synchronous flushes before the \
     crash@ procrastination (log-only, TSP): %d dirty lines rescued at \
     crash time@ => %.1f runtime flushes avoided per crash-time line \
     rescued@ @ recovery pipeline: %a cycles (TSP) vs %a cycles (no TSP)@ \
     (recovery work is paid once per failure; the flushes were paid on \
     every store)@]"
    l.crash_step l.runtime_flushes_no_tsp l.rescued_lines_tsp
    l.flushes_avoided_per_rescued_line Nvm.Cost_model.pp_cycles
    l.recovery_cycles_tsp Nvm.Cost_model.pp_cycles l.recovery_cycles_no_tsp

(* YCSB comparison: one preset across the map variants, with throughput
   and per-operation latency percentiles (simulated cycles). *)
let ycsb_table ?(iterations = 1500) ?(records = 16384) ?jobs preset =
  let variants =
    [
      Runner.Mutex_map Atlas.Mode.No_log;
      Runner.Mutex_map Atlas.Mode.Log_only;
      Runner.Mutex_map Atlas.Mode.Log_flush;
      Runner.Mutex_btree Atlas.Mode.Log_only;
      Runner.Nonblocking_map;
    ]
  in
  let rows =
    Parallel.map ?jobs
      (fun variant ->
        let cfg =
          {
            (Runner.calibrated_config Nvm.Config.desktop) with
            Runner.variant;
            iterations;
            workload = Runner.Ycsb { preset; records };
            record_latency = true;
          }
        in
        let r = run_config cfg in
        let pcts =
          Report.percentiles r.Runner.latencies_cycles
            [ 0.5; 0.95; 0.99; 0.999 ]
        in
        let pct q =
          match List.assoc_opt q pcts with
          | Some v -> string_of_int v
          | None -> "-"
        in
        [
          Runner.variant_to_string variant;
          Printf.sprintf "%.2f" r.Runner.miters_per_sec;
          pct 0.5;
          pct 0.95;
          pct 0.99;
          pct 0.999;
        ])
      variants
  in
  (preset, records, rows)

let render_ycsb (preset, records, rows) ppf =
  Format.fprintf ppf
    "YCSB-%s over %d Zipfian-accessed records (desktop, 8 threads):@.@."
    (Ycsb.preset_to_string preset)
    records;
  Report.table
    ~header:
      [ "variant"; "Miter/s"; "p50 (cy)"; "p95 (cy)"; "p99 (cy)"; "p999 (cy)" ]
    ~rows ppf
