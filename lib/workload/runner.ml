module Heap = Pheap.Heap
module Heap_gc = Pheap.Heap_gc
module Rt = Atlas.Runtime
module Scheduler = Sched.Scheduler
module Rng = Sched.Sim_rng
module Hashmap = Tsp_maps.Chained_hashmap
module Btree = Tsp_maps.Btree

type variant = Machine.variant =
  | Mutex_map of Atlas.Mode.t
  | Mutex_btree of Atlas.Mode.t
  | Nonblocking_map
  | Nvtraverse_map
  | Delayfree_map

type workload =
  | Counters of { h_keys : int; preload : bool }
  | Mixed of { h_keys : int; read_pct : int }
  | Wide of { h_keys : int; value_words : int }
  | Ycsb of { preset : Ycsb.preset; records : int }
  | Transfers of { accounts : int; initial_balance : int }

type config = {
  platform : Nvm.Config.t;
  variant : variant;
  workload : workload;
  threads : int;
  iterations : int;
  seed : int;
  crash_at_step : int option;
  populate_objects : int;
      (* extra map entries pre-loaded via {!Populate} before the workload
         runs (0 = none): ballast the recovery pipeline must scan, for
         the recovery-at-scale experiments *)
  recovery_mode : Machine.recovery_mode;
  hardware : Tsp_core.Hardware.t;
  failure : Tsp_core.Failure_class.t;
  fault_model : Nvm.Fault_model.t option;
  journal : bool;
  n_buckets : int;
  log_mib : int;
  atlas_costs : Atlas.Runtime.costs;
  cost_jitter : int;
  iter_cycles : int;
  hash_op_cycles : int;
  skip_op_cycles : int;
  record_latency : bool;
  instrument : (Scheduler.t -> Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops) option;
  tracer : Obs.Tracer.t option;
  quantum : bool;
      (* let the scheduler grant batched-execution quanta (host-speed
         only; simulated results are bit-identical either way) *)
  deterministic_slice : int;
      (* scheduler inline-step slice; 0 = suspend per step.  Host-speed
         only, like [quantum] *)
}

let default_config =
  {
    platform = Nvm.Config.desktop;
    variant = Mutex_map Atlas.Mode.No_log;
    workload = Counters { h_keys = 65536; preload = true };
    threads = 8;
    iterations = 2000;
    seed = 1;
    crash_at_step = None;
    populate_objects = 0;
    recovery_mode = Machine.Eager;
    hardware = Tsp_core.Hardware.nvram_machine;
    failure = Tsp_core.Failure_class.Process_crash;
    fault_model = None;
    journal = false;
    n_buckets = 16384;
    log_mib = 8;
    atlas_costs = Rt.default_costs;
    cost_jitter = 3;
    iter_cycles = 40;
    hash_op_cycles = 30;
    skip_op_cycles = 25;
    record_latency = false;
    instrument = None;
    tracer = None;
    quantum = true;
    deterministic_slice = Scheduler.default_slice;
  }

(* Per-platform charges solved so the counter workload reproduces the
   absolute throughput of Table 1 (see EXPERIMENTS.md, "calibration").
   The qualitative shape — the ordering of the variants and the sign of
   every overhead — does not depend on these values; they only place the
   simulated machines at the paper's operating point. *)
let calibrated_config platform =
  let name = platform.Nvm.Config.name in
  let iter_cycles, costs, hash_op_cycles, skip_op_cycles =
    if String.equal name Nvm.Config.desktop.Nvm.Config.name then
      ( 3800,
        { Rt.lock_cycles = 450; unlock_cycles = 300; log_cycles = 310 },
        180,
        1250 )
    else if String.equal name Nvm.Config.server.Nvm.Config.name then
      ( 5700,
        { Rt.lock_cycles = 700; unlock_cycles = 450; log_cycles = 310 },
        180,
        925 )
    else
      ( default_config.iter_cycles,
        default_config.atlas_costs,
        default_config.hash_op_cycles,
        default_config.skip_op_cycles )
  in
  {
    default_config with
    platform;
    iter_cycles;
    atlas_costs = costs;
    hash_op_cycles;
    skip_op_cycles;
  }

type crash_report = {
  verdict : Tsp_core.Policy.verdict;
  observer : Tsp_core.Recovery_observer.verdict option;
  atlas_recovery : Atlas.Recovery.report option;
  gc : Pheap.Heap_gc.stats option;
  gc_quarantine : Pheap.Heap_gc.quarantine option;
  recovery_verdict : Atlas.Recovery.verdict;
  heap_audit_ok : bool;
  recovery_errors : string list;
  recovery_cycles : int;
  rescued_lines : int;
  rescue_bill : Tsp_core.Crash_executor.execution;
}

type outcome = Completed | Crashed of int | Deadlocked of string list

type result = {
  config : config;
  outcome : outcome;
  iterations_done : int;
  elapsed_cycles : int;
  miters_per_sec : float;
  invariants : Invariant.result;
  crash : crash_report option;
  entries : (int * int64) list;
  total_steps : int;
  wall_seconds : float;
  device_stats : Nvm.Stats.t;
  latencies_cycles : int array;
      (* per-operation latency samples, empty unless record_latency *)
}

let variant_to_string = Machine.variant_to_string

(* Map operations each workload iteration performs through the recorded
   operation interface; the denominator of the per-op psync rates. *)
let ops_per_iteration = function
  | Counters _ | Mixed _ -> 3
  | Ycsb _ | Wide _ | Transfers _ -> 1

let completed_ops r = r.iterations_done * ops_per_iteration r.config.workload

(* The per-shard "machine" (device + scheduler + atlas + map) this
   driver runs the workload on; the construction, crash, recovery and
   reattach logic lives in {!Machine} so the sharded service layer can
   instantiate many of them. *)
let machine_spec config =
  {
    Machine.platform = config.platform;
    variant = config.variant;
    threads = config.threads;
    seed = config.seed;
    journal = config.journal;
    n_buckets = config.n_buckets;
    log_mib = config.log_mib;
    atlas_costs = config.atlas_costs;
    cost_jitter = config.cost_jitter;
    hash_op_cycles = config.hash_op_cycles;
    skip_op_cycles = config.skip_op_cycles;
    value_words =
      (match config.workload with Wide { value_words; _ } -> value_words | _ -> 1);
    quantum = config.quantum;
    deterministic_slice = config.deterministic_slice;
    tracer = config.tracer;
    hardware = config.hardware;
    failure = config.failure;
  }

let populate config map =
  (match config.workload with
  | Mixed { h_keys; _ } | Counters { h_keys; preload = true } ->
      for tid = 0 to config.threads - 1 do
        map.Machine.set_plain ~key:(Key_space.c1 ~tid) ~value:0L;
        map.Machine.set_plain ~key:(Key_space.c2 ~tid) ~value:0L
      done;
      for i = 0 to h_keys - 1 do
        map.Machine.set_plain ~key:(Key_space.h_key i) ~value:0L
      done
  | Counters { h_keys = _; preload = false } ->
      for tid = 0 to config.threads - 1 do
        map.Machine.set_plain ~key:(Key_space.c1 ~tid) ~value:0L;
        map.Machine.set_plain ~key:(Key_space.c2 ~tid) ~value:0L
      done
  | Wide { h_keys; _ } ->
      for i = 0 to h_keys - 1 do
        map.Machine.set_plain ~key:(Key_space.h_key i) ~value:0L
      done
  | Ycsb { records; _ } ->
      (* Records are self-describing: value congruent to key modulo the
         record count, an invariant every read-back can check. *)
      for i = 0 to records - 1 do
        let k = Key_space.h_key i in
        map.Machine.set_plain ~key:k ~value:(Int64.of_int k)
      done
  | Transfers { accounts; initial_balance } ->
      for i = 0 to accounts - 1 do
        map.Machine.set_plain ~key:(Key_space.h_key i)
          ~value:(Int64.of_int initial_balance)
      done)

let counter_body config pmem ops ~tid ~rng ~h_keys ~progress () =
  for i = 1 to config.iterations do
    Nvm.Pmem.charge pmem config.iter_cycles;
    ops.Tsp_maps.Map_intf.set ~tid ~key:(Key_space.c1 ~tid)
      ~value:(Int64.of_int i);
    let k = Key_space.h_key (Rng.int rng h_keys) in
    ops.Tsp_maps.Map_intf.incr ~tid ~key:k ~by:1L;
    ops.Tsp_maps.Map_intf.set ~tid ~key:(Key_space.c2 ~tid)
      ~value:(Int64.of_int i);
    progress.(tid) <- i
  done

(* Mixed read/write iterations: with probability [read_pct]% the
   iteration only reads (three gets), otherwise it is the usual 3-store
   iteration.  Reads are never logged, so fortification overhead shrinks
   as the read share grows — the E12 sweep quantifies it. *)
let mixed_body config pmem ops ~tid ~rng ~h_keys ~read_pct ~progress () =
  let write_i = ref 0 in
  for i = 1 to config.iterations do
    Nvm.Pmem.charge pmem config.iter_cycles;
    if Rng.int rng 100 < read_pct then begin
      ignore (ops.Tsp_maps.Map_intf.get ~tid ~key:(Key_space.c1 ~tid));
      ignore
        (ops.Tsp_maps.Map_intf.get ~tid
           ~key:(Key_space.h_key (Rng.int rng h_keys)));
      ignore (ops.Tsp_maps.Map_intf.get ~tid ~key:(Key_space.c2 ~tid))
    end
    else begin
      incr write_i;
      ops.Tsp_maps.Map_intf.set ~tid ~key:(Key_space.c1 ~tid)
        ~value:(Int64.of_int !write_i);
      ops.Tsp_maps.Map_intf.incr ~tid
        ~key:(Key_space.h_key (Rng.int rng h_keys))
        ~by:1L;
      ops.Tsp_maps.Map_intf.set ~tid ~key:(Key_space.c2 ~tid)
        ~value:(Int64.of_int !write_i)
    end;
    progress.(tid) <- i
  done

(* Wide-value iterations: overwrite every word of a random value with
   the same tag.  Torn values (words disagreeing) witness a non-atomic
   update — possible without rollback even under TSP (experiment E13). *)
let wide_body config pmem hm ~tid ~rng ~h_keys ~value_words ~progress () =
  for i = 1 to config.iterations do
    Nvm.Pmem.charge pmem config.iter_cycles;
    let k = Key_space.h_key (Rng.int rng h_keys) in
    let tag = Int64.of_int ((tid * 1_000_000) + i) in
    Hashmap.set_wide hm ~tid ~key:k ~values:(Array.make value_words tag);
    progress.(tid) <- i
  done

(* YCSB-style mixes over a pre-loaded, Zipfian-accessed record set.
   RMW adds [records] to the value, preserving the congruence invariant;
   updates rewrite the canonical value. *)
let ycsb_body config pmem ops ~tid ~rng ~preset ~records ~zipf ~latencies
    ~now ~progress () =
  for i = 1 to config.iterations do
    Nvm.Pmem.charge pmem config.iter_cycles;
    let t0 = now () in
    let k = Key_space.h_key (Ycsb.Zipf.sample zipf rng) in
    (match Ycsb.pick_op preset rng with
    | Ycsb.Read -> ignore (ops.Tsp_maps.Map_intf.get ~tid ~key:k)
    | Ycsb.Update -> ops.Tsp_maps.Map_intf.set ~tid ~key:k ~value:(Int64.of_int k)
    | Ycsb.Rmw ->
        ops.Tsp_maps.Map_intf.incr ~tid ~key:k ~by:(Int64.of_int records));
    (match latencies with
    | Some store -> store tid (now () - t0)
    | None -> ());
    progress.(tid) <- i
  done

let transfer_body config pmem hm ~tid ~rng ~accounts ~progress () =
  for i = 1 to config.iterations do
    Nvm.Pmem.charge pmem config.iter_cycles;
    let a = Rng.int rng accounts in
    let b = (a + 1 + Rng.int rng (accounts - 1)) mod accounts in
    let amount = Int64.of_int (1 + Rng.int rng 10) in
    ignore
      (Hashmap.transfer hm ~tid ~debit:(Key_space.h_key a)
         ~credit:(Key_space.h_key b) ~amount
        : bool);
    progress.(tid) <- i
  done

let check_invariants config ?wide_entries entries =
  match config.workload with
  | Counters _ | Mixed _ -> Invariant.counters ~entries ~threads:config.threads
  | Wide _ ->
      Invariant.untorn ~wide_entries:(Option.value wide_entries ~default:[])
  | Ycsb { records; _ } -> Invariant.ycsb ~entries ~records
  | Transfers { accounts; initial_balance } ->
      Invariant.transfers ~entries
        ~expected_total:(Int64.of_int (accounts * initial_balance))

let crash_report_of pmem ~verdict ~(recovery : Machine.recovery) ~clock_before
    ~rescue_bill =
  {
    verdict;
    observer = recovery.Machine.observer;
    atlas_recovery = recovery.Machine.atlas_recovery;
    gc = recovery.Machine.gc;
    gc_quarantine = recovery.Machine.gc_quarantine;
    recovery_verdict = recovery.Machine.recovery_verdict;
    heap_audit_ok = recovery.Machine.heap_audit_ok;
    recovery_errors = recovery.Machine.recovery_errors;
    recovery_cycles = (Nvm.Pmem.stats pmem).Nvm.Stats.clock - clock_before;
    rescued_lines = (Nvm.Pmem.stats pmem).Nvm.Stats.rescued_lines;
    rescue_bill;
  }

let run_full config =
  let t0 = Sys.time () in
  let spec = machine_spec config in
  let spec =
    if config.populate_objects > 0 then
      Populate.sized_spec spec ~objects:config.populate_objects
    else spec
  in
  let m = Machine.create spec in
  let pmem = m.Machine.pmem in
  let sched = m.Machine.sched in
  let heap = m.Machine.heap in
  (* Interpose on the operation interface (history recorders, mutation
     harnesses).  [None] leaves the record untouched, so the default run
     is bit-identical to an uninstrumented build; the wrapped ops are
     only invoked from inside simulated threads.  [set_plain] population
     and recovery-time [fold_root] dumps bypass the wrapper. *)
  (match config.instrument with
  | None -> ()
  | Some wrap -> Machine.instrument m (wrap sched));
  let map = m.Machine.map in
  (* Scale ballast goes in first; the workload preload then overwrites
     its own keys, so workload invariants are untouched while recovery
     still has the full population to scan. *)
  if config.populate_objects > 0 then
    Populate.fill m ~objects:config.populate_objects ~seed:config.seed;
  populate config map;
  Nvm.Pmem.persist_all pmem;
  let progress = Array.make config.threads 0 in
  let zipf =
    lazy
      (match config.workload with
      | Ycsb { records; _ } -> Ycsb.Zipf.create ~n:records ()
      | Counters _ | Mixed _ | Wide _ | Transfers _ ->
          invalid_arg "zipf: not a YCSB workload")
  in
  (* Latency samples go into a preallocated flat int vector: one sample
     per iteration per thread, so sized exactly, the recording path
     allocates nothing and cannot perturb the zero-allocation hot path
     (regression in test/test_checker.ml). *)
  let latency_buf =
    Check.Ivec.create
      ~capacity:(max 1 (if config.record_latency then config.threads * config.iterations else 1))
      ()
  in
  let latencies =
    if config.record_latency then
      Some (fun _tid d -> Check.Ivec.push latency_buf d)
    else None
  in
  let spawn_worker tid =
    let rng = Rng.create ~seed:(config.seed + (1000 * (tid + 1))) in
    let body =
      match config.workload with
      | Counters { h_keys; _ } ->
          counter_body config pmem map.Machine.map_ops ~tid ~rng ~h_keys
            ~progress
      | Mixed { h_keys; read_pct } ->
          mixed_body config pmem map.Machine.map_ops ~tid ~rng ~h_keys
            ~read_pct ~progress
      | Wide { h_keys; value_words } -> begin
          match map.Machine.hashmap with
          | Some hm ->
              wide_body config pmem hm ~tid ~rng ~h_keys ~value_words ~progress
          | None ->
              invalid_arg
                "Runner: the wide-value workload requires the mutex-based map"
        end
      | Ycsb { preset; records } ->
          let zipf = Lazy.force zipf in
          ycsb_body config pmem map.Machine.map_ops ~tid ~rng ~preset ~records
            ~zipf ~latencies
            ~now:(fun () -> Scheduler.thread_cycles sched tid)
            ~progress
      | Transfers { accounts; _ } -> begin
          match map.Machine.hashmap with
          | Some hm -> transfer_body config pmem hm ~tid ~rng ~accounts ~progress
          | None ->
              invalid_arg
                "Runner: the transfer workload requires a mutex-based map"
        end
    in
    ignore (Scheduler.spawn sched ~name:(Printf.sprintf "worker-%d" tid) body : int)
  in
  for tid = 0 to config.threads - 1 do
    spawn_worker tid
  done;
  let sched_outcome = Machine.execute ?crash_at_step:config.crash_at_step m in
  let iterations_done = Array.fold_left ( + ) 0 progress in
  let elapsed_cycles = Scheduler.elapsed_cycles sched in
  let miters =
    Nvm.Cost_model.miter_per_sec config.platform ~iterations:iterations_done
      ~cycles:elapsed_cycles
  in
  let finish outcome invariants crash entries =
    {
      config;
      outcome;
      iterations_done;
      elapsed_cycles;
      miters_per_sec = miters;
      invariants;
      crash;
      entries;
      total_steps = Scheduler.total_steps sched;
      wall_seconds = Sys.time () -. t0;
      device_stats = Nvm.Pmem.stats pmem;
      latencies_cycles = Check.Ivec.to_array latency_buf;
    }
  in
  let wide_dump h root =
    match config.workload with
    | Wide _ ->
        Some (Hashmap.fold_wide_plain h ~root (fun k vs acc -> (k, vs) :: acc) [])
    | Counters _ | Mixed _ | Ycsb _ | Transfers _ -> None
  in
  match sched_outcome with
  | Scheduler.Completed ->
      let root = Heap.get_root heap in
      let entries =
        map.Machine.fold_root heap ~root (fun k v acc -> (k, v) :: acc)
      in
      let wide_entries = wide_dump heap root in
      ( finish Completed (check_invariants config ?wide_entries entries) None entries,
        m,
        Some heap )
  | Scheduler.Deadlocked { blocked } ->
      (finish (Deadlocked blocked) (Invariant.failed "deadlocked") None [], m, None)
  | Scheduler.Crashed { at_step } ->
      let clock_before = (Nvm.Pmem.stats pmem).Nvm.Stats.clock in
      let rescue_bill = Machine.crash_execute ?fault:config.fault_model m in
      let verdict = rescue_bill.Tsp_core.Crash_executor.verdict in
      let recovery = Machine.recover ~mode:config.recovery_mode m in
      (* The driver has no service to overlap with: drive any pending
         incremental collection to completion before dumping, so the
         recovered image and verdicts are final whatever the mode. *)
      ignore
        (Machine.finish_background_gc m
          : (Pheap.Heap_gc.stats * Pheap.Heap_gc.quarantine) option);
      let rheap = recovery.Machine.heap in
      let entries, invariants =
        match rheap with
        | Some rheap when recovery.Machine.heap_audit_ok -> begin
            try
              let root = Heap.get_root rheap in
              (match config.variant with
              | Mutex_btree _ -> begin
                  match Btree.check_plain rheap ~root with
                  | Ok () -> ()
                  | Error e -> raise (Heap.Corrupt ("btree audit: " ^ e))
                end
              | Nvtraverse_map -> begin
                  match Tsp_maps.Nvtraverse_skiplist.check_plain rheap ~root with
                  | Ok () -> ()
                  | Error e -> raise (Heap.Corrupt ("skiplist audit: " ^ e))
                end
              | Delayfree_map -> begin
                  match Tsp_maps.Delayfree_map.check_plain rheap ~root with
                  | Ok () -> ()
                  | Error e -> raise (Heap.Corrupt ("rcas table audit: " ^ e))
                end
              | Mutex_map _ | Nonblocking_map -> ());
              let entries =
                map.Machine.fold_root rheap ~root (fun k v acc -> (k, v) :: acc)
              in
              let wide_entries = wide_dump rheap root in
              (entries, check_invariants config ?wide_entries entries)
            with Heap.Corrupt msg | Invalid_argument msg ->
              ([], Invariant.failed ("map traversal failed: " ^ msg))
          end
        | Some _ -> ([], Invariant.failed "heap audit failed")
        | None -> ([], Invariant.failed "heap unrecoverable")
      in
      let crash =
        Some (crash_report_of pmem ~verdict ~recovery ~clock_before ~rescue_bill)
      in
      (finish (Crashed at_step) invariants crash entries, m, rheap)

let run config =
  let r, _, _ = run_full config in
  r

let consistent r =
  r.invariants.Invariant.ok
  &&
  match r.crash with
  | None -> true
  | Some c -> c.heap_audit_ok && c.recovery_errors = []

let pp_result ppf r =
  let pp_outcome ppf = function
    | Completed -> Fmt.string ppf "completed"
    | Crashed s -> Fmt.pf ppf "crashed at step %d" s
    | Deadlocked l ->
        Fmt.pf ppf "DEADLOCK (%a)" Fmt.(list ~sep:comma string) l
  in
  Fmt.pf ppf
    "@[<v>%s / %s on %s: %a@ %d iterations in %a cycles = %.2f M iter/s \
     (sim); %d steps, %.2fs wall@ %a%a@]"
    (variant_to_string r.config.variant)
    (match r.config.workload with
    | Counters _ -> "counters"
    | Mixed { read_pct; _ } -> Printf.sprintf "mixed(%d%% reads)" read_pct
    | Wide { value_words; _ } -> Printf.sprintf "wide(%d words)" value_words
    | Ycsb { preset; _ } -> "ycsb-" ^ Ycsb.preset_to_string preset
    | Transfers _ -> "transfers")
    r.config.platform.Nvm.Config.name pp_outcome r.outcome r.iterations_done
    Nvm.Cost_model.pp_cycles r.elapsed_cycles r.miters_per_sec r.total_steps
    r.wall_seconds Invariant.pp r.invariants
    (fun ppf -> function
      | None -> ()
      | Some c ->
          Fmt.pf ppf "@ crash: %a" Tsp_core.Policy.pp_verdict c.verdict;
          Fmt.pf ppf "@ recovery verdict: %a" Atlas.Recovery.pp_verdict
            c.recovery_verdict;
          Option.iter
            (fun o -> Fmt.pf ppf "@ %a" Tsp_core.Recovery_observer.pp o)
            c.observer;
          Option.iter
            (fun a -> Fmt.pf ppf "@ %a" Atlas.Recovery.pp_report a)
            c.atlas_recovery;
          Option.iter
            (fun g -> Fmt.pf ppf "@ gc: %a" Heap_gc.pp_stats g)
            c.gc;
          if c.recovery_errors <> [] then
            Fmt.pf ppf "@ recovery errors: %a"
              Fmt.(list ~sep:comma string)
              c.recovery_errors)
    r.crash

(* --- Restart: resume execution from the recovered state ---

   The paper's recovery contract (Section 4.1): "application code
   resume[s] execution from a consistent state of the persistent heap".
   This driver exercises it end to end: crash, recover, then run fresh
   workers against the same device until the workload completes.

   For the counter workload the recovered state itself tells each thread
   where to pick up: its c2 counter holds the last finished iteration.
   Because the three steps of an iteration are three separate atomic
   operations (not one), a thread killed between its data increment and
   its c2 update will redo that increment on resume — at-least-once
   semantics, with the duplication bounded by one increment per thread.
   The report measures that bound; making the whole iteration one
   failure-atomic section would need a single OCS spanning all three
   operations (cf. the transfer workload, which is exactly that). *)

type resume_report = {
  first : result;  (** the crashed phase, fully verified *)
  resumed : bool;  (** a resume phase actually ran *)
  resume_iterations : int;
  final_entries : (int * int64) list;
  final_invariants : Invariant.result;
  completion_ok : bool;
      (** every thread reached [iterations], and for counters the H-range
          total matches T x iterations up to the at-least-once bound *)
  duplicated_increments : int;  (** counters: 0 <= duplicates <= T *)
}

let resume_counters config (m : Machine.t) ~h_keys ~max_seq =
  let root = Machine.reattach m ~seed:(config.seed + 101) ~first_seq:(max_seq + 1) in
  let pmem = m.Machine.pmem in
  let sched = m.Machine.sched in
  let heap = m.Machine.heap in
  let map = m.Machine.map in
  let fold_root f = map.Machine.fold_root heap ~root f in
  (* Each thread derives its restart point from the persistent heap. *)
  let entries = fold_root (fun k v acc -> (k, v) :: acc) in
  let resume_from tid =
    match List.assoc_opt (Key_space.c2 ~tid) entries with
    | Some v -> Int64.to_int v + 1
    | None -> 1
  in
  let resumed_iters = ref 0 in
  for tid = 0 to config.threads - 1 do
    let start = resume_from tid in
    let rng = Rng.create ~seed:(config.seed + 555 + (1000 * tid)) in
    ignore
      (Scheduler.spawn sched
         ~name:(Printf.sprintf "resumed-%d" tid)
         (fun () ->
           for i = start to config.iterations do
             Nvm.Pmem.charge pmem config.iter_cycles;
             map.Machine.map_ops.Tsp_maps.Map_intf.set ~tid
               ~key:(Key_space.c1 ~tid) ~value:(Int64.of_int i);
             let k = Key_space.h_key (Rng.int rng h_keys) in
             map.Machine.map_ops.Tsp_maps.Map_intf.incr ~tid ~key:k ~by:1L;
             map.Machine.map_ops.Tsp_maps.Map_intf.set ~tid
               ~key:(Key_space.c2 ~tid) ~value:(Int64.of_int i);
             incr resumed_iters
           done)
        : int)
  done;
  let outcome = Machine.execute m in
  (outcome, !resumed_iters, fold_root)

let run_with_resume config =
  let h_keys =
    match config.workload with
    | Counters { h_keys; _ } -> h_keys
    | Mixed _ | Wide _ | Ycsb _ | Transfers _ ->
        invalid_arg
          "Runner.run_with_resume: transfers resume trivially (any number of \
           further transfers preserves conservation); use the counter \
           workload, whose completion target makes resumption observable"
  in
  let first, m, rheap = run_full config in
  let no_resume completion_ok =
    {
      first;
      resumed = false;
      resume_iterations = 0;
      final_entries = first.entries;
      final_invariants = first.invariants;
      completion_ok;
      duplicated_increments = 0;
    }
  in
  match (first.outcome, rheap) with
  | Completed, _ -> no_resume (consistent first)
  | (Crashed _ | Deadlocked _), None -> no_resume false
  | Deadlocked _, Some _ -> no_resume false
  | Crashed _, Some _ ->
      if not (consistent first) then no_resume false
      else begin
        let max_seq =
          match first.crash with
          | Some { atlas_recovery = Some a; _ } -> a.Atlas.Recovery.max_seq
          | _ -> 0
        in
        let outcome, resume_iterations, fold_root =
          resume_counters config m ~h_keys ~max_seq
        in
        let final_entries = fold_root (fun k v acc -> (k, v) :: acc) in
        let final_invariants =
          Invariant.counters_resumed ~entries:final_entries
            ~threads:config.threads
        in
        let sum_h =
          List.fold_left
            (fun acc (k, v) -> if Key_space.is_h k then Int64.add acc v else acc)
            0L final_entries
        in
        let expected = config.threads * config.iterations in
        let duplicated = Int64.to_int sum_h - expected in
        let counters_done =
          List.for_all
            (fun tid ->
              List.assoc_opt (Key_space.c2 ~tid) final_entries
              = Some (Int64.of_int config.iterations))
            (List.init config.threads (fun t -> t))
        in
        let completion_ok =
          outcome = Scheduler.Completed
          && counters_done
          && duplicated >= 0
          && duplicated <= config.threads
          && final_invariants.Invariant.ok
        in
        {
          first;
          resumed = true;
          resume_iterations;
          final_entries;
          final_invariants;
          completion_ok;
          duplicated_increments = max 0 duplicated;
        }
      end

let pp_resume_report ppf r =
  Fmt.pf ppf
    "@[<v>phase 1: %a@ resumed: %b (%d iterations replayed to completion)@ \
     final: %a@ completion %s; duplicated increments %d (bound %d)@]"
    pp_result r.first r.resumed r.resume_iterations Invariant.pp
    r.final_invariants
    (if r.completion_ok then "OK" else "FAILED")
    r.duplicated_increments r.first.config.threads
