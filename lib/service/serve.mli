(** The sharded persistent KV service: N independent {!Workload.Machine}s
    — one NVM device, scheduler, Atlas runtime and map each — behind the
    deterministic {!Arrival.route} router, driven by one open-loop
    arrival stream.

    The headline experiment crashes one shard mid-traffic (under any
    {!Nvm.Fault_model}), runs the full TSP rescue + recovery pipeline on
    it while the other shards keep serving, and accounts for what the
    outage cost: an availability timeline, per-shard latency percentiles
    before / during / after the outage, and a ledger of what the
    degraded-mode policy did with the requests that hit the hole.

    Everything is deterministic: shards are independent simulation
    cells fanned out with {!Workload.Parallel.map}, so the report is
    byte-identical across [--jobs], across repeated runs, and — for the
    untouched shards — across "neighbour crashed" and "nobody crashed"
    runs (the crash parameters never even reach their cells). *)

type config = {
  platform : Nvm.Config.t;
  variant : Workload.Machine.variant;
  shards : int;
  seed : int;
  keys : int;  (** global keyspace size; ranks index {!Workload.Key_space.h_key} *)
  requests : int;
  rate_per_mcycle : float;  (** aggregate arrival rate, requests per Mcycle *)
  theta : float;  (** Zipf skew; [0.] = uniform *)
  preset : Workload.Ycsb.preset;  (** read/update/RMW mix *)
  req_cycles : int;  (** fixed dispatch cost charged per request *)
  crash_shard : int option;
  crash_at_step : int option;
      (** [None] with [crash_shard] set: crash at half the shard's
          crash-free step count (derived from a baseline pre-run) *)
  fault_model : Nvm.Fault_model.t option;  (** adversarial crash semantics *)
  recovery : Workload.Machine.recovery_mode;
      (** how the victim recovers: [Eager] (the legacy costed pipeline),
          [Parallel_gc jobs] (streamed, byte-identical for any job
          count), or [Incremental_gc] — reattach after rescue + log
          scan, serve while a background fiber finishes the collection,
          with on-demand recovery surcharges on first-touched keys *)
  degraded : Degraded.t;
  log_mib : int;
  n_buckets : int option;  (** per-shard bucket count; [None] = sized to fit *)
  trace : bool;  (** give every shard a private {!Obs.Tracer} *)
  windows : int;  (** availability-timeline resolution *)
}

val default_config : config
(** 8 shards over a million-key keyspace, YCSB-B at 400 req/Mcycle,
    [Mutex_map Log_only] (Atlas in TSP mode), queueing degraded mode. *)

val smoke_config : config
(** A seconds-scale shrink (4 shards, 16 Ki keys, 6000 requests) with a
    crash on shard 1, for CI. *)

type fate = Pending | Served | Shed | Timed_out

type recovery_report = {
  t_down : int;  (** simulated cycle the shard crashed *)
  t_up : int;  (** cycle it was serving again: [t_down + recovery_cycles] *)
  recovery_cycles : int;
  rescued_lines : int;
  background_gc_cycles : int;
      (** incremental mode: the collection bill paid while already
          serving (overlapped, not part of the outage); 0 otherwise *)
  on_demand_recovered : int;
      (** keys whose first phase-2 touch paid an on-demand recovery
          surcharge (incremental mode) *)
  recovery_verdict : Atlas.Recovery.verdict;
  dl : Check.Dl.verdict option;
      (** strict durable-linearizability verdict over the recorded
          pre-crash history; [None] when the fault model is outside the
          strict checker's soundness envelope (see [dl_note]) *)
  dl_note : string;
  recovery_errors : string list;
}

type shard_report = {
  shard : int;
  requests : int;  (** routed to this shard *)
  populated : int;  (** keys this shard owns *)
  served : int;
  shed : int;
  timed_out : int;
  retry_attempts : int;  (** total extra client attempts (retry mode) *)
  phase2_served : int;  (** outage-hit requests served after recovery *)
  sim_cycles : int;  (** final device clock — the identity witness *)
  elapsed_cycles : int;
  steps : int;
  outcome : string;
      (** ["ok"], ["crashed+recovered"], ["crashed+lost"] or
          ["deadlocked"] *)
  recovery : recovery_report option;
  tracer : Obs.Tracer.t option;
}

type window = {
  w_start : int;
  w_end : int;
  total : int;
  ok : int;  (** eventually served *)
  failed : int;  (** shed or timed out *)
}

type latency_row = {
  l_shard : int;
  l_phase : string;  (** ["steady"], or ["before"]/["during"]/["after"] *)
  samples : int;
  p50 : int;
  p99 : int;
  p999 : int;
  lat_hist : Obs.Hist.t;
      (** the full log-bucketed distribution behind the percentiles —
          the service path retains no raw samples, only this fixed-size
          histogram per (shard, phase) cell *)
}

type report = {
  config : config;
  horizon : int;  (** one past the last arrival cycle *)
  shards : shard_report array;
  fates : fate array;  (** per request, in arrival order *)
  latencies : int array;  (** per request; [-1] unless served *)
  windows : window array;
  latency : latency_row list;
}

val run : ?jobs:int -> config -> report
(** Generate the stream, fan the shards out as parallel cells, crash and
    recover the victim (if any), aggregate.  [jobs] affects wall-clock
    time only.
    @raise Invalid_argument on a malformed config (shard count, crash
    shard out of range, rate, windows). *)

val render : report -> string
(** The full deterministic report: configuration, per-shard ledger,
    availability timeline, latency table, recovery detail.  Contains no
    wall-clock times, so it is byte-comparable across runs. *)

val write_trace : report -> path:string -> bool
(** Export the per-shard Perfetto tracks ({!Obs.Chrome.write_file_multi},
    one process group per shard).  [false] when the run was not traced. *)

val to_json : Obs.Json.t -> report -> unit
(** Emit the report as the results-artifact body: totals, per-shard
    ledger (with recovery detail and DL verdicts), availability
    windows and the per-(shard, phase) latency histograms.
    Byte-identical across [--jobs]. *)
