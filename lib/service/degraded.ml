type t =
  | Shed
  | Queue of { deadline : int }
  | Retry of { backoff : int; max_retries : int }

let default_deadline = 2_000_000
let default_backoff = 50_000
let default_max_retries = 8
let default = Queue { deadline = default_deadline }

let to_string = function
  | Shed -> "shed"
  | Queue { deadline } -> Printf.sprintf "queue:%d" deadline
  | Retry { backoff; max_retries } ->
      Printf.sprintf "retry:%d:%d" backoff max_retries

let of_string s =
  let positive name v =
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (Printf.sprintf "%s must be positive, got %d" name n)
    | None -> Error (Printf.sprintf "%s must be an integer, got %S" name v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "shed" ] -> Ok Shed
  | [ "queue" ] -> Ok (Queue { deadline = default_deadline })
  | [ "queue"; d ] ->
      let* deadline = positive "queue deadline" d in
      Ok (Queue { deadline })
  | [ "retry" ] ->
      Ok (Retry { backoff = default_backoff; max_retries = default_max_retries })
  | [ "retry"; b ] ->
      let* backoff = positive "retry backoff" b in
      Ok (Retry { backoff; max_retries = default_max_retries })
  | [ "retry"; b; k ] ->
      let* backoff = positive "retry backoff" b in
      let* max_retries = positive "retry count" k in
      Ok (Retry { backoff; max_retries })
  | _ ->
      Error
        (Printf.sprintf
           "unknown degraded mode %S (shed | queue[:deadline] | \
            retry[:backoff[:max]])"
           s)

let pp ppf t = Fmt.string ppf (to_string t)
