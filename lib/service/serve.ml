module Machine = Workload.Machine
module Key_space = Workload.Key_space
module Parallel = Workload.Parallel
module Report = Workload.Report
module Ycsb = Workload.Ycsb
module Scheduler = Sched.Scheduler
module History = Check.History
module Dl = Check.Dl
module Map_intf = Tsp_maps.Map_intf
module Heap_gc = Pheap.Heap_gc

type config = {
  platform : Nvm.Config.t;
  variant : Machine.variant;
  shards : int;
  seed : int;
  keys : int;
  requests : int;
  rate_per_mcycle : float;
  theta : float;
  preset : Ycsb.preset;
  req_cycles : int;
  crash_shard : int option;
  crash_at_step : int option;
  fault_model : Nvm.Fault_model.t option;
  recovery : Machine.recovery_mode;
  degraded : Degraded.t;
  log_mib : int;
  n_buckets : int option;
  trace : bool;
  windows : int;
}

let default_config =
  {
    platform = Nvm.Config.desktop;
    variant = Machine.Mutex_map Atlas.Mode.Log_only;
    shards = 8;
    seed = 1;
    keys = 1 lsl 20;
    requests = 40_000;
    rate_per_mcycle = 400.;
    theta = 0.99;
    preset = Ycsb.B;
    req_cycles = 600;
    crash_shard = None;
    crash_at_step = None;
    fault_model = None;
    recovery = Machine.Eager;
    degraded = Degraded.default;
    log_mib = 4;
    n_buckets = None;
    trace = false;
    windows = 12;
  }

let smoke_config =
  {
    default_config with
    shards = 4;
    seed = 7;
    keys = 16_384;
    requests = 6_000;
    rate_per_mcycle = 300.;
    crash_shard = Some 1;
    log_mib = 1;
    n_buckets = Some 4096;
  }

type fate = Pending | Served | Shed | Timed_out

(* fate codes inside the cells: int arrays survive an abandoned fiber *)
let f_pending = 0
let f_served = 1
let f_shed = 2
let f_timed_out = 3

type recovery_report = {
  t_down : int;
  t_up : int;
  recovery_cycles : int;
  rescued_lines : int;
  background_gc_cycles : int;
  on_demand_recovered : int;
  recovery_verdict : Atlas.Recovery.verdict;
  dl : Dl.verdict option;
  dl_note : string;
  recovery_errors : string list;
}

type shard_report = {
  shard : int;
  requests : int;
  populated : int;
  served : int;
  shed : int;
  timed_out : int;
  retry_attempts : int;
  phase2_served : int;
  sim_cycles : int;
  elapsed_cycles : int;
  steps : int;
  outcome : string;
  recovery : recovery_report option;
  tracer : Obs.Tracer.t option;
}

type window = { w_start : int; w_end : int; total : int; ok : int; failed : int }

type latency_row = {
  l_shard : int;
  l_phase : string;
  samples : int;
  p50 : int;
  p99 : int;
  p999 : int;
  lat_hist : Obs.Hist.t;
}

type report = {
  config : config;
  horizon : int;
  shards : shard_report array;
  fates : fate array;
  latencies : int array;
  windows : window array;
  latency : latency_row list;
}

let validate (cfg : config) =
  if cfg.shards <= 0 then
    Fmt.invalid_arg "Serve: shard count %d must be positive" cfg.shards;
  if cfg.keys < cfg.shards then
    Fmt.invalid_arg "Serve: %d keys cannot cover %d shards" cfg.keys cfg.shards;
  if cfg.req_cycles < 0 then
    Fmt.invalid_arg "Serve: per-request cost %d must be >= 0" cfg.req_cycles;
  if cfg.windows <= 0 then
    Fmt.invalid_arg "Serve: availability window count %d must be positive"
      cfg.windows;
  if cfg.log_mib <= 0 then
    Fmt.invalid_arg "Serve: log size %d MiB must be positive" cfg.log_mib;
  (match cfg.n_buckets with
  | Some b when b <= 0 ->
      Fmt.invalid_arg "Serve: bucket count %d must be positive" b
  | _ -> ());
  match cfg.crash_shard with
  | Some s when s < 0 || s >= cfg.shards ->
      Fmt.invalid_arg
        "Serve: crash shard %d is out of range (the service has shards 0..%d)"
        s (cfg.shards - 1)
  | _ -> ()

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let bucket_count (cfg : config) =
  match cfg.n_buckets with
  | Some b -> b
  | None -> next_pow2 (max 1024 (cfg.keys / cfg.shards)) 1024

(* Keys this shard owns, ascending.  Population order (hence the durable
   image) is a pure function of (keys, shards, shard), which is what
   lets the DL checker re-derive the pre-crash baseline instead of
   dumping it. *)
let owned_keys (cfg : config) shard =
  let acc = ref [] in
  for i = cfg.keys - 1 downto 0 do
    let k = Key_space.h_key i in
    if Arrival.route ~shards:cfg.shards k = shard then acc := k :: !acc
  done;
  Array.of_list !acc

let spec_for (cfg : config) ~shard ~owned ~n_buckets ~tracer =
  let rc = Workload.Runner.calibrated_config cfg.platform in
  (* Size each shard's region to its share of the keyspace: buckets,
     entries (generously, to cover skip-list towers and btree nodes),
     allocator slack, and the undo-log region. *)
  let region =
    (n_buckets * 16) + (Array.length owned * 256) + (1 lsl 20)
    + (cfg.log_mib * 1024 * 1024)
  in
  {
    Machine.platform = Nvm.Config.with_region_size cfg.platform region;
    variant = cfg.variant;
    threads = 1;
    seed = cfg.seed + (7919 * (shard + 1));
    journal = false;
    n_buckets;
    log_mib = cfg.log_mib;
    atlas_costs = rc.Workload.Runner.atlas_costs;
    cost_jitter = rc.Workload.Runner.cost_jitter;
    hash_op_cycles = rc.Workload.Runner.hash_op_cycles;
    skip_op_cycles = rc.Workload.Runner.skip_op_cycles;
    value_words = 1;
    quantum = rc.Workload.Runner.quantum;
    deterministic_slice = rc.Workload.Runner.deterministic_slice;
    tracer;
    hardware = rc.Workload.Runner.hardware;
    failure = rc.Workload.Runner.failure;
  }

let serve_one (ops : Map_intf.ops) ~key ~op =
  if op = Arrival.op_read then ignore (ops.Map_intf.get ~tid:0 ~key : int64 option)
  else if op = Arrival.op_update then
    ops.Map_intf.set ~tid:0 ~key ~value:(Int64.of_int key)
  else ops.Map_intf.incr ~tid:0 ~key ~by:1L

(* Phase-A server loop: take the shard's requests in arrival order, idle
   (charging simulated cycles) until each one's arrival, dispatch, and
   record fate + latency.  The fate/latency arrays are mutated in place,
   so whatever was recorded before a crash abandons the fiber
   survives. *)
let server_body m (stream : Arrival.stream) idx fates lats ~req_cycles () =
  let pmem = m.Machine.pmem in
  let sched = m.Machine.sched in
  let ops = m.Machine.map.Machine.map_ops in
  let n = Array.length idx in
  for li = 0 to n - 1 do
    let j = idx.(li) in
    let arr = stream.Arrival.times.(j) in
    let now = Scheduler.now sched in
    if arr > now then Nvm.Pmem.charge pmem (arr - now);
    Nvm.Pmem.charge pmem req_cycles;
    serve_one ops
      ~key:(Key_space.h_key stream.Arrival.ranks.(j))
      ~op:stream.Arrival.ops.(j);
    lats.(li) <- Scheduler.now sched - arr;
    fates.(li) <- f_served
  done

(* --- Degraded-mode planning -------------------------------------- *)

type p2_req = {
  li : int;
  arr : int;
  eff : int;  (** effective (re-)arrival; always [>= t_up] for [< t_up] arrivals *)
  deadline : int option;  (** queue mode: max tolerated [dequeue - arr] *)
  extra_attempts : int;
}

(* Attempt [k] (0 = the original arrival) of a retrying client. *)
let attempt_time ~arr ~backoff k =
  if k = 0 then arr
  else if k >= 40 then max_int
  else
    let d = backoff * ((1 lsl k) - 1) in
    if d < 0 || d > max_int - arr then max_int else arr + d

(* Decide, purely, what happens to every request left pending by the
   crash: an immediate fate (shed / timed out), or a phase-2 service
   plan.  [pending] is (local index, arrival) in arrival order. *)
let plan_phase2 degraded ~t_up pending =
  let immediate = ref [] in
  let serve = ref [] in
  List.iter
    (fun (li, arr) ->
      match degraded with
      | Degraded.Shed ->
          if arr >= t_up then
            serve := { li; arr; eff = arr; deadline = None; extra_attempts = 0 } :: !serve
          else immediate := (li, f_shed) :: !immediate
      | Degraded.Queue { deadline } ->
          serve :=
            { li; arr; eff = max arr t_up; deadline = Some deadline; extra_attempts = 0 }
            :: !serve
      | Degraded.Retry { backoff; max_retries } ->
          let rec first k =
            if k > max_retries then None
            else if attempt_time ~arr ~backoff k >= t_up then Some k
            else first (k + 1)
          in
          (match first 0 with
          | Some k ->
              serve :=
                {
                  li;
                  arr;
                  eff = max (attempt_time ~arr ~backoff k) t_up;
                  deadline = None;
                  extra_attempts = k;
                }
                :: !serve
          | None -> immediate := (li, f_timed_out) :: !immediate))
    pending;
  let serve =
    List.sort
      (fun a b -> match compare a.eff b.eff with 0 -> compare a.li b.li | c -> c)
      !serve
  in
  (List.rev !immediate, serve)

(* Phase-B server loop, on the restarted machine.  The fresh scheduler's
   clocks start at zero; [t_up] anchors them back on the service
   timeline, so waits and latencies are computed in absolute cycles.
   Under incremental recovery [gc] is the pending background collection:
   the first request touching a key pays that object's on-demand
   recovery surcharge (procrastination moves the cost onto the unlucky
   first reader instead of the outage). *)
let resume_body m plan idx fates lats ~t_up ~req_cycles ?gc
    (stream : Arrival.stream) () =
  let pmem = m.Machine.pmem in
  let sched = m.Machine.sched in
  let ops = m.Machine.map.Machine.map_ops in
  let touched = Nvm.Intset.create ~capacity:1024 () in
  List.iter
    (fun { li; arr; eff; deadline; extra_attempts = _ } ->
      let rel_target = eff - t_up in
      let now = Scheduler.now sched in
      if rel_target > now then Nvm.Pmem.charge pmem (rel_target - now);
      let waited = t_up + Scheduler.now sched - arr in
      match deadline with
      | Some d when waited > d ->
          (* queue mode drops at dequeue: the client stopped waiting *)
          fates.(li) <- f_timed_out
      | _ ->
          let j = idx.(li) in
          let key = Key_space.h_key stream.Arrival.ranks.(j) in
          (match gc with
          | Some inc
            when Heap_gc.Incremental.remaining_cycles inc > 0
                 && Nvm.Intset.add touched key ->
              ignore (Heap_gc.Incremental.on_demand inc : int)
          | _ -> ());
          Nvm.Pmem.charge pmem req_cycles;
          serve_one ops ~key ~op:stream.Arrival.ops.(j);
          lats.(li) <- (t_up + Scheduler.now sched) - arr;
          fates.(li) <- f_served)
    plan

(* Background collection fiber: drain the incremental GC's budget in
   slices, yielding to the request fiber between charges — the scheduler
   interleaves both by virtual clock, so collection and service overlap
   exactly as they would on a real core pair. *)
let background_gc_body inc () =
  let slice = 4096 in
  while Heap_gc.Incremental.advance inc ~budget:slice > 0 do
    ()
  done

(* Strict durable linearizability is only a sound expectation of
   rescue-class crash semantics; mirror Check_campaign's envelope. *)
let dl_gate (cfg : config) spec =
  match cfg.fault_model with
  | None ->
      let verdict =
        Tsp_core.Policy.decide spec.Machine.hardware spec.Machine.failure
      in
      if Tsp_core.Policy.is_tsp verdict then Ok ()
      else
        Error
          "skipped: the hardware/failure pair gets a non-TSP verdict (discard \
           semantics), outside the strict checker's soundness envelope"
  | Some Nvm.Fault_model.Full_rescue -> Ok ()
  | Some fm ->
      Error
        (Printf.sprintf
           "skipped: fault model %s is outside the strict checker's soundness \
            envelope (rescue-class semantics required)"
           (Nvm.Fault_model.to_string fm))

type cell = { c_report : shard_report; c_fates : int array; c_lats : int array }

let run_shard (cfg : config) (stream : Arrival.stream) ~idx ~n_buckets ~crash_step shard =
  let owned = owned_keys cfg shard in
  let tracer = if cfg.trace then Some (Obs.Tracer.create ()) else None in
  let spec = spec_for cfg ~shard ~owned ~n_buckets ~tracer in
  let m = Machine.create spec in
  let pmem = m.Machine.pmem in
  Array.iter
    (fun k -> m.Machine.map.Machine.set_plain ~key:k ~value:(Int64.of_int k))
    owned;
  Nvm.Pmem.persist_all pmem;
  let n = Array.length idx in
  let fates = Array.make n f_pending in
  let lats = Array.make n (-1) in
  (* The history recorder is zero-perturbation (two Scheduler.now reads
     per op), so recording only where it is needed — the shard that will
     crash — changes nothing for anyone. *)
  let history =
    match crash_step with
    | None -> None
    | Some _ ->
        let h = History.create ~sched:m.Machine.sched ~capacity:(max 16 n) () in
        Machine.instrument m (History.wrap h);
        Some h
  in
  ignore
    (Scheduler.spawn m.Machine.sched
       ~name:(Printf.sprintf "shard-%d" shard)
       (server_body m stream idx fates lats ~req_cycles:cfg.req_cycles)
      : int);
  let outcome = Machine.execute ?crash_at_step:crash_step m in
  let count f = Array.fold_left (fun a c -> if c = f then a + 1 else a) 0 fates in
  let finish ~retry_attempts ~phase2_served ~elapsed ~steps ~outcome ~recovery =
    {
      c_report =
        {
          shard;
          requests = n;
          populated = Array.length owned;
          served = count f_served;
          shed = count f_shed;
          timed_out = count f_timed_out;
          retry_attempts;
          phase2_served;
          sim_cycles = (Nvm.Pmem.stats pmem).Nvm.Stats.clock;
          elapsed_cycles = elapsed;
          steps;
          outcome;
          recovery;
          tracer;
        };
      c_fates = fates;
      c_lats = lats;
    }
  in
  match outcome with
  | Scheduler.Completed ->
      finish ~retry_attempts:0 ~phase2_served:0
        ~elapsed:(Scheduler.elapsed_cycles m.Machine.sched)
        ~steps:(Scheduler.total_steps m.Machine.sched)
        ~outcome:"ok" ~recovery:None
  | Scheduler.Deadlocked _ ->
      finish ~retry_attempts:0 ~phase2_served:0
        ~elapsed:(Scheduler.elapsed_cycles m.Machine.sched)
        ~steps:(Scheduler.total_steps m.Machine.sched)
        ~outcome:"deadlocked" ~recovery:None
  | Scheduler.Crashed { at_step = _ } ->
      let sched1 = m.Machine.sched in
      let t_down = Scheduler.elapsed_cycles sched1 in
      let steps1 = Scheduler.total_steps sched1 in
      let clock_before = (Nvm.Pmem.stats pmem).Nvm.Stats.clock in
      let _bill = Machine.crash_execute ?fault:cfg.fault_model m in
      let recovery = Machine.recover ~mode:cfg.recovery m in
      let recovery_cycles =
        (Nvm.Pmem.stats pmem).Nvm.Stats.clock - clock_before
      in
      let rescued_lines = (Nvm.Pmem.stats pmem).Nvm.Stats.rescued_lines in
      let t_up = t_down + recovery_cycles in
      let pending =
        List.filter_map
          (fun li ->
            if fates.(li) = f_pending then Some (li, stream.Arrival.times.(idx.(li)))
            else None)
          (List.init n Fun.id)
      in
      let recovered_ok =
        recovery.Machine.heap <> None && recovery.Machine.heap_audit_ok
      in
      if not recovered_ok then begin
        (* the shard never comes back: every pending request is shed *)
        List.iter (fun (li, _) -> fates.(li) <- f_shed) pending;
        finish ~retry_attempts:0 ~phase2_served:0 ~elapsed:t_up ~steps:steps1
          ~outcome:"crashed+lost"
          ~recovery:
            (Some
               {
                 t_down;
                 t_up;
                 recovery_cycles;
                 rescued_lines;
                 background_gc_cycles = 0;
                 on_demand_recovered = 0;
                 recovery_verdict = recovery.Machine.recovery_verdict;
                 dl = None;
                 dl_note = "skipped: the shard state was not recovered";
                 recovery_errors = recovery.Machine.recovery_errors;
               })
      end
      else begin
        let max_seq =
          match recovery.Machine.atlas_recovery with
          | Some a -> a.Atlas.Recovery.max_seq
          | None -> 0
        in
        let root =
          Machine.reattach m ~seed:(spec.Machine.seed + 101)
            ~first_seq:(max_seq + 1)
        in
        let recovered_entries =
          m.Machine.map.Machine.fold_root m.Machine.heap ~root (fun k v acc ->
              (k, v) :: acc)
        in
        let dl, dl_note =
          match (dl_gate cfg spec, history) with
          | Error note, _ -> (None, note)
          | Ok (), None -> (None, "skipped: no history recorded")
          | Ok (), Some h ->
              let initial =
                Array.to_list (Array.map (fun k -> (k, Int64.of_int k)) owned)
              in
              (Some (Dl.check ~initial ~history:h ~recovered:recovered_entries), "")
        in
        (* Re-anchor the tracer's clock on the service timeline: the
           restarted scheduler counts from zero, t_up cycles in. *)
        (match tracer with
        | None -> ()
        | Some tr ->
            let sched2 = m.Machine.sched in
            let stats = Nvm.Pmem.stats pmem in
            Obs.Tracer.set_clock tr (fun () ->
                if Scheduler.in_thread sched2 then t_up + Scheduler.now sched2
                else stats.Nvm.Stats.clock));
        let immediate, plan = plan_phase2 cfg.degraded ~t_up pending in
        List.iter (fun (li, f) -> fates.(li) <- f) immediate;
        let retry_attempts =
          List.fold_left (fun a r -> a + r.extra_attempts) 0 plan
          + (List.length (List.filter (fun (_, f) -> f = f_timed_out) immediate)
            * (match cfg.degraded with
              | Degraded.Retry { max_retries; _ } -> max_retries
              | Degraded.Shed | Degraded.Queue _ -> 0))
        in
        let gc_pending = recovery.Machine.gc_pending in
        ignore
          (Scheduler.spawn m.Machine.sched
             ~name:(Printf.sprintf "shard-%d-recovered" shard)
             (resume_body m plan idx fates lats ~t_up
                ~req_cycles:cfg.req_cycles ?gc:gc_pending stream)
            : int);
        (match gc_pending with
        | Some inc ->
            ignore
              (Scheduler.spawn m.Machine.sched
                 ~name:(Printf.sprintf "shard-%d-gc" shard)
                 (background_gc_body inc)
                : int)
        | None -> ());
        let outcome2 = Machine.execute m in
        let background_gc_cycles, on_demand_recovered =
          match gc_pending with
          | Some inc ->
              ( Heap_gc.Incremental.total_cycles inc,
                Heap_gc.Incremental.on_demand_count inc )
          | None -> (0, 0)
        in
        ignore
          (Machine.finish_background_gc m
            : (Heap_gc.stats * Heap_gc.quarantine) option);
        let phase2_served =
          List.fold_left
            (fun a r -> if fates.(r.li) = f_served then a + 1 else a)
            0 plan
        in
        finish ~retry_attempts ~phase2_served
          ~elapsed:(t_up + Scheduler.elapsed_cycles m.Machine.sched)
          ~steps:(steps1 + Scheduler.total_steps m.Machine.sched)
          ~outcome:
            (match outcome2 with
            | Scheduler.Completed -> "crashed+recovered"
            | Scheduler.Deadlocked _ -> "deadlocked"
            | Scheduler.Crashed _ -> "crashed+lost")
          ~recovery:
            (Some
               {
                 t_down;
                 t_up;
                 recovery_cycles;
                 rescued_lines;
                 background_gc_cycles;
                 on_demand_recovered;
                 recovery_verdict = recovery.Machine.recovery_verdict;
                 dl;
                 dl_note;
                 recovery_errors = recovery.Machine.recovery_errors;
               })
      end

(* --- Aggregation -------------------------------------------------- *)

let fate_of_code = function
  | 0 -> Pending
  | 1 -> Served
  | 2 -> Shed
  | _ -> Timed_out

let build_windows (cfg : config) ~horizon ~times fates =
  let w = cfg.windows in
  let width = max 1 ((horizon + w - 1) / w) in
  let wins =
    Array.init w (fun i ->
        {
          w_start = i * width;
          w_end = (if i = w - 1 then max horizon ((i + 1) * width) else (i + 1) * width);
          total = 0;
          ok = 0;
          failed = 0;
        })
  in
  Array.iteri
    (fun j fate ->
      let i = min (w - 1) (times.(j) / width) in
      let win = wins.(i) in
      wins.(i) <-
        {
          win with
          total = win.total + 1;
          ok = (win.ok + if fate = Served then 1 else 0);
          failed = (win.failed + if fate = Served then 0 else 1);
        })
    fates;
  wins

(* Per-(shard, phase) latency distributions as log-bucketed histograms:
   one pass over the request stream feeds a fixed set of Obs.Hist cells
   instead of materializing a sample list per cell, so the service path
   retains O(shards x phases) histograms rather than O(requests)
   samples.  Quantiles follow the same nearest-rank convention
   Report.percentiles used here before, within the histogram's 6.25%
   bucket error. *)
let latency_rows (cfg : config) ~outage ~times ~shard_of fates lats =
  let phases =
    match outage with
    | None -> [| ("steady", 0, max_int) |]
    | Some (t_down, t_up) ->
        [| ("before", 0, t_down); ("during", t_down, t_up); ("after", t_up, max_int) |]
  in
  let np = Array.length phases in
  let hists = Array.init (cfg.shards * np) (fun _ -> Obs.Hist.create ()) in
  Array.iteri
    (fun j fate ->
      if fate = Served then begin
        let rec phase_of i =
          if i >= np then -1
          else
            let _, lo, hi = phases.(i) in
            if times.(j) >= lo && times.(j) < hi then i else phase_of (i + 1)
        in
        let p = phase_of 0 in
        if p >= 0 then Obs.Hist.add hists.((shard_of.(j) * np) + p) lats.(j)
      end)
    fates;
  List.concat_map
    (fun shard ->
      List.filter_map
        (fun p ->
          let name, _, _ = phases.(p) in
          let h = hists.((shard * np) + p) in
          if Obs.Hist.is_empty h then None
          else
            Some
              {
                l_shard = shard;
                l_phase = name;
                samples = Obs.Hist.count h;
                p50 = Obs.Hist.quantile h 0.5;
                p99 = Obs.Hist.quantile h 0.99;
                p999 = Obs.Hist.quantile h 0.999;
                lat_hist = h;
              })
        (List.init np Fun.id))
    (List.init cfg.shards Fun.id)

let run ?jobs (cfg : config) =
  validate cfg;
  let stream =
    Arrival.generate ~seed:cfg.seed ~rate_per_mcycle:cfg.rate_per_mcycle
      ~theta:cfg.theta ~keys:cfg.keys ~preset:cfg.preset ~requests:cfg.requests
  in
  let horizon = Arrival.horizon stream in
  let shard_of =
    Array.map
      (fun rank -> Arrival.route ~shards:cfg.shards (Key_space.h_key rank))
      stream.Arrival.ranks
  in
  let idx_of shard =
    let acc = ref [] in
    for j = cfg.requests - 1 downto 0 do
      if shard_of.(j) = shard then acc := j :: !acc
    done;
    Array.of_list !acc
  in
  let idxs = Array.init cfg.shards idx_of in
  let n_buckets = bucket_count cfg in
  (* Resolve the crash point: half the victim's crash-free step count,
     derived from a baseline pre-run of that one cell.  The baseline is
     the same pure function the fan-out runs, so its prefix is exactly
     what the crashed run will execute. *)
  let crash_step_of shard =
    match cfg.crash_at_step with
    | Some s ->
        if s < 1 then
          Fmt.invalid_arg "Serve: crash step %d must be >= 1 (steps count from 1)" s;
        s
    | None ->
        let baseline =
          run_shard
            { cfg with trace = false }
            stream ~idx:idxs.(shard) ~n_buckets ~crash_step:None shard
        in
        max 1 (baseline.c_report.steps / 2)
  in
  let crash_plan =
    match cfg.crash_shard with
    | None -> Array.make cfg.shards None
    | Some victim ->
        let step = crash_step_of victim in
        Array.init cfg.shards (fun s -> if s = victim then Some step else None)
  in
  let cells =
    Parallel.map ?jobs
      (fun shard ->
        run_shard cfg stream ~idx:idxs.(shard) ~n_buckets
          ~crash_step:crash_plan.(shard) shard)
      (List.init cfg.shards Fun.id)
  in
  let cells = Array.of_list cells in
  let fates = Array.make cfg.requests Pending in
  let latencies = Array.make cfg.requests (-1) in
  Array.iteri
    (fun shard cell ->
      Array.iteri
        (fun li j ->
          fates.(j) <- fate_of_code cell.c_fates.(li);
          latencies.(j) <- cell.c_lats.(li))
        idxs.(shard))
    cells;
  let shards = Array.map (fun c -> c.c_report) cells in
  let outage =
    Array.fold_left
      (fun acc (r : shard_report) ->
        match (acc, r.recovery) with
        | None, Some rr -> Some (rr.t_down, rr.t_up)
        | acc, _ -> acc)
      None shards
  in
  {
    config = cfg;
    horizon;
    shards;
    fates;
    latencies;
    windows = build_windows cfg ~horizon ~times:stream.Arrival.times fates;
    latency = latency_rows cfg ~outage ~times:stream.Arrival.times ~shard_of fates latencies;
  }

(* --- Rendering ---------------------------------------------------- *)

let render r =
  let cfg = r.config in
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "tsp serve: %d shards x %s on %s\n" cfg.shards
    (Machine.variant_to_string cfg.variant)
    cfg.platform.Nvm.Config.name;
  pf
    "stream: %d requests @ %.1f req/Mcycle, zipf(theta=%.2f) over %d keys, \
     ycsb-%s, seed %d\n"
    cfg.requests cfg.rate_per_mcycle cfg.theta cfg.keys
    (Ycsb.preset_to_string cfg.preset)
    cfg.seed;
  pf "degraded mode: %s; horizon: %d cycles\n\n" (Degraded.to_string cfg.degraded)
    r.horizon;
  pf "%5s %7s %7s %7s %6s %5s %8s %7s %10s %12s  %s\n" "shard" "reqs" "keys"
    "served" "shed" "t/o" "retries" "phase2" "steps" "sim-cycles" "outcome";
  Array.iter
    (fun (s : shard_report) ->
      pf "%5d %7d %7d %7d %6d %5d %8d %7d %10d %12d  %s\n" s.shard s.requests
        s.populated s.served s.shed s.timed_out s.retry_attempts s.phase2_served
        s.steps s.sim_cycles s.outcome)
    r.shards;
  let total f = Array.fold_left (fun a s -> a + f s) 0 r.shards in
  let served = total (fun s -> s.served) in
  let shed = total (fun s -> s.shed) in
  let timed_out = total (fun s -> s.timed_out) in
  let avail =
    if cfg.requests = 0 then 100.
    else 100. *. float_of_int served /. float_of_int cfg.requests
  in
  pf "totals: served %d, shed %d, timed out %d -> availability %.2f%%\n" served
    shed timed_out avail;
  Array.iter
    (fun (s : shard_report) ->
      match s.recovery with
      | None -> ()
      | Some rr ->
          pf
            "\ncrash: shard %d down at cycle %d; recovery took %d cycles (%d \
             lines rescued); serving again at cycle %d\n"
            s.shard rr.t_down rr.recovery_cycles rr.rescued_lines rr.t_up;
          if rr.background_gc_cycles > 0 then
            pf
              "background gc: %d cycles overlapped with service; %d objects \
               recovered on demand\n"
              rr.background_gc_cycles rr.on_demand_recovered;
          pf "recovery verdict: %s\n"
            (Fmt.str "%a" Atlas.Recovery.pp_verdict rr.recovery_verdict);
          (match rr.dl with
          | Some v ->
              pf "durable linearizability: %s\n" (Fmt.str "%a" Dl.pp_verdict v)
          | None -> pf "durable linearizability: %s\n" rr.dl_note);
          if rr.recovery_errors <> [] then
            pf "recovery errors: %s\n" (String.concat "; " rr.recovery_errors))
    r.shards;
  if Array.length r.windows > 0 then begin
    pf "\navailability timeline (%d windows):\n" (Array.length r.windows);
    Array.iter
      (fun w ->
        if w.total = 0 then
          pf "  [%10d, %10d)  %5s\n" w.w_start w.w_end "-"
        else begin
          let frac = float_of_int w.ok /. float_of_int w.total in
          let bar = int_of_float (frac *. 20.) in
          pf "  [%10d, %10d)  %6d/%-6d %6.2f%%  %s\n" w.w_start w.w_end w.ok
            w.total (100. *. frac)
            (String.make bar '#' ^ String.make (20 - bar) '.')
        end)
      r.windows
  end;
  if r.latency <> [] then begin
    pf "\nlatency (cycles, by arrival phase):\n";
    pf "  %5s %-7s %7s %10s %10s %10s  %s\n" "shard" "phase" "n" "p50" "p99"
      "p999" "distribution";
    List.iter
      (fun l ->
        pf "  %5d %-7s %7d %10d %10d %10d  %s\n" l.l_shard l.l_phase l.samples
          l.p50 l.p99 l.p999
          (Obs.Hist.sparkline ~width:24 l.lat_hist))
      r.latency
  end;
  Buffer.contents b

let write_trace r ~path =
  let tracks =
    Array.to_list r.shards
    |> List.filter_map (fun (s : shard_report) ->
           Option.map (fun tr -> (Printf.sprintf "shard-%d" s.shard, tr)) s.tracer)
  in
  match tracks with
  | [] -> false
  | tracks ->
      Obs.Chrome.write_file_multi path tracks;
      true

(* The service report as the results-artifact body: per-shard ledger,
   availability windows and the per-(shard, phase) latency histograms.
   Everything emitted is jobs-invariant (shard cells are deterministic
   and collected in order); tracer contents and host timings are
   excluded. *)
let to_json j r =
  let module J = Obs.Json in
  J.obj_open j;
  J.key j "horizon";
  J.int j r.horizon;
  let total f = Array.fold_left (fun a s -> a + f s) 0 r.shards in
  J.key j "served";
  J.int j (total (fun s -> s.served));
  J.key j "shed";
  J.int j (total (fun s -> s.shed));
  J.key j "timed_out";
  J.int j (total (fun s -> s.timed_out));
  J.key j "shards";
  J.arr_open j;
  Array.iter
    (fun (s : shard_report) ->
      J.obj_open j;
      J.key j "shard";
      J.int j s.shard;
      J.key j "requests";
      J.int j s.requests;
      J.key j "populated";
      J.int j s.populated;
      J.key j "served";
      J.int j s.served;
      J.key j "shed";
      J.int j s.shed;
      J.key j "timed_out";
      J.int j s.timed_out;
      J.key j "retry_attempts";
      J.int j s.retry_attempts;
      J.key j "phase2_served";
      J.int j s.phase2_served;
      J.key j "steps";
      J.int j s.steps;
      J.key j "sim_cycles";
      J.int j s.sim_cycles;
      J.key j "outcome";
      J.str j s.outcome;
      (match s.recovery with
      | None -> ()
      | Some rr ->
          J.key j "recovery";
          J.obj_open j;
          J.key j "t_down";
          J.int j rr.t_down;
          J.key j "t_up";
          J.int j rr.t_up;
          J.key j "recovery_cycles";
          J.int j rr.recovery_cycles;
          J.key j "rescued_lines";
          J.int j rr.rescued_lines;
          J.key j "background_gc_cycles";
          J.int j rr.background_gc_cycles;
          J.key j "on_demand_recovered";
          J.int j rr.on_demand_recovered;
          J.key j "verdict";
          J.str j (Fmt.str "%a" Atlas.Recovery.pp_verdict rr.recovery_verdict);
          J.key j "dl";
          (match rr.dl with
          | Some v -> J.str j (Fmt.str "%a" Dl.pp_verdict v)
          | None -> J.str j rr.dl_note);
          J.key j "recovery_errors";
          J.arr_open j;
          List.iter (J.str j) rr.recovery_errors;
          J.arr_close j;
          J.obj_close j);
      J.obj_close j)
    r.shards;
  J.arr_close j;
  J.key j "windows";
  J.arr_open j;
  Array.iter
    (fun w ->
      J.obj_open j;
      J.key j "start";
      J.int j w.w_start;
      J.key j "end";
      J.int j w.w_end;
      J.key j "total";
      J.int j w.total;
      J.key j "ok";
      J.int j w.ok;
      J.key j "failed";
      J.int j w.failed;
      J.obj_close j)
    r.windows;
  J.arr_close j;
  J.key j "latency";
  J.arr_open j;
  List.iter
    (fun l ->
      J.obj_open j;
      J.key j "shard";
      J.int j l.l_shard;
      J.key j "phase";
      J.str j l.l_phase;
      J.key j "hist";
      Obs.Hist.to_json j l.lat_hist;
      J.obj_close j)
    r.latency;
  J.arr_close j;
  J.obj_close j
