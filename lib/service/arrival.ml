module Rng = Sched.Sim_rng
module Ycsb = Workload.Ycsb

type stream = { times : int array; ranks : int array; ops : int array }

let op_read = 0
let op_update = 1
let op_rmw = 2

let op_code = function
  | Ycsb.Read -> op_read
  | Ycsb.Update -> op_update
  | Ycsb.Rmw -> op_rmw

let generate ~seed ~rate_per_mcycle ~theta ~keys ~preset ~requests =
  if rate_per_mcycle <= 0. then
    Fmt.invalid_arg "Arrival.generate: rate %g req/Mcycle must be positive"
      rate_per_mcycle;
  if keys <= 0 then
    Fmt.invalid_arg "Arrival.generate: keyspace size %d must be positive" keys;
  if requests < 0 then
    Fmt.invalid_arg "Arrival.generate: request count %d must be >= 0" requests;
  let rng = Rng.create ~seed in
  let zipf = Ycsb.Zipf.create ~theta ~n:keys () in
  let times = Array.make requests 0 in
  let ranks = Array.make requests 0 in
  let ops = Array.make requests 0 in
  let mean_gap = 1_000_000. /. rate_per_mcycle in
  let clock = ref 0. in
  for i = 0 to requests - 1 do
    (* Exponential interarrival via inversion; [u < 1.] always, so the
       log argument is positive.  The clock accumulates in float and is
       truncated per arrival, keeping long streams drift-free. *)
    let u = Rng.float rng 1.0 in
    clock := !clock +. (-.Float.log (1. -. u) *. mean_gap);
    times.(i) <- int_of_float !clock;
    ranks.(i) <- Ycsb.Zipf.sample zipf rng;
    ops.(i) <- op_code (Ycsb.pick_op preset rng)
  done;
  { times; ranks; ops }

let horizon s =
  let n = Array.length s.times in
  if n = 0 then 1 else s.times.(n - 1) + 1

(* splitmix64-style finalising mixer on the native int, constants
   truncated to 62 bits so they are valid OCaml literals; quality is
   ample for scattering [h_key]'s arithmetic key sequence. *)
let mix k =
  let k = k lxor (k lsr 31) in
  let k = k * 0x2545F4914F6CDD1D in
  let k = k lxor (k lsr 29) in
  let k = k * 0x27BB2EE687B0B0FD in
  let k = k lxor (k lsr 32) in
  k land max_int

let route ~shards key =
  if shards <= 0 then
    Fmt.invalid_arg "Arrival.route: shard count %d must be positive" shards;
  mix key mod shards
