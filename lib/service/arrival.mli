(** Open-loop request arrivals and the deterministic request router.

    The service is driven open-loop, as real serving systems are
    measured: requests arrive on a Poisson process at a configured rate
    regardless of whether the servers keep up, so queueing delay is part
    of every latency sample — unlike the closed-loop workloads in
    {!Workload.Runner}, where a thread's next operation waits for its
    previous one.  Keys are drawn Zipfian ({!Workload.Ycsb.Zipf}, with
    [theta = 0.] the uniform degenerate case) and the operation mix
    comes from a YCSB preset.

    The whole stream is a pure function of [(seed, rate, theta, keys,
    preset, requests)]: one splitmix64 generator, three draws per
    request in a fixed order.  Byte-reproducible across hosts, job
    counts and repeated runs. *)

type stream = {
  times : int array;
      (** absolute arrival cycle of request [i]; nondecreasing *)
  ranks : int array;
      (** Zipf rank of request [i] — an index into {!Workload.Key_space.h_key} *)
  ops : int array;  (** operation code of request [i]: {!op_read} etc. *)
}

val op_read : int
val op_update : int
val op_rmw : int

val generate :
  seed:int ->
  rate_per_mcycle:float ->
  theta:float ->
  keys:int ->
  preset:Workload.Ycsb.preset ->
  requests:int ->
  stream
(** @raise Invalid_argument when [rate_per_mcycle <= 0.], [keys <= 0],
    [requests < 0] or [theta] is outside [\[0, 1)]. *)

val horizon : stream -> int
(** One past the last arrival cycle (1 for an empty stream). *)

val route : shards:int -> int -> int
(** [route ~shards key] is the shard owning [key]: a fixed integer
    mixer folded modulo [shards], so placement is deterministic,
    stateless and scatters the Zipf-head hot keys across shards.
    @raise Invalid_argument when [shards <= 0]. *)
