(** Degraded-mode policy: what the service does with requests routed to
    a shard that is down (crashed, rescuing, recovering).

    All three policies are pure, deterministic transformations of a
    request's arrival time given the outage window [\[t_down, t_up)], so
    a crash scenario stays byte-reproducible. *)

type t =
  | Shed
      (** reject immediately with an error verdict; the client does not
          come back *)
  | Queue of { deadline : int }
      (** hold the request in the shard's queue and serve it after
          recovery — unless, at dequeue time, it has been waiting longer
          than [deadline] cycles, in which case it times out *)
  | Retry of { backoff : int; max_retries : int }
      (** the client retries with exponential backoff: attempt [k]
          (1-based) happens [backoff * (2^k - 1)] cycles after the
          original arrival; the first attempt at or after [t_up] is
          served, and a request whose [max_retries] attempts all land
          inside the outage times out *)

val default_deadline : int
val default_backoff : int
val default_max_retries : int

val default : t
(** [Queue {deadline = default_deadline}]. *)

val to_string : t -> string
(** Round-trips with {!of_string}: ["shed"], ["queue:<deadline>"],
    ["retry:<backoff>:<max_retries>"]. *)

val of_string : string -> (t, string) result
(** Accepts ["shed"], ["queue"], ["queue:<deadline>"], ["retry"],
    ["retry:<backoff>"], ["retry:<backoff>:<max_retries>"]; bare forms
    take the defaults above. *)

val pp : t Fmt.t
