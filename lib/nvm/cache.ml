(* Struct-of-arrays cache metadata.  One simulated memory access costs
   one [touch], so this module is the hottest code in the simulator:
   everything on the access path works on flat [int array]s plus a dirty
   bitset, returns unboxed int codes, and allocates nothing.  The way
   holding line [l] in set [s] lives at flat index [s * ways + w]. *)

type t = {
  tags : int array;  (* n_sets * ways; the line number, or -1 when empty *)
  stamps : int array;  (* LRU clocks, same indexing; lower = older *)
  dirty : int array;  (* bitset over flat way indexes, 63 ways per word *)
  ways : int;
  line_shift : int;  (* log2 line_size: addr lsr line_shift = line *)
  set_mask : int;  (* n_sets - 1: line land set_mask = set index *)
  write_back : int -> unit;
  mutable tick : int;
  mutable n_dirty : int;
      (* incremental count of dirty ways; every dirty-bit transition
         below must keep it in sync so [dirty_count] stays O(1) *)
}

(* Unboxed result encoding for [touch]; see the .mli.  The codes are
   ordered so that [code >= miss_clean] means "miss" and
   [code = miss_dirty] means "a dirty victim was written back". *)
let hit = 0
let miss_clean = 1
let miss_dirty = 2

type access = Hit | Miss of { evicted_dirty : bool }

let access_of_code code =
  if code = hit then Hit else Miss { evicted_dirty = code = miss_dirty }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  let rec go shift = if 1 lsl shift >= n then shift else go (shift + 1) in
  go 0

let create ~sets ~ways ~line_size ~write_back =
  if not (is_power_of_two line_size) then
    Fmt.invalid_arg "Cache.create: line_size %d not a power of two" line_size;
  if not (is_power_of_two sets) then
    Fmt.invalid_arg "Cache.create: set count %d not a power of two" sets;
  if ways <= 0 then Fmt.invalid_arg "Cache.create: ways %d not positive" ways;
  let n = sets * ways in
  {
    tags = Array.make n (-1);
    stamps = Array.make n 0;
    dirty = Array.make ((n + 62) / 63) 0;
    ways;
    line_shift = log2_exact line_size;
    set_mask = sets - 1;
    write_back;
    tick = 0;
    n_dirty = 0;
  }

let line_of t addr = addr lsr t.line_shift

(* Dirty bitset helpers.  63 bits per word keeps every operation on the
   OCaml immediate-int fast path. *)
let[@inline] is_dirty_idx t i = (t.dirty.(i / 63) lsr (i mod 63)) land 1 = 1

let[@inline] set_dirty_idx t i =
  let w = i / 63 in
  Array.unsafe_set t.dirty w (Array.unsafe_get t.dirty w lor (1 lsl (i mod 63)))

let[@inline] clear_dirty_idx t i =
  let w = i / 63 in
  Array.unsafe_set t.dirty w
    (Array.unsafe_get t.dirty w land lnot (1 lsl (i mod 63)))

(* Flat index of the way holding [line], or -1.  Replaces the historical
   [find_way : t -> int -> way option], whose [Some] boxed on every hit.
   The search loop is a top-level function on purpose: a local [let rec]
   with free variables compiles to a minor-heap closure under the
   non-flambda backend, which would put an allocation back on every
   access. *)
let rec find_from tags line i stop =
  if i >= stop then -1
  else if Array.unsafe_get tags i = line then i
  else find_from tags line (i + 1) stop

let[@inline] find_idx t line =
  let base = (line land t.set_mask) * t.ways in
  find_from t.tags line base (base + t.ways)

let next_stamp t =
  t.tick <- t.tick + 1;
  t.tick

(* First way with the strictly smallest stamp, as the record-based
   implementation chose (Array.iter with [<]).  Top-level for the same
   no-closure reason as [find_from]. *)
let rec lru_from stamps i stop best best_stamp =
  if i >= stop then best
  else
    let s = Array.unsafe_get stamps i in
    if s < best_stamp then lru_from stamps (i + 1) stop i s
    else lru_from stamps (i + 1) stop best best_stamp

let[@inline] lru_idx t base =
  lru_from t.stamps (base + 1) (base + t.ways) base t.stamps.(base)

let touch t ~addr ~dirty =
  let line = line_of t addr in
  let i = find_idx t line in
  if i >= 0 then begin
    t.stamps.(i) <- next_stamp t;
    if dirty && not (is_dirty_idx t i) then begin
      set_dirty_idx t i;
      t.n_dirty <- t.n_dirty + 1
    end;
    hit
  end
  else begin
    let base = (line land t.set_mask) * t.ways in
    let v = lru_idx t base in
    let evicted_dirty = t.tags.(v) >= 0 && is_dirty_idx t v in
    if evicted_dirty then begin
      t.write_back (t.tags.(v) lsl t.line_shift);
      t.n_dirty <- t.n_dirty - 1
    end;
    t.tags.(v) <- line;
    if dirty then begin
      set_dirty_idx t v;
      t.n_dirty <- t.n_dirty + 1
    end
    else clear_dirty_idx t v;
    t.stamps.(v) <- next_stamp t;
    if evicted_dirty then miss_dirty else miss_clean
  end

let touch_boxed t ~addr ~dirty =
  (* The pre-SoA access shape, retained for A/B measurement: an option
     boxed on every hit (the historical [find_way]) plus the [access]
     variant boxed on every miss — one minor allocation per access
     either way.  State transitions are identical to [touch]; the A/B
     harness asserts identical simulated cycles. *)
  let line = line_of t addr in
  match (match find_idx t line with -1 -> None | i -> Some i) with
  | Some i ->
      t.stamps.(i) <- next_stamp t;
      if dirty && not (is_dirty_idx t i) then begin
        set_dirty_idx t i;
        t.n_dirty <- t.n_dirty + 1
      end;
      Hit
  | None ->
      let base = (line land t.set_mask) * t.ways in
      let v = lru_idx t base in
      let evicted_dirty = t.tags.(v) >= 0 && is_dirty_idx t v in
      if evicted_dirty then begin
        t.write_back (t.tags.(v) lsl t.line_shift);
        t.n_dirty <- t.n_dirty - 1
      end;
      t.tags.(v) <- line;
      if dirty then begin
        set_dirty_idx t v;
        t.n_dirty <- t.n_dirty + 1
      end
      else clear_dirty_idx t v;
      t.stamps.(v) <- next_stamp t;
      Miss { evicted_dirty }

let flush_line t ~addr =
  let line = line_of t addr in
  let i = find_idx t line in
  if i >= 0 && is_dirty_idx t i then begin
    t.write_back (line lsl t.line_shift);
    clear_dirty_idx t i;
    t.n_dirty <- t.n_dirty - 1;
    true
  end
  else false

let dirty_count t = t.n_dirty

let dirty_lines t =
  (* Collected into an exact-size scratch array and sorted with the
     monomorphic [Int.compare]: this runs inside [Pmem.crash_with] for
     every partial-rescue and torn campaign step, where the historical
     polymorphic [List.sort compare] dominated the crash cost. *)
  let out = Array.make (max 1 t.n_dirty) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i tag ->
      if tag >= 0 && is_dirty_idx t i then begin
        out.(!k) <- tag lsl t.line_shift;
        incr k
      end)
    t.tags;
  let out = if !k = Array.length out then out else Array.sub out 0 !k in
  Array.sort Int.compare out;
  Array.to_list out

let write_back_all t =
  let n = ref 0 in
  Array.iteri
    (fun i tag ->
      if tag >= 0 && is_dirty_idx t i then begin
        t.write_back (tag lsl t.line_shift);
        clear_dirty_idx t i;
        incr n
      end)
    t.tags;
  t.n_dirty <- 0;
  !n

let drop_all t =
  let lost = t.n_dirty in
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) 0;
  t.n_dirty <- 0;
  lost

let cached t ~addr = find_idx t (line_of t addr) >= 0

let is_dirty t ~addr =
  let i = find_idx t (line_of t addr) in
  i >= 0 && is_dirty_idx t i
