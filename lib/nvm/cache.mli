(** Set-associative write-back cache model.

    Only the metadata of the cache is modelled — tags, dirty bits and LRU
    ordering.  Data lives in {!Memory}'s current image; when this model
    decides a line must be written back it invokes the [write_back]
    callback supplied at creation, which snapshots that line into the
    durable image.  This is precisely the behaviour TSP reasons about:
    dirty lines are vulnerable, written-back lines are safe.

    The metadata is stored struct-of-arrays — flat [int array]s of tags
    and LRU stamps plus a dirty bitset — and the access path reports its
    outcome as an unboxed int code, so one simulated access performs no
    minor-heap allocation.  See DESIGN.md, "Hot-path architecture". *)

type t

(** {1 Unboxed access results}

    [touch] returns one of the three codes below.  They are ordinary
    ints (no constructor is allocated): test [code = hit] for the hit
    path, [code = miss_dirty] when a dirty victim was written back. *)

val hit : int
(** The line was already cached ([= 0]). *)

val miss_clean : int
(** Miss; the installed line displaced nothing dirty ([= 1]). *)

val miss_dirty : int
(** Miss; the evicted LRU victim was dirty and was written back ([= 2]). *)

type access = Hit | Miss of { evicted_dirty : bool }
(** Boxed view of an access outcome, for tests and for the retained
    pre-SoA access path ({!touch_boxed}). *)

val access_of_code : int -> access
(** Decode a {!touch} result ([hit] → [Hit], …). *)

val create :
  sets:int -> ways:int -> line_size:int -> write_back:(int -> unit) -> t
(** [write_back line_addr] is called with the byte address of the first
    byte of each line the cache evicts or flushes while dirty.

    [sets] and [line_size] must both be powers of two so that line and
    set indexing reduce to shift/mask on the access hot path.
    @raise Invalid_argument otherwise. *)

val touch : t -> addr:int -> dirty:bool -> int
(** Record an access to the line containing [addr] and return {!hit},
    {!miss_clean} or {!miss_dirty}.  [dirty] marks the line modified (a
    store); a load leaves the dirty bit as it was.  On a miss the LRU
    way of the set is evicted (writing it back first if dirty) and the
    new line installed.  Allocates nothing. *)

val touch_boxed : t -> addr:int -> dirty:bool -> access
(** Exactly {!touch}, through the historical allocating shape (an
    option per hit, a variant per miss).  Kept so the benchmark can
    measure the unboxed path against it on the same binary; simulated
    state transitions are identical. *)

val flush_line : t -> addr:int -> bool
(** Write the line containing [addr] back if it is cached and dirty
    (clwb semantics: the line stays cached, now clean).  Returns [true] if
    a write-back actually happened. *)

val dirty_lines : t -> int list
(** Byte addresses of all currently dirty lines, ascending.  Sorted with
    [Int.compare] over a scratch array (not polymorphic compare): this
    runs once per [Pmem.crash_with], i.e. per campaign crash point. *)

val dirty_count : t -> int
(** Number of currently dirty lines, maintained incrementally — O(1),
    unlike [List.length (dirty_lines t)] which scans every way. *)

val write_back_all : t -> int
(** Flush every dirty line (the crash-time TSP rescue, or a full cache
    flush from a kernel panic handler).  Returns the number of lines
    written back. *)

val drop_all : t -> int
(** Invalidate the whole cache {e without} writing anything back: the
    non-TSP crash.  Returns the number of dirty lines whose contents were
    lost. *)

val cached : t -> addr:int -> bool
(** Whether the line containing [addr] is present (for tests). *)

val is_dirty : t -> addr:int -> bool
(** Whether the line containing [addr] is present and dirty. *)
