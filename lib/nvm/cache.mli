(** Set-associative write-back cache model.

    Only the metadata of the cache is modelled — tags, dirty bits and LRU
    ordering.  Data lives in {!Memory}'s current image; when this model
    decides a line must be written back it invokes the [write_back]
    callback supplied at creation, which snapshots that line into the
    durable image.  This is precisely the behaviour TSP reasons about:
    dirty lines are vulnerable, written-back lines are safe. *)

type t

type access = Hit | Miss of { evicted_dirty : bool }

val create :
  sets:int -> ways:int -> line_size:int -> write_back:(int -> unit) -> t
(** [write_back line_addr] is called with the byte address of the first
    byte of each line the cache evicts or flushes while dirty.

    [sets] and [line_size] must both be powers of two so that line and
    set indexing reduce to shift/mask on the access hot path.
    @raise Invalid_argument otherwise. *)

val touch : t -> addr:int -> dirty:bool -> access
(** Record an access to the line containing [addr].  [dirty] marks the
    line modified (a store); a load leaves the dirty bit as it was.  On a
    miss the LRU way of the set is evicted (writing it back first if
    dirty) and the new line installed. *)

val flush_line : t -> addr:int -> bool
(** Write the line containing [addr] back if it is cached and dirty
    (clwb semantics: the line stays cached, now clean).  Returns [true] if
    a write-back actually happened. *)

val dirty_lines : t -> int list
(** Byte addresses of all currently dirty lines. *)

val dirty_count : t -> int
(** Number of currently dirty lines, maintained incrementally — O(1),
    unlike [List.length (dirty_lines t)] which scans every way. *)

val write_back_all : t -> int
(** Flush every dirty line (the crash-time TSP rescue, or a full cache
    flush from a kernel panic handler).  Returns the number of lines
    written back. *)

val drop_all : t -> int
(** Invalidate the whole cache {e without} writing anything back: the
    non-TSP crash.  Returns the number of dirty lines whose contents were
    lost. *)

val cached : t -> addr:int -> bool
(** Whether the line containing [addr] is present (for tests). *)

val is_dirty : t -> addr:int -> bool
(** Whether the line containing [addr] is present and dirty. *)
