(** Operation counters and the simulated clock of an NVM device.

    Every primitive operation of {!Pmem} bumps a counter here.  The
    [clock] field only accumulates cycles for operations performed outside
    a scheduler (e.g. setup and recovery code); during a multi-threaded
    simulation the per-thread virtual clocks live in the scheduler and the
    device merely reports each operation's cost through its step hook. *)

type t = {
  mutable loads : int;
  mutable load_hits : int;
  mutable load_misses : int;
  mutable stores : int;
  mutable store_hits : int;
  mutable store_misses : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable flushes : int;
  mutable fences : int;
  mutable writebacks : int;
      (** lines (or, for torn lines, word prefixes) that moved bytes to
          the durable image — by eviction, flush, or crash-time rescue.
          A zero-word tear moves nothing and is not counted. *)
  mutable crashes : int;
  mutable rescued_lines : int;  (** dirty lines saved by a TSP rescue *)
  mutable dropped_lines : int;  (** dirty lines lost in a non-TSP crash *)
  mutable torn_lines : int;
      (** rescued lines that landed word-torn ({!Fault_model.Torn_lines}) *)
  mutable flipped_bits : int;
      (** durable bits flipped post-crash ({!Fault_model.Bit_rot}) *)
  mutable clock : int;  (** cycles charged outside any scheduler *)
  mutable load_cycles : int;
  mutable store_cycles : int;
  mutable cas_cycles : int;
  mutable flush_cycles : int;
  mutable fence_cycles : int;
  mutable compute_cycles : int;  (** explicit {!Pmem.charge} work *)
}

val create : unit -> t
val reset : t -> unit

val total_ops : t -> int
(** Loads + stores + CAS + flushes + fences. *)

val hit_rate : t -> float
(** Fraction of loads and stores that hit the cache; [nan] if none. *)

val total_cycles : t -> int
(** Sum of all per-category cycle counters: everything the device ever
    charged, wherever the charge landed (thread clocks or [clock]). *)

val cycle_category_names : string array
(** Display names of the per-category cycle counters, in the order
    {!cycle_totals} reports them. *)

val cycle_totals : t -> int array
(** The per-category cycle counters as a fresh array (loads, stores,
    cas, flushes, fences, compute) — the element-wise-summable form
    used by campaign ledgers that aggregate across [Parallel.map]
    domains. *)

val pp : t Fmt.t

val pp_breakdown : t Fmt.t
(** One line per cycle category with its share of {!total_cycles} —
    the "where did the time go" view used by the overhead-decomposition
    report. *)

val pp_breakdown_totals : Format.formatter -> int array -> unit
(** {!pp_breakdown} over an explicit {!cycle_totals}-shaped array, for
    totals summed across many runs. *)
