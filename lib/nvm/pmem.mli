(** The simulated byte-addressable NVM device.

    Programs manipulate durable data through this interface exactly as the
    paper's "NVM style" prescribes: word-granularity loads, stores and CAS
    directly against the persistent region, with explicit [flush]/[fence]
    persistence primitives available (and, under TSP, unnecessary).

    Every operation reports its cycle cost through the registered step
    hook — the scheduler uses this to advance the issuing thread's virtual
    clock and to interleave threads.  When no hook is installed (setup and
    recovery code), costs accumulate on {!Stats.t}'s [clock].

    Crash semantics (the heart of the reproduction):
    - [crash t Rescue] models a tolerated failure for which TSP is
      available: every dirty cache line is written back to the durable
      image before execution stops, so recovery observes {e all} stores
      issued so far — a strict prefix of program order (the whole of it).
    - [crash t Discard] models a failure without TSP (e.g. power loss on
      plain DRAM): dirty lines are lost and the durable image keeps only
      what eviction or explicit flushes had already written back. *)

type t

type crash_mode =
  | Rescue  (** TSP available: dirty lines written back at crash time *)
  | Discard  (** TSP unavailable: dirty lines lost *)

exception Crashed_device
(** Raised by every operation between {!crash} and {!recover}. *)

val create : ?journal:bool -> Config.t -> t
(** Build a device.  [journal] (default [false]) records every store in a
    history buffer so the recovery-observer check can verify the
    prefix property.

    {b The journal grows without bound}: one entry per store for the
    lifetime of the device (cleared only by {!recover}).  A workload
    issuing millions of stores with [~journal:true] will hold all of
    them in memory — enable it only for tests and fault-injection runs
    of bounded length, and use {!journal_length} to monitor growth. *)

val config : t -> Config.t
val stats : t -> Stats.t

val set_step_hook : t -> (cost:int -> unit) -> unit
(** Install the scheduler callback invoked once per operation with that
    operation's cycle cost.  The callback typically yields. *)

val clear_step_hook : t -> unit

val set_quantum : t -> Sched.Scheduler.quantum -> unit
(** Install the scheduler's batched-execution handle: plain loads and
    stores first try {!Sched.Scheduler.quantum_try_charge} and only fall
    back to the step hook when no quantum is held.  CAS, flush, fence
    and {!charge} always go through the hook (they are synchronisation
    points).  Wired alongside {!set_step_hook}; until then the device
    holds {!Sched.Scheduler.null_quantum}, which never grants. *)

val clear_quantum : t -> unit
(** Reinstall {!Sched.Scheduler.null_quantum}. *)

val quantum_barrier : t -> unit
(** Settle any outstanding quantum ({!Sched.Scheduler.quantum_settle}):
    the next access charges through the step hook.  Used by runtime
    layers at durability boundaries (log appends, section begin/commit)
    and before crash injection. *)

val charge : t -> int -> unit
(** Account [cycles] of pure computation (hashing, RNG, loop overhead) to
    the issuing thread.  Models the instruction stream between memory
    operations without simulating it. *)

(** {1 Memory operations} *)

val load : t -> int -> int64
val store : t -> int -> int64 -> unit

val cas : t -> int -> expected:int64 -> desired:int64 -> bool
(** Atomic compare-and-swap on one word: the read and conditional write
    happen within a single scheduler step, as a hardware CAS would. *)

val load_int : t -> int -> int
(** [Int64.to_int (load t addr)], with identical cycle accounting but no
    [int64] box: the hot-path form.  A load/store loop through the int
    operations performs zero minor-heap allocation (a regression test
    asserts this). *)

val store_int : t -> int -> int -> unit
(** [store t addr (Int64.of_int v)], with identical cycle accounting,
    journal entries and stored bytes, but no [int64] box. *)

val cas_int : t -> int -> expected:int -> desired:int -> bool
(** [cas] through sign-extended int operands, allocation-free.  The
    comparison still observes all 64 stored bits. *)

val set_boxed_access : t -> bool -> unit
(** Route subsequent accesses through the retained pre-SoA allocating
    path (boxed cache results, boxed [int64] round-trips).  Simulated
    cycles, statistics and stored bytes are identical either way — the
    quick benchmark measures both on one binary and asserts so.  A/B
    instrumentation only; defaults to off. *)

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Attach (or detach) an event tracer.  Every device op then emits one
    packed event after its cycle charge; attaching also wires the
    tracer's dirty-line sampler to this device's cache, so each event
    carries the lines-at-risk exposure at that instant.  Tracing draws
    no RNG, charges no cycles and allocates nothing: traced runs are
    sim-cycle byte-identical to untraced ones. *)

val tracer : t -> Obs.Tracer.t option
(** The attached tracer, for upper layers (Atlas, recovery) that emit
    their own events against the same ring. *)

val flush : t -> int -> unit
(** Write the cache line containing the address back to the durable
    image (clwb).  A no-op if the line is clean, but the latency is paid
    regardless, as on real hardware. *)

val fence : t -> unit
(** Persist fence: orders prior flushes.  In this model write-backs are
    immediate, so the fence only costs cycles — but callers must still
    issue it where a real persistence protocol would, and tests assert
    that they do. *)

(** {1 Crash and recovery} *)

val crash : t -> crash_mode -> unit
(** Stop the world.  See the module header for the two modes.  After a
    crash the device is unusable until {!recover}. *)

type crash_damage = {
  rescued : int;  (** dirty lines fully written back *)
  torn : int;  (** dirty lines whose write-back was cut mid-line *)
  dropped : int;  (** dirty lines lost outright *)
  bit_flips : int;  (** durable bits flipped after the crash *)
}

val crash_with :
  t ->
  fault:Fault_model.t ->
  ?rescue_limit:int ->
  rng:(int -> int) ->
  unit ->
  crash_damage
(** Crash under an arbitrary {!Fault_model.t} and report what the
    durable image suffered.  [Full_rescue]/[Full_discard] reproduce
    {!crash}'s two modes exactly.  [Partial_rescue] rescues at most
    [rescue_limit] dirty lines (default unbounded; the caller derives
    the limit from the WSP energy budget), walking them in ascending
    line-address order so the surviving prefix is deterministic.
    [Torn_lines] tears each rescued line with the model's probability:
    only [rng words_per_line] leading words reach durability, so at
    least the line's last word keeps its stale durable contents.  A tear
    of zero words moves no bytes and therefore does not count as a
    write-back in {!Stats.t} (the RNG draw still happens, so crash
    images remain seed-reproducible).
    [Bit_rot] rescues everything, then flips [flips] uniformly-drawn
    bits of the durable image.  [rng bound] must return a value in
    [\[0, bound)]; all draws happen in a fixed order, so a deterministic
    RNG makes the whole crash bit-reproducible. *)

val recover : t -> unit
(** Model a restart: the current image is replaced by the durable image
    and the cache is cold.  The journal (if any) is cleared. *)

val is_crashed : t -> bool

val persist_all : t -> unit
(** Write every dirty line back to the durable image, paying one flush
    per line plus a fence.  Recovery code calls this when it finishes, so
    the repaired state is itself durable. *)

(** {1 Inspection (tests, verification, the recovery observer)} *)

val load_durable : t -> int -> int64
(** What the persistence domain holds right now, bypassing the cache. *)

val peek : t -> int -> int64
(** Debug read of the current image with no cost, no statistics and no
    cache effects.  For assertions and verifiers only — simulated code
    must use {!load}. *)

val peek_int : t -> int -> int
(** [Int64.to_int (peek t addr)] without the box (bit 63 is dropped, as
    in {!load_int}).  The allocation-free peek the streamed recovery
    scanners are built on. *)

val dirty_line_count : t -> int
(** Number of dirty lines in the simulated cache right now.  O(1): the
    cache maintains the count incrementally. *)

val durable_snapshot : t -> string
(** A copy of the durable image, for bit-exact comparisons in
    determinism tests. *)

val store_history : t -> (int * int64) list
(** Journal of (address, value) stores in issue order, oldest first.
    Empty unless the device was created with [~journal:true]. *)

val journal_length : t -> int
(** Entries currently held in the store journal; 0 when the device was
    created without [~journal:true].  The journal is unbounded (see
    {!create}), so long-running journalled workloads should watch this. *)

val durable_reflects_all_stores : t -> bool
(** The recovery-observer check of Section 4.1: for every address ever
    stored to, is the {e last} stored value the one in the durable image?
    This is exactly the guarantee a TSP [Rescue] crash provides (recovery
    sees the full prefix of issued stores); after a [Discard] crash it
    typically fails, which is why non-TSP designs must flush.
    Precondition: device created with [~journal:true]. *)

val lost_store_count : t -> int
(** Number of journaled addresses whose last stored value did not reach
    the durable image (0 after a TSP rescue). *)
