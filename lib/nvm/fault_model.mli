(** Adversarial crash fault models.

    The paper's two crash semantics — rescue every dirty line (TSP) or
    drop them all (no TSP) — are the endpoints of a fidelity spectrum.
    A TSP design's "sufficiency" claim must also survive the regimes in
    between, where the rescue itself is interrupted, torn or corrupted:

    - {!Partial_rescue}: the crash-time energy budget (the WSP model's
      stage-1 reserve) exhausts mid-rescue.  A deterministic prefix of
      the dirty lines — lowest line address first, the order the rescue
      walks them — reaches the durable image; the rest are dropped.
    - {!Torn_lines}: a rescued line lands word-torn — only a prefix of
      its words reaches durability, the rest keep their old durable
      contents (the line write-back was interrupted mid-line).
    - {!Bit_rot}: after the crash, a bounded number of bits of the
      durable image flip (media corruption discovered at recovery).

    All randomness is drawn from a caller-supplied RNG closure so
    campaigns stay bit-reproducible for a given seed. *)

type t =
  | Full_rescue  (** TSP holds: every dirty line written back *)
  | Full_discard  (** no TSP: every dirty line lost *)
  | Partial_rescue of { energy_budget_j : float }
      (** rescue energy exhausts after moving the lines the budget
          affords (see {!Pmem.crash_with}'s [rescue_limit]) *)
  | Torn_lines of { prob : float }
      (** each rescued line is torn with probability [prob] in [0,1] *)
  | Bit_rot of { flips : int }
      (** [flips] uniformly-drawn bit flips in the durable image *)

val adversarial : t -> bool
(** [true] for the three models beyond the paper's binary endpoints.
    Adversarial campaigns are judged on graceful degradation (structured
    recovery verdicts, no exceptions), not on invariant preservation. *)

val expects_loss : t -> bool
(** Whether recovery may legitimately observe missing or damaged state
    under this model ([false] only for {!Full_rescue}). *)

val tag : t -> int
(** Stable small-int constructor index (0 full-rescue .. 4 bit-rot),
    carried as the [a] argument of {!Obs.Event.crash} trace events. *)

val reference : t list
(** One representative instance of each model, used by campaign sweeps
    and the [--fault-model all] CLI shorthand. *)

val to_string : t -> string
(** Round-trips with {!of_string}; parameterised models render as
    [partial-rescue:J], [torn:P], [bit-rot:N]. *)

val of_string : string -> (t, string) result

val of_string_list : string -> (t list, string) result
(** Comma-separated models, or ["all"] for {!reference}. *)

val pp : t Fmt.t
