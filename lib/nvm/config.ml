type t = {
  name : string;
  ghz : float;
  hw_threads : int;
  dram_desc : string;
  region_size : int;
  line_size : int;
  cache_lines : int;
  cache_ways : int;
  load_hit : int;
  load_miss : int;
  store_cost : int;
  store_miss_extra : int;
  flush_cost : int;
  fence_cost : int;
  cas_extra : int;
}

(* Latency values are calibrated so that the counter workload of Section 5
   lands in the throughput regime of Table 1 (hundreds of cycles per
   three-operation iteration).  The absolute values are typical published
   figures for Haswell/Ivy Bridge-EX class parts: ~4 cycles L1 hit, ~200
   cycles DRAM miss, ~250-350 cycles for a synchronous cache-line flush
   reaching the memory controller's persistence domain. *)

let desktop =
  {
    name = "ENVY Phoenix 800";
    ghz = 3.4;
    hw_threads = 8;
    dram_desc = "32 GB";
    region_size = 64 * 1024 * 1024;
    line_size = 64;
    cache_lines = 8192;
    cache_ways = 8;
    load_hit = 4;
    load_miss = 200;
    store_cost = 4;
    store_miss_extra = 60;
    flush_cost = 210;
    fence_cost = 35;
    cas_extra = 16;
  }

let server =
  {
    name = "DL580 Gen8";
    ghz = 2.8;
    hw_threads = 30;
    dram_desc = "1.5 TB";
    region_size = 64 * 1024 * 1024;
    line_size = 64;
    cache_lines = 16384;
    cache_ways = 16;
    load_hit = 5;
    load_miss = 280;
    store_cost = 5;
    store_miss_extra = 80;
    flush_cost = 230;
    fence_cost = 40;
    cas_extra = 24;
  }

let test_small =
  {
    name = "test-small";
    ghz = 1.0;
    hw_threads = 4;
    dram_desc = "tiny";
    region_size = 64 * 1024;
    line_size = 64;
    cache_lines = 16;
    cache_ways = 2;
    load_hit = 1;
    load_miss = 10;
    store_cost = 1;
    store_miss_extra = 5;
    flush_cost = 20;
    fence_cost = 5;
    cas_extra = 2;
  }

let round_up n multiple = (n + multiple - 1) / multiple * multiple

let with_region_size t bytes =
  { t with region_size = round_up (max bytes t.line_size) t.line_size }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  (* Thunked so that later checks may assume earlier ones passed (e.g.
     the divisibility test needs a non-zero way count). *)
  let checks =
    [
      ((fun () -> is_power_of_two t.line_size),
       "line_size must be a power of two");
      ((fun () -> t.region_size > 0), "region_size must be positive");
      ((fun () -> t.region_size mod t.line_size = 0),
       "region_size must be a multiple of line_size");
      ((fun () -> t.cache_ways > 0), "cache_ways must be positive");
      ((fun () -> t.cache_lines mod t.cache_ways = 0),
       "cache_lines must be a multiple of cache_ways");
      ((fun () -> is_power_of_two (t.cache_lines / t.cache_ways)),
       "cache_lines / cache_ways (the set count) must be a power of two");
      ((fun () -> t.ghz > 0.), "ghz must be positive");
      ((fun () ->
         t.load_hit >= 0 && t.load_miss >= 0 && t.store_cost >= 0
         && t.store_miss_extra >= 0 && t.flush_cost >= 0 && t.fence_cost >= 0
         && t.cas_extra >= 0),
       "latencies must be non-negative");
    ]
  in
  let rec go = function
    | [] -> Ok ()
    | (cond, msg) :: rest -> if cond () then go rest else Error msg
  in
  go checks

let n_sets t = t.cache_lines / t.cache_ways

let pp ppf t =
  Fmt.pf ppf "%s @@ %.1f GHz (%d hw threads, %s, %d MiB region)" t.name t.ghz
    t.hw_threads t.dram_desc
    (t.region_size / (1024 * 1024))
