(** Open-addressed set of non-negative ints for the runtime's per-store
    bookkeeping (logged word addresses, dirtied line addresses).

    Power-of-two capacity with multiplicative hashing and linear
    probing; load factor kept at or below 1/2.  Membership and
    insertion allocate nothing (amortised over doubling); [clear] costs
    O(cardinal), not O(capacity); [iter] visits members in insertion
    order, so downstream effects (commit-time flushes) do not depend on
    hash-table internals. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) is rounded up to a power of two. *)

val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t x] inserts [x] if absent.  Returns [true] iff [x] was absent
    — the membership answer and the insertion share one probe walk. *)

val iter : (int -> unit) -> t -> unit
(** Members in insertion order. *)

val clear : t -> unit
(** Empty the set in O(cardinal) stores. *)

val cardinal : t -> int
