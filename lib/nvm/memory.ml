type t = { current : Bytes.t; durable : Bytes.t; size : int }

let create ~size =
  { current = Bytes.make size '\000'; durable = Bytes.make size '\000'; size }

let size t = t.size

let check t addr =
  if addr < 0 || addr + 8 > t.size then
    Fmt.invalid_arg "Memory: word address %d out of bounds (size %d)" addr
      t.size;
  if addr land 7 <> 0 then
    Fmt.invalid_arg "Memory: word address %d not 8-byte aligned" addr

let load t addr =
  check t addr;
  Bytes.get_int64_le t.current addr

let store t addr v =
  check t addr;
  Bytes.set_int64_le t.current addr v

let load_durable t addr =
  check t addr;
  Bytes.get_int64_le t.durable addr

let write_back t ~line_addr ~len =
  Bytes.blit t.current line_addr t.durable line_addr len

let write_back_word t addr =
  check t addr;
  Bytes.blit t.current addr t.durable addr 8

let flip_durable_bit t ~addr ~bit =
  check t addr;
  if bit < 0 || bit > 63 then
    Fmt.invalid_arg "Memory.flip_durable_bit: bit %d out of range" bit;
  let v = Bytes.get_int64_le t.durable addr in
  Bytes.set_int64_le t.durable addr (Int64.logxor v (Int64.shift_left 1L bit))

let discard_current t = Bytes.blit t.durable 0 t.current 0 t.size
let promote_all t = Bytes.blit t.current 0 t.durable 0 t.size

let blit_string t addr s =
  Bytes.blit_string s 0 t.current addr (String.length s);
  Bytes.blit_string s 0 t.durable addr (String.length s)

let durable_snapshot t = Bytes.to_string t.durable

(* Compare word-at-a-time where alignment allows, byte-at-a-time
   otherwise; no intermediate substrings are allocated either way. *)
let diff_lines t ~line_size =
  let line_differs off =
    let stop = off + line_size in
    if off land 7 = 0 && line_size land 7 = 0 then begin
      let rec go_words o =
        o < stop
        && (not
              (Int64.equal
                 (Bytes.get_int64_le t.current o)
                 (Bytes.get_int64_le t.durable o))
           || go_words (o + 8))
      in
      go_words off
    end
    else begin
      let rec go_bytes o =
        o < stop
        && (not
              (Char.equal (Bytes.unsafe_get t.current o)
                 (Bytes.unsafe_get t.durable o))
           || go_bytes (o + 1))
      in
      go_bytes off
    end
  in
  let acc = ref [] in
  let off = ref (t.size / line_size * line_size - line_size) in
  while !off >= 0 do
    if line_differs !off then acc := !off :: !acc;
    off := !off - line_size
  done;
  !acc
