type t = { current : Bytes.t; durable : Bytes.t; size : int }

let create ~size =
  { current = Bytes.make size '\000'; durable = Bytes.make size '\000'; size }

let size t = t.size

(* Word access validation is a single fused branch on the fast path; the
   cold continuation reconstructs which rule was broken.  Bounds and
   alignment are established here once per access, after which the raw
   [unsafe_*] primitives below need no further checks — in particular no
   second bounds check inside [Bytes.get_int64_le]. *)

let[@inline never] check_fail t addr =
  if addr land 7 <> 0 then
    Fmt.invalid_arg "Memory: word address %d not 8-byte aligned" addr
  else
    Fmt.invalid_arg "Memory: word address %d out of bounds (size %d)" addr
      t.size

let[@inline] check t addr =
  (* [addr lor (t.size - 8 - addr)] is negative iff [addr < 0] or
     [addr + 8 > t.size]. *)
  if addr lor (t.size - 8 - addr) < 0 || addr land 7 <> 0 then check_fail t addr

(* Raw unaligned word primitives (the same ones the stdlib builds
   [Bytes.get_int64_le] from, minus its bounds check).  Results and
   operands stay unboxed as long as they flow directly between int64
   primitives within one function, which every user below ensures. *)
external unsafe_get_64 : bytes -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap64 : int64 -> int64 = "%bswap_int64"

let[@inline] unsafe_get_int64_le b i =
  if Sys.big_endian then swap64 (unsafe_get_64 b i) else unsafe_get_64 b i

let[@inline] unsafe_set_int64_le b i v =
  if Sys.big_endian then unsafe_set_64 b i (swap64 v) else unsafe_set_64 b i v

let load t addr =
  check t addr;
  unsafe_get_int64_le t.current addr

let store t addr v =
  check t addr;
  unsafe_set_int64_le t.current addr v

(* Int-typed word access: [load_int t a = Int64.to_int (load t a)] and
   [store_int t a v] writes the same bytes as [store t a (Int64.of_int v)],
   but neither boxes an [int64] — the conversions happen between
   primitives inside one function, so the native compiler keeps the wide
   value in a register.  These carry the simulator's hot loops. *)

let load_int t addr =
  check t addr;
  Int64.to_int (unsafe_get_int64_le t.current addr)

let store_int t addr v =
  check t addr;
  unsafe_set_int64_le t.current addr (Int64.of_int v)

(* 64-bit compare-and-swap against an int-expressible expected value,
   without boxing.  [actual = Int64.of_int expected] iff the low 63 bits
   match ([Int64.to_int actual = expected]) and bit 63 equals bit 62
   (i.e. the top two bits are 00 or 11, as sign extension produces). *)
let cas_int t addr ~expected ~desired =
  check t addr;
  let actual = unsafe_get_int64_le t.current addr in
  let top2 = Int64.to_int (Int64.shift_right actual 62) land 3 in
  if Int64.to_int actual = expected && (top2 = 0 || top2 = 3) then begin
    unsafe_set_int64_le t.current addr (Int64.of_int desired);
    true
  end
  else false

let load_durable t addr =
  check t addr;
  unsafe_get_int64_le t.durable addr

let write_back t ~line_addr ~len =
  Bytes.blit t.current line_addr t.durable line_addr len

let write_back_word t addr =
  check t addr;
  Bytes.blit t.current addr t.durable addr 8

let flip_durable_bit t ~addr ~bit =
  check t addr;
  if bit < 0 || bit > 63 then
    Fmt.invalid_arg "Memory.flip_durable_bit: bit %d out of range" bit;
  let v = Bytes.get_int64_le t.durable addr in
  Bytes.set_int64_le t.durable addr (Int64.logxor v (Int64.shift_left 1L bit))

let discard_current t = Bytes.blit t.durable 0 t.current 0 t.size
let promote_all t = Bytes.blit t.current 0 t.durable 0 t.size

let blit_string t addr s =
  Bytes.blit_string s 0 t.current addr (String.length s);
  Bytes.blit_string s 0 t.durable addr (String.length s)

let durable_snapshot t = Bytes.to_string t.durable

(* Compare word-at-a-time where alignment allows, byte-at-a-time
   otherwise; no intermediate substrings are allocated either way. *)
let diff_lines t ~line_size =
  let range_differs off stop =
    if off land 7 = 0 && (stop - off) land 7 = 0 then begin
      let rec go_words o =
        o < stop
        && (not
              (Int64.equal
                 (Bytes.get_int64_le t.current o)
                 (Bytes.get_int64_le t.durable o))
           || go_words (o + 8))
      in
      go_words off
    end
    else begin
      let rec go_bytes o =
        o < stop
        && (not
              (Char.equal (Bytes.unsafe_get t.current o)
                 (Bytes.unsafe_get t.durable o))
           || go_bytes (o + 1))
      in
      go_bytes off
    end
  in
  let acc = ref [] in
  (* The trailing partial line, when [size] is not a multiple of
     [line_size], is compared explicitly over its own (short) range
     rather than silently skipped. *)
  let tail = t.size / line_size * line_size in
  if tail < t.size && range_differs tail t.size then acc := tail :: !acc;
  let off = ref (tail - line_size) in
  while !off >= 0 do
    if range_differs !off (!off + line_size) then acc := !off :: !acc;
    off := !off - line_size
  done;
  !acc
