(** The two byte images of the simulated NVM region.

    [current] is what running threads observe: it reflects every store
    issued so far, regardless of whether the data has left the (simulated)
    CPU cache.  [durable] is what the persistence domain holds: it is only
    updated when a line is written back — by cache eviction, by an explicit
    flush, or by a TSP crash-time rescue.  After a crash, recovery swaps
    the durable image in as the new current image; anything that never
    reached [durable] is gone. *)

type t

val create : size:int -> t
(** Fresh, zero-filled region; [size] in bytes. *)

val size : t -> int

val load : t -> int -> int64
(** [load t addr] reads the 8-byte little-endian word at byte offset
    [addr] from the current image.  [addr] must be 8-byte aligned and in
    bounds; the single fused validity check here is the only one on the
    path — the underlying byte access is unchecked. *)

val store : t -> int -> int64 -> unit
(** Write a word to the current image (cache semantics are handled by the
    device, not here). *)

val load_int : t -> int -> int
(** [Int64.to_int (load t addr)] without materialising the [int64] box:
    the wide value stays in a register between the read primitive and the
    truncation.  Allocation-free. *)

val store_int : t -> int -> int -> unit
(** Writes the same bytes as [store t addr (Int64.of_int v)], without
    boxing the intermediate [int64].  Allocation-free. *)

val cas_int : t -> int -> expected:int -> desired:int -> bool
(** Full 64-bit compare-and-swap of the word at [addr] against
    [Int64.of_int expected] (the comparison observes all 64 stored bits,
    so a word whose top two bits disagree — unreachable by sign
    extension — never matches), storing [Int64.of_int desired] on
    success.  Allocation-free. *)

val load_durable : t -> int -> int64
(** Read a word from the durable image, bypassing the current image.  Used
    by tests and by the recovery observer. *)

val write_back : t -> line_addr:int -> len:int -> unit
(** Copy [len] bytes at [line_addr] from current to durable: the effect of
    a cache-line write-back. *)

val write_back_word : t -> int -> unit
(** Copy one aligned 8-byte word from current to durable: the unit of a
    word-torn line write-back (see {!Fault_model.Torn_lines}). *)

val flip_durable_bit : t -> addr:int -> bit:int -> unit
(** Flip bit [bit] (0..63) of the durable word at [addr], leaving the
    current image untouched: post-crash media corruption
    ({!Fault_model.Bit_rot}).  Recovery then installs the corrupted
    durable image as current. *)

val discard_current : t -> unit
(** Replace the current image with a copy of the durable image: the effect
    of a crash in which unsaved data is lost. *)

val promote_all : t -> unit
(** Copy the entire current image over the durable image: the effect of a
    perfect TSP rescue (used only by tests; real rescues write back the
    dirty lines individually so the statistics stay honest). *)

val blit_string : t -> int -> string -> unit
(** Raw initialisation helper: write [string] bytes into both images at
    once (used when formatting a fresh heap, which is by definition
    durable). *)

val diff_lines : t -> line_size:int -> int list
(** Byte offsets of the lines whose current and durable contents differ,
    in ascending order; a debugging and verification aid.  Comparison is
    done in place over the two images — no per-line copies.  When [size]
    is not a multiple of [line_size] the trailing partial line is
    compared over its own short range and reported at its line-aligned
    offset (it is never silently skipped). *)

val durable_snapshot : t -> string
(** A copy of the entire durable image, for bit-exact comparisons in
    determinism tests. *)
