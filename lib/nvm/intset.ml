(* Open-addressed set of non-negative ints, built for the two per-store
   bookkeeping questions the Atlas runtime asks on its hot path ("was
   this word already logged in the current OCS?", "which lines has the
   OCS dirtied?").  Design points, all driven by that use:

   - power-of-two capacity, multiplicative hashing, linear probing: one
     multiply, one shift, and on average barely more than one probe at
     the <= 1/2 load factor maintained here.  Word and line addresses
     are multiples of 8 resp. 64, so the hash must mix the high bits
     down — masking raw addresses would collide catastrophically;
   - membership and insertion allocate nothing (amortised: a grow
     doubles three flat int arrays);
   - [clear] is O(live), not O(capacity): occupied slot indexes are
     recorded at insertion in [pos], so a commit that logged k words
     resets in k stores no matter how large the table has grown;
   - insertion order is retained in [elems], so [iter] is deterministic
     (commit-time flush order must not depend on hash internals). *)

type t = {
  mutable slots : int array;  (* -1 = empty; values are >= 0 *)
  mutable elems : int array;  (* members, insertion order; first [live] *)
  mutable pos : int array;  (* slot index of elems.(k), for O(live) clear *)
  mutable mask : int;  (* capacity - 1 *)
  mutable shift : int;  (* 63 - log2 capacity: hash product -> slot *)
  mutable live : int;
}

let mult = 0x2545F4914F6CDD1D

let[@inline] slot_of t x = (x * mult) lsr t.shift

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  let rec go shift = if 1 lsl shift >= n then shift else go (shift + 1) in
  go 0

let create_cap cap =
  {
    slots = Array.make cap (-1);
    elems = Array.make cap 0;
    pos = Array.make cap 0;
    mask = cap - 1;
    shift = 63 - log2_exact cap;
    live = 0;
  }

let create ?(capacity = 64) () =
  let cap = max 8 capacity in
  let cap = if is_power_of_two cap then cap else 1 lsl log2_exact cap in
  create_cap cap

let cardinal t = t.live

let mem t x =
  let slots = t.slots in
  let rec probe i =
    let v = Array.unsafe_get slots i in
    if v = x then true
    else if v < 0 then false
    else probe ((i + 1) land t.mask)
  in
  probe (slot_of t x)

(* Insert [x] into [slots] only (no [elems]/[pos] upkeep), for rebuild. *)
let reinsert t x =
  let rec probe i =
    if t.slots.(i) < 0 then begin
      t.slots.(i) <- x;
      i
    end
    else probe ((i + 1) land t.mask)
  in
  probe (slot_of t x)

let grow t =
  let cap = (t.mask + 1) * 2 in
  let elems = t.elems and live = t.live in
  t.slots <- Array.make cap (-1);
  t.mask <- cap - 1;
  t.shift <- t.shift - 1;
  let elems' = Array.make cap 0 and pos' = Array.make cap 0 in
  Array.blit elems 0 elems' 0 live;
  t.elems <- elems';
  t.pos <- pos';
  for k = 0 to live - 1 do
    t.pos.(k) <- reinsert t t.elems.(k)
  done

(* [add t x] inserts [x] if absent; returns [true] iff it was absent.
   The single probe walk answers the membership question and finds the
   insertion slot at once, so the runtime's "first store to this word in
   the OCS?" test is one walk, not two. *)
let add t x =
  let rec probe i =
    let v = Array.unsafe_get t.slots i in
    if v = x then false
    else if v < 0 then begin
      t.slots.(i) <- x;
      t.elems.(t.live) <- x;
      t.pos.(t.live) <- i;
      t.live <- t.live + 1;
      if t.live * 2 > t.mask + 1 then grow t;
      true
    end
    else probe ((i + 1) land t.mask)
  in
  probe (slot_of t x)

let iter f t =
  for k = 0 to t.live - 1 do
    f t.elems.(k)
  done

let clear t =
  for k = 0 to t.live - 1 do
    t.slots.(t.pos.(k)) <- -1
  done;
  t.live <- 0
