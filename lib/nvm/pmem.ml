module Scheduler = Sched.Scheduler

type crash_mode = Rescue | Discard

type t = {
  cfg : Config.t;
  mem : Memory.t;
  cache : Cache.t;
  stats : Stats.t;
  mutable hook : (cost:int -> unit) option;
  mutable quantum : Scheduler.quantum;
      (* burst-charge handle for plain loads/stores; [null_quantum]
         (never grants) until a scheduler is wired in, so the hot path
         needs no option match *)
  mutable crashed : bool;
  mutable boxed_access : bool;
      (* route accesses through the retained pre-SoA allocating path;
         A/B measurement only — simulated results are identical *)
  journal : (int * int64) Queue.t option;
  tracer : Obs.Tracer.t option ref;
      (* a ref cell rather than a mutable field because the [write_back]
         closure is built before the record exists and must see later
         [set_tracer] calls *)
}

exception Crashed_device

let create ?(journal = false) cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> Fmt.invalid_arg "Pmem.create: %s" msg);
  let mem = Memory.create ~size:cfg.Config.region_size in
  let stats = Stats.create () in
  let tracer = ref None in
  let write_back line_addr =
    stats.Stats.writebacks <- stats.Stats.writebacks + 1;
    (match !tracer with
    | None -> ()
    | Some tr -> Obs.Tracer.emit tr ~code:Obs.Event.writeback ~a:line_addr ~b:0);
    Memory.write_back mem ~line_addr ~len:cfg.Config.line_size
  in
  let cache =
    Cache.create ~sets:(Config.n_sets cfg) ~ways:cfg.Config.cache_ways
      ~line_size:cfg.Config.line_size ~write_back
  in
  {
    cfg;
    mem;
    cache;
    stats;
    hook = None;
    quantum = Scheduler.null_quantum;
    crashed = false;
    boxed_access = false;
    journal = (if journal then Some (Queue.create ()) else None);
    tracer;
  }

let config t = t.cfg
let stats t = t.stats
let set_step_hook t f = t.hook <- Some f
let clear_step_hook t = t.hook <- None
let set_quantum t q = t.quantum <- q
let clear_quantum t = t.quantum <- Scheduler.null_quantum
let quantum_barrier t = Scheduler.quantum_settle t.quantum
let set_boxed_access t b = t.boxed_access <- b

let set_tracer t tr =
  t.tracer := tr;
  (* Every trace event samples the dirty-line count: the exposure
     timeline is exactly "lines at risk were the machine to fail now". *)
  match tr with
  | None -> ()
  | Some tr -> Obs.Tracer.set_dirty tr (fun () -> Cache.dirty_count t.cache)

let tracer t = !(t.tracer)

(* All emits sit after the op's [step] charge, so the timestamp is the
   clock the op completed at.  Emission reads closures and writes ints
   into a preallocated ring — no allocation, no RNG, no cycles — so
   traced runs are sim-cycle byte-identical to untraced ones. *)
let[@inline] trace t ~code ~a ~b =
  match !(t.tracer) with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~code ~a ~b

let step t cost =
  match t.hook with
  | Some f -> f ~cost
  | None -> t.stats.Stats.clock <- t.stats.Stats.clock + cost

(* Fused charge for plain (uncontended) accesses: consume the scheduler
   quantum when one is held — a branch and a clock add, no closure call,
   no effect — and fall back to the full [step] road otherwise.  Only
   loads and stores come through here; CAS, flush, fence and compute
   charges are synchronisation points and always take [step], which
   settles any outstanding quantum first. *)
let[@inline] qstep t cost =
  if not (Scheduler.quantum_try_charge t.quantum ~cost) then step t cost

let charge t cycles =
  if cycles > 0 then begin
    t.stats.Stats.compute_cycles <- t.stats.Stats.compute_cycles + cycles;
    step t cycles
  end

let guard t = if t.crashed then raise Crashed_device

(* One cache touch, returning whether it hit.  The unboxed path tests the
   int code from [Cache.touch]; the boxed path is the historical shape
   (option + variant, one minor allocation per access), kept so the
   benchmark can A/B the two on one binary. *)
let[@inline] touch_hit t ~addr ~dirty =
  if t.boxed_access then
    match Cache.touch_boxed t.cache ~addr ~dirty with
    | Cache.Hit -> true
    | Cache.Miss _ -> false
  else Cache.touch t.cache ~addr ~dirty = Cache.hit

let load t addr =
  guard t;
  let st = t.stats in
  st.Stats.loads <- st.Stats.loads + 1;
  let cost =
    if touch_hit t ~addr ~dirty:false then begin
      st.Stats.load_hits <- st.Stats.load_hits + 1;
      t.cfg.Config.load_hit
    end
    else begin
      st.Stats.load_misses <- st.Stats.load_misses + 1;
      t.cfg.Config.load_miss
    end
  in
  st.Stats.load_cycles <- st.Stats.load_cycles + cost;
  qstep t cost;
  trace t ~code:Obs.Event.load ~a:addr ~b:cost;
  Memory.load t.mem addr

let record_store t addr v =
  match t.journal with
  | None -> ()
  | Some q -> Queue.add (addr, v) q

(* Journal variant for the int fast path: the [int64] box is only built
   when a journal actually exists (tests and fault-injection runs). *)
let record_store_int t addr v =
  match t.journal with
  | None -> ()
  | Some q -> Queue.add (addr, Int64.of_int v) q

(* Cost accounting shared by [store]/[store_int]/[cas]/[cas_int]: count
   the access, touch the cache dirty, return the store cost. *)
let[@inline] store_cost t ~addr =
  if touch_hit t ~addr ~dirty:true then begin
    t.stats.Stats.store_hits <- t.stats.Stats.store_hits + 1;
    t.cfg.Config.store_cost
  end
  else begin
    t.stats.Stats.store_misses <- t.stats.Stats.store_misses + 1;
    t.cfg.Config.store_cost + t.cfg.Config.store_miss_extra
  end

let store t addr v =
  guard t;
  let st = t.stats in
  st.Stats.stores <- st.Stats.stores + 1;
  let cost = store_cost t ~addr in
  st.Stats.store_cycles <- st.Stats.store_cycles + cost;
  qstep t cost;
  trace t ~code:Obs.Event.store ~a:addr ~b:cost;
  Memory.store t.mem addr v;
  record_store t addr v

let cas t addr ~expected ~desired =
  guard t;
  let st = t.stats in
  st.Stats.cas_ops <- st.Stats.cas_ops + 1;
  let base =
    if touch_hit t ~addr ~dirty:true then t.cfg.Config.store_cost
    else t.cfg.Config.store_cost + t.cfg.Config.store_miss_extra
  in
  (* The step (and hence any scheduler yield) happens before the
     read-modify-write, which then executes indivisibly: no other thread
     can run between the comparison and the write. *)
  st.Stats.cas_cycles <- st.Stats.cas_cycles + base + t.cfg.Config.cas_extra;
  step t (base + t.cfg.Config.cas_extra);
  trace t ~code:Obs.Event.cas ~a:addr ~b:(base + t.cfg.Config.cas_extra);
  let actual = Memory.load t.mem addr in
  if Int64.equal actual expected then begin
    Memory.store t.mem addr desired;
    record_store t addr desired;
    true
  end
  else begin
    st.Stats.cas_failures <- st.Stats.cas_failures + 1;
    false
  end

(* Int-typed operations: identical accounting and identical stored bytes
   to [Int64.of_int]/[Int64.to_int] round-trips through the operations
   above, but the word never leaves the registers — the 10k-op
   load/store regression test asserts zero minor allocation. *)

let load_int t addr =
  if t.boxed_access then Int64.to_int (load t addr)
  else begin
    guard t;
    let st = t.stats in
    st.Stats.loads <- st.Stats.loads + 1;
    let cost =
      if touch_hit t ~addr ~dirty:false then begin
        st.Stats.load_hits <- st.Stats.load_hits + 1;
        t.cfg.Config.load_hit
      end
      else begin
        st.Stats.load_misses <- st.Stats.load_misses + 1;
        t.cfg.Config.load_miss
      end
    in
    st.Stats.load_cycles <- st.Stats.load_cycles + cost;
    qstep t cost;
    trace t ~code:Obs.Event.load ~a:addr ~b:cost;
    Memory.load_int t.mem addr
  end

let store_int t addr v =
  if t.boxed_access then store t addr (Int64.of_int v)
  else begin
    guard t;
    let st = t.stats in
    st.Stats.stores <- st.Stats.stores + 1;
    let cost = store_cost t ~addr in
    st.Stats.store_cycles <- st.Stats.store_cycles + cost;
    qstep t cost;
    trace t ~code:Obs.Event.store ~a:addr ~b:cost;
    Memory.store_int t.mem addr v;
    record_store_int t addr v
  end

let cas_int t addr ~expected ~desired =
  if t.boxed_access then
    cas t addr ~expected:(Int64.of_int expected)
      ~desired:(Int64.of_int desired)
  else begin
    guard t;
    let st = t.stats in
    st.Stats.cas_ops <- st.Stats.cas_ops + 1;
    let base =
      if touch_hit t ~addr ~dirty:true then t.cfg.Config.store_cost
      else t.cfg.Config.store_cost + t.cfg.Config.store_miss_extra
    in
    st.Stats.cas_cycles <- st.Stats.cas_cycles + base + t.cfg.Config.cas_extra;
    step t (base + t.cfg.Config.cas_extra);
    trace t ~code:Obs.Event.cas ~a:addr ~b:(base + t.cfg.Config.cas_extra);
    if Memory.cas_int t.mem addr ~expected ~desired then begin
      record_store_int t addr desired;
      true
    end
    else begin
      st.Stats.cas_failures <- st.Stats.cas_failures + 1;
      false
    end
  end

let flush t addr =
  guard t;
  t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
  t.stats.Stats.flush_cycles <- t.stats.Stats.flush_cycles + t.cfg.Config.flush_cost;
  step t t.cfg.Config.flush_cost;
  trace t ~code:Obs.Event.flush ~a:addr ~b:t.cfg.Config.flush_cost;
  ignore (Cache.flush_line t.cache ~addr : bool)

let fence t =
  guard t;
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  t.stats.Stats.fence_cycles <- t.stats.Stats.fence_cycles + t.cfg.Config.fence_cost;
  step t t.cfg.Config.fence_cost;
  trace t ~code:Obs.Event.fence ~a:0 ~b:t.cfg.Config.fence_cost

let crash t mode =
  guard t;
  (* Crash injection aborts any in-flight burst: whatever the quantum
     had accrued is folded into the scheduler before the device dies
     (normally a no-op — the scheduler settles before abandoning its
     threads — but crashes forced from harness code hit this). *)
  quantum_barrier t;
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  (* Emitted before the rescue/drop so the event's dirty-line sample is
     the exposure at the instant of failure. *)
  trace t
    ~code:Obs.Event.crash
    ~a:(match mode with Rescue -> 0 | Discard -> 1)
    ~b:0;
  (match mode with
  | Rescue ->
      let n = Cache.write_back_all t.cache in
      t.stats.Stats.rescued_lines <- t.stats.Stats.rescued_lines + n
  | Discard ->
      let n = Cache.drop_all t.cache in
      t.stats.Stats.dropped_lines <- t.stats.Stats.dropped_lines + n);
  t.crashed <- true

type crash_damage = {
  rescued : int;
  torn : int;
  dropped : int;
  bit_flips : int;
}

let no_damage = { rescued = 0; torn = 0; dropped = 0; bit_flips = 0 }

let crash_with t ~fault ?(rescue_limit = max_int) ~rng () =
  guard t;
  quantum_barrier t;
  let st = t.stats in
  st.Stats.crashes <- st.Stats.crashes + 1;
  trace t ~code:Obs.Event.crash ~a:(Fault_model.tag fault) ~b:0;
  let line_size = t.cfg.Config.line_size in
  let words_per_line = line_size / 8 in
  let rescue_line addr =
    st.Stats.writebacks <- st.Stats.writebacks + 1;
    Memory.write_back t.mem ~line_addr:addr ~len:line_size
  in
  (* Write back only a prefix of the line's words: the write-back was
     interrupted mid-line, so at least the last word keeps its stale
     durable contents.  A zero-word tear moves no bytes, so it is not a
     write-back in the ledger — the interruption landed before the first
     word left the cache (the RNG draw is made by the caller either way,
     so crash images stay seed-reproducible). *)
  let tear_line addr ~words =
    if words > 0 then begin
      st.Stats.writebacks <- st.Stats.writebacks + 1;
      for w = 0 to words - 1 do
        Memory.write_back_word t.mem (addr + (w * 8))
      done
    end
  in
  let damage =
    match (fault : Fault_model.t) with
    | Full_rescue ->
        let n = Cache.write_back_all t.cache in
        { no_damage with rescued = n }
    | Full_discard ->
        let n = Cache.drop_all t.cache in
        { no_damage with dropped = n }
    | Partial_rescue _ ->
        (* [dirty_lines] is sorted, so the prefix the budget affords is
           deterministic: lowest line address first. *)
        let dirty = Cache.dirty_lines t.cache in
        let rescued = ref 0 and dropped = ref 0 in
        List.iter
          (fun addr ->
            if !rescued < rescue_limit then begin
              rescue_line addr;
              incr rescued
            end
            else incr dropped)
          dirty;
        ignore (Cache.drop_all t.cache : int);
        { no_damage with rescued = !rescued; dropped = !dropped }
    | Torn_lines { prob } ->
        let threshold = int_of_float (prob *. 1_000_000.) in
        let dirty = Cache.dirty_lines t.cache in
        let rescued = ref 0 and torn = ref 0 in
        List.iter
          (fun addr ->
            if rng 1_000_000 < threshold then begin
              tear_line addr ~words:(rng words_per_line);
              incr torn
            end
            else begin
              rescue_line addr;
              incr rescued
            end)
          dirty;
        ignore (Cache.drop_all t.cache : int);
        { no_damage with rescued = !rescued; torn = !torn }
    | Bit_rot { flips } ->
        let n = Cache.write_back_all t.cache in
        let words = Memory.size t.mem / 8 in
        for _ = 1 to flips do
          let addr = 8 * rng words in
          let bit = rng 64 in
          Memory.flip_durable_bit t.mem ~addr ~bit
        done;
        { no_damage with rescued = n; bit_flips = flips }
  in
  st.Stats.rescued_lines <- st.Stats.rescued_lines + damage.rescued;
  st.Stats.torn_lines <- st.Stats.torn_lines + damage.torn;
  st.Stats.dropped_lines <- st.Stats.dropped_lines + damage.dropped;
  st.Stats.flipped_bits <- st.Stats.flipped_bits + damage.bit_flips;
  t.crashed <- true;
  damage

let recover t =
  if not t.crashed then invalid_arg "Pmem.recover: device has not crashed";
  Memory.discard_current t.mem;
  ignore (Cache.drop_all t.cache : int);
  Option.iter Queue.clear t.journal;
  t.crashed <- false;
  trace t ~code:Obs.Event.recover ~a:0 ~b:0

let is_crashed t = t.crashed

let persist_all t =
  guard t;
  let dirty = Cache.dirty_lines t.cache in
  List.iter (fun addr -> flush t addr) dirty;
  fence t
let load_durable t addr = Memory.load_durable t.mem addr
let peek t addr = Memory.load t.mem addr
let peek_int t addr = Memory.load_int t.mem addr
let durable_snapshot t = Memory.durable_snapshot t.mem
let dirty_line_count t = Cache.dirty_count t.cache

let store_history t =
  match t.journal with
  | None -> []
  | Some q -> List.of_seq (Queue.to_seq q)

let journal_length t =
  match t.journal with None -> 0 | Some q -> Queue.length q

let last_values t =
  match t.journal with
  | None -> invalid_arg "Pmem: device was created without ~journal:true"
  | Some q ->
      (* Distinct addresses <= journal entries; sizing from the journal
         avoids rehash-on-grow for long histories and over-allocation
         for short ones. *)
      let last = Hashtbl.create (max 16 (Queue.length q)) in
      Queue.iter (fun (addr, v) -> Hashtbl.replace last addr v) q;
      last

let lost_store_count t =
  let last = last_values t in
  Hashtbl.fold
    (fun addr v acc ->
      if Int64.equal (Memory.load_durable t.mem addr) v then acc else acc + 1)
    last 0

let durable_reflects_all_stores t = lost_store_count t = 0
