type crash_mode = Rescue | Discard

type t = {
  cfg : Config.t;
  mem : Memory.t;
  cache : Cache.t;
  stats : Stats.t;
  mutable hook : (cost:int -> unit) option;
  mutable crashed : bool;
  journal : (int * int64) Queue.t option;
}

exception Crashed_device

let create ?(journal = false) cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> Fmt.invalid_arg "Pmem.create: %s" msg);
  let mem = Memory.create ~size:cfg.Config.region_size in
  let stats = Stats.create () in
  let write_back line_addr =
    stats.Stats.writebacks <- stats.Stats.writebacks + 1;
    Memory.write_back mem ~line_addr ~len:cfg.Config.line_size
  in
  let cache =
    Cache.create ~sets:(Config.n_sets cfg) ~ways:cfg.Config.cache_ways
      ~line_size:cfg.Config.line_size ~write_back
  in
  {
    cfg;
    mem;
    cache;
    stats;
    hook = None;
    crashed = false;
    journal = (if journal then Some (Queue.create ()) else None);
  }

let config t = t.cfg
let stats t = t.stats
let set_step_hook t f = t.hook <- Some f
let clear_step_hook t = t.hook <- None

let step t cost =
  match t.hook with
  | Some f -> f ~cost
  | None -> t.stats.Stats.clock <- t.stats.Stats.clock + cost

let charge t cycles =
  if cycles > 0 then begin
    t.stats.Stats.compute_cycles <- t.stats.Stats.compute_cycles + cycles;
    step t cycles
  end

let guard t = if t.crashed then raise Crashed_device

let load t addr =
  guard t;
  let st = t.stats in
  st.Stats.loads <- st.Stats.loads + 1;
  let cost =
    match Cache.touch t.cache ~addr ~dirty:false with
    | Cache.Hit ->
        st.Stats.load_hits <- st.Stats.load_hits + 1;
        t.cfg.Config.load_hit
    | Cache.Miss _ ->
        st.Stats.load_misses <- st.Stats.load_misses + 1;
        t.cfg.Config.load_miss
  in
  st.Stats.load_cycles <- st.Stats.load_cycles + cost;
  step t cost;
  Memory.load t.mem addr

let record_store t addr v =
  match t.journal with
  | None -> ()
  | Some q -> Queue.add (addr, v) q

let store t addr v =
  guard t;
  let st = t.stats in
  st.Stats.stores <- st.Stats.stores + 1;
  let cost =
    match Cache.touch t.cache ~addr ~dirty:true with
    | Cache.Hit ->
        st.Stats.store_hits <- st.Stats.store_hits + 1;
        t.cfg.Config.store_cost
    | Cache.Miss _ ->
        st.Stats.store_misses <- st.Stats.store_misses + 1;
        t.cfg.Config.store_cost + t.cfg.Config.store_miss_extra
  in
  st.Stats.store_cycles <- st.Stats.store_cycles + cost;
  step t cost;
  Memory.store t.mem addr v;
  record_store t addr v

let cas t addr ~expected ~desired =
  guard t;
  let st = t.stats in
  st.Stats.cas_ops <- st.Stats.cas_ops + 1;
  let base =
    match Cache.touch t.cache ~addr ~dirty:true with
    | Cache.Hit -> t.cfg.Config.store_cost
    | Cache.Miss _ -> t.cfg.Config.store_cost + t.cfg.Config.store_miss_extra
  in
  (* The step (and hence any scheduler yield) happens before the
     read-modify-write, which then executes indivisibly: no other thread
     can run between the comparison and the write. *)
  st.Stats.cas_cycles <- st.Stats.cas_cycles + base + t.cfg.Config.cas_extra;
  step t (base + t.cfg.Config.cas_extra);
  let actual = Memory.load t.mem addr in
  if Int64.equal actual expected then begin
    Memory.store t.mem addr desired;
    record_store t addr desired;
    true
  end
  else begin
    st.Stats.cas_failures <- st.Stats.cas_failures + 1;
    false
  end

let load_int t addr = Int64.to_int (load t addr)
let store_int t addr v = store t addr (Int64.of_int v)

let cas_int t addr ~expected ~desired =
  cas t addr ~expected:(Int64.of_int expected) ~desired:(Int64.of_int desired)

let flush t addr =
  guard t;
  t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
  t.stats.Stats.flush_cycles <- t.stats.Stats.flush_cycles + t.cfg.Config.flush_cost;
  step t t.cfg.Config.flush_cost;
  ignore (Cache.flush_line t.cache ~addr : bool)

let fence t =
  guard t;
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  t.stats.Stats.fence_cycles <- t.stats.Stats.fence_cycles + t.cfg.Config.fence_cost;
  step t t.cfg.Config.fence_cost

let crash t mode =
  guard t;
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  (match mode with
  | Rescue ->
      let n = Cache.write_back_all t.cache in
      t.stats.Stats.rescued_lines <- t.stats.Stats.rescued_lines + n
  | Discard ->
      let n = Cache.drop_all t.cache in
      t.stats.Stats.dropped_lines <- t.stats.Stats.dropped_lines + n);
  t.crashed <- true

let recover t =
  if not t.crashed then invalid_arg "Pmem.recover: device has not crashed";
  Memory.discard_current t.mem;
  ignore (Cache.drop_all t.cache : int);
  Option.iter Queue.clear t.journal;
  t.crashed <- false

let is_crashed t = t.crashed

let persist_all t =
  guard t;
  let dirty = Cache.dirty_lines t.cache in
  List.iter (fun addr -> flush t addr) dirty;
  fence t
let load_durable t addr = Memory.load_durable t.mem addr
let peek t addr = Memory.load t.mem addr
let durable_snapshot t = Memory.durable_snapshot t.mem
let dirty_line_count t = Cache.dirty_count t.cache

let store_history t =
  match t.journal with
  | None -> []
  | Some q -> List.of_seq (Queue.to_seq q)

let journal_length t =
  match t.journal with None -> 0 | Some q -> Queue.length q

let last_values t =
  match t.journal with
  | None -> invalid_arg "Pmem: device was created without ~journal:true"
  | Some q ->
      (* Distinct addresses <= journal entries; sizing from the journal
         avoids rehash-on-grow for long histories and over-allocation
         for short ones. *)
      let last = Hashtbl.create (max 16 (Queue.length q)) in
      Queue.iter (fun (addr, v) -> Hashtbl.replace last addr v) q;
      last

let lost_store_count t =
  let last = last_values t in
  Hashtbl.fold
    (fun addr v acc ->
      if Int64.equal (Memory.load_durable t.mem addr) v then acc else acc + 1)
    last 0

let durable_reflects_all_stores t = lost_store_count t = 0
