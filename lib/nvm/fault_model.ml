type t =
  | Full_rescue
  | Full_discard
  | Partial_rescue of { energy_budget_j : float }
  | Torn_lines of { prob : float }
  | Bit_rot of { flips : int }

let adversarial = function
  | Full_rescue | Full_discard -> false
  | Partial_rescue _ | Torn_lines _ | Bit_rot _ -> true

let expects_loss = function
  | Full_rescue -> false
  | Full_discard | Partial_rescue _ | Torn_lines _ | Bit_rot _ -> true

let tag = function
  | Full_rescue -> 0
  | Full_discard -> 1
  | Partial_rescue _ -> 2
  | Torn_lines _ -> 3
  | Bit_rot _ -> 4

let reference =
  [
    Full_rescue;
    Full_discard;
    Partial_rescue { energy_budget_j = 0.001 };
    Torn_lines { prob = 0.5 };
    Bit_rot { flips = 8 };
  ]

let to_string = function
  | Full_rescue -> "full-rescue"
  | Full_discard -> "full-discard"
  | Partial_rescue { energy_budget_j } ->
      Printf.sprintf "partial-rescue:%g" energy_budget_j
  | Torn_lines { prob } -> Printf.sprintf "torn:%g" prob
  | Bit_rot { flips } -> Printf.sprintf "bit-rot:%d" flips

let of_string s =
  let param name conv rest k =
    match conv rest with
    | Some v -> Ok (k v)
    | None ->
        Error (Printf.sprintf "%s: bad parameter %S in fault model %S" name rest s)
  in
  match String.index_opt s ':' with
  | None -> begin
      match s with
      | "full-rescue" | "rescue" -> Ok Full_rescue
      | "full-discard" | "discard" -> Ok Full_discard
      | "partial-rescue" -> Ok (Partial_rescue { energy_budget_j = 0.001 })
      | "torn" | "torn-lines" -> Ok (Torn_lines { prob = 0.5 })
      | "bit-rot" -> Ok (Bit_rot { flips = 8 })
      | _ -> Error (Printf.sprintf "unknown fault model %S" s)
    end
  | Some i ->
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let float_param = float_of_string_opt in
      let nonneg_int r =
        match int_of_string_opt r with
        | Some n when n >= 0 -> Some n
        | _ -> None
      in
      (match name with
      | "partial-rescue" | "partial" ->
          param name float_param rest (fun j ->
              Partial_rescue { energy_budget_j = j })
      | "torn" | "torn-lines" ->
          param name
            (fun r ->
              match float_of_string_opt r with
              | Some p when p >= 0. && p <= 1. -> Some p
              | _ -> None)
            rest
            (fun p -> Torn_lines { prob = p })
      | "bit-rot" ->
          param name nonneg_int rest (fun n -> Bit_rot { flips = n })
      | _ -> Error (Printf.sprintf "unknown fault model %S" s))

let of_string_list s =
  if String.equal s "all" then Ok reference
  else
    let parts = String.split_on_char ',' (String.trim s) in
    List.fold_left
      (fun acc p ->
        match acc with
        | Error _ as e -> e
        | Ok models -> (
            match of_string (String.trim p) with
            | Ok m -> Ok (m :: models)
            | Error _ as e -> e))
      (Ok []) parts
    |> Result.map List.rev

let pp ppf t = Fmt.string ppf (to_string t)
