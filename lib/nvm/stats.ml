type t = {
  mutable loads : int;
  mutable load_hits : int;
  mutable load_misses : int;
  mutable stores : int;
  mutable store_hits : int;
  mutable store_misses : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable flushes : int;
  mutable fences : int;
  mutable writebacks : int;
  mutable crashes : int;
  mutable rescued_lines : int;
  mutable dropped_lines : int;
  mutable torn_lines : int;
  mutable flipped_bits : int;
  mutable clock : int;
  mutable load_cycles : int;
  mutable store_cycles : int;
  mutable cas_cycles : int;
  mutable flush_cycles : int;
  mutable fence_cycles : int;
  mutable compute_cycles : int;
}

let create () =
  {
    loads = 0;
    load_hits = 0;
    load_misses = 0;
    stores = 0;
    store_hits = 0;
    store_misses = 0;
    cas_ops = 0;
    cas_failures = 0;
    flushes = 0;
    fences = 0;
    writebacks = 0;
    crashes = 0;
    rescued_lines = 0;
    dropped_lines = 0;
    torn_lines = 0;
    flipped_bits = 0;
    clock = 0;
    load_cycles = 0;
    store_cycles = 0;
    cas_cycles = 0;
    flush_cycles = 0;
    fence_cycles = 0;
    compute_cycles = 0;
  }

let reset t =
  t.loads <- 0;
  t.load_hits <- 0;
  t.load_misses <- 0;
  t.stores <- 0;
  t.store_hits <- 0;
  t.store_misses <- 0;
  t.cas_ops <- 0;
  t.cas_failures <- 0;
  t.flushes <- 0;
  t.fences <- 0;
  t.writebacks <- 0;
  t.crashes <- 0;
  t.rescued_lines <- 0;
  t.dropped_lines <- 0;
  t.torn_lines <- 0;
  t.flipped_bits <- 0;
  t.clock <- 0;
  t.load_cycles <- 0;
  t.store_cycles <- 0;
  t.cas_cycles <- 0;
  t.flush_cycles <- 0;
  t.fence_cycles <- 0;
  t.compute_cycles <- 0

let total_ops t = t.loads + t.stores + t.cas_ops + t.flushes + t.fences

let hit_rate t =
  let accesses = t.loads + t.stores in
  if accesses = 0 then nan
  else float_of_int (t.load_hits + t.store_hits) /. float_of_int accesses

let total_cycles t =
  t.load_cycles + t.store_cycles + t.cas_cycles + t.flush_cycles
  + t.fence_cycles + t.compute_cycles

let cycle_category_names =
  [| "loads"; "stores"; "cas"; "flushes"; "fences"; "compute" |]

let cycle_totals t =
  [|
    t.load_cycles; t.store_cycles; t.cas_cycles; t.flush_cycles;
    t.fence_cycles; t.compute_cycles;
  |]

let pp_breakdown_totals ppf totals =
  let sum = Array.fold_left ( + ) 0 totals in
  let total = max 1 sum in
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i v ->
      Fmt.pf ppf "%-8s %12d cycles  %5.1f%%@ " cycle_category_names.(i) v
        (100. *. float_of_int v /. float_of_int total))
    totals;
  Fmt.pf ppf "total    %12d cycles@]" sum

let pp_breakdown ppf t = pp_breakdown_totals ppf (cycle_totals t)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>loads %d (hits %d, misses %d)@ stores %d (hits %d, misses %d)@ \
     cas %d (failed %d)@ flushes %d, fences %d, writebacks %d@ crashes %d \
     (rescued %d lines, dropped %d, torn %d; %d bits flipped)@ clock %d \
     cycles@]"
    t.loads t.load_hits t.load_misses t.stores t.store_hits t.store_misses
    t.cas_ops t.cas_failures t.flushes t.fences t.writebacks t.crashes
    t.rescued_lines t.dropped_lines t.torn_lines t.flipped_bits t.clock
