(** Geometry and latency parameters of a simulated machine.

    A {!t} bundles everything the NVM device model needs to know about the
    platform it pretends to be: the size of the byte-addressable persistent
    region, the CPU cache in front of it, and the cycle cost of every
    primitive memory operation.  Two presets, {!desktop} and {!server},
    are calibrated against the machines of Table 1 of the paper (an HP
    ENVY Phoenix 800 desktop and a DL580 Gen8 server). *)

type t = {
  name : string;  (** human-readable platform name *)
  ghz : float;  (** clock frequency used to convert cycles to seconds *)
  hw_threads : int;  (** hardware threads available (informational) *)
  dram_desc : string;  (** memory description, for report headers *)
  region_size : int;  (** bytes of simulated NVM; multiple of [line_size] *)
  line_size : int;  (** cache-line size in bytes (power of two) *)
  cache_lines : int;  (** total lines in the simulated cache *)
  cache_ways : int;  (** associativity; [cache_lines mod cache_ways = 0] *)
  load_hit : int;  (** cycles for a load that hits the cache *)
  load_miss : int;  (** cycles for a load that misses *)
  store_cost : int;  (** cycles for a store (write-allocate hit path) *)
  store_miss_extra : int;  (** additional cycles when a store misses *)
  flush_cost : int;  (** cycles for flushing one line to NVM (clwb-like) *)
  fence_cost : int;  (** cycles for a persist fence (sfence-like) *)
  cas_extra : int;  (** cycles added on top of a store for a CAS *)
}

val desktop : t
(** ENVY Phoenix 800 profile: i7-4770 @ 3.4 GHz, 8 hardware threads. *)

val server : t
(** DL580 Gen8 profile: E7-4890v2 @ 2.8 GHz, one socket (30 hw threads);
    slightly higher memory latencies than {!desktop}, as is typical of
    large multi-socket machines. *)

val test_small : t
(** A tiny region and cache for unit tests: evictions happen quickly, so
    write-back and crash-discard behaviour is easy to exercise. *)

val with_region_size : t -> int -> t
(** [with_region_size t bytes] returns [t] resized; [bytes] is rounded up
    to a whole number of cache lines. *)

val validate : t -> (unit, string) result
(** Check internal consistency (powers of two, divisibility, positivity).
    [line_size] and the set count [cache_lines / cache_ways] must be
    powers of two: the cache model indexes lines and sets with
    shift/mask instead of division on the per-access hot path. *)

val n_sets : t -> int
(** Number of cache sets, [cache_lines / cache_ways]. *)

val pp : t Fmt.t
