module Scheduler = Sched.Scheduler
module Map_intf = Tsp_maps.Map_intf

type op = Set | Get | Incr | Remove

type record = {
  op : op;
  key : int;
  arg : int64;
  tid : int;
  t0 : int;
  t1 : int;
  ok : bool;
  result : int64;
}

type t = {
  sched : Scheduler.t;
  ops : Ivec.t;
  keys : Ivec.t;
  args : Ivec.t;
  tids : Ivec.t;
  t0s : Ivec.t;
  t1s : Ivec.t;
  oks : Ivec.t;
  results : Ivec.t;
}

let create ~sched ?(capacity = 1024) () =
  let v () = Ivec.create ~capacity () in
  {
    sched;
    ops = v ();
    keys = v ();
    args = v ();
    tids = v ();
    t0s = v ();
    t1s = v ();
    oks = v ();
    results = v ();
  }

let tag = function Set -> 0 | Get -> 1 | Incr -> 2 | Remove -> 3

let op_of_tag = function
  | 0 -> Set
  | 1 -> Get
  | 2 -> Incr
  | 3 -> Remove
  | n -> Fmt.invalid_arg "History: corrupt op tag %d" n

(* The invocation half is written before the underlying operation runs;
   the response half is filled in after it returns.  A crash abandons
   the fiber inside the underlying operation, leaving t1 = -1. *)
let begin_op t op ~tid ~key ~arg =
  let i = Ivec.length t.ops in
  Ivec.push t.ops (tag op);
  Ivec.push t.keys key;
  Ivec.push t.args arg;
  Ivec.push t.tids tid;
  Ivec.push t.t0s (Scheduler.now t.sched);
  Ivec.push t.t1s (-1);
  Ivec.push t.oks 0;
  Ivec.push t.results 0;
  i

let finish_op t i ~ok ~result =
  Ivec.set t.t1s i (Scheduler.now t.sched);
  Ivec.set t.oks i (if ok then 1 else 0);
  Ivec.set t.results i result

let wrap t (m : Map_intf.ops) =
  {
    Map_intf.name = m.name;
    set =
      (fun ~tid ~key ~value ->
        let i = begin_op t Set ~tid ~key ~arg:(Int64.to_int value) in
        m.set ~tid ~key ~value;
        finish_op t i ~ok:false ~result:0);
    get =
      (fun ~tid ~key ->
        let i = begin_op t Get ~tid ~key ~arg:0 in
        let r = m.get ~tid ~key in
        (match r with
        | Some v -> finish_op t i ~ok:true ~result:(Int64.to_int v)
        | None -> finish_op t i ~ok:false ~result:0);
        r);
    incr =
      (fun ~tid ~key ~by ->
        let i = begin_op t Incr ~tid ~key ~arg:(Int64.to_int by) in
        m.incr ~tid ~key ~by;
        finish_op t i ~ok:false ~result:0);
    remove =
      (fun ~tid ~key ->
        let i = begin_op t Remove ~tid ~key ~arg:0 in
        let r = m.remove ~tid ~key in
        finish_op t i ~ok:r ~result:0;
        r);
  }

let length t = Ivec.length t.ops

let nth t i =
  {
    op = op_of_tag (Ivec.get t.ops i);
    key = Ivec.get t.keys i;
    arg = Int64.of_int (Ivec.get t.args i);
    tid = Ivec.get t.tids i;
    t0 = Ivec.get t.t0s i;
    t1 = Ivec.get t.t1s i;
    ok = Ivec.get t.oks i <> 0;
    result = Int64.of_int (Ivec.get t.results i);
  }

let records t = List.init (length t) (nth t)
let pending_of_record r = r.t1 < 0

let pending t =
  let n = ref 0 in
  for i = 0 to length t - 1 do
    if Ivec.get t.t1s i < 0 then incr n
  done;
  !n

let completed t = length t - pending t
