type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Ivec.create: capacity must be >= 1";
  { data = Array.make capacity 0; len = 0 }

let length t = t.len
let capacity t = Array.length t.data

let check t i name =
  if i < 0 || i >= t.len then
    Fmt.invalid_arg "Ivec.%s: index %d out of bounds (length %d)" name i t.len

let get t i =
  check t i "get";
  Array.unsafe_get t.data i

let set t i v =
  check t i "set";
  Array.unsafe_set t.data i v

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (2 * cap) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len
