(** Durable-linearizability verdict over a recorded history.

    After a crash and recovery, the recovered map state must be
    explained by {e some} linearization of a {e prefix-closed} subset of
    the operation history ("The Path to Durable Linearizability",
    D'Osualdo/Raad/Vafeiadis; NVTraverse, Friedman et al.).  This module
    implements the {e strict} variant appropriate for rescue-class crash
    semantics (the paper's TSP verdicts, fault models [None] /
    [Full_rescue]): every {e completed} operation — one whose response
    the caller observed before the crash — must survive; every
    {e pending} operation — invoked but never acknowledged — may take
    effect or not; and nothing else may appear.  Prefix-closure is then
    automatic: a pending operation never really-time-precedes anything
    (its response interval is open), so the surviving subset "all
    completed + any pending" is closed under real-time precedence.

    The check is per key ("per-location"): map operations on distinct
    keys commute, so a post-crash state is explainable iff each key's
    recovered value is explainable from that key's operations alone.
    [Get]s are recorded for diagnosis but do not constrain the verdict
    (they read state rather than produce it).

    Per key the explanation is algebraic rather than enumerative.
    Real-time precedence between two operations is [a ≺ b] iff
    [a.t1 >= 0 && a.t1 < b.t0] (a pending [a] precedes nothing).  A
    linearization's final value for a key is determined by its last
    {e absolute} operation ([Set]/[Remove], or the initial state) plus
    the [Incr]s linearized after it; an [incr] on an absent key inserts
    its increment, matching both map implementations.  So the checker
    enumerates admissible "last absolute op" candidates — an absolute op
    [a] qualifies iff no completed absolute op on the same key must
    follow it ([a ≺ b]) — then splits the key's increments into {e
    before} (must precede the base), {e forced} (must follow it) and
    {e optional} (overlapping, or pending and thus droppable), and asks
    whether the recovered value equals base + forced + some subset-sum
    of the optional increments.  When all optional increments are equal
    (the workloads' [by:1] case) the subset-sum is a range check;
    otherwise small sets are enumerated and sets larger than
    {!subset_limit} are accepted conservatively (counted in
    [stats.capped], never a false alarm). *)

type stats = {
  ops : int;  (** operations in the history *)
  completed : int;
  pending : int;
  keys : int;  (** distinct keys checked (history ∪ initial ∪ recovered) *)
  capped : int;
      (** keys whose optional-increment subset-sum exceeded
          {!subset_limit} and was accepted conservatively *)
}

type violation = {
  key : int;
  found : int64 option;  (** recovered value ([None] = absent) *)
  detail : string;  (** deterministic human-readable diagnosis *)
}

type verdict =
  | Explained of stats
      (** some linearization of completed + a subset of pending ops
          yields exactly the recovered state *)
  | Violation of stats * violation list
      (** keys whose recovered value no admissible linearization
          explains, in ascending key order *)

val subset_limit : int
(** Optional-increment count beyond which the subset-sum check is
    conservatively accepted (only reachable with unequal increments). *)

val check_records :
  initial:(int * int64) list ->
  records:History.record list ->
  recovered:(int * int64) list ->
  verdict
(** [initial] is the map contents at the recording start (after
    preload), [recovered] the post-crash, post-recovery enumeration.
    Both must list each key at most once. *)

val check :
  initial:(int * int64) list ->
  history:History.t ->
  recovered:(int * int64) list ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit
(** One line for [Explained]; one header plus one line per violation
    (capped at 20, deterministically) otherwise. *)

val is_explained : verdict -> bool
