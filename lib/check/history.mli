(** Operation-history recorder for the durable-linearizability checker.

    [wrap] interposes on a {!Tsp_maps.Map_intf.ops} record and logs, for
    every map operation, its {e invocation} (op, key, argument, thread,
    virtual clock on entry) and — if the operation returns — its
    {e response} (result, virtual clock on exit).  The two clock reads
    come from {!Sched.Scheduler.now}, which is a single field load: no
    randomness is drawn and no cycles are charged, so a recorded run has
    {e bit-identical} simulated behaviour (steps, clocks, interleavings,
    crash states) to an unrecorded one.  The bench A/B cell
    [history_recording] asserts exactly that.

    Crash semantics fall out of the scheduler's injection mechanism: a
    crash abandons the continuation of every thread mid-operation, so an
    operation interrupted by the crash never reaches its response write
    and stays {e pending} ([t1 = -1]).  An operation whose response was
    recorded is {e completed}: its effect was acknowledged to the caller
    before the crash, which is precisely the set that strict durable
    linearizability requires to survive.

    Storage is struct-of-arrays over {!Ivec}, one slot of seven [int]
    fields per operation.  Values and increments are stored as
    [Int64.to_int] — the workloads use small counters, and the 63-bit
    truncation is harmless there; the checker converts back with
    [Int64.of_int]. *)

type t

type op = Set | Get | Incr | Remove

type record = {
  op : op;
  key : int;
  arg : int64;  (** [set]'s value / [incr]'s [by]; [0L] for get/remove *)
  tid : int;
  t0 : int;  (** virtual clock at invocation *)
  t1 : int;  (** virtual clock at response, or [-1] if pending *)
  ok : bool;  (** get: key present; remove: key removed; else false *)
  result : int64;  (** get: value read if [ok]; else [0L] *)
}

val create : sched:Sched.Scheduler.t -> ?capacity:int -> unit -> t
(** [capacity] (default 1024) preallocates slots for that many
    operations; beyond it the storage doubles. *)

val wrap : t -> Tsp_maps.Map_intf.ops -> Tsp_maps.Map_intf.ops
(** The recording interposer.  Must only be called (and the returned ops
    only used) from inside simulated threads, since it reads
    {!Sched.Scheduler.now}. *)

val length : t -> int
(** Operations recorded so far (completed and pending). *)

val nth : t -> int -> record
(** Records are indexed in invocation order. *)

val records : t -> record list
(** All records, in invocation order. *)

val completed : t -> int
val pending : t -> int

val pending_of_record : record -> bool
(** [t1 < 0]: invoked but never acknowledged. *)
