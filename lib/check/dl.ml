type stats = {
  ops : int;
  completed : int;
  pending : int;
  keys : int;
  capped : int;
}

type violation = { key : int; found : int64 option; detail : string }
type verdict = Explained of stats | Violation of stats * violation list

let subset_limit = 20

(* ------------------------------------------------------------------ *)
(* Subset-sum over optional increments.                                *)
(* ------------------------------------------------------------------ *)

(* Can some subset of [bys] (nonempty if [nonempty]) sum to [target]?
   All-equal positive increments — the workloads' [by:1] — reduce to a
   divisibility + range check; otherwise we enumerate subsets, and past
   [subset_limit] elements accept conservatively (the caller counts the
   concession in [stats.capped]). *)
let achievable ?(nonempty = false) ~capped bys target =
  match bys with
  | [] -> (not nonempty) && Int64.equal target 0L
  | b0 :: _
    when Int64.compare b0 0L > 0 && List.for_all (Int64.equal b0) bys ->
      let n = Int64.of_int (List.length bys) in
      let q = Int64.div target b0 and r = Int64.rem target b0 in
      Int64.equal r 0L
      && Int64.compare q 0L >= 0
      && Int64.compare q n <= 0
      && ((not nonempty) || Int64.compare q 0L > 0)
  | _ ->
      let arr = Array.of_list bys in
      let n = Array.length arr in
      if n > subset_limit then begin
        incr capped;
        true
      end
      else begin
        let found = ref false in
        let first = if nonempty then 1 else 0 in
        let mask = ref first in
        while (not !found) && !mask < 1 lsl n do
          let s = ref 0L in
          for i = 0 to n - 1 do
            if !mask land (1 lsl i) <> 0 then s := Int64.add !s arr.(i)
          done;
          if Int64.equal !s target then found := true;
          incr mask
        done;
        !found
      end

(* ------------------------------------------------------------------ *)
(* Per-key explanation.                                                *)
(* ------------------------------------------------------------------ *)

type entry = { op : History.op; arg : int64; t0 : int; t1 : int }

let is_completed (e : entry) = e.t1 >= 0
let is_absolute (e : entry) = e.op = History.Set || e.op = History.Remove

(* a ≺ b in simulated real time: a's response happened before b's
   invocation.  A pending a (t1 = -1) precedes nothing. *)
let precedes a b = a.t1 >= 0 && a.t1 < b.t0

type base =
  | Initial  (** the pre-run value; admissible iff no completed absolute op *)
  | Last of entry  (** this Set/Remove is linearized last among absolutes *)

(* Does linearizing [base] last among this key's absolute operations,
   then choosing positions for overlapping increments and inclusion for
   pending ones, produce exactly [recovered_v]? *)
let base_explains ~capped ~initial_v ~recovered_v ~incrs base =
  let base_state =
    match base with
    | Initial -> initial_v
    | Last a -> ( match a.op with History.Set -> Some a.arg | _ -> None)
  in
  (* Classify each increment relative to the base:
     - before   (i ≺ base): linearized before, overwritten — excluded;
     - forced   (base ≺ i): linearized after — always contributes;
     - optional (overlapping, or pending): contributes at will. *)
  let before i =
    match base with Initial -> false | Last a -> precedes i a
  in
  let forced i =
    is_completed i
    && match base with Initial -> true | Last a -> precedes a i
  in
  let forced_n = ref 0 in
  let forced_sum = ref 0L in
  let optional = ref [] in
  List.iter
    (fun i ->
      if before i then ()
      else if forced i then begin
        incr forced_n;
        forced_sum := Int64.add !forced_sum i.arg
      end
      else optional := i.arg :: !optional)
    incrs;
  let optional = List.rev !optional in
  match (base_state, recovered_v) with
  | Some v0, Some r ->
      achievable ~capped optional Int64.(sub (sub r v0) !forced_sum)
  | Some _, None ->
      (* A present base cannot vanish; a pending Remove that would erase
         it is its own base candidate. *)
      false
  | None, None ->
      (* Absent survives only if no completed increment must follow. *)
      !forced_n = 0
  | None, Some r ->
      (* incr on an absent key inserts its increment, so an absent base
         plus a nonempty set of applied increments yields their sum. *)
      if !forced_n > 0 then
        achievable ~capped optional (Int64.sub r !forced_sum)
      else achievable ~nonempty:true ~capped optional r

let explain_key ~capped ~initial_v ~recovered_v entries =
  let absolute = List.filter is_absolute entries in
  let incrs = List.filter (fun e -> e.op = History.Incr) entries in
  let completed_abs = List.filter is_completed absolute in
  (* An absolute op can be linearized last iff no completed absolute op
     is forced after it; the initial state can be "last" iff there are
     no completed absolute ops at all. *)
  let admissible a =
    not (List.exists (fun b -> b != a && precedes a b) completed_abs)
  in
  let bases =
    (if completed_abs = [] then [ Initial ] else [])
    @ List.filter_map (fun a -> if admissible a then Some (Last a) else None)
        absolute
  in
  List.exists (base_explains ~capped ~initial_v ~recovered_v ~incrs) bases

(* ------------------------------------------------------------------ *)
(* Whole-state check.                                                  *)
(* ------------------------------------------------------------------ *)

let pp_value ppf = function
  | None -> Fmt.string ppf "absent"
  | Some v -> Fmt.pf ppf "%Ld" v

let diagnose ~initial_v ~recovered_v entries =
  let count p = List.length (List.filter p entries) in
  let completed_w =
    count (fun e -> is_completed e && e.op <> History.Get)
  in
  let pending_w =
    count (fun e -> (not (is_completed e)) && e.op <> History.Get)
  in
  Fmt.str
    "recovered %a not explained by any linearization (initial %a, %d \
     completed / %d pending writes)"
    pp_value recovered_v pp_value initial_v completed_w pending_w

let check_records ~initial ~records ~recovered =
  let assoc name l =
    let h = Hashtbl.create 64 in
    List.iter
      (fun (k, v) ->
        if Hashtbl.mem h k then
          Fmt.invalid_arg "Dl.check: duplicate key %d in %s" k name;
        Hashtbl.replace h k v)
      l;
    h
  in
  let initial_h = assoc "initial" initial in
  let recovered_h = assoc "recovered" recovered in
  let by_key : (int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let completed = ref 0 and pending = ref 0 in
  List.iter
    (fun (r : History.record) ->
      if r.t1 >= 0 then incr completed else incr pending;
      if r.op <> History.Get then begin
        let cell =
          match Hashtbl.find_opt by_key r.key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add by_key r.key c;
              c
        in
        cell := { op = r.op; arg = r.arg; t0 = r.t0; t1 = r.t1 } :: !cell
      end)
    records;
  let keys = Hashtbl.create 64 in
  let add_key k = if not (Hashtbl.mem keys k) then Hashtbl.add keys k () in
  Hashtbl.iter (fun k _ -> add_key k) initial_h;
  Hashtbl.iter (fun k _ -> add_key k) recovered_h;
  Hashtbl.iter (fun k _ -> add_key k) by_key;
  let sorted_keys =
    Hashtbl.fold (fun k () acc -> k :: acc) keys []
    |> List.sort Int.compare
  in
  let capped = ref 0 in
  let violations =
    List.filter_map
      (fun k ->
        let initial_v = Hashtbl.find_opt initial_h k in
        let recovered_v = Hashtbl.find_opt recovered_h k in
        let entries =
          match Hashtbl.find_opt by_key k with
          | Some c -> List.rev !c
          | None -> []
        in
        if explain_key ~capped ~initial_v ~recovered_v entries then None
        else
          Some
            {
              key = k;
              found = recovered_v;
              detail = diagnose ~initial_v ~recovered_v entries;
            })
      sorted_keys
  in
  let stats =
    {
      ops = List.length records;
      completed = !completed;
      pending = !pending;
      keys = List.length sorted_keys;
      capped = !capped;
    }
  in
  if violations = [] then Explained stats else Violation (stats, violations)

let check ~initial ~history ~recovered =
  check_records ~initial ~records:(History.records history) ~recovered

let is_explained = function Explained _ -> true | Violation _ -> false

let pp_stats ppf s =
  Fmt.pf ppf "%d ops (%d completed, %d pending), %d keys" s.ops s.completed
    s.pending s.keys;
  if s.capped > 0 then Fmt.pf ppf ", %d subset-sum capped" s.capped

let pp_verdict ppf = function
  | Explained s -> Fmt.pf ppf "explained: %a" pp_stats s
  | Violation (s, vs) ->
      Fmt.pf ppf "VIOLATION (%d keys): %a" (List.length vs) pp_stats s;
      let shown = List.filteri (fun i _ -> i < 20) vs in
      List.iter
        (fun v -> Fmt.pf ppf "@,  key %d: %s" v.key v.detail)
        shown;
      if List.length vs > 20 then
        Fmt.pf ppf "@,  ... (%d more)" (List.length vs - 20)
