(** Growable vector of immediate [int]s.

    The history recorder and the runner's latency sampler both need an
    append-only sink that is touched once per (sampled) operation on the
    simulator's zero-allocation hot path.  A [ref list] conses a block
    per push; [Buffer]-style byte packing boxes on read-back.  This is
    the minimal alternative: a flat [int array] plus a length, doubling
    on overflow, so a push allocates only when the capacity is exhausted
    — amortised O(1) and, with a sufficient [?capacity], exactly zero
    minor words for the whole run (pinned by a [Gc.minor_words]
    regression in [test/test_checker.ml]). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64, minimum 1) preallocates the backing array;
    pushes beyond it double the storage. *)

val length : t -> int
val capacity : t -> int

val get : t -> int -> int
(** @raise Invalid_argument if the index is out of bounds. *)

val set : t -> int -> int -> unit
(** Overwrite an existing element (used by the recorder to fill in the
    response half of a record).
    @raise Invalid_argument if the index is out of bounds. *)

val push : t -> int -> unit

val clear : t -> unit
(** Forget the contents but keep the backing storage. *)

val to_array : t -> int array
(** Fresh array of the live prefix, in push order. *)
