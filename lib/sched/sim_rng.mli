(** Deterministic splitmix64 pseudo-random number generator.

    Every source of randomness in the simulator flows through one of
    these, seeded explicitly, so a run is a pure function of its seed —
    which is what makes fault-injection campaigns reproducible.

    The state is carried as two 32-bit native-int halves, so {!int},
    {!bool} and {!float} draw without allocating — the per-step cost
    jitter draw sits on the simulator's hottest path.  The output stream
    is bit-identical to the boxed [int64] reference implementation (the
    test suite checks them against each other draw by draw). *)

type t

val create : seed:int -> t

val copy : t -> t
(** Independent clone with the same current state. *)

val split : t -> t
(** Derive an independent child generator (e.g. one per thread). *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

val bool : t -> bool
val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)
