(* Splitmix64, carried as two 32-bit halves in native ints.

   The straightforward implementation over boxed [int64] allocates ~9
   Int64 boxes per draw; with per-step cost jitter enabled that made the
   RNG the single largest minor-heap allocator in the whole simulator
   (BENCH_4: ~3.9M minor words on the hot single-thread cell, almost all
   of it jitter draws).  Splitting the 64-bit state into [hi]/[lo] native
   ints makes every draw allocation-free while producing bit-identical
   output: each operation below is the exact mod-2^64 arithmetic of the
   reference splitmix64, decomposed into 32-bit limbs.

   Native ints are 63-bit, so a product of two 32-bit limbs can exceed
   the native range and wrap mod 2^63.  That wrap is harmless wherever
   only the low 32 bits of the product are kept, because 2^32 divides
   2^63; full 64-bit products are assembled from 16-bit limbs instead.

   The mixed output of a draw is left in [out_hi]/[out_lo] (pure scratch,
   always written before read) so that [advance] needs no return-value
   boxing. *)

type t = {
  mutable hi : int;  (* bits 32..63 of the splitmix64 state *)
  mutable lo : int;  (* bits 0..31 *)
  mutable out_hi : int;  (* bits 32..63 of the last mixed output *)
  mutable out_lo : int;  (* bits 0..31 *)
}

let mask32 = 0xFFFFFFFF

(* golden_gamma = 0x9E3779B97F4A7C15; mix multipliers per Steele et al. *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

(* High 32 bits of the exact 64-bit product of two 32-bit values,
   via 16-bit limbs (the low 32 bits are just [(a * b) land mask32]). *)
let[@inline] umul_hi32 a b =
  let al = a land 0xFFFF and ah = a lsr 16 in
  let bl = b land 0xFFFF and bh = b lsr 16 in
  let ll = al * bl in
  let mid = (al * bh) + (ah * bl) in
  let lo = ll + ((mid land 0xFFFF) lsl 16) in
  ((ah * bh) + (mid lsr 16) + (lo lsr 32)) land mask32

(* One splitmix64 draw: state += gamma, then the 30/27/31 xorshift-
   multiply finalizer.  Leaves the output in [out_hi]/[out_lo]. *)
let[@inline] advance t =
  let slo = t.lo + gamma_lo in
  let shi = (t.hi + gamma_hi + (slo lsr 32)) land mask32 in
  let slo = slo land mask32 in
  t.hi <- shi;
  t.lo <- slo;
  (* z ^= z >>> 30 *)
  let zlo = slo lxor (((shi lsl 2) lor (slo lsr 30)) land mask32) in
  let zhi = shi lxor (shi lsr 30) in
  (* z *= m1 *)
  let mlo = (zlo * m1_lo) land mask32 in
  let mhi = (umul_hi32 zlo m1_lo + (zlo * m1_hi) + (zhi * m1_lo)) land mask32 in
  (* z ^= z >>> 27 *)
  let zlo = mlo lxor (((mhi lsl 5) lor (mlo lsr 27)) land mask32) in
  let zhi = mhi lxor (mhi lsr 27) in
  (* z *= m2 *)
  let mlo = (zlo * m2_lo) land mask32 in
  let mhi = (umul_hi32 zlo m2_lo + (zlo * m2_hi) + (zhi * m2_lo)) land mask32 in
  (* z ^= z >>> 31 *)
  t.out_lo <- mlo lxor (((mhi lsl 1) lor (mlo lsr 31)) land mask32);
  t.out_hi <- mhi lxor (mhi lsr 31)

(* Matches [Int64.of_int seed]: [asr] sign-extends, so bit 63 of the
   widened seed lands in bit 31 of [hi]. *)
let create ~seed =
  { hi = (seed asr 32) land mask32; lo = seed land mask32; out_hi = 0; out_lo = 0 }

let copy t = { hi = t.hi; lo = t.lo; out_hi = t.out_hi; out_lo = t.out_lo }

let next t =
  advance t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t =
  advance t;
  { hi = t.out_hi; lo = t.out_lo; out_hi = 0; out_lo = 0 }

let int t n =
  if n <= 0 then Fmt.invalid_arg "Sim_rng.int: bound %d must be positive" n;
  advance t;
  (* v = output >>> 1, a 63-bit value split as vhi * 2^32 + vlo. *)
  let vhi = t.out_hi lsr 1 in
  let vlo = ((t.out_hi land 1) lsl 31) lor (t.out_lo lsr 1) in
  if n <= 0x40000000 then
    (* v mod n limb-wise: vhi*2^32 ≡ (vhi mod n)*(2^32 mod n) (mod n);
       the product is < 2^60, so the sum stays in native range. *)
    (((vhi mod n) * (0x100000000 mod n)) + (vlo mod n)) mod n
  else
    (* Bounds this large never occur on hot paths; take the boxed road. *)
    Int64.to_int
      (Int64.rem
         (Int64.logor
            (Int64.shift_left (Int64.of_int vhi) 32)
            (Int64.of_int vlo))
         (Int64.of_int n))

let bool t =
  advance t;
  t.out_lo land 1 = 1

let float t x =
  advance t;
  (* output >>> 11 is < 2^53: exact as a float and within native range. *)
  let u = float_of_int ((t.out_hi lsl 21) lor (t.out_lo lsr 11)) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))
