(** Deterministic discrete-event scheduler for simulated threads.

    Simulated threads are ordinary OCaml functions that run as effect
    fibers.  Each memory operation of the NVM device reports its cycle
    cost through {!step}; the scheduler charges it to the issuing thread's
    virtual clock, then suspends the fiber and resumes whichever runnable
    thread now has the {e smallest} virtual clock.  This models threads
    executing in parallel on their own cores: total simulated time is the
    maximum per-thread clock, and a thread that blocks on a mutex simply
    stops accumulating time until the owner hands the mutex over.

    Crash injection: [run ~crash_at_step:k] abruptly abandons {e every}
    thread once the [k]-th step has executed — the simulated analogue of
    delivering SIGKILL to a multithreaded process, which is exactly the
    fault-injection methodology of Section 5.1 of the paper.

    Determinism: scheduling decisions depend only on the seed, the spawn
    order and the costs reported, so a given (program, seed, crash point)
    triple always produces the same interleaving.

    Uncontended fast path: when exactly one thread is runnable — every
    single-thread run, and the tail of any run whose other threads have
    finished or blocked — {!step} charges the thread's virtual clock
    inline instead of suspending the fiber and re-entering the pick
    loop.  The fast path performs the same state updates and the same
    RNG draws the suspending path would (and is bypassed entirely when
    the next step could open the crash window), so every observable —
    step counts, clocks, interleavings, crash states — is bit-identical
    with it on or off; see DESIGN.md, "Scheduler fast path". *)

type t

type outcome =
  | Completed  (** every thread ran to completion *)
  | Crashed of { at_step : int }
      (** crash injection fired; all threads were abandoned *)
  | Deadlocked of { blocked : string list }
      (** no runnable thread, but some are blocked on mutexes *)

val default_slice : int
(** Default [deterministic_slice]: 4096 inline steps per resumption. *)

val create :
  ?seed:int -> ?cost_jitter:int -> ?deterministic_slice:int -> unit -> t
(** [cost_jitter] (default 0) adds a uniform random 0..jitter cycles to
    every step, perturbing interleavings between seeds — useful for
    fault-injection diversity.

    [deterministic_slice] (default 4096) bounds how many consecutive
    steps a lone runnable thread may charge inline before control is
    forced back through the scheduler loop.  [0] disables the fast path
    altogether, reproducing the historical suspend-per-step execution.
    The value never changes simulated results — only how often the
    host-level loop runs. *)

val spawn : t -> ?name:string -> (unit -> unit) -> int
(** Register a thread; returns its id (0, 1, ... in spawn order).  Must be
    called before {!run}. *)

val run : ?crash_at_step:int -> t -> outcome
(** Execute all spawned threads to completion, deadlock or crash.  An
    exception escaping a thread aborts the whole run and is re-raised.
    May be called only once per scheduler. *)

val step : t -> cost:int -> unit
(** Charge [cost] cycles to the calling thread and yield.  Must be called
    from inside a simulated thread; this is what gets wired into
    [Pmem.set_step_hook]. *)

val yield : t -> unit
(** [step t ~cost:0]. *)

val self : t -> int
(** Id of the currently executing simulated thread.
    @raise Invalid_argument outside of {!run}. *)

val now : t -> int
(** Virtual clock of the currently executing simulated thread — the hook
    point for history recorders, which bracket each operation with two
    reads of this clock.  A single field load; draws no randomness and
    charges no cycles, so instrumentation cannot perturb the simulation.
    @raise Invalid_argument outside of {!run}. *)

val in_thread : t -> bool
(** Whether a simulated thread is currently executing — i.e. whether
    {!now}/{!self} may be called.  Never raises; tracer clock closures
    use it to fall back to the device clock in harness code. *)

val current_id : t -> int
(** The executing thread's id, or [-1] outside of {!run}.  Never
    raises. *)

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Attach an event tracer: the run loop emits one
    {!Obs.Event.ctx_switch} each time the CPU passes to a different
    thread (the uncontended fast path never switches and emits
    nothing).  Reads no RNG and charges no cycles. *)

val elapsed_cycles : t -> int
(** Simulated duration so far: the maximum per-thread virtual clock. *)

val total_steps : t -> int
val thread_cycles : t -> int -> int
val thread_count : t -> int
val is_crashed : t -> bool

(** Simulated mutexes.  Blocking and hand-off are scheduling events; a
    direct FIFO hand-off transfers ownership to the longest-waiting
    thread, whose virtual clock is advanced to the release time (it could
    not have proceeded earlier). *)
module Mutex : sig
  type mutex

  val create : t -> mutex
  val id : mutex -> int

  val lock : mutex -> unit
  (** @raise Invalid_argument on recursive acquisition. *)

  val unlock : mutex -> unit
  (** @raise Invalid_argument if the caller does not hold the mutex. *)

  val owner : mutex -> int option
end
