(** Deterministic discrete-event scheduler for simulated threads.

    Simulated threads are ordinary OCaml functions that run as effect
    fibers.  Each memory operation of the NVM device reports its cycle
    cost through {!step}; the scheduler charges it to the issuing thread's
    virtual clock, then suspends the fiber and resumes whichever runnable
    thread now has the {e smallest} virtual clock.  This models threads
    executing in parallel on their own cores: total simulated time is the
    maximum per-thread clock, and a thread that blocks on a mutex simply
    stops accumulating time until the owner hands the mutex over.

    Crash injection: [run ~crash_at_step:k] abruptly abandons {e every}
    thread once the [k]-th step has executed — the simulated analogue of
    delivering SIGKILL to a multithreaded process, which is exactly the
    fault-injection methodology of Section 5.1 of the paper.

    Determinism: scheduling decisions depend only on the seed, the spawn
    order and the costs reported, so a given (program, seed, crash point)
    triple always produces the same interleaving.

    Uncontended fast path: when exactly one thread is runnable — every
    single-thread run, and the tail of any run whose other threads have
    finished or blocked — {!step} charges the thread's virtual clock
    inline instead of suspending the fiber and re-entering the pick
    loop.  The fast path performs the same state updates and the same
    RNG draws the suspending path would (and is bypassed entirely when
    the next step could open the crash window), so every observable —
    step counts, clocks, interleavings, crash states — is bit-identical
    with it on or off; see DESIGN.md, "Scheduler fast path". *)

type t

type outcome =
  | Completed  (** every thread ran to completion *)
  | Crashed of { at_step : int }
      (** crash injection fired; all threads were abandoned *)
  | Deadlocked of { blocked : string list }
      (** no runnable thread, but some are blocked on mutexes *)

val default_slice : int
(** Default [deterministic_slice]: 4096 inline steps per resumption. *)

val create :
  ?seed:int ->
  ?cost_jitter:int ->
  ?deterministic_slice:int ->
  ?quantum:bool ->
  unit ->
  t
(** [cost_jitter] (default 0) adds a uniform random 0..jitter cycles to
    every step, perturbing interleavings between seeds — useful for
    fault-injection diversity.

    [deterministic_slice] (default 4096) bounds how many consecutive
    steps a lone runnable thread may charge inline before control is
    forced back through the scheduler loop.  [0] disables the fast path
    altogether, reproducing the historical suspend-per-step execution.
    The value never changes simulated results — only how often the
    host-level loop runs.

    [quantum] (default [true]) lets the scheduler grant batched
    execution quanta to the device layer (see {!quantum_handle});
    [false] confines every charge to {!step}.  Like the slice, the flag
    never changes simulated results. *)

val spawn : t -> ?name:string -> (unit -> unit) -> int
(** Register a thread; returns its id (0, 1, ... in spawn order).  Must be
    called before {!run}. *)

val run : ?crash_at_step:int -> t -> outcome
(** Execute all spawned threads to completion, deadlock or crash.  An
    exception escaping a thread aborts the whole run and is re-raised.
    May be called only once per scheduler. *)

val step : t -> cost:int -> unit
(** Charge [cost] cycles to the calling thread and yield.  Must be called
    from inside a simulated thread; this is what gets wired into
    [Pmem.set_step_hook].  Settles any outstanding quantum on entry and
    offers a fresh grant on the way out, so interleaving charges through
    [step] and through a quantum handle is always coherent. *)

(** {2 Batched-execution quanta}

    The remaining per-op cost of the [deterministic_slice] fast path is
    the call into [step] itself: a hook-closure invocation plus the
    runnable/budget/crash checks, per simulated memory access.  A
    {e quantum} hoists those checks out of the loop: when exactly one
    thread is runnable, the scheduler hands the device layer a bounded
    burst budget, and each access then costs one branch and one add on
    the thread's clock ({!quantum_try_charge}) with no scheduler
    re-entry at all.

    Grant/settle invariants (see DESIGN.md, "Quantum accounting"):
    grants happen only with one runnable thread, never extend past the
    deterministic slice, and are clamped short of the crash window, so
    the step that would crash — and any step that could contend — still
    travels the effect path.  Charges write the granted thread's vclock
    per-op, so {!now}, {!thread_cycles} and {!elapsed_cycles} are exact
    mid-burst; {!total_steps} folds the unsettled count in.  A quantum
    is revoked (settled) at every [step] entry, mutex block/hand-off,
    thread exit, and {!quantum_settle} barrier.  Simulated results are
    bit-identical with quanta on or off. *)

type quantum
(** A revocable burst-charge handle owned by one scheduler. *)

val quantum_handle : t -> quantum
(** The scheduler's (single, reusable) quantum handle, to be installed
    into the device layer ([Pmem.set_quantum]).  Holding the handle
    grants nothing: the budget only becomes positive when the scheduler
    decides a burst is safe. *)

val null_quantum : quantum
(** A handle that never grants: charging against it always returns
    [false].  The device layer's state before a scheduler is wired. *)

val quantum_try_charge : quantum -> cost:int -> bool
(** Charge one step's [cost] (plus the usual jitter draw) against a held
    quantum.  [false] when no quantum is held — the caller must then
    charge through {!step}.  Performs the same clock update and RNG
    draw the [step] fast path would. *)

val quantum_settle : quantum -> unit
(** Explicit barrier: revoke the current grant (if any) and fold accrued
    steps into the scheduler's counters.  Idempotent; safe from harness
    code.  Device-level synchronisation points (log appends, OCS
    boundaries) use this to force their charge through {!step}. *)

val quantum_enabled : t -> bool
(** Whether {!create} was given [~quantum:true] (the default). *)

val yield : t -> unit
(** [step t ~cost:0]. *)

val self : t -> int
(** Id of the currently executing simulated thread.
    @raise Invalid_argument outside of {!run}. *)

val now : t -> int
(** Virtual clock of the currently executing simulated thread — the hook
    point for history recorders, which bracket each operation with two
    reads of this clock.  A single field load; draws no randomness and
    charges no cycles, so instrumentation cannot perturb the simulation.
    @raise Invalid_argument outside of {!run}. *)

val in_thread : t -> bool
(** Whether a simulated thread is currently executing — i.e. whether
    {!now}/{!self} may be called.  Never raises; tracer clock closures
    use it to fall back to the device clock in harness code. *)

val current_id : t -> int
(** The executing thread's id, or [-1] outside of {!run}.  Never
    raises. *)

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Attach an event tracer: the run loop emits one
    {!Obs.Event.ctx_switch} each time the CPU passes to a different
    thread (the uncontended fast path never switches and emits
    nothing).  Reads no RNG and charges no cycles. *)

val elapsed_cycles : t -> int
(** Simulated duration so far: the maximum per-thread virtual clock. *)

val total_steps : t -> int
val thread_cycles : t -> int -> int
val thread_count : t -> int
val is_crashed : t -> bool

(** Simulated mutexes.  Blocking and hand-off are scheduling events; a
    direct FIFO hand-off transfers ownership to the longest-waiting
    thread, whose virtual clock is advanced to the release time (it could
    not have proceeded earlier). *)
module Mutex : sig
  type mutex

  val create : t -> mutex
  val id : mutex -> int

  val lock : mutex -> unit
  (** @raise Invalid_argument on recursive acquisition. *)

  val unlock : mutex -> unit
  (** @raise Invalid_argument if the caller does not hold the mutex. *)

  val owner : mutex -> int option
end
