type runnable =
  | Fresh of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation

type thread_state = Runnable of runnable | Running | Blocked | Done

type thread = {
  id : int;
  name : string;
  mutable vclock : int;
  mutable state : thread_state;
}

type t = {
  mutable threads : thread array;
  mutable pending_rev : thread list;
      (* threads spawned but not yet frozen into [threads]; newest
         first.  Buffering here makes N spawns O(N) total instead of the
         O(N^2) of repeated [Array.append]. *)
  mutable n_threads : int;
  rng : Sim_rng.t;
  cost_jitter : int;
  deterministic_slice : int;
  mutable fast_budget : int;
      (* remaining steps the current thread may charge inline before the
         next forced suspension; refilled to [deterministic_slice] each
         time the scheduler resumes a thread *)
  mutable runnable_count : int;
      (* threads in state [Runnable] or [Running]; the step fast path is
         legal exactly when this is 1 (the caller itself) *)
  mutable steps : int;
  mutable crash_at_step : int option;
  mutable crashed : bool;
  mutable current : int;  (* -1 when no thread is executing *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable started : bool;
  mutable next_mutex_id : int;
  mutable tracer : Obs.Tracer.t option;
  mutable last_resumed : int;
      (* thread id the run loop last handed the CPU to; context-switch
         events fire only when it changes, not on every loop pass *)
  quantum_on : bool;
  quantum : quantum;
}

(* A batched-execution quantum: permission for the device layer to
   charge up to [q_budget] uncontended steps straight onto the granted
   thread's clock without calling {!step} at all.  The scheduler grants
   one only when a charge through {!step} could not have suspended,
   drawn differently, or crashed — exactly one runnable thread, inline
   budget left, and the crash window clamped out of reach — so a
   quantum-charged burst is observationally identical to the same ops
   charged one [step] at a time (DESIGN.md, "Quantum accounting").

   [q_used] steps are accrued per-op onto [q_thread.vclock] (so clock
   reads mid-quantum are always settled) but folded into [t.steps] /
   [t.fast_budget] only at the next settle point: a {!step} entry, a
   mutex block or hand-off, thread exit, or an explicit barrier. *)
and quantum = {
  q_sched : t;
  q_rng : Sim_rng.t;  (* alias of [q_sched.rng]: same draw stream *)
  q_jitter : int;
  mutable q_thread : thread;
  mutable q_budget : int;  (* remaining grant; 0 = no quantum held *)
  mutable q_used : int;  (* charged but not yet folded into [t.steps] *)
}

type outcome =
  | Completed
  | Crashed of { at_step : int }
  | Deadlocked of { blocked : string list }

type mutex = {
  mid : int;
  sched : t;
  mutable owner : int option;
  waiters : (thread * (unit, unit) Effect.Deep.continuation) Queue.t;
}

type _ Effect.t +=
  | Step_eff : int -> unit Effect.t
  | Block_eff : mutex -> unit Effect.t

let default_slice = 4096

(* Placeholder for [q_thread] while no quantum is held.  Never charged:
   [q_budget] is 0 whenever it is installed. *)
let no_thread = { id = -1; name = "<no-quantum>"; vclock = 0; state = Done }

let create ?(seed = 42) ?(cost_jitter = 0) ?(deterministic_slice = default_slice)
    ?(quantum = true) () =
  if deterministic_slice < 0 then
    invalid_arg "Scheduler.create: deterministic_slice must be >= 0";
  let rng = Sim_rng.create ~seed in
  let rec t =
    {
      threads = [||];
      pending_rev = [];
      n_threads = 0;
      rng;
      cost_jitter;
      deterministic_slice;
      fast_budget = 0;
      runnable_count = 0;
      steps = 0;
      crash_at_step = None;
      crashed = false;
      current = -1;
      failure = None;
      started = false;
      next_mutex_id = 0;
      tracer = None;
      last_resumed = -1;
      quantum_on = quantum;
      quantum = q;
    }
  and q =
    {
      q_sched = t;
      q_rng = rng;
      q_jitter = cost_jitter;
      q_thread = no_thread;
      q_budget = 0;
      q_used = 0;
    }
  in
  t

let freeze t =
  if t.pending_rev <> [] then begin
    t.threads <-
      Array.append t.threads (Array.of_list (List.rev t.pending_rev));
    t.pending_rev <- []
  end

let thread_count t = t.n_threads

let spawn t ?name f =
  if t.started then invalid_arg "Scheduler.spawn: scheduler already ran";
  let id = t.n_threads in
  let name = Option.value name ~default:(Printf.sprintf "thread-%d" id) in
  let th = { id; name; vclock = 0; state = Runnable (Fresh f) } in
  t.pending_rev <- th :: t.pending_rev;
  t.n_threads <- t.n_threads + 1;
  t.runnable_count <- t.runnable_count + 1;
  id

let current_thread t =
  if t.current < 0 then
    invalid_arg "Scheduler: not inside a simulated thread";
  t.threads.(t.current)

let self t = (current_thread t).id

(* Non-raising views of the execution context, for tracer closures that
   must work both inside simulated threads and in out-of-thread harness
   code (setup, crash handling, recovery). *)
let in_thread t = t.current >= 0
let current_id t = t.current
let set_tracer t tr = t.tracer <- tr

(* Hook point for history recorders: the current thread's virtual clock,
   readable from inside the thread without freezing or scanning the
   thread table.  One field load — cheap enough to bracket every map
   operation with two calls.  Quantum charges write the thread's vclock
   per-op, so this read is settled even in the middle of a burst. *)
let now t = (current_thread t).vclock

(* ------------------------------------------------------------------ *)
(* Quantum grant / settle                                              *)

(* Revoke the quantum and fold its accrued steps into the scheduler
   counters.  Called at every point where scheduling state could change
   or be observed: [step] entry, thread exit (retc/exnc), mutex block
   and hand-off, and explicit device barriers.  Idempotent and cheap
   when no quantum is outstanding (two field tests). *)
let[@inline] settle_quantum q =
  q.q_budget <- 0;
  if q.q_used > 0 then begin
    let t = q.q_sched in
    t.steps <- t.steps + q.q_used;
    t.fast_budget <- t.fast_budget - q.q_used;
    q.q_used <- 0
  end

let quantum_settle q = settle_quantum q
let quantum_handle t = t.quantum
let quantum_enabled t = t.quantum_on

(* Charge one uncontended step against a held quantum: same clock
   update and the same jitter draw from the same stream as the [step]
   fast path, minus every per-op scheduler check (those were hoisted
   into the grant).  Returns false when no quantum is held, sending the
   caller down the ordinary [step] road. *)
let[@inline] quantum_try_charge q ~cost =
  let b = q.q_budget in
  if b <= 0 then false
  else begin
    let jitter =
      if q.q_jitter > 0 then Sim_rng.int q.q_rng (q.q_jitter + 1) else 0
    in
    q.q_thread.vclock <- q.q_thread.vclock + cost + jitter;
    q.q_budget <- b - 1;
    q.q_used <- q.q_used + 1;
    true
  end

(* Grant a quantum to the executing thread if a burst of inline charges
   is provably equivalent to charging through [step]: it must be the
   only runnable thread (no interleaving, no tie-break draws), within
   the deterministic slice (same forced-suspension cadence), and the
   budget is clamped so the step that would open the crash window — and
   every step after it — still goes through the effect handler. *)
let[@inline] maybe_grant t =
  if t.quantum_on && t.runnable_count = 1 && t.current >= 0 then begin
    let budget =
      match t.crash_at_step with
      | None -> t.fast_budget
      | Some c ->
          let d = c - t.steps - 1 in
          if d < t.fast_budget then d else t.fast_budget
    in
    if budget > 0 then begin
      let q = t.quantum in
      q.q_thread <- t.threads.(t.current);
      q.q_budget <- budget
    end
  end

(* A quantum handle that never grants: what a [Pmem] charges against
   before a scheduler is wired in.  Owned by a throwaway scheduler that
   never runs, so its budget stays 0 forever. *)
let null_quantum = (create ()).quantum

(* The hot path of the whole simulator: one call per simulated memory
   access.  When the calling thread is the only runnable one — every
   single-thread cell, and the tail of every multi-thread run — going
   through [Effect.perform] buys nothing: the handler would charge the
   cost and the scheduler loop would immediately re-pick the same thread
   (with no RNG draw, since there is no tie to break).  So in that case
   the accounting is done inline, with exactly the state updates and RNG
   draws the handler would have made, and the fiber never suspends.

   The fast path is skipped when the next step could trigger the crash
   window, so crash injection always goes through the handler, which
   abandons the continuation — observable crash states are unchanged. *)
let step t ~cost =
  settle_quantum t.quantum;
  let th = current_thread t in
  let crash_imminent =
    match t.crash_at_step with Some c -> t.steps + 1 >= c | None -> false
  in
  if t.runnable_count = 1 && t.fast_budget > 0 && not crash_imminent then begin
    let jitter =
      if t.cost_jitter > 0 then Sim_rng.int t.rng (t.cost_jitter + 1) else 0
    in
    th.vclock <- th.vclock + cost + jitter;
    t.steps <- t.steps + 1;
    t.fast_budget <- t.fast_budget - 1
  end
  else Effect.perform (Step_eff cost);
  (* Reaching here means the charge completed without a crash — offer
     the device layer a fresh burst (this also re-grants right after a
     resumption, since [perform] returns into this frame). *)
  maybe_grant t

let yield t = step t ~cost:0

let elapsed_cycles t =
  freeze t;
  Array.fold_left (fun acc th -> max acc th.vclock) 0 t.threads

let total_steps t = t.steps + t.quantum.q_used

let thread_cycles t id =
  freeze t;
  t.threads.(id).vclock

let is_crashed t = t.crashed

(* One deep handler is installed per fiber at its first resumption; every
   later [continue] re-enters it, so the closed-over [th] is always the
   fiber's own record. *)
let handler t th =
  {
    Effect.Deep.retc =
      (fun () ->
        settle_quantum t.quantum;
        th.state <- Done;
        t.runnable_count <- t.runnable_count - 1);
    exnc =
      (fun e ->
        settle_quantum t.quantum;
        th.state <- Done;
        t.runnable_count <- t.runnable_count - 1;
        if t.failure = None then
          t.failure <- Some (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step_eff cost ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let jitter =
                  if t.cost_jitter > 0 then Sim_rng.int t.rng (t.cost_jitter + 1)
                  else 0
                in
                th.vclock <- th.vclock + cost + jitter;
                t.steps <- t.steps + 1;
                match t.crash_at_step with
                | Some c when t.steps >= c ->
                    (* Abandon the continuation: the operation that would
                       have followed this step never executes, and neither
                       does anything else in any thread. *)
                    t.crashed <- true
                | _ -> th.state <- Runnable (Suspended k))
        | Block_eff m ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                (* Performed straight from [Mutex.lock], not via [step]:
                   an outstanding quantum must be settled here. *)
                settle_quantum t.quantum;
                th.state <- Blocked;
                t.runnable_count <- t.runnable_count - 1;
                Queue.add (th, k) m.waiters)
        | _ -> None);
  }

let pick t =
  let best = ref None in
  let ties = ref 0 in
  Array.iter
    (fun th ->
      match th.state with
      | Runnable _ -> begin
          match !best with
          | None ->
              best := Some th;
              ties := 1
          | Some b ->
              if th.vclock < b.vclock then begin
                best := Some th;
                ties := 1
              end
              else if th.vclock = b.vclock then begin
                (* Reservoir-sample among clock ties so that equal-time
                   threads interleave differently across seeds. *)
                incr ties;
                if Sim_rng.int t.rng !ties = 0 then best := Some th
              end
        end
      | Running | Blocked | Done -> ())
    t.threads;
  !best

let run ?crash_at_step t =
  if t.started then invalid_arg "Scheduler.run: scheduler already ran";
  t.started <- true;
  freeze t;
  t.crash_at_step <- crash_at_step;
  let rec loop () =
    if t.crashed then Crashed { at_step = t.steps }
    else
      match t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> begin
          match pick t with
          | None ->
              let blocked =
                Array.to_list t.threads
                |> List.filter (fun th -> th.state = Blocked)
                |> List.map (fun th -> th.name)
              in
              if blocked = [] then Completed else Deadlocked { blocked }
          | Some th ->
              t.current <- th.id;
              t.fast_budget <- t.deterministic_slice;
              (match t.tracer with
              | Some tr when th.id <> t.last_resumed ->
                  t.last_resumed <- th.id;
                  Obs.Tracer.emit tr ~code:Obs.Event.ctx_switch ~a:th.id
                    ~b:th.vclock
              | Some _ | None -> ());
              (match th.state with
              | Runnable r -> begin
                  th.state <- Running;
                  match r with
                  | Fresh f -> Effect.Deep.match_with f () (handler t th)
                  | Suspended k -> Effect.Deep.continue k ()
                end
              | (Running | Blocked | Done) as st ->
                  (* [pick] only ever returns [Runnable] threads; seeing
                     anything else means the thread table was mutated
                     behind the run loop's back (e.g. two schedulers
                     wired to one device). *)
                  Fmt.invalid_arg
                    "Scheduler.run: picked thread %d (%s) is %s, not \
                     runnable, at step %d (vclock %d)"
                    th.id th.name
                    (match st with
                    | Running -> "already running"
                    | Blocked -> "blocked"
                    | Done -> "done"
                    | Runnable _ -> "runnable")
                    t.steps th.vclock);
              t.current <- -1;
              loop ()
        end
  in
  loop ()

module Mutex = struct
  type nonrec mutex = mutex

  let create t =
    let mid = t.next_mutex_id in
    t.next_mutex_id <- mid + 1;
    { mid; sched = t; owner = None; waiters = Queue.create () }

  let id m = m.mid

  let lock m =
    let me = current_thread m.sched in
    match m.owner with
    | Some o when o = me.id ->
        Fmt.invalid_arg "Scheduler.Mutex.lock: %s already holds mutex %d"
          me.name m.mid
    | None -> m.owner <- Some me.id
    | Some _ ->
        (* Suspend; [unlock] hands ownership over before resuming us, so
           on return the mutex is ours. *)
        Effect.perform (Block_eff m)

  let unlock m =
    let me = current_thread m.sched in
    match m.owner with
    | Some o when o = me.id -> begin
        match Queue.take_opt m.waiters with
        | Some (th, k) ->
            (* The wake makes a second thread runnable: any quantum the
               releaser still holds is no longer uncontended — revoke it
               so its next charge goes back through the effect path. *)
            settle_quantum m.sched.quantum;
            m.owner <- Some th.id;
            (* The waiter could not have proceeded before the release, so
               its clock jumps forward to the release instant. *)
            th.vclock <- max th.vclock me.vclock;
            th.state <- Runnable (Suspended k);
            m.sched.runnable_count <- m.sched.runnable_count + 1
        | None -> m.owner <- None
      end
    | Some _ | None ->
        Fmt.invalid_arg "Scheduler.Mutex.unlock: %s does not hold mutex %d"
          me.name m.mid

  let owner m = m.owner
end
