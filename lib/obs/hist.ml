(* HDR-style log-bucketed histogram over non-negative ints.

   Bucket layout: values below 16 get exact unit buckets; above, each
   power-of-two octave [2^k, 2^(k+1)) is split into 16 linear
   sub-buckets, so a bucket spanning [lo, lo + w) has w / lo <= 1/16 —
   a worst-case relative error of 6.25% (< the 7% budget), and half
   that when the midpoint is reported.  The bucket index of a value v
   with top bit k >= 4 is

     (k - 4) * 16 + (v lsr (k - 4))

   where the second term lands in [16, 32), making the whole index
   continuous with the 16 unit buckets.  With 62-bit OCaml ints the
   top usable k is 61, so 944 buckets cover every value.

   [add] is allocation-free (tail recursion plus int-array stores), so
   the histogram can sit on the tracer emit path and the service latency
   sink without perturbing the zero-allocation contracts. *)

let bucket_count = 944

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { buckets = Array.make bucket_count 0; n = 0; sum = 0; vmin = 0; vmax = 0 }

let reset t =
  Array.fill t.buckets 0 bucket_count 0;
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- 0;
  t.vmax <- 0

(* Top-bit index for v >= 16, accumulator-passing so no ref cell is
   allocated on the emit path. *)
let rec top_bit v k = if v < 32 then k else top_bit (v lsr 1) (k + 1)

let index v = if v < 16 then v else ((top_bit v 4 - 4) * 16) + (v lsr (top_bit v 4 - 4))

let add t v =
  let v = if v < 0 then 0 else v in
  let b = if v < 16 then v else
    let k = top_bit v 4 in
    ((k - 4) * 16) + (v lsr (k - 4))
  in
  t.buckets.(b) <- t.buckets.(b) + 1;
  if t.n = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end;
  t.n <- t.n + 1;
  t.sum <- t.sum + v

let count t = t.n
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let is_empty t = t.n = 0
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

(* Inclusive lower bound and width of bucket [b]. *)
let bucket_lo b = if b < 16 then b else ((b land 15) + 16) lsl ((b lsr 4) - 1)
let bucket_width b = if b < 16 then 1 else 1 lsl ((b lsr 4) - 1)

(* Midpoint representative, clamped into the recorded [vmin, vmax] so
   the extremes stay exact. *)
let representative t b =
  let v = bucket_lo b + ((bucket_width b - 1) / 2) in
  if v < t.vmin then t.vmin else if v > t.vmax then t.vmax else v

(* Nearest-rank, matching Workload.Report.percentiles: rank =
   ceil(q * n), 1-based, clamped. *)
let quantile t q =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let rec find b acc =
      let acc = acc + t.buckets.(b) in
      if acc >= rank then b else find (b + 1) acc
    in
    representative t (find 0 0)
  end

let merge_into ~into t =
  Array.iteri
    (fun b c ->
      if c > 0 then into.buckets.(b) <- into.buckets.(b) + c)
    t.buckets;
  if t.n > 0 then begin
    if into.n = 0 then begin
      into.vmin <- t.vmin;
      into.vmax <- t.vmax
    end
    else begin
      if t.vmin < into.vmin then into.vmin <- t.vmin;
      if t.vmax > into.vmax then into.vmax <- t.vmax
    end;
    into.n <- into.n + t.n;
    into.sum <- into.sum + t.sum
  end

let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 32) t =
  if t.n = 0 then ""
  else begin
    let lo = index t.vmin and hi = index t.vmax in
    let nb = hi - lo + 1 in
    let width = if width < 1 then 1 else min width nb in
    let acc = Array.make width 0 in
    for b = lo to hi do
      let g = (b - lo) * width / nb in
      acc.(g) <- acc.(g) + t.buckets.(b)
    done;
    let peak = Array.fold_left max 1 acc in
    let buf = Buffer.create (width * 3) in
    Array.iter
      (fun c ->
        if c = 0 then Buffer.add_char buf '.'
        else Buffer.add_string buf levels.(min 7 ((c * 8 - 1) / peak)))
      acc;
    Buffer.contents buf
  end

let pp ppf t =
  if t.n = 0 then Fmt.pf ppf "(empty)"
  else
    Fmt.pf ppf "n=%d mean=%.1f min=%d p50=%d p99=%d p999=%d max=%d  %s" t.n
      (mean t) t.vmin (quantile t 0.5) (quantile t 0.99) (quantile t 0.999)
      t.vmax (sparkline t)

let to_json j t =
  Json.obj_open j;
  Json.key j "n";
  Json.int j t.n;
  Json.key j "sum";
  Json.int j t.sum;
  Json.key j "min";
  Json.int j t.vmin;
  Json.key j "max";
  Json.int j t.vmax;
  Json.key j "mean";
  Json.float j (mean t);
  Json.key j "p50";
  Json.int j (quantile t 0.5);
  Json.key j "p99";
  Json.int j (quantile t 0.99);
  Json.key j "p999";
  Json.int j (quantile t 0.999);
  Json.key j "sparkline";
  Json.str j (sparkline t);
  Json.obj_close j
