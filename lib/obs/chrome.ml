(* String-body escaping now lives in the shared JSON layer; the alias
   keeps this module's exporter self-contained for callers. *)
let escape = Json.escape

let default_thread_name tid =
  if tid < 0 then "device" else Printf.sprintf "thread-%d" tid

(* Chrome tids must be distinct non-negative ints: the device track is
   0 and simulated thread [t] is [t + 1]. *)
let chrome_tid tid = tid + 1

(* One tracer's events, emitted under process id [pid] via [event]: the
   body shared by the single-tracer and multi-tracer exports.  Span and
   counter state is per call, so distinct tracers never interfere. *)
let emit_track ?(thread_name = default_thread_name) ~pid ~event tr =
  (* Track-name metadata for every tid that appears in the ring. *)
  let seen = Hashtbl.create 16 in
  Tracer.iter tr (fun (e : Tracer.event) ->
      if not (Hashtbl.mem seen e.tid) then begin
        Hashtbl.add seen e.tid ();
        event
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
             pid (chrome_tid e.tid)
             (escape (thread_name e.tid)))
      end);
  (* Span state per chrome tid: open-depth guards against "E" events
     whose "B" was lost to ring wrap-around. *)
  let depth = Hashtbl.create 16 in
  let open_depth ct = try Hashtbl.find depth ct with Not_found -> 0 in
  let begin_span ct ts name =
    Hashtbl.replace depth ct (open_depth ct + 1);
    event
      (Printf.sprintf
         "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"name\":\"%s\"}" pid
         ct ts name)
  in
  let end_span ct ts =
    let d = open_depth ct in
    if d > 0 then begin
      Hashtbl.replace depth ct (d - 1);
      event
        (Printf.sprintf "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%d}" pid ct
           ts)
    end
  in
  let last_ts = Hashtbl.create 16 in
  let last_dirty = ref min_int in
  Tracer.iter tr (fun (e : Tracer.event) ->
      let ct = chrome_tid e.tid in
      Hashtbl.replace last_ts ct e.ts;
      let instant name =
        event
          (Printf.sprintf
             "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"name\":\"%s\",\"args\":{\"a\":%d,\"b\":%d}}"
             pid ct e.ts name e.a e.b)
      in
      let code = e.code in
      if code = Event.ocs_begin then
        begin_span ct e.ts (Printf.sprintf "ocs-%d" e.a)
      else if code = Event.ocs_commit then end_span ct e.ts
      else if code = Event.phase_begin then
        begin_span ct e.ts (escape (Event.phase_name e.a))
      else if code = Event.phase_end then end_span ct e.ts
      else instant (escape (Event.name code));
      if e.dirty <> !last_dirty then begin
        last_dirty := e.dirty;
        event
          (Printf.sprintf
             "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%d,\"name\":\"dirty \
              lines\",\"args\":{\"dirty\":%d}}"
             pid e.ts e.dirty)
      end);
  (* Close spans still open at the end of the ring. *)
  Hashtbl.iter
    (fun ct d ->
      let ts = try Hashtbl.find last_ts ct with Not_found -> 0 in
      for _ = 1 to d do
        event
          (Printf.sprintf "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%d}" pid
             ct ts)
      done)
    depth

let with_events buf f =
  let first = ref true in
  let event s =
    if !first then begin
      first := false;
      Buffer.add_string buf "\n  "
    end
    else Buffer.add_string buf ",\n  ";
    Buffer.add_string buf s
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  f event;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n"

let to_buffer ?thread_name buf tr =
  with_events buf (fun event -> emit_track ?thread_name ~pid:1 ~event tr)

let to_string ?thread_name tr =
  let buf = Buffer.create 65536 in
  to_buffer ?thread_name buf tr;
  Buffer.contents buf

let write_file ?thread_name file tr =
  let oc = open_out_bin file in
  Buffer.output_buffer oc
    (let buf = Buffer.create 65536 in
     to_buffer ?thread_name buf tr;
     buf);
  close_out oc

(* Multi-tracer export: each (label, tracer) pair becomes its own
   Perfetto process, so a sharded-service run renders as one named
   process group per shard with that shard's thread/device tracks
   inside it. *)
let to_buffer_multi ?thread_name buf tracks =
  with_events buf (fun event ->
      List.iteri
        (fun i (label, tr) ->
          let pid = i + 1 in
          event
            (Printf.sprintf
               "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
               pid (escape label));
          emit_track ?thread_name ~pid ~event tr)
        tracks)

let to_string_multi ?thread_name tracks =
  let buf = Buffer.create 65536 in
  to_buffer_multi ?thread_name buf tracks;
  Buffer.contents buf

let write_file_multi ?thread_name file tracks =
  let oc = open_out_bin file in
  Buffer.output_buffer oc
    (let buf = Buffer.create 65536 in
     to_buffer_multi ?thread_name buf tracks;
     buf);
  close_out oc
