let load = 0
let store = 1
let cas = 2
let flush = 3
let fence = 4
let writeback = 5
let crash = 6
let recover = 7
let ocs_begin = 8
let ocs_commit = 9
let log_append = 10
let dep = 11
let ctx_switch = 12
let phase_begin = 13
let phase_end = 14
let n_codes = 15

let names =
  [|
    "load"; "store"; "cas"; "flush"; "fence"; "writeback"; "crash"; "recover";
    "ocs_begin"; "ocs_commit"; "log_append"; "dep"; "ctx_switch";
    "phase_begin"; "phase_end";
  |]

let name code =
  if code >= 0 && code < n_codes then names.(code)
  else Printf.sprintf "event-%d" code

let phase_rescue = 0
let phase_log_scan = 1
let phase_rollback = 2
let phase_heap_gc = 3
let phase_audit = 4

(* Sub-phases of heap_gc: the GC brackets its mark and sweep passes
   separately so the tracer's per-phase registry and the GC's own
   mark/sweep cycle ledger can be cross-checked. *)
let phase_gc_mark = 5
let phase_gc_sweep = 6
let n_phases = 7

let phase_names =
  [|
    "rescue"; "log_scan"; "rollback"; "heap_gc"; "audit"; "gc_mark";
    "gc_sweep";
  |]

let phase_name p =
  if p >= 0 && p < n_phases then phase_names.(p)
  else Printf.sprintf "phase-%d" p

(* 6 bits of code, 12 bits of tid (stored as tid + 1 so the device
   context, tid -1, is representable), dirty sample in the rest.  All
   inputs are clamped rather than asserted: a trace header must never
   abort a run. *)

let tid_mask = 0xfff
let[@inline] pack ~code ~tid ~dirty =
  let tid = (tid + 1) land tid_mask in
  let dirty = if dirty < 0 then 0 else dirty in
  code lor (tid lsl 6) lor (dirty lsl 18)

let[@inline] code_of w = w land 0x3f
let[@inline] tid_of w = ((w lsr 6) land tid_mask) - 1
let[@inline] dirty_of w = w lsr 18
