(* Campaign artifacts: one manifest + one results document per CLI
   invocation, written under --artifact-dir with deterministic names
   (<subcommand>-manifest.json / <subcommand>-results.json).

   Byte-identity contract: both documents are pure functions of the
   campaign's inputs.  Nothing host- or schedule-dependent goes in
   except the [git]/[host] stamps (constant within a checkout/host), and
   run-only knobs — --jobs, --artifact-dir, --replay — are stripped from
   the stored replay argv, so re-running with a different fan-out or
   output directory produces byte-identical files.  The "jobs" field is
   the literal "any" for the same reason: campaign results are
   jobs-invariant by construction, and recording the fan-out width would
   break the identity that makes artifacts diffable. *)

let manifest_schema = "tsp-manifest-v1"
let results_schema = "tsp-results-v1"

let read_first_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with _ -> None

let git_describe =
  lazy
    (Option.value
       (read_first_line "git describe --always --dirty 2>/dev/null")
       ~default:"unknown")

let hostname = lazy (try Unix.gethostname () with _ -> "unknown")

(* Run-only flags that must not survive into the stored replay argv:
   they change where/how the campaign runs, never what it computes. *)
let run_only_flags = [ "--jobs"; "-j"; "--artifact-dir"; "--replay" ]

let replay_args argv =
  let is_run_only a = List.mem a run_only_flags in
  let has_run_only_prefix a =
    List.exists
      (fun f -> String.length a > String.length f
                && String.sub a 0 (String.length f + 1) = f ^ "=")
      run_only_flags
  in
  let rec go = function
    | [] -> []
    | a :: v :: rest when is_run_only a && not (String.length v > 0 && v.[0] = '-') ->
        ignore v;
        go rest
    | a :: rest when is_run_only a || has_run_only_prefix a -> go rest
    | a :: rest -> a :: go rest
  in
  match Array.to_list argv with [] -> [] | _exe :: rest -> go rest

let prologue j ~schema ~subcommand =
  Json.key j "schema";
  Json.str j schema;
  Json.key j "subcommand";
  Json.str j subcommand;
  Json.key j "git";
  Json.str j (Lazy.force git_describe);
  Json.key j "host";
  Json.str j (Lazy.force hostname);
  Json.key j "jobs";
  Json.str j "any"

let manifest ~subcommand ~replay ~config =
  let j = Json.create () in
  Json.obj_open j;
  prologue j ~schema:manifest_schema ~subcommand;
  Json.key j "replay";
  Json.arr_open j;
  List.iter (Json.str j) replay;
  Json.arr_close j;
  Json.key j "config";
  Json.obj_open j;
  config j;
  Json.obj_close j;
  Json.obj_close j;
  Json.contents j ^ "\n"

let results ~subcommand ~body =
  let j = Json.create () in
  Json.obj_open j;
  prologue j ~schema:results_schema ~subcommand;
  body j;
  Json.obj_close j;
  Json.contents j ^ "\n"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_string path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let write ~dir ~subcommand ~manifest ~results =
  mkdir_p dir;
  let mpath = Filename.concat dir (subcommand ^ "-manifest.json") in
  let rpath = Filename.concat dir (subcommand ^ "-results.json") in
  write_string mpath manifest;
  write_string rpath results;
  (mpath, rpath)

let replay_of_manifest path =
  match Json.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok doc -> (
      match Json.member "schema" doc with
      | Some (Json.Str s) when s = manifest_schema -> (
          match Json.member "replay" doc with
          | Some (Json.Arr items) -> (
              let strs =
                List.filter_map
                  (function Json.Str s -> Some s | _ -> None)
                  items
              in
              if List.length strs = List.length items then Ok strs
              else Error (path ^ ": non-string entry in \"replay\""))
          | _ -> Error (path ^ ": missing \"replay\" array"))
      | Some (Json.Str s) ->
          Error (Printf.sprintf "%s: schema %S is not %S" path s manifest_schema)
      | _ -> Error (path ^ ": missing \"schema\""))
