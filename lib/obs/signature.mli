(** Normalized failure signatures: a stable identity for "the same bug"
    observed across campaigns, seeds and crash points, so triage can
    dedupe a thousand-point campaign to its distinct failure modes.

    A signature hashes failure class x phase (fault model or campaign
    leg) x normalized invariant diagnosis x key-set shape — and nothing
    that varies per run: no seeds, no crash steps, no cycle counts.
    {!normalize} collapses every digit run in a diagnosis to ['#'], so
    per-key details hash identically; the key-set {e cardinality} is
    bucketed by {!shape_of_count} into none/single/few/many. *)

type t = private {
  klass : string;  (** failure class: raise, unrecoverable, invariant... *)
  phase : string;  (** fault model or campaign leg the failure surfaced in *)
  invariant : string;  (** normalized first failing check or error *)
  shape : string;  (** bucketed failing-key cardinality *)
  hash : string;  (** 16 hex digits, FNV-1a over the four fields *)
}

val make : klass:string -> phase:string -> invariant:string -> shape:string -> t
(** Builds the signature from the four components, normalizing each
    ({!normalize} is idempotent, so feeding a signature's own fields
    back yields the identical signature). *)

val normalize : string -> string
(** Collapse every maximal digit run to ['#'].  Idempotent. *)

val shape_of_count : int -> string
(** [none] (<= 0), [single], [few] (2-4) or [many]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val to_json : Json.t -> t -> unit
(** Emit [{hash, class, phase, invariant, shape}]. *)
