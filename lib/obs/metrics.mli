(** Derived metrics over a tracer's online counters.

    Computed from the exact per-code accumulators, so they remain valid
    after ring wrap-around.  The per-commit ratios are the dynamic
    analogue of the static "psync complexity" of the fence-complexity
    literature: how many fences / flushes / undo-log appends each
    committed OCS cost at runtime.

    Commit-free designs (the non-blocking skiplist, NVTraverse, the
    delay-free recoverable-CAS map) never open an OCS, so their
    per-commit ratios are undefined.  The per-op ratios divide by the
    number of completed map operations instead — the caller supplies
    that count, since the tracer cannot see map-level operation
    boundaries. *)

type t = {
  loads : int;
  stores : int;
  cas : int;
  flushes : int;
  fences : int;
  writebacks : int;
  log_appends : int;
  ocs_begins : int;
  ocs_commits : int;
  completed_ops : int;
      (** Completed map operations, as supplied by the caller of
          {!of_tracer}; 0 when unknown. *)
  deps : int;
  ctx_switches : int;
  crashes : int;
  fences_per_commit : float;
  flushes_per_commit : float;
  appends_per_commit : float;
  fences_per_op : float;
      (** Fences per completed map operation; 0 when [completed_ops] is 0. *)
  flushes_per_op : float;
  appends_per_op : float;
  op_cycles : (string * int) list;
      (** Charged cycles per traced op code (load/store/cas/flush/fence),
          feeding the same categories as [Nvm.Stats.pp_breakdown]. *)
  phase_cycles : (string * int) list;
      (** Recovery cycles per phase, in {!Event} phase order. *)
}

val of_tracer : ?completed_ops:int -> Tracer.t -> t
(** [of_tracer ?completed_ops tr] derives metrics from [tr]'s counters.
    [completed_ops] is the number of map operations the traced run
    completed (e.g. [iterations_done * ops-per-iteration]); when given
    and nonzero, the per-op psync ratios are populated.  {!pp} prints
    whichever psync denominator is nonzero, so commit-free variants
    report per-op rates instead of silence. *)

val pp : t Fmt.t

val to_json : Json.t -> t -> unit
(** Emit every counter, both psync rate families and the per-code /
    per-phase cycle maps as one object — the ["metrics"] member of a
    campaign results artifact. *)
