(** Derived metrics over a tracer's online counters.

    Computed from the exact per-code accumulators, so they remain valid
    after ring wrap-around.  The per-commit ratios are the dynamic
    analogue of the static "psync complexity" of the fence-complexity
    literature: how many fences / flushes / undo-log appends each
    committed OCS cost at runtime. *)

type t = {
  loads : int;
  stores : int;
  cas : int;
  flushes : int;
  fences : int;
  writebacks : int;
  log_appends : int;
  ocs_begins : int;
  ocs_commits : int;
  deps : int;
  ctx_switches : int;
  crashes : int;
  fences_per_commit : float;
  flushes_per_commit : float;
  appends_per_commit : float;
  op_cycles : (string * int) list;
      (** Charged cycles per traced op code (load/store/cas/flush/fence),
          feeding the same categories as [Nvm.Stats.pp_breakdown]. *)
  phase_cycles : (string * int) list;
      (** Recovery cycles per phase, in {!Event} phase order. *)
}

val of_tracer : Tracer.t -> t
val pp : t Fmt.t
