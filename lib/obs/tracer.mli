(** Packed-integer event ring with online exposure accounting.

    The tracer is designed to be interposed on the simulator's hottest
    paths with two guarantees:

    - {b Zero overhead when off.}  Instrumented call sites hold a
      [Tracer.t option] (or an [option ref]) and do nothing but a match
      when it is [None]; the disabled paths stay allocation-free.
    - {b Deterministic when on.}  {!emit} only reads the three
      registered closures (virtual clock, thread id, dirty-line count)
      and writes into preallocated int arrays: no RNG draws, no
      simulated cycles charged, no heap allocation.  A traced run is
      sim-cycle byte-identical to an untraced one.

    Events land in a fixed-capacity ring (four ints per slot); once it
    wraps, the oldest events are overwritten.  Every summary statistic
    — per-code counts and cycle sums, the persistence-exposure
    envelope, per-phase recovery cycles — is accumulated online at emit
    time and therefore stays exact across wrap-around; only the raw
    event stream handed to the exporter is bounded by the ring. *)

type t

val create : ?ring_cap:int -> ?budget_lines:int -> unit -> t
(** [ring_cap] (default 65536) is rounded up to at least 8 slots.
    [budget_lines] is the WSP rescue budget in cache lines used by the
    exposure accounting; negative (the default) means "no budget",
    reported as unlimited headroom. *)

(** {1 Context closures}

    All three default to constant functions ([0], [-1] and [0]); the
    harness rewires them once per run. *)

val set_clock : t -> (unit -> int) -> unit
val set_tid : t -> (unit -> int) -> unit
val set_dirty : t -> (unit -> int) -> unit

(** {1 Emission} *)

val emit : t -> code:int -> a:int -> b:int -> unit
val phase_begin : t -> phase:int -> unit

val phase_end : t -> phase:int -> unit
(** Accumulates clock-delta cycles for [phase] since the matching
    {!phase_begin} and emits a {!Event.phase_end} carrying the delta.
    Unmatched ends are ignored. *)

(** {1 Ring access} *)

val capacity : t -> int

val emitted : t -> int
(** Total events ever emitted. *)

val length : t -> int
(** Events still in the ring. *)

val dropped : t -> int
(** Events overwritten by wrap-around. *)

type event = {
  code : int;
  tid : int;
  dirty : int;
  ts : int;
  a : int;
  b : int;
}

val nth : t -> int -> event
(** [nth t 0] is the oldest surviving event.  Allocates; export-path
    only. *)

val iter : t -> (event -> unit) -> unit

(** {1 Online summaries} *)

val count : t -> int -> int
(** Emitted events with the given code (exact across wrap). *)

val cycles_of : t -> int -> int
(** Sum of the [b] argument for the given code — the op codes carry
    their charged cycle cost there. *)

val phase_cycles : t -> int -> int

type exposure = {
  samples : int;  (** Events contributing a dirty-line sample. *)
  peak_dirty : int;
  mean_dirty : float;
  last_dirty : int;
  budget_lines : int;  (** Negative when no budget was configured. *)
  duration : int;  (** Span of the monotone clock envelope. *)
  time_above_budget : int;
      (** Cycles (within [duration]) spent with more dirty lines than
          the budget could rescue — the paper's sufficiency margin,
          violated. *)
  dirty_hist : Hist.t;
      (** Per-sample dirty-lines distribution (every {!emit} records
          one sample), for p50/p99/p999 exposure quantiles; recording
          is allocation-free, so the no-alloc emit contract holds. *)
}

val exposure : t -> exposure

val dirty_hist : t -> Hist.t
(** The live histogram behind [exposure.dirty_hist]. *)

val pp_exposure : exposure Fmt.t
