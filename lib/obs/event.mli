(** Event vocabulary for the packed trace ring.

    Every trace event is four OCaml ints: a packed header word (event
    code, emitting thread, dirty-lines-at-risk sample), a virtual-clock
    timestamp, and two event-specific argument words.  The packing is
    allocation-free on both ends so the tracer can sit on the simulator
    hot paths without perturbing the run (see {!Tracer}). *)

(** {1 Event codes} *)

val load : int
val store : int
val cas : int
val flush : int
val fence : int
val writeback : int

val crash : int
(** [a] is the {!Nvm.Fault_model} tag: 0 full rescue, 1 full discard,
    2 partial rescue, 3 torn lines, 4 bit rot. *)

val recover : int

val ocs_begin : int
(** [a] is the OCS id. *)

val ocs_commit : int
(** [a] is the OCS id, [b] the commit log seq. *)

val log_append : int
(** [a] is the undo-log sequence number. *)

val dep : int
(** [a] is the OCS depended upon, [b] the mutex id. *)

val ctx_switch : int
(** [a] is the thread resumed. *)

val phase_begin : int
(** [a] is the recovery-phase id. *)

val phase_end : int
(** [a] is the phase id, [b] the cycles spent. *)

val n_codes : int
val name : int -> string

(** {1 Recovery phase ids} (the [a] argument of phase events) *)

val phase_rescue : int
val phase_log_scan : int
val phase_rollback : int
val phase_heap_gc : int
val phase_audit : int

val phase_gc_mark : int
(** Sub-phase of [phase_heap_gc]: the mark traversal.  Bracketed by the
    GC itself so the tracer's registry agrees with the GC's own
    mark/sweep cycle split. *)

val phase_gc_sweep : int
(** Sub-phase of [phase_heap_gc]: the linear sweep + allocator rebuild. *)

val n_phases : int
val phase_name : int -> string

(** {1 Header-word packing}

    Bits 0..5 hold the code, bits 6..17 hold [tid + 1] (so the
    out-of-thread device context, tid [-1], packs as 0), and the
    remaining high bits hold the dirty-line sample. *)

val pack : code:int -> tid:int -> dirty:int -> int
val code_of : int -> int
val tid_of : int -> int
val dirty_of : int -> int
