(** Campaign triage artifacts: a per-invocation {e manifest} (what ran:
    subcommand, resolved config, replay argv, git/host stamps) and a
    {e results} document (what happened: outcome rows, verdict ledgers,
    psync rates, availability windows), written under [--artifact-dir]
    as [<subcommand>-manifest.json] / [<subcommand>-results.json].

    Byte-identity contract: both documents are pure functions of the
    campaign inputs.  Run-only knobs ([--jobs], [--artifact-dir],
    [--replay]) are stripped from the stored argv and the ["jobs"]
    field is the literal ["any"] — campaign results are jobs-invariant
    by construction, and recording the fan-out width would break the
    byte-identity that makes artifacts diffable across hosts and job
    counts.  The [git]/[host] stamps are constant within a
    checkout/host.  No timestamps anywhere. *)

val manifest_schema : string
(** ["tsp-manifest-v1"]. *)

val results_schema : string
(** ["tsp-results-v1"]. *)

val manifest :
  subcommand:string -> replay:string list -> config:(Json.t -> unit) -> string
(** Render a manifest document.  [replay] is the argv (without the
    executable) that re-runs this exact campaign; [config] writes the
    resolved configuration members into the open ["config"] object. *)

val results : subcommand:string -> body:(Json.t -> unit) -> string
(** Render a results document; [body] writes the campaign-specific
    members after the shared prologue. *)

val write :
  dir:string -> subcommand:string -> manifest:string -> results:string ->
  string * string
(** Create [dir] (and parents) if needed, write both documents, return
    [(manifest_path, results_path)]. *)

val replay_args : string array -> string list
(** The replay argv derived from a raw [Sys.argv]-shaped vector: drops
    the executable name and every run-only flag ([--jobs]/[-j],
    [--artifact-dir], [--replay], in both ["--flag v"] and ["--flag=v"]
    forms). *)

val replay_of_manifest : string -> (string list, string) result
(** Read a manifest back and return its stored replay argv; [Error] on
    unreadable files, wrong schema or a malformed ["replay"] array. *)
