(** Allocation-free log-bucketed (HDR-style) histogram over
    non-negative ints, for latency and exposure distributions.

    Values below 16 get exact unit buckets; each power-of-two octave
    above is split into 16 linear sub-buckets, bounding the relative
    bucket error at 6.25% (within the 1.07x budget) — and the reported
    quantile is the bucket midpoint clamped into the recorded
    [min, max], halving that again.  Exact count and sum are kept
    alongside, so means are not subject to bucketing at all.

    {!add} performs no heap allocation (guarded by a [Gc.minor_words]
    regression), so a histogram can sit on the tracer emit path and the
    service latency sink without breaking the zero-allocation or
    sim-cycle-identity contracts. *)

type t

val create : unit -> t
(** 944 buckets cover every non-negative OCaml int. *)

val add : t -> int -> unit
(** Record one value; negatives are clamped to 0.  Allocation-free. *)

val reset : t -> unit

val merge_into : into:t -> t -> unit
(** Accumulate [t]'s buckets and exact stats into [into]. *)

(** {1 Exact statistics} *)

val count : t -> int
val sum : t -> int
val mean : t -> float

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
val is_empty : t -> bool

(** {1 Bucketed statistics} *)

val quantile : t -> float -> int
(** Nearest-rank quantile (the {!Workload.Report.percentiles}
    convention: rank [ceil (q * n)], 1-based), reported as the owning
    bucket's midpoint clamped into [min, max]; 0 when empty.  Relative
    error <= 6.25%. *)

val sparkline : ?width:int -> t -> string
(** Log-bucket shape compressed to at most [width] (default 32) cells,
    eight UTF-8 block levels scaled to the peak bucket; ['.'] for empty
    cells, [""] when the histogram is empty. *)

val pp : t Fmt.t
(** One line: n, mean, min, p50/p99/p999, max and the sparkline. *)

val to_json : Json.t -> t -> unit
(** Emit [{n, sum, min, max, mean, p50, p99, p999, sparkline}]. *)
