type t = {
  loads : int;
  stores : int;
  cas : int;
  flushes : int;
  fences : int;
  writebacks : int;
  log_appends : int;
  ocs_begins : int;
  ocs_commits : int;
  completed_ops : int;
  deps : int;
  ctx_switches : int;
  crashes : int;
  fences_per_commit : float;
  flushes_per_commit : float;
  appends_per_commit : float;
  fences_per_op : float;
  flushes_per_op : float;
  appends_per_op : float;
  op_cycles : (string * int) list;
  phase_cycles : (string * int) list;
}

let of_tracer ?(completed_ops = 0) tr =
  let c = Tracer.count tr in
  let commits = c Event.ocs_commit in
  let per n = if commits = 0 then 0. else float n /. float commits in
  let per_op n =
    if completed_ops = 0 then 0. else float n /. float completed_ops
  in
  {
    loads = c Event.load;
    stores = c Event.store;
    cas = c Event.cas;
    flushes = c Event.flush;
    fences = c Event.fence;
    writebacks = c Event.writeback;
    log_appends = c Event.log_append;
    ocs_begins = c Event.ocs_begin;
    ocs_commits = commits;
    completed_ops;
    deps = c Event.dep;
    ctx_switches = c Event.ctx_switch;
    crashes = c Event.crash;
    fences_per_commit = per (c Event.fence);
    flushes_per_commit = per (c Event.flush);
    appends_per_commit = per (c Event.log_append);
    fences_per_op = per_op (c Event.fence);
    flushes_per_op = per_op (c Event.flush);
    appends_per_op = per_op (c Event.log_append);
    op_cycles =
      List.map
        (fun code -> (Event.name code, Tracer.cycles_of tr code))
        [ Event.load; Event.store; Event.cas; Event.flush; Event.fence ];
    phase_cycles =
      List.init Event.n_phases (fun p ->
          (Event.phase_name p, Tracer.phase_cycles tr p));
  }

let to_json j m =
  Json.obj_open j;
  List.iter
    (fun (k, v) ->
      Json.key j k;
      Json.int j v)
    [
      ("loads", m.loads); ("stores", m.stores); ("cas", m.cas);
      ("flushes", m.flushes); ("fences", m.fences);
      ("writebacks", m.writebacks); ("log_appends", m.log_appends);
      ("ocs_begins", m.ocs_begins); ("ocs_commits", m.ocs_commits);
      ("completed_ops", m.completed_ops); ("deps", m.deps);
      ("ctx_switches", m.ctx_switches); ("crashes", m.crashes);
    ];
  List.iter
    (fun (k, v) ->
      Json.key j k;
      Json.float j v)
    [
      ("fences_per_commit", m.fences_per_commit);
      ("flushes_per_commit", m.flushes_per_commit);
      ("appends_per_commit", m.appends_per_commit);
      ("fences_per_op", m.fences_per_op);
      ("flushes_per_op", m.flushes_per_op);
      ("appends_per_op", m.appends_per_op);
    ];
  let assoc name kvs =
    Json.key j name;
    Json.obj_open j;
    List.iter
      (fun (k, v) ->
        Json.key j k;
        Json.int j v)
      kvs;
    Json.obj_close j
  in
  assoc "op_cycles" m.op_cycles;
  assoc "phase_cycles" m.phase_cycles;
  Json.obj_close j

let pp ppf m =
  Fmt.pf ppf "@[<v>traced ops:@ ";
  Fmt.pf ppf "  loads %d  stores %d  cas %d  flushes %d  fences %d@ " m.loads
    m.stores m.cas m.flushes m.fences;
  Fmt.pf ppf "  writebacks %d  log appends %d  deps %d  ctx switches %d@ "
    m.writebacks m.log_appends m.deps m.ctx_switches;
  Fmt.pf ppf "  ocs begun %d  committed %d  crashes %d@ " m.ocs_begins
    m.ocs_commits m.crashes;
  if m.ocs_commits > 0 then
    Fmt.pf ppf
      "  psync complexity: %.2f fences, %.2f flushes, %.2f log appends per \
       commit@ "
      m.fences_per_commit m.flushes_per_commit m.appends_per_commit;
  if m.completed_ops > 0 then
    Fmt.pf ppf
      "  psync complexity: %.2f fences, %.2f flushes, %.2f log appends per \
       completed op (%d ops)@ "
      m.fences_per_op m.flushes_per_op m.appends_per_op m.completed_ops;
  Fmt.pf ppf "traced op cycles:";
  List.iter
    (fun (name, cy) -> if cy > 0 then Fmt.pf ppf "@   %-8s %10d" name cy)
    m.op_cycles;
  let recovered = List.exists (fun (_, cy) -> cy > 0) m.phase_cycles in
  if recovered then begin
    Fmt.pf ppf "@ recovery phase cycles:";
    List.iter
      (fun (name, cy) -> if cy > 0 then Fmt.pf ppf "@   %-8s %10d" name cy)
      m.phase_cycles
  end;
  Fmt.pf ppf "@]"
