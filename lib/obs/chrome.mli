(** Chrome trace-event JSON export.

    Serialises the surviving ring contents into the Trace Event Format
    understood by Perfetto and [chrome://tracing]: one named track per
    simulated thread plus a "device" track (tid 0) for out-of-thread
    events — crashes, device recovery, and the recovery phases, which
    render as nested spans.  OCS begin/commit render as spans on their
    thread's track, op events as instants, and the dirty-line sample
    carried by every event header feeds a "dirty lines" counter track.

    Timestamps are the simulator's virtual clocks verbatim (reported as
    microseconds to the viewer).  Worker tracks run on their thread's
    vclock and the device track on the out-of-scheduler device clock;
    tracks are therefore internally ordered but mutually unsynchronised,
    exactly like the simulation itself.

    Ring wrap-around can orphan the "end" half of a span whose "begin"
    was overwritten; the exporter keeps a per-track open-span depth and
    drops unmatched ends, then closes any still-open spans at the last
    timestamp, so the output is always well-formed. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control
    characters); the result is the contents between the quotes. *)

val to_buffer : ?thread_name:(int -> string) -> Buffer.t -> Tracer.t -> unit
(** [thread_name] maps a simulated thread id (or [-1] for the device
    track) to a display name; names are escaped by the exporter. *)

val to_string : ?thread_name:(int -> string) -> Tracer.t -> string
val write_file : ?thread_name:(int -> string) -> string -> Tracer.t -> unit
