(** Chrome trace-event JSON export.

    Serialises the surviving ring contents into the Trace Event Format
    understood by Perfetto and [chrome://tracing]: one named track per
    simulated thread plus a "device" track (tid 0) for out-of-thread
    events — crashes, device recovery, and the recovery phases, which
    render as nested spans.  OCS begin/commit render as spans on their
    thread's track, op events as instants, and the dirty-line sample
    carried by every event header feeds a "dirty lines" counter track.

    Timestamps are the simulator's virtual clocks verbatim (reported as
    microseconds to the viewer).  Worker tracks run on their thread's
    vclock and the device track on the out-of-scheduler device clock;
    tracks are therefore internally ordered but mutually unsynchronised,
    exactly like the simulation itself.

    Ring wrap-around can orphan the "end" half of a span whose "begin"
    was overwritten; the exporter keeps a per-track open-span depth and
    drops unmatched ends, then closes any still-open spans at the last
    timestamp, so the output is always well-formed. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control
    characters); the result is the contents between the quotes. *)

val to_buffer : ?thread_name:(int -> string) -> Buffer.t -> Tracer.t -> unit
(** [thread_name] maps a simulated thread id (or [-1] for the device
    track) to a display name; names are escaped by the exporter. *)

val to_string : ?thread_name:(int -> string) -> Tracer.t -> string
val write_file : ?thread_name:(int -> string) -> string -> Tracer.t -> unit

(** {1 Multi-tracer export}

    A sharded run carries one tracer per shard (the context closures a
    tracer registers are per-ring, so shards must not share one).  The
    [_multi] exporters merge the rings into a single trace in which each
    [(label, tracer)] pair is its own process — Perfetto renders one
    named group per shard, with that shard's thread and device tracks
    (and dirty-line counter) inside it.  [thread_name] applies within
    every shard. *)

val to_buffer_multi :
  ?thread_name:(int -> string) -> Buffer.t -> (string * Tracer.t) list -> unit

val to_string_multi :
  ?thread_name:(int -> string) -> (string * Tracer.t) list -> string

val write_file_multi :
  ?thread_name:(int -> string) -> string -> (string * Tracer.t) list -> unit
