(* Four ints per slot: packed header (code/tid/dirty), timestamp, two
   argument words.  [head] counts every event ever emitted, so the slot
   index is [head mod cap] and wrap-around needs no extra state.

   Everything reported by the summary accessors is accumulated at emit
   time from the values being written, never recovered from the ring:
   wrap-around loses raw events but no accounting.  The exposure
   envelope integrates dirty-lines over a monotone max-so-far clock
   (cross-thread virtual clocks are not globally ordered; the envelope
   only advances when a sample's timestamp exceeds every prior one,
   which keeps the time integral well-defined and deterministic). *)

type t = {
  ring : int array;
  cap : int;
  mutable head : int;  (* total events emitted *)
  mutable clock : unit -> int;
  mutable tid : unit -> int;
  mutable dirty : unit -> int;
  counts : int array;  (* per event code *)
  cycle_sums : int array;  (* per event code, sum of [b] *)
  (* exposure accounting *)
  budget_lines : int;
  mutable peak_dirty : int;
  mutable dirty_sum : int;
  mutable samples : int;
  mutable last_dirty : int;
  mutable env_clock : int;  (* max timestamp seen so far *)
  mutable env_started : bool;
  mutable env_t0 : int;
  mutable env_dirty : int;  (* dirty level at env_clock *)
  mutable time_above : int;
  dirty_hist : Hist.t;  (* per-sample dirty-lines distribution *)
  (* recovery phases *)
  phase_cycles : int array;
  phase_t0 : int array;  (* -1 when the phase is not open *)
}

let default_clock () = 0
let default_tid () = -1
let default_dirty () = 0

let create ?(ring_cap = 65536) ?(budget_lines = -1) () =
  let cap = max 8 ring_cap in
  {
    ring = Array.make (cap * 4) 0;
    cap;
    head = 0;
    clock = default_clock;
    tid = default_tid;
    dirty = default_dirty;
    counts = Array.make Event.n_codes 0;
    cycle_sums = Array.make Event.n_codes 0;
    budget_lines;
    peak_dirty = 0;
    dirty_sum = 0;
    samples = 0;
    last_dirty = 0;
    env_clock = 0;
    env_started = false;
    env_t0 = 0;
    env_dirty = 0;
    time_above = 0;
    dirty_hist = Hist.create ();
    phase_cycles = Array.make Event.n_phases 0;
    phase_t0 = Array.make Event.n_phases (-1);
  }

let set_clock t f = t.clock <- f
let set_tid t f = t.tid <- f
let set_dirty t f = t.dirty <- f

let emit t ~code ~a ~b =
  let ts = t.clock () in
  let tid = t.tid () in
  let dirty = t.dirty () in
  let base = t.head mod t.cap * 4 in
  t.ring.(base) <- Event.pack ~code ~tid ~dirty;
  t.ring.(base + 1) <- ts;
  t.ring.(base + 2) <- a;
  t.ring.(base + 3) <- b;
  t.head <- t.head + 1;
  t.counts.(code) <- t.counts.(code) + 1;
  t.cycle_sums.(code) <- t.cycle_sums.(code) + b;
  (* Exposure: integrate the previous dirty level over the envelope
     advance, then take the new sample. *)
  if dirty > t.peak_dirty then t.peak_dirty <- dirty;
  Hist.add t.dirty_hist dirty;
  t.dirty_sum <- t.dirty_sum + dirty;
  t.samples <- t.samples + 1;
  t.last_dirty <- dirty;
  if not t.env_started then begin
    t.env_started <- true;
    t.env_t0 <- ts;
    t.env_clock <- ts;
    t.env_dirty <- dirty
  end
  else if ts > t.env_clock then begin
    if t.budget_lines >= 0 && t.env_dirty > t.budget_lines then
      t.time_above <- t.time_above + (ts - t.env_clock);
    t.env_clock <- ts;
    t.env_dirty <- dirty
  end
  else if ts = t.env_clock then t.env_dirty <- dirty

let phase_begin t ~phase =
  t.phase_t0.(phase) <- t.clock ();
  emit t ~code:Event.phase_begin ~a:phase ~b:0

let phase_end t ~phase =
  let t0 = t.phase_t0.(phase) in
  if t0 >= 0 then begin
    let cycles = t.clock () - t0 in
    t.phase_t0.(phase) <- -1;
    t.phase_cycles.(phase) <- t.phase_cycles.(phase) + cycles;
    emit t ~code:Event.phase_end ~a:phase ~b:cycles
  end

let capacity t = t.cap
let emitted t = t.head
let length t = min t.head t.cap
let dropped t = max 0 (t.head - t.cap)

type event = {
  code : int;
  tid : int;
  dirty : int;
  ts : int;
  a : int;
  b : int;
}

let nth t i =
  let live = length t in
  if i < 0 || i >= live then invalid_arg "Tracer.nth";
  let base = (t.head - live + i) mod t.cap * 4 in
  let w = t.ring.(base) in
  {
    code = Event.code_of w;
    tid = Event.tid_of w;
    dirty = Event.dirty_of w;
    ts = t.ring.(base + 1);
    a = t.ring.(base + 2);
    b = t.ring.(base + 3);
  }

let iter t f =
  for i = 0 to length t - 1 do
    f (nth t i)
  done

let count t code = t.counts.(code)
let cycles_of t code = t.cycle_sums.(code)
let phase_cycles t phase = t.phase_cycles.(phase)

type exposure = {
  samples : int;
  peak_dirty : int;
  mean_dirty : float;
  last_dirty : int;
  budget_lines : int;
  duration : int;
  time_above_budget : int;
  dirty_hist : Hist.t;
}

let dirty_hist (t : t) = t.dirty_hist

let exposure (t : t) =
  {
    samples = t.samples;
    peak_dirty = t.peak_dirty;
    mean_dirty =
      (if t.samples = 0 then 0. else float t.dirty_sum /. float t.samples);
    last_dirty = t.last_dirty;
    budget_lines = t.budget_lines;
    duration = (if t.env_started then t.env_clock - t.env_t0 else 0);
    time_above_budget = t.time_above;
    dirty_hist = t.dirty_hist;
  }

let pp_exposure ppf e =
  Fmt.pf ppf "@[<v>persistence exposure (%d samples over %d cycles):@ "
    e.samples e.duration;
  Fmt.pf ppf "  peak dirty lines    %8d@ " e.peak_dirty;
  Fmt.pf ppf "  mean dirty lines    %10.1f@ " e.mean_dirty;
  if not (Hist.is_empty e.dirty_hist) then
    Fmt.pf ppf "  dirty p50/p99/p999  %8d / %d / %d  %s@ "
      (Hist.quantile e.dirty_hist 0.5)
      (Hist.quantile e.dirty_hist 0.99)
      (Hist.quantile e.dirty_hist 0.999)
      (Hist.sparkline e.dirty_hist);
  Fmt.pf ppf "  at end of trace     %8d@ " e.last_dirty;
  if e.budget_lines < 0 then
    Fmt.pf ppf "  WSP rescue budget   unlimited (no budget configured)@]"
  else begin
    Fmt.pf ppf "  WSP rescue budget   %8d lines@ " e.budget_lines;
    let headroom =
      if e.peak_dirty = 0 then Float.infinity
      else float e.budget_lines /. float e.peak_dirty
    in
    Fmt.pf ppf "  budget headroom     %10.1fx at peak@ " headroom;
    Fmt.pf ppf "  time above budget   %8d cycles (%.1f%% of trace)@]"
      e.time_above_budget
      (if e.duration = 0 then 0.
       else 100. *. float e.time_above_budget /. float e.duration)
  end
