(** The one JSON writer (and minimal reader) shared by every emitter in
    the tree: Chrome traces, bench snapshots and the campaign
    manifest/results artifacts.

    The writer is a thin layer over a {!Buffer.t}: besides the buffer it
    keeps three scalar fields, and the between-element comma state lives
    in a single int bitmask indexed by nesting depth — emitting a
    well-formed document costs no allocation beyond the buffer itself.
    Nesting is limited to 60 levels (one bit per depth).

    Emission order is the document order; the caller is responsible for
    alternating {!key}/value inside objects.  All output is
    deterministic: no wall-clock, no hash order, no locale. *)

type t

val create : ?size:int -> unit -> t
(** Fresh writer over a buffer of [size] (default 4096) bytes. *)

val contents : t -> string
val to_channel : out_channel -> t -> unit

(** {1 Structure} *)

val obj_open : t -> unit
val obj_close : t -> unit
val arr_open : t -> unit
val arr_close : t -> unit

val key : t -> string -> unit
(** Object member name; must be followed by exactly one value. *)

(** {1 Values} *)

val str : t -> string -> unit
val int : t -> int -> unit

val float : ?dp:int -> t -> float -> unit
(** Fixed-point with [dp] (default 4) decimals; non-finite values emit
    [null] (JSON has no NaN literal, and the strict snapshot checker
    rejects bare [nan] tokens). *)

val bool : t -> bool -> unit
val null : t -> unit

val raw : t -> string -> unit
(** Append [s] verbatim as one value — for pre-rendered tokens.  The
    caller guarantees it is valid JSON. *)

(** {1 Helpers} *)

val escape : string -> string
(** JSON string-body escaping (['"'], backslash, control characters);
    shared with {!Chrome} and the bench emitter. *)

val float_repr : ?dp:int -> float -> string
(** The rendered token {!float} would emit ([null] when non-finite). *)

(** {1 Reader}

    A small strict parser for reading our own artifacts back (the
    [--replay] path).  Numbers are floats; object member order is
    preserved. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
val parse_file : string -> (value, string) result

val member : string -> value -> value option
(** First member of that name of an [Obj]; [None] otherwise. *)
