(* One JSON writer for every emitter in the tree (Chrome traces, bench
   snapshots, campaign artifacts).  Allocation-conscious: the only state
   besides the output buffer is three scalar fields, and the
   between-element commas are tracked in a single int bitmask indexed by
   nesting depth — no per-container allocation, no closure captures. *)

type t = {
  buf : Buffer.t;
  mutable depth : int;
  mutable mask : int;  (* bit d set: container at depth d has elements *)
  mutable after_key : bool;
}

let create ?(size = 4096) () =
  { buf = Buffer.create size; depth = 0; mask = 0; after_key = false }

let contents t = Buffer.contents t.buf
let to_channel oc t = Buffer.output_buffer oc t.buf

(* Comma discipline: every element (value or key) at depth d emits a
   comma iff bit d is already set, then sets it; a value directly after
   a key emits nothing (the key already separated the pair). *)
let elem t =
  if t.after_key then t.after_key <- false
  else begin
    let bit = 1 lsl t.depth in
    if t.mask land bit <> 0 then Buffer.add_char t.buf ',';
    t.mask <- t.mask lor bit
  end

let enter t =
  t.depth <- t.depth + 1;
  if t.depth > 60 then invalid_arg "Json: nesting deeper than 60";
  t.mask <- t.mask land lnot (1 lsl t.depth)

let leave t =
  t.depth <- t.depth - 1;
  if t.depth < 0 then invalid_arg "Json: unbalanced close"

let obj_open t =
  elem t;
  Buffer.add_char t.buf '{';
  enter t

let obj_close t =
  Buffer.add_char t.buf '}';
  leave t

let arr_open t =
  elem t;
  Buffer.add_char t.buf '[';
  enter t

let arr_close t =
  Buffer.add_char t.buf ']';
  leave t

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_escaped buf s =
  (* Fast path: strings without escapable bytes (the overwhelming
     majority of keys and values) are appended in one call. *)
  let clean = ref true in
  String.iter
    (fun c -> if c = '"' || c = '\\' || Char.code c < 0x20 then clean := false)
    s;
  if !clean then Buffer.add_string buf s else Buffer.add_string buf (escape s)

let key t name =
  elem t;
  Buffer.add_char t.buf '"';
  add_escaped t.buf name;
  Buffer.add_string t.buf "\":";
  t.after_key <- true

let str t s =
  elem t;
  Buffer.add_char t.buf '"';
  add_escaped t.buf s;
  Buffer.add_char t.buf '"'

let int t v =
  elem t;
  Buffer.add_string t.buf (string_of_int v)

let bool t v =
  elem t;
  Buffer.add_string t.buf (if v then "true" else "false")

let null t =
  elem t;
  Buffer.add_string t.buf "null"

(* The NaN guard: JSON has no NaN/inf literal, and a snapshot with a
   bare "nan" token fails the strict checker — represent non-finite
   values as null, which every consumer treats as "absent". *)
let float_repr ?(dp = 4) v =
  if Float.is_finite v then Printf.sprintf "%.*f" dp v else "null"

let float ?dp t v =
  elem t;
  Buffer.add_string t.buf (float_repr ?dp v)

let raw t s =
  elem t;
  Buffer.add_string t.buf s

(* --- Reader -------------------------------------------------------- *)

(* A deliberately small recursive-descent parser for reading our own
   artifacts back (the --replay path).  Numbers are kept as floats: the
   replay consumer only ever reads strings and arrays. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c);
    advance ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          let c = peek () in
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "invalid \\u escape"
              in
              (* Only ASCII escapes are produced by our writer; anything
                 else is preserved as a replacement byte. *)
              Buffer.add_char buf
                (if code < 0x80 then Char.chr code else '?');
              go ()
          | _ -> fail "invalid escape")
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "invalid number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let acc = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            acc := parse_value () :: !acc;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !acc)
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let pair () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let acc = ref [ pair () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            acc := pair () :: !acc;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !acc)
        end
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> parse s

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
