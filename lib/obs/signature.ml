(* Normalized failure signatures: a stable identity for "the same bug"
   across campaigns, seeds and crash points.

   The hash covers failure class x phase (fault model / campaign leg) x
   normalized invariant diagnosis x key-set shape — and deliberately
   nothing that varies per run: no seeds, no crash steps, no cycle
   counts, no addresses.  Diagnosis strings are normalized by collapsing
   every digit run to '#', so "counter[k=17] expected 3 found 2" and
   "counter[k=401] expected 9 found 8" dedupe to one signature. *)

type t = {
  klass : string;
  phase : string;
  invariant : string;
  shape : string;
  hash : string;
}

let is_digit c = c >= '0' && c <= '9'

let normalize s =
  let buf = Buffer.create (String.length s) in
  let in_run = ref false in
  String.iter
    (fun c ->
      if is_digit c then begin
        if not !in_run then Buffer.add_char buf '#';
        in_run := true
      end
      else begin
        in_run := false;
        Buffer.add_char buf c
      end)
    s;
  Buffer.contents buf

(* Key-set cardinality bucketed coarsely: the *shape* of a failure (one
   key vs a spread) is identity-bearing, its exact count is not. *)
let shape_of_count n =
  if n <= 0 then "none"
  else if n = 1 then "single"
  else if n <= 4 then "few"
  else "many"

(* FNV-1a folded into OCaml's 63-bit int range (the same fold used by
   Recovery_scaling.image_hash). *)
let fnv_basis = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3

let fnv h s =
  let h = ref h in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land max_int)
    s;
  (* Field separator, so ("ab","c") and ("a","bc") differ. *)
  h := (!h lxor 0x1f) * fnv_prime land max_int;
  !h

let make ~klass ~phase ~invariant ~shape =
  let klass = normalize klass
  and phase = normalize phase
  and invariant = normalize invariant
  and shape = normalize shape in
  let h = fnv (fnv (fnv (fnv fnv_basis klass) phase) invariant) shape in
  { klass; phase; invariant; shape; hash = Printf.sprintf "%016x" h }

let equal a b = String.equal a.hash b.hash
let compare a b = String.compare a.hash b.hash

let pp ppf s =
  Fmt.pf ppf "%s [%s/%s/%s] %s" s.hash s.klass s.phase s.shape s.invariant

let to_json j s =
  Json.obj_open j;
  Json.key j "hash";
  Json.str j s.hash;
  Json.key j "class";
  Json.str j s.klass;
  Json.key j "phase";
  Json.str j s.phase;
  Json.key j "invariant";
  Json.str j s.invariant;
  Json.key j "shape";
  Json.str j s.shape;
  Json.obj_close j
