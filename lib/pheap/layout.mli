(** On-media layout of the persistent heap.

    The heap occupies a contiguous byte range of the NVM region:

    {v
    base+ 0  heap magic ("TSPHEAP1")
    base+ 8  root pointer (absolute byte address of an object, 0 = null)
    base+16  heap_end: absolute byte address one past the last allocated
             block (bump high-water mark)
    base+24  heap size in bytes
    base+32..base+63  reserved
    base+64  first object header
    v}

    Each object is a header word followed by [words] data words.  The
    address of an object is the address of its {e first data word}; its
    header lives 8 bytes below.  Header encoding (one 64-bit word):

    {v  [ magic:8 | kind:8 | reserved:16 | size_words:32 ]  v} *)

val word_size : int
val header_magic : int
val heap_magic : int64
val header_bytes : int  (** bytes from base to the first object header *)

val root_offset : int
val heap_end_offset : int
val heap_size_offset : int

val encode_header : kind:int -> words:int -> int64
val header_kind : int64 -> int
val header_words : int64 -> int
val header_valid : int64 -> bool

val header_kind_i : int -> int
val header_words_i : int -> int

val header_valid_i : int -> bool
(** Unboxed header decode over [Int64.to_int] of the header word.  The
    conversion drops bit 63 (the magic byte's top bit), so validity is
    checked on the magic's low 7 bits — indistinguishable in practice,
    and the graceful walkers tolerate junk either way. *)

val kind_free : int
(** Kind of a free block; never registered in {!Kind}. *)

val obj_header_addr : int -> int
(** Header address of the object at data address [addr]. *)

val obj_total_bytes : words:int -> int
(** Bytes occupied by header + data. *)
