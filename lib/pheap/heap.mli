(** The persistent heap: malloc-style allocation plus a heap-wide root
    pointer, over the simulated NVM device.

    This is the programming model both case studies of the paper share:
    the application allocates durable objects through a conventional
    interface, keeps every live structure reachable from the root set via
    {!set_root}/{!get_root}, and manipulates object fields with
    load/store/CAS — no serialisation, no translation layer.

    Allocator metadata (free lists, including the index over free blocks)
    is deliberately {e volatile}: after a crash it is rebuilt by the
    recovery-time garbage collector ({!Heap_gc}), which also reclaims
    objects leaked by interrupted operations.  Only the object headers,
    the bump high-water mark and the root pointer live on NVM, making the
    heap self-describing. *)

type t

type addr = int
(** Absolute byte address of an object's first data word. *)

val null : addr

exception Out_of_memory
exception Corrupt of string
(** Raised when on-media structures fail validation — the expected
    outcome when recovering from a non-TSP crash that lost dirty lines. *)

(** {1 Lifecycle} *)

val create : Nvm.Pmem.t -> base:int -> size:int -> t
(** Format a fresh heap on [size] bytes starting at byte offset [base] of
    the device, and persist the formatting (a fresh heap is durable by
    definition). *)

val attach : Nvm.Pmem.t -> base:int -> size:int -> t
(** Re-attach to an existing heap, e.g. after {!Nvm.Pmem.recover}.
    Validates the heap magic and bump pointer; does {e not} run the GC
    (call {!Heap_gc.collect} to rebuild free lists and reclaim leaks).
    @raise Corrupt if the header is damaged. *)

val pmem : t -> Nvm.Pmem.t
val base : t -> int

val start_addr : t -> int
(** Address of the first object header. *)

val end_addr : t -> int
(** Bump high-water mark: one past the last block. *)

val capacity_end : t -> int

(** {1 Root pointer} *)

val get_root : t -> addr
val set_root : t -> addr -> unit

(** {1 Allocation} *)

val alloc : t -> kind:int -> words:int -> addr
(** Allocate an object with [words] data words.  The data words are {e
    not} zeroed; callers must initialise every field before publishing
    the object.  @raise Out_of_memory when neither the free lists nor the
    bump region can satisfy the request. *)

val free : t -> addr -> unit
(** Explicitly release an object.  Optional — unreachable objects are
    collected at recovery — but keeps long runs from exhausting the
    region. *)

val free_via : t -> addr -> store:(int -> int64 -> unit) -> unit
(** Like {!free}, but the header overwrite goes through [store] instead
    of the plain device store.  Atlas-fortified code passes its
    instrumented store here, so rolling back the enclosing critical
    section also resurrects the freed object's header. *)

val free_words : t -> int
(** Words available on the free lists (excludes the bump region). *)

val reset_allocator : t -> free:(addr * int) list -> unit
(** Used by the GC: drop the volatile free lists and replace them with
    the given [(addr, words)] blocks, writing a free header for each. *)

(** {1 Field access} *)

val field_addr : t -> addr -> int -> int
val load_field : t -> addr -> int -> int64
val store_field : t -> addr -> int -> int64 -> unit
val cas_field : t -> addr -> int -> expected:int64 -> desired:int64 -> bool
val load_field_int : t -> addr -> int -> int
val store_field_int : t -> addr -> int -> int -> unit
val cas_field_int : t -> addr -> int -> expected:int -> desired:int -> bool

(** {1 Introspection} *)

val kind_of : t -> addr -> int
val words_of : t -> addr -> int

val contains : t -> addr -> bool
(** Whether [addr] lies inside the allocated span and is word-aligned. *)

val is_object_start : t -> addr -> bool
(** Cost-free check that a valid, non-free object header precedes
    [addr]. *)

val iter_blocks : t -> (addr:addr -> kind:int -> words:int -> unit) -> unit
(** Walk every block (live and free) in address order, reading headers
    through the costed load path — recovery work is real work.
    @raise Corrupt on an invalid header. *)

val fold_blocks_checked :
  t ->
  (addr:addr -> kind:int -> words:int -> unit) ->
  (unit, int * string) result
(** {!iter_blocks} for adversarial images: instead of raising on the
    first invalid or overrunning header it stops there and returns
    [Error (header_addr, diagnosis)] — everything before [header_addr]
    was walked normally, everything from it to the heap end is
    unparseable and should be quarantined, not reused. *)

val set_debug_checks : bool -> unit
(** Globally enable paranoid field-access validation (header magic and
    index bounds on every access, via cost-free peeks).  Slow; meant for
    the test suite. *)
