type addr = int

type t = {
  pmem : Nvm.Pmem.t;
  base : int;
  size : int;
  freelist : Freelist.t;
  mutable heap_end : int;  (* volatile mirror of the persistent word *)
}

let null = 0

exception Out_of_memory
exception Corrupt of string

let debug_checks = ref false
let set_debug_checks b = debug_checks := b

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

let pmem t = t.pmem
let base t = t.base
let start_addr t = t.base + Layout.header_bytes
let end_addr t = t.heap_end
let capacity_end t = t.base + t.size

let persist_heap_end t =
  Nvm.Pmem.store_int t.pmem (t.base + Layout.heap_end_offset) t.heap_end

let create pmem ~base ~size =
  if base land 7 <> 0 then invalid_arg "Heap.create: base must be aligned";
  if size < Layout.header_bytes + 64 then
    invalid_arg "Heap.create: size too small";
  let t = { pmem; base; size; freelist = Freelist.create (); heap_end = 0 } in
  Nvm.Pmem.store pmem base Layout.heap_magic;
  Nvm.Pmem.store_int pmem (base + Layout.root_offset) null;
  Nvm.Pmem.store_int pmem (base + Layout.heap_size_offset) size;
  t.heap_end <- start_addr t;
  persist_heap_end t;
  (* A freshly formatted heap is durable by definition: flush the header
     line so even a non-TSP crash before the first operation recovers. *)
  Nvm.Pmem.flush pmem base;
  Nvm.Pmem.fence pmem;
  t

let attach pmem ~base ~size =
  let magic = Nvm.Pmem.load pmem base in
  if not (Int64.equal magic Layout.heap_magic) then
    corrupt "heap magic mismatch at %d: %Lx" base magic;
  let persisted_size = Nvm.Pmem.load_int pmem (base + Layout.heap_size_offset) in
  if persisted_size <> size then
    corrupt "heap size mismatch: attached with %d, formatted with %d" size
      persisted_size;
  let heap_end = Nvm.Pmem.load_int pmem (base + Layout.heap_end_offset) in
  if heap_end < base + Layout.header_bytes || heap_end > base + size then
    corrupt "heap_end %d out of range" heap_end;
  if heap_end land 7 <> 0 then corrupt "heap_end %d misaligned" heap_end;
  { pmem; base; size; freelist = Freelist.create (); heap_end }

let get_root t = Nvm.Pmem.load_int t.pmem (t.base + Layout.root_offset)
let set_root t a = Nvm.Pmem.store_int t.pmem (t.base + Layout.root_offset) a

let contains t a =
  a land 7 = 0 && a >= start_addr t + Layout.word_size && a < t.heap_end

let peek_header t a =
  Nvm.Pmem.peek t.pmem (Layout.obj_header_addr a)

let is_object_start t a =
  contains t a
  &&
  let h = peek_header t a in
  Layout.header_valid h && Layout.header_kind h <> Layout.kind_free

let load_header t a = Nvm.Pmem.load t.pmem (Layout.obj_header_addr a)

let kind_of t a = Layout.header_kind (load_header t a)
let words_of t a = Layout.header_words (load_header t a)

let write_header t a ~kind ~words =
  Nvm.Pmem.store t.pmem (Layout.obj_header_addr a)
    (Layout.encode_header ~kind ~words)

let alloc t ~kind ~words =
  if words <= 0 then invalid_arg "Heap.alloc: words must be positive";
  if kind = Layout.kind_free then invalid_arg "Heap.alloc: kind_free";
  match Freelist.take t.freelist ~words with
  | Some (a, block_words) when block_words = words ->
      write_header t a ~kind ~words;
      a
  | Some (a, block_words) ->
      (* Split: object at the front, remainder becomes a free block. *)
      write_header t a ~kind ~words;
      let rem_addr = a + ((words + 1) * Layout.word_size) in
      let rem_words = block_words - words - 1 in
      write_header t rem_addr ~kind:Layout.kind_free ~words:rem_words;
      Freelist.add t.freelist ~addr:rem_addr ~words:rem_words;
      a
  | None ->
      let a = t.heap_end + Layout.word_size in
      let new_end = a + (words * Layout.word_size) in
      if new_end > capacity_end t then raise Out_of_memory;
      (* Reserve the span in the volatile bump pointer before touching
         the device: stores are scheduler yield points, and a concurrent
         allocation must not be handed the same addresses. *)
      t.heap_end <- new_end;
      write_header t a ~kind ~words;
      persist_heap_end t;
      a

let free_via t a ~store =
  if not (contains t a) then Fmt.invalid_arg "Heap.free: bad address %d" a;
  let h = load_header t a in
  if not (Layout.header_valid h) then corrupt "free: invalid header at %d" a;
  if Layout.header_kind h = Layout.kind_free then
    Fmt.invalid_arg "Heap.free: double free at %d" a;
  let words = Layout.header_words h in
  store (Layout.obj_header_addr a)
    (Layout.encode_header ~kind:Layout.kind_free ~words);
  Freelist.add t.freelist ~addr:a ~words

let free t a = free_via t a ~store:(Nvm.Pmem.store t.pmem)

let free_words t = Freelist.total_free_words t.freelist

let reset_allocator t ~free =
  Freelist.clear t.freelist;
  List.iter
    (fun (a, words) ->
      write_header t a ~kind:Layout.kind_free ~words;
      Freelist.add t.freelist ~addr:a ~words)
    free

let check_field t a i =
  if !debug_checks then begin
    let h = peek_header t a in
    if not (Layout.header_valid h) then
      corrupt "field access to non-object %d" a;
    let words = Layout.header_words h in
    if i < 0 || i >= words then
      Fmt.invalid_arg "Heap: field %d out of bounds for %d-word object at %d"
        i words a
  end

let field_addr t a i =
  check_field t a i;
  a + (i * Layout.word_size)

let load_field t a i = Nvm.Pmem.load t.pmem (field_addr t a i)
let store_field t a i v = Nvm.Pmem.store t.pmem (field_addr t a i) v

let cas_field t a i ~expected ~desired =
  Nvm.Pmem.cas t.pmem (field_addr t a i) ~expected ~desired

let load_field_int t a i = Nvm.Pmem.load_int t.pmem (field_addr t a i)
let store_field_int t a i v = Nvm.Pmem.store_int t.pmem (field_addr t a i) v

let cas_field_int t a i ~expected ~desired =
  Nvm.Pmem.cas_int t.pmem (field_addr t a i) ~expected ~desired

let iter_blocks t f =
  let stop = t.heap_end in
  let rec go header_addr =
    if header_addr < stop then begin
      let h = Nvm.Pmem.load t.pmem header_addr in
      if not (Layout.header_valid h) then
        corrupt "invalid block header at %d: %Lx" header_addr h;
      let words = Layout.header_words h in
      let a = header_addr + Layout.word_size in
      let next = a + (words * Layout.word_size) in
      if next > stop then
        corrupt "block at %d overruns heap end (%d past %d)" a next stop;
      f ~addr:a ~kind:(Layout.header_kind h) ~words;
      go next
    end
  in
  go (start_addr t)

let fold_blocks_checked t f =
  let stop = t.heap_end in
  let rec go header_addr =
    if header_addr >= stop then Ok ()
    else begin
      let h = Nvm.Pmem.load t.pmem header_addr in
      if not (Layout.header_valid h) then
        Error
          (header_addr, Fmt.str "invalid block header at %d: %Lx" header_addr h)
      else begin
        let words = Layout.header_words h in
        let a = header_addr + Layout.word_size in
        let next = a + (words * Layout.word_size) in
        if next > stop then
          Error
            ( header_addr,
              Fmt.str "block at %d overruns heap end (%d past %d)" a next stop
            )
        else begin
          f ~addr:a ~kind:(Layout.header_kind h) ~words;
          go next
        end
      end
    end
  in
  go (start_addr t)
