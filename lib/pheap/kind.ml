type scan = load:(int -> int64) -> addr:int -> words:int -> int list

type scan_int =
  load:(int -> int) -> addr:int -> words:int -> emit:(int -> unit) -> unit

type entry = { name : string; scan : scan; scan_int : scan_int }

let table : (int, entry) Hashtbl.t = Hashtbl.create 16
let next_id = ref 16 (* user kinds start here; low ids are builtins *)

(* Fallback streamed scanner: run the list scanner through an
   int-boxing shim and emit the result in load order-agnostic fashion.
   Allocates (the list, one int64 box per load) and loses bit 63 of
   non-pointer words, which no registered scanner inspects.  Kinds on
   the streamed recovery path should register a native [scan_int]. *)
let derive_scan_int (scan : scan) : scan_int =
 fun ~load ~addr ~words ~emit ->
  List.iter emit (scan ~load:(fun a -> Int64.of_int (load a)) ~addr ~words)

let register ?kind ~name ~scan ?scan_int () =
  let id =
    match kind with
    | Some k -> k
    | None ->
        let k = !next_id in
        incr next_id;
        k
  in
  if id <= 0 || id > 0xff then Fmt.invalid_arg "Kind.register: bad id %d" id;
  (match Hashtbl.find_opt table id with
  | Some e when not (String.equal e.name name) ->
      Fmt.invalid_arg "Kind.register: id %d already bound to %s" id e.name
  | Some _ ->
      (* Idempotent re-registration: keep the original scanners so a kind
         cannot be silently neutered after objects of it exist. *)
      ()
  | None ->
      let scan_int =
        match scan_int with Some f -> f | None -> derive_scan_int scan
      in
      Hashtbl.replace table id { name; scan; scan_int });
  id

let no_pointers : scan = fun ~load:_ ~addr:_ ~words:_ -> []

let no_pointers_int : scan_int = fun ~load:_ ~addr:_ ~words:_ ~emit:_ -> ()

let every_word : scan =
 fun ~load ~addr ~words ->
  let rec go i acc =
    if i >= words then acc
    else
      let v = Int64.to_int (load (addr + (8 * i))) in
      go (i + 1) (if v <> 0 then v :: acc else acc)
  in
  go 0 []

let every_word_int : scan_int =
 fun ~load ~addr ~words ~emit ->
  for i = 0 to words - 1 do
    let v = load (addr + (8 * i)) in
    if v <> 0 then emit v
  done

let raw =
  register ~kind:1 ~name:"raw" ~scan:no_pointers ~scan_int:no_pointers_int ()

let all_pointers =
  register ~kind:2 ~name:"all_pointers" ~scan:every_word
    ~scan_int:every_word_int ()

let scan_object ~kind =
  match Hashtbl.find_opt table kind with
  | Some e -> e.scan
  | None -> Fmt.invalid_arg "Kind.scan_object: unknown kind %d" kind

let scan_object_int ~kind =
  match Hashtbl.find_opt table kind with
  | Some e -> e.scan_int
  | None -> Fmt.invalid_arg "Kind.scan_object_int: unknown kind %d" kind

let name kind =
  match Hashtbl.find_opt table kind with
  | Some e -> e.name
  | None -> Printf.sprintf "unknown-%d" kind

let is_registered kind = Hashtbl.mem table kind
