(** Recovery-time mark-sweep garbage collector.

    Crashes can leak persistent memory: an interrupted operation may have
    allocated objects that never became reachable, and Atlas rollback can
    orphan objects allocated inside an undone critical section.  Following
    Atlas's design (Section 4.2 of the paper), leaks are reclaimed by a
    collector that runs during recovery rather than by making the
    allocator itself failure-atomic.

    [collect] marks from the heap root using the {!Kind} registry's scan
    functions, then sweeps the whole span linearly: runs of dead and free
    blocks are coalesced into single free blocks and handed back to the
    allocator.  All reads and writes go through the costed device path, so
    recovery time shows up in the simulated clock — TSP moves work to
    recovery, and the simulator charges for it honestly.

    Million-object heaps get two further modes built on a {e streamed}
    mark engine: discovery reads words with cost-free peeks, counts the
    cache lines it touches, and charges one analytic bill (every counted
    line at the cold-miss price — a streaming scan fetches each object's
    span once, with no reuse between objects), which makes the scan both
    parallelisable and byte-identical for any worker count.  {!collect_streamed} runs mark and sweep to
    completion under that model; {!Incremental} splits the same work into
    a resumable budget so a recovering service can serve reads while the
    collector catches up in the background. *)

type stats = {
  live_objects : int;
  live_words : int;
  freed_objects : int;  (** dead objects reclaimed (excludes free blocks) *)
  freed_words : int;  (** total words returned to the free lists *)
  coalesced_blocks : int;  (** resulting free blocks after coalescing *)
  dangling_refs : int;
      (** pointers from live objects that did not refer to a valid object;
          non-zero indicates heap damage (expected after non-TSP crashes) *)
  mark_cycles : int;
      (** simulated cycles spent marking (clock delta; analytic charge in
          the streamed modes) — matches the tracer's [gc_mark] phase *)
  sweep_cycles : int;
      (** simulated cycles spent sweeping and rebuilding the free lists —
          matches the tracer's [gc_sweep] phase *)
}

val collect : Heap.t -> stats
(** @raise Heap.Corrupt if the heap cannot even be parsed. *)

val reachable : Heap.t -> Nvm.Intset.t
(** The mark set: every object reachable from the root. *)

type quarantine = {
  unscannable : int;
      (** reachable objects that could not be traversed (unregistered
          kind byte, implausible size); kept live, never freed *)
  quarantined_words : int;
      (** words in the unparseable heap tail withheld from the free
          lists (0 when the whole block chain parsed) *)
  reasons : string list;  (** one human-readable diagnosis per problem *)
}

val collect_graceful : Heap.t -> stats * quarantine
(** {!collect} for adversarial images: never raises.  Objects whose
    scan blows up stay marked but untraversed; if the block chain stops
    parsing partway, the blocks before the damage sweep normally and
    the tail is quarantined — withheld from the allocator rather than
    reused.  On a healthy heap this is exactly [collect] with an empty
    quarantine. *)

val collect_streamed :
  ?fanout:((unit -> unit) list -> unit) -> Heap.t -> stats * quarantine
(** Graceful collection under the streamed cost model.  Discovery is a
    level-synchronous BFS over cost-free peeks: each frontier is split
    into fixed-size chunks, [fanout] runs the chunk thunks (default:
    sequentially; pass a domain-pool runner to parallelise — every thunk
    must have completed when [fanout] returns), and a sequential merge
    in chunk order builds the mark set.  Chunking is independent of the
    worker count, peeks have no cache effects, and the charge is a
    single analytic bill (counted lines × cold-miss cost), so the
    stats, the verdict inputs and the post-collection heap image are
    byte-identical for any [fanout].  The swept heap image matches the
    eager {!collect_graceful}'s exactly; only the simulated cycle
    accounting differs (counted lines × cold-miss instead of per-word
    cache simulation). *)

(** Incremental collection: plan everything up front with peeks (no
    stores, no charges — a crash at any point before {!Incremental.finish}
    leaves the heap image untouched, so recovery simply restarts), then
    pay for it in slices.  The service layer drains the budget from a
    background fiber via {!Incremental.advance} while serving requests,
    charging on-demand recovery of individual objects via
    {!Incremental.touch}; {!Incremental.finish} pays any remainder and
    applies the one mutating step, the allocator reset. *)
module Incremental : sig
  type t

  val start : ?fanout:((unit -> unit) list -> unit) -> Heap.t -> t
  (** Discover the live set and plan the sweep (peeks only).  The
      resulting budget equals {!collect_streamed}'s analytic mark +
      sweep charge. *)

  val total_cycles : t -> int
  (** The full analytic mark + sweep bill. *)

  val plan : t -> stats * quarantine
  (** The planned outcome (what {!finish} will return), available
      immediately after {!start} — recovery verdicts need the
      quarantine before the background collection completes.  No side
      effects. *)

  val remaining_cycles : t -> int

  val finished : t -> bool

  val marked_objects : t -> int

  val touched_objects : t -> int
  (** Objects recovered on demand via {!touch} so far. *)

  val advance : t -> budget:int -> int
  (** Charge up to [budget] cycles of background collection work and
      return the amount actually consumed (0 once drained or
      finished). *)

  val on_demand : t -> int
  (** Charge the {e average} per-object recovery cost for one
      first-touch — for callers (the request path of a recovering
      service) that track touched keys themselves and have no object
      address in hand.  At least one cold miss; counts toward the
      budget; 0 once finished.  Returns the cost charged. *)

  val on_demand_count : t -> int
  (** {!on_demand} calls so far. *)

  val touch : t -> addr:int -> int
  (** On-demand recovery of the object at [addr] (tag bits tolerated):
      the first touch of a marked object charges one cold miss per cache
      line of its span — re-reading its header and fields — counts it
      against the remaining budget, and returns the cost. Repeat touches,
      unmarked or null addresses cost and return 0. *)

  val finish : t -> stats * quarantine
  (** Pay any remaining budget and apply the allocator reset.
      Memoised: later calls return the same result without recharging.
      The resulting heap image matches {!collect_streamed}'s. *)
end

val verify : Heap.t -> (unit, string list) result
(** Cost-free structural audit (used by tests and the fault-injection
    verdict): block chain parses, kinds are registered, live pointers
    target valid objects.  Returns all problems found. *)

val pp_stats : stats Fmt.t
