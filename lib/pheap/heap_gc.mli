(** Recovery-time mark-sweep garbage collector.

    Crashes can leak persistent memory: an interrupted operation may have
    allocated objects that never became reachable, and Atlas rollback can
    orphan objects allocated inside an undone critical section.  Following
    Atlas's design (Section 4.2 of the paper), leaks are reclaimed by a
    collector that runs during recovery rather than by making the
    allocator itself failure-atomic.

    [collect] marks from the heap root using the {!Kind} registry's scan
    functions, then sweeps the whole span linearly: runs of dead and free
    blocks are coalesced into single free blocks and handed back to the
    allocator.  All reads and writes go through the costed device path, so
    recovery time shows up in the simulated clock — TSP moves work to
    recovery, and the simulator charges for it honestly. *)

type stats = {
  live_objects : int;
  live_words : int;
  freed_objects : int;  (** dead objects reclaimed (excludes free blocks) *)
  freed_words : int;  (** total words returned to the free lists *)
  coalesced_blocks : int;  (** resulting free blocks after coalescing *)
  dangling_refs : int;
      (** pointers from live objects that did not refer to a valid object;
          non-zero indicates heap damage (expected after non-TSP crashes) *)
}

val collect : Heap.t -> stats
(** @raise Heap.Corrupt if the heap cannot even be parsed. *)

val reachable : Heap.t -> (Heap.addr, unit) Hashtbl.t
(** The mark set: every object reachable from the root. *)

type quarantine = {
  unscannable : int;
      (** reachable objects that could not be traversed (unregistered
          kind byte, implausible size); kept live, never freed *)
  quarantined_words : int;
      (** words in the unparseable heap tail withheld from the free
          lists (0 when the whole block chain parsed) *)
  reasons : string list;  (** one human-readable diagnosis per problem *)
}

val collect_graceful : Heap.t -> stats * quarantine
(** {!collect} for adversarial images: never raises.  Objects whose
    scan blows up stay marked but untraversed; if the block chain stops
    parsing partway, the blocks before the damage sweep normally and
    the tail is quarantined — withheld from the allocator rather than
    reused.  On a healthy heap this is exactly [collect] with an empty
    quarantine. *)

val verify : Heap.t -> (unit, string list) result
(** Cost-free structural audit (used by tests and the fault-injection
    verdict): block chain parses, kinds are registered, live pointers
    target valid objects.  Returns all problems found. *)

val pp_stats : stats Fmt.t
