let word_size = 8
let header_magic = 0xA5
let heap_magic = 0x5453504845415031L (* "TSPHEAP1" big-endian-ish tag *)
let header_bytes = 64
let root_offset = 8
let heap_end_offset = 16
let heap_size_offset = 24
let kind_free = 0

let encode_header ~kind ~words =
  if kind < 0 || kind > 0xff then Fmt.invalid_arg "Layout: bad kind %d" kind;
  if words <= 0 || words > 0x7fffffff then
    Fmt.invalid_arg "Layout: bad object size %d words" words;
  Int64.logor
    (Int64.shift_left (Int64.of_int header_magic) 56)
    (Int64.logor
       (Int64.shift_left (Int64.of_int kind) 48)
       (Int64.of_int words))

let header_kind h = Int64.to_int (Int64.shift_right_logical h 48) land 0xff
let header_words h = Int64.to_int (Int64.logand h 0xffffffffL)

let header_valid h =
  Int64.to_int (Int64.shift_right_logical h 56) land 0xff = header_magic
  && header_words h > 0

(* Unboxed variants over [Int64.to_int] of the header word (bit 63 —
   the magic byte's top bit — is dropped by the conversion, so the
   magic check runs on its low 7 bits).  These are what the
   allocation-free streamed recovery scanners decode with; the boxed
   forms above remain the canonical ones. *)

let header_kind_i h = (h lsr 48) land 0xff
let header_words_i h = h land 0xffffffff

let header_valid_i h =
  (h lsr 56) land 0x7f = header_magic land 0x7f && header_words_i h > 0

let obj_header_addr addr = addr - word_size
let obj_total_bytes ~words = (words + 1) * word_size
