(** Registry of object kinds.

    The recovery-time garbage collector must know which words of an object
    hold heap pointers.  Each data structure registers its node layouts
    here once (at module initialisation); the kind id is stored in every
    object header, making the heap self-describing across crashes.

    A [scan] function receives a word reader and the object's address and
    size and returns the addresses the object points to.  It must strip
    any tag bits it packs into pointer words (e.g. the skip list's mark
    bit) and must return 0 ([Heap.null]) for empty slots or simply omit
    them.

    A [scan_int] function is the streamed, allocation-free form: same
    contract, but words arrive as unboxed ints (bit 63 dropped — only
    pointer words may be interpreted, and addresses fit) and pointers are
    pushed through [emit] in the order the words are read rather than
    collected into a list.  The eager GC uses [scan]; the parallel and
    incremental recovery paths use [scan_int]. *)

type scan = load:(int -> int64) -> addr:int -> words:int -> int list

type scan_int =
  load:(int -> int) -> addr:int -> words:int -> emit:(int -> unit) -> unit

val raw : int
(** Builtin kind 1: no pointers at all. *)

val all_pointers : int
(** Builtin kind 2: every word is either null or a heap pointer. *)

val register :
  ?kind:int -> name:string -> scan:scan -> ?scan_int:scan_int -> unit -> int
(** Register a kind and return its id.  When [kind] is given it is used.
    Re-registering an id under the same name is an idempotent no-op that
    keeps the {e original} scanners (a kind cannot be silently neutered
    once objects of it exist); registering a different name over an
    existing id raises.  Ids must fit in a byte and not collide with the
    free-block kind 0.  When [scan_int] is omitted it is derived from
    [scan] (correct, but it allocates — register a native one for kinds
    on the streamed recovery path). *)

val scan_object : kind:int -> scan
(** Scanner for [kind]. @raise Invalid_argument for unknown kinds. *)

val scan_object_int : kind:int -> scan_int
(** Streamed scanner for [kind]. @raise Invalid_argument for unknown
    kinds. *)

val name : int -> string
val is_registered : int -> bool
