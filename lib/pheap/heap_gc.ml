type stats = {
  live_objects : int;
  live_words : int;
  freed_objects : int;
  freed_words : int;
  coalesced_blocks : int;
  dangling_refs : int;
}

let strip_tag a = a land lnot 7
(* Pointer words may carry tag bits in the low three bits (the lock-free
   skip list uses bit 0 as its deletion mark); heap addresses are always
   8-byte aligned, so masking recovers the address. *)

let mark heap =
  let pmem = Heap.pmem heap in
  let marks : (Heap.addr, unit) Hashtbl.t = Hashtbl.create 4096 in
  let dangling = ref 0 in
  let load a = Nvm.Pmem.load pmem a in
  let stack = Stack.create () in
  let push a =
    let a = strip_tag a in
    if a <> Heap.null && not (Hashtbl.mem marks a) then
      if Heap.is_object_start heap a then begin
        Hashtbl.replace marks a ();
        Stack.push a stack
      end
      else incr dangling
  in
  push (Heap.get_root heap);
  while not (Stack.is_empty stack) do
    let a = Stack.pop stack in
    let kind = Heap.kind_of heap a in
    let words = Heap.words_of heap a in
    let scan = Kind.scan_object ~kind in
    List.iter push (scan ~load ~addr:a ~words)
  done;
  (marks, !dangling)

let collect heap =
  let marks, dangling_refs = mark heap in
  let live_objects = ref 0 in
  let live_words = ref 0 in
  let freed_objects = ref 0 in
  let freed_words = ref 0 in
  let free_blocks = ref [] in
  (* Accumulate a run of contiguous dead/free blocks, then emit it as one
     coalesced free block.  [run_start] is the data address the coalesced
     block will have; its size swallows the headers of all merged blocks
     except the first. *)
  let run_start = ref 0 in
  let run_end = ref 0 in
  let flush_run () =
    if !run_start <> 0 then begin
      let words = (!run_end - !run_start) / Layout.word_size in
      free_blocks := (!run_start, words) :: !free_blocks;
      freed_words := !freed_words + words;
      run_start := 0
    end
  in
  Heap.iter_blocks heap (fun ~addr ~kind ~words ->
      let dead = kind <> Layout.kind_free && not (Hashtbl.mem marks addr) in
      if Hashtbl.mem marks addr then begin
        flush_run ();
        incr live_objects;
        live_words := !live_words + words
      end
      else begin
        if dead then incr freed_objects;
        if !run_start = 0 then run_start := addr;
        run_end := addr + (words * Layout.word_size)
      end);
  flush_run ();
  Heap.reset_allocator heap ~free:!free_blocks;
  {
    live_objects = !live_objects;
    live_words = !live_words;
    freed_objects = !freed_objects;
    freed_words = !freed_words;
    coalesced_blocks = List.length !free_blocks;
    dangling_refs;
  }

let reachable heap = fst (mark heap)

type quarantine = {
  unscannable : int;
  quarantined_words : int;
  reasons : string list;
}

(* [mark] hardened: pushes are already gated by [is_object_start] (no
   raise possible), but scanning a marked object can still blow up on an
   adversarial image — an unregistered kind byte, or a header size so
   large that field loads leave the region.  Keep such objects marked
   (never free what we cannot parse) but do not traverse them. *)
let mark_graceful heap =
  let pmem = Heap.pmem heap in
  let marks : (Heap.addr, unit) Hashtbl.t = Hashtbl.create 4096 in
  let dangling = ref 0 in
  let unscannable = ref 0 in
  let reasons = ref [] in
  let load a = Nvm.Pmem.load pmem a in
  let stack = Stack.create () in
  let push a =
    let a = strip_tag a in
    if a <> Heap.null && not (Hashtbl.mem marks a) then
      if Heap.is_object_start heap a then begin
        Hashtbl.replace marks a ();
        Stack.push a stack
      end
      else incr dangling
  in
  push (Heap.get_root heap);
  while not (Stack.is_empty stack) do
    let a = Stack.pop stack in
    match
      let kind = Heap.kind_of heap a in
      let words = Heap.words_of heap a in
      (Kind.scan_object ~kind) ~load ~addr:a ~words
    with
    | refs -> List.iter push refs
    | exception Heap.Corrupt msg | exception Invalid_argument msg ->
        incr unscannable;
        reasons := Fmt.str "object %d unscannable: %s" a msg :: !reasons
  done;
  (marks, !dangling, !unscannable, List.rev !reasons)

let collect_graceful heap =
  let marks, dangling_refs, unscannable, mark_reasons = mark_graceful heap in
  let live_objects = ref 0 in
  let live_words = ref 0 in
  let freed_objects = ref 0 in
  let freed_words = ref 0 in
  let free_blocks = ref [] in
  let run_start = ref 0 in
  let run_end = ref 0 in
  let flush_run () =
    if !run_start <> 0 then begin
      let words = (!run_end - !run_start) / Layout.word_size in
      free_blocks := (!run_start, words) :: !free_blocks;
      freed_words := !freed_words + words;
      run_start := 0
    end
  in
  let walk =
    Heap.fold_blocks_checked heap (fun ~addr ~kind ~words ->
        let dead = kind <> Layout.kind_free && not (Hashtbl.mem marks addr) in
        if Hashtbl.mem marks addr then begin
          flush_run ();
          incr live_objects;
          live_words := !live_words + words
        end
        else begin
          if dead then incr freed_objects;
          if !run_start = 0 then run_start := addr;
          run_end := addr + (words * Layout.word_size)
        end)
  in
  flush_run ();
  let quarantined_words, sweep_reasons =
    match walk with
    | Ok () -> (0, [])
    | Error (header_addr, msg) ->
        (* The blocks before [header_addr] swept normally; the tail is
           unparseable, so leave it out of the free lists entirely. *)
        ( (Heap.end_addr heap - header_addr) / Layout.word_size,
          [ Fmt.str "heap tail quarantined: %s" msg ] )
  in
  Heap.reset_allocator heap ~free:!free_blocks;
  ( {
      live_objects = !live_objects;
      live_words = !live_words;
      freed_objects = !freed_objects;
      freed_words = !freed_words;
      coalesced_blocks = List.length !free_blocks;
      dangling_refs;
    },
    {
      unscannable;
      quarantined_words;
      reasons = mark_reasons @ sweep_reasons;
    } )

let verify heap =
  let pmem = Heap.pmem heap in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let peek a = Nvm.Pmem.peek pmem a in
  (* Pass 1: the block chain must tile the allocated span exactly. *)
  let objects = Hashtbl.create 1024 in
  let rec walk header_addr =
    if header_addr < Heap.end_addr heap then begin
      let h = peek header_addr in
      if not (Layout.header_valid h) then
        err "invalid header at %d: %Lx" header_addr h
      else begin
        let words = Layout.header_words h in
        let kind = Layout.header_kind h in
        let a = header_addr + Layout.word_size in
        let next = a + (words * Layout.word_size) in
        if next > Heap.end_addr heap then
          err "block at %d overruns heap end" a
        else begin
          if kind <> Layout.kind_free then begin
            if not (Kind.is_registered kind) then
              err "object at %d has unregistered kind %d" a kind;
            Hashtbl.replace objects a (kind, words)
          end;
          walk next
        end
      end
    end
  in
  walk (Heap.start_addr heap);
  (* Pass 2: pointers from reachable objects must target valid objects. *)
  if !errors = [] then begin
    let seen = Hashtbl.create 1024 in
    let stack = Stack.create () in
    let push src a =
      let a = strip_tag a in
      if a <> Heap.null && not (Hashtbl.mem seen a) then
        if Hashtbl.mem objects a then begin
          Hashtbl.replace seen a ();
          Stack.push a stack
        end
        else err "object %d references invalid address %d" src a
    in
    let root = Int64.to_int (peek (Heap.base heap + Layout.root_offset)) in
    push 0 root;
    while not (Stack.is_empty stack) do
      let a = Stack.pop stack in
      match Hashtbl.find_opt objects a with
      | None -> ()
      | Some (kind, words) when Kind.is_registered kind ->
          let scan = Kind.scan_object ~kind in
          List.iter (push a) (scan ~load:peek ~addr:a ~words)
      | Some _ -> ()
    done
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_stats ppf s =
  Fmt.pf ppf
    "live %d objs / %d words; reclaimed %d objs, %d words in %d free blocks; \
     dangling refs %d"
    s.live_objects s.live_words s.freed_objects s.freed_words
    s.coalesced_blocks s.dangling_refs
