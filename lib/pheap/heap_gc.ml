type stats = {
  live_objects : int;
  live_words : int;
  freed_objects : int;
  freed_words : int;
  coalesced_blocks : int;
  dangling_refs : int;
  mark_cycles : int;
  sweep_cycles : int;
}

let strip_tag a = a land lnot 7
(* Pointer words may carry tag bits in the low three bits (the lock-free
   skip list uses bit 0 as its deletion mark); heap addresses are always
   8-byte aligned, so masking recovers the address. *)

let clock heap = (Nvm.Pmem.stats (Heap.pmem heap)).Nvm.Stats.clock

(* Bracket [f] with a tracer sub-phase so the mark/sweep split shows up
   in the observability timeline as well as in [stats]. *)
let in_phase heap ~phase f =
  match Nvm.Pmem.tracer (Heap.pmem heap) with
  | None -> f ()
  | Some tr ->
      Obs.Tracer.phase_begin tr ~phase;
      Fun.protect ~finally:(fun () -> Obs.Tracer.phase_end tr ~phase) f

(* Growable int stack: the mark loop's only per-push cost is an array
   store, so marking a million-object heap stays out of the minor heap
   (the list scanners of the eager path still cons; the streamed path
   below allocates nothing per object). *)
module Istack = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 1024 0; n = 0 }

  let push t v =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) 0 in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let pop t =
    t.n <- t.n - 1;
    t.a.(t.n)

  let is_empty t = t.n = 0
end

let mark heap =
  let pmem = Heap.pmem heap in
  let marks = Nvm.Intset.create ~capacity:4096 () in
  let dangling = ref 0 in
  let load a = Nvm.Pmem.load pmem a in
  let stack = Istack.create () in
  let push a =
    let a = strip_tag a in
    if a <> Heap.null && not (Nvm.Intset.mem marks a) then
      if Heap.is_object_start heap a then begin
        ignore (Nvm.Intset.add marks a : bool);
        Istack.push stack a
      end
      else incr dangling
  in
  push (Heap.get_root heap);
  while not (Istack.is_empty stack) do
    let a = Istack.pop stack in
    let kind = Heap.kind_of heap a in
    let words = Heap.words_of heap a in
    let scan = Kind.scan_object ~kind in
    List.iter push (scan ~load ~addr:a ~words)
  done;
  (marks, !dangling)

let collect heap =
  let c0 = clock heap in
  let marks, dangling_refs =
    in_phase heap ~phase:Obs.Event.phase_gc_mark (fun () -> mark heap)
  in
  let c1 = clock heap in
  let live_objects = ref 0 in
  let live_words = ref 0 in
  let freed_objects = ref 0 in
  let freed_words = ref 0 in
  let free_blocks = ref [] in
  (* Accumulate a run of contiguous dead/free blocks, then emit it as one
     coalesced free block.  [run_start] is the data address the coalesced
     block will have; its size swallows the headers of all merged blocks
     except the first. *)
  let run_start = ref 0 in
  let run_end = ref 0 in
  let flush_run () =
    if !run_start <> 0 then begin
      let words = (!run_end - !run_start) / Layout.word_size in
      free_blocks := (!run_start, words) :: !free_blocks;
      freed_words := !freed_words + words;
      run_start := 0
    end
  in
  in_phase heap ~phase:Obs.Event.phase_gc_sweep (fun () ->
      Heap.iter_blocks heap (fun ~addr ~kind ~words ->
          let dead = kind <> Layout.kind_free && not (Nvm.Intset.mem marks addr) in
          if Nvm.Intset.mem marks addr then begin
            flush_run ();
            incr live_objects;
            live_words := !live_words + words
          end
          else begin
            if dead then incr freed_objects;
            if !run_start = 0 then run_start := addr;
            run_end := addr + (words * Layout.word_size)
          end);
      flush_run ();
      Heap.reset_allocator heap ~free:!free_blocks);
  let c2 = clock heap in
  {
    live_objects = !live_objects;
    live_words = !live_words;
    freed_objects = !freed_objects;
    freed_words = !freed_words;
    coalesced_blocks = List.length !free_blocks;
    dangling_refs;
    mark_cycles = c1 - c0;
    sweep_cycles = c2 - c1;
  }

let reachable heap = fst (mark heap)

type quarantine = {
  unscannable : int;
  quarantined_words : int;
  reasons : string list;
}

(* [mark] hardened: pushes are already gated by [is_object_start] (no
   raise possible), but scanning a marked object can still blow up on an
   adversarial image — an unregistered kind byte, or a header size so
   large that field loads leave the region.  Keep such objects marked
   (never free what we cannot parse) but do not traverse them. *)
let mark_graceful heap =
  let pmem = Heap.pmem heap in
  let marks = Nvm.Intset.create ~capacity:4096 () in
  let dangling = ref 0 in
  let unscannable = ref 0 in
  let reasons = ref [] in
  let load a = Nvm.Pmem.load pmem a in
  let stack = Istack.create () in
  let push a =
    let a = strip_tag a in
    if a <> Heap.null && not (Nvm.Intset.mem marks a) then
      if Heap.is_object_start heap a then begin
        ignore (Nvm.Intset.add marks a : bool);
        Istack.push stack a
      end
      else incr dangling
  in
  push (Heap.get_root heap);
  while not (Istack.is_empty stack) do
    let a = Istack.pop stack in
    match
      let kind = Heap.kind_of heap a in
      let words = Heap.words_of heap a in
      (Kind.scan_object ~kind) ~load ~addr:a ~words
    with
    | refs -> List.iter push refs
    | exception Heap.Corrupt msg | exception Invalid_argument msg ->
        incr unscannable;
        reasons := Fmt.str "object %d unscannable: %s" a msg :: !reasons
  done;
  (marks, !dangling, !unscannable, List.rev !reasons)

let collect_graceful heap =
  let c0 = clock heap in
  let marks, dangling_refs, unscannable, mark_reasons =
    in_phase heap ~phase:Obs.Event.phase_gc_mark (fun () -> mark_graceful heap)
  in
  let c1 = clock heap in
  let live_objects = ref 0 in
  let live_words = ref 0 in
  let freed_objects = ref 0 in
  let freed_words = ref 0 in
  let free_blocks = ref [] in
  let run_start = ref 0 in
  let run_end = ref 0 in
  let flush_run () =
    if !run_start <> 0 then begin
      let words = (!run_end - !run_start) / Layout.word_size in
      free_blocks := (!run_start, words) :: !free_blocks;
      freed_words := !freed_words + words;
      run_start := 0
    end
  in
  let quarantined_words, sweep_reasons =
    in_phase heap ~phase:Obs.Event.phase_gc_sweep (fun () ->
        let walk =
          Heap.fold_blocks_checked heap (fun ~addr ~kind ~words ->
              let dead =
                kind <> Layout.kind_free && not (Nvm.Intset.mem marks addr)
              in
              if Nvm.Intset.mem marks addr then begin
                flush_run ();
                incr live_objects;
                live_words := !live_words + words
              end
              else begin
                if dead then incr freed_objects;
                if !run_start = 0 then run_start := addr;
                run_end := addr + (words * Layout.word_size)
              end)
        in
        flush_run ();
        let quarantined =
          match walk with
          | Ok () -> (0, [])
          | Error (header_addr, msg) ->
              (* The blocks before [header_addr] swept normally; the tail
                 is unparseable, so leave it out of the free lists
                 entirely. *)
              ( (Heap.end_addr heap - header_addr) / Layout.word_size,
                [ Fmt.str "heap tail quarantined: %s" msg ] )
        in
        Heap.reset_allocator heap ~free:!free_blocks;
        quarantined)
  in
  let c2 = clock heap in
  ( {
      live_objects = !live_objects;
      live_words = !live_words;
      freed_objects = !freed_objects;
      freed_words = !freed_words;
      coalesced_blocks = List.length !free_blocks;
      dangling_refs;
      mark_cycles = c1 - c0;
      sweep_cycles = c2 - c1;
    },
    {
      unscannable;
      quarantined_words;
      reasons = mark_reasons @ sweep_reasons;
    } )

(* ------------------------------------------------------------------ *)
(* Streamed discovery: the scalable mark engine behind the parallel and
   incremental recovery modes.

   The eager mark above reads every word through the costed cache
   simulation, which pins its charge sequence to the exact DFS order —
   correct, but inherently serial and expensive to simulate on
   million-object heaps.  The streamed engine instead *discovers* the
   live set with cost-free peeks ([Nvm.Pmem.peek_int] touches neither
   the cache model nor the statistics), counting the cache lines it
   touches — one line fetch covers an object's header, fields and every
   in-object scanner read — and then charges one analytic bill: every
   counted line at the cold-miss price.  That models a recovery scan
   that streams the heap once with no reuse between objects, and —
   because peeks are effect-free — the count, the mark set and the
   resulting charge are independent of how the scan is scheduled.
   Partitioning the frontier across domains is therefore free of
   determinism hazards: the result is byte-identical for any worker
   count, including one.

   Discovery is a level-synchronous BFS.  Each frontier is split into
   fixed-size chunks (independent of the worker count); workers scan
   their chunk's objects into private buffers; a sequential merge in
   chunk order deduplicates candidates into the global mark set.  The
   per-chunk outputs are pure functions of the chunk contents, and the
   merge order is fixed, so the discovery order — and with it the mark
   set's insertion order — never depends on scheduling. *)

let chunk_size = 2048

type chunk_out = {
  mutable cand : int array;  (* emitted valid object starts, scan order *)
  mutable cand_n : int;
  mutable c_dangling : int;
  mutable c_lines : int;  (* cache lines spanned by the scanned objects *)
  mutable c_unscannable : int;
  mutable c_reasons : string list;  (* newest first *)
}

let chunk_out () =
  {
    cand = Array.make 256 0;
    cand_n = 0;
    c_dangling = 0;
    c_lines = 0;
    c_unscannable = 0;
    c_reasons = [];
  }

let push_cand out p =
  if out.cand_n = Array.length out.cand then begin
    let b = Array.make (2 * out.cand_n) 0 in
    Array.blit out.cand 0 b 0 out.cand_n;
    out.cand <- b
  end;
  out.cand.(out.cand_n) <- p;
  out.cand_n <- out.cand_n + 1

(* Scan objects [lo, hi) of [objs] into [out].  Dangling emissions are
   order-independent (an invalid non-null target counts once per
   emission; valid targets never count), so counting them here in the
   worker is safe.  An object whose scan raises keeps its mark but
   contributes nothing — its partial emissions are rolled back to match
   the eager graceful path, whose list scanners build the whole list
   before any push. *)
let run_chunk heap objs lo hi out =
  let pmem = Heap.pmem heap in
  let line_words = (Nvm.Pmem.config pmem).Nvm.Config.line_size / 8 in
  let load a = Nvm.Pmem.peek_int pmem a in
  let emit p =
    let p = strip_tag p in
    if p <> Heap.null then
      if Heap.is_object_start heap p then push_cand out p
      else out.c_dangling <- out.c_dangling + 1
  in
  for i = lo to hi - 1 do
    let a = objs.(i) in
    let h = Nvm.Pmem.peek_int pmem (a - Layout.word_size) in
    let kind = Layout.header_kind_i h in
    let words = Layout.header_words_i h in
    (* The scanner contract keeps every read inside [header, end): one
       streamed fetch of the object's span covers them all. *)
    out.c_lines <- out.c_lines + ((words + 1 + line_words - 1) / line_words);
    let saved_n = out.cand_n in
    let saved_d = out.c_dangling in
    match (Kind.scan_object_int ~kind) ~load ~addr:a ~words ~emit with
    | () -> ()
    | exception Heap.Corrupt msg | exception Invalid_argument msg ->
        out.cand_n <- saved_n;
        out.c_dangling <- saved_d;
        out.c_unscannable <- out.c_unscannable + 1;
        out.c_reasons <-
          Fmt.str "object %d unscannable: %s" a msg :: out.c_reasons
  done

type discovery = {
  d_marks : Nvm.Intset.t;
  d_dangling : int;
  d_unscannable : int;
  d_reasons : string list;
  d_lines : int;  (* root line + the cache lines spanned by every object *)
}

let seq_fanout tasks = List.iter (fun f -> f ()) tasks

let discover ?(fanout = seq_fanout) heap =
  let pmem = Heap.pmem heap in
  let marks = Nvm.Intset.create ~capacity:4096 () in
  let dangling = ref 0 in
  let unscannable = ref 0 in
  let reasons = ref [] in
  let lines = ref 1 (* the line holding the root word *) in
  let frontier = Istack.create () in
  (let root = strip_tag (Nvm.Pmem.peek_int pmem (Heap.base heap + Layout.root_offset)) in
   if root <> Heap.null then
     if Heap.is_object_start heap root then begin
       ignore (Nvm.Intset.add marks root : bool);
       Istack.push frontier root
     end
     else incr dangling);
  while not (Istack.is_empty frontier) do
    let objs = Array.sub frontier.Istack.a 0 frontier.Istack.n in
    frontier.Istack.n <- 0;
    let n = Array.length objs in
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    let outs = Array.init n_chunks (fun _ -> chunk_out ()) in
    let tasks =
      List.init n_chunks (fun c () ->
          run_chunk heap objs (c * chunk_size)
            (min n ((c + 1) * chunk_size))
            outs.(c))
    in
    fanout tasks;
    (* Deterministic merge: chunk order, then emission order within the
       chunk.  [Intset.add] deduplicates against everything discovered
       so far, including earlier chunks of this level. *)
    Array.iter
      (fun out ->
        dangling := !dangling + out.c_dangling;
        lines := !lines + out.c_lines;
        unscannable := !unscannable + out.c_unscannable;
        reasons := List.rev_append out.c_reasons !reasons;
        for i = 0 to out.cand_n - 1 do
          let p = out.cand.(i) in
          if Nvm.Intset.add marks p then Istack.push frontier p
        done)
      outs
  done;
  {
    d_marks = marks;
    d_dangling = !dangling;
    d_unscannable = !unscannable;
    d_reasons = List.rev !reasons;
    d_lines = !lines;
  }

type sweep_plan = {
  p_live_objects : int;
  p_live_words : int;
  p_freed_objects : int;
  p_freed_words : int;
  p_free_blocks : (int * int) list;
  p_lines : int;  (* distinct cache lines the header walk touches *)
  p_quarantined_words : int;
  p_reasons : string list;
}

(* Plan the sweep with peeks only: no stores, no charges.  The block
   walk and run coalescing mirror [collect_graceful]'s exactly, so the
   free-block list — and hence the post-[reset_allocator] heap image —
   matches the eager path byte for byte on any parseable heap. *)
let plan_sweep heap marks =
  let pmem = Heap.pmem heap in
  let live_objects = ref 0 in
  let live_words = ref 0 in
  let freed_objects = ref 0 in
  let freed_words = ref 0 in
  let free_blocks = ref [] in
  let line_size = (Nvm.Pmem.config pmem).Nvm.Config.line_size in
  let lines = ref 0 in
  let last_line = ref (-1) in
  let run_start = ref 0 in
  let run_end = ref 0 in
  let flush_run () =
    if !run_start <> 0 then begin
      let words = (!run_end - !run_start) / Layout.word_size in
      free_blocks := (!run_start, words) :: !free_blocks;
      freed_words := !freed_words + words;
      run_start := 0
    end
  in
  let quarantine = ref None in
  let rec walk header_addr =
    if header_addr < Heap.end_addr heap then begin
      let h = Nvm.Pmem.peek_int pmem header_addr in
      (* The walk is monotonic, so adjacent small-object headers sharing
         a line cost one fetch — the streaming sweep's sequential win. *)
      let ln = header_addr / line_size in
      if ln <> !last_line then begin
        incr lines;
        last_line := ln
      end;
      if not (Layout.header_valid_i h) then
        quarantine := Some (header_addr, Fmt.str "invalid header at %d" header_addr)
      else begin
        let kind = Layout.header_kind_i h in
        let words = Layout.header_words_i h in
        let addr = header_addr + Layout.word_size in
        let next = addr + (words * Layout.word_size) in
        if next > Heap.end_addr heap then
          quarantine :=
            Some (header_addr, Fmt.str "block at %d overruns heap end" addr)
        else begin
          if Nvm.Intset.mem marks addr then begin
            flush_run ();
            incr live_objects;
            live_words := !live_words + words
          end
          else begin
            if kind <> Layout.kind_free then incr freed_objects;
            if !run_start = 0 then run_start := addr;
            run_end := addr + (words * Layout.word_size)
          end;
          walk next
        end
      end
    end
  in
  walk (Heap.start_addr heap);
  flush_run ();
  let quarantined_words, reasons =
    match !quarantine with
    | None -> (0, [])
    | Some (header_addr, msg) ->
        ( (Heap.end_addr heap - header_addr) / Layout.word_size,
          [ Fmt.str "heap tail quarantined: %s" msg ] )
  in
  {
    p_live_objects = !live_objects;
    p_live_words = !live_words;
    p_freed_objects = !freed_objects;
    p_freed_words = !freed_words;
    p_free_blocks = !free_blocks;
    p_lines = !lines;
    p_quarantined_words = quarantined_words;
    p_reasons = reasons;
  }

let load_miss heap = (Nvm.Pmem.config (Heap.pmem heap)).Nvm.Config.load_miss

let stats_of ~disc ~plan ~mark_cycles ~sweep_cycles =
  ( {
      live_objects = plan.p_live_objects;
      live_words = plan.p_live_words;
      freed_objects = plan.p_freed_objects;
      freed_words = plan.p_freed_words;
      coalesced_blocks = List.length plan.p_free_blocks;
      dangling_refs = disc.d_dangling;
      mark_cycles;
      sweep_cycles;
    },
    {
      unscannable = disc.d_unscannable;
      quarantined_words = plan.p_quarantined_words;
      reasons = disc.d_reasons @ plan.p_reasons;
    } )

let collect_streamed ?fanout heap =
  let pmem = Heap.pmem heap in
  let miss = load_miss heap in
  let c0 = clock heap in
  let disc =
    in_phase heap ~phase:Obs.Event.phase_gc_mark (fun () ->
        let d = discover ?fanout heap in
        Nvm.Pmem.charge pmem (d.d_lines * miss);
        d)
  in
  let c1 = clock heap in
  let plan =
    in_phase heap ~phase:Obs.Event.phase_gc_sweep (fun () ->
        let p = plan_sweep heap disc.d_marks in
        Nvm.Pmem.charge pmem (p.p_lines * miss);
        Heap.reset_allocator heap ~free:p.p_free_blocks;
        p)
  in
  let c2 = clock heap in
  stats_of ~disc ~plan ~mark_cycles:(c1 - c0) ~sweep_cycles:(c2 - c1)

module Incremental = struct
  type gc = {
    heap : Heap.t;
    marks : Nvm.Intset.t;
    stats : stats;
    quarantine : quarantine;
    free_blocks : (int * int) list;
    total : int;
    miss : int;
    touched : Nvm.Intset.t;
    mutable consumed : int;
    mutable on_demand_count : int;
    mutable applied : bool;
  }

  type t = gc

  let start ?fanout heap =
    let disc = discover ?fanout heap in
    let plan = plan_sweep heap disc.d_marks in
    let miss = load_miss heap in
    let mark_cycles = disc.d_lines * miss in
    let sweep_cycles = plan.p_lines * miss in
    let stats, quarantine = stats_of ~disc ~plan ~mark_cycles ~sweep_cycles in
    {
      heap;
      marks = disc.d_marks;
      stats;
      quarantine;
      free_blocks = plan.p_free_blocks;
      total = mark_cycles + sweep_cycles;
      miss;
      touched = Nvm.Intset.create ~capacity:1024 ();
      consumed = 0;
      on_demand_count = 0;
      applied = false;
    }

  let total_cycles t = t.total
  let remaining_cycles t = t.total - t.consumed
  let plan t = (t.stats, t.quarantine)
  let finished t = t.applied
  let touched_objects t = Nvm.Intset.cardinal t.touched
  let marked_objects t = Nvm.Intset.cardinal t.marks

  let advance t ~budget =
    if t.applied then 0
    else begin
      let take = min budget (remaining_cycles t) in
      if take > 0 then begin
        Nvm.Pmem.charge (Heap.pmem t.heap) take;
        t.consumed <- t.consumed + take
      end;
      take
    end

  let on_demand t =
    if t.applied then 0
    else begin
      let marked = max 1 (Nvm.Intset.cardinal t.marks) in
      let cost = max t.miss (t.total / marked) in
      Nvm.Pmem.charge (Heap.pmem t.heap) cost;
      t.consumed <- min t.total (t.consumed + cost);
      t.on_demand_count <- t.on_demand_count + 1;
      cost
    end

  let on_demand_count t = t.on_demand_count

  let touch t ~addr =
    let a = strip_tag addr in
    if a <> Heap.null && Nvm.Intset.mem t.marks a && Nvm.Intset.add t.touched a
    then begin
      let h = Nvm.Pmem.peek_int (Heap.pmem t.heap) (a - Layout.word_size) in
      let words = Layout.header_words_i h in
      let lw = (Nvm.Pmem.config (Heap.pmem t.heap)).Nvm.Config.line_size / 8 in
      let cost = (words + 1 + lw - 1) / lw * t.miss in
      Nvm.Pmem.charge (Heap.pmem t.heap) cost;
      t.consumed <- min t.total (t.consumed + cost);
      cost
    end
    else 0

  let finish t =
    if not t.applied then begin
      let rem = remaining_cycles t in
      if rem > 0 then begin
        Nvm.Pmem.charge (Heap.pmem t.heap) rem;
        t.consumed <- t.total
      end;
      Heap.reset_allocator t.heap ~free:t.free_blocks;
      t.applied <- true
    end;
    (t.stats, t.quarantine)
end

let verify heap =
  let pmem = Heap.pmem heap in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let peek a = Nvm.Pmem.peek pmem a in
  (* Pass 1: the block chain must tile the allocated span exactly. *)
  let objects = Hashtbl.create 1024 in
  let rec walk header_addr =
    if header_addr < Heap.end_addr heap then begin
      let h = peek header_addr in
      if not (Layout.header_valid h) then
        err "invalid header at %d: %Lx" header_addr h
      else begin
        let words = Layout.header_words h in
        let kind = Layout.header_kind h in
        let a = header_addr + Layout.word_size in
        let next = a + (words * Layout.word_size) in
        if next > Heap.end_addr heap then
          err "block at %d overruns heap end" a
        else begin
          if kind <> Layout.kind_free then begin
            if not (Kind.is_registered kind) then
              err "object at %d has unregistered kind %d" a kind;
            Hashtbl.replace objects a (kind, words)
          end;
          walk next
        end
      end
    end
  in
  walk (Heap.start_addr heap);
  (* Pass 2: pointers from reachable objects must target valid objects. *)
  if !errors = [] then begin
    let seen = Hashtbl.create 1024 in
    let stack = Stack.create () in
    let push src a =
      let a = strip_tag a in
      if a <> Heap.null && not (Hashtbl.mem seen a) then
        if Hashtbl.mem objects a then begin
          Hashtbl.replace seen a ();
          Stack.push a stack
        end
        else err "object %d references invalid address %d" src a
    in
    let root = Int64.to_int (peek (Heap.base heap + Layout.root_offset)) in
    push 0 root;
    while not (Stack.is_empty stack) do
      let a = Stack.pop stack in
      match Hashtbl.find_opt objects a with
      | None -> ()
      | Some (kind, words) when Kind.is_registered kind ->
          let scan = Kind.scan_object ~kind in
          List.iter (push a) (scan ~load:peek ~addr:a ~words)
      | Some _ -> ()
    done
  end;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp_stats ppf s =
  Fmt.pf ppf
    "live %d objs / %d words; reclaimed %d objs, %d words in %d free blocks; \
     dangling refs %d; mark %d cycles, sweep %d cycles"
    s.live_objects s.live_words s.freed_objects s.freed_words
    s.coalesced_blocks s.dangling_refs s.mark_cycles s.sweep_cycles
