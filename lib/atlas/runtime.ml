module Heap = Pheap.Heap
module Scheduler = Sched.Scheduler

type costs = { lock_cycles : int; unlock_cycles : int; log_cycles : int }

let default_costs = { lock_cycles = 30; unlock_cycles = 20; log_cycles = 45 }

type ocs_info = {
  id : int;
  tid : int;
  mutable committed : bool;
  mutable stable : bool;
  mutable deps : int list;
  mutable rev_deps : int list;
  mutable seg_last : int;  (* address of the OCS's most recent log entry *)
}

type ctx = {
  tid : int;
  mutable depth : int;
  mutable current : ocs_info option;
  logged : Intset.t;  (* word addresses already logged in the open OCS *)
  dirtied : Intset.t;  (* line addresses; Log_flush commits *)
  segments : int Queue.t;  (* unpruned OCS ids of this thread, oldest first *)
}

type t = {
  mode : Mode.t;
  heap : Heap.t;
  ulog : Undo_log.t;
  costs : costs;
  line_mask : int;  (* lnot (line_size - 1); line_size is a power of two *)
  mutable next_ocs : int;
  mutable next_seq : int;
  mutable started : int;
  table : (int, ocs_info) Hashtbl.t;
  ctxs : ctx array;
  (* Deferred durability (Log_flush_async): committed sections whose
     data has not yet reached the persistence domain, in commit order,
     with the union of their dirtied lines. *)
  checkpoint_every : int;
  mutable commits_since_checkpoint : int;
  mutable in_checkpoint : bool;
  pending : (int * int) Queue.t;  (* commit seq, ocs id *)
  pending_lines : (int, unit) Hashtbl.t;
}

type amutex = {
  m : Scheduler.Mutex.mutex;
  amid : int;
  mutable last_release : int;  (* OCS id, 0 = none *)
}

let create ?(costs = default_costs) ?(first_seq = 1) ?(checkpoint_every = 32)
    ~mode ~heap ~log_base ~log_size ~num_threads () =
  let pmem = Heap.pmem heap in
  let ulog = Undo_log.format pmem ~base:log_base ~size:log_size ~num_threads in
  if Mode.deferred_durability mode then Undo_log.set_watermark ulog 0;
  let ctx tid =
    {
      tid;
      depth = 0;
      current = None;
      logged = Intset.create ~capacity:64 ();
      dirtied = Intset.create ~capacity:64 ();
      segments = Queue.create ();
    }
  in
  {
    mode;
    heap;
    ulog;
    costs;
    line_mask = lnot ((Nvm.Pmem.config pmem).Nvm.Config.line_size - 1);
    next_ocs = 1;
    next_seq = first_seq;
    started = 0;
    table = Hashtbl.create 256;
    ctxs = Array.init num_threads ctx;
    checkpoint_every;
    commits_since_checkpoint = 0;
    in_checkpoint = false;
    pending = Queue.create ();
    pending_lines = Hashtbl.create 256;
  }

let mode t = t.mode
let heap t = t.heap
let log t = t.ulog

let thread_ctx t ~tid =
  if tid < 0 || tid >= Array.length t.ctxs then
    Fmt.invalid_arg "Atlas.thread_ctx: bad tid %d" tid;
  t.ctxs.(tid)

let make_mutex t sched =
  ignore t;
  let m = Scheduler.Mutex.create sched in
  { m; amid = Scheduler.Mutex.id m; last_release = 0 }

let mutex_id am = am.amid

let pmem t = Heap.pmem t.heap

(* Tracing rides the device's tracer: Atlas-level events (log appends,
   OCS begin/commit, dependency edges) land in the same ring as the
   device ops they interleave with.  Reads and int writes only. *)
let[@inline] trace t ~code ~a ~b =
  match Nvm.Pmem.tracer (pmem t) with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~code ~a ~b

let append t (ctx : ctx) payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry = { Log_entry.seq; tid = ctx.tid; payload } in
  let addr = Undo_log.append t.ulog ~tid:ctx.tid entry in
  (match ctx.current with
  | Some cur -> cur.seg_last <- addr
  | None -> assert false);
  (* A log append is a durability boundary: end any batched-execution
     quantum here so the append's charge — and the crash-point
     enumeration that rides on scheduler steps — passes through the
     scheduler even when [log_cycles] is configured to 0.  (With a
     positive cost the [charge] below would settle anyway; the explicit
     barrier makes the boundary unconditional.) *)
  Nvm.Pmem.quantum_barrier (pmem t);
  Nvm.Pmem.charge (pmem t) t.costs.log_cycles;
  trace t ~code:Obs.Event.log_append ~a:seq ~b:0;
  if Mode.flushes t.mode then Undo_log.flush_entry t.ulog ~entry_addr:addr;
  addr

(* Stability: an OCS can never be rolled back once it is committed and
   every section it depends on is itself stable.  Stability is monotone,
   so we propagate it eagerly along reverse edges and prune as we go.
   (A cycle of mutually-dependent committed OCSes is never proven stable
   by this rule; that is conservative — its log space is retained — and
   such cycles require overlapping sections trading two mutexes.) *)
let rec prune_thread t tid =
  let ctx = t.ctxs.(tid) in
  match Queue.peek_opt ctx.segments with
  | None -> ()
  | Some id -> begin
      match Hashtbl.find_opt t.table id with
      | None ->
          ignore (Queue.pop ctx.segments);
          prune_thread t tid
      | Some info when info.stable ->
          ignore (Queue.pop ctx.segments);
          Undo_log.advance_tail t.ulog ~tid
            ~new_tail:(Undo_log.next_slot t.ulog info.seg_last)
            ~flush:(Mode.flushes t.mode);
          Hashtbl.remove t.table id;
          prune_thread t tid
      | Some _ -> ()
    end

let rec try_stabilize t id =
  match Hashtbl.find_opt t.table id with
  | None -> ()
  | Some info when info.stable || not info.committed -> ()
  | Some info ->
      let dep_stable d =
        match Hashtbl.find_opt t.table d with
        | None -> true (* pruned, hence stable *)
        | Some di -> di.stable
      in
      if List.for_all dep_stable info.deps then begin
        info.stable <- true;
        prune_thread t info.tid;
        List.iter (try_stabilize t) info.rev_deps
      end

(* Durability point: flush every line dirtied by commits since the
   last point, then advance the persistent watermark along the prefix of
   pending commits that is now stable (committed, data durable, and all
   dependencies stable).  A commit whose dependency is still an open
   section blocks the watermark — recovery must be able to cascade. *)
let checkpoint t =
  (* Flushes below are scheduler yield points, so another thread can
     commit — and try to start a durability point — while this one runs.
     The guard makes the point exclusive; commits that arrive meanwhile
     are simply covered by the next point. *)
  if
    (not t.in_checkpoint)
    && not (Hashtbl.length t.pending_lines = 0 && Queue.is_empty t.pending)
  then begin
    t.in_checkpoint <- true;
    Hashtbl.iter (fun line () -> Nvm.Pmem.flush (pmem t) line) t.pending_lines;
    Nvm.Pmem.fence (pmem t);
    Hashtbl.reset t.pending_lines;
    let advanced = ref None in
    let continue_ = ref true in
    while !continue_ do
      match Queue.peek_opt t.pending with
      | None -> continue_ := false
      | Some (seq, id) ->
          try_stabilize t id;
          let stable =
            match Hashtbl.find_opt t.table id with
            | None -> true (* pruned, hence stable *)
            | Some info -> info.stable
          in
          if stable then begin
            ignore (Queue.pop t.pending);
            advanced := Some seq
          end
          else continue_ := false
    done;
    (match !advanced with
    | Some seq -> Undo_log.set_watermark t.ulog seq
    | None -> ());
    t.in_checkpoint <- false
  end;
  t.commits_since_checkpoint <- 0

let begin_ocs t ctx =
  let id = t.next_ocs in
  t.next_ocs <- id + 1;
  t.started <- t.started + 1;
  let info =
    {
      id;
      tid = ctx.tid;
      committed = false;
      stable = false;
      deps = [];
      rev_deps = [];
      seg_last = 0;
    }
  in
  Hashtbl.replace t.table id info;
  ctx.current <- Some info;
  Queue.add id ctx.segments;
  trace t ~code:Obs.Event.ocs_begin ~a:id ~b:0;
  ignore (append t ctx (Log_entry.Begin { ocs = id }) : int)

let record_dep t ctx am =
  match ctx.current with
  | None -> assert false
  | Some cur ->
      let lr = am.last_release in
      if lr <> 0 && lr <> cur.id && not (List.mem lr cur.deps) then begin
        match Hashtbl.find_opt t.table lr with
        | Some dep_info when not dep_info.stable ->
            cur.deps <- lr :: cur.deps;
            dep_info.rev_deps <- cur.id :: dep_info.rev_deps;
            trace t ~code:Obs.Event.dep ~a:lr ~b:am.amid;
            ignore
              (append t ctx (Log_entry.Dep { on_ocs = lr; mutex = am.amid })
                : int)
        | Some _ | None -> ()
      end

let lock t ctx am =
  Nvm.Pmem.charge (pmem t) t.costs.lock_cycles;
  Scheduler.Mutex.lock am.m;
  if Mode.logs t.mode then begin
    if ctx.depth = 0 then begin_ocs t ctx;
    record_dep t ctx am
  end;
  ctx.depth <- ctx.depth + 1

let commit t ctx =
  match ctx.current with
  | None -> assert false
  | Some cur ->
      if Mode.eager_data_flush t.mode then begin
        (* Eager durability: the section's data reaches the persistence
           domain before its commit record, so a committed-by-the-log OCS
           is never partially durable. *)
        Intset.iter (fun line -> Nvm.Pmem.flush (pmem t) line) ctx.dirtied;
        Nvm.Pmem.fence (pmem t)
      end;
      let commit_seq = t.next_seq in
      ignore (append t ctx (Log_entry.Commit { ocs = cur.id }) : int);
      trace t ~code:Obs.Event.ocs_commit ~a:cur.id ~b:commit_seq;
      cur.committed <- true;
      ctx.current <- None;
      Intset.clear ctx.logged;
      if Mode.deferred_durability t.mode then begin
        (* Data durability is deferred to the next durability point; the
           section stays unpruned (it may still be rolled back). *)
        Intset.iter
          (fun line -> Hashtbl.replace t.pending_lines line ())
          ctx.dirtied;
        Intset.clear ctx.dirtied;
        Queue.add (commit_seq, cur.id) t.pending;
        t.commits_since_checkpoint <- t.commits_since_checkpoint + 1;
        if t.commits_since_checkpoint >= t.checkpoint_every then checkpoint t
      end
      else begin
        Intset.clear ctx.dirtied;
        try_stabilize t cur.id
      end

let unlock t ctx am =
  if ctx.depth <= 0 then invalid_arg "Atlas.unlock: not inside a section";
  if Mode.logs t.mode then begin
    (match ctx.current with
    | Some cur -> am.last_release <- cur.id
    | None -> assert false);
    if ctx.depth = 1 then commit t ctx
  end;
  ctx.depth <- ctx.depth - 1;
  Scheduler.Mutex.unlock am.m;
  Nvm.Pmem.charge (pmem t) t.costs.unlock_cycles

let with_lock t ctx am f =
  lock t ctx am;
  match f () with
  | v ->
      unlock t ctx am;
      v
  | exception e ->
      unlock t ctx am;
      raise e

let[@inline] line_addr t addr = addr land t.line_mask

let store t ctx addr v =
  match t.mode with
  | Mode.No_log -> Nvm.Pmem.store (pmem t) addr v
  | Mode.Log_only | Mode.Log_flush | Mode.Log_flush_async -> begin
      match ctx.current with
      | None ->
          invalid_arg
            "Atlas.store: persistent store outside any critical section"
      | Some _ ->
          (* [Intset.add] answers membership and inserts in one probe
             walk; marking before the load/append is safe because [ctx]
             is thread-local and a crash discards it entirely. *)
          if Intset.add ctx.logged addr then begin
            let old = Nvm.Pmem.load (pmem t) addr in
            ignore (append t ctx (Log_entry.Update { addr; old }) : int)
          end;
          Nvm.Pmem.store (pmem t) addr v;
          if Mode.flushes t.mode then
            ignore (Intset.add ctx.dirtied (line_addr t addr) : bool)
    end

let load t addr = Nvm.Pmem.load (pmem t) addr

let store_field t ctx obj i v = store t ctx (Heap.field_addr t.heap obj i) v

let store_field_int t ctx obj i v = store_field t ctx obj i (Int64.of_int v)
let load_field t obj i = Heap.load_field t.heap obj i
let load_field_int t obj i = Heap.load_field_int t.heap obj i

let ocs_depth ctx = ctx.depth
let current_ocs ctx = Option.map (fun (o : ocs_info) -> o.id) ctx.current
let live_log_entries t ~tid = Undo_log.live_entries t.ulog ~tid
let ocs_started t = t.started
let unpruned_ocses t = Hashtbl.length t.table

let watermark t = Undo_log.watermark t.ulog
let pending_commits t = Queue.length t.pending
