(* Alias: the set lives in [Nvm.Intset] now, so layers below atlas (the
   recovery-time GC in pheap, which atlas itself depends on) can use it
   too.  [Atlas.Intset] remains the historical name for the runtime's
   call sites and external users. *)
include Nvm.Intset
