(** Per-thread undo-log ring buffers in NVM.

    On-media layout of the log region:

    {v
    base+ 0  log magic ("TSPLOG11")
    base+ 8  number of thread buffers
    base+16  bytes per buffer
    base+64  descriptor for thread 0: [tail address | reserved]
    base+80  descriptor for thread 1 ...
    ...      buffers, one per thread, line-aligned
    v}

    Each buffer is a ring of 32-byte {!Log_entry} slots.  The persistent
    descriptor holds only the {e tail} (oldest unpruned entry); the head
    is rediscovered after a crash by scanning forward while entries are
    valid and their sequence numbers strictly increase.  The slot at the
    head is always kept with a zeroed header word (a sentinel), so a scan
    can never run off the fresh window into stale entries from a previous
    ring lap — without the sentinel, a stale [Begin] whose [Commit] had
    been overwritten would masquerade as an interrupted OCS and recovery
    would "roll back" a section that actually committed long ago. *)

type t

exception Log_full of { tid : int }
(** The writer caught up with the tail: unpruned entries fill the ring.
    Seen only under deep OCS nesting with undersized buffers. *)

val format : Nvm.Pmem.t -> base:int -> size:int -> num_threads:int -> t
(** Initialise (or re-initialise, after recovery) the log region:
    descriptors written, every tail at its buffer start, sentinels
    zeroed, and the formatting flushed — an empty log must be durable
    even without TSP. *)

val attach : Nvm.Pmem.t -> base:int -> t
(** Attach for recovery: reads the region header.
    @raise Invalid_argument if the header does not validate
    (see {!attach_result}). *)

val attach_result : Nvm.Pmem.t -> base:int -> (t, string) result
(** Graceful {!attach}: after bit rot every header field may be garbage,
    so the magic, thread count, buffer size and overall layout are each
    validated before being trusted as an address or a loop bound.
    [Error] carries a human-readable diagnosis; the region is left
    untouched. *)

val num_threads : t -> int
val capacity_entries : t -> int

(** {1 Writer side (failure-free operation)} *)

val append : t -> tid:int -> Log_entry.t -> int
(** Write an entry at the head of [tid]'s ring, advance the head and
    re-plant the sentinel.  Returns the entry's address.
    @raise Log_full when the ring has no free slot. *)

val flush_entry : t -> entry_addr:int -> unit
(** Synchronously persist an appended entry {e and} its sentinel: flush
    the entry's line, flush the sentinel's line when it differs, fence.
    This — per entry, before the guarded store — is exactly the overhead
    TSP removes. *)

val advance_tail : t -> tid:int -> new_tail:int -> flush:bool -> unit
(** Prune: move [tid]'s persistent tail to [new_tail] (the address one
    past a stable segment, wrapped).  [flush] persists the descriptor
    synchronously (Log_flush mode). *)

val next_slot : t -> int -> int
(** Ring successor of an entry address. *)

val tail : t -> tid:int -> int
val live_entries : t -> tid:int -> int
(** Entries currently between tail and head of [tid]'s ring. *)

val set_watermark : t -> int -> unit
(** Persist the durability watermark: the highest commit sequence whose
    section data has reached the persistence domain.  Synchronous
    (flush + fence): the watermark must never run ahead of the data. *)

val watermark : t -> int
(** Current persistent watermark; -1 when the mode does not use one. *)

(** {1 Recovery side} *)

val scan_thread : t -> tid:int -> Log_entry.t list
(** The valid window of [tid]'s ring in append order: from the persistent
    tail forward while entries decode and sequence numbers strictly
    increase, stopping at the sentinel. *)

val scan_thread_checked :
  t -> tid:int -> (Log_entry.t list * int, string) result
(** {!scan_thread} hardened for adversarial images.  [Error] when the
    persistent tail descriptor is not a valid slot address in [tid]'s
    buffer (the whole thread log is unusable).  [Ok (entries, orphans)]
    otherwise: [entries] is the validated window exactly as
    {!scan_thread} returns it, and [orphans] counts decodable entries
    {e beyond} the cut whose sequence numbers continue the window —
    evidence that the scan was truncated at a torn or corrupted entry
    rather than stopping at the log's natural head.  Orphaned entries
    are deliberately not replayed (nothing after a tear can be trusted);
    recovery reports them as degradation instead. *)

val scan_thread_streamed :
  t -> tid:int -> (Log_entry.t list * int, string) result * int
(** {!scan_thread_checked} over cost-free peeks: identical result, plus
    the number of log words read (tail descriptor, entry decodes and the
    orphan probe).  The caller charges the streamed-scan bill itself;
    because peeks have no cache effects, scans of distinct threads' rings
    may run concurrently with a deterministic outcome. *)
