module Heap = Pheap.Heap

type verdict = Clean | Degraded of string list | Unrecoverable of string

type report = {
  log_entries : int;
  ocses : int;
  committed : int;
  incomplete : int;
  cascaded : int;
  updates_applied : int;
  updates_skipped : int;
  max_seq : int;
  anomalies : string list;
  truncated_entries : int;
  verdict : verdict;
}

type rec_ocs = {
  id : int;
  mutable committed : bool;
  mutable commit_seq : int;  (* sequence of the Commit entry, 0 if none *)
  mutable deps : int list;
  mutable updates : (int * int * int64) list;  (* seq, addr, old — newest first *)
}

let parse_thread ~anomalies ~table entries =
  let anomaly fmt = Fmt.kstr (fun s -> anomalies := s :: !anomalies) fmt in
  let current = ref None in
  let open_ocs id =
    let r = { id; committed = false; commit_seq = 0; deps = []; updates = [] } in
    Hashtbl.replace table id r;
    current := Some r
  in
  let close () = current := None in
  List.iter
    (fun (e : Log_entry.t) ->
      match e.payload with
      | Log_entry.Begin { ocs } ->
          (match !current with
          | Some r ->
              anomaly "begin of ocs %d while ocs %d still open" ocs r.id
          | None -> ());
          open_ocs ocs
      | Log_entry.Update { addr; old } -> begin
          match !current with
          | Some r -> r.updates <- (e.seq, addr, old) :: r.updates
          | None -> anomaly "update entry (seq %d) outside any ocs" e.seq
        end
      | Log_entry.Dep { on_ocs; mutex = _ } -> begin
          match !current with
          | Some r -> r.deps <- on_ocs :: r.deps
          | None -> anomaly "dep entry (seq %d) outside any ocs" e.seq
        end
      | Log_entry.Commit { ocs } -> begin
          match !current with
          | Some r when r.id = ocs ->
              r.committed <- true;
              r.commit_seq <- e.seq;
              close ()
          | Some r ->
              anomaly "commit of ocs %d while ocs %d open" ocs r.id;
              close ()
          | None -> anomaly "commit of ocs %d with no open ocs" ocs
        end)
    entries

let rollback_closure ~watermark table =
  (* Seed with interrupted sections — and, under deferred durability,
     with committed sections the watermark does not cover (their data
     never provably reached the persistence domain).  Then iterate to a
     fixpoint: a committed section whose dependency rolls back must roll
     back too. *)
  let doomed = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id r ->
      if
        (not r.committed)
        || (watermark >= 0 && r.commit_seq > watermark)
      then Hashtbl.replace doomed id ())
    table;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun id r ->
        if not (Hashtbl.mem doomed id)
           && List.exists (Hashtbl.mem doomed) r.deps
        then begin
          Hashtbl.replace doomed id ();
          changed := true
        end)
      table
  done;
  doomed

let unrecoverable msg =
  {
    log_entries = 0;
    ocses = 0;
    committed = 0;
    incomplete = 0;
    cascaded = 0;
    updates_applied = 0;
    updates_skipped = 0;
    max_seq = 0;
    anomalies = [];
    truncated_entries = 0;
    verdict = Unrecoverable msg;
  }

(* The degradation message for a checksum-truncated thread log.  [None]
   when nothing was orphaned: a zero-orphan scan is not a degradation
   and must not emit a reason. *)
let orphan_warning ~tid ~orphans =
  if orphans <= 0 then None
  else
    Some
      (Fmt.str "thread %d log truncated (%d orphaned %s)" tid orphans
         (if orphans = 1 then "entry" else "entries"))

type scan_mode =
  | Costed_scan
  | Streamed_scan of ((unit -> unit) list -> unit)

let run_attached ?(scan = Costed_scan) ~heap ~pmem ~ulog () =
  (* Recovery phases bracket the log scan and the rollback so the trace
     (and the per-phase cycle registry) can attribute recovery time. *)
  let phase_begin p =
    match Nvm.Pmem.tracer pmem with
    | None -> ()
    | Some tr -> Obs.Tracer.phase_begin tr ~phase:p
  in
  let phase_end p =
    match Nvm.Pmem.tracer pmem with
    | None -> ()
    | Some tr -> Obs.Tracer.phase_end tr ~phase:p
  in
  let anomalies = ref [] in
  let degradations = ref [] in
  let truncated = ref 0 in
  let table : (int, rec_ocs) Hashtbl.t = Hashtbl.create 256 in
  let log_entries = ref 0 in
  let max_seq = ref 0 in
  let consume tid = function
    | Error msg -> degradations := msg :: !degradations
    | Ok (entries, orphans) ->
        (match orphan_warning ~tid ~orphans with
        | Some warning ->
            truncated := !truncated + orphans;
            degradations := warning :: !degradations
        | None -> ());
        log_entries := !log_entries + List.length entries;
        List.iter
          (fun (e : Log_entry.t) -> if e.seq > !max_seq then max_seq := e.seq)
          entries;
        parse_thread ~anomalies ~table entries
  in
  phase_begin Obs.Event.phase_log_scan;
  (match scan with
  | Costed_scan ->
      for tid = 0 to Undo_log.num_threads ulog - 1 do
        consume tid (Undo_log.scan_thread_checked ulog ~tid)
      done
  | Streamed_scan fanout ->
      (* Scan all rings with cost-free peeks — in parallel if [fanout]
         fans out — then merge in tid order and charge one analytic bill:
         the log is read as a sequential stream, so the cost is one cold
         miss per cache line of log data rather than per word.  The
         merge order is fixed, so the report is byte-identical for any
         fanout. *)
      let n = Undo_log.num_threads ulog in
      let results = Array.make n (Ok ([], 0), 0) in
      let tasks =
        List.init n (fun tid () ->
            results.(tid) <- Undo_log.scan_thread_streamed ulog ~tid)
      in
      fanout tasks;
      let words = ref 0 in
      Array.iteri
        (fun tid (res, w) ->
          words := !words + w;
          consume tid res)
        results;
      let cfg = Nvm.Pmem.config pmem in
      let lines =
        ((!words * 8) + cfg.Nvm.Config.line_size - 1) / cfg.Nvm.Config.line_size
      in
      Nvm.Pmem.charge pmem (lines * cfg.Nvm.Config.load_miss));
  phase_end Obs.Event.phase_log_scan;
  phase_begin Obs.Event.phase_rollback;
  let watermark = Undo_log.watermark ulog in
  let doomed = rollback_closure ~watermark table in
  let committed = Hashtbl.fold (fun _ r n -> if r.committed then n + 1 else n) table 0 in
  let incomplete =
    Hashtbl.fold (fun _ r n -> if not r.committed then n + 1 else n) table 0
  in
  let cascaded =
    Hashtbl.fold
      (fun id r n -> if r.committed && Hashtbl.mem doomed id then n + 1 else n)
      table 0
  in
  (* Collect every update of every doomed section and undo them newest
     first, so overlapping writes unwind in the right order. *)
  let updates =
    Hashtbl.fold
      (fun id r acc -> if Hashtbl.mem doomed id then r.updates @ acc else acc)
      table []
    |> List.sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1)
  in
  let applied = ref 0 and skipped = ref 0 in
  let lo = Heap.start_addr heap and hi = Heap.end_addr heap in
  List.iter
    (fun (_, addr, old) ->
      if addr land 7 = 0 && addr >= lo && addr < hi then begin
        Nvm.Pmem.store pmem addr old;
        incr applied
      end
      else begin
        incr skipped;
        anomalies := Printf.sprintf "update to invalid address %d" addr :: !anomalies
      end)
    updates;
  Nvm.Pmem.persist_all pmem;
  phase_end Obs.Event.phase_rollback;
  let anomalies = List.rev !anomalies in
  let reasons =
    List.rev !degradations
    @ (if !skipped > 0 then
         [ Fmt.str "%d rollback updates skipped (invalid targets)" !skipped ]
       else [])
    @
    match anomalies with
    | [] -> []
    | l -> [ Fmt.str "%d structural log anomalies" (List.length l) ]
  in
  {
    log_entries = !log_entries;
    ocses = Hashtbl.length table;
    committed;
    incomplete;
    cascaded;
    updates_applied = !applied;
    updates_skipped = !skipped;
    max_seq = !max_seq;
    anomalies;
    truncated_entries = !truncated;
    verdict = (match reasons with [] -> Clean | l -> Degraded l);
  }

let run ?scan ~heap ~log_base () =
  let pmem = Heap.pmem heap in
  match Undo_log.attach_result pmem ~base:log_base with
  | Error msg -> unrecoverable (Fmt.str "undo log: %s" msg)
  | Ok ulog -> run_attached ?scan ~heap ~pmem ~ulog ()

let pp_verdict ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Degraded reasons ->
      Fmt.pf ppf "degraded (%a)" Fmt.(list ~sep:semi string) reasons
  | Unrecoverable msg -> Fmt.pf ppf "UNRECOVERABLE: %s" msg

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>log entries %d (%d orphaned); ocses %d (committed %d, incomplete \
     %d, cascaded %d)@ rolled back %d updates (%d skipped); max seq %d@ \
     verdict %a%a@]"
    r.log_entries r.truncated_entries r.ocses r.committed r.incomplete
    r.cascaded r.updates_applied r.updates_skipped r.max_seq pp_verdict
    r.verdict
    (fun ppf -> function
      | [] -> ()
      | l -> Fmt.pf ppf "@ anomalies: %a" Fmt.(list ~sep:comma string) l)
    r.anomalies
