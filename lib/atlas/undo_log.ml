type t = {
  pmem : Nvm.Pmem.t;
  base : int;
  num_threads : int;
  buf_bytes : int;
  bufs_start : int;
  heads : int array;  (* volatile; rediscovered by scanning after a crash *)
  tails : int array;  (* volatile mirror of the persistent descriptors *)
}

exception Log_full of { tid : int }

let log_magic = 0x5453504C4F473131L (* "TSPLOG11" *)
let entry_bytes = Log_entry.bytes

let desc_addr base tid = base + 64 + (tid * 16)

let layout ~base ~size ~num_threads =
  let descs_end = base + 64 + (num_threads * 16) in
  let bufs_start = (descs_end + 63) / 64 * 64 in
  let avail = base + size - bufs_start in
  let buf_bytes = avail / num_threads / 64 * 64 in
  if buf_bytes < 4 * entry_bytes then
    Fmt.invalid_arg "Undo_log: region of %d bytes too small for %d threads"
      size num_threads;
  (bufs_start, buf_bytes)

let buf_start t tid = t.bufs_start + (tid * t.buf_bytes)
let buf_end t tid = buf_start t tid + t.buf_bytes

let next_slot_of ~bstart ~bend a =
  let a' = a + entry_bytes in
  if a' >= bend then bstart else a'

let next_slot t a =
  (* Recover which buffer [a] belongs to from the address itself. *)
  let tid = (a - t.bufs_start) / t.buf_bytes in
  next_slot_of ~bstart:(buf_start t tid) ~bend:(buf_end t tid) a

let format pmem ~base ~size ~num_threads =
  if num_threads <= 0 then invalid_arg "Undo_log.format: no threads";
  let bufs_start, buf_bytes = layout ~base ~size ~num_threads in
  let t =
    {
      pmem;
      base;
      num_threads;
      buf_bytes;
      bufs_start;
      heads = Array.init num_threads (fun tid -> bufs_start + (tid * buf_bytes));
      tails = Array.init num_threads (fun tid -> bufs_start + (tid * buf_bytes));
    }
  in
  Nvm.Pmem.store pmem base log_magic;
  Nvm.Pmem.store_int pmem (base + 8) num_threads;
  Nvm.Pmem.store_int pmem (base + 16) buf_bytes;
  (* Durability watermark: -1 = not applicable (immediate-durability
     modes); >= 0 = highest commit sequence whose data is durable. *)
  Nvm.Pmem.store_int pmem (base + 24) (-1);
  Nvm.Pmem.flush pmem base;
  for tid = 0 to num_threads - 1 do
    Nvm.Pmem.store_int pmem (desc_addr base tid) (buf_start t tid);
    Nvm.Pmem.flush pmem (desc_addr base tid);
    (* Plant the sentinel: the slot at the head must never decode. *)
    Nvm.Pmem.store pmem (buf_start t tid) 0L;
    Nvm.Pmem.flush pmem (buf_start t tid)
  done;
  Nvm.Pmem.fence pmem;
  t

(* Every header field can be garbage after bit rot, so validate each one
   before trusting it as an address or a loop bound. *)
let attach_result pmem ~base =
  let region = (Nvm.Pmem.config pmem).Nvm.Config.region_size in
  let magic = Nvm.Pmem.load pmem base in
  if not (Int64.equal magic log_magic) then
    Error (Fmt.str "bad magic %Lx at %d" magic base)
  else
    let num_threads = Nvm.Pmem.load_int pmem (base + 8) in
    let buf_bytes = Nvm.Pmem.load_int pmem (base + 16) in
    if num_threads <= 0 || num_threads > 4096 then
      Error (Fmt.str "implausible thread count %d" num_threads)
    else if buf_bytes < 4 * entry_bytes || buf_bytes mod 64 <> 0 then
      Error (Fmt.str "implausible buffer size %d" buf_bytes)
    else
      let descs_end = base + 64 + (num_threads * 16) in
      let bufs_start = (descs_end + 63) / 64 * 64 in
      if bufs_start + (num_threads * buf_bytes) > region then
        Error
          (Fmt.str "layout (%d threads x %d bytes) exceeds the region"
             num_threads buf_bytes)
      else
        let tails =
          Array.init num_threads (fun tid ->
              Nvm.Pmem.load_int pmem (desc_addr base tid))
        in
        Ok
          {
            pmem;
            base;
            num_threads;
            buf_bytes;
            bufs_start;
            heads = Array.copy tails;
            tails;
          }

let attach pmem ~base =
  match attach_result pmem ~base with
  | Ok t -> t
  | Error msg -> Fmt.invalid_arg "Undo_log.attach: %s" msg

let num_threads t = t.num_threads
let capacity_entries t = (t.buf_bytes / entry_bytes) - 1

let append t ~tid entry =
  let head = t.heads.(tid) in
  let next = next_slot t head in
  if next = t.tails.(tid) then raise (Log_full { tid });
  Log_entry.write (Nvm.Pmem.store t.pmem) ~at:head entry;
  Nvm.Pmem.store t.pmem next 0L;
  t.heads.(tid) <- next;
  head

let flush_entry t ~entry_addr =
  let pmem = t.pmem in
  let line = (Nvm.Pmem.config pmem).Nvm.Config.line_size in
  Nvm.Pmem.flush pmem entry_addr;
  let sentinel = next_slot t entry_addr in
  if sentinel / line <> entry_addr / line then Nvm.Pmem.flush pmem sentinel;
  Nvm.Pmem.fence pmem

let advance_tail t ~tid ~new_tail ~flush =
  t.tails.(tid) <- new_tail;
  Nvm.Pmem.store_int t.pmem (desc_addr t.base tid) new_tail;
  if flush then begin
    Nvm.Pmem.flush t.pmem (desc_addr t.base tid);
    Nvm.Pmem.fence t.pmem
  end

let tail t ~tid = t.tails.(tid)

let live_entries t ~tid =
  let head = t.heads.(tid) and tail = t.tails.(tid) in
  let d = if head >= tail then head - tail else head - tail + t.buf_bytes in
  d / entry_bytes

let scan_thread t ~tid =
  let tail = Nvm.Pmem.load_int t.pmem (desc_addr t.base tid) in
  let cap = capacity_entries t in
  let load a = Nvm.Pmem.load t.pmem a in
  let rec go at prev_seq n acc =
    if n >= cap then List.rev acc
    else
      match Log_entry.read load ~at with
      | None -> List.rev acc
      | Some e when e.Log_entry.seq <= prev_seq -> List.rev acc
      | Some e -> go (next_slot t at) e.Log_entry.seq (n + 1) (e :: acc)
  in
  go tail 0 0 []

let scan_thread_checked t ~tid =
  let bstart = buf_start t tid and bend = buf_end t tid in
  let tail = Nvm.Pmem.load_int t.pmem (desc_addr t.base tid) in
  if tail < bstart || tail >= bend || (tail - bstart) mod entry_bytes <> 0
  then
    Error
      (Fmt.str "thread %d: corrupt tail descriptor %d (buffer [%d,%d))" tid
         tail bstart bend)
  else begin
    let cap = capacity_entries t in
    let load a = Nvm.Pmem.load t.pmem a in
    let rec go at prev_seq n acc =
      match
        if n >= cap then None
        else
          match Log_entry.read load ~at with
          | Some e when e.Log_entry.seq > prev_seq -> Some e
          | _ -> None
      with
      | Some e -> go (next_slot t at) e.Log_entry.seq (n + 1) (e :: acc)
      | None -> (List.rev acc, at, prev_seq, n)
    in
    let entries, stop_at, last_seq, n = go tail 0 0 [] in
    (* Orphans: decodable entries beyond the cut that were appended after
       the accepted window.  A nonzero count means the log was truncated
       at a torn or corrupt entry, not at its natural head.  The natural
       head is recognisable: [append] zeroes the next slot's header word
       as a sentinel, so a cut whose header word is 0 is just the head —
       whatever lies beyond it is stale ring content (consumed entries
       keep their bytes and, when the live window is empty, their seqs
       exceed [last_seq]), not evidence of truncation. *)
    let orphans = ref 0 in
    if n < cap && not (Int64.equal (load stop_at) 0L) then begin
      let at = ref (next_slot t stop_at) in
      for _ = 1 to cap - n - 1 do
        (match Log_entry.read load ~at:!at with
        | Some e when e.Log_entry.seq > last_seq -> incr orphans
        | _ -> ());
        at := next_slot t !at
      done
    end;
    Ok (entries, !orphans)
  end

(* [scan_thread_checked] over cost-free peeks, returning the same result
   plus the number of log words actually read, so the recovery layer can
   charge one analytic bill for a streamed scan instead of simulating
   every access through the cache model.  Peeks have no side effects, so
   scans of distinct threads' rings can run concurrently and the result
   is independent of scheduling. *)
let scan_thread_streamed t ~tid =
  let words = ref 1 (* the tail descriptor *) in
  let bstart = buf_start t tid and bend = buf_end t tid in
  let tail = Nvm.Pmem.peek_int t.pmem (desc_addr t.base tid) in
  if tail < bstart || tail >= bend || (tail - bstart) mod entry_bytes <> 0
  then
    ( Error
        (Fmt.str "thread %d: corrupt tail descriptor %d (buffer [%d,%d))" tid
           tail bstart bend),
      !words )
  else begin
    let cap = capacity_entries t in
    let load a =
      incr words;
      Nvm.Pmem.peek t.pmem a
    in
    let rec go at prev_seq n acc =
      match
        if n >= cap then None
        else
          match Log_entry.read load ~at with
          | Some e when e.Log_entry.seq > prev_seq -> Some e
          | _ -> None
      with
      | Some e -> go (next_slot t at) e.Log_entry.seq (n + 1) (e :: acc)
      | None -> (List.rev acc, at, prev_seq, n)
    in
    let entries, stop_at, last_seq, n = go tail 0 0 [] in
    let orphans = ref 0 in
    if n < cap && not (Int64.equal (load stop_at) 0L) then begin
      let at = ref (next_slot t stop_at) in
      for _ = 1 to cap - n - 1 do
        (match Log_entry.read load ~at:!at with
        | Some e when e.Log_entry.seq > last_seq -> incr orphans
        | _ -> ());
        at := next_slot t !at
      done
    end;
    (Ok (entries, !orphans), !words)
  end

let set_watermark t seq =
  Nvm.Pmem.store_int t.pmem (t.base + 24) seq;
  Nvm.Pmem.flush t.pmem (t.base + 24);
  Nvm.Pmem.fence t.pmem

let watermark t = Nvm.Pmem.load_int t.pmem (t.base + 24)
