(** Atlas recovery: restore the persistent heap to a consistent state
    after a crash, using the undo logs.

    The pass runs after {!Nvm.Pmem.recover} has installed the durable
    image.  It scans every thread's log window, reconstructs the set of
    outermost critical sections and their dependency edges, computes the
    rollback closure — every section that was interrupted by the crash,
    plus, transitively, every {e committed} section that depended on one
    being rolled back — and applies the affected [Update] entries in
    reverse global order.  It finishes by persisting its own repairs.

    Callers normally follow with {!Pheap.Heap_gc.collect} to reclaim
    objects orphaned by the crash or by the rollback itself, and with
    {!Undo_log.format} (via a fresh {!Runtime.create}) before resuming. *)

type verdict =
  | Clean  (** recovery used every log entry and trusted all of it *)
  | Degraded of string list
      (** recovery completed but had to discount part of the image:
          truncated thread logs, unusable descriptors, skipped rollback
          targets or structural anomalies — one human-readable reason
          each.  The heap sections covered by validated log entries are
          consistent; the discounted parts may have lost updates. *)
  | Unrecoverable of string
      (** the log region header itself did not validate: no rollback was
          attempted (re-formatting the region is the only way forward) *)

type report = {
  log_entries : int;  (** valid entries scanned across all threads *)
  ocses : int;  (** distinct sections seen in the logs *)
  committed : int;
  incomplete : int;  (** sections interrupted by the crash *)
  cascaded : int;  (** committed sections rolled back via dependencies *)
  updates_applied : int;
  updates_skipped : int;  (** entries whose target address failed validation *)
  max_seq : int;  (** highest sequence seen; seed for the next runtime *)
  anomalies : string list;
      (** structurally unexpected log content — empty under TSP, possibly
          non-empty after a non-TSP crash lost log writes *)
  truncated_entries : int;
      (** decodable entries stranded beyond a torn or corrupt slot (see
          {!Undo_log.scan_thread_checked}); never replayed *)
  verdict : verdict;
}

type scan_mode =
  | Costed_scan
      (** the default: every log word is read through the costed cache
          simulation, in tid order — the charge sequence older benchmark
          snapshots pin *)
  | Streamed_scan of ((unit -> unit) list -> unit)
      (** scan each thread's ring with cost-free peeks — the supplied
          runner executes the per-thread scan thunks, sequentially or on
          a domain pool, and must have completed them all when it
          returns — then merge in tid order and charge one analytic bill
          (log words read × cold-miss cost).  The report, verdict and
          heap repairs are byte-identical for any runner. *)

val run : ?scan:scan_mode -> heap:Pheap.Heap.t -> log_base:int -> unit -> report
(** Perform rollback.  The heap's device must not be in the crashed
    state (call {!Nvm.Pmem.recover} first).

    Never raises on adversarial images: every header field, descriptor
    and log entry is validated before use, damage is reported through
    [verdict], and rollback proceeds with whatever validated.  The pass
    does not mutate the logs themselves (only heap words and its own
    persist), so running it twice is idempotent — including when the
    first attempt is cut short by a second crash. *)

val orphan_warning : tid:int -> orphans:int -> string option
(** The [Degraded] reason for a checksum-truncated thread log: [None]
    when [orphans <= 0] (no degradation), otherwise the message recovery
    attaches, with singular/plural agreement.  Exposed so the verdict
    formatting is testable in isolation. *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
