type action_bill = {
  action : Policy.crash_action;
  seconds : float;
  energy_j : float;
  lines_involved : int;
}

type execution = {
  verdict : Policy.verdict;
  mode : Nvm.Pmem.crash_mode;
  fault : Nvm.Fault_model.t;
  damage : Nvm.Pmem.crash_damage;
  bills : action_bill list;
  total_seconds : float;
  total_energy_j : float;
  rescued_lines : int;
  dropped_lines : int;
}

let bill_action (h : Hardware.t) ~dirty_lines ~line_size action =
  let dirty_mb =
    float_of_int (dirty_lines * line_size) /. (1024. *. 1024.)
  in
  let flush_seconds =
    dirty_mb /. (h.Hardware.dram_bandwidth_gb_s *. 1024.)
  in
  match action with
  | Policy.Rely_on_kernel_persistence ->
      (* Nothing moves at crash time: the page cache already holds the
         pages and dirty CPU lines stay coherent-visible (Appendix A). *)
      { action; seconds = 0.; energy_j = 0.; lines_involved = dirty_lines }
  | Policy.Panic_flush_caches ->
      {
        action;
        seconds = flush_seconds;
        energy_j = flush_seconds *. h.Hardware.rescue_power_w;
        lines_involved = dirty_lines;
      }
  | Policy.Panic_dump_memory { seconds } ->
      {
        action;
        seconds;
        energy_j = seconds *. h.Hardware.rescue_power_w;
        lines_involved = 0;
      }
  | Policy.Failover_to_ups ->
      (* The UPS keeps everything running; no data moves at the instant
         of the outage. *)
      { action; seconds = 0.; energy_j = 0.; lines_involved = 0 }
  | Policy.Nvdimm_save ->
      let dram_mb = float_of_int h.Hardware.dram_gb *. 1024. in
      let seconds = dram_mb /. h.Hardware.flash_bandwidth_mb_s in
      {
        action;
        seconds;
        energy_j = Float.min h.Hardware.supercap_energy_j
            (seconds *. h.Hardware.rescue_power_w);
        lines_involved = 0;
      }
  | Policy.Wsp_rescue outcome ->
      {
        action;
        seconds = outcome.Wsp.total_time_s;
        energy_j = outcome.Wsp.total_energy_j;
        lines_involved = dirty_lines;
      }
  | Policy.Adversarial_rescue _ ->
      (* Never part of a verdict's plan; [execute] synthesises its bill
         directly from the damage report. *)
      { action; seconds = 0.; energy_j = 0.; lines_involved = 0 }

let execute ?fault ?(rng = fun _ -> 0) pmem ~hardware ~failure =
  let verdict = Policy.decide hardware failure in
  let mode = Policy.crash_mode verdict in
  let fault =
    match fault with
    | Some f -> f
    | None -> (
        (* The paper's binary semantics: the verdict decides whether the
           rescue happens at all. *)
        match mode with
        | Nvm.Pmem.Rescue -> Nvm.Fault_model.Full_rescue
        | Nvm.Pmem.Discard -> Nvm.Fault_model.Full_discard)
  in
  let dirty_lines = Nvm.Pmem.dirty_line_count pmem in
  let line_size = (Nvm.Pmem.config pmem).Nvm.Config.line_size in
  let rescue_limit =
    match fault with
    | Nvm.Fault_model.Partial_rescue { energy_budget_j } ->
        Some
          (Wsp.line_rescue_budget hardware ~budget_j:energy_budget_j
             ~line_size)
    | _ -> None
  in
  let damage = Nvm.Pmem.crash_with pmem ~fault ?rescue_limit ~rng () in
  let bills =
    if Nvm.Fault_model.adversarial fault then begin
      (* The verdict's plan never ran to completion; bill only the data
         that actually moved before the fault cut the rescue short. *)
      let moved = damage.Nvm.Pmem.rescued + damage.Nvm.Pmem.torn in
      let moved_mb = float_of_int (moved * line_size) /. (1024. *. 1024.) in
      let seconds =
        moved_mb /. (hardware.Hardware.dram_bandwidth_gb_s *. 1024.)
      in
      [
        {
          action = Policy.Adversarial_rescue fault;
          seconds;
          energy_j = seconds *. hardware.Hardware.rescue_power_w;
          lines_involved = moved;
        };
      ]
    end
    else
      match verdict with
      | Policy.Tsp { actions; _ } ->
          List.map (bill_action hardware ~dirty_lines ~line_size) actions
      | Policy.Not_tsp _ -> []
  in
  {
    verdict;
    mode;
    fault;
    damage;
    bills;
    total_seconds = List.fold_left (fun a b -> a +. b.seconds) 0. bills;
    total_energy_j = List.fold_left (fun a b -> a +. b.energy_j) 0. bills;
    rescued_lines = damage.Nvm.Pmem.rescued;
    dropped_lines = damage.Nvm.Pmem.dropped;
  }

let pp_execution ppf e =
  let pp_bill ppf b =
    Fmt.pf ppf "%a: %.6f s, %.3f J%s" Policy.pp_crash_action b.action
      b.seconds b.energy_j
      (if b.lines_involved > 0 then
         Printf.sprintf " (%d dirty lines)" b.lines_involved
       else "")
  in
  Fmt.pf ppf
    "@[<v>%a@ fault %a@ %a@ total %.6f s, %.3f J; rescued %d lines, torn %d, \
     dropped %d, %d bits flipped@]"
    Policy.pp_verdict e.verdict Nvm.Fault_model.pp e.fault
    Fmt.(list ~sep:cut pp_bill)
    e.bills e.total_seconds e.total_energy_j e.rescued_lines
    e.damage.Nvm.Pmem.torn e.dropped_lines e.damage.Nvm.Pmem.bit_flips
