type runtime_obligation =
  | No_runtime_action
  | Flush_log_entries
  | Write_through_to_storage

type crash_action =
  | Rely_on_kernel_persistence
  | Panic_flush_caches
  | Panic_dump_memory of { seconds : float }
  | Failover_to_ups
  | Nvdimm_save
  | Wsp_rescue of Wsp.outcome
  | Adversarial_rescue of Nvm.Fault_model.t

type verdict =
  | Tsp of { actions : crash_action list; note : string }
  | Not_tsp of { runtime : runtime_obligation; reason : string }

let dump_seconds (h : Hardware.t) =
  float_of_int h.Hardware.dram_gb *. 1024. /. h.Hardware.storage_bandwidth_mb_s

(* A byte-addressable medium that survives a kernel panic exists when
   memory is non-volatile (power stays on, NVDIMMs will save on the next
   power event) or when the machine preserves DRAM across warm reboots. *)
let panic_durable_memory (h : Hardware.t) =
  match h.Hardware.memory with
  | Hardware.Nvram | Hardware.Nvdimm -> true
  | Hardware.Dram -> h.Hardware.warm_reboot_preserves_dram

let decide_process_crash (h : Hardware.t) =
  if h.Hardware.file_backed_mapping then
    Tsp
      {
        actions = [ Rely_on_kernel_persistence ];
        note =
          "POSIX MAP_SHARED gives kernel persistence: page cache and dirty \
           CPU lines outlive the process";
      }
  else
    Not_tsp
      {
        runtime = Write_through_to_storage;
        reason = "no file-backed mappings: process memory dies with it";
      }

let decide_kernel_panic (h : Hardware.t) =
  if h.Hardware.nonvolatile_caches && panic_durable_memory h then
    Tsp { actions = []; note = "nothing volatile stands between CPU and NVM" }
  else if not h.Hardware.panic_flush_handler then
    Not_tsp
      {
        runtime =
          (if panic_durable_memory h then Flush_log_entries
           else Write_through_to_storage);
        reason = "kernel cannot flush caches when it panics";
      }
  else if panic_durable_memory h then
    Tsp
      {
        actions = [ Panic_flush_caches ];
        note = "dying kernel flushes caches into a panic-durable memory";
      }
  else if h.Hardware.panic_dump_to_storage then
    Tsp
      {
        actions =
          [ Panic_flush_caches; Panic_dump_memory { seconds = dump_seconds h } ];
        note = "dying kernel flushes caches, then dumps memory to storage";
      }
  else
    Not_tsp
      {
        runtime = Write_through_to_storage;
        reason = "volatile DRAM is lost at reboot and cannot be dumped";
      }

let decide_power_outage (h : Hardware.t) =
  if h.Hardware.ups then
    Tsp
      {
        actions = [ Failover_to_ups ];
        note = "UPS keeps the whole machine powered through the outage";
      }
  else if h.Hardware.nonvolatile_caches && h.Hardware.memory <> Hardware.Dram
  then Tsp { actions = []; note = "no volatile state to rescue" }
  else
    let rescue = Wsp.of_hardware h in
    if rescue.Wsp.success then
      let actions =
        match h.Hardware.memory with
        | Hardware.Nvdimm -> [ Wsp_rescue rescue; Nvdimm_save ]
        | Hardware.Nvram | Hardware.Dram -> [ Wsp_rescue rescue ]
      in
      Tsp
        {
          actions;
          note = "standby energy suffices to move critical data to safety";
        }
    else
      Not_tsp
        {
          runtime =
            (match h.Hardware.memory with
            (* Without energy even for a cache flush, stores must be
               flushed eagerly; if memory itself is volatile, only block
               storage survives. *)
            | Hardware.Nvram | Hardware.Nvdimm -> Flush_log_entries
            | Hardware.Dram -> Write_through_to_storage);
          reason = "insufficient standby energy for a crash-time rescue";
        }

let decide h = function
  | Failure_class.Process_crash -> decide_process_crash h
  | Failure_class.Kernel_panic -> decide_kernel_panic h
  | Failure_class.Power_outage -> decide_power_outage h

let decide_requirement h (req : Requirement.t) =
  List.map (fun fc -> (fc, decide h fc)) req.Requirement.tolerated

let obligation_rank = function
  | No_runtime_action -> 0
  | Flush_log_entries -> 1
  | Write_through_to_storage -> 2

let weakest_runtime_obligation h req =
  List.fold_left
    (fun acc (_, v) ->
      let o =
        match v with
        | Tsp _ -> No_runtime_action
        | Not_tsp { runtime; _ } -> runtime
      in
      if obligation_rank o > obligation_rank acc then o else acc)
    No_runtime_action
    (decide_requirement h req)

let crash_mode = function
  | Tsp _ -> Nvm.Pmem.Rescue
  | Not_tsp _ -> Nvm.Pmem.Discard

let is_tsp = function Tsp _ -> true | Not_tsp _ -> false

let pp_runtime_obligation ppf = function
  | No_runtime_action -> Fmt.string ppf "no runtime action"
  | Flush_log_entries -> Fmt.string ppf "flush log entries synchronously"
  | Write_through_to_storage -> Fmt.string ppf "write through to storage"

let pp_crash_action ppf = function
  | Rely_on_kernel_persistence -> Fmt.string ppf "rely on kernel persistence"
  | Panic_flush_caches -> Fmt.string ppf "panic handler flushes caches"
  | Panic_dump_memory { seconds } ->
      Fmt.pf ppf "panic handler dumps memory (%.1f s)" seconds
  | Failover_to_ups -> Fmt.string ppf "fail over to UPS"
  | Nvdimm_save -> Fmt.string ppf "NVDIMM supercap save"
  | Wsp_rescue o -> Fmt.pf ppf "WSP rescue (%.3f s)" o.Wsp.total_time_s
  | Adversarial_rescue fm ->
      Fmt.pf ppf "adversarial rescue [%a]" Nvm.Fault_model.pp fm

let pp_verdict ppf = function
  | Tsp { actions; note } ->
      Fmt.pf ppf "TSP [%a] (%s)"
        Fmt.(list ~sep:semi pp_crash_action)
        actions note
  | Not_tsp { runtime; reason } ->
      Fmt.pf ppf "no TSP -> %a (%s)" pp_runtime_obligation runtime reason

let decision_matrix () =
  List.map
    (fun h ->
      ( h.Hardware.name,
        List.map (fun fc -> (fc, decide h fc)) Failure_class.all ))
    Hardware.all
