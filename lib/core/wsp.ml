type stage = {
  label : string;
  data_mb : float;
  bandwidth_mb_s : float;
  power_w : float;
  budget_j : float;
}

type stage_result = {
  stage : stage;
  time_s : float;
  energy_j : float;
  feasible : bool;
}

type outcome = {
  stages : stage_result list;
  total_time_s : float;
  total_energy_j : float;
  success : bool;
}

let run_stage stage =
  let time_s =
    if stage.data_mb <= 0. then 0. else stage.data_mb /. stage.bandwidth_mb_s
  in
  let energy_j = time_s *. stage.power_w in
  { stage; time_s; energy_j; feasible = energy_j <= stage.budget_j }

let simulate stages =
  let stages = List.map run_stage stages in
  {
    stages;
    total_time_s = List.fold_left (fun a r -> a +. r.time_s) 0. stages;
    total_energy_j = List.fold_left (fun a r -> a +. r.energy_j) 0. stages;
    success = List.for_all (fun r -> r.feasible) stages;
  }

let stage1 (h : Hardware.t) =
  {
    label = "registers+caches -> memory";
    data_mb = float_of_int h.Hardware.cache_kb /. 1024.;
    bandwidth_mb_s = h.Hardware.dram_bandwidth_gb_s *. 1024.;
    power_w = h.Hardware.rescue_power_w;
    budget_j = h.Hardware.residual_energy_j;
  }

let stage2 (h : Hardware.t) =
  {
    label = "DRAM -> flash";
    data_mb = float_of_int h.Hardware.dram_gb *. 1024.;
    bandwidth_mb_s = h.Hardware.flash_bandwidth_mb_s;
    power_w = h.Hardware.rescue_power_w;
    budget_j = h.Hardware.supercap_energy_j;
  }

let plan_for (h : Hardware.t) =
  if h.Hardware.nonvolatile_caches then []
  else
    match h.Hardware.memory with
    | Hardware.Nvram | Hardware.Nvdimm ->
        (* NVDIMM's own save is powered by its on-DIMM supercaps and is
           engineered to suffice; the system-level plan only needs the
           cache flush. *)
        [ stage1 h ]
    | Hardware.Dram -> [ stage1 h; stage2 h ]

let of_hardware h = simulate (plan_for h)

let line_rescue_budget (h : Hardware.t) ~budget_j ~line_size =
  if budget_j <= 0. then 0
  else begin
    let time_s = budget_j /. h.Hardware.rescue_power_w in
    let mb = time_s *. h.Hardware.dram_bandwidth_gb_s *. 1024. in
    let bytes = mb *. 1024. *. 1024. in
    int_of_float (bytes /. float_of_int line_size)
  end

let headroom outcome =
  List.fold_left
    (fun acc r ->
      if r.energy_j <= 0. then acc
      else Float.min acc (r.stage.budget_j /. r.energy_j))
    infinity outcome.stages

let pp_outcome ppf o =
  let pp_stage ppf r =
    Fmt.pf ppf "%s: %.1f MB in %.3f s, %.2f J of %.2f J -> %s" r.stage.label
      r.stage.data_mb r.time_s r.energy_j r.stage.budget_j
      (if r.feasible then "ok" else "INSUFFICIENT")
  in
  Fmt.pf ppf "@[<v>%a@ total %.3f s, %.2f J: %s@]"
    Fmt.(list ~sep:cut pp_stage)
    o.stages o.total_time_s o.total_energy_j
    (if o.success then "rescue succeeds" else "rescue FAILS")
