(** Execute a TSP rescue plan against the simulated device.

    {!Policy.decide} names the crash-time actions; this module actually
    runs them when a failure is injected — flushing the dirty lines into
    the durable image for TSP verdicts, dropping them otherwise — and
    bills each action with the time and energy it would cost on the
    modelled hardware.  The bill is the "timely" and "sufficient" parts
    of TSP made concrete: a rescue is only a valid design if it fits the
    budget the hardware actually has at that moment (residual PSU
    energy, supercapacitors, panic-handler time). *)

type action_bill = {
  action : Policy.crash_action;
  seconds : float;
  energy_j : float;
  lines_involved : int;  (** dirty lines this action moved (if any) *)
}

type execution = {
  verdict : Policy.verdict;
  mode : Nvm.Pmem.crash_mode;  (** verdict-derived binary semantics *)
  fault : Nvm.Fault_model.t;  (** the fault actually applied *)
  damage : Nvm.Pmem.crash_damage;
  bills : action_bill list;
  total_seconds : float;
  total_energy_j : float;
  rescued_lines : int;
  dropped_lines : int;
}

val execute :
  ?fault:Nvm.Fault_model.t ->
  ?rng:(int -> int) ->
  Nvm.Pmem.t ->
  hardware:Hardware.t ->
  failure:Failure_class.t ->
  execution
(** Decide the verdict for [failure] on [hardware], apply a crash to the
    device and bill the actions against the dirty-line count observed at
    the instant of the crash.

    Without [fault] the crash follows the verdict exactly as before:
    TSP verdicts rescue every dirty line, non-TSP verdicts discard them.
    With [fault] the campaign overrides those binary semantics with an
    adversarial model (see {!Nvm.Fault_model}): [Partial_rescue]'s
    energy budget is converted to a line count via
    {!Wsp.line_rescue_budget}, and the bill covers only the lines that
    actually moved before the fault cut the rescue short, priced as a
    synthetic {!Policy.Adversarial_rescue} action.  [rng] feeds
    {!Nvm.Pmem.crash_with}'s draws (defaults to the constant 0 — fine
    for the deterministic models, campaigns pass their seeded stream). *)

val pp_execution : execution Fmt.t
