(** The Whole-System Persistence energy model (Narayanan & Hodson, cited
    in Section 3 as the archetypal TSP design).

    WSP rescues the entire machine state in two stages when utility power
    fails: stage 1 flushes CPU registers and caches into DRAM on the
    residual energy stored in the power supply; stage 2 evacuates DRAM
    into flash on supercapacitor energy.  The design is "timely" because
    it acts only when the failure occurs, and "sufficient" because each
    stage's energy budget covers exactly the data that stage must move.

    This module makes the accounting executable so the claim can be
    checked for a given platform: a rescue plan succeeds iff every
    stage's energy need fits its budget. *)

type stage = {
  label : string;
  data_mb : float;  (** volume this stage must move *)
  bandwidth_mb_s : float;
  power_w : float;  (** draw while the stage runs *)
  budget_j : float;  (** energy available to the stage *)
}

type stage_result = {
  stage : stage;
  time_s : float;
  energy_j : float;
  feasible : bool;  (** [energy_j <= budget_j] *)
}

type outcome = {
  stages : stage_result list;
  total_time_s : float;
  total_energy_j : float;
  success : bool;  (** every stage feasible *)
}

val run_stage : stage -> stage_result
val simulate : stage list -> outcome

val plan_for : Hardware.t -> stage list
(** The two WSP stages instantiated with a platform's cache and DRAM
    sizes, bandwidths and energy reserves.  NVRAM machines get only
    stage 1 (nothing in DRAM needs evacuation); machines with
    non-volatile caches get an empty plan. *)

val of_hardware : Hardware.t -> outcome
(** [simulate (plan_for h)]. *)

val line_rescue_budget : Hardware.t -> budget_j:float -> line_size:int -> int
(** How many cache lines a stage-1 rescue can move before [budget_j]
    joules run out, under the platform's DRAM bandwidth and rescue power
    draw.  This converts a {!Nvm.Fault_model.Partial_rescue} energy
    budget into the [rescue_limit] passed to {!Nvm.Pmem.crash_with};
    0 when the budget is non-positive. *)

val headroom : outcome -> float
(** Smallest ratio of budget to need across stages ([infinity] for an
    empty plan); > 1 means the rescue has margin. *)

val pp_outcome : outcome Fmt.t
