(** The TSP decision procedure (the heart of Section 3).

    For a platform and a tolerated failure class, decide whether Timely
    Sufficient Persistence is available — i.e. whether a crash-time plan
    can move all critical data to safety, making failure-free preventive
    flushing unnecessary — and if not, what runtime obligation remains.

    "Safe" is always relative to the failure class (Section 3): DRAM is
    safe against process crashes, memory reachable by a panic handler is
    safe against kernel panics, and only media with standby energy or
    inherent non-volatility are safe against power outages. *)

type runtime_obligation =
  | No_runtime_action  (** the TSP ideal: procrastinate everything *)
  | Flush_log_entries
      (** synchronously flush undo-log entries (and commit data) to the
          durable medium before dependent stores — Atlas without TSP *)
  | Write_through_to_storage
      (** no byte-addressable durable medium survives this failure:
          updates must reach block storage synchronously, as in a
          conventional WAL database *)

type crash_action =
  | Rely_on_kernel_persistence
      (** nothing to do: POSIX MAP_SHARED semantics keep the page cache
          (and, via coherence, dirty CPU cache lines) visible after the
          process dies — Appendix A of the paper *)
  | Panic_flush_caches  (** the dying kernel flushes CPU caches *)
  | Panic_dump_memory of { seconds : float }
      (** the dying kernel writes memory to stable storage *)
  | Failover_to_ups
  | Nvdimm_save  (** on-DIMM supercaps persist DRAM to flash *)
  | Wsp_rescue of Wsp.outcome  (** the two-stage WSP evacuation *)
  | Adversarial_rescue of Nvm.Fault_model.t
      (** a rescue degraded by an adversarial fault model — the crash
          executor synthesises this bill when a campaign overrides the
          verdict-derived crash semantics (see {!Crash_executor.execute}) *)

type verdict =
  | Tsp of { actions : crash_action list; note : string }
      (** TSP available: zero runtime overhead, [actions] run at crash
          time *)
  | Not_tsp of { runtime : runtime_obligation; reason : string }
      (** TSP unavailable: the runtime obligation applies during
          failure-free operation *)

val decide : Hardware.t -> Failure_class.t -> verdict

val decide_requirement :
  Hardware.t -> Requirement.t -> (Failure_class.t * verdict) list
(** One verdict per tolerated failure class. *)

val weakest_runtime_obligation :
  Hardware.t -> Requirement.t -> runtime_obligation
(** The obligation that satisfies {e all} tolerated failures at once:
    [No_runtime_action] iff every class gets a TSP verdict, otherwise the
    strongest of the per-class obligations. *)

val crash_mode : verdict -> Nvm.Pmem.crash_mode
(** How the simulated device behaves when this failure strikes:
    TSP verdicts rescue dirty lines, non-TSP verdicts discard them. *)

val is_tsp : verdict -> bool
val pp_verdict : verdict Fmt.t
val pp_runtime_obligation : runtime_obligation Fmt.t
val pp_crash_action : crash_action Fmt.t

val decision_matrix : unit -> (string * (Failure_class.t * verdict) list) list
(** The full platform x failure-class matrix over {!Hardware.all} — the
    executable form of Section 3's prose survey (experiment E5). *)
