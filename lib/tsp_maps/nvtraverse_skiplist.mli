(** The NVTraverse transformation (Friedman et al., PLDI 2020) applied
    to the lock-free skip list: operations are split into a {e traversal}
    phase that issues no flushes at all and a {e critical update} window
    that persists only the O(1) words carrying durable state — the
    freshly initialised node and the bottom-level link for an insert,
    the value word for an overwrite, the marked bottom-level link for a
    delete — each followed by a single fence.

    Per-operation psync complexity therefore drops from O(path length)
    (what a naive "flush everything you touch" persistent skiplist
    pays) to O(1): one flush + one fence for overwrite/increment/
    delete, two-to-three flushes for an insert.  Upper-level links are
    treated as a volatile index — never flushed, rebuilt by any
    traversal — mirroring the SOFT/NVTraverse observation that only the
    bottom-level list is semantically persistent.

    The node layout and GC kind are shared with {!Lockfree_skiplist},
    so snapshots, audits and recovery treat both structures
    identically; recovery remains re-attachment plus GC. *)

type t

val default_max_level : int

val create :
  Pheap.Heap.t ->
  ?max_level:int ->
  ?op_cycles:int ->
  num_threads:int ->
  seed:int ->
  unit ->
  t
(** Allocate head and tail sentinels (persisted before returning), point
    the heap root at the head, and build per-thread level generators. *)

val attach :
  Pheap.Heap.t ->
  ?op_cycles:int ->
  num_threads:int ->
  seed:int ->
  Pheap.Heap.addr ->
  t
(** Re-attach after recovery: nothing to repair, by design.
    @raise Invalid_argument if the root is not a skip-list head. *)

val root : t -> Pheap.Heap.addr
val max_level : t -> int
val ops : t -> Map_intf.ops

(** {1 Plain access — setup and verification} *)

val set_plain : t -> key:int -> value:int64 -> unit

val fold_plain :
  Pheap.Heap.t -> root:Pheap.Heap.addr -> (int -> int64 -> 'a -> 'a) -> 'a -> 'a

val size_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

val check_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> (unit, string) result

val node_kind : int
(** Shared with {!Lockfree_skiplist.node_kind}: both structures scan and
    snapshot identically. *)
