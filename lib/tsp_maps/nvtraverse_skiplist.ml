module Heap = Pheap.Heap
module Rng = Sched.Sim_rng
module Pmem = Nvm.Pmem

(* Same node layout and GC kind as the plain non-blocking skiplist, so
   Snapshot, the heap audit and the recovery GC treat both identically;
   only the persistence discipline differs. *)
let node_kind = Lockfree_skiplist.node_kind
let default_max_level = Lockfree_skiplist.default_max_level
let next_base = 3
let default_op_cycles = 25

type t = {
  heap : Heap.t;
  head : Heap.addr;
  max_level : int;
  rngs : Rng.t array;
  op_cycles : int;
}

let root t = t.head
let max_level t = t.max_level
let pmem t = Heap.pmem t.heap

let is_marked p = p land 1 = 1
let unmark p = p land lnot 1
let with_mark p = p lor 1

let key_of t node = Heap.load_field_int t.heap node 0
let value_of t node = Heap.load_field t.heap node 1
let level_of t node = Heap.words_of t.heap node - next_base

let read_next t node lv = Heap.load_field_int t.heap node (next_base + lv)

let cas_next t node lv ~expected ~desired =
  Heap.cas_field_int t.heap node (next_base + lv) ~expected ~desired

(* NVTraverse boundary persistence: traversals run entirely unflushed;
   only on exiting to the critical update window do we flush the O(1)
   words that carry durable state — the updated value word, or the
   bottom-level link being published/marked — then issue one fence.
   Upper-level links are a volatile index (rebuilt by any traversal)
   and are never flushed, which is what drops per-op flushes from
   O(path length) to O(1). *)
let flush_field t node i =
  Pmem.flush (pmem t) (Heap.field_addr t.heap node i)

let fence t = Pmem.fence (pmem t)

(* Flush every line an object spans (nodes are small: this is one line,
   or two when the node straddles a boundary). *)
let flush_span t node =
  let p = pmem t in
  let line = (Pmem.config p).Nvm.Config.line_size in
  let first = Heap.field_addr t.heap node 0 in
  let last = Heap.field_addr t.heap node (Heap.words_of t.heap node - 1) in
  Pmem.flush p first;
  if last / line <> first / line then Pmem.flush p last

let alloc_node t ~key ~value ~level =
  let node = Heap.alloc t.heap ~kind:node_kind ~words:(next_base + level) in
  Heap.store_field_int t.heap node 0 key;
  Heap.store_field t.heap node 1 value;
  Heap.store_field_int t.heap node 2 level;
  node

let make_rngs ~num_threads ~seed =
  let master = Rng.create ~seed in
  Array.init num_threads (fun _ -> Rng.split master)

let create heap ?(max_level = default_max_level)
    ?(op_cycles = default_op_cycles) ~num_threads ~seed () =
  if max_level < 1 || max_level > 32 then
    invalid_arg "Nvtraverse_skiplist.create: max_level out of range";
  let t = { heap; head = Heap.null; max_level; rngs = [||]; op_cycles } in
  let tail = alloc_node t ~key:max_int ~value:0L ~level:max_level in
  for lv = 0 to max_level - 1 do
    Heap.store_field_int heap tail (next_base + lv) Heap.null
  done;
  let head = alloc_node t ~key:min_int ~value:0L ~level:max_level in
  for lv = 0 to max_level - 1 do
    Heap.store_field_int heap head (next_base + lv) tail
  done;
  Heap.set_root heap head;
  let t = { heap; head; max_level; rngs = make_rngs ~num_threads ~seed; op_cycles } in
  (* The empty structure is durable before any operation runs. *)
  flush_span t tail;
  flush_span t head;
  fence t;
  t

let attach heap ?(op_cycles = default_op_cycles) ~num_threads ~seed head =
  if not (Heap.is_object_start heap head)
     || Heap.kind_of heap head <> node_kind
  then invalid_arg "Nvtraverse_skiplist.attach: root is not a skip-list node";
  if Heap.load_field_int heap head 0 <> min_int then
    invalid_arg "Nvtraverse_skiplist.attach: root is not the head sentinel";
  let max_level = Heap.words_of heap head - next_base in
  { heap; head; max_level; rngs = make_rngs ~num_threads ~seed; op_cycles }

let random_level t tid =
  let rng = t.rngs.(tid) in
  let rec toss lv =
    if lv >= t.max_level then t.max_level
    else if Rng.bool rng then toss (lv + 1)
    else lv
  in
  toss 1

(* Herlihy-Shavit [find] with snipping, exactly as in the plain
   skiplist; all loads stay in the traversal (unflushed) phase. *)
let rec find t key ~preds ~succs =
  let rec down pred lv =
    if lv < 0 then true
    else
      let rec scan pred curr =
        let succ_raw = read_next t curr lv in
        if is_marked succ_raw then
          if cas_next t pred lv ~expected:curr ~desired:(unmark succ_raw) then
            scan pred (unmark succ_raw)
          else false
        else if key_of t curr < key then scan curr (unmark succ_raw)
        else begin
          preds.(lv) <- pred;
          succs.(lv) <- curr;
          true
        end
      in
      if scan pred (unmark (read_next t pred lv)) then down preds.(lv) (lv - 1)
      else false
  in
  if down t.head (t.max_level - 1) then () else find t key ~preds ~succs

let find_arrays t key =
  let preds = Array.make t.max_level Heap.null in
  let succs = Array.make t.max_level Heap.null in
  find t key ~preds ~succs;
  (preds, succs)

(* Upper-level linking is pure index maintenance: never flushed. *)
let rec link_upper t node level key lv =
  if lv < level then begin
    let preds, succs = find_arrays t key in
    if succs.(0) <> node then ()
    else
      let cur = read_next t node lv in
      if is_marked cur then ()
      else if
        cur <> succs.(lv)
        && not (cas_next t node lv ~expected:cur ~desired:succs.(lv))
      then link_upper t node level key lv
      else if cas_next t preds.(lv) lv ~expected:succs.(lv) ~desired:node then
        link_upper t node level key (lv + 1)
      else link_upper t node level key lv
  end

let rec upsert t tid key ~value ~on_found =
  let preds, succs = find_arrays t key in
  if key_of t succs.(0) = key then begin
    if not (on_found succs.(0)) then upsert t tid key ~value ~on_found
  end
  else begin
    let level = random_level t tid in
    let node = alloc_node t ~key ~value ~level in
    for lv = 0 to level - 1 do
      Heap.store_field_int t.heap node (next_base + lv) succs.(lv)
    done;
    (* Critical update window: persist the initialised node before it
       becomes reachable, publish with one CAS, then persist the
       bottom-level link that made it reachable. *)
    flush_span t node;
    fence t;
    if cas_next t preds.(0) 0 ~expected:succs.(0) ~desired:node then begin
      flush_field t preds.(0) next_base;
      fence t;
      link_upper t node level key 1
    end
    else begin
      Heap.free t.heap node;
      upsert t tid key ~value ~on_found
    end
  end

let set t ~tid ~key ~value =
  Pmem.charge (pmem t) t.op_cycles;
  upsert t tid key ~value ~on_found:(fun node ->
      Heap.store_field t.heap node 1 value;
      flush_field t node 1;
      fence t;
      true)

let incr t ~tid ~key ~by =
  Pmem.charge (pmem t) t.op_cycles;
  upsert t tid key ~value:by ~on_found:(fun node ->
      let old = value_of t node in
      if Heap.cas_field t.heap node 1 ~expected:old ~desired:(Int64.add old by)
      then begin
        flush_field t node 1;
        fence t;
        true
      end
      else false)

(* Reads are pure traversal: no flush, no fence. *)
let get t ~tid:_ ~key =
  Pmem.charge (pmem t) t.op_cycles;
  let rec down pred lv curr_final =
    if lv < 0 then curr_final
    else
      let rec scan pred curr =
        let succ_raw = read_next t curr lv in
        if is_marked succ_raw then scan pred (unmark succ_raw)
        else if key_of t curr < key then scan curr (unmark succ_raw)
        else (pred, curr)
      in
      let pred, curr = scan pred (unmark (read_next t pred lv)) in
      down pred (lv - 1) curr
  in
  let curr = down t.head (t.max_level - 1) Heap.null in
  if curr <> Heap.null && key_of t curr = key then Some (value_of t curr)
  else None

let remove t ~tid:_ ~key =
  Pmem.charge (pmem t) t.op_cycles;
  let _, succs = find_arrays t key in
  if key_of t succs.(0) <> key then false
  else begin
    let node = succs.(0) in
    let level = level_of t node in
    (* Upper-level marks are index-only: unflushed. *)
    for lv = level - 1 downto 1 do
      let rec mark_level () =
        let nxt = read_next t node lv in
        if not (is_marked nxt) then
          if not (cas_next t node lv ~expected:nxt ~desired:(with_mark nxt))
          then mark_level ()
      in
      mark_level ()
    done;
    let rec bottom () =
      let nxt = read_next t node 0 in
      if is_marked nxt then false
      else if cas_next t node 0 ~expected:nxt ~desired:(with_mark nxt)
      then begin
        (* The bottom-level mark is the linearisation point: persist it
           before reporting success; the physical unlink that follows is
           index maintenance. *)
        flush_field t node next_base;
        fence t;
        ignore (find_arrays t key);
        true
      end
      else bottom ()
    in
    bottom ()
  end

let ops t =
  {
    Map_intf.name = "nvtraverse-skiplist";
    set = set t;
    get = get t;
    incr = incr t;
    remove = remove t;
  }

let set_plain t ~key ~value = set t ~tid:0 ~key ~value

(* Same layout: the plain traversal helpers apply verbatim. *)
let fold_plain = Lockfree_skiplist.fold_plain
let size_plain = Lockfree_skiplist.size_plain
let check_plain = Lockfree_skiplist.check_plain
