module Heap = Pheap.Heap
module Kind = Pheap.Kind
module Rt = Atlas.Runtime

(* Node layout: [0] = key, [1] = next, [2 .. 2+value_words) = value.
   Values are [value_words] words wide (1 by default); writing a wide
   value is a genuine multi-store critical section, the kind of update
   that can tear without rollback even when every store is durable. *)
let node_kind =
  Kind.register ~name:"hash_node"
    ~scan:(fun ~load ~addr ~words:_ ->
      let next = Int64.to_int (load (addr + 8)) in
      if next <> 0 then [ next ] else [])
    ~scan_int:(fun ~load ~addr ~words:_ ~emit ->
      let next = load (addr + 8) in
      if next <> 0 then emit next)
    ()

(* Header layout: [0] = bucket count, [1] = table address,
   [2] = value width in words. *)
let header_kind =
  Kind.register ~name:"hash_header"
    ~scan:(fun ~load ~addr ~words:_ -> [ Int64.to_int (load (addr + 8)) ])
    ~scan_int:(fun ~load ~addr ~words:_ ~emit ->
      let table = load (addr + 8) in
      if table <> 0 then emit table)
    ()

type t = {
  heap : Heap.t;
  atlas : Rt.t;
  header : Heap.addr;
  table : Heap.addr;
  n_buckets : int;
  value_words : int;
  bpm : int;  (* buckets per mutex *)
  mutexes : Rt.amutex array;
  op_cycles : int;
      (* charged per operation: hash computation, call overhead and the
         per-access CPU work a flat word-level simulation underestimates *)
}

let default_op_cycles = 30

let hash key n =
  let h = (key * 0x2545F4914F6CDD1D) lxor (key lsr 29) in
  (h land max_int) mod n

let root t = t.header
let n_buckets t = t.n_buckets

let make_mutexes atlas sched ~n_buckets ~bpm =
  let n = (n_buckets + bpm - 1) / bpm in
  Array.init n (fun _ -> Rt.make_mutex atlas sched)

let create heap ~atlas ~sched ~n_buckets ?(buckets_per_mutex = 1000)
    ?(op_cycles = default_op_cycles) ?(value_words = 1) () =
  if n_buckets <= 0 then invalid_arg "Chained_hashmap.create: no buckets";
  if value_words < 1 then invalid_arg "Chained_hashmap.create: value_words";
  let header = Heap.alloc heap ~kind:header_kind ~words:3 in
  let table = Heap.alloc heap ~kind:Kind.all_pointers ~words:n_buckets in
  for b = 0 to n_buckets - 1 do
    Heap.store_field heap table b 0L
  done;
  Heap.store_field_int heap header 0 n_buckets;
  Heap.store_field_int heap header 1 table;
  Heap.store_field_int heap header 2 value_words;
  Heap.set_root heap header;
  {
    heap;
    atlas;
    header;
    table;
    n_buckets;
    value_words;
    bpm = buckets_per_mutex;
    mutexes = make_mutexes atlas sched ~n_buckets ~bpm:buckets_per_mutex;
    op_cycles;
  }

let attach heap ~atlas ~sched ?(buckets_per_mutex = 1000)
    ?(op_cycles = default_op_cycles) header =
  if not (Heap.is_object_start heap header)
     || Heap.kind_of heap header <> header_kind
  then invalid_arg "Chained_hashmap.attach: root is not a hash map header";
  let n_buckets = Heap.load_field_int heap header 0 in
  let table = Heap.load_field_int heap header 1 in
  let value_words = Heap.load_field_int heap header 2 in
  {
    heap;
    atlas;
    header;
    table;
    n_buckets;
    value_words;
    bpm = buckets_per_mutex;
    mutexes = make_mutexes atlas sched ~n_buckets ~bpm:buckets_per_mutex;
    op_cycles;
  }

(* Chain search with plain loads: reads need no instrumentation, and the
   caller already holds the bucket's mutex. *)
let find_node t bucket key =
  let rec walk node =
    if node = Heap.null then None
    else if Heap.load_field_int t.heap node 0 = key then Some node
    else walk (Heap.load_field_int t.heap node 1)
  in
  walk (Heap.load_field_int t.heap t.table bucket)

let mutex_for t bucket = t.mutexes.(bucket / t.bpm)

(* [values] supplies each value word; missing words are zeroed. *)
let insert_locked t ctx bucket ~key ~values =
  let head = Heap.load_field t.heap t.table bucket in
  let node = Heap.alloc t.heap ~kind:node_kind ~words:(2 + t.value_words) in
  Rt.store_field t.atlas ctx node 0 (Int64.of_int key);
  Rt.store_field t.atlas ctx node 1 head;
  for w = 0 to t.value_words - 1 do
    Rt.store_field t.atlas ctx node (2 + w) (values w)
  done;
  Rt.store_field t.atlas ctx t.table bucket (Int64.of_int node)

let set t ~tid ~key ~value =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      match find_node t b key with
      | Some node -> Rt.store_field t.atlas ctx node 2 value
      | None -> insert_locked t ctx b ~key ~values:(fun _ -> value))

let get t ~tid ~key =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      Option.map (fun node -> Heap.load_field t.heap node 2) (find_node t b key))

let incr t ~tid ~key ~by =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      match find_node t b key with
      | Some node ->
          let v = Heap.load_field t.heap node 2 in
          Rt.store_field t.atlas ctx node 2 (Int64.add v by)
      | None -> insert_locked t ctx b ~key ~values:(fun _ -> by))

let remove t ~tid ~key =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      let rec walk prev node =
        if node = Heap.null then false
        else
          let next = Heap.load_field t.heap node 1 in
          if Heap.load_field_int t.heap node 0 = key then begin
            (match prev with
            | None -> Rt.store_field t.atlas ctx t.table b next
            | Some p -> Rt.store_field t.atlas ctx p 1 next);
            Heap.free_via t.heap node ~store:(fun a v ->
                Rt.store t.atlas ctx a v);
            true
          end
          else walk (Some node) (Int64.to_int next)
      in
      walk None (Heap.load_field_int t.heap t.table b))

let transfer t ~tid ~debit ~credit ~amount =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  let pmem = Heap.pmem t.heap in
  Nvm.Pmem.charge pmem (2 * t.op_cycles);
  let b1 = hash debit t.n_buckets and b2 = hash credit t.n_buckets in
  let m1 = mutex_for t b1 and m2 = mutex_for t b2 in
  (* Acquire in mutex-id order so concurrent transfers cannot deadlock;
     the two stores then form one failure-atomic outermost section. *)
  let outer, inner =
    if Rt.mutex_id m1 <= Rt.mutex_id m2 then (m1, m2) else (m2, m1)
  in
  let update node delta =
    let v = Heap.load_field t.heap node 2 in
    Rt.store_field t.atlas ctx node 2 (Int64.add v delta)
  in
  let body () =
    match (find_node t b1 debit, find_node t b2 credit) with
    | Some from_node, Some to_node ->
        if Heap.load_field t.heap from_node 2 < amount then false
        else begin
          update from_node (Int64.neg amount);
          update to_node amount;
          true
        end
    | None, _ | _, None -> false
  in
  Rt.with_lock t.atlas ctx outer (fun () ->
      if Rt.mutex_id outer = Rt.mutex_id inner then body ()
      else Rt.with_lock t.atlas ctx inner body)

let ops t =
  {
    Map_intf.name = "mutex-hashmap/" ^ Atlas.Mode.to_string (Rt.mode t.atlas);
    set = set t;
    get = get t;
    incr = incr t;
    remove = remove t;
  }

let set_plain t ~key ~value =
  let b = hash key t.n_buckets in
  match find_node t b key with
  | Some node -> Heap.store_field t.heap node 2 value
  | None ->
      let head = Heap.load_field t.heap t.table b in
      let node = Heap.alloc t.heap ~kind:node_kind ~words:(2 + t.value_words) in
      Heap.store_field t.heap node 0 (Int64.of_int key);
      Heap.store_field t.heap node 1 head;
      Heap.store_field t.heap node 2 value;
      for w = 1 to t.value_words - 1 do
        Heap.store_field t.heap node (2 + w) 0L
      done;
      Heap.store_field t.heap t.table b (Int64.of_int node)

let fold_plain heap ~root f acc =
  let n_buckets = Heap.load_field_int heap root 0 in
  let table = Heap.load_field_int heap root 1 in
  let acc = ref acc in
  for b = 0 to n_buckets - 1 do
    let rec walk node =
      if node <> Heap.null then begin
        let key = Heap.load_field_int heap node 0 in
        let value = Heap.load_field heap node 2 in
        acc := f key value !acc;
        walk (Heap.load_field_int heap node 1)
      end
    in
    walk (Heap.load_field_int heap table b)
  done;
  !acc

let size_plain heap ~root = fold_plain heap ~root (fun _ _ n -> n + 1) 0

let value_words t = t.value_words

let set_wide t ~tid ~key ~values =
  if Array.length values <> t.value_words then
    invalid_arg "Chained_hashmap.set_wide: wrong width";
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      match find_node t b key with
      | Some node ->
          (* The multi-store update Atlas exists for: interrupting this
             loop mid-way tears the value unless the section rolls back. *)
          for w = 0 to t.value_words - 1 do
            Rt.store_field t.atlas ctx node (2 + w) values.(w)
          done
      | None -> insert_locked t ctx b ~key ~values:(fun w -> values.(w)))

let get_wide t ~tid ~key =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let b = hash key t.n_buckets in
  Rt.with_lock t.atlas ctx (mutex_for t b) (fun () ->
      Option.map
        (fun node ->
          Array.init t.value_words (fun w -> Heap.load_field t.heap node (2 + w)))
        (find_node t b key))

let fold_wide_plain heap ~root f acc =
  let n_buckets = Heap.load_field_int heap root 0 in
  let table = Heap.load_field_int heap root 1 in
  let width = Heap.load_field_int heap root 2 in
  let acc = ref acc in
  for b = 0 to n_buckets - 1 do
    let rec walk node =
      if node <> Heap.null then begin
        let key = Heap.load_field_int heap node 0 in
        let values =
          Array.init width (fun w -> Heap.load_field heap node (2 + w))
        in
        acc := f key values !acc;
        walk (Heap.load_field_int heap node 1)
      end
    in
    walk (Heap.load_field_int heap table b)
  done;
  !acc
