module Heap = Pheap.Heap
module Kind = Pheap.Kind
module Pmem = Nvm.Pmem

(* Fixed-capacity open-addressed hash table whose mutations go through a
   per-slot recoverable CAS: the intended CAS (old, new, sequence stamp)
   is announced and persisted before the CAS executes, and acknowledged
   (result stamp) after, so a crash anywhere inside the window leaves
   enough durable evidence for recovery to finish or abort the operation
   exactly once.  No thread ever helps another complete a data CAS — a
   crashed operation is re-executed by recovery, not by peers — which is
   the "delay-free" discipline of Attiya et al. (PAPERS.md). *)

let slot_words = 8
let header_words = 2
let empty_key = min_int
let absent = Int64.min_int
let default_op_cycles = 18

(* Slot word offsets. *)
let k_key = 0
let k_value = 1
let k_stamp = 2 (* announce sequence stamp; > result while in flight *)
let k_old = 3 (* announced expected value *)
let k_new = 4 (* announced desired value *)
let k_seal = 5 (* stamp again, written after old/new: announce is complete *)
let k_result = 6 (* last acknowledged stamp *)

let table_kind =
  Kind.register ~name:"delayfree_table"
    ~scan:(fun ~load:_ ~addr:_ ~words:_ -> [])
    ~scan_int:(fun ~load:_ ~addr:_ ~words:_ ~emit:_ -> ())
    ()

type t = {
  heap : Heap.t;
  table : Heap.addr;
  capacity : int;
  mask : int;
  op_cycles : int;
}

let root t = t.table
let capacity t = t.capacity
let pmem t = Heap.pmem t.heap

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let capacity_for ~n_buckets =
  (* Generous sizing: the workloads key up to ~4 keys per bucket into a
     chained map, so 8 slots per bucket keeps this fixed-capacity table
     under 50% load. *)
  let rec up n = if n >= 8 * n_buckets then n else up (2 * n) in
  up 64

let derived_capacity heap table =
  (Heap.words_of heap table - header_words) / slot_words

let slot_base i = header_words + (i * slot_words)

(* Deterministic 63-bit mix (splitmix-style). *)
let mix k =
  let h = k * 0x9E3779B97F4A7C in
  let h = h lxor (h lsr 29) in
  let h = h * 0xBF58476D1CE4E5B in
  h lxor (h lsr 32)

let fence t = Pmem.fence (pmem t)
let flush_word t w = Pmem.flush (pmem t) (Heap.field_addr t.heap t.table w)

(* Flush the line(s) spanned by words [w1..w2] of the table. *)
let flush_range t w1 w2 =
  let p = pmem t in
  let line = (Pmem.config p).Nvm.Config.line_size in
  let a1 = Heap.field_addr t.heap t.table w1 in
  let a2 = Heap.field_addr t.heap t.table w2 in
  Pmem.flush p a1;
  if a2 / line <> a1 / line then Pmem.flush p a2

let init_slots heap table capacity =
  for i = 0 to capacity - 1 do
    let base = slot_base i in
    Heap.store_field_int heap table (base + k_key) empty_key;
    Heap.store_field heap table (base + k_value) absent;
    Heap.store_field_int heap table (base + k_stamp) 0;
    Heap.store_field heap table (base + k_old) 0L;
    Heap.store_field heap table (base + k_new) 0L;
    Heap.store_field_int heap table (base + k_seal) 0;
    Heap.store_field_int heap table (base + k_result) 0;
    Heap.store_field_int heap table (base + k_stamp + 5) 0 (* pad *)
  done

let create heap ?(op_cycles = default_op_cycles) ~capacity () =
  if not (is_power_of_two capacity) || capacity < 8 then
    invalid_arg "Delayfree_map.create: capacity must be a power of two >= 8";
  let table =
    Heap.alloc heap ~kind:table_kind
      ~words:(header_words + (capacity * slot_words))
  in
  Heap.store_field_int heap table 0 capacity;
  Heap.store_field_int heap table 1 0;
  init_slots heap table capacity;
  Heap.set_root heap table;
  { heap; table; capacity; mask = capacity - 1; op_cycles }

let attach heap ?(op_cycles = default_op_cycles) table =
  if not (Heap.is_object_start heap table)
     || Heap.kind_of heap table <> table_kind
  then invalid_arg "Delayfree_map.attach: root is not a delay-free table";
  let capacity = derived_capacity heap table in
  if Heap.load_field_int heap table 0 <> capacity then
    invalid_arg "Delayfree_map.attach: capacity header disagrees with size";
  { heap; table; capacity; mask = capacity - 1; op_cycles }

(* Linear probing.  [claim:true] claims the first empty slot for [key]
   (write-once key CAS; the slot's value is ABSENT from initialisation,
   so a crash between claim and first store leaves the key semantically
   absent).  Returns the slot base word, or -1 when probing without
   claiming finds no slot. *)
let find_slot t key ~claim =
  let rec probe i remaining =
    if remaining = 0 then
      if claim then failwith "Delayfree_map: table full" else -1
    else
      let base = slot_base (i land t.mask) in
      let k = Heap.load_field_int t.heap t.table (base + k_key) in
      if k = key then base
      else if k = empty_key then
        if not claim then -1
        else if
          Heap.cas_field_int t.heap t.table (base + k_key) ~expected:empty_key
            ~desired:key
        then begin
          flush_word t (base + k_key);
          base
        end
        else probe i remaining (* lost the claim race: re-read this slot *)
      else probe (i + 1) (remaining - 1)
  in
  probe (mix key) t.capacity

(* Recoverable CAS on a slot's value word.  [f old] returns [Some desired]
   or [None] to abandon without announcing.  Returns the old value the
   successful CAS observed, or [None] if [f] abandoned. *)
let rec mutate t base ~f =
  let r = Heap.load_field_int t.heap t.table (base + k_result) in
  let a = Heap.load_field_int t.heap t.table (base + k_stamp) in
  if a <> r then
    (* Another thread is mid-protocol on this slot.  Delay-free: do not
       help — wait for it; the loads above keep the scheduler moving, so
       the owner always progresses.  (A crashed owner is finished by
       recovery, never by us.) *)
    mutate t base ~f
  else
    let old = Heap.load_field t.heap t.table (base + k_value) in
    match f old with
    | None -> None
    | Some desired ->
        if
          not
            (Heap.cas_field_int t.heap t.table (base + k_stamp) ~expected:a
               ~desired:(a + 1))
        then mutate t base ~f (* lost the announce race *)
        else begin
          (* Own the record: persist the full intent before the CAS... *)
          Heap.store_field t.heap t.table (base + k_old) old;
          Heap.store_field t.heap t.table (base + k_new) desired;
          Heap.store_field_int t.heap t.table (base + k_seal) (a + 1);
          flush_range t (base + k_stamp) (base + k_seal);
          fence t;
          (* ...execute it... *)
          let landed =
            Heap.cas_field t.heap t.table (base + k_value) ~expected:old
              ~desired
          in
          (* ...and acknowledge, landed or not. *)
          Heap.store_field_int t.heap t.table (base + k_result) (a + 1);
          flush_word t (base + k_result);
          fence t;
          if landed then Some old else mutate t base ~f
        end

let set t ~tid:_ ~key ~value =
  Pmem.charge (pmem t) t.op_cycles;
  let base = find_slot t key ~claim:true in
  (* A single word store is atomic; persist it before returning. *)
  Heap.store_field t.heap t.table (base + k_value) value;
  flush_word t (base + k_value);
  fence t

let get t ~tid:_ ~key =
  Pmem.charge (pmem t) t.op_cycles;
  let base = find_slot t key ~claim:false in
  if base < 0 then None
  else
    let v = Heap.load_field t.heap t.table (base + k_value) in
    if v = absent then None else Some v

let incr t ~tid:_ ~key ~by =
  Pmem.charge (pmem t) t.op_cycles;
  let base = find_slot t key ~claim:true in
  ignore
    (mutate t base ~f:(fun old ->
         Some (if old = absent then by else Int64.add old by)))

let remove t ~tid:_ ~key =
  Pmem.charge (pmem t) t.op_cycles;
  let base = find_slot t key ~claim:false in
  if base < 0 then false
  else
    match
      mutate t base ~f:(fun old -> if old = absent then None else Some absent)
    with
    | Some _ -> true
    | None -> false

let ops t =
  {
    Map_intf.name = "delayfree-map";
    set = set t;
    get = get t;
    incr = incr t;
    remove = remove t;
  }

let set_plain t ~key ~value = set t ~tid:0 ~key ~value

(* {2 Recovery} *)

type repair = {
  scanned : int;
  reexecuted : int; (* announced CAS re-executed exactly once *)
  acked : int; (* CAS had landed; only the acknowledgement was missing *)
  aborted : int; (* announce incomplete or CAS had failed: op abandoned *)
}

let repair heap table =
  if not (Heap.is_object_start heap table)
     || Heap.kind_of heap table <> table_kind
  then invalid_arg "Delayfree_map.repair: root is not a delay-free table";
  let capacity = derived_capacity heap table in
  let reexecuted = ref 0 and acked = ref 0 and aborted = ref 0 in
  let bump r = r := !r + 1 in
  for i = 0 to capacity - 1 do
    let base = slot_base i in
    let a = Heap.load_field_int heap table (base + k_stamp) in
    let r = Heap.load_field_int heap table (base + k_result) in
    if a <> r then begin
      let seal = Heap.load_field_int heap table (base + k_seal) in
      if seal <> a then begin
        (* Crash before the announce was sealed: the op's intent never
           persisted, so it cannot have executed — abort it. *)
        Heap.store_field_int heap table (base + k_result) a;
        bump aborted
      end
      else begin
        let v = Heap.load_field heap table (base + k_value) in
        let annou_old = Heap.load_field heap table (base + k_old) in
        let annou_new = Heap.load_field heap table (base + k_new) in
        if v = annou_new then begin
          (* The CAS landed; only the acknowledgement is missing. *)
          Heap.store_field_int heap table (base + k_result) a;
          bump acked
        end
        else if v = annou_old then begin
          (* Announced but not executed: re-execute exactly once.  The
             crashed operation was pending, so applying its announced
             effect is a legal linearisation. *)
          Heap.store_field heap table (base + k_value) annou_new;
          Heap.store_field_int heap table (base + k_result) a;
          bump reexecuted
        end
        else begin
          (* The value matches neither side (a racing plain store won,
             or the image is adversarial): the CAS, had it run, would
             have failed — abort. *)
          Heap.store_field_int heap table (base + k_result) a;
          bump aborted
        end
      end
    end
  done;
  {
    scanned = capacity;
    reexecuted = !reexecuted;
    acked = !acked;
    aborted = !aborted;
  }

let pp_repair ppf r =
  Fmt.pf ppf "rcas repair: %d slots, %d re-executed, %d acked, %d aborted"
    r.scanned r.reexecuted r.acked r.aborted

(* {2 Plain access} *)

let fold_plain heap ~root f acc =
  if not (Heap.is_object_start heap root) then
    raise (Heap.Corrupt "delay-free table root is not an object");
  let capacity = derived_capacity heap root in
  let acc = ref acc in
  for i = 0 to capacity - 1 do
    let base = slot_base i in
    let k = Heap.load_field_int heap root (base + k_key) in
    if k <> empty_key then begin
      let v = Heap.load_field heap root (base + k_value) in
      if v <> absent then acc := f k v !acc
    end
  done;
  !acc

let size_plain heap ~root = fold_plain heap ~root (fun _ _ n -> n + 1) 0

let check_plain heap ~root =
  try
    let seen = Hashtbl.create 64 in
    fold_plain heap ~root
      (fun key _ () ->
        if Hashtbl.mem seen key then
          Fmt.failwith "duplicate key %d in delay-free table" key
        else Hashtbl.add seen key ())
      ();
    Ok ()
  with
  | Failure msg -> Error msg
  | Heap.Corrupt msg -> Error msg
