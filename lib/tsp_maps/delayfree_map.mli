(** A delay-free map over recoverable CAS (after Attiya, Ben-Baruch &
    Hendler's "Delay-Free Concurrency on Faulty Persistent Memory",
    PAPERS.md): a fixed-capacity open-addressed hash table whose
    read-modify-write operations announce the intended CAS — expected
    value, desired value, and a per-slot sequence stamp — and persist
    that announce record {e before} executing the CAS, then acknowledge
    it afterwards.

    A crash anywhere in the window leaves durable evidence from which
    {!repair} finishes the operation {e exactly once}:

    - announce unsealed → the op's intent never persisted, abort it;
    - value = announced desired → the CAS landed, just acknowledge;
    - value = announced expected → re-execute the CAS once;
    - otherwise → the CAS would have failed, acknowledge the failure.

    No thread helps another complete a data CAS ("no blocking helping"):
    a live owner is waited out, a crashed owner is finished by recovery.
    Psync complexity: 2 flushes + 2 fences per read-modify-write
    (announce, acknowledge), 1 + 1 per blind store, 0 for reads. *)

type t

val default_op_cycles : int

val capacity_for : n_buckets:int -> int
(** Power-of-two slot count giving the same keyspace headroom the
    chained map gets from [n_buckets] buckets (8 slots per bucket). *)

val create : Pheap.Heap.t -> ?op_cycles:int -> capacity:int -> unit -> t
(** Allocate and initialise the table (capacity must be a power of two
    >= 8) and point the heap root at it. *)

val attach : Pheap.Heap.t -> ?op_cycles:int -> Pheap.Heap.addr -> t
(** Re-attach after recovery.  Run {!repair} first.
    @raise Invalid_argument if the root is not a delay-free table. *)

val root : t -> Pheap.Heap.addr
val capacity : t -> int
val ops : t -> Map_intf.ops

(** {1 Recovery} *)

type repair = {
  scanned : int;
  reexecuted : int;  (** announced CAS re-executed exactly once *)
  acked : int;  (** CAS had landed; only the acknowledgement was missing *)
  aborted : int;  (** announce incomplete or CAS had failed: op abandoned *)
}

val repair : Pheap.Heap.t -> Pheap.Heap.addr -> repair
(** Single-threaded scan completing every in-flight recoverable CAS
    per the decision table above.  Idempotent: a crash during repair
    re-runs it to the same state.
    @raise Invalid_argument if the root is not a delay-free table. *)

val pp_repair : repair Fmt.t

(** {1 Plain access — setup and verification} *)

val set_plain : t -> key:int -> value:int64 -> unit

val fold_plain :
  Pheap.Heap.t -> root:Pheap.Heap.addr -> (int -> int64 -> 'a -> 'a) -> 'a -> 'a

val size_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

val check_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> (unit, string) result
(** Structural sanity: no duplicate keys among occupied slots. *)

val table_kind : int
