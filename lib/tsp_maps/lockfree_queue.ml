module Heap = Pheap.Heap
module Kind = Pheap.Kind

(* Node: [0] = value (raw), [1] = next (pointer). *)
let node_kind =
  Kind.register ~name:"queue_node"
    ~scan:(fun ~load ~addr ~words:_ ->
      let next = Int64.to_int (load (addr + 8)) in
      if next <> 0 then [ next ] else [])
    ~scan_int:(fun ~load ~addr ~words:_ ~emit ->
      let next = load (addr + 8) in
      if next <> 0 then emit next)
    ()

(* Header: [0] = head (pointer to the dummy node), [1] = tail. *)
let header_kind =
  Kind.register ~name:"queue_header"
    ~scan:(fun ~load ~addr ~words:_ ->
      List.filter_map
        (fun i ->
          let p = Int64.to_int (load (addr + (8 * i))) in
          if p <> 0 then Some p else None)
        [ 0; 1 ])
    ~scan_int:(fun ~load ~addr ~words:_ ~emit ->
      let head = load addr in
      if head <> 0 then emit head;
      let tail = load (addr + 8) in
      if tail <> 0 then emit tail)
    ()

type t = { heap : Heap.t; header : Heap.addr }

let root t = t.header

let alloc_node t value =
  let node = Heap.alloc t.heap ~kind:node_kind ~words:2 in
  Heap.store_field t.heap node 0 value;
  Heap.store_field_int t.heap node 1 Heap.null;
  node

let create heap ?(set_root = true) () =
  let header = Heap.alloc heap ~kind:header_kind ~words:2 in
  let t = { heap; header } in
  let dummy = alloc_node t 0L in
  Heap.store_field_int heap header 0 dummy;
  Heap.store_field_int heap header 1 dummy;
  if set_root then Heap.set_root heap header;
  t

let attach heap header =
  if not (Heap.is_object_start heap header)
     || Heap.kind_of heap header <> header_kind
  then invalid_arg "Lockfree_queue.attach: not a queue header";
  { heap; header }

let head t = Heap.load_field_int t.heap t.header 0
let tail t = Heap.load_field_int t.heap t.header 1
let next t node = Heap.load_field_int t.heap node 1
let value t node = Heap.load_field t.heap node 0

let cas_head t ~expected ~desired =
  Heap.cas_field_int t.heap t.header 0 ~expected ~desired

let cas_tail t ~expected ~desired =
  Heap.cas_field_int t.heap t.header 1 ~expected ~desired

let cas_next t node ~expected ~desired =
  Heap.cas_field_int t.heap node 1 ~expected ~desired

let enqueue t v =
  let node = alloc_node t v in
  let rec attempt () =
    let last = tail t in
    let nxt = next t last in
    if nxt = Heap.null then begin
      if cas_next t last ~expected:Heap.null ~desired:node then
        (* Swing the tail; failure means someone helped us. *)
        ignore (cas_tail t ~expected:last ~desired:node : bool)
      else attempt ()
    end
    else begin
      (* Tail lags: help swing it, then retry. *)
      ignore (cas_tail t ~expected:last ~desired:nxt : bool);
      attempt ()
    end
  in
  attempt ()

let rec dequeue t =
  let first = head t in
  let last = tail t in
  let nxt = next t first in
  if first = last then
    if nxt = Heap.null then None
    else begin
      (* Tail lags behind a concurrent enqueue: help, retry. *)
      ignore (cas_tail t ~expected:last ~desired:nxt : bool);
      dequeue t
    end
  else if nxt = Heap.null then
    (* head <> tail but next not yet visible: another dequeue won the
       race and the snapshot is stale; retry. *)
    dequeue t
  else
    let v = value t nxt in
    if cas_head t ~expected:first ~desired:nxt then
      (* [first] (the old dummy) is now unreachable; the recovery GC
         reclaims it.  Freeing here would invite ABA on the head CAS. *)
      Some v
    else dequeue t

let is_empty t = next t (head t) = Heap.null

let to_list t =
  let rec go node acc =
    if node = Heap.null then List.rev acc
    else go (next t node) (value t node :: acc)
  in
  go (next t (head t)) []

let length t = List.length (to_list t)

let check_plain heap ~root =
  if not (Heap.is_object_start heap root)
     || Heap.kind_of heap root <> header_kind
  then Error "root is not a queue header"
  else begin
    let t = { heap; header = root } in
    let rec walk node seen tail_seen =
      if node = Heap.null then
        if tail_seen then Ok ()
        else Error "tail does not reach the end of the chain"
      else if List.mem node seen then Error "cycle in queue chain"
      else if not (Heap.is_object_start heap node) then
        Error (Printf.sprintf "invalid node at %d" node)
      else walk (next t node) (node :: seen) (tail_seen || node = tail t)
    in
    let h = head t in
    if not (Heap.is_object_start heap h) then Error "invalid head node"
    else
      match walk h [] false with
      | Error _ as e -> e
      | Ok () ->
          (* The helping invariant: tail is the last or second-to-last. *)
          let last = tail t in
          if next t last = Heap.null || next t (next t last) = Heap.null then
            Ok ()
          else Error "tail lags by more than one node"
  end
