(** Pure sequential oracle of the {!Map_intf.ops} interface.

    The durable-linearizability checker (lib/check) reasons about map
    histories algebraically; this module is the executable ground truth
    it is cross-validated against: apply a candidate linearization to
    the model and compare final states.  Semantics mirror both
    implementations exactly — [set] inserts or overwrites, [remove]
    deletes and reports presence, and [incr] on an absent key inserts
    the increment itself ([Chained_hashmap] and [Lockfree_skiplist]
    agree on this). *)

type t

val empty : t
val of_entries : (int * int64) list -> t

val set : t -> key:int -> value:int64 -> t
val get : t -> key:int -> int64 option
val incr : t -> key:int -> by:int64 -> t
val remove : t -> key:int -> t * bool

val entries : t -> (int * int64) list
(** In ascending key order. *)

val equal_entries : (int * int64) list -> (int * int64) list -> bool
(** Order-insensitive comparison of two entry dumps. *)
