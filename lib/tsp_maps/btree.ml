module Heap = Pheap.Heap
module Kind = Pheap.Kind
module Rt = Atlas.Runtime

let default_order = 7
let meta_ix = 0
let next_ix = 1
let key_base = 3

(* meta word: bit 0 = leaf flag, bits 1.. = key count. *)
let encode_meta ~leaf ~nkeys = (nkeys lsl 1) lor (if leaf then 1 else 0)
let meta_is_leaf m = m land 1 = 1
let meta_nkeys m = m lsr 1

let node_words ~order = (2 * order) + 4
let order_of_words words = (words - 4) / 2

let node_kind =
  Kind.register ~name:"btree_node"
    ~scan:(fun ~load ~addr ~words ->
      let order = order_of_words words in
      let meta = Int64.to_int (load addr) in
      if meta_is_leaf meta then begin
        let next = Int64.to_int (load (addr + (8 * next_ix))) in
        if next <> 0 then [ next ] else []
      end
      else
        let nkeys = min (meta_nkeys meta) order in
        List.filter_map
          (fun i ->
            let c =
              Int64.to_int (load (addr + (8 * (key_base + order + i))))
            in
            if c <> 0 then Some c else None)
          (List.init (nkeys + 1) (fun i -> i)))
    ~scan_int:(fun ~load ~addr ~words ~emit ->
      let order = order_of_words words in
      let meta = load addr in
      if meta_is_leaf meta then begin
        let next = load (addr + (8 * next_ix)) in
        if next <> 0 then emit next
      end
      else
        let nkeys = min (meta_nkeys meta) order in
        for i = 0 to nkeys do
          let c = load (addr + (8 * (key_base + order + i))) in
          if c <> 0 then emit c
        done)
    ()

let header_kind =
  Kind.register ~name:"btree_header"
    ~scan:(fun ~load ~addr ~words:_ -> [ Int64.to_int (load addr) ])
    ~scan_int:(fun ~load ~addr ~words:_ ~emit ->
      let root = load addr in
      if root <> 0 then emit root)
    ()

type t = {
  heap : Heap.t;
  atlas : Rt.t;
  header : Heap.addr;
  order : int;
  mutex : Rt.amutex;
  op_cycles : int;
}

let default_op_cycles = 40
let root t = t.header
let order t = t.order

(* All tree logic is written once against an abstract store function, so
   the instrumented (Atlas) and plain (setup) paths share the algorithm
   and cannot diverge. *)
type io = {
  heap : Heap.t;
  order : int;
  store : Heap.addr -> int -> int64 -> unit;
}

let load io node i = Heap.load_field io.heap node i
let load_int io node i = Heap.load_field_int io.heap node i
let meta io node = load_int io node meta_ix
let key io node i = load_int io node (key_base + i)
let slot_ix io i = key_base + io.order + i
let slot io node i = load_int io node (slot_ix io i)

let alloc_node io ~leaf =
  let node = Heap.alloc io.heap ~kind:node_kind ~words:(node_words ~order:io.order) in
  io.store node meta_ix (Int64.of_int (encode_meta ~leaf ~nkeys:0));
  io.store node next_ix 0L;
  io.store node 2 0L;
  node

(* Index of the child covering [k]: the count of separators <= k. *)
let child_index io node k =
  let nk = meta_nkeys (meta io node) in
  let rec go i = if i < nk && key io node i <= k then go (i + 1) else i in
  go 0

(* First position in a leaf whose key is >= k. *)
let leaf_pos io node k =
  let nk = meta_nkeys (meta io node) in
  let rec go i = if i < nk && key io node i < k then go (i + 1) else i in
  go 0

(* Split the full [i]-th child of [parent] (which must have room).
   Rewrites dozens of words across three nodes: the canonical large
   critical section. *)
let split_child io parent i =
  let child = slot io parent i in
  let cmeta = meta io child in
  let leaf = meta_is_leaf cmeta in
  let mid = io.order / 2 in
  let right = alloc_node io ~leaf in
  let sep =
    if leaf then begin
      let rk = io.order - mid in
      for j = 0 to rk - 1 do
        io.store right (key_base + j) (load io child (key_base + mid + j));
        io.store right (slot_ix io j) (load io child (slot_ix io (mid + j)))
      done;
      io.store right meta_ix (Int64.of_int (encode_meta ~leaf:true ~nkeys:rk));
      io.store right next_ix (load io child next_ix);
      io.store child next_ix (Int64.of_int right);
      io.store child meta_ix (Int64.of_int (encode_meta ~leaf:true ~nkeys:mid));
      key io right 0
    end
    else begin
      let rk = io.order - mid - 1 in
      for j = 0 to rk - 1 do
        io.store right (key_base + j) (load io child (key_base + mid + 1 + j))
      done;
      for j = 0 to rk do
        io.store right (slot_ix io j) (load io child (slot_ix io (mid + 1 + j)))
      done;
      io.store right meta_ix (Int64.of_int (encode_meta ~leaf:false ~nkeys:rk));
      let s = key io child mid in
      io.store child meta_ix (Int64.of_int (encode_meta ~leaf:false ~nkeys:mid));
      s
    end
  in
  (* Insert the separator and the new child into the parent at [i]. *)
  let pk = meta_nkeys (meta io parent) in
  for j = pk - 1 downto i do
    io.store parent (key_base + j + 1) (load io parent (key_base + j))
  done;
  for j = pk downto i + 1 do
    io.store parent (slot_ix io (j + 1)) (load io parent (slot_ix io j))
  done;
  io.store parent (key_base + i) (Int64.of_int sep);
  io.store parent (slot_ix io (i + 1)) (Int64.of_int right);
  io.store parent meta_ix (Int64.of_int (encode_meta ~leaf:false ~nkeys:(pk + 1)))

(* Insert into a node known not to be full; splits full children on the
   way down (preemptive splitting keeps parents non-full). *)
let rec insert_nonfull io node k ~combine =
  let m = meta io node in
  if meta_is_leaf m then begin
    let nk = meta_nkeys m in
    let pos = leaf_pos io node k in
    if pos < nk && key io node pos = k then
      let old = load io node (slot_ix io pos) in
      io.store node (slot_ix io pos) (combine old)
    else begin
      for j = nk - 1 downto pos do
        io.store node (key_base + j + 1) (load io node (key_base + j));
        io.store node (slot_ix io (j + 1)) (load io node (slot_ix io j))
      done;
      io.store node (key_base + pos) (Int64.of_int k);
      io.store node (slot_ix io pos) (combine 0L);
      io.store node meta_ix (Int64.of_int (encode_meta ~leaf:true ~nkeys:(nk + 1)))
    end
  end
  else begin
    let i = child_index io node k in
    let child = slot io node i in
    if meta_nkeys (meta io child) = io.order then begin
      split_child io node i;
      let i = if key io node i <= k then i + 1 else i in
      insert_nonfull io (slot io node i) k ~combine
    end
    else insert_nonfull io child k ~combine
  end

let insert io header k ~combine =
  let root = Heap.load_field_int io.heap header 0 in
  let root =
    if meta_nkeys (meta io root) = io.order then begin
      let newroot = alloc_node io ~leaf:false in
      io.store newroot (slot_ix io 0) (Int64.of_int root);
      split_child io newroot 0;
      io.store header 0 (Int64.of_int newroot);
      newroot
    end
    else root
  in
  insert_nonfull io root k ~combine

let rec find_leaf io node k =
  let m = meta io node in
  if meta_is_leaf m then node
  else find_leaf io (slot io node (child_index io node k)) k

let lookup io header k =
  let root = Heap.load_field_int io.heap header 0 in
  let leaf = find_leaf io root k in
  let pos = leaf_pos io leaf k in
  if pos < meta_nkeys (meta io leaf) && key io leaf pos = k then
    Some (load io leaf (slot_ix io pos))
  else None

let delete io header k =
  let root = Heap.load_field_int io.heap header 0 in
  let leaf = find_leaf io root k in
  let nk = meta_nkeys (meta io leaf) in
  let pos = leaf_pos io leaf k in
  if pos < nk && key io leaf pos = k then begin
    for j = pos to nk - 2 do
      io.store leaf (key_base + j) (load io leaf (key_base + j + 1));
      io.store leaf (slot_ix io j) (load io leaf (slot_ix io (j + 1)))
    done;
    io.store leaf meta_ix (Int64.of_int (encode_meta ~leaf:true ~nkeys:(nk - 1)));
    true
  end
  else false

(* --- Handles --- *)

let plain_io heap ~order =
  { heap; order; store = (fun node i v -> Heap.store_field heap node i v) }

let atlas_io (t : t) ctx =
  {
    heap = t.heap;
    order = t.order;
    store = (fun node i v -> Rt.store_field t.atlas ctx node i v);
  }

let create heap ~atlas ~sched ?(order = default_order) ?(op_cycles = default_op_cycles) () =
  if order < 3 || order > 31 then invalid_arg "Btree.create: order out of range";
  let header = Heap.alloc heap ~kind:header_kind ~words:2 in
  let io = plain_io heap ~order in
  let leaf = alloc_node io ~leaf:true in
  Heap.store_field_int heap header 0 leaf;
  Heap.store_field_int heap header 1 order;
  Heap.set_root heap header;
  { heap; atlas; header; order; mutex = Rt.make_mutex atlas sched; op_cycles }

let attach heap ~atlas ~sched ?(op_cycles = default_op_cycles) header =
  if not (Heap.is_object_start heap header)
     || Heap.kind_of heap header <> header_kind
  then invalid_arg "Btree.attach: not a B+-tree header";
  let order = Heap.load_field_int heap header 1 in
  { heap; atlas; header; order; mutex = Rt.make_mutex atlas sched; op_cycles }

let locked t ~tid f =
  let ctx = Rt.thread_ctx t.atlas ~tid in
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  Rt.with_lock t.atlas ctx t.mutex (fun () -> f (atlas_io t ctx))

let set t ~tid ~key ~value =
  locked t ~tid (fun io -> insert io t.header key ~combine:(fun _ -> value))

let get t ~tid ~key = locked t ~tid (fun io -> lookup io t.header key)

let incr t ~tid ~key ~by =
  locked t ~tid (fun io ->
      insert io t.header key ~combine:(fun old -> Int64.add old by))

let remove t ~tid ~key = locked t ~tid (fun io -> delete io t.header key)

let ops t =
  {
    Map_intf.name = "btree/" ^ Atlas.Mode.to_string (Rt.mode t.atlas);
    set = set t;
    get = get t;
    incr = incr t;
    remove = remove t;
  }

let set_plain (t : t) ~key ~value =
  insert (plain_io t.heap ~order:t.order) t.header key ~combine:(fun _ -> value)

(* --- Plain traversal and audit --- *)

let io_of heap ~root =
  let order = Heap.load_field_int heap root 1 in
  plain_io heap ~order

let leftmost_leaf io node =
  let rec go node =
    if meta_is_leaf (meta io node) then node else go (slot io node 0)
  in
  go node

let fold_plain heap ~root f acc =
  let io = io_of heap ~root in
  let tree_root = Heap.load_field_int heap root 0 in
  let rec walk leaf acc =
    if leaf = Heap.null then acc
    else begin
      let nk = meta_nkeys (meta io leaf) in
      let acc = ref acc in
      for j = 0 to nk - 1 do
        acc := f (key io leaf j) (load io leaf (slot_ix io j)) !acc
      done;
      walk (load_int io leaf next_ix) !acc
    end
  in
  walk (leftmost_leaf io tree_root) acc

let size_plain heap ~root = fold_plain heap ~root (fun _ _ n -> n + 1) 0

let height heap ~root =
  let io = io_of heap ~root in
  let rec go node h =
    if meta_is_leaf (meta io node) then h else go (slot io node 0) (h + 1)
  in
  go (Heap.load_field_int heap root 0) 1

let check_plain heap ~root =
  try
    if not (Heap.is_object_start heap root)
       || Heap.kind_of heap root <> header_kind
    then Error "not a B+-tree header"
    else begin
      let io = io_of heap ~root in
      let tree_root = Heap.load_field_int heap root 0 in
      let fail fmt = Fmt.kstr failwith fmt in
      let leaf_depth = ref (-1) in
      let leaves_in_order = ref [] in
      (* Bounds: every key k in a subtree satisfies lo <= k < hi. *)
      let rec check node ~lo ~hi ~depth =
        if not (Heap.is_object_start heap node) then
          fail "invalid node at %d" node;
        let m = meta io node in
        let nk = meta_nkeys m in
        if nk > io.order then fail "node %d overfull (%d keys)" node nk;
        let in_bounds k =
          (match lo with Some l -> k >= l | None -> true)
          && match hi with Some h -> k < h | None -> true
        in
        for j = 0 to nk - 1 do
          let k = key io node j in
          if not (in_bounds k) then fail "key %d out of bounds in node %d" k node;
          if j > 0 && key io node (j - 1) >= k then
            fail "keys not sorted in node %d" node
        done;
        if meta_is_leaf m then begin
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then
            fail "leaf %d at depth %d, expected %d" node depth !leaf_depth;
          leaves_in_order := node :: !leaves_in_order
        end
        else begin
          if node = tree_root && nk = 0 then
            fail "internal root with no separator";
          for i = 0 to nk do
            let lo_i = if i = 0 then lo else Some (key io node (i - 1)) in
            let hi_i = if i = nk then hi else Some (key io node i) in
            check (slot io node i) ~lo:lo_i ~hi:hi_i ~depth:(depth + 1)
          done
        end
      in
      check tree_root ~lo:None ~hi:None ~depth:0;
      (* The leaf chain must enumerate exactly the descent's leaves. *)
      let expected = List.rev !leaves_in_order in
      let rec chain leaf acc =
        if leaf = Heap.null then List.rev acc else chain (load_int io leaf next_ix) (leaf :: acc)
      in
      let actual = chain (leftmost_leaf io tree_root) [] in
      if expected <> actual then fail "leaf chain disagrees with tree descent";
      (* And the enumerated keys must be globally sorted. *)
      ignore
        (fold_plain heap ~root
           (fun k _ last ->
             if k <= last then fail "leaf chain keys not sorted (%d after %d)" k last;
             k)
           min_int);
      Ok ()
    end
  with
  | Failure msg -> Error msg
  | Heap.Corrupt msg -> Error msg
