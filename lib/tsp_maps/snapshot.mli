(** Kind-dispatched map-state enumeration.

    The checker compares a recovered heap against an operation history
    without knowing which structure produced it.  Every persistent
    object carries a registered kind tag (see {!Pheap.Kind}); the root
    object's kind name identifies the structure, and the matching
    [fold_plain] dumps its entries.  Recognised roots: a skiplist head
    sentinel ([skip_node] with key [min_int], shared by the plain
    non-blocking and NVTraverse variants), a hash-map header
    ([hash_header]), and a delay-free recoverable-CAS table
    ([delayfree_table]). *)

val structure : Pheap.Heap.t -> string
(** Kind name of the heap's root object ("skip_node", "hash_header",
    ...).  @raise Pheap.Heap.Corrupt if the root is not a live object
    start. *)

val entries : Pheap.Heap.t -> (int * int64) list
(** Dump the key/value pairs of the map rooted at the heap root,
    dispatching on the root's kind.
    @raise Invalid_argument for roots that are not a recognised
    single-word map (b-tree, queue, wide-value maps are out of scope for
    the checker). *)
