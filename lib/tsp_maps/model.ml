module M = Map.Make (Int)

type t = int64 M.t

let empty = M.empty

let of_entries l =
  List.fold_left (fun m (k, v) -> M.add k v m) M.empty l

let set t ~key ~value = M.add key value t
let get t ~key = M.find_opt key t

let incr t ~key ~by =
  match M.find_opt key t with
  | Some v -> M.add key (Int64.add v by) t
  | None -> M.add key by t

let remove t ~key =
  if M.mem key t then (M.remove key t, true) else (t, false)

let entries t = M.bindings t

let sort_entries l =
  List.sort
    (fun (k1, v1) (k2, v2) ->
      match Int.compare k1 k2 with 0 -> Int64.compare v1 v2 | c -> c)
    l

let equal_entries a b =
  List.equal
    (fun (k1, v1) (k2, v2) -> k1 = k2 && Int64.equal v1 v2)
    (sort_entries a) (sort_entries b)
