module Heap = Pheap.Heap
module Kind = Pheap.Kind
module Rng = Sched.Sim_rng

let default_max_level = 16
let next_base = 3 (* word index of the level-0 next pointer *)
let default_op_cycles = 25

let node_kind =
  Kind.register ~name:"skip_node"
    ~scan:(fun ~load ~addr ~words ->
      let level = words - next_base in
      let rec go lv acc =
        if lv >= level then acc
        else
          let p = Int64.to_int (load (addr + (8 * (next_base + lv)))) land lnot 1 in
          go (lv + 1) (if p <> 0 then p :: acc else acc)
      in
      go 0 [])
    ~scan_int:(fun ~load ~addr ~words ~emit ->
      let level = words - next_base in
      for lv = 0 to level - 1 do
        let p = load (addr + (8 * (next_base + lv))) land lnot 1 in
        if p <> 0 then emit p
      done)
    ()

type t = {
  heap : Heap.t;
  head : Heap.addr;
  max_level : int;
  rngs : Rng.t array;  (* one deterministic level generator per thread *)
  op_cycles : int;
      (* charged per operation: level generation, call overhead and the
         per-access CPU work a flat word-level simulation underestimates *)
}

let root t = t.head
let max_level t = t.max_level

let is_marked p = p land 1 = 1
let unmark p = p land lnot 1
let with_mark p = p lor 1

let key_of t node = Heap.load_field_int t.heap node 0
let value_of t node = Heap.load_field t.heap node 1
let level_of t node = Heap.words_of t.heap node - next_base

let read_next t node lv = Heap.load_field_int t.heap node (next_base + lv)

let cas_next t node lv ~expected ~desired =
  Heap.cas_field_int t.heap node (next_base + lv) ~expected ~desired

let alloc_node t ~key ~value ~level =
  let node = Heap.alloc t.heap ~kind:node_kind ~words:(next_base + level) in
  Heap.store_field_int t.heap node 0 key;
  Heap.store_field t.heap node 1 value;
  Heap.store_field_int t.heap node 2 level;
  node

let make_rngs ~num_threads ~seed =
  let master = Rng.create ~seed in
  Array.init num_threads (fun _ -> Rng.split master)

let create heap ?(max_level = default_max_level) ?(op_cycles = default_op_cycles)
    ~num_threads ~seed () =
  if max_level < 1 || max_level > 32 then
    invalid_arg "Lockfree_skiplist.create: max_level out of range";
  let t = { heap; head = Heap.null; max_level; rngs = [||]; op_cycles } in
  let tail = alloc_node t ~key:max_int ~value:0L ~level:max_level in
  for lv = 0 to max_level - 1 do
    Heap.store_field_int heap tail (next_base + lv) Heap.null
  done;
  let head = alloc_node t ~key:min_int ~value:0L ~level:max_level in
  for lv = 0 to max_level - 1 do
    Heap.store_field_int heap head (next_base + lv) tail
  done;
  Heap.set_root heap head;
  { heap; head; max_level; rngs = make_rngs ~num_threads ~seed; op_cycles }

let attach heap ?(op_cycles = default_op_cycles) ~num_threads ~seed head =
  if not (Heap.is_object_start heap head)
     || Heap.kind_of heap head <> node_kind
  then invalid_arg "Lockfree_skiplist.attach: root is not a skip-list node";
  if Heap.load_field_int heap head 0 <> min_int then
    invalid_arg "Lockfree_skiplist.attach: root is not the head sentinel";
  let max_level = Heap.words_of heap head - next_base in
  { heap; head; max_level; rngs = make_rngs ~num_threads ~seed; op_cycles }

let random_level t tid =
  let rng = t.rngs.(tid) in
  let rec toss lv =
    if lv >= t.max_level then t.max_level else if Rng.bool rng then toss (lv + 1) else lv
  in
  toss 1

(* Herlihy-Shavit [find]: descend levels keeping, per level, the last
   node with key < [key] ([preds]) and its successor ([succs]); snip any
   marked node encountered.  A failed snip CAS means the picture changed
   under us: restart from the top. *)
let rec find t key ~preds ~succs =
  let rec down pred lv =
    if lv < 0 then true
    else
      let rec scan pred curr =
        let succ_raw = read_next t curr lv in
        if is_marked succ_raw then
          if cas_next t pred lv ~expected:curr ~desired:(unmark succ_raw) then
            scan pred (unmark succ_raw)
          else false
        else if key_of t curr < key then scan curr (unmark succ_raw)
        else begin
          preds.(lv) <- pred;
          succs.(lv) <- curr;
          true
        end
      in
      if scan pred (unmark (read_next t pred lv)) then down preds.(lv) (lv - 1)
      else false
  in
  if down t.head (t.max_level - 1) then ()
  else find t key ~preds ~succs

let find_arrays t key =
  let preds = Array.make t.max_level Heap.null in
  let succs = Array.make t.max_level Heap.null in
  find t key ~preds ~succs;
  (preds, succs)

(* Link the upper levels of a freshly inserted node, helping-friendly:
   abandon a level as soon as the node is found marked or unlinked. *)
let rec link_upper t node level key lv =
  if lv < level then begin
    let preds, succs = find_arrays t key in
    if succs.(0) <> node then () (* deleted or superseded: stop *)
    else
      let cur = read_next t node lv in
      if is_marked cur then ()
      else if
        cur <> succs.(lv)
        && not (cas_next t node lv ~expected:cur ~desired:succs.(lv))
      then link_upper t node level key lv
      else if cas_next t preds.(lv) lv ~expected:succs.(lv) ~desired:node then
        link_upper t node level key (lv + 1)
      else link_upper t node level key lv
  end

(* Insert-or-act: if [key] is present run [on_found] on its node,
   otherwise try to link a fresh node carrying [value].  [on_found]
   returning [false] requests a retry (its CAS lost a race). *)
let rec upsert t tid key ~value ~on_found =
  let preds, succs = find_arrays t key in
  if key_of t succs.(0) = key then begin
    if not (on_found succs.(0)) then upsert t tid key ~value ~on_found
  end
  else begin
    let level = random_level t tid in
    let node = alloc_node t ~key ~value ~level in
    for lv = 0 to level - 1 do
      Heap.store_field_int t.heap node (next_base + lv) succs.(lv)
    done;
    if cas_next t preds.(0) 0 ~expected:succs.(0) ~desired:node then
      link_upper t node level key 1
    else begin
      (* Lost the race; the node was never published, so reclaim it
         immediately rather than waiting for the recovery GC. *)
      Heap.free t.heap node;
      upsert t tid key ~value ~on_found
    end
  end

let set t ~tid ~key ~value =
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  upsert t tid key ~value ~on_found:(fun node ->
      (* A single word store is atomic; overwrite needs no CAS. *)
      Heap.store_field t.heap node 1 value;
      true)

let incr t ~tid ~key ~by =
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  upsert t tid key ~value:by ~on_found:(fun node ->
      let old = value_of t node in
      Heap.cas_field t.heap node 1 ~expected:old ~desired:(Int64.add old by))

(* Wait-free membership test: traverse without snipping. *)
let get t ~tid:_ ~key =
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let rec down pred lv curr_final =
    if lv < 0 then curr_final
    else
      let rec scan pred curr =
        let succ_raw = read_next t curr lv in
        if is_marked succ_raw then scan pred (unmark succ_raw)
        else if key_of t curr < key then scan curr (unmark succ_raw)
        else (pred, curr)
      in
      let pred, curr = scan pred (unmark (read_next t pred lv)) in
      down pred (lv - 1) curr
  in
  let curr = down t.head (t.max_level - 1) Heap.null in
  if curr <> Heap.null && key_of t curr = key then Some (value_of t curr)
  else None

let remove t ~tid:_ ~key =
  Nvm.Pmem.charge (Heap.pmem t.heap) t.op_cycles;
  let _, succs = find_arrays t key in
  if key_of t succs.(0) <> key then false
  else begin
    let node = succs.(0) in
    let level = level_of t node in
    (* Mark top-down; the bottom-level mark is the linearisation point. *)
    for lv = level - 1 downto 1 do
      let rec mark_level () =
        let nxt = read_next t node lv in
        if not (is_marked nxt) then
          if not (cas_next t node lv ~expected:nxt ~desired:(with_mark nxt))
          then mark_level ()
      in
      mark_level ()
    done;
    let rec bottom () =
      let nxt = read_next t node 0 in
      if is_marked nxt then false
      else if cas_next t node 0 ~expected:nxt ~desired:(with_mark nxt) then begin
        ignore (find_arrays t key);  (* physically unlink *)
        true
      end
      else bottom ()
    in
    bottom ()
  end

let ops t =
  {
    Map_intf.name = "lockfree-skiplist";
    set = set t;
    get = get t;
    incr = incr t;
    remove = remove t;
  }

let set_plain t ~key ~value = set t ~tid:0 ~key ~value

let fold_plain heap ~root f acc =
  if not (Heap.is_object_start heap root) then
    raise (Heap.Corrupt "skip list head is not an object");
  let rec walk node acc =
    if node = Heap.null then acc
    else if not (Heap.is_object_start heap node) then
      raise (Heap.Corrupt (Printf.sprintf "skip node %d invalid" node))
    else
      let key = Heap.load_field_int heap node 0 in
      if key = max_int then acc (* tail sentinel *)
      else
        let next_raw = Heap.load_field_int heap node next_base in
        let acc =
          if is_marked next_raw || key = min_int then acc
          else f key (Heap.load_field heap node 1) acc
        in
        walk (next_raw land lnot 1) acc
  in
  walk root acc

let size_plain heap ~root = fold_plain heap ~root (fun _ _ n -> n + 1) 0

let check_plain heap ~root =
  try
    let last =
      fold_plain heap ~root
        (fun key _ last ->
          if key <= last then
            Fmt.failwith "keys not strictly increasing: %d after %d" key last
          else key)
        min_int
    in
    ignore (last : int);
    Ok ()
  with
  | Failure msg -> Error msg
  | Heap.Corrupt msg -> Error msg
