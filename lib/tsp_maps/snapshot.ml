module Heap = Pheap.Heap
module Kind = Pheap.Kind

let structure heap = Kind.name (Heap.kind_of heap (Heap.get_root heap))

let entries heap =
  let root = Heap.get_root heap in
  match Kind.name (Heap.kind_of heap root) with
  | "skip_node" ->
      (* The root of a skiplist is its head sentinel. *)
      if Heap.load_field_int heap root 0 <> min_int then
        invalid_arg
          "Snapshot.entries: skip_node root is not a head sentinel";
      List.rev
        (Lockfree_skiplist.fold_plain heap ~root
           (fun k v acc -> (k, v) :: acc)
           [])
  | "hash_header" ->
      List.rev
        (Chained_hashmap.fold_plain heap ~root
           (fun k v acc -> (k, v) :: acc)
           [])
  | name ->
      Fmt.invalid_arg
        "Snapshot.entries: unsupported root structure %S (expected \
         skip_node or hash_header)"
        name
