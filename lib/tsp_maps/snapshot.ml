module Heap = Pheap.Heap
module Kind = Pheap.Kind

let structure heap = Kind.name (Heap.kind_of heap (Heap.get_root heap))

let entries heap =
  let root = Heap.get_root heap in
  match Kind.name (Heap.kind_of heap root) with
  | "skip_node" ->
      (* The root of a skiplist is its head sentinel. *)
      if Heap.load_field_int heap root 0 <> min_int then
        invalid_arg
          "Snapshot.entries: skip_node root is not a head sentinel";
      List.rev
        (Lockfree_skiplist.fold_plain heap ~root
           (fun k v acc -> (k, v) :: acc)
           [])
  | "hash_header" ->
      List.rev
        (Chained_hashmap.fold_plain heap ~root
           (fun k v acc -> (k, v) :: acc)
           [])
  | "delayfree_table" ->
      (* Slot order is hash order; normalise to key order like the
         other structures. *)
      List.sort
        (fun (k1, _) (k2, _) -> Int.compare k1 k2)
        (Delayfree_map.fold_plain heap ~root
           (fun k v acc -> (k, v) :: acc)
           [])
  | name ->
      Fmt.invalid_arg
        "Snapshot.entries: unsupported root structure %S (expected \
         skip_node, hash_header or delayfree_table)"
        name
