(* tsp — command-line front end for the TSP reproduction.

   Subcommands map one-to-one onto the experiment index of DESIGN.md:
   table1 (E1/E2), faults (E3/E9), sweeps (E4/E7/E8 + cache ablation),
   policy (E5), wsp (E6), and run for one-off configurations. *)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* Shared argument parsers *)

let platform_conv =
  let parse = function
    | "desktop" | "envy" -> Ok Nvm.Config.desktop
    | "server" | "dl580" -> Ok Nvm.Config.server
    | s -> Error (`Msg (Printf.sprintf "unknown platform %S" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf p.Nvm.Config.name)

(* Spellings and round-trip live in Workload.Machine, next to the type:
   adding a variant there is the only step needed for the CLI, the fault
   injector's reproducers and the frontier table to agree. *)
let variant_conv =
  let parse s =
    match Workload.Machine.variant_of_string s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf v -> Fmt.string ppf (Workload.Machine.variant_to_cli_string v))

let hardware_conv =
  let parse s =
    match Tsp_core.Hardware.find s with
    | Some h -> Ok h
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown hardware %S (try one of: %s)" s
                (String.concat ", "
                   (List.map
                      (fun h -> h.Tsp_core.Hardware.name)
                      Tsp_core.Hardware.all))))
  in
  Arg.conv (parse, fun ppf h -> Fmt.string ppf h.Tsp_core.Hardware.name)

let failure_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Tsp_core.Failure_class.of_string s)
  in
  Arg.conv (parse, Tsp_core.Failure_class.pp)

let recovery_mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "eager" -> Ok Workload.Machine.Eager
    | "parallel" -> Ok (Workload.Machine.Parallel_gc 2)
    | "incremental" | "lazy" -> Ok Workload.Machine.Incremental_gc
    | s -> (
        match String.index_opt s ':' with
        | Some i
          when String.sub s 0 i = "parallel" -> (
            match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
            | Some j when j >= 1 -> Ok (Workload.Machine.Parallel_gc j)
            | _ ->
                Error
                  (`Msg (Printf.sprintf "invalid parallel job count in %S" s)))
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown recovery mode %S (eager, parallel[:N], \
                     incremental)"
                    s)))
  in
  Arg.conv
    (parse, fun ppf m -> Fmt.string ppf (Workload.Machine.recovery_mode_to_string m))

let recovery_mode_arg =
  Arg.(value
       & opt recovery_mode_conv Workload.Machine.Eager
       & info [ "recovery-mode" ] ~docv:"MODE"
           ~doc:"How a crashed heap recovers: $(b,eager) (the costed \
                 legacy pipeline), $(b,parallel[:N]) (streamed log scan \
                 and mark fanned over N domains; byte-identical results \
                 for any N), or $(b,incremental) (reattach after rescue + \
                 log scan and collect in the background).")

let iterations_arg default =
  Arg.(value & opt int default & info [ "iterations"; "n" ] ~docv:"N"
         ~doc:"Iterations per worker thread.")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"T"
         ~doc:"Number of worker threads.")

let seed_env =
  Cmd.Env.info "TSP_SEED"
    ~doc:"Default deterministic seed for every campaign subcommand; the \
          $(b,--seed) option overrides it."

let seed_arg =
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~env:seed_env
         ~doc:"Deterministic seed; a run is a pure function of it.")

(* [--jobs] accepts a positive count or "auto" (the default): adapt to
   the host — clamp to [Domain.recommended_domain_count ()] and take the
   sequential no-domain path when that is 1, so a 1-core host never pays
   domain spawn/GC overhead for zero parallelism. *)
let jobs_conv =
  let parse s =
    if String.lowercase_ascii s = "auto" then Ok None
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Some n)
      | Some _ | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid jobs %S: expected a positive integer or \"auto\"" s))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "auto"
    | Some n -> Format.pp_print_int ppf n
  in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(value & opt jobs_conv None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Fan the independent simulation cells across N domains.  \
                 $(docv) may be $(b,auto) (the default): use the host's \
                 recommended domain count, falling back to sequential \
                 dispatch — no domains at all — when that is 1.  Cells are \
                 deterministic and collected in order, so results are \
                 identical for any N; $(b,--jobs 1) also spawns no \
                 domains.")

(* Campaign telemetry (--artifact-dir / --replay).

   Every campaign subcommand can write a manifest + results artifact
   pair and re-run a previous campaign from its manifest.  The argv the
   manifest stores comes from [current_argv], not [Sys.argv]: a --replay
   invocation re-enters the CLI with the manifest's stored argv, and
   recording THAT vector (rather than the outer "tsp faults --replay
   ..." one) makes a replayed run's manifest byte-identical to the
   original's. *)

let current_argv = ref Sys.argv

(* Forward reference to the toplevel evaluator, filled in once
   [main_cmd] exists, so the --replay handler can re-enter the CLI. *)
let reeval : (string array -> int) ref =
  ref (fun _ -> invalid_arg "reeval used before main_cmd was defined")

let artifact_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "artifact-dir" ] ~docv:"DIR"
           ~doc:"Write this campaign's run manifest and results documents \
                 (JSON, schema tsp-manifest-v1 / tsp-results-v1) under \
                 $(docv).  Both files are pure functions of the campaign \
                 inputs: byte-identical across $(b,--jobs) values, \
                 repeated runs and replays.")

let replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-run the exact campaign recorded in manifest $(docv) \
                 (as written by $(b,--artifact-dir)); every campaign flag \
                 is taken from the manifest.  This invocation's \
                 $(b,--jobs) and $(b,--artifact-dir) still apply — they \
                 never change results.")

(* If --replay was given, re-enter the CLI with the manifest's stored
   argv plus this invocation's run-only flags, and exit with its
   status. *)
let handle_replay ~artifact_dir ~jobs replay =
  match replay with
  | None -> ()
  | Some file -> (
      match Obs.Artifact.replay_of_manifest file with
      | Error msg ->
          Fmt.epr "tsp: --replay %s@." msg;
          exit 2
      | Ok args ->
          let extra =
            (match artifact_dir with
            | Some d -> [ "--artifact-dir"; d ]
            | None -> [])
            @
            match jobs with
            | Some n -> [ "--jobs"; string_of_int n ]
            | None -> []
          in
          let argv = Array.of_list (("tsp" :: args) @ extra) in
          current_argv := argv;
          exit (!reeval argv))

let emit_artifacts artifact_dir ~subcommand ~config ~body =
  match artifact_dir with
  | None -> ()
  | Some dir ->
      let manifest =
        Obs.Artifact.manifest ~subcommand
          ~replay:(Obs.Artifact.replay_args !current_argv)
          ~config
      in
      let results = Obs.Artifact.results ~subcommand ~body in
      let mpath, rpath =
        Obs.Artifact.write ~dir ~subcommand ~manifest ~results
      in
      Fmt.pr "@.artifacts: %s %s@." mpath rpath

(* table1 *)

let table1_cmd =
  let run () iterations threads seed repeats breakdown jobs =
    let rows = Workload.Table1.run ~iterations ~threads ~seed ~repeats ?jobs () in
    Workload.Table1.render rows Format.std_formatter;
    if breakdown then
      List.iter
        (fun row -> Workload.Table1.render_breakdown row Format.std_formatter)
        rows
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:
         "Reproduce Table 1: throughput of the four map variants on both \
          platforms (experiments E1 and E2).")
    Term.(
      const run $ logs_term $ iterations_arg 4000 $ threads_arg $ seed_arg
      $ Arg.(value & opt int 1
             & info [ "repeats" ] ~docv:"R"
                 ~doc:"Rerun each cell with R distinct seeds; report mean \
                       and half-spread.")
      $ Arg.(value & flag
             & info [ "breakdown" ]
                 ~doc:"Also print the per-variant cycle decomposition.")
      $ jobs_arg)

(* faults *)

let fault_models_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Nvm.Fault_model.of_string_list s)
  in
  Arg.conv (parse, Fmt.(list ~sep:comma Nvm.Fault_model.pp))

let faults_cmd =
  let run () variant hardware failure platform runs iterations threads
      transfers wide journal fault_models exhaustive from_step window stride
      run_seed campaign_seed shrink smoke smoke_base jobs artifact_dir replay =
    let module FI = Workload.Fault_injector in
    handle_replay ~artifact_dir ~jobs replay;
    let smoke_base = smoke || smoke_base in
    let platform =
      (* The smoke workload's footprint fits the desktop cache entirely,
         which would make discard-class faults revert to a clean snapshot
         (nothing ever evicted).  A 32 KiB cache forces evictions, so
         crash images genuinely mix old and new lines. *)
      if smoke_base then { platform with Nvm.Config.cache_lines = 512 }
      else platform
    in
    let base = Workload.Runner.calibrated_config platform in
    let workload =
      if transfers then
        Workload.Runner.Transfers { accounts = 512; initial_balance = 1000 }
      else if wide > 1 then
        Workload.Runner.Wide { h_keys = 1024; value_words = wide }
      else if smoke_base then
        Workload.Runner.Counters { h_keys = 256; preload = true }
      else base.Workload.Runner.workload
    in
    let base =
      {
        base with
        Workload.Runner.variant;
        hardware;
        failure;
        iterations = (if smoke then 200 else iterations);
        threads = (if smoke then 4 else threads);
        workload;
        journal;
      }
    in
    let base =
      if smoke_base then
        { base with Workload.Runner.n_buckets = 512; log_mib = 1 }
      else base
    in
    let fault_models =
      if smoke && fault_models = [] then
        List.map Option.some Nvm.Fault_model.reference
      else List.map Option.some fault_models
    in
    let spec_with ?(base = base) exhaustive =
      {
        (FI.default_spec base) with
        FI.runs;
        campaign_seed;
        fault_models = (if fault_models = [] then [ None ] else fault_models);
        exhaustive;
        run_seed;
        shrink;
        repro_tag = (if smoke_base then "--smoke-base" else "");
      }
    in
    let summaries =
      if smoke then
        (* Two exhaustive windows per variant: a 2000-step sweep just
           after preload (recovery robustness while logs are short) and a
           dense window mid-workload, where the cache has evicted enough
           for discard semantics to actually bite.  Besides the requested
           variant, both commit-free newcomers face the same spectrum —
           their recovery paths (re-attachment, recoverable-CAS repair)
           must stay graceful under every adversarial model. *)
        let smoke_variants =
          variant
          :: List.filter
               (fun v -> v <> variant)
               [ Workload.Runner.Nvtraverse_map; Workload.Runner.Delayfree_map ]
        in
        List.concat_map
          (fun v ->
            let base = { base with Workload.Runner.variant = v } in
            (* The recoverable-CAS table is so much faster on this
               workload that it finishes near step 22k; aim its mid-run
               window where it still crashes. *)
            let mid_from =
              match v with
              | Workload.Runner.Delayfree_map -> 18_000
              | _ -> 40_000
            in
            [
              FI.run ?jobs
                (spec_with ~base
                   (Some { FI.from_step = 400; window = 2000; stride = 50 }));
              FI.run ?jobs
                (spec_with ~base
                   (Some { FI.from_step = mid_from; window = 400; stride = 40 }));
            ])
          smoke_variants
      else
        [
          FI.run ?jobs
            (spec_with
               (if exhaustive then Some { FI.from_step; window; stride }
                else None));
        ]
    in
    List.iter (fun s -> Fmt.pr "%a@." FI.pp_summary s) summaries;
    emit_artifacts artifact_dir ~subcommand:"faults"
      ~config:(fun j ->
        let module J = Obs.Json in
        J.key j "variant";
        J.str j (Workload.Machine.variant_to_cli_string variant);
        J.key j "hardware";
        J.str j hardware.Tsp_core.Hardware.name;
        J.key j "failure";
        J.str j (Tsp_core.Failure_class.to_string failure);
        J.key j "platform";
        J.str j platform.Nvm.Config.name;
        J.key j "runs";
        J.int j runs;
        J.key j "iterations";
        J.int j base.Workload.Runner.iterations;
        J.key j "threads";
        J.int j base.Workload.Runner.threads;
        J.key j "campaign_seed";
        J.int j campaign_seed;
        J.key j "shrink";
        J.bool j shrink;
        J.key j "smoke";
        J.bool j smoke;
        J.key j "smoke_base";
        J.bool j smoke_base;
        J.key j "campaigns";
        J.int j (List.length summaries))
      ~body:(fun j ->
        Obs.Json.key j "campaigns";
        Obs.Json.arr_open j;
        List.iter (fun s -> FI.to_json j s) summaries;
        Obs.Json.arr_close j);
    let unexpected =
      List.fold_left (fun a s -> a + s.FI.unexpected_violations) 0 summaries
    in
    let violations = List.fold_left (fun a s -> a + s.FI.violations) 0 summaries in
    if unexpected > 0 then begin
      Fmt.pr
        "@.FAIL: %d unexpected violation(s) — a fault model's promise was \
         broken.  Reproducers are printed above.@."
        unexpected;
      exit 1
    end
    else if violations > 0 then begin
      Fmt.pr
        "@.NOTE: the violations above are expected — they demonstrate a \
         failure class the chosen configuration does not tolerate.@.";
      if not smoke then exit 1
    end
  in
  let variant =
    Arg.(value
         & opt variant_conv (Workload.Runner.Mutex_map Atlas.Mode.Log_only)
         & info [ "variant" ] ~docv:"VARIANT"
             ~doc:
               "Map variant: no-log, log-only, log-flush, non-blocking, \
                nvtraverse, delay-free, btree, btree-no-log or btree-flush.")
  in
  let hardware =
    Arg.(value
         & opt hardware_conv Tsp_core.Hardware.nvram_machine
         & info [ "hardware" ] ~docv:"HW" ~doc:"Hardware platform model.")
  in
  let failure =
    Arg.(value
         & opt failure_conv Tsp_core.Failure_class.Process_crash
         & info [ "failure" ] ~docv:"F"
             ~doc:"Injected failure class: process-crash, kernel-panic or \
                   power-outage.")
  in
  let runs =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of injected crashes.")
  in
  let transfers =
    Arg.(value & flag
         & info [ "transfers" ]
             ~doc:"Use the bank-transfer workload (multi-store critical \
                   sections) instead of the Section 5.1 counters.")
  in
  let wide =
    Arg.(value & opt int 1
         & info [ "wide" ] ~docv:"W"
             ~doc:"Use the wide-value workload with W-word values (the \
                   multi-word tearing experiment E13).")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"Record store history and run the recovery-observer \
                   prefix check on every crash.")
  in
  let platform =
    Arg.(value & opt platform_conv Nvm.Config.desktop
         & info [ "platform" ] ~docv:"P" ~doc:"desktop or server.")
  in
  let fault_models =
    Arg.(value & opt fault_models_conv []
         & info [ "fault-model" ] ~docv:"FM"
             ~doc:
               "Comma-separated crash fault models to campaign under: \
                full-rescue, full-discard, partial-rescue[:JOULES], \
                torn[:PROB], bit-rot[:FLIPS], or 'all' for the reference \
                spectrum.  Default: the binary TSP-verdict behaviour (E3).")
  in
  let exhaustive =
    Arg.(value & flag
         & info [ "exhaustive" ]
             ~doc:"Enumerate every crash step in [--from, --from + --window) \
                   at --stride instead of sampling; uses one pinned seed \
                   (--run-seed), so coverage of the window is complete and \
                   RNG-free.")
  in
  let from_step =
    Arg.(value & opt int 500
         & info [ "from" ] ~docv:"STEP"
             ~doc:"Exhaustive mode: first crash step enumerated.")
  in
  let window =
    Arg.(value & opt int 2000
         & info [ "window" ] ~docv:"W"
             ~doc:"Exhaustive mode: number of steps covered.")
  in
  let stride =
    Arg.(value & opt int 1
         & info [ "stride" ] ~docv:"S"
             ~doc:"Exhaustive mode: enumerate every S-th step.")
  in
  let run_seed =
    Arg.(value & opt (some int) None
         & info [ "run-seed" ] ~docv:"SEED"
             ~doc:"Exhaustive mode: the pinned per-run seed (default: the \
                   campaign seed).")
  in
  let campaign_seed =
    Arg.(value & opt int 99
         & info [ "campaign-seed" ] ~docv:"SEED"
             ~doc:"Seed of the campaign RNG that draws sampled crash points.")
  in
  let shrink =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:"On violation, shrink crash step, iteration count and \
                   fault-model intensity to a minimal reproducer.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Bounded CI preset: two exhaustive campaign windows (a \
                   2000-step sweep after preload and a dense mid-workload \
                   window) across the whole reference fault-model spectrum \
                   on a reduced workload.  Exits non-zero only on \
                   unexpected violations.")
  in
  let smoke_base =
    Arg.(value & flag
         & info [ "smoke-base" ]
             ~doc:"Use the smoke campaign's reduced workload shape (256 \
                   counter keys, 512 buckets, 1 MiB log region) without the \
                   rest of the --smoke preset; smoke reproducers carry this \
                   flag so they replay bit-exactly.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection campaign (experiment E3; with --hardware \
          conventional-server --failure power-outage --variant log-only it \
          becomes the E9 negative control; with --fault-model/--exhaustive \
          the adversarial crash-fidelity campaign E16).")
    Term.(const run $ logs_term $ variant $ hardware $ failure $ platform
          $ runs $ iterations_arg 800 $ threads_arg $ transfers $ wide
          $ journal $ fault_models $ exhaustive $ from_step $ window $ stride
          $ run_seed $ campaign_seed $ shrink $ smoke $ smoke_base $ jobs_arg
          $ artifact_dir_arg $ replay_arg)

(* check *)

let check_cmd =
  let run () variant platform threads iterations from_step window stride
      mutant seed smoke jobs populate recovery_mode artifact_dir replay =
    let module CC = Workload.Check_campaign in
    handle_replay ~artifact_dir ~jobs replay;
    let platform =
      (* Same rationale as the faults smoke preset: a small cache forces
         evictions, so the crash image genuinely mixes old and new
         lines instead of replaying a clean snapshot. *)
      if smoke then { platform with Nvm.Config.cache_lines = 512 }
      else platform
    in
    let base = Workload.Runner.calibrated_config platform in
    let base =
      {
        base with
        Workload.Runner.variant;
        threads = (if smoke then 4 else threads);
        iterations = (if smoke then 200 else iterations);
        seed;
        workload = Workload.Runner.Counters { h_keys = 256; preload = true };
        n_buckets = 512;
        log_mib = 1;
        populate_objects = populate;
        recovery_mode;
      }
    in
    let mutate, mutate_label =
      match mutant with
      | None -> (None, "")
      | Some every ->
          ( Some (CC.non_durable ~seed ~every),
            Printf.sprintf "non-durable, drops ~1/%d writes" every )
    in
    let spec_with base from_step window stride =
      { (CC.default_spec base) with CC.from_step; window; stride; mutate;
        mutate_label }
    in
    let specs =
      if smoke then
        (* Both structures the checker must clear, each over an early
           window (short histories, mostly pending ops) and a dense
           mid-workload window (long histories, evicted cache lines). *)
        List.concat_map
          (fun variant ->
            let base = { base with Workload.Runner.variant } in
            (* The recoverable-CAS table finishes near step 22k on this
               workload; its mid window must sit before that to crash. *)
            let mid_from =
              match variant with
              | Workload.Runner.Delayfree_map -> 18_000
              | _ -> 40_000
            in
            [
              spec_with base 400 1200 100;
              spec_with base mid_from 400 100;
            ])
          [
            Workload.Runner.Nonblocking_map;
            Workload.Runner.Mutex_map Atlas.Mode.Log_only;
            Workload.Runner.Nvtraverse_map;
            Workload.Runner.Delayfree_map;
          ]
      else [ spec_with base from_step window stride ]
    in
    let summaries = List.map (fun s -> CC.run ?jobs s) specs in
    List.iter (fun s -> Fmt.pr "%a@." CC.pp_summary s) summaries;
    emit_artifacts artifact_dir ~subcommand:"check"
      ~config:(fun j ->
        let module J = Obs.Json in
        J.key j "variant";
        J.str j (Workload.Machine.variant_to_cli_string variant);
        J.key j "platform";
        J.str j platform.Nvm.Config.name;
        J.key j "threads";
        J.int j base.Workload.Runner.threads;
        J.key j "iterations";
        J.int j base.Workload.Runner.iterations;
        J.key j "seed";
        J.int j seed;
        J.key j "mutant";
        (match mutant with Some n -> J.int j n | None -> J.null j);
        J.key j "populate";
        J.int j populate;
        J.key j "recovery_mode";
        J.str j (Workload.Machine.recovery_mode_to_string recovery_mode);
        J.key j "smoke";
        J.bool j smoke;
        J.key j "campaigns";
        J.int j (List.length specs))
      ~body:(fun j ->
        Obs.Json.key j "campaigns";
        Obs.Json.arr_open j;
        List.iter (fun s -> CC.to_json j s) summaries;
        Obs.Json.arr_close j);
    let flagged = List.fold_left (fun a s -> a + s.CC.flagged) 0 summaries in
    match mutant with
    | None ->
        if flagged > 0 then begin
          Fmt.pr
            "@.FAIL: %d crash point(s) whose recovered state no \
             linearization of the recorded history explains.@."
            flagged;
          exit 1
        end
        else Fmt.pr "@.Clean: every recovered state is durably linearizable.@."
    | Some _ ->
        if flagged = 0 then begin
          Fmt.pr
            "@.FAIL: the planted non-durable mutant went undetected on \
             every enumerated crash point.@.";
          exit 1
        end
        else
          Fmt.pr "@.Mutant caught: flagged on %d crash point(s).@." flagged
  in
  let variant =
    Arg.(value
         & opt variant_conv Workload.Runner.Nonblocking_map
         & info [ "variant" ] ~docv:"VARIANT"
             ~doc:"Map variant to check (see $(b,run) for the list).")
  in
  let platform =
    Arg.(value & opt platform_conv Nvm.Config.desktop
         & info [ "platform" ] ~docv:"P" ~doc:"desktop or server.")
  in
  let from_step =
    Arg.(value & opt int 500
         & info [ "from" ] ~docv:"STEP"
             ~doc:"First crash step enumerated.")
  in
  let window =
    Arg.(value & opt int 2000
         & info [ "window" ] ~docv:"W"
             ~doc:"Number of steps covered; with --stride this is the \
                   exhaustive crash-point enumeration of the faults CLI.")
  in
  let stride =
    Arg.(value & opt int 100
         & info [ "stride" ] ~docv:"S"
             ~doc:"Enumerate every S-th step of the window.")
  in
  let mutant =
    Arg.(value & opt (some int) None
         & info [ "mutant" ] ~docv:"N"
             ~doc:"Plant the seeded non-durable mutant (roughly one in N \
                   writes acknowledged but never issued) and demand the \
                   checker catches it: exits non-zero if NO crash point is \
                   flagged.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Bounded CI preset: small cache and workload, early and \
                   mid-workload exhaustive windows over both the lock-free \
                   skip list and the log-only hash map.  Exits non-zero on \
                   any flagged point.")
  in
  let populate =
    Arg.(value & opt int 0
         & info [ "populate" ] ~docv:"N"
             ~doc:"Pre-load N extra map entries before the workload — the \
                   checker then exercises recovery over a populated heap.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Durable-linearizability checking campaign (experiment E18): \
          record every map operation's invocation/response interval, crash \
          at each enumerated step, recover, and verify the recovered state \
          is explained by a linearization of a prefix-closed subset of the \
          history.  Byte-identical output for any --jobs value.")
    Term.(const run $ logs_term $ variant $ platform $ threads_arg
          $ iterations_arg 800 $ from_step $ window $ stride $ mutant
          $ seed_arg $ smoke $ jobs_arg $ populate $ recovery_mode_arg
          $ artifact_dir_arg $ replay_arg)

(* sweeps *)

let sweeps_cmd =
  let run () which iterations jobs =
    let t =
      match which with
      | "flush-latency" -> Workload.Sweeps.flush_latency ~iterations ?jobs ()
      | "threads" -> Workload.Sweeps.thread_scaling ~iterations ?jobs ()
      | "log-cost" -> Workload.Sweeps.log_cost_ablation ~iterations ?jobs ()
      | "cache" -> Workload.Sweeps.cache_ablation ~iterations ?jobs ()
      | "read-ratio" -> Workload.Sweeps.read_ratio ~iterations ?jobs ()
      | "ledger" ->
          let l = Workload.Sweeps.procrastination_ledger ~iterations ?jobs () in
          Fmt.pr "%a@." Workload.Sweeps.pp_ledger l;
          exit 0
      | s -> Fmt.failwith "unknown sweep %S" s
    in
    Workload.Sweeps.render t Format.std_formatter
  in
  let which =
    Arg.(required
         & pos 0 (some string) None
         & info [] ~docv:"SWEEP"
             ~doc:"One of: flush-latency (E7), threads (E8), log-cost (E4), \
                   cache, read-ratio (E12), ledger (E11).")
  in
  Cmd.v
    (Cmd.info "sweeps" ~doc:"Parameter sweeps and ablations (E4, E7, E8).")
    Term.(const run $ logs_term $ which $ iterations_arg 1500 $ jobs_arg)

(* policy *)

let policy_cmd =
  let run () =
    Fmt.pr
      "TSP decision matrix (Section 3): per platform and tolerated failure \
       class,@ whether a crash-time rescue replaces failure-free flushing.@.@.";
    List.iter
      (fun (name, verdicts) ->
        Fmt.pr "@[<v2>%s:@ %a@]@.@." name
          Fmt.(
            list ~sep:cut (fun ppf (fc, v) ->
                pf ppf "%-14s %a" (Tsp_core.Failure_class.to_string fc)
                  Tsp_core.Policy.pp_verdict v))
          verdicts)
      (Tsp_core.Policy.decision_matrix ())
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:"Print the platform x failure-class TSP decision matrix (E5).")
    Term.(const run $ logs_term)

(* wsp *)

let wsp_cmd =
  let run () hardware =
    Fmt.pr "Whole-System Persistence rescue plan for %a:@.@.%a@."
      Tsp_core.Hardware.pp hardware Tsp_core.Wsp.pp_outcome
      (Tsp_core.Wsp.of_hardware hardware);
    let o = Tsp_core.Wsp.of_hardware hardware in
    Fmt.pr "@.headroom (budget/need, worst stage): %.2f@."
      (Tsp_core.Wsp.headroom o)
  in
  let hardware =
    Arg.(value
         & opt hardware_conv Tsp_core.Hardware.wsp_machine
         & info [ "hardware" ] ~docv:"HW" ~doc:"Platform to plan for.")
  in
  Cmd.v
    (Cmd.info "wsp"
       ~doc:"Simulate the two-stage Whole-System Persistence rescue (E6).")
    Term.(const run $ logs_term $ hardware)

(* run *)

let run_cmd =
  let run () platform variant iterations threads seed crash_at hardware
      failure transfers journal resume breakdown populate recovery_mode =
    let base = Workload.Runner.calibrated_config platform in
    let workload =
      if transfers then
        Workload.Runner.Transfers { accounts = 512; initial_balance = 1000 }
      else base.Workload.Runner.workload
    in
    let config =
      {
        base with
        Workload.Runner.variant;
        iterations;
        threads;
        seed;
        crash_at_step = crash_at;
        populate_objects = populate;
        recovery_mode;
        hardware;
        failure;
        workload;
        journal;
      }
    in
    if resume then begin
      let r = Workload.Runner.run_with_resume config in
      Fmt.pr "%a@." Workload.Runner.pp_resume_report r;
      if breakdown then
        Fmt.pr "@.device cycle breakdown:@.%a@." Nvm.Stats.pp_breakdown
          r.Workload.Runner.first.Workload.Runner.device_stats;
      if not r.Workload.Runner.completion_ok then exit 1
    end
    else begin
      let r = Workload.Runner.run config in
      Fmt.pr "%a@." Workload.Runner.pp_result r;
      if breakdown then
        Fmt.pr "@.device cycle breakdown:@.%a@." Nvm.Stats.pp_breakdown
          r.Workload.Runner.device_stats;
      if not (Workload.Runner.consistent r) then exit 1
    end
  in
  let platform =
    Arg.(value & opt platform_conv Nvm.Config.desktop
         & info [ "platform" ] ~docv:"P" ~doc:"desktop or server.")
  in
  let variant =
    let doc =
      "Map variant: "
      ^ String.concat ", "
          (List.map Workload.Machine.variant_to_cli_string
             Workload.Machine.all_variants)
      ^ "."
    in
    Arg.(value
         & opt variant_conv (Workload.Runner.Mutex_map Atlas.Mode.Log_only)
         & info [ "variant" ] ~docv:"VARIANT" ~doc)
  in
  let crash_at =
    Arg.(value & opt (some int) None
         & info [ "crash-at" ] ~docv:"STEP"
             ~doc:"Inject a crash after STEP simulated memory operations.")
  in
  let hardware =
    Arg.(value
         & opt hardware_conv Tsp_core.Hardware.nvram_machine
         & info [ "hardware" ] ~docv:"HW" ~doc:"Hardware platform model.")
  in
  let failure =
    Arg.(value
         & opt failure_conv Tsp_core.Failure_class.Process_crash
         & info [ "failure" ] ~docv:"F" ~doc:"Failure class for --crash-at.")
  in
  let transfers =
    Arg.(value & flag
         & info [ "transfers" ] ~doc:"Run the bank-transfer workload.")
  in
  let journal =
    Arg.(value & flag
         & info [ "journal" ] ~doc:"Enable the recovery-observer journal.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"After crash recovery, restart workers from the recovered \
                   persistent state and run the workload to completion \
                   (counters only).")
  in
  let breakdown =
    Arg.(value & flag
         & info [ "breakdown" ]
             ~doc:"Also print the per-category device cycle decomposition \
                   (where the simulated time went).")
  in
  let populate =
    Arg.(value & opt int 0
         & info [ "populate" ] ~docv:"N"
             ~doc:"Pre-load N extra map entries (deterministic, seeded) \
                   before the workload runs — heap ballast the recovery \
                   pipeline must scan.  The region is grown to fit.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one configuration and print the full report.")
    Term.(const run $ logs_term $ platform $ variant $ iterations_arg 2000
          $ threads_arg $ seed_arg $ crash_at $ hardware $ failure
          $ transfers $ journal $ resume $ breakdown $ populate
          $ recovery_mode_arg)

(* ycsb *)

let ycsb_cmd =
  let run () preset iterations records jobs =
    match Workload.Ycsb.preset_of_string preset with
    | Error e -> Fmt.failwith "%s" e
    | Ok p ->
        Workload.Sweeps.render_ycsb
          (Workload.Sweeps.ycsb_table ~iterations ~records ?jobs p)
          Format.std_formatter
  in
  let preset =
    Arg.(value & pos 0 string "A"
         & info [] ~docv:"PRESET" ~doc:"YCSB core workload: A, B, C or F.")
  in
  let records =
    Arg.(value & opt int 16384
         & info [ "records" ] ~docv:"N" ~doc:"Pre-loaded record count.")
  in
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "YCSB-style workload mixes (Zipfian requests) across all map \
          variants, with latency percentiles.")
    Term.(const run $ logs_term $ preset $ iterations_arg 1500 $ records
          $ jobs_arg)

(* trace *)

let trace_cmd =
  let run () platform variant iterations threads seed crash_at hardware
      failure fault_model out exposure ring_cap budget_lines smoke frontier
      jobs artifact_dir replay =
    handle_replay ~artifact_dir ~jobs replay;
    if frontier then begin
      (* The fence-complexity frontier (EXPERIMENTS E23): every design on
         one identical counter workload, psync-per-op vs throughput vs
         recovery verdict.  Fails loudly if the tentpole ordering —
         NVTraverse strictly under log-flush on flushes/op at equal or
         better throughput — does not hold. *)
      let rows =
        Workload.Frontier.run ?jobs ~threads:4 ~seed ~platform ()
      in
      Fmt.pr "%a@." Workload.Frontier.pp rows;
      emit_artifacts artifact_dir ~subcommand:"trace"
        ~config:(fun j ->
          let module J = Obs.Json in
          J.key j "frontier";
          J.bool j true;
          J.key j "platform";
          J.str j platform.Nvm.Config.name;
          J.key j "threads";
          J.int j 4;
          J.key j "seed";
          J.int j seed)
        ~body:(fun j ->
          Obs.Json.key j "frontier";
          Workload.Frontier.to_json j rows);
      if not (Workload.Frontier.nvtraverse_beats_logflush rows) then exit 1
    end
    else
    (* The smoke preset mirrors the faults smoke base (32 KiB cache,
       small counter workload) with a mid-run crash, so one bounded run
       exercises the whole pipeline: workload, crash, rescue, recovery
       phases. *)
    let platform =
      if smoke then { platform with Nvm.Config.cache_lines = 512 }
      else platform
    in
    let base = Workload.Runner.calibrated_config platform in
    let config =
      {
        base with
        Workload.Runner.variant;
        iterations = (if smoke then 200 else iterations);
        threads = (if smoke then 4 else threads);
        seed;
        crash_at_step = (if smoke then Some 40_000 else crash_at);
        hardware;
        failure;
        fault_model;
      }
    in
    let config =
      if smoke then
        {
          config with
          Workload.Runner.workload =
            Workload.Runner.Counters { h_keys = 256; preload = true };
          n_buckets = 512;
          log_mib = 1;
        }
      else config
    in
    (* The exposure budget defaults to the hardware's residual-energy
       stage-1 rescue capacity: how many dirty lines the platform could
       actually evacuate if it died right now. *)
    let budget =
      match budget_lines with
      | Some n -> n
      | None ->
          Tsp_core.Wsp.line_rescue_budget hardware
            ~budget_j:hardware.Tsp_core.Hardware.residual_energy_j
            ~line_size:platform.Nvm.Config.line_size
    in
    let tracer = Obs.Tracer.create ~ring_cap ~budget_lines:budget () in
    let config = { config with Workload.Runner.tracer = Some tracer } in
    let r = Workload.Runner.run config in
    Fmt.pr "%a@." Workload.Runner.pp_result r;
    Obs.Chrome.write_file
      ~thread_name:(fun tid ->
        if tid < 0 then "device" else Printf.sprintf "worker-%d" tid)
      out tracer;
    Fmt.pr "@.trace: %d events emitted (%d in ring, %d overwritten) -> %s@."
      (Obs.Tracer.emitted tracer)
      (Obs.Tracer.length tracer)
      (Obs.Tracer.dropped tracer)
      out;
    Fmt.pr "@.%a@." Obs.Tracer.pp_exposure (Obs.Tracer.exposure tracer);
    Fmt.pr "@.%a@." Obs.Metrics.pp
      (Obs.Metrics.of_tracer
         ~completed_ops:(Workload.Runner.completed_ops r)
         tracer);
    if exposure then begin
      (* Coarse dirty-lines timeline over the surviving ring: max dirty
         per bucket of the trace's clock envelope, as plot-ready rows. *)
      let e = Obs.Tracer.exposure tracer in
      let lo = ref max_int and hi = ref min_int in
      Obs.Tracer.iter tracer (fun ev ->
          if ev.Obs.Tracer.ts < !lo then lo := ev.Obs.Tracer.ts;
          if ev.Obs.Tracer.ts > !hi then hi := ev.Obs.Tracer.ts);
      if !hi > !lo then begin
        let buckets = 24 in
        let peak = Array.make buckets 0 in
        let span = !hi - !lo in
        Obs.Tracer.iter tracer (fun ev ->
            let b =
              min (buckets - 1) ((ev.Obs.Tracer.ts - !lo) * buckets / span)
            in
            if ev.Obs.Tracer.dirty > peak.(b) then
              peak.(b) <- ev.Obs.Tracer.dirty);
        Fmt.pr "@.exposure timeline (peak dirty lines per bucket, ring \
                window only):@.";
        Array.iteri
          (fun i p ->
            Fmt.pr "  t=%-10d %6d%s@." (!lo + (i * span / buckets)) p
              (if e.Obs.Tracer.budget_lines >= 0
                  && p > e.Obs.Tracer.budget_lines
               then "  OVER BUDGET"
               else ""))
          peak
      end
    end;
    emit_artifacts artifact_dir ~subcommand:"trace"
      ~config:(fun j ->
        let module J = Obs.Json in
        J.key j "frontier";
        J.bool j false;
        J.key j "platform";
        J.str j platform.Nvm.Config.name;
        J.key j "variant";
        J.str j (Workload.Machine.variant_to_cli_string variant);
        J.key j "iterations";
        J.int j config.Workload.Runner.iterations;
        J.key j "threads";
        J.int j config.Workload.Runner.threads;
        J.key j "seed";
        J.int j seed;
        J.key j "crash_at";
        (match config.Workload.Runner.crash_at_step with
        | Some s -> J.int j s
        | None -> J.null j);
        J.key j "hardware";
        J.str j hardware.Tsp_core.Hardware.name;
        J.key j "failure";
        J.str j (Tsp_core.Failure_class.to_string failure);
        J.key j "fault_model";
        (match fault_model with
        | Some fm -> J.str j (Nvm.Fault_model.to_string fm)
        | None -> J.null j);
        J.key j "ring_cap";
        J.int j ring_cap;
        J.key j "budget_lines";
        J.int j budget;
        J.key j "smoke";
        J.bool j smoke)
      ~body:(fun j ->
        let module J = Obs.Json in
        J.key j "consistent";
        J.bool j (Workload.Runner.consistent r);
        let e = Obs.Tracer.exposure tracer in
        J.key j "exposure";
        J.obj_open j;
        J.key j "samples";
        J.int j e.Obs.Tracer.samples;
        J.key j "peak_dirty";
        J.int j e.Obs.Tracer.peak_dirty;
        J.key j "last_dirty";
        J.int j e.Obs.Tracer.last_dirty;
        J.key j "budget_lines";
        J.int j e.Obs.Tracer.budget_lines;
        J.key j "duration";
        J.int j e.Obs.Tracer.duration;
        J.key j "time_above_budget";
        J.int j e.Obs.Tracer.time_above_budget;
        J.key j "dirty_hist";
        Obs.Hist.to_json j e.Obs.Tracer.dirty_hist;
        J.obj_close j;
        J.key j "metrics";
        Obs.Metrics.to_json j
          (Obs.Metrics.of_tracer
             ~completed_ops:(Workload.Runner.completed_ops r)
             tracer));
    if not (Workload.Runner.consistent r) then exit 1
  in
  let fault_model_conv =
    let parse s =
      Result.map_error (fun m -> `Msg m) (Nvm.Fault_model.of_string s)
    in
    Arg.conv (parse, Nvm.Fault_model.pp)
  in
  let platform =
    Arg.(value & opt platform_conv Nvm.Config.desktop
         & info [ "platform" ] ~docv:"P" ~doc:"desktop or server.")
  in
  let variant =
    let doc =
      "Map variant: "
      ^ String.concat ", "
          (List.map Workload.Machine.variant_to_cli_string
             Workload.Machine.all_variants)
      ^ "."
    in
    Arg.(value
         & opt variant_conv (Workload.Runner.Mutex_map Atlas.Mode.Log_only)
         & info [ "variant" ] ~docv:"VARIANT" ~doc)
  in
  let crash_at =
    Arg.(value & opt (some int) None
         & info [ "crash-at" ] ~docv:"STEP"
             ~doc:"Inject a crash after STEP simulated memory operations \
                   and trace through rescue and recovery.")
  in
  let hardware =
    Arg.(value
         & opt hardware_conv Tsp_core.Hardware.nvram_machine
         & info [ "hardware" ] ~docv:"HW" ~doc:"Hardware platform model.")
  in
  let failure =
    Arg.(value
         & opt failure_conv Tsp_core.Failure_class.Process_crash
         & info [ "failure" ] ~docv:"F" ~doc:"Failure class for --crash-at.")
  in
  let fault_model =
    Arg.(value & opt (some fault_model_conv) None
         & info [ "fault-model" ] ~docv:"MODEL"
             ~doc:"Crash fault model for --crash-at (full-rescue, \
                   full-discard, partial-rescue:J, torn:P, bit-rot:N).")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Chrome trace-event JSON output path (load in Perfetto \
                   or chrome://tracing).")
  in
  let exposure =
    Arg.(value & flag
         & info [ "exposure" ]
             ~doc:"Also print a bucketed dirty-lines-vs-budget timeline \
                   over the trace window.")
  in
  let ring_cap =
    Arg.(value & opt int 65536
         & info [ "ring-cap" ] ~docv:"N"
             ~doc:"Event ring capacity; older events are overwritten once \
                   exceeded (summary statistics stay exact).")
  in
  let budget_lines =
    Arg.(value & opt (some int) None
         & info [ "budget-lines" ] ~docv:"N"
             ~doc:"Override the WSP rescue budget (in cache lines) used by \
                   the exposure accounting; default is derived from the \
                   hardware's residual energy.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Bounded preset on a 32 KiB cache with a mid-run crash; \
                   used by dune runtest to validate the trace pipeline.")
  in
  let frontier =
    Arg.(value & flag
         & info [ "frontier" ]
             ~doc:"Instead of tracing one run, chart the fence-complexity \
                   frontier: every map design on one identical counter \
                   workload — psync complexity per completed operation vs \
                   throughput vs durable-linearizability and recovery \
                   verdicts.  Exits 1 unless NVTraverse strictly beats \
                   log-flush on flushes/op at equal or better throughput.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one configuration with the deterministic event tracer \
          attached: write a Perfetto-loadable trace and print the \
          persistence-exposure and psync-complexity summaries.  With \
          $(b,--frontier), chart every design's psync-per-op cost against \
          throughput and recovery instead.")
    Term.(const run $ logs_term $ platform $ variant $ iterations_arg 2000
          $ threads_arg $ seed_arg $ crash_at $ hardware $ failure
          $ fault_model $ out $ exposure $ ring_cap $ budget_lines $ smoke
          $ frontier $ jobs_arg $ artifact_dir_arg $ replay_arg)

(* serve *)

let serve_cmd =
  let degraded_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Service.Degraded.of_string s) in
    Arg.conv (parse, Service.Degraded.pp)
  in
  let preset_conv =
    let parse s =
      Result.map_error (fun m -> `Msg m) (Workload.Ycsb.preset_of_string s)
    in
    Arg.conv (parse, fun ppf p -> Fmt.string ppf (Workload.Ycsb.preset_to_string p))
  in
  let fault_model_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Nvm.Fault_model.of_string s) in
    Arg.conv (parse, Nvm.Fault_model.pp)
  in
  let run () smoke platform variant shards seed keys requests rate theta preset
      crash_shard crash_at fault_model recovery_mode degraded trace_out jobs
      windows artifact_dir replay =
    handle_replay ~artifact_dir ~jobs replay;
    let base =
      if smoke then Service.Serve.smoke_config else Service.Serve.default_config
    in
    let override v f = Option.fold ~none:v ~some:f in
    let cfg =
      {
        base with
        Service.Serve.platform;
        variant;
        shards = override base.Service.Serve.shards Fun.id shards;
        seed = override base.Service.Serve.seed Fun.id seed;
        keys = override base.Service.Serve.keys Fun.id keys;
        requests = override base.Service.Serve.requests Fun.id requests;
        rate_per_mcycle = override base.Service.Serve.rate_per_mcycle Fun.id rate;
        theta = override base.Service.Serve.theta Fun.id theta;
        preset = override base.Service.Serve.preset Fun.id preset;
        crash_shard =
          override base.Service.Serve.crash_shard Option.some crash_shard;
        crash_at_step = crash_at;
        fault_model;
        recovery = recovery_mode;
        degraded = override base.Service.Serve.degraded Fun.id degraded;
        trace = trace_out <> None;
        windows = override base.Service.Serve.windows Fun.id windows;
      }
    in
    let r = Service.Serve.run ?jobs cfg in
    print_string (Service.Serve.render r);
    (match trace_out with
    | None -> ()
    | Some path ->
        if Service.Serve.write_trace r ~path then
          Fmt.pr "@.trace written to %s@." path);
    emit_artifacts artifact_dir ~subcommand:"serve"
      ~config:(fun j ->
        let module J = Obs.Json in
        let module S = Service.Serve in
        J.key j "platform";
        J.str j cfg.S.platform.Nvm.Config.name;
        J.key j "variant";
        J.str j (Workload.Machine.variant_to_cli_string cfg.S.variant);
        J.key j "shards";
        J.int j cfg.S.shards;
        J.key j "seed";
        J.int j cfg.S.seed;
        J.key j "keys";
        J.int j cfg.S.keys;
        J.key j "requests";
        J.int j cfg.S.requests;
        J.key j "rate_per_mcycle";
        J.float j cfg.S.rate_per_mcycle;
        J.key j "theta";
        J.float j cfg.S.theta;
        J.key j "preset";
        J.str j (Workload.Ycsb.preset_to_string cfg.S.preset);
        J.key j "req_cycles";
        J.int j cfg.S.req_cycles;
        J.key j "crash_shard";
        (match cfg.S.crash_shard with Some s -> J.int j s | None -> J.null j);
        J.key j "crash_at_step";
        (match cfg.S.crash_at_step with Some s -> J.int j s | None -> J.null j);
        J.key j "fault_model";
        (match cfg.S.fault_model with
        | Some fm -> J.str j (Nvm.Fault_model.to_string fm)
        | None -> J.null j);
        J.key j "recovery_mode";
        J.str j (Workload.Machine.recovery_mode_to_string cfg.S.recovery);
        J.key j "degraded";
        J.str j (Fmt.str "%a" Service.Degraded.pp cfg.S.degraded);
        J.key j "log_mib";
        J.int j cfg.S.log_mib;
        J.key j "windows";
        J.int j cfg.S.windows;
        J.key j "smoke";
        J.bool j smoke)
      ~body:(fun j ->
        Obs.Json.key j "report";
        Service.Serve.to_json j r);
    (* Under rescue-class crash semantics the service must come back
       consistent; a lost shard or a DL violation is a real failure.
       Adversarial fault models are allowed to lose the shard. *)
    let adversarial =
      match cfg.Service.Serve.fault_model with
      | Some fm -> Nvm.Fault_model.expects_loss fm
      | None -> false
    in
    let bad (s : Service.Serve.shard_report) =
      s.Service.Serve.outcome = "deadlocked"
      || ((not adversarial) && s.Service.Serve.outcome = "crashed+lost")
      || (match s.Service.Serve.recovery with
         | Some { Service.Serve.dl = Some v; _ } ->
             not (Check.Dl.is_explained v)
         | _ -> false)
    in
    if Array.exists bad r.Service.Serve.shards then exit 1
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Seconds-scale CI preset: 4 shards, 16 Ki keys, 6000 \
                   requests, a crash on shard 1.  Explicit options still \
                   override it.")
  in
  let platform =
    Arg.(value & opt platform_conv Nvm.Config.desktop
         & info [ "platform" ] ~docv:"P" ~doc:"desktop or server.")
  in
  let variant =
    Arg.(value
         & opt variant_conv (Workload.Runner.Mutex_map Atlas.Mode.Log_only)
         & info [ "variant" ] ~docv:"VARIANT" ~doc:"Per-shard map variant.")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N" ~doc:"Number of independent shards.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"SEED" ~env:seed_env
             ~doc:"Deterministic seed; the whole report is a pure function \
                   of it.")
  in
  let keys =
    Arg.(value & opt (some int) None
         & info [ "keys" ] ~docv:"K"
             ~doc:"Global keyspace size (keys are hashed onto shards).")
  in
  let requests =
    Arg.(value & opt (some int) None
         & info [ "requests" ] ~docv:"N" ~doc:"Open-loop requests to issue.")
  in
  let rate =
    Arg.(value & opt (some float) None
         & info [ "arrival-rate" ] ~docv:"R"
             ~doc:"Aggregate Poisson arrival rate, requests per simulated \
                   Mcycle.")
  in
  let theta =
    Arg.(value & opt (some float) None
         & info [ "theta" ] ~docv:"T"
             ~doc:"Zipfian skew in [0, 1); 0 is the uniform degenerate case.")
  in
  let preset =
    Arg.(value & opt (some preset_conv) None
         & info [ "preset" ] ~docv:"PRESET"
             ~doc:"YCSB operation mix: A, B, C or F.")
  in
  let crash_shard =
    Arg.(value & opt (some int) None
         & info [ "crash-shard" ] ~docv:"S"
             ~doc:"Crash shard S mid-traffic and recover it online while the \
                   others keep serving.")
  in
  let crash_at =
    Arg.(value & opt (some int) None
         & info [ "crash-at" ] ~docv:"STEP"
             ~doc:"Crash after STEP simulated memory operations on the \
                   victim shard (default: half its crash-free step count).")
  in
  let fault_model =
    Arg.(value & opt (some fault_model_conv) None
         & info [ "fault-model" ] ~docv:"FM"
             ~doc:"Adversarial crash semantics for the victim shard.")
  in
  let degraded =
    Arg.(value & opt (some degraded_conv) None
         & info [ "degraded-mode" ] ~docv:"MODE"
             ~doc:"What the router does with requests for a down shard: \
                   $(b,shed), $(b,queue[:deadline]) or \
                   $(b,retry[:backoff[:max]]).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Perfetto trace with one process group per shard.")
  in
  let windows =
    Arg.(value & opt (some int) None
         & info [ "windows" ] ~docv:"W"
             ~doc:"Availability-timeline resolution (number of windows).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Sharded KV service under open-loop load: N independent machines \
          behind a deterministic router, with online crash recovery of one \
          shard, graceful degradation, and availability accounting.")
    Term.(const run $ logs_term $ smoke $ platform $ variant $ shards $ seed
          $ keys $ requests $ rate $ theta $ preset $ crash_shard $ crash_at
          $ fault_model $ recovery_mode_arg $ degraded $ trace_out $ jobs_arg
          $ windows $ artifact_dir_arg $ replay_arg)

(* recovery *)

let recovery_cmd =
  let module RS = Workload.Recovery_scaling in
  let run () variant sizes modes seed touches smoke artifact_dir replay =
    handle_replay ~artifact_dir ~jobs:None replay;
    let variants, sizes, modes, touches =
      if smoke then
        ( [
            Workload.Runner.Mutex_map Atlas.Mode.Log_only;
            Workload.Runner.Nonblocking_map;
          ],
          [ 1_000; 4_000 ],
          [
            Workload.Machine.Eager;
            Workload.Machine.Parallel_gc 1;
            Workload.Machine.Parallel_gc 2;
            Workload.Machine.Incremental_gc;
          ],
          32 )
      else ([ variant ], sizes, modes, touches)
    in
    let failures = ref 0 in
    let all_cells = ref [] in
    let fail fmt =
      Fmt.kstr (fun s -> incr failures; Fmt.pr "FAIL: %s@." s) fmt
    in
    Fmt.pr "%-16s %8s %-12s %14s %9s %14s %10s %6s@." "variant" "objects"
      "mode" "outage-cycles" "cyc/obj" "bg-cycles" "on-demand" "audit";
    List.iter
      (fun variant ->
        List.iter
          (fun objects ->
            let cells =
              List.map
                (fun mode ->
                  let c =
                    RS.run_cell ~variant ~objects ~mode ~seed ~touches ()
                  in
                  Fmt.pr "%-16s %8d %-12s %14d %9.1f %14d %10d %6b@."
                    (Workload.Machine.variant_to_string c.RS.variant)
                    c.RS.objects
                    (Workload.Machine.recovery_mode_to_string c.RS.mode)
                    c.RS.outage_cycles
                    (float_of_int c.RS.outage_cycles /. float_of_int objects)
                    c.RS.background_cycles c.RS.on_demand_touches
                    c.RS.heap_audit_ok;
                  (mode, c))
                modes
            in
            all_cells := !all_cells @ List.map snd cells;
            (* Every mode must leave the same heap image, and the
               parallel cells must match at every job count. *)
            (match cells with
            | [] -> ()
            | (_, first) :: rest ->
                List.iter
                  (fun (m, c) ->
                    if c.RS.image_hash <> first.RS.image_hash then
                      fail "%s/%d: %s image %x differs from %s image %x"
                        (Workload.Machine.variant_to_string variant)
                        objects
                        (Workload.Machine.recovery_mode_to_string m)
                        c.RS.image_hash
                        (Workload.Machine.recovery_mode_to_string
                           first.RS.mode)
                        first.RS.image_hash;
                    if not c.RS.heap_audit_ok then
                      fail "%s/%d: %s failed the heap audit"
                        (Workload.Machine.variant_to_string variant)
                        objects
                        (Workload.Machine.recovery_mode_to_string m))
                  rest);
            let parallel =
              List.filter_map
                (fun (m, c) ->
                  match m with Workload.Machine.Parallel_gc _ -> Some c | _ -> None)
                cells
            in
            (match parallel with
            | p1 :: rest ->
                List.iter
                  (fun p ->
                    if not (RS.cells_match p1 p) then
                      fail
                        "%s/%d: parallel cells diverge across job counts \
                         (determinism violation)"
                        (Workload.Machine.variant_to_string variant)
                        objects)
                  rest
            | [] -> ());
            match
              ( List.assoc_opt Workload.Machine.Eager cells,
                List.assoc_opt Workload.Machine.Incremental_gc cells )
            with
            | Some e, Some i ->
                if i.RS.outage_cycles >= e.RS.outage_cycles then
                  fail
                    "%s/%d: incremental outage (%d cycles) is not shorter \
                     than eager (%d cycles)"
                    (Workload.Machine.variant_to_string variant)
                    objects i.RS.outage_cycles e.RS.outage_cycles
            | _ -> ())
          sizes)
      variants;
    emit_artifacts artifact_dir ~subcommand:"recovery"
      ~config:(fun j ->
        let module J = Obs.Json in
        J.key j "variants";
        J.arr_open j;
        List.iter
          (fun v -> J.str j (Workload.Machine.variant_to_cli_string v))
          variants;
        J.arr_close j;
        J.key j "sizes";
        J.arr_open j;
        List.iter (J.int j) sizes;
        J.arr_close j;
        J.key j "modes";
        J.arr_open j;
        List.iter
          (fun m -> J.str j (Workload.Machine.recovery_mode_to_string m))
          modes;
        J.arr_close j;
        J.key j "seed";
        J.int j seed;
        J.key j "touches";
        J.int j touches;
        J.key j "smoke";
        J.bool j smoke)
      ~body:(fun j ->
        Obs.Json.key j "failures";
        Obs.Json.int j !failures;
        Obs.Json.key j "cells";
        Obs.Json.arr_open j;
        List.iter (fun c -> RS.cell_to_json j c) !all_cells;
        Obs.Json.arr_close j);
    if !failures > 0 then begin
      Fmt.pr "@.%d recovery-scaling check(s) failed.@." !failures;
      exit 1
    end
    else if smoke then Fmt.pr "@.recovery smoke: all checks passed.@."
  in
  let variant =
    Arg.(value
         & opt variant_conv (Workload.Runner.Mutex_map Atlas.Mode.Log_only)
         & info [ "variant" ] ~docv:"VARIANT" ~doc:"Map variant to measure.")
  in
  let sizes =
    Arg.(value
         & opt (list int) [ 10_000; 100_000; 1_000_000 ]
         & info [ "sizes" ] ~docv:"N,N,..."
             ~doc:"Heap populations (object counts) to measure.")
  in
  let modes =
    Arg.(value
         & opt (list recovery_mode_conv)
             [
               Workload.Machine.Eager;
               Workload.Machine.Parallel_gc 2;
               Workload.Machine.Incremental_gc;
             ]
         & info [ "modes" ] ~docv:"M,M,..."
             ~doc:"Recovery modes to compare (eager, parallel[:N], \
                   incremental).")
  in
  let touches =
    Arg.(value & opt int 64
         & info [ "touches" ] ~docv:"N"
             ~doc:"On-demand first-touch recoveries charged per \
                   incremental cell before the background collection \
                   finishes.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Seconds-scale CI campaign: small heaps, all modes, both \
                   hash map and skip list; asserts image identity across \
                   modes, parallel determinism across job counts, and the \
                   incremental availability win.  Exits non-zero on any \
                   failure.")
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:
         "Recovery-at-scale campaign (experiment E22): build heaps of \
          growing population, crash them, recover in each mode, and chart \
          outage cycles against heap size — the complexity curves that \
          justify parallel and incremental recovery.")
    Term.(const run $ logs_term $ variant $ sizes $ modes $ seed_arg
          $ touches $ smoke $ artifact_dir_arg $ replay_arg)

let main_cmd =
  let doc =
    "Timely Sufficient Persistence: reproduction of Nawab et al., \
     'Procrastination Beats Prevention' (EDBT 2015)"
  in
  Cmd.group
    (Cmd.info "tsp" ~version:"1.0.0" ~doc)
    [ table1_cmd; faults_cmd; check_cmd; sweeps_cmd; ycsb_cmd; policy_cmd;
      wsp_cmd; run_cmd; trace_cmd; serve_cmd; recovery_cmd ]

let () = reeval := fun argv -> Cmd.eval ~argv main_cmd
let () = exit (Cmd.eval ~argv:!current_argv main_cmd)
