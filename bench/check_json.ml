(* Checker for the quick-bench snapshots.

   Two modes, both dependency-free (a minimal RFC 8259 recursive-descent
   parser; numbers are kept as their raw source tokens so comparisons
   are byte-exact, never float-mediated):

     check_json FILE
       parse FILE and fail loudly if it is malformed.

     check_json FILE --sim-cycles-match REF [REF2 ...]
       additionally parse each REF and demand that every "sim_cycles"
       value under a cell or A/B entry whose name appears in BOTH files
       is byte-identical.  Host timings and allocation counts may differ
       between snapshots — simulated cycles may not: they are the
       deterministic reproduction output, and a perf PR that shifts one
       has changed the simulation, not just sped it up. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of string  (* raw source token, for byte-exact comparison *)
  | Bool of bool
  | Null

exception Bad of int * string

let parse (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail (Printf.sprintf "expected %S" w)
  in
  (* Returns the string's source characters between the quotes, escapes
     left as written: keys are compared between files produced by the
     same writer, so no unescaping is needed for equality. *)
  let string_lit () =
    expect '"';
    let start = !pos in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          let raw = String.sub s start (!pos - start) in
          advance ();
          raw
      | Some '\\' -> begin
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape"
        end
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      let rec go () =
        match peek () with Some '0' .. '9' -> advance (); go () | _ -> ()
      in
      go ();
      if !pos = d0 then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    String.sub s start (!pos - start)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true"; Bool true
    | Some 'f' -> literal "false"; Bool false
    | Some 'n' -> literal "null"; Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "expected a JSON value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let parse_file file =
  let contents = read_file file in
  match parse contents with
  | v -> (v, String.length contents)
  | exception Bad (pos, msg) ->
      Printf.eprintf "%s: malformed JSON at byte %d: %s\n" file pos msg;
      exit 1

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* The raw "sim_cycles" tokens of every named entry in a section
   ("cells" or "ab"): [section_name -> (entry_name, raw_number) list]. *)
let sim_cycles_of section v =
  match member section v with
  | Some (Obj entries) ->
      List.filter_map
        (fun (name, entry) ->
          match member "sim_cycles" entry with
          | Some (Num raw) -> Some (name, raw)
          | _ -> None)
        entries
  | _ -> []

let cross_check ~file ~ref_file v ref_v =
  let shared = ref 0 and mismatches = ref [] in
  List.iter
    (fun section ->
      let ours = sim_cycles_of section v in
      let theirs = sim_cycles_of section ref_v in
      List.iter
        (fun (name, raw) ->
          match List.assoc_opt name theirs with
          | None -> ()
          | Some ref_raw ->
              incr shared;
              if not (String.equal raw ref_raw) then
                mismatches :=
                  Printf.sprintf "%s/%s: %s (was %s in %s)" section name raw
                    ref_raw ref_file
                  :: !mismatches)
        ours)
    [ "cells"; "ab" ];
  if !shared = 0 then begin
    Printf.eprintf "%s vs %s: no shared sim_cycles entries to compare\n" file
      ref_file;
    exit 1
  end;
  match List.rev !mismatches with
  | [] ->
      Printf.printf "%s: %d sim_cycles entries identical to %s\n" file !shared
        ref_file
  | ms ->
      Printf.eprintf
        "%s: simulated cycles diverged from %s (%d of %d entries):\n" file
        ref_file (List.length ms) !shared;
      List.iter (fun m -> Printf.eprintf "  %s\n" m) ms;
      exit 1

(* Campaign-artifact schema validation (PR 10): every manifest/results
   document Obs.Artifact writes must carry the shared prologue, and a
   manifest must additionally carry a replayable argv and a config
   object.  Validation is structural — key presence and type — because
   the per-subcommand payloads deliberately differ. *)
let check_schema ~file ~schema v =
  let fail msg =
    Printf.eprintf "%s: %s\n" file msg;
    exit 1
  in
  let demand key pred what =
    match member key v with
    | Some x when pred x -> ()
    | Some _ -> fail (Printf.sprintf "%S is not %s" key what)
    | None -> fail (Printf.sprintf "missing %S" key)
  in
  demand "schema"
    (function Str s -> String.equal s schema | _ -> false)
    (Printf.sprintf "the string %S" schema);
  demand "subcommand" (function Str _ -> true | _ -> false) "a string";
  demand "git" (function Str _ -> true | _ -> false) "a string";
  demand "host" (function Str _ -> true | _ -> false) "a string";
  demand "jobs" (function Str "any" -> true | _ -> false) "the string \"any\"";
  if String.equal schema "tsp-manifest-v1" then begin
    demand "replay"
      (function
        | Arr items ->
            items <> []
            && List.for_all (function Str _ -> true | _ -> false) items
        | _ -> false)
      "a non-empty array of strings";
    demand "config" (function Obj _ -> true | _ -> false) "an object"
  end;
  Printf.printf "%s: valid %s\n" file schema

(* Byte-identity gate: the replay contract promises that re-running a
   campaign from its manifest reproduces the results document exactly,
   so the two files are compared as raw bytes, not parse trees. *)
let check_identical ~file ~ref_file =
  let a = read_file file and b = read_file ref_file in
  if String.equal a b then
    Printf.printf "%s: byte-identical to %s (%d bytes)\n" file ref_file
      (String.length a)
  else begin
    let n = min (String.length a) (String.length b) in
    let i = ref 0 in
    while !i < n && a.[!i] = b.[!i] do incr i done;
    Printf.eprintf
      "%s: differs from %s at byte %d (%d vs %d bytes total)\n" file ref_file
      !i (String.length a) (String.length b);
    exit 1
  end

let () =
  match Array.to_list Sys.argv with
  | [ _; file ] ->
      let _, len = parse_file file in
      Printf.printf "%s: well-formed JSON (%d bytes)\n" file len
  | _ :: file :: "--sim-cycles-match" :: (_ :: _ as ref_files) ->
      let v, _ = parse_file file in
      List.iter
        (fun ref_file ->
          let ref_v, _ = parse_file ref_file in
          cross_check ~file ~ref_file v ref_v)
        ref_files
  | [ _; file; "--schema"; schema ]
    when schema = "tsp-manifest-v1" || schema = "tsp-results-v1" ->
      let v, _ = parse_file file in
      check_schema ~file ~schema v
  | [ _; file; "--identical"; ref_file ] -> check_identical ~file ~ref_file
  | _ ->
      prerr_endline
        "usage: check_json FILE [--sim-cycles-match REF...]\n\
        \       check_json FILE --schema tsp-manifest-v1|tsp-results-v1\n\
        \       check_json FILE --identical REF";
      exit 2
