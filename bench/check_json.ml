(* Smoke check for the quick-bench snapshot: parse the file as JSON and
   fail loudly if it is malformed.  Deliberately a minimal recursive
   descent parser (RFC 8259 grammar, no number semantics) so the bench
   pipeline needs no JSON dependency; it validates structure only —
   values are never interpreted. *)

exception Bad of int * string

let check (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail (Printf.sprintf "expected %S" w)
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape"
        end
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with Some '0' .. '9' -> advance (); go () | _ -> ()
      in
      go ();
      if !pos = start then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a JSON value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elems ()
    end
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let () =
  if Array.length Sys.argv <> 2 then begin
    prerr_endline "usage: check_json FILE";
    exit 2
  end;
  let file = Sys.argv.(1) in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match check contents with
  | () -> Printf.printf "%s: well-formed JSON (%d bytes)\n" file len
  | exception Bad (pos, msg) ->
      Printf.eprintf "%s: malformed JSON at byte %d: %s\n" file pos msg;
      exit 1
