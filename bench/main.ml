(* Benchmark harness.

   Part 1 regenerates the paper's evaluation: Table 1 (its only numeric
   artifact) in full, followed by the sweep series that make the prose
   claims measurable (E4/E7/E8 of DESIGN.md).  Throughput is simulated
   time — the reproduction target.

   Part 2 is a Bechamel microbenchmark suite: one Test.make per Table 1
   cell (host wall-time of simulating that cell, i.e. simulator speed)
   plus the primitive operations of the stack.  These measure the
   implementation, not the paper. *)

open Bechamel
open Toolkit

(* --- Part 1: the paper's numbers --- *)

let reproduce_table1 ?jobs () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1a: Table 1 reproduction (simulated time)@.";
  Fmt.pr "==================================================================@.@.";
  let rows = Workload.Table1.run ~iterations:2500 ~repeats:3 ?jobs () in
  Workload.Table1.render rows Format.std_formatter;
  (match rows with
  | desktop :: _ -> Workload.Table1.render_breakdown desktop Format.std_formatter
  | [] -> ());
  Fmt.pr "@."

let reproduce_sweeps ?jobs () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1b: sweep series (E4, E7, E8, E11, E12, cache ablation)@.";
  Fmt.pr "==================================================================@.@.";
  let render t = Workload.Sweeps.render t Format.std_formatter; Fmt.pr "@." in
  render (Workload.Sweeps.flush_latency ~iterations:600 ?jobs ());
  render (Workload.Sweeps.thread_scaling ~iterations:600 ?jobs ());
  render (Workload.Sweeps.log_cost_ablation ~iterations:600 ?jobs ());
  render (Workload.Sweeps.cache_ablation ~iterations:600 ?jobs ());
  render (Workload.Sweeps.read_ratio ~iterations:600 ?jobs ());
  Fmt.pr "%a@.@." Workload.Sweeps.pp_ledger
    (Workload.Sweeps.procrastination_ledger ~iterations:600
       ~crash_step:60_000 ?jobs ());
  Workload.Sweeps.render_ycsb
    (Workload.Sweeps.ycsb_table ~iterations:600 ?jobs Workload.Ycsb.A)
    Format.std_formatter;
  Fmt.pr "@.";
  Workload.Sweeps.render_ycsb
    (Workload.Sweeps.ycsb_table ~iterations:600 ?jobs Workload.Ycsb.B)
    Format.std_formatter;
  Fmt.pr "@."

let reproduce_fault_summary ?jobs () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1c: fault-injection spot check (E3/E9)@.";
  Fmt.pr "==================================================================@.@.";
  let base =
    {
      (Workload.Runner.calibrated_config Nvm.Config.desktop) with
      Workload.Runner.iterations = 400;
      workload = Workload.Runner.Counters { h_keys = 4096; preload = true };
    }
  in
  let campaign name cfg =
    let spec =
      {
        (Workload.Fault_injector.default_spec cfg) with
        Workload.Fault_injector.runs = 12;
        max_step = 60_000;
      }
    in
    let s = Workload.Fault_injector.run ?jobs spec in
    Fmt.pr "%-46s %d/%d consistent@." name s.Workload.Fault_injector.consistent_recoveries
      s.Workload.Fault_injector.crashes
  in
  campaign "mutex+log-only, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only };
  campaign "non-blocking, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Nonblocking_map };
  campaign "B+-tree + log-only, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Mutex_btree Atlas.Mode.Log_only };
  campaign "log-only, power outage, no TSP (control):"
    {
      base with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      hardware = Tsp_core.Hardware.conventional_server;
      failure = Tsp_core.Failure_class.Power_outage;
    };
  Fmt.pr "@.";
  (* E16: the adversarial spectrum, on a cache small enough to evict
     (on the stock cache nothing is dirty-evicted and discard-class
     faults revert to a clean snapshot). *)
  Fmt.pr "adversarial spectrum (E16), mutex+log-only, 32 KiB cache:@.";
  let adv_base =
    {
      (Workload.Runner.calibrated_config
         { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 })
      with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      workload = Workload.Runner.Counters { h_keys = 256; preload = true };
      threads = 4;
      iterations = 200;
      n_buckets = 512;
      log_mib = 1;
    }
  in
  let spec =
    {
      (Workload.Fault_injector.default_spec adv_base) with
      Workload.Fault_injector.fault_models =
        List.map Option.some Nvm.Fault_model.reference;
      exhaustive =
        Some
          { Workload.Fault_injector.from_step = 40_000; window = 200; stride = 40 };
    }
  in
  let s = Workload.Fault_injector.run ?jobs spec in
  List.iter
    (fun (t : Workload.Fault_injector.model_tally) ->
      Fmt.pr "  %-22s %d/%d consistent, verdicts %d/%d/%d, %d violations (%d unexpected)@."
        (Workload.Fault_injector.model_label t.Workload.Fault_injector.model)
        t.Workload.Fault_injector.m_consistent t.Workload.Fault_injector.m_runs
        t.Workload.Fault_injector.m_clean t.Workload.Fault_injector.m_degraded
        t.Workload.Fault_injector.m_unrecoverable
        t.Workload.Fault_injector.m_violations
        t.Workload.Fault_injector.m_unexpected)
    s.Workload.Fault_injector.per_model;
  Fmt.pr "@."

(* --- Part 2: Bechamel microbenchmarks --- *)

(* Primitive device operations. *)
let bench_pmem_ops () =
  let cfg = Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024) in
  let pmem = Nvm.Pmem.create cfg in
  let i = ref 0 in
  let test name f = Test.make ~name (Staged.stage f) in
  [
    test "pmem/store" (fun () ->
        incr i;
        Nvm.Pmem.store pmem (!i * 8 land 0xFFF8) 1L);
    test "pmem/load" (fun () ->
        incr i;
        ignore (Nvm.Pmem.load pmem (!i * 8 land 0xFFF8)));
    test "pmem/flush+fence" (fun () ->
        Nvm.Pmem.store pmem 0 2L;
        Nvm.Pmem.flush pmem 0;
        Nvm.Pmem.fence pmem);
    test "pmem/cas" (fun () ->
        ignore (Nvm.Pmem.cas pmem 64 ~expected:0L ~desired:0L));
  ]

let bench_heap_ops () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (8 * 1024 * 1024))
  in
  let heap = Pheap.Heap.create pmem ~base:0 ~size:(8 * 1024 * 1024) in
  [
    Test.make ~name:"heap/alloc+free"
      (Staged.stage (fun () ->
           let a = Pheap.Heap.alloc heap ~kind:Pheap.Kind.raw ~words:4 in
           Pheap.Heap.free heap a));
  ]

let bench_skiplist_ops () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (16 * 1024 * 1024))
  in
  let heap = Pheap.Heap.create pmem ~base:0 ~size:(16 * 1024 * 1024) in
  let sl = Tsp_maps.Lockfree_skiplist.create heap ~num_threads:1 ~seed:1 () in
  for k = 0 to 9999 do
    Tsp_maps.Lockfree_skiplist.set_plain sl ~key:(k * 2) ~value:1L
  done;
  let ops = Tsp_maps.Lockfree_skiplist.ops sl in
  let i = ref 0 in
  [
    Test.make ~name:"skiplist/get(10k)"
      (Staged.stage (fun () ->
           incr i;
           ignore (ops.Tsp_maps.Map_intf.get ~tid:0 ~key:(!i * 7 mod 20000))));
    Test.make ~name:"skiplist/set(10k)"
      (Staged.stage (fun () ->
           incr i;
           ops.Tsp_maps.Map_intf.set ~tid:0 ~key:(!i * 2 mod 20000) ~value:2L));
  ]

let bench_undo_log () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024))
  in
  let log = Atlas.Undo_log.format pmem ~base:0 ~size:(512 * 1024) ~num_threads:1 in
  let seq = ref 0 in
  [
    Test.make ~name:"undo-log/append+prune"
      (Staged.stage (fun () ->
           incr seq;
           let at =
             Atlas.Undo_log.append log ~tid:0
               {
                 Atlas.Log_entry.seq = !seq;
                 tid = 0;
                 payload = Atlas.Log_entry.Update { addr = 64; old = 0L };
               }
           in
           Atlas.Undo_log.advance_tail log ~tid:0
             ~new_tail:(Atlas.Undo_log.next_slot log at)
             ~flush:false));
  ]

(* One Test.make per Table 1 cell: host time to simulate that cell with
   a reduced iteration count.  Name format "<platform>/<variant>". *)
let bench_table1_cells () =
  let cell platform variant =
    let config =
      {
        (Workload.Runner.calibrated_config platform) with
        Workload.Runner.variant;
        iterations = 40;
        workload = Workload.Runner.Counters { h_keys = 2048; preload = true };
        n_buckets = 1024;
        log_mib = 2;
      }
    in
    let name =
      Printf.sprintf "table1/%s/%s"
        (if platform.Nvm.Config.name = Nvm.Config.desktop.Nvm.Config.name
         then "desktop"
         else "server")
        (Workload.Runner.variant_to_string variant)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let r = Workload.Runner.run config in
           assert (Workload.Runner.consistent r)))
  in
  List.concat_map
    (fun platform -> List.map (cell platform) Workload.Table1.variants)
    [ Nvm.Config.desktop; Nvm.Config.server ]

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"tsp" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.1f" est
        | _ -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Workload.Report.table ~header:[ "benchmark"; "ns/run (host)" ] ~rows
    Format.std_formatter

(* --- Part 3: the quick perf-trajectory snapshot (--quick) ---

   A reduced cell set measured for host wall time, simulated cycles and
   minor-heap allocation, written as JSON so successive PRs can diff the
   simulator's speed (cf. machine-readable perf trajectories in CI).
   Keys are normalized to [a-z0-9_] so they survive renames of the
   pretty printers.  Simulated cycles are deterministic: check_json
   cross-checks every cell shared with the committed BENCH_*.json
   snapshots byte-for-byte.  The snapshot also measures three A/B pairs
   on the same binary:
   - the scheduler fast path on (default slice) vs off (slice 0);
   - the SoA/unboxed memory-hierarchy fast path vs the retained boxed
     access path ([Pmem.set_boxed_access]), same simulated cycles by
     construction; and
   - the reduced sweep suite at --jobs 1 vs --jobs N, the multicore
     fan-out.  On a single-core host the latter ratio is ~1 by nature;
     [host_cores] is recorded so readers can tell; and
   - the durable-linearizability history recorder interposed on a full
     workload run vs the same config with [instrument = None].  The
     recorder timestamps ops with [Scheduler.now] (a field read, no RNG,
     no simulated cost), so simulated cycles must be identical — the
     cell asserts it — and only the host-side overhead differs; and
   - the event tracer ([lib/obs]) attached to a full workload run vs
     the same config with [tracer = None].  Emission packs ints into a
     flat ring without allocating, drawing randomness or charging
     cycles, so the traced run must be sim-cycle identical to the
     untraced one — asserted here, the observability layer's central
     determinism contract; and
   - batched-quantum execution on the single-thread hot-path workload:
     quanta on vs slice-only vs per-op scheduling (slice 0), byte-equal
     simulated cycles and step counts asserted across all three; and
   - an exhaustive crash-window fault campaign with quanta on vs off,
     whose rendered verdict ledgers must be string-identical — the
     campaign-level witness that quanta never move a crash point.

   After writing the snapshot, --quick prints a one-line host-throughput
   delta (geomean over shared cells) against the newest committed
   BENCH_*.json, or against --compare FILE; --no-compare suppresses it. *)

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let time_ns f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.to_int (Int64.sub (now_ns ()) t0))

(* Host time and minor-heap words allocated while running [f].  The
   [Gc.minor_words] calls themselves box a float or two; cells run long
   enough that the constant is invisible, and the raw hot-path cell
   asserts against a per-op threshold, not a literal zero. *)
let time_and_alloc f =
  let w0 = Gc.minor_words () in
  let r, host_ns = time_ns f in
  let words = Gc.minor_words () -. w0 in
  (r, host_ns, words)

let normalize_key s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '_')
    s

(* The hot path in isolation: one simulated thread hammering the device
   through the scheduler step hook, with the fast path enabled (default
   slice) or disabled (slice 0, the historical suspend-per-step path).
   Identical simulated results are asserted; only host time differs.
   [quantum] additionally wires the batched-execution handle, so
   uncontended loads/stores bypass the hook entirely. *)
let hot_path_cell ~ops ~slice ~quantum =
  let cfg = Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024) in
  let pmem = Nvm.Pmem.create cfg in
  let sched =
    Sched.Scheduler.create ~seed:7 ~cost_jitter:3 ~deterministic_slice:slice
      ~quantum ()
  in
  ignore
    (Sched.Scheduler.spawn sched ~name:"hot" (fun () ->
         for i = 1 to ops do
           let addr = i * 8 land 0xFFF8 in
           Nvm.Pmem.store_int pmem addr i;
           ignore (Nvm.Pmem.load_int pmem addr : int);
           if i land 255 = 0 then begin
             Nvm.Pmem.flush pmem addr;
             Nvm.Pmem.fence pmem
           end
         done)
      : int);
  Nvm.Pmem.set_step_hook pmem (fun ~cost -> Sched.Scheduler.step sched ~cost);
  Nvm.Pmem.set_quantum pmem (Sched.Scheduler.quantum_handle sched);
  (match Sched.Scheduler.run sched with
  | Sched.Scheduler.Completed -> ()
  | _ -> failwith "hot-path cell did not complete");
  (Sched.Scheduler.elapsed_cycles sched, Sched.Scheduler.total_steps sched)

(* The memory hierarchy alone: a load/store/periodic-cas loop against
   the device with no scheduler attached, so every nanosecond is cache
   bookkeeping plus the byte images.  With [boxed = false] this is the
   SoA/unboxed fast path and must not allocate; with [boxed = true] it
   is the retained historical access shape (option per hit, variant per
   miss, [int64] box per word).  Simulated cycles accumulate on the
   stats clock and are identical either way — the caller asserts so. *)
let raw_loadstore_cell ~ops ~boxed =
  let cfg = Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024) in
  let pmem = Nvm.Pmem.create cfg in
  Nvm.Pmem.set_boxed_access pmem boxed;
  let clock0 = (Nvm.Pmem.stats pmem).Nvm.Stats.clock in
  let acc = ref 0 in
  for i = 1 to ops do
    let addr = i * 8 land 0xFFF8 in
    Nvm.Pmem.store_int pmem addr i;
    acc := !acc + Nvm.Pmem.load_int pmem addr;
    if i land 1023 = 0 then
      ignore (Nvm.Pmem.cas_int pmem addr ~expected:i ~desired:(i + 1) : bool)
  done;
  ignore !acc;
  (Nvm.Pmem.stats pmem).Nvm.Stats.clock - clock0

let quick_table1_config platform variant =
  {
    (Workload.Runner.calibrated_config platform) with
    Workload.Runner.variant;
    iterations = 150;
    workload = Workload.Runner.Counters { h_keys = 2048; preload = true };
    n_buckets = 1024;
    log_mib = 2;
  }

let quick_sweep_suite ~jobs () =
  ignore
    (Workload.Sweeps.flush_latency ~iterations:120 ~latencies:[ 100; 500 ]
       ~jobs ()
      : Workload.Sweeps.series_table);
  ignore
    (Workload.Sweeps.thread_scaling ~iterations:120 ~thread_counts:[ 1; 4; 8 ]
       ~jobs ()
      : Workload.Sweeps.series_table);
  ignore
    (Workload.Sweeps.read_ratio ~iterations:120 ~read_pcts:[ 0; 50 ] ~jobs ()
      : Workload.Sweeps.series_table)

(* JSON rendering primitives come from the shared telemetry writer:
   [Obs.Json.float_repr] renders non-finite counters (a cell with zero
   loads+stores has a NaN hit rate) as null rather than an unparseable
   token, and [Obs.Json.escape] is the one string escaper every emitter
   in the tree shares. *)
let json_float f = Obs.Json.float_repr f
let json_escape s = Obs.Json.escape s

type compare_mode = Auto | Compare_with of string | No_compare

(* Read (name, sim_cycles, host_ns) triples back out of a snapshot this
   harness wrote.  The writer puts one cell per line, so a line scanner
   is exact on our own format (check_json holds the real parser; this
   one only feeds the throughput-delta report). *)
let scan_snapshot_cells file =
  let find_int line key =
    let pat = Printf.sprintf "\"%s\": " key in
    let n = String.length line and m = String.length pat in
    let rec at i =
      if i + m > n then None
      else if String.equal (String.sub line i m) pat then begin
        let j = ref (i + m) in
        while !j < n && (match line.[!j] with '0' .. '9' -> true | _ -> false) do
          incr j
        done;
        if !j > i + m then int_of_string_opt (String.sub line (i + m) (!j - i - m))
        else None
      end
      else at (i + 1)
    in
    at 0
  in
  let ic = open_in file in
  let cells = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '"' with
       | None -> ()
       | Some q0 -> (
           match String.index_from_opt line (q0 + 1) '"' with
           | None -> ()
           | Some q1 -> (
               let name = String.sub line (q0 + 1) (q1 - q0 - 1) in
               match (find_int line "sim_cycles", find_int line "host_ns") with
               | Some cy, Some ns -> cells := (name, (cy, ns)) :: !cells
               | _ -> ()))
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !cells

(* The newest committed BENCH_<n>.json sitting next to [out] (older than
   [out] itself when [out] is one of them). *)
let previous_snapshot ~out =
  let dir = Filename.dirname out in
  let parse_n name =
    let pre = "BENCH_" and suf = ".json" in
    let lp = String.length pre and ls = String.length suf in
    let l = String.length name in
    if l > lp + ls
       && String.equal (String.sub name 0 lp) pre
       && Filename.check_suffix name suf
    then int_of_string_opt (String.sub name lp (l - lp - ls))
    else None
  in
  let self_n = parse_n (Filename.basename out) in
  Array.to_list (try Sys.readdir dir with Sys_error _ -> [||])
  |> List.filter_map (fun f ->
         match parse_n f with
         | Some n when (match self_n with Some s -> n < s | None -> true) ->
             Some (n, Filename.concat dir f)
         | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> function
  | (_, f) :: _ -> Some f
  | [] -> None

(* Host-throughput delta vs the previous snapshot: simulated cycles per
   host second is the simulator's speed, and shared cells have identical
   sim_cycles (check_json enforces it), so the ratio is a pure host-time
   comparison.  One summary line (the geomean), one detail line per
   shared cell. *)
let compare_with_previous ~out ~mode =
  let prev =
    match mode with
    | No_compare -> None
    | Compare_with f -> Some f
    | Auto -> previous_snapshot ~out
  in
  match prev with
  | None -> Fmt.pr "  (no previous BENCH_*.json to compare against)@."
  | Some prev_file -> (
      (* A missing or unreadable snapshot is a note, not a failure: the
         delta report is advisory, and a fresh checkout (or an --out
         pointed somewhere new) legitimately has nothing to diff
         against. *)
      match
        try Some (scan_snapshot_cells prev_file) with Sys_error _ -> None
      with
      | None ->
          Fmt.pr "  (previous snapshot %s is missing or unreadable — \
                  skipping the throughput delta)@."
            prev_file
      | Some prev_cells ->
      let cur_cells = scan_snapshot_cells out in
      let shared =
        List.filter_map
          (fun (name, (cy, ns)) ->
            match List.assoc_opt name prev_cells with
            | Some (pcy, pns) -> Some (name, (pcy, pns), (cy, ns))
            | None -> None)
          cur_cells
      in
      if shared = [] then
        Fmt.pr "  (no cells shared with %s — skipping the throughput \
                delta)@."
          prev_file
      else begin
        let tp cy ns = 1e3 *. float_of_int cy /. float_of_int (max 1 ns) in
        let log_sum = ref 0.0 in
        List.iter
          (fun (name, (pcy, pns), (cy, ns)) ->
            let sp = tp cy ns /. tp pcy pns in
            log_sum := !log_sum +. log sp;
            Fmt.pr "    %-40s %8.1f -> %8.1f Msimc/s (%.2fx)@." name
              (tp pcy pns) (tp cy ns) sp)
          shared;
        let geo = exp (!log_sum /. float_of_int (List.length shared)) in
        Fmt.pr "  host throughput vs %s: %.2fx geomean over %d shared cells@."
          prev_file geo (List.length shared)
      end)

let run_quick ~jobs ~out ~compare_mode =
  let jobs = match jobs with Some j -> j | None -> Workload.Parallel.default_jobs () in
  (* The single-thread hot-path workload: the cell the quantum A/B below
     re-runs under each execution mode. *)
  let hot1_config =
    {
      (Workload.Runner.calibrated_config Nvm.Config.desktop) with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      threads = 1;
      iterations = 4000;
      workload = Workload.Runner.Counters { h_keys = 2048; preload = true };
      n_buckets = 1024;
      log_mib = 2;
    }
  in
  (* Per-cell measurements: the Table 1 grid plus a single-thread cell
     that isolates the scheduler/cache hot path. *)
  let cells =
    List.map
      (fun (name, config) ->
        let r, host_ns, minor_words =
          time_and_alloc (fun () -> Workload.Runner.run config)
        in
        if not (Workload.Runner.consistent r) then
          Fmt.failwith "quick bench: %s inconsistent (seed %d, %d sim cycles): %a"
            name config.Workload.Runner.seed r.Workload.Runner.elapsed_cycles
            Workload.Invariant.pp r.Workload.Runner.invariants;
        ( normalize_key name,
          r.Workload.Runner.elapsed_cycles,
          host_ns,
          minor_words,
          Nvm.Stats.hit_rate r.Workload.Runner.device_stats ))
      (List.concat_map
         (fun (pname, platform) ->
           List.map
             (fun variant ->
               ( Printf.sprintf "table1_%s_%s" pname
                   (Workload.Runner.variant_to_string variant),
                 quick_table1_config platform variant ))
             Workload.Table1.variants)
         [ ("desktop", Nvm.Config.desktop); ("server", Nvm.Config.server) ]
      @ [ ("hot_path_log_only_1thread", hot1_config) ])
  in
  (* The allocation cell: the memory hierarchy alone, on the unboxed
     fast path.  Its contract is zero minor words per operation; the
     snapshot records the measurement and the bench fails if it drifts
     (the threshold admits the [Gc.minor_words] float boxes, not a
     per-op leak). *)
  let raw_ops = 2_000_000 in
  let raw_cycles, raw_host_ns, raw_words =
    time_and_alloc (fun () -> raw_loadstore_cell ~ops:raw_ops ~boxed:false)
  in
  let raw_words_per_op = raw_words /. float_of_int raw_ops in
  if raw_words_per_op > 0.01 then
    Fmt.failwith
      "quick bench: unboxed fast path allocates (%.4f minor words/op)"
      raw_words_per_op;
  (* A/B 1: scheduler fast path on vs off, same simulated results.  Both
     legs run without quanta so the cell keeps measuring exactly what it
     measured when BENCH_1..4 were recorded: the slice fast path alone. *)
  let ops = 400_000 in
  let cy_on, fast_on_ns =
    time_ns (fun () ->
        hot_path_cell ~ops ~slice:Sched.Scheduler.default_slice ~quantum:false)
  in
  let cy_off, fast_off_ns =
    time_ns (fun () -> hot_path_cell ~ops ~slice:0 ~quantum:false)
  in
  if cy_on <> cy_off then
    Fmt.failwith "quick bench: fast path changed simulated cycles (%d vs %d)"
      (fst cy_on) (fst cy_off);
  (* A/B 2: SoA/unboxed access path vs the retained boxed path.  Same
     simulated cycles by construction, asserted here on one binary. *)
  let soa_cycles, soa_on_ns, soa_on_words =
    time_and_alloc (fun () -> raw_loadstore_cell ~ops:raw_ops ~boxed:false)
  in
  let soa_cycles_boxed, soa_off_ns, soa_off_words =
    time_and_alloc (fun () -> raw_loadstore_cell ~ops:raw_ops ~boxed:true)
  in
  if soa_cycles <> soa_cycles_boxed then
    Fmt.failwith
      "quick bench: boxed access path changed simulated cycles (%d vs %d)"
      soa_cycles soa_cycles_boxed;
  if soa_cycles <> raw_cycles then
    Fmt.failwith "quick bench: raw load/store cell is not deterministic";
  (* A/B 3: the reduced sweep suite, sequential vs fanned out. *)
  let (), suite_j1_ns = time_ns (fun () -> quick_sweep_suite ~jobs:1 ()) in
  let (), suite_jn_ns = time_ns (fun () -> quick_sweep_suite ~jobs ()) in
  (* A/B 4: the history recorder on vs off, one full workload run each.
     [Scheduler.now] reads the current thread's vclock without touching
     the RNG or charging cycles, so recording is invisible to the
     simulation — identical elapsed cycles are asserted, and the JSON
     records the host-side cost of remembering every operation. *)
  let hr_config instrument =
    {
      (Workload.Runner.calibrated_config Nvm.Config.desktop) with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      threads = 2;
      iterations = 800;
      workload = Workload.Runner.Counters { h_keys = 1024; preload = true };
      n_buckets = 1024;
      log_mib = 2;
      instrument;
    }
  in
  let hr_off, hr_off_ns, hr_off_words =
    time_and_alloc (fun () -> Workload.Runner.run (hr_config None))
  in
  let hr_recorder = ref None in
  let hr_instrument sched ops =
    let h = Check.History.create ~sched ~capacity:8192 () in
    hr_recorder := Some h;
    Check.History.wrap h ops
  in
  let hr_on, hr_on_ns, hr_on_words =
    time_and_alloc (fun () -> Workload.Runner.run (hr_config (Some hr_instrument)))
  in
  if
    hr_on.Workload.Runner.elapsed_cycles
    <> hr_off.Workload.Runner.elapsed_cycles
  then
    Fmt.failwith
      "quick bench: history recording perturbed the simulation (%d vs %d \
       cycles)"
      hr_on.Workload.Runner.elapsed_cycles
      hr_off.Workload.Runner.elapsed_cycles;
  let hr_ops =
    match !hr_recorder with
    | Some h -> Check.History.length h
    | None -> Fmt.failwith "quick bench: history instrument hook never ran"
  in
  (* A/B 5: the event tracer on vs off, one full workload run each.
     Emission writes packed ints into a preallocated ring — no RNG, no
     cycle charges — so the traced run must be byte-identical in
     simulated cycles; this cell is the bench-level witness of that
     contract (test/test_obs.ml holds the unit-level one). *)
  let tc_config tracer = { (hr_config None) with Workload.Runner.tracer } in
  let tc_off, tc_off_ns, tc_off_words =
    time_and_alloc (fun () -> Workload.Runner.run (tc_config None))
  in
  let tc_tracer = Obs.Tracer.create ~ring_cap:65536 () in
  let tc_on, tc_on_ns, tc_on_words =
    time_and_alloc (fun () -> Workload.Runner.run (tc_config (Some tc_tracer)))
  in
  if
    tc_on.Workload.Runner.elapsed_cycles
    <> tc_off.Workload.Runner.elapsed_cycles
  then
    Fmt.failwith
      "quick bench: event tracing perturbed the simulation (%d vs %d cycles)"
      tc_on.Workload.Runner.elapsed_cycles
      tc_off.Workload.Runner.elapsed_cycles;
  let tc_events = Obs.Tracer.emitted tc_tracer in
  (* A/B 6: batched-quantum execution on the single-thread hot path —
     the same device-op loop the sched_fast_path pair measures, where
     per-operation scheduling cost is the whole bill.  Three execution
     modes of the same loop:
     - on:         quanta + default slice (the default configuration);
     - slice_only: no quanta, default slice (PR 1's fast path alone);
     - off:        no quanta, slice 0 — every operation re-enters the
                   scheduler through an effect, the historical baseline
                   the tentpole is measured against.
     All three must agree on simulated cycles and step counts (byte-
     identical interleavings — the full-workload version of this
     identity, across every Table 1 variant, lives in test_quantum.ml);
     the JSON records all three host timings so both the headline ratio
     (off/on) and the increment over the slice fast path
     (slice_only/on) stay visible.  The quantum itself allocates
     nothing, so the on leg's minor words are guarded against the
     slice-only leg's. *)
  let qb_ops = 400_000 in
  let qb_run ~quantum ~slice =
    time_and_alloc (fun () -> hot_path_cell ~ops:qb_ops ~slice ~quantum)
  in
  let qb_on, qb_on_ns, qb_on_words =
    qb_run ~quantum:true ~slice:Sched.Scheduler.default_slice
  in
  let qb_slice, qb_slice_ns, qb_slice_words =
    qb_run ~quantum:false ~slice:Sched.Scheduler.default_slice
  in
  let qb_off, qb_off_ns, _qb_off_words = qb_run ~quantum:false ~slice:0 in
  if qb_on <> qb_slice || qb_on <> qb_off then
    Fmt.failwith
      "quick bench: quantum batching changed the simulation (%d/%d, %d/%d, \
       %d/%d cycles/steps)"
      (fst qb_on) (snd qb_on) (fst qb_slice) (snd qb_slice) (fst qb_off)
      (snd qb_off);
  if qb_on_words > (qb_slice_words *. 1.10) +. 65536.0 then
    Fmt.failwith
      "quick bench: quantum batching allocates (%.0f minor words vs %.0f \
       without quanta)"
      qb_on_words qb_slice_words;
  let qb_speedup = float_of_int qb_off_ns /. float_of_int (max 1 qb_on_ns) in
  (* A/B 7: an exhaustive crash-window fault campaign with quanta on vs
     off.  The verdict ledger — every crash step, recovery verdict,
     violation judgement and reproducer — must render identically, which
     is the campaign-level witness that quanta never move a crash point
     or change what recovery sees. *)
  let qc_spec quantum =
    {
      (Workload.Fault_injector.default_spec
         {
           hot1_config with
           Workload.Runner.threads = 2;
           iterations = 300;
           workload = Workload.Runner.Counters { h_keys = 1024; preload = true };
           quantum;
         })
      with
      Workload.Fault_injector.exhaustive =
        Some
          { Workload.Fault_injector.from_step = 30_000; window = 1_500; stride = 150 };
    }
  in
  let qc_on, qc_on_ns =
    time_ns (fun () -> Workload.Fault_injector.run ~jobs (qc_spec true))
  in
  let qc_off, qc_off_ns =
    time_ns (fun () -> Workload.Fault_injector.run ~jobs (qc_spec false))
  in
  let qc_ledger s = Fmt.str "%a" Workload.Fault_injector.pp_summary s in
  if not (String.equal (qc_ledger qc_on) (qc_ledger qc_off)) then
    Fmt.failwith
      "quick bench: quanta changed the crash-campaign verdict ledger:@.--- \
       with quanta ---@.%s@.--- without ---@.%s"
      (qc_ledger qc_on) (qc_ledger qc_off);
  if qc_on.Workload.Fault_injector.unexpected_violations <> 0 then
    Fmt.failwith "quick bench: quantum crash campaign found violations";
  (* A/B 8: the sharded KV service, one shard crashed and recovered
     online vs nobody crashed.  Shards are independent simulation cells
     behind a deterministic router, so the crash parameters never reach
     the survivors: their witnesses (request fates, step counts, device
     and scheduler clocks) must be identical in both legs — the
     bench-level blast-radius guarantee.  The snapshot records the
     victim's full timeline (down, recovery, back up) with its final
     scheduler clock as the sim_cycles witness. *)
  let sv_config =
    {
      Service.Serve.smoke_config with
      Service.Serve.shards = 3;
      seed = 23;
      keys = 2048;
      requests = 1200;
      rate_per_mcycle = 250.;
      crash_shard = Some 1;
      n_buckets = Some 512;
      windows = 6;
    }
  in
  let sv_crash, sv_crash_ns =
    time_ns (fun () -> Service.Serve.run ~jobs sv_config)
  in
  let sv_base, sv_base_ns =
    time_ns (fun () ->
        Service.Serve.run ~jobs
          { sv_config with Service.Serve.crash_shard = None })
  in
  let sv_witness (s : Service.Serve.shard_report) =
    ( s.Service.Serve.served,
      s.Service.Serve.shed,
      s.Service.Serve.timed_out,
      s.Service.Serve.steps,
      s.Service.Serve.sim_cycles,
      s.Service.Serve.elapsed_cycles )
  in
  Array.iteri
    (fun i (s : Service.Serve.shard_report) ->
      if i <> 1 && sv_witness s <> sv_witness sv_base.Service.Serve.shards.(i)
      then
        Fmt.failwith
          "quick bench: shard %d witness differs between crashed and \
           crash-free service runs (blast radius leaked)"
          i)
    sv_crash.Service.Serve.shards;
  let sv_victim = sv_crash.Service.Serve.shards.(1) in
  if not (String.equal sv_victim.Service.Serve.outcome "crashed+recovered")
  then
    Fmt.failwith "quick bench: service victim shard outcome is %S"
      sv_victim.Service.Serve.outcome;
  let sv_rec =
    match sv_victim.Service.Serve.recovery with
    | Some r -> r
    | None -> Fmt.failwith "quick bench: service victim has no recovery report"
  in
  (match sv_rec.Service.Serve.dl with
  | Some v when Check.Dl.is_explained v -> ()
  | Some v ->
      Fmt.failwith "quick bench: service victim failed the DL check: %a"
        Check.Dl.pp_verdict v
  | None ->
      Fmt.failwith "quick bench: service victim DL check was skipped (%s)"
        sv_rec.Service.Serve.dl_note);
  let sv_tally (r : Service.Serve.report) =
    Array.fold_left
      (fun (srv, shd, t_o) (s : Service.Serve.shard_report) ->
        ( srv + s.Service.Serve.served,
          shd + s.Service.Serve.shed,
          t_o + s.Service.Serve.timed_out ))
      (0, 0, 0) r.Service.Serve.shards
  in
  let sv_served, sv_shed, sv_timed_out = sv_tally sv_crash in
  (* A/B 9: recovery at scale (E22).  The same deterministic crashed heap
     recovered eagerly (per-word costed cache simulation) and with the
     streamed parallel engine (peek discovery + one analytic line-grained
     bill).  Both must leave a byte-identical heap image, and the
     parallel cells must be structurally identical at every job count;
     the 10^6-object heap records the host-time speedup of streaming
     over cache simulation.  Incremental mode's outage is the
     availability headline: near-constant while full collections grow
     linearly with the population. *)
  let module RS = Workload.Recovery_scaling in
  let rs_variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only in
  let rs_cell ~objects ~mode =
    RS.run_cell ~variant:rs_variant ~objects ~mode ~seed:29 ~touches:48 ()
  in
  (* Host time of the recovery pipeline alone: population dominates the
     whole-cell wall clock and is identical across modes, so the
     mode-to-mode host comparison uses [recover_host_ms]. *)
  let rs_host_ns (c : RS.cell) = int_of_float (c.RS.recover_host_ms *. 1e6) in
  let rs_check ~objects (eager : RS.cell) (other : RS.cell) =
    if other.RS.image_hash <> eager.RS.image_hash then
      Fmt.failwith
        "quick bench: recovery mode %s left a different heap image than \
         eager at %d objects (%x vs %x)"
        (Workload.Machine.recovery_mode_to_string other.RS.mode)
        objects other.RS.image_hash eager.RS.image_hash;
    if not (eager.RS.heap_audit_ok && other.RS.heap_audit_ok) then
      Fmt.failwith "quick bench: recovery cell failed the heap audit"
  in
  let rs_curve =
    List.map
      (fun objects ->
        let eager = rs_cell ~objects ~mode:Workload.Machine.Eager in
        let par = rs_cell ~objects ~mode:(Workload.Machine.Parallel_gc 2) in
        let inc = rs_cell ~objects ~mode:Workload.Machine.Incremental_gc in
        rs_check ~objects eager par;
        rs_check ~objects eager inc;
        if inc.RS.outage_cycles >= eager.RS.outage_cycles then
          Fmt.failwith
            "quick bench: incremental outage (%d cycles) not shorter than \
             eager (%d) at %d objects"
            inc.RS.outage_cycles eager.RS.outage_cycles objects;
        (objects, eager, par, inc))
      [ 20_000; 60_000 ]
  in
  (* Jobs-identity witness: parallel:1 must match parallel:2 field for
     field (mode and wall clock aside). *)
  let rs_p1 = rs_cell ~objects:20_000 ~mode:(Workload.Machine.Parallel_gc 1) in
  (match rs_curve with
  | (20_000, _, p2, _) :: _ ->
      if not (RS.cells_match rs_p1 p2) then
        Fmt.failwith
          "quick bench: parallel recovery diverges across job counts \
           (determinism violation)"
  | _ -> assert false);
  let rs_big = 1_000_000 in
  let rs_big_eager = rs_cell ~objects:rs_big ~mode:Workload.Machine.Eager in
  let rs_big_par =
    rs_cell ~objects:rs_big ~mode:(Workload.Machine.Parallel_gc 2)
  in
  rs_check ~objects:rs_big rs_big_eager rs_big_par;
  let rs_speedup =
    float_of_int (rs_host_ns rs_big_eager)
    /. float_of_int (max 1 (rs_host_ns rs_big_par))
  in
  (* A/B 10: the fence-complexity frontier cell (E23).  Three designs —
     eager log-flush fortification, the plain lock-free skip list, and
     its NVTraverse transformation — on one identical counter workload,
     with both legs of each row (traced run + strict-DL crash point)
     computed under --jobs 1 and under the requested fan-out.  The rows
     must be identical field-for-field across job counts (params are
     drawn before the fan-out and each machine is private), and the
     frontier ordering itself is asserted: NVTraverse strictly fewer
     flushes per op than log-flush at equal or better throughput. *)
  let ff_variants =
    [
      Workload.Runner.Mutex_map Atlas.Mode.Log_flush;
      Workload.Runner.Nonblocking_map;
      Workload.Runner.Nvtraverse_map;
    ]
  in
  let ff_run jobs =
    Workload.Frontier.run ~jobs ~variants:ff_variants
      ~platform:Nvm.Config.desktop ()
  in
  let ff_rows, ff_j1_ns = time_ns (fun () -> ff_run 1) in
  let ff_rows_jn, ff_jn_ns = time_ns (fun () -> ff_run jobs) in
  if ff_rows <> ff_rows_jn then
    Fmt.failwith
      "quick bench: frontier rows diverge across job counts (determinism \
       violation):@.--- jobs 1 ---@.%a@.--- jobs %d ---@.%a"
      Workload.Frontier.pp ff_rows jobs Workload.Frontier.pp ff_rows_jn;
  List.iter
    (fun (r : Workload.Frontier.row) ->
      if not r.Workload.Frontier.dl_explained then
        Fmt.failwith "quick bench: frontier row %s is not durably linearizable"
          (Workload.Machine.variant_to_cli_string r.Workload.Frontier.variant))
    ff_rows;
  let ff_find v =
    match Workload.Frontier.find ff_rows v with
    | Some r -> r
    | None -> Fmt.failwith "quick bench: frontier row missing"
  in
  let ff_nvt = ff_find Workload.Runner.Nvtraverse_map in
  let ff_lf = ff_find (Workload.Runner.Mutex_map Atlas.Mode.Log_flush) in
  let ff_nb = ff_find Workload.Runner.Nonblocking_map in
  if not (Workload.Frontier.nvtraverse_beats_logflush ff_rows) then
    Fmt.failwith
      "quick bench: NVTraverse (%.3f flushes/op, %.2f Miters/s) does not \
       beat log-flush (%.3f flushes/op, %.2f Miters/s)"
      ff_nvt.Workload.Frontier.flushes_per_op ff_nvt.Workload.Frontier.miters
      ff_lf.Workload.Frontier.flushes_per_op ff_lf.Workload.Frontier.miters;
  (* A/B 11: histogram instrumentation (PR 10).  [Obs.Hist] cells now sit
     on two hot paths — {!Obs.Tracer.emit} feeds the dirty-exposure
     histogram, and the Serve latency sink retains log-bucketed
     histograms instead of raw samples — so the traced-vs-untraced pair
     above (A/B 5) is also the sim-cycle identity witness for the
     histogram: its traced leg ran with every emit feeding [Hist.add],
     and its cycles matched the untraced leg's.  This cell times the add
     loop itself and asserts it allocates nothing. *)
  let hi_ops = 2_000_000 in
  let hi_h = Obs.Hist.create () in
  let hi_fill () =
    for i = 1 to hi_ops do
      Obs.Hist.add hi_h (i * 2654435761 land 0xFFFFF)
    done
  in
  let (), hi_ns, hi_words = time_and_alloc hi_fill in
  let hi_words_per_op = hi_words /. float_of_int hi_ops in
  if hi_words_per_op > 0.01 then
    Fmt.failwith "quick bench: Obs.Hist.add allocates (%.4f minor words/op)"
      hi_words_per_op;
  if Obs.Hist.count hi_h <> hi_ops then
    Fmt.failwith "quick bench: Obs.Hist dropped samples (%d of %d)"
      (Obs.Hist.count hi_h) hi_ops;
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"schema\": \"tsp-bench-v2\",\n";
  pf "  \"host_cores\": %d,\n" (Workload.Parallel.default_jobs ());
  pf "  \"jobs\": %d,\n" jobs;
  pf "  \"cells\": {\n";
  List.iter
    (fun (name, sim_cycles, host_ns, minor_words, hit_rate) ->
      pf "    \"%s\": { \"sim_cycles\": %d, \"host_ns\": %d, \
          \"minor_words\": %.0f, \"hit_rate\": %s },\n"
        (json_escape name) sim_cycles host_ns minor_words
        (json_float hit_rate))
    cells;
  List.iter
    (fun (objects, eager, par, inc) ->
      let cell name (c : RS.cell) =
        pf "    \"recovery_%s_%dk\": { \"sim_cycles\": %d, \"host_ns\": %d, \
            \"background_cycles\": %d },\n"
          name (objects / 1000) c.RS.outage_cycles (rs_host_ns c)
          c.RS.background_cycles
      in
      cell "eager" eager;
      cell "parallel" par;
      cell "incremental" inc)
    rs_curve;
  pf "    \"recovery_eager_1000k\": { \"sim_cycles\": %d, \"host_ns\": %d },\n"
    rs_big_eager.RS.outage_cycles (rs_host_ns rs_big_eager);
  pf "    \"recovery_parallel_1000k\": { \"sim_cycles\": %d, \"host_ns\": %d },\n"
    rs_big_par.RS.outage_cycles (rs_host_ns rs_big_par);
  List.iter
    (fun (r : Workload.Frontier.row) ->
      pf "    \"frontier_%s\": { \"sim_cycles\": %d, \"completed_ops\": %d, \
          \"flushes_per_op\": %.3f, \"fences_per_op\": %.3f, \
          \"appends_per_op\": %.3f },\n"
        (normalize_key
           (Workload.Machine.variant_to_cli_string r.Workload.Frontier.variant))
        r.Workload.Frontier.elapsed_cycles r.Workload.Frontier.completed_ops
        r.Workload.Frontier.flushes_per_op r.Workload.Frontier.fences_per_op
        r.Workload.Frontier.appends_per_op)
    ff_rows;
  pf "    \"hot_path_loadstore_raw\": { \"sim_cycles\": %d, \"host_ns\": %d, \
       \"minor_words\": %.0f, \"ops\": %d, \"minor_words_per_op\": %.4f }\n"
    raw_cycles raw_host_ns raw_words raw_ops raw_words_per_op;
  pf "  },\n";
  pf "  \"ab\": {\n";
  pf "    \"sched_fast_path\": { \"sim_cycles\": %d, \"on_host_ns\": %d, \
       \"off_host_ns\": %d, \"speedup\": %.2f },\n"
    (fst cy_on) fast_on_ns fast_off_ns
    (float_of_int fast_off_ns /. float_of_int (max 1 fast_on_ns));
  pf "    \"soa_unboxed_access\": { \"sim_cycles\": %d, \"on_host_ns\": %d, \
       \"off_host_ns\": %d, \"speedup\": %.2f, \"on_minor_words\": %.0f, \
       \"off_minor_words\": %.0f },\n"
    soa_cycles soa_on_ns soa_off_ns
    (float_of_int soa_off_ns /. float_of_int (max 1 soa_on_ns))
    soa_on_words soa_off_words;
  pf "    \"sweep_suite_jobs\": { \"jobs\": %d, \"jobs1_host_ns\": %d, \
       \"jobsn_host_ns\": %d, \"speedup\": %.2f },\n"
    jobs suite_j1_ns suite_jn_ns
    (float_of_int suite_j1_ns /. float_of_int (max 1 suite_jn_ns));
  pf "    \"history_recording\": { \"sim_cycles\": %d, \"on_host_ns\": %d, \
       \"off_host_ns\": %d, \"overhead\": %.2f, \"on_minor_words\": %.0f, \
       \"off_minor_words\": %.0f, \"ops_recorded\": %d },\n"
    hr_on.Workload.Runner.elapsed_cycles hr_on_ns hr_off_ns
    (float_of_int hr_on_ns /. float_of_int (max 1 hr_off_ns))
    hr_on_words hr_off_words hr_ops;
  pf "    \"trace_recording\": { \"sim_cycles\": %d, \"on_host_ns\": %d, \
       \"off_host_ns\": %d, \"overhead\": %.2f, \"on_minor_words\": %.0f, \
       \"off_minor_words\": %.0f, \"events_emitted\": %d },\n"
    tc_on.Workload.Runner.elapsed_cycles tc_on_ns tc_off_ns
    (float_of_int tc_on_ns /. float_of_int (max 1 tc_off_ns))
    tc_on_words tc_off_words tc_events;
  pf "    \"quantum_batching\": { \"sim_cycles\": %d, \"total_steps\": %d, \
       \"on_host_ns\": %d, \"off_host_ns\": %d, \"slice_only_host_ns\": %d, \
       \"speedup\": %.2f, \"speedup_vs_slice_only\": %.2f, \
       \"on_minor_words\": %.0f, \"slice_only_minor_words\": %.0f },\n"
    (fst qb_on) (snd qb_on) qb_on_ns qb_off_ns qb_slice_ns qb_speedup
    (float_of_int qb_slice_ns /. float_of_int (max 1 qb_on_ns))
    qb_on_words qb_slice_words;
  pf "    \"quantum_crash_campaign\": { \"crash_points\": %d, \"crashes\": %d, \
       \"violations\": %d, \"on_host_ns\": %d, \"off_host_ns\": %d, \
       \"speedup\": %.2f },\n"
    qc_on.Workload.Fault_injector.total qc_on.Workload.Fault_injector.crashes
    qc_on.Workload.Fault_injector.violations qc_on_ns qc_off_ns
    (float_of_int qc_off_ns /. float_of_int (max 1 qc_on_ns));
  pf "    \"shard_service\": { \"sim_cycles\": %d, \"t_down\": %d, \
       \"t_up\": %d, \"recovery_cycles\": %d, \"rescued_lines\": %d, \
       \"served\": %d, \"shed\": %d, \"timed_out\": %d, \
       \"crash_host_ns\": %d, \"baseline_host_ns\": %d },\n"
    sv_victim.Service.Serve.elapsed_cycles sv_rec.Service.Serve.t_down
    sv_rec.Service.Serve.t_up sv_rec.Service.Serve.recovery_cycles
    sv_rec.Service.Serve.rescued_lines sv_served sv_shed sv_timed_out
    sv_crash_ns sv_base_ns;
  (let _, _, _, inc60 = List.nth rs_curve 1 in
   pf "    \"recovery_scaling\": { \"sim_cycles\": %d, \
       \"parallel_sim_cycles\": %d, \"objects\": %d, \"eager_host_ns\": %d, \
       \"parallel_host_ns\": %d, \"host_speedup\": %.2f, \
       \"incremental_outage_cycles\": %d, \
       \"incremental_background_cycles\": %d, \"jobs_identity\": true },\n"
     rs_big_eager.RS.outage_cycles rs_big_par.RS.outage_cycles rs_big
     (rs_host_ns rs_big_eager) (rs_host_ns rs_big_par) rs_speedup
     inc60.RS.outage_cycles inc60.RS.background_cycles);
  pf "    \"fence_frontier\": { \"sim_cycles\": %d, \
      \"nvtraverse_flushes_per_op\": %.3f, \"logflush_flushes_per_op\": %.3f, \
      \"nonblocking_flushes_per_op\": %.3f, \"nvtraverse_miters\": %.2f, \
      \"logflush_miters\": %.2f, \"jobs1_host_ns\": %d, \
      \"jobsn_host_ns\": %d, \"jobs_identity\": true },\n"
    (List.fold_left
       (fun a (r : Workload.Frontier.row) ->
         a + r.Workload.Frontier.elapsed_cycles)
       0 ff_rows)
    ff_nvt.Workload.Frontier.flushes_per_op
    ff_lf.Workload.Frontier.flushes_per_op
    ff_nb.Workload.Frontier.flushes_per_op ff_nvt.Workload.Frontier.miters
    ff_lf.Workload.Frontier.miters ff_j1_ns ff_jn_ns;
  pf "    \"hist_instrumentation\": { \"sim_cycles\": %d, \
       \"traced_sim_cycles_match\": true, \"adds\": %d, \"host_ns\": %d, \
       \"minor_words\": %.0f, \"minor_words_per_add\": %.4f, \"p50\": %d, \
       \"p99\": %d, \"p999\": %d }\n"
    tc_on.Workload.Runner.elapsed_cycles hi_ops hi_ns hi_words
    hi_words_per_op
    (Obs.Hist.quantile hi_h 0.5)
    (Obs.Hist.quantile hi_h 0.99)
    (Obs.Hist.quantile hi_h 0.999);
  pf "  }\n";
  pf "}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Fmt.pr "quick bench: %d cells -> %s@." (List.length cells + 1) out;
  Fmt.pr "  sched fast path: %.2fx host speedup (identical sim cycles)@."
    (float_of_int fast_off_ns /. float_of_int (max 1 fast_on_ns));
  Fmt.pr
    "  soa/unboxed access: %.2fx host speedup, %.4f minor words/op \
     (identical sim cycles)@."
    (float_of_int soa_off_ns /. float_of_int (max 1 soa_on_ns))
    raw_words_per_op;
  Fmt.pr "  sweep suite --jobs %d vs --jobs 1: %.2fx (host has %d cores)@."
    jobs
    (float_of_int suite_j1_ns /. float_of_int (max 1 suite_jn_ns))
    (Workload.Parallel.default_jobs ());
  Fmt.pr
    "  history recording: %.2fx host overhead, %d ops recorded (identical \
     sim cycles)@."
    (float_of_int hr_on_ns /. float_of_int (max 1 hr_off_ns))
    hr_ops;
  Fmt.pr
    "  event tracing: %.2fx host overhead, %d events emitted (identical sim \
     cycles)@."
    (float_of_int tc_on_ns /. float_of_int (max 1 tc_off_ns))
    tc_events;
  Fmt.pr
    "  quantum batching: %.2fx host speedup vs per-op scheduling, %.2fx vs \
     slice-only (identical sim cycles)@."
    qb_speedup
    (float_of_int qb_slice_ns /. float_of_int (max 1 qb_on_ns));
  Fmt.pr
    "  quantum crash campaign: %d crash points, identical verdict ledger, \
     %.2fx host speedup@."
    qc_on.Workload.Fault_injector.total
    (float_of_int qc_off_ns /. float_of_int (max 1 qc_on_ns));
  Fmt.pr
    "  shard service: victim down %d cycles (%d lines rescued), survivors \
     byte-identical to the crash-free run@."
    sv_rec.Service.Serve.recovery_cycles sv_rec.Service.Serve.rescued_lines;
  Fmt.pr
    "  recovery at scale: 10^6 objects, %.2fx host speedup parallel vs \
     eager (identical heap images; incremental outage %d cycles vs %d)@."
    rs_speedup
    (let _, _, _, inc60 = List.nth rs_curve 1 in
     inc60.RS.outage_cycles)
    (let _, eager60, _, _ = List.nth rs_curve 1 in
     eager60.RS.outage_cycles);
  Fmt.pr
    "  fence frontier: nvtraverse %.3f flushes/op at %.2f Miters/s vs \
     log-flush %.3f at %.2f (rows identical across --jobs)@."
    ff_nvt.Workload.Frontier.flushes_per_op ff_nvt.Workload.Frontier.miters
    ff_lf.Workload.Frontier.flushes_per_op ff_lf.Workload.Frontier.miters;
  Fmt.pr
    "  hist instrumentation: %.1f ns/add, %.4f minor words/add (traced run \
     sim-cycle-identical to untraced)@."
    (float_of_int hi_ns /. float_of_int hi_ops)
    hi_words_per_op;
  compare_with_previous ~out ~mode:compare_mode

(* --- Entry point --- *)

let usage () =
  prerr_endline
    "usage: bench [--quick] [--jobs N|auto] [--out FILE] [--compare FILE] \
     [--no-compare]\n\
     \  (no flags)      full run: paper reproduction + Bechamel microbenchmarks\n\
     \  --quick         reduced cell set; writes a BENCH JSON snapshot and exits\n\
     \  --jobs N|auto   fan independent cells across N domains; auto (the\n\
     \                  default) clamps to the host's cores and runs\n\
     \                  sequentially when that is 1\n\
     \  --out FILE      where --quick writes its JSON (default BENCH_9.json)\n\
     \  --compare FILE  diff --quick host throughput against FILE instead of\n\
     \                  the newest committed BENCH_*.json\n\
     \  --no-compare    skip the throughput delta report";
  exit 2

let () =
  let quick = ref false and jobs = ref None and out = ref "BENCH_9.json" in
  let compare_mode = ref Auto in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--jobs" :: "auto" :: rest -> jobs := None; parse rest
    | "--jobs" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := Some n; parse rest
        | _ -> usage ()
      end
    | "--out" :: f :: rest -> out := f; parse rest
    | "--compare" :: f :: rest -> compare_mode := Compare_with f; parse rest
    | "--no-compare" :: rest -> compare_mode := No_compare; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !quick then run_quick ~jobs:!jobs ~out:!out ~compare_mode:!compare_mode
  else begin
    reproduce_table1 ?jobs:!jobs ();
    reproduce_sweeps ?jobs:!jobs ();
    reproduce_fault_summary ?jobs:!jobs ();
    Fmt.pr "==================================================================@.";
    Fmt.pr "Part 2: Bechamel microbenchmarks (host wall time of the simulator)@.";
    Fmt.pr "==================================================================@.@.";
    run_bechamel
      (bench_pmem_ops () @ bench_heap_ops () @ bench_skiplist_ops ()
     @ bench_undo_log () @ bench_table1_cells ())
  end
