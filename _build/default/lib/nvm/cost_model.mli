(** Conversions between simulated cycles and reported metrics. *)

val seconds : Config.t -> cycles:int -> float
(** Simulated wall time for [cycles] at the platform's clock rate. *)

val miter_per_sec : Config.t -> iterations:int -> cycles:int -> float
(** Millions of iterations per second — the metric of Table 1. *)

val pp_cycles : Format.formatter -> int -> unit
(** Human-readable cycle count (e.g. ["1.25 Mcy"]). *)
