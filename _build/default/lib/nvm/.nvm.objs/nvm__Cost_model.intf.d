lib/nvm/cost_model.mli: Config Format
