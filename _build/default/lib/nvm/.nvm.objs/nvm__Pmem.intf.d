lib/nvm/pmem.mli: Config Stats
