lib/nvm/stats.mli: Fmt
