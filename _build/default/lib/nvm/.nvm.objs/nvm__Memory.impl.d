lib/nvm/memory.ml: Bytes Fmt List String
