lib/nvm/cache.ml: Array List Option
