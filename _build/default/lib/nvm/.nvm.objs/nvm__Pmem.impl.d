lib/nvm/pmem.ml: Cache Config Fmt Hashtbl Int64 List Memory Option Queue Stats
