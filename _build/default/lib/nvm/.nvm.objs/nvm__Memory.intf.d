lib/nvm/memory.mli:
