lib/nvm/cache.mli:
