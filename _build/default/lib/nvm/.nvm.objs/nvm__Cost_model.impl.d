lib/nvm/cost_model.ml: Config Fmt
