type way = { mutable tag : int; mutable dirty : bool; mutable stamp : int }
(* [tag] is the line number (addr / line_size), or -1 when the way is
   empty.  [stamp] implements LRU: lower stamp = least recently used. *)

type t = {
  sets : way array array;
  line_size : int;
  n_sets : int;
  write_back : int -> unit;
  mutable tick : int;
}

type access = Hit | Miss of { evicted_dirty : bool }

let create ~sets ~ways ~line_size ~write_back =
  let make_set _ =
    Array.init ways (fun _ -> { tag = -1; dirty = false; stamp = 0 })
  in
  {
    sets = Array.init sets make_set;
    line_size;
    n_sets = sets;
    write_back;
    tick = 0;
  }

let line_of t addr = addr / t.line_size
let set_of t line = line mod t.n_sets

let find_way t line =
  let set = t.sets.(set_of t line) in
  let rec go i =
    if i >= Array.length set then None
    else if set.(i).tag = line then Some set.(i)
    else go (i + 1)
  in
  go 0

let next_stamp t =
  t.tick <- t.tick + 1;
  t.tick

let lru_way set =
  let best = ref set.(0) in
  Array.iter (fun w -> if w.stamp < !best.stamp then best := w) set;
  !best

let touch t ~addr ~dirty =
  let line = line_of t addr in
  match find_way t line with
  | Some w ->
      w.stamp <- next_stamp t;
      if dirty then w.dirty <- true;
      Hit
  | None ->
      let set = t.sets.(set_of t line) in
      let victim = lru_way set in
      let evicted_dirty = victim.tag >= 0 && victim.dirty in
      if evicted_dirty then t.write_back (victim.tag * t.line_size);
      victim.tag <- line;
      victim.dirty <- dirty;
      victim.stamp <- next_stamp t;
      Miss { evicted_dirty }

let flush_line t ~addr =
  let line = line_of t addr in
  match find_way t line with
  | Some w when w.dirty ->
      t.write_back (line * t.line_size);
      w.dirty <- false;
      true
  | Some _ | None -> false

let dirty_lines t =
  let acc = ref [] in
  Array.iter
    (fun set ->
      Array.iter
        (fun w -> if w.tag >= 0 && w.dirty then acc := (w.tag * t.line_size) :: !acc)
        set)
    t.sets;
  List.sort compare !acc

let write_back_all t =
  let n = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          if w.tag >= 0 && w.dirty then begin
            t.write_back (w.tag * t.line_size);
            w.dirty <- false;
            incr n
          end)
        set)
    t.sets;
  !n

let drop_all t =
  let lost = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          if w.tag >= 0 && w.dirty then incr lost;
          w.tag <- -1;
          w.dirty <- false;
          w.stamp <- 0)
        set)
    t.sets;
  !lost

let cached t ~addr = Option.is_some (find_way t (line_of t addr))

let is_dirty t ~addr =
  match find_way t (line_of t addr) with
  | Some w -> w.dirty
  | None -> false
