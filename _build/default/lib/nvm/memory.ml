type t = { current : Bytes.t; durable : Bytes.t; size : int }

let create ~size =
  { current = Bytes.make size '\000'; durable = Bytes.make size '\000'; size }

let size t = t.size

let check t addr =
  if addr < 0 || addr + 8 > t.size then
    Fmt.invalid_arg "Memory: word address %d out of bounds (size %d)" addr
      t.size;
  if addr land 7 <> 0 then
    Fmt.invalid_arg "Memory: word address %d not 8-byte aligned" addr

let load t addr =
  check t addr;
  Bytes.get_int64_le t.current addr

let store t addr v =
  check t addr;
  Bytes.set_int64_le t.current addr v

let load_durable t addr =
  check t addr;
  Bytes.get_int64_le t.durable addr

let write_back t ~line_addr ~len =
  Bytes.blit t.current line_addr t.durable line_addr len

let discard_current t = Bytes.blit t.durable 0 t.current 0 t.size
let promote_all t = Bytes.blit t.current 0 t.durable 0 t.size

let blit_string t addr s =
  Bytes.blit_string s 0 t.current addr (String.length s);
  Bytes.blit_string s 0 t.durable addr (String.length s)

let diff_lines t ~line_size =
  let n = t.size / line_size in
  let differs i =
    let off = i * line_size in
    not
      (String.equal
         (Bytes.sub_string t.current off line_size)
         (Bytes.sub_string t.durable off line_size))
  in
  List.filter differs (List.init n (fun i -> i))
  |> List.map (fun i -> i * line_size)
