let seconds cfg ~cycles = float_of_int cycles /. (cfg.Config.ghz *. 1e9)

let miter_per_sec cfg ~iterations ~cycles =
  if cycles = 0 then nan
  else float_of_int iterations /. seconds cfg ~cycles /. 1e6

let pp_cycles ppf cycles =
  let f = float_of_int cycles in
  if f >= 1e9 then Fmt.pf ppf "%.2f Gcy" (f /. 1e9)
  else if f >= 1e6 then Fmt.pf ppf "%.2f Mcy" (f /. 1e6)
  else if f >= 1e3 then Fmt.pf ppf "%.2f kcy" (f /. 1e3)
  else Fmt.pf ppf "%d cy" cycles
