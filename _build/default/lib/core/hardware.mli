(** Capability descriptions of the hardware/OS platforms the paper's
    Section 3 surveys.  The TSP decision procedure ({!Policy}) consumes
    these to determine, per failure class, whether costly failure-free
    precautions can be replaced by a crash-time rescue. *)

type memory_tech =
  | Dram  (** volatile; contents lost when power is lost *)
  | Nvdimm
      (** DRAM persisted to on-DIMM flash by supercapacitor on power loss *)
  | Nvram  (** inherently non-volatile (PCM, STT-MRAM, memristor) *)

type t = {
  name : string;
  memory : memory_tech;
  nonvolatile_caches : bool;  (** Kiln-style persistent CPU caches *)
  file_backed_mapping : bool;
      (** OS provides POSIX MAP_SHARED kernel persistence (Appendix A) *)
  panic_flush_handler : bool;
      (** kernel panic path flushes CPU caches (the HP Linux patch) *)
  panic_dump_to_storage : bool;
      (** panic path can also write memory to stable storage *)
  warm_reboot_preserves_dram : bool;  (** Rio-style memory preservation *)
  ups : bool;  (** external uninterruptible power supply *)
  residual_energy_j : float;
      (** PSU residue usable after utility power fails (WSP stage 1) *)
  supercap_energy_j : float;
      (** supercapacitor energy (WSP stage 2 / NVDIMM save) *)
  cache_kb : int;  (** volatile CPU cache data to rescue *)
  dram_gb : int;  (** DRAM contents to rescue when evacuating *)
  dram_bandwidth_gb_s : float;
  flash_bandwidth_mb_s : float;
  storage_bandwidth_mb_s : float;  (** stable block storage *)
  rescue_power_w : float;  (** draw while performing a rescue *)
}

val conventional_server : t
(** Volatile DRAM, block storage, stock kernel: the pre-NVM baseline. *)

val mmap_posix_server : t
(** As {!conventional_server} — named to emphasise that POSIX file-backed
    mappings alone already make process crashes a TSP case. *)

val panic_hardened_server : t
(** Conventional hardware plus the patched panic handler that flushes
    caches and dumps memory to storage. *)

val ups_server : t
(** Conventional hardware behind a UPS. *)

val wsp_machine : t
(** The Whole-System Persistence design point: PSU residual energy for
    stage 1 and supercapacitors sized for a DRAM-to-flash stage 2. *)

val nvdimm_server : t
(** Flash-backed NVDIMMs with on-DIMM supercaps; patched panic handler. *)

val nvram_machine : t
(** Inherently non-volatile memory on the bus; volatile caches. *)

val nvram_nvcache_machine : t
(** NVRAM plus non-volatile caches: nothing volatile remains. *)

val all : t list
val find : string -> t option
val pp : t Fmt.t
