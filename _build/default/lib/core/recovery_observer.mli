(** The recovery observer of Section 4.1, made executable.

    Pelley et al.'s recovery observer is a hypothetical thread created at
    the instant of a crash, observing the state of memory that recovery
    code will actually see.  The paper's argument is: under TSP, that
    state reflects a strict prefix of the stores issued by the terminated
    threads (in fact, all of them), and a non-blocking algorithm can by
    definition make correct progress from any such state.

    Given a journaling device ({!Nvm.Pmem.create} with [~journal:true]),
    this module checks the premise directly: did every issued store reach
    the durable image the observer reads? *)

type verdict = {
  total_stores : int;
  distinct_addresses : int;
  lost : int;  (** addresses whose final store is missing from durable *)
  prefix_ok : bool;  (** [lost = 0]: the observer sees all stores *)
}

val observe : Nvm.Pmem.t -> verdict
(** Call between [Pmem.crash] and [Pmem.recover] (or any time: the check
    compares the journal against the durable image). *)

val pp : verdict Fmt.t
