type t = Process_crash | Kernel_panic | Power_outage

let all = [ Process_crash; Kernel_panic; Power_outage ]

let to_string = function
  | Process_crash -> "process-crash"
  | Kernel_panic -> "kernel-panic"
  | Power_outage -> "power-outage"

let of_string = function
  | "process-crash" | "process" | "crash" | "sigkill" -> Ok Process_crash
  | "kernel-panic" | "kernel" | "panic" -> Ok Kernel_panic
  | "power-outage" | "power" | "outage" -> Ok Power_outage
  | s -> Error (Printf.sprintf "unknown failure class %S" s)

let pp ppf t = Fmt.string ppf (to_string t)

let severity = function
  | Process_crash -> 0
  | Kernel_panic -> 1
  | Power_outage -> 2

let compare a b = Int.compare (severity a) (severity b)
