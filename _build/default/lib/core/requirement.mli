(** Application fault-tolerance requirements (Section 3).

    Requirements must say {e which} failures are tolerated, {e what} data
    must survive them, and whether tolerated failures are fail-stop or
    may first corrupt application data (a memory-safety bug scribbling
    over the heap before the crash). *)

type scope =
  | Persistent_heap
      (** only data in the persistent heap is critical; thread stacks and
          other process state may be lost *)
  | Whole_process
      (** the entire process image must survive (WSP-style) *)

type integrity =
  | Fail_stop
      (** failures halt execution without corrupting the heap first *)
  | Corrupting_sections
      (** failures may corrupt data {e inside} an in-flight critical
          section; recovery must be able to roll the section back, which
          requires Atlas-style logging (Section 4.2) — non-blocking
          structures cannot undo a corrupted in-place update *)

type t = {
  tolerated : Failure_class.t list;
  scope : scope;
  integrity : integrity;
}

val default : t
(** Heap-scoped, fail-stop, tolerating all three failure classes. *)

val make :
  ?scope:scope -> ?integrity:integrity -> Failure_class.t list -> t

val mechanism : t -> [ `Non_blocking_suffices | `Needs_rollback ]
(** Which of the paper's two case-study mechanisms the requirement
    admits: with {!Corrupting_sections} tolerance, only the Atlas
    approach works (Section 4.2); under {!Fail_stop}, a non-blocking
    structure plus TSP needs no mechanism at all (Section 4.1). *)

val pp : t Fmt.t
