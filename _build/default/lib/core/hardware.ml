type memory_tech = Dram | Nvdimm | Nvram

type t = {
  name : string;
  memory : memory_tech;
  nonvolatile_caches : bool;
  file_backed_mapping : bool;
  panic_flush_handler : bool;
  panic_dump_to_storage : bool;
  warm_reboot_preserves_dram : bool;
  ups : bool;
  residual_energy_j : float;
  supercap_energy_j : float;
  cache_kb : int;
  dram_gb : int;
  dram_bandwidth_gb_s : float;
  flash_bandwidth_mb_s : float;
  storage_bandwidth_mb_s : float;
  rescue_power_w : float;
}

let base =
  {
    name = "base";
    memory = Dram;
    nonvolatile_caches = false;
    file_backed_mapping = true;
    panic_flush_handler = false;
    panic_dump_to_storage = false;
    warm_reboot_preserves_dram = false;
    ups = false;
    residual_energy_j = 0.;
    supercap_energy_j = 0.;
    cache_kb = 20 * 1024;
    dram_gb = 64;
    dram_bandwidth_gb_s = 20.;
    flash_bandwidth_mb_s = 500.;
    storage_bandwidth_mb_s = 200.;
    rescue_power_w = 150.;
  }

let conventional_server = { base with name = "conventional-server" }
let mmap_posix_server = { base with name = "mmap-posix-server" }

let panic_hardened_server =
  {
    base with
    name = "panic-hardened-server";
    panic_flush_handler = true;
    panic_dump_to_storage = true;
  }

let ups_server = { base with name = "ups-server"; ups = true }

let wsp_machine =
  {
    base with
    name = "wsp-machine";
    (* Narayanan & Hodson: tens of milliseconds of PSU residue suffice for
       registers+caches; supercaps sized for the DRAM-to-flash copy. *)
    residual_energy_j = 20.;
    supercap_energy_j = 25_000.;
    panic_flush_handler = true;
    flash_bandwidth_mb_s = 1000.;
  }

let nvdimm_server =
  {
    base with
    name = "nvdimm-server";
    memory = Nvdimm;
    panic_flush_handler = true;
    residual_energy_j = 20.;
    supercap_energy_j = 500.;  (* per-DIMM supercaps, built to suffice *)
  }

let nvram_machine =
  {
    base with
    name = "nvram-machine";
    memory = Nvram;
    panic_flush_handler = true;
    residual_energy_j = 10.;
  }

let nvram_nvcache_machine =
  {
    base with
    name = "nvram-nvcache-machine";
    memory = Nvram;
    nonvolatile_caches = true;
    panic_flush_handler = true;
  }

let all =
  [
    conventional_server;
    mmap_posix_server;
    panic_hardened_server;
    ups_server;
    wsp_machine;
    nvdimm_server;
    nvram_machine;
    nvram_nvcache_machine;
  ]

let find name = List.find_opt (fun h -> String.equal h.name name) all

let memory_to_string = function
  | Dram -> "DRAM"
  | Nvdimm -> "NVDIMM"
  | Nvram -> "NVRAM"

let pp ppf t =
  Fmt.pf ppf "%s (%s%s%s%s%s)" t.name (memory_to_string t.memory)
    (if t.nonvolatile_caches then ", NV caches" else "")
    (if t.panic_flush_handler then ", panic flush" else "")
    (if t.ups then ", UPS" else "")
    (if t.residual_energy_j > 0. || t.supercap_energy_j > 0. then
       ", standby energy"
     else "")
