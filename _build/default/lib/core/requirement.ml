type scope = Persistent_heap | Whole_process
type integrity = Fail_stop | Corrupting_sections

type t = {
  tolerated : Failure_class.t list;
  scope : scope;
  integrity : integrity;
}

let default =
  { tolerated = Failure_class.all; scope = Persistent_heap; integrity = Fail_stop }

let make ?(scope = Persistent_heap) ?(integrity = Fail_stop) tolerated =
  { tolerated; scope; integrity }

let mechanism t =
  match t.integrity with
  | Fail_stop -> `Non_blocking_suffices
  | Corrupting_sections -> `Needs_rollback

let scope_to_string = function
  | Persistent_heap -> "persistent-heap"
  | Whole_process -> "whole-process"

let integrity_to_string = function
  | Fail_stop -> "fail-stop"
  | Corrupting_sections -> "corrupting-sections"

let pp ppf t =
  Fmt.pf ppf "tolerate {%a}, scope %s, %s"
    Fmt.(list ~sep:comma Failure_class.pp)
    t.tolerated (scope_to_string t.scope)
    (integrity_to_string t.integrity)
