type verdict = {
  total_stores : int;
  distinct_addresses : int;
  lost : int;
  prefix_ok : bool;
}

let observe pmem =
  let history = Nvm.Pmem.store_history pmem in
  let last = Hashtbl.create 1024 in
  List.iter (fun (addr, v) -> Hashtbl.replace last addr v) history;
  let lost = Nvm.Pmem.lost_store_count pmem in
  {
    total_stores = List.length history;
    distinct_addresses = Hashtbl.length last;
    lost;
    prefix_ok = lost = 0;
  }

let pp ppf v =
  Fmt.pf ppf "observer: %d stores to %d addresses; %d lost -> %s"
    v.total_stores v.distinct_addresses v.lost
    (if v.prefix_ok then "full prefix visible" else "PREFIX BROKEN")
