(** The tolerated-failure classes the paper restricts itself to
    (Section 1): all single-machine, all fail-stop unless noted. *)

type t =
  | Process_crash
      (** SIGKILL, segmentation violation, illegal instruction, division
          by zero: all threads of one process halt abruptly; the OS and
          the machine keep running. *)
  | Kernel_panic
      (** The OS dies but has a last-gasp panic handler; the machine's
          memory may or may not survive the subsequent reboot. *)
  | Power_outage
      (** Utility power is lost; only components with standby energy can
          take action. *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : t Fmt.t

val severity : t -> int
(** A coarse order: each class destroys strictly more machine state than
    the previous one (process < kernel < power). *)

val compare : t -> t -> int
(** By {!severity}. *)
