lib/core/tsp.mli: Failure_class Fmt Hardware Nvm Policy Requirement
