lib/core/crash_executor.mli: Failure_class Fmt Hardware Nvm Policy
