lib/core/requirement.mli: Failure_class Fmt
