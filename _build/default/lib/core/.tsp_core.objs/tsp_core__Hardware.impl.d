lib/core/hardware.ml: Fmt List String
