lib/core/wsp.mli: Fmt Hardware
