lib/core/wsp.ml: Float Fmt Hardware List
