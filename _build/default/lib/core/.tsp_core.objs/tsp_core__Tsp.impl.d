lib/core/tsp.ml: Failure_class Fmt Hardware List Nvm Policy Requirement
