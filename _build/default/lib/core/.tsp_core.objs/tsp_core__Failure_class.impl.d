lib/core/failure_class.ml: Fmt Int Printf
