lib/core/hardware.mli: Fmt
