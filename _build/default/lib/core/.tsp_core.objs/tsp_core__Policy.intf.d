lib/core/policy.mli: Failure_class Fmt Hardware Nvm Requirement Wsp
