lib/core/failure_class.mli: Fmt
