lib/core/recovery_observer.mli: Fmt Nvm
