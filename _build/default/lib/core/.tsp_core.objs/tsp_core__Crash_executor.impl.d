lib/core/crash_executor.ml: Float Fmt Hardware List Nvm Policy Printf Wsp
