lib/core/policy.ml: Failure_class Fmt Hardware List Nvm Requirement Wsp
