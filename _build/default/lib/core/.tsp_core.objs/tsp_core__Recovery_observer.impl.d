lib/core/recovery_observer.ml: Fmt Hashtbl List Nvm
