lib/core/requirement.ml: Failure_class Fmt
