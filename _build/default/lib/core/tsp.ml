type runtime_plan = {
  hardware : Hardware.t;
  requirement : Requirement.t;
  verdicts : (Failure_class.t * Policy.verdict) list;
  obligation : Policy.runtime_obligation;
}

let plan hardware requirement =
  {
    hardware;
    requirement;
    verdicts = Policy.decide_requirement hardware requirement;
    obligation = Policy.weakest_runtime_obligation hardware requirement;
  }

let tsp_everywhere p = List.for_all (fun (_, v) -> Policy.is_tsp v) p.verdicts

let crash pmem ~hardware ~failure =
  let verdict = Policy.decide hardware failure in
  Nvm.Pmem.crash pmem (Policy.crash_mode verdict);
  verdict

let pp_plan ppf p =
  Fmt.pf ppf "@[<v>%a under %a:@ %a@ => failure-free obligation: %a@]"
    Requirement.pp p.requirement Hardware.pp p.hardware
    Fmt.(
      list ~sep:cut (fun ppf (fc, v) ->
          pf ppf "  %a: %a" Failure_class.pp fc Policy.pp_verdict v))
    p.verdicts Policy.pp_runtime_obligation p.obligation
