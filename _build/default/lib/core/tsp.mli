(** Facade tying the TSP decision procedure to a simulated device.

    Typical use: pick a {!Hardware.t} and a {!Requirement.t}, ask
    {!runtime_plan} what (if anything) must be done during failure-free
    operation, run the application accordingly, and when injecting a
    failure call {!crash} — the device then either rescues or discards
    its dirty lines exactly as that failure on that platform would. *)

type runtime_plan = {
  hardware : Hardware.t;
  requirement : Requirement.t;
  verdicts : (Failure_class.t * Policy.verdict) list;
  obligation : Policy.runtime_obligation;
}

val plan : Hardware.t -> Requirement.t -> runtime_plan

val tsp_everywhere : runtime_plan -> bool
(** All tolerated failure classes got TSP verdicts. *)

val crash :
  Nvm.Pmem.t -> hardware:Hardware.t -> failure:Failure_class.t -> Policy.verdict
(** Inject [failure] on [hardware]: decides the verdict, applies the
    corresponding {!Nvm.Pmem.crash} mode, and returns the verdict. *)

val pp_plan : runtime_plan Fmt.t
