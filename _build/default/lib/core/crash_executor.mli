(** Execute a TSP rescue plan against the simulated device.

    {!Policy.decide} names the crash-time actions; this module actually
    runs them when a failure is injected — flushing the dirty lines into
    the durable image for TSP verdicts, dropping them otherwise — and
    bills each action with the time and energy it would cost on the
    modelled hardware.  The bill is the "timely" and "sufficient" parts
    of TSP made concrete: a rescue is only a valid design if it fits the
    budget the hardware actually has at that moment (residual PSU
    energy, supercapacitors, panic-handler time). *)

type action_bill = {
  action : Policy.crash_action;
  seconds : float;
  energy_j : float;
  lines_involved : int;  (** dirty lines this action moved (if any) *)
}

type execution = {
  verdict : Policy.verdict;
  mode : Nvm.Pmem.crash_mode;
  bills : action_bill list;
  total_seconds : float;
  total_energy_j : float;
  rescued_lines : int;
  dropped_lines : int;
}

val execute :
  Nvm.Pmem.t ->
  hardware:Hardware.t ->
  failure:Failure_class.t ->
  execution
(** Decide the verdict for [failure] on [hardware], apply the
    corresponding {!Nvm.Pmem.crash} to the device, and bill the actions
    against the dirty-line count observed at the instant of the crash. *)

val pp_execution : execution Fmt.t
