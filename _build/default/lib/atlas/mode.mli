(** The three fortification levels measured in Table 1 of the paper. *)

type t =
  | No_log
      (** Unfortified native code: no logging, no flushing.  Fast, but a
          crash inside a critical section leaves the heap inconsistent —
          the baseline column of Table 1, and the negative control of the
          fault-injection experiments. *)
  | Log_only
      (** Atlas in TSP mode: undo logging without synchronous flushing.
          Sufficient for consistent recovery whenever TSP guarantees that
          a tolerated failure rescues dirty cache lines. *)
  | Log_flush
      (** Atlas without TSP, eager durability: every undo-log entry is
          synchronously flushed before the corresponding store, and an
          outermost critical section's data is flushed at commit. *)
  | Log_flush_async
      (** Atlas without TSP, deferred durability (closer to the original
          Atlas): log entries are still flushed synchronously, but a
          section's data is {e not} flushed at commit.  Instead a
          periodic durability point flushes all data dirtied by commits
          so far and advances a persistent watermark; recovery rolls
          back every section the watermark does not cover — including
          committed ones.  The ablation DESIGN.md calls out. *)

val all : t list
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : t Fmt.t

val logs : t -> bool
(** Whether the mode maintains an undo log at all. *)

val flushes : t -> bool
(** Whether the mode synchronously flushes log entries before stores. *)

val eager_data_flush : t -> bool
(** Whether a section's dirtied data is flushed at its commit. *)

val deferred_durability : t -> bool
(** Whether durability is granted in batches at durability points. *)
