(** Per-thread undo-log ring buffers in NVM.

    On-media layout of the log region:

    {v
    base+ 0  log magic ("TSPLOG11")
    base+ 8  number of thread buffers
    base+16  bytes per buffer
    base+64  descriptor for thread 0: [tail address | reserved]
    base+80  descriptor for thread 1 ...
    ...      buffers, one per thread, line-aligned
    v}

    Each buffer is a ring of 32-byte {!Log_entry} slots.  The persistent
    descriptor holds only the {e tail} (oldest unpruned entry); the head
    is rediscovered after a crash by scanning forward while entries are
    valid and their sequence numbers strictly increase.  The slot at the
    head is always kept with a zeroed header word (a sentinel), so a scan
    can never run off the fresh window into stale entries from a previous
    ring lap — without the sentinel, a stale [Begin] whose [Commit] had
    been overwritten would masquerade as an interrupted OCS and recovery
    would "roll back" a section that actually committed long ago. *)

type t

exception Log_full of { tid : int }
(** The writer caught up with the tail: unpruned entries fill the ring.
    Seen only under deep OCS nesting with undersized buffers. *)

val format : Nvm.Pmem.t -> base:int -> size:int -> num_threads:int -> t
(** Initialise (or re-initialise, after recovery) the log region:
    descriptors written, every tail at its buffer start, sentinels
    zeroed, and the formatting flushed — an empty log must be durable
    even without TSP. *)

val attach : Nvm.Pmem.t -> base:int -> t
(** Attach for recovery: reads the region header.
    @raise Invalid_argument if the magic does not match. *)

val num_threads : t -> int
val capacity_entries : t -> int

(** {1 Writer side (failure-free operation)} *)

val append : t -> tid:int -> Log_entry.t -> int
(** Write an entry at the head of [tid]'s ring, advance the head and
    re-plant the sentinel.  Returns the entry's address.
    @raise Log_full when the ring has no free slot. *)

val flush_entry : t -> entry_addr:int -> unit
(** Synchronously persist an appended entry {e and} its sentinel: flush
    the entry's line, flush the sentinel's line when it differs, fence.
    This — per entry, before the guarded store — is exactly the overhead
    TSP removes. *)

val advance_tail : t -> tid:int -> new_tail:int -> flush:bool -> unit
(** Prune: move [tid]'s persistent tail to [new_tail] (the address one
    past a stable segment, wrapped).  [flush] persists the descriptor
    synchronously (Log_flush mode). *)

val next_slot : t -> int -> int
(** Ring successor of an entry address. *)

val tail : t -> tid:int -> int
val live_entries : t -> tid:int -> int
(** Entries currently between tail and head of [tid]'s ring. *)

val set_watermark : t -> int -> unit
(** Persist the durability watermark: the highest commit sequence whose
    section data has reached the persistence domain.  Synchronous
    (flush + fence): the watermark must never run ahead of the data. *)

val watermark : t -> int
(** Current persistent watermark; -1 when the mode does not use one. *)

(** {1 Recovery side} *)

val scan_thread : t -> tid:int -> Log_entry.t list
(** The valid window of [tid]'s ring in append order: from the persistent
    tail forward while entries decode and sequence numbers strictly
    increase, stopping at the sentinel. *)
