(** Undo-log entry codec.

    Entries are exactly four words (32 bytes) so they never straddle more
    than one cache-line boundary and the ring arithmetic stays trivial:

    {v  w0: [ magic:8 | type:8 | checksum:16 | tid:32 ]
        w1: global sequence number
        w2: payload a
        w3: payload b v}

    The checksum covers w1..w3 and the type, making entries
    self-validating: recovery can scan a log forward and recognise where
    the valid window ends without trusting a separately-persisted head
    pointer.  A torn entry (some words persisted, some lost in a non-TSP
    crash) fails the checksum; a stale entry from a previous ring lap
    breaks the strictly-increasing-sequence rule. *)

type payload =
  | Begin of { ocs : int }  (** an outermost critical section opened *)
  | Update of { addr : int; old : int64 }
      (** first store of this OCS to [addr]; [old] restores it on rollback *)
  | Dep of { on_ocs : int; mutex : int }
      (** the running OCS acquired [mutex], last released by [on_ocs]: if
          [on_ocs] rolls back, so must this OCS (the Section 2.3 hazard) *)
  | Commit of { ocs : int }

type t = { seq : int; tid : int; payload : payload }

val bytes : int
(** Size of an encoded entry: 32. *)

val write : (int -> int64 -> unit) -> at:int -> t -> unit
(** Encode [t] into four word stores starting at address [at]. *)

val read : (int -> int64) -> at:int -> t option
(** Decode and validate; [None] if magic or checksum fail. *)

val pp : t Fmt.t
