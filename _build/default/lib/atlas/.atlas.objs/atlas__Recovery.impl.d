lib/atlas/recovery.ml: Fmt Hashtbl List Log_entry Nvm Pheap Printf Undo_log
