lib/atlas/mode.ml: Fmt Printf
