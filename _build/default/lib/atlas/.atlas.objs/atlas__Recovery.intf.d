lib/atlas/recovery.mli: Fmt Pheap
