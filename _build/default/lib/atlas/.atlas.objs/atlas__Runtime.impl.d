lib/atlas/runtime.ml: Array Fmt Hashtbl Int64 List Log_entry Mode Nvm Option Pheap Queue Sched Undo_log
