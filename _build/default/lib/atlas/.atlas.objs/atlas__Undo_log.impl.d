lib/atlas/undo_log.ml: Array Fmt Int64 List Log_entry Nvm
