lib/atlas/undo_log.mli: Log_entry Nvm
