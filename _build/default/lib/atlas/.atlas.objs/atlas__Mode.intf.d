lib/atlas/mode.mli: Fmt
