lib/atlas/log_entry.ml: Fmt Int64 Option
