lib/atlas/log_entry.mli: Fmt
