lib/atlas/runtime.mli: Mode Pheap Sched Undo_log
