(** Atlas-like crash-resilience runtime for mutex-based multithreaded
    programs over a persistent heap (Section 4.2 of the paper).

    The runtime assumes the target program already uses mutexes correctly
    for isolation and adds, transparently from the program's point of
    view, failure atomicity at the granularity of {e outermost critical
    sections} (OCS): the span from a thread's first lock acquisition at
    nesting depth zero to the matching release.  Each OCS is assumed to
    take the heap from one application-consistent state to another.

    Three mechanisms implement this, mirroring the original system:

    - {b Undo logging}: before an OCS's first store to a given word, the
      word's prior value is appended to the thread's persistent log.
    - {b Dependency tracking}: if an OCS acquires a mutex last released
      by an OCS that is not yet known stable, a [Dep] record is logged;
      recovery uses these edges to roll back {e committed} sections that
      observed data of sections being rolled back (the hazard of §2.3 of
      the Atlas paper).
    - {b Log pruning}: a committed OCS whose transitive dependencies are
      all stable can never be rolled back, so its log segment is
      discarded, bounding log space.

    The {!Mode.t} chosen at creation decides the cost profile measured in
    Table 1: [No_log] does none of the above; [Log_only] relies on TSP to
    make the log durable at crash time; [Log_flush] synchronously flushes
    every log entry before the guarded store and an OCS's data at commit
    — the overhead TSP exists to eliminate. *)

type t
type ctx
(** Per-thread handle; also usable single-threaded. *)

type amutex
(** An Atlas-wrapped simulated mutex. *)

type costs = {
  lock_cycles : int;  (** charged on every lock acquisition *)
  unlock_cycles : int;  (** charged on every release *)
  log_cycles : int;  (** bookkeeping charged per appended log entry *)
}

val default_costs : costs
(** 30 / 20 / 45 cycles: a CAS-based lock handoff and the instruction
    footprint of Atlas's logging fast path. *)

val create :
  ?costs:costs ->
  ?first_seq:int ->
  ?checkpoint_every:int ->
  mode:Mode.t ->
  heap:Pheap.Heap.t ->
  log_base:int ->
  log_size:int ->
  num_threads:int ->
  unit ->
  t
(** Build a runtime and format the undo-log region.  [first_seq] seeds
    the global entry sequence (pass one past the maximum recovered
    sequence when restarting after a crash). *)

val mode : t -> Mode.t
val heap : t -> Pheap.Heap.t
val log : t -> Undo_log.t
val thread_ctx : t -> tid:int -> ctx
val make_mutex : t -> Sched.Scheduler.t -> amutex
val mutex_id : amutex -> int

(** {1 The instrumented program interface} *)

val lock : t -> ctx -> amutex -> unit
val unlock : t -> ctx -> amutex -> unit

val with_lock : t -> ctx -> amutex -> (unit -> 'a) -> 'a
(** [lock]; run; [unlock] — including on exception. *)

val store : t -> ctx -> int -> int64 -> unit
(** Instrumented store to an absolute heap address: logs the prior value
    on the first store to that word within the current OCS (in logging
    modes), then stores.
    @raise Invalid_argument in logging modes outside any critical
    section — shared persistent data may only be modified under a
    mutex. *)

val load : t -> int -> int64
(** Plain load (reads need no instrumentation). *)

val store_field : t -> ctx -> Pheap.Heap.addr -> int -> int64 -> unit
val store_field_int : t -> ctx -> Pheap.Heap.addr -> int -> int -> unit
val load_field : t -> Pheap.Heap.addr -> int -> int64
val load_field_int : t -> Pheap.Heap.addr -> int -> int

(** {1 Introspection (tests and reports)} *)

val ocs_depth : ctx -> int
val current_ocs : ctx -> int option
val live_log_entries : t -> tid:int -> int
val ocs_started : t -> int
(** Total OCSes begun so far. *)

(** {1 Deferred durability (Log_flush_async)} *)

val checkpoint : t -> unit
(** Force a durability point now: flush all data dirtied by commits
    since the last point, advance the persistent watermark along the
    stable prefix of pending commits, and prune their log segments.
    Called automatically every [checkpoint_every] commits. *)

val watermark : t -> int
(** The persistent durability watermark (-1 outside async mode). *)

val pending_commits : t -> int
(** Committed sections not yet covered by the watermark. *)

val unpruned_ocses : t -> int
(** OCS records still retained (not yet proven stable). *)
