(** Atlas recovery: restore the persistent heap to a consistent state
    after a crash, using the undo logs.

    The pass runs after {!Nvm.Pmem.recover} has installed the durable
    image.  It scans every thread's log window, reconstructs the set of
    outermost critical sections and their dependency edges, computes the
    rollback closure — every section that was interrupted by the crash,
    plus, transitively, every {e committed} section that depended on one
    being rolled back — and applies the affected [Update] entries in
    reverse global order.  It finishes by persisting its own repairs.

    Callers normally follow with {!Pheap.Heap_gc.collect} to reclaim
    objects orphaned by the crash or by the rollback itself, and with
    {!Undo_log.format} (via a fresh {!Runtime.create}) before resuming. *)

type report = {
  log_entries : int;  (** valid entries scanned across all threads *)
  ocses : int;  (** distinct sections seen in the logs *)
  committed : int;
  incomplete : int;  (** sections interrupted by the crash *)
  cascaded : int;  (** committed sections rolled back via dependencies *)
  updates_applied : int;
  updates_skipped : int;  (** entries whose target address failed validation *)
  max_seq : int;  (** highest sequence seen; seed for the next runtime *)
  anomalies : string list;
      (** structurally unexpected log content — empty under TSP, possibly
          non-empty after a non-TSP crash lost log writes *)
}

val run : heap:Pheap.Heap.t -> log_base:int -> report
(** Perform rollback.  The heap's device must not be in the crashed
    state (call {!Nvm.Pmem.recover} first). *)

val pp_report : report Fmt.t
