type t = No_log | Log_only | Log_flush | Log_flush_async

let all = [ No_log; Log_only; Log_flush; Log_flush_async ]

let to_string = function
  | No_log -> "no-log"
  | Log_only -> "log-only"
  | Log_flush -> "log-flush"
  | Log_flush_async -> "log-flush-async"

let of_string = function
  | "no-log" | "nolog" | "native" -> Ok No_log
  | "log-only" | "log" | "tsp" -> Ok Log_only
  | "log-flush" | "flush" | "no-tsp" -> Ok Log_flush
  | "log-flush-async" | "async" | "deferred" -> Ok Log_flush_async
  | s -> Error (Printf.sprintf "unknown Atlas mode %S" s)

let pp ppf t = Fmt.string ppf (to_string t)

let logs = function
  | No_log -> false
  | Log_only | Log_flush | Log_flush_async -> true

let flushes = function
  | Log_flush | Log_flush_async -> true
  | No_log | Log_only -> false

let eager_data_flush = function
  | Log_flush -> true
  | No_log | Log_only | Log_flush_async -> false

let deferred_durability = function
  | Log_flush_async -> true
  | No_log | Log_only | Log_flush -> false
