type payload =
  | Begin of { ocs : int }
  | Update of { addr : int; old : int64 }
  | Dep of { on_ocs : int; mutex : int }
  | Commit of { ocs : int }

type t = { seq : int; tid : int; payload : payload }

let bytes = 32
let magic = 0xE7

let type_code = function
  | Begin _ -> 1
  | Update _ -> 2
  | Dep _ -> 3
  | Commit _ -> 4

let payload_words = function
  | Begin { ocs } -> (Int64.of_int ocs, 0L)
  | Update { addr; old } -> (Int64.of_int addr, old)
  | Dep { on_ocs; mutex } -> (Int64.of_int on_ocs, Int64.of_int mutex)
  | Commit { ocs } -> (Int64.of_int ocs, 0L)

let checksum ~ty ~seq ~a ~b =
  let fold v =
    let v = Int64.logxor v (Int64.shift_right_logical v 32) in
    let v = Int64.logxor v (Int64.shift_right_logical v 16) in
    Int64.to_int v land 0xffff
  in
  fold (Int64.logxor (Int64.of_int (ty lsl 8)) (Int64.logxor seq (Int64.logxor a b)))

let write store ~at e =
  let ty = type_code e.payload in
  let a, b = payload_words e.payload in
  let seq = Int64.of_int e.seq in
  let ck = checksum ~ty ~seq ~a ~b in
  let w0 =
    Int64.logor
      (Int64.shift_left (Int64.of_int magic) 56)
      (Int64.logor
         (Int64.shift_left (Int64.of_int ty) 48)
         (Int64.logor
            (Int64.shift_left (Int64.of_int ck) 32)
            (Int64.of_int (e.tid land 0xffffffff))))
  in
  store (at + 8) seq;
  store (at + 16) a;
  store (at + 24) b;
  (* Header last: a torn entry whose header never made it is simply
     invisible rather than mis-checksummed. *)
  store at w0

let read load ~at =
  let w0 = load at in
  let m = Int64.to_int (Int64.shift_right_logical w0 56) land 0xff in
  if m <> magic then None
  else
    let ty = Int64.to_int (Int64.shift_right_logical w0 48) land 0xff in
    let ck = Int64.to_int (Int64.shift_right_logical w0 32) land 0xffff in
    let tid = Int64.to_int (Int64.logand w0 0xffffffffL) in
    let seq64 = load (at + 8) in
    let a = load (at + 16) in
    let b = load (at + 24) in
    if checksum ~ty ~seq:seq64 ~a ~b <> ck then None
    else
      let seq = Int64.to_int seq64 in
      let payload =
        match ty with
        | 1 -> Some (Begin { ocs = Int64.to_int a })
        | 2 -> Some (Update { addr = Int64.to_int a; old = b })
        | 3 -> Some (Dep { on_ocs = Int64.to_int a; mutex = Int64.to_int b })
        | 4 -> Some (Commit { ocs = Int64.to_int a })
        | _ -> None
      in
      Option.map (fun payload -> { seq; tid; payload }) payload

let pp ppf e =
  let p ppf = function
    | Begin { ocs } -> Fmt.pf ppf "begin ocs=%d" ocs
    | Update { addr; old } -> Fmt.pf ppf "update addr=%d old=%Ld" addr old
    | Dep { on_ocs; mutex } -> Fmt.pf ppf "dep on=%d mutex=%d" on_ocs mutex
    | Commit { ocs } -> Fmt.pf ppf "commit ocs=%d" ocs
  in
  Fmt.pf ppf "[seq=%d tid=%d %a]" e.seq e.tid p e.payload
