(** Registry of object kinds.

    The recovery-time garbage collector must know which words of an object
    hold heap pointers.  Each data structure registers its node layouts
    here once (at module initialisation); the kind id is stored in every
    object header, making the heap self-describing across crashes.

    A [scan] function receives a word reader and the object's address and
    size and returns the addresses the object points to.  It must strip
    any tag bits it packs into pointer words (e.g. the skip list's mark
    bit) and must return 0 ([Heap.null]) for empty slots or simply omit
    them. *)

type scan = load:(int -> int64) -> addr:int -> words:int -> int list

val raw : int
(** Builtin kind 1: no pointers at all. *)

val all_pointers : int
(** Builtin kind 2: every word is either null or a heap pointer. *)

val register : ?kind:int -> name:string -> scan:scan -> unit -> int
(** Register a kind and return its id.  When [kind] is given it is used.
    Re-registering an id under the same name is an idempotent no-op that
    keeps the {e original} scanner (a kind cannot be silently neutered
    once objects of it exist); registering a different name over an
    existing id raises.  Ids must fit in a byte and not collide with the
    free-block kind 0. *)

val scan_object : kind:int -> scan
(** Scanner for [kind]. @raise Invalid_argument for unknown kinds. *)

val name : int -> string
val is_registered : int -> bool
