type scan = load:(int -> int64) -> addr:int -> words:int -> int list

type entry = { name : string; scan : scan }

let table : (int, entry) Hashtbl.t = Hashtbl.create 16
let next_id = ref 16 (* user kinds start here; low ids are builtins *)

let register ?kind ~name ~scan () =
  let id =
    match kind with
    | Some k -> k
    | None ->
        let k = !next_id in
        incr next_id;
        k
  in
  if id <= 0 || id > 0xff then Fmt.invalid_arg "Kind.register: bad id %d" id;
  (match Hashtbl.find_opt table id with
  | Some e when not (String.equal e.name name) ->
      Fmt.invalid_arg "Kind.register: id %d already bound to %s" id e.name
  | Some _ ->
      (* Idempotent re-registration: keep the original scanner so a kind
         cannot be silently neutered after objects of it exist. *)
      ()
  | None -> Hashtbl.replace table id { name; scan });
  id

let no_pointers : scan = fun ~load:_ ~addr:_ ~words:_ -> []

let every_word : scan =
 fun ~load ~addr ~words ->
  let rec go i acc =
    if i >= words then acc
    else
      let v = Int64.to_int (load (addr + (8 * i))) in
      go (i + 1) (if v <> 0 then v :: acc else acc)
  in
  go 0 []

let raw = register ~kind:1 ~name:"raw" ~scan:no_pointers ()
let all_pointers = register ~kind:2 ~name:"all_pointers" ~scan:every_word ()

let scan_object ~kind =
  match Hashtbl.find_opt table kind with
  | Some e -> e.scan
  | None -> Fmt.invalid_arg "Kind.scan_object: unknown kind %d" kind

let name kind =
  match Hashtbl.find_opt table kind with
  | Some e -> e.name
  | None -> Printf.sprintf "unknown-%d" kind

let is_registered kind = Hashtbl.mem table kind
