type t = {
  buckets : (int, int Stack.t) Hashtbl.t;  (* words -> data addresses *)
  mutable sizes : int list;  (* sorted ascending, distinct *)
  mutable free_words : int;
  mutable blocks : int;
}

let create () =
  { buckets = Hashtbl.create 32; sizes = []; free_words = 0; blocks = 0 }

let clear t =
  Hashtbl.reset t.buckets;
  t.sizes <- [];
  t.free_words <- 0;
  t.blocks <- 0

let rec insert_size s = function
  | [] -> [ s ]
  | x :: rest as l ->
      if s < x then s :: l else if s = x then l else x :: insert_size s rest

let add t ~addr ~words =
  let stack =
    match Hashtbl.find_opt t.buckets words with
    | Some s -> s
    | None ->
        let s = Stack.create () in
        Hashtbl.add t.buckets words s;
        t.sizes <- insert_size words t.sizes;
        s
  in
  Stack.push addr stack;
  t.free_words <- t.free_words + words;
  t.blocks <- t.blocks + 1

let pop_bucket t size =
  match Hashtbl.find_opt t.buckets size with
  | None -> None
  | Some stack -> begin
      match Stack.pop_opt stack with
      | None -> None
      | Some addr ->
          if Stack.is_empty stack then begin
            Hashtbl.remove t.buckets size;
            t.sizes <- List.filter (fun s -> s <> size) t.sizes
          end;
          t.free_words <- t.free_words - size;
          t.blocks <- t.blocks - 1;
          Some (addr, size)
    end

let take t ~words =
  match pop_bucket t words with
  | Some _ as r -> r
  | None ->
      (* Smallest splittable size: needs room for the object plus a free
         remainder of header + >= 1 word. *)
      let rec find = function
        | [] -> None
        | s :: rest -> if s >= words + 2 then pop_bucket t s else find rest
      in
      find t.sizes

let total_free_words t = t.free_words
let block_count t = t.blocks
