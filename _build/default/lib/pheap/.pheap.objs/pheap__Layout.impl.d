lib/pheap/layout.ml: Fmt Int64
