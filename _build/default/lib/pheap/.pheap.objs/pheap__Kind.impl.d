lib/pheap/kind.ml: Fmt Hashtbl Int64 Printf String
