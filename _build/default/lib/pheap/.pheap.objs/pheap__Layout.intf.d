lib/pheap/layout.mli:
