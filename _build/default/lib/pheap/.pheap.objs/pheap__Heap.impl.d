lib/pheap/heap.ml: Fmt Freelist Int64 Layout List Nvm
