lib/pheap/freelist.ml: Hashtbl List Stack
