lib/pheap/heap_gc.ml: Fmt Hashtbl Heap Int64 Kind Layout List Nvm Stack
