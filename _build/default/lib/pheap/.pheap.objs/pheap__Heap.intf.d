lib/pheap/heap.mli: Nvm
