lib/pheap/heap_gc.mli: Fmt Hashtbl Heap
