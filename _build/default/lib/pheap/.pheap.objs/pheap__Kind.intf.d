lib/pheap/kind.mli:
