lib/pheap/freelist.mli:
