(** Size-segregated free lists for the persistent-heap allocator.

    Purely volatile: the authoritative record of what is free lives in the
    object headers on NVM (kind 0); this structure is an index over them,
    rebuilt from scratch by the recovery-time GC.  Blocks are keyed by
    data-word count; [take] returns an exact-size block when one exists,
    otherwise the smallest block that can be split without leaving an
    unrepresentable sliver (a split remainder needs at least a header and
    one data word). *)

type t

val create : unit -> t
val clear : t -> unit

val add : t -> addr:int -> words:int -> unit
(** Record a free block: [addr] is its data address, [words] its size. *)

val take : t -> words:int -> (int * int) option
(** [take t ~words] removes and returns [(addr, block_words)] with either
    [block_words = words] or [block_words >= words + 2]. *)

val total_free_words : t -> int
val block_count : t -> int
