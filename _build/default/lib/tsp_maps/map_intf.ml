type ops = {
  name : string;
  set : tid:int -> key:int -> value:int64 -> unit;
  get : tid:int -> key:int -> int64 option;
  incr : tid:int -> key:int -> by:int64 -> unit;
  remove : tid:int -> key:int -> bool;
}

type kind = Mutex_hashmap | Lockfree_skiplist

let kind_to_string = function
  | Mutex_hashmap -> "mutex-hashmap"
  | Lockfree_skiplist -> "lockfree-skiplist"

let kind_of_string = function
  | "mutex-hashmap" | "hashmap" | "mutex" -> Ok Mutex_hashmap
  | "lockfree-skiplist" | "skiplist" | "lockfree" | "non-blocking" ->
      Ok Lockfree_skiplist
  | s -> Error (Printf.sprintf "unknown map kind %S" s)

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)
