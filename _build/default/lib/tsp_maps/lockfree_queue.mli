(** A lock-free FIFO queue (Michael & Scott) over the persistent heap.

    Section 4.1's argument is not about skip lists specifically: {e any}
    non-blocking structure over a persistent heap is consistently
    recoverable under TSP with zero runtime overhead and zero recovery
    code.  This queue is a second, structurally very different witness —
    a linked list with two moving ends and helping on the lagging tail
    pointer — used by the test suite to check the claim beyond the map.

    Layout: a 2-word header object (head, tail) is the root-reachable
    anchor; nodes are 2 words (value, next).  The classic algorithm:
    enqueue CASes the tail node's next, then swings [tail]; dequeue
    swings [head] past the dummy node and reads the new dummy's value.
    Both helping steps (tail swing) can be completed by any thread, so a
    crash between the two CASes of an enqueue leaves a state every
    survivor — and the recovery observer — can repair or simply use.

    Memory reclamation: dequeued nodes are {e not} freed in-line (reuse
    would expose the CAS to ABA); they become unreachable and are
    reclaimed by the recovery-time GC, the same policy Atlas uses for
    crash leaks. *)

type t

val create : Pheap.Heap.t -> ?set_root:bool -> unit -> t
(** Allocate the header and the initial dummy node.  When [set_root]
    (default true) the heap root is pointed at the header. *)

val attach : Pheap.Heap.t -> Pheap.Heap.addr -> t
(** Re-attach after recovery — the whole recovery procedure.
    @raise Invalid_argument if the address is not a queue header. *)

val root : t -> Pheap.Heap.addr

val enqueue : t -> int64 -> unit
val dequeue : t -> int64 option

val is_empty : t -> bool

val to_list : t -> int64 list
(** Snapshot front-to-back (single-threaded use: verification). *)

val length : t -> int

val check_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> (unit, string) result
(** Structural audit: head reaches tail through valid nodes, and the
    tail lags the true end by at most one node (the helping invariant). *)

val header_kind : int
val node_kind : int
