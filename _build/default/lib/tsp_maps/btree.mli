(** An Atlas-fortified B+-tree — a third map implementation, beyond the
    paper's two, demonstrating the Section 4.2 approach on a structure
    whose updates are {e large} critical sections.

    A node split rewrites dozens of words across three nodes and the
    parent; an insert cascading splits up the tree multiplies that.
    Interrupting such an update without rollback leaves dangling
    children, duplicated separators or half-moved keys — precisely the
    corruption class Atlas's OCS rollback repairs.  The fault-injection
    suite crashes this tree mid-split hundreds of times and recovers a
    structurally valid tree every time (in logging modes).

    Isolation is a single tree mutex (the coarse end of "conventional
    mutexes for isolation"); every mutating operation is one outermost
    critical section.

    Persistent layout:
    - header (2 words): root node, order
    - node (3 + 2*order + 1 words):
      [0] meta = is_leaf | (nkeys << 1); [1] next leaf (leaves only);
      [2] reserved; keys at [3, 3+order); values (leaves) or children
      (internal, nkeys+1 of them) at [3+order, 4+2*order).

    Deletion removes keys from leaves without rebalancing (leaves may
    underflow; separators remain as routing keys).  This is a common
    simplification — lookups and scans stay correct, space is reclaimed
    when a leaf empties completely at the next recovery GC if it becomes
    unreachable. *)

type t

val default_order : int
(** Maximum keys per node (7). *)

val create :
  Pheap.Heap.t ->
  atlas:Atlas.Runtime.t ->
  sched:Sched.Scheduler.t ->
  ?order:int ->
  ?op_cycles:int ->
  unit ->
  t
(** Allocate an empty tree (one empty leaf as root), point the heap root
    at its header, and create the tree mutex. *)

val attach :
  Pheap.Heap.t ->
  atlas:Atlas.Runtime.t ->
  sched:Sched.Scheduler.t ->
  ?op_cycles:int ->
  Pheap.Heap.addr ->
  t
(** Rebuild a volatile handle after recovery.
    @raise Invalid_argument if the address is not a B+-tree header. *)

val root : t -> Pheap.Heap.addr
val order : t -> int
val ops : t -> Map_intf.ops

(** {1 Plain access — setup and verification} *)

val set_plain : t -> key:int -> value:int64 -> unit
(** Single-threaded, uninstrumented insert for pre-run population. *)

val fold_plain :
  Pheap.Heap.t -> root:Pheap.Heap.addr -> (int -> int64 -> 'a -> 'a) -> 'a -> 'a
(** In-order traversal along the leaf chain. *)

val size_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

val check_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> (unit, string) result
(** Structural audit: node key counts in range, keys sorted, children
    respect separators, all leaves at the same depth, and the leaf chain
    enumerates the same keys as the tree descent, in order. *)

val height : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

val header_kind : int
val node_kind : int
