lib/tsp_maps/lockfree_queue.mli: Pheap
