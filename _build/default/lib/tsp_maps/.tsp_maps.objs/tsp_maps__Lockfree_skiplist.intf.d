lib/tsp_maps/lockfree_skiplist.mli: Map_intf Pheap
