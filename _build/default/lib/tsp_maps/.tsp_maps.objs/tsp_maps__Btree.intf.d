lib/tsp_maps/btree.mli: Atlas Map_intf Pheap Sched
