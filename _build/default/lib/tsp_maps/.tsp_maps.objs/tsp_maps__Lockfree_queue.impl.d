lib/tsp_maps/lockfree_queue.ml: Int64 List Pheap Printf
