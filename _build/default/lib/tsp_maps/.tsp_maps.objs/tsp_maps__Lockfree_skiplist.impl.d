lib/tsp_maps/lockfree_skiplist.ml: Array Fmt Int64 Map_intf Nvm Pheap Printf Sched
