lib/tsp_maps/chained_hashmap.ml: Array Atlas Int64 Map_intf Nvm Option Pheap
