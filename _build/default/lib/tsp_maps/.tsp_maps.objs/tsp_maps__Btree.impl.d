lib/tsp_maps/btree.ml: Atlas Fmt Int64 List Map_intf Nvm Pheap
