lib/tsp_maps/map_intf.ml: Fmt Printf
