lib/tsp_maps/chained_hashmap.mli: Atlas Map_intf Pheap Sched
