lib/tsp_maps/map_intf.mli: Fmt
