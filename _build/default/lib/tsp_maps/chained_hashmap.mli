(** The mutex-based map of Section 5.1: a separate-chaining hash table
    with moderate-grain locking — one mutex per [buckets_per_mutex]
    buckets (the paper uses one per 1000) — whose mutating operations run
    as Atlas outermost critical sections.

    Persistent layout (all in the heap, reachable from the root):
    - header object (3 words): bucket count, table address, value width
    - table object: one head pointer per bucket
    - node objects (2 + width words): key, next, value word(s)

    Values may be wider than one word ([?value_words] at creation).
    Writing a wide value is then a genuine multi-store critical section:
    under an unfortified run a crash can tear it {e even when every
    store is durable} — TSP provides durability of the prefix, and only
    Atlas's rollback restores atomicity (the [Wide] workload and its
    fault campaign demonstrate exactly this).

    Construction ({!create}) runs single-threaded before workers start
    and uses plain stores; the caller persists the initial state.  All
    runtime mutation goes through {!ops}, which locks the bucket's mutex,
    so every operation is failure-atomic under Atlas and isolated under
    the mutex discipline. *)

type t

val create :
  Pheap.Heap.t ->
  atlas:Atlas.Runtime.t ->
  sched:Sched.Scheduler.t ->
  n_buckets:int ->
  ?buckets_per_mutex:int ->
  ?op_cycles:int ->
  ?value_words:int ->
  unit ->
  t
(** Allocate the persistent structure, point the heap root at it, and
    build the volatile mutex array.  [buckets_per_mutex] defaults to
    1000, as in the paper. *)

val attach :
  Pheap.Heap.t ->
  atlas:Atlas.Runtime.t ->
  sched:Sched.Scheduler.t ->
  ?buckets_per_mutex:int ->
  ?op_cycles:int ->
  Pheap.Heap.addr ->
  t
(** Rebuild a volatile handle onto an existing persistent map (after
    recovery).  @raise Invalid_argument if the root object is not a hash
    map header. *)

val root : t -> Pheap.Heap.addr
val n_buckets : t -> int
val ops : t -> Map_intf.ops

val transfer :
  t -> tid:int -> debit:int -> credit:int -> amount:int64 -> bool
(** Atomically move [amount] from key [debit] to key [credit]: both
    bucket mutexes are held (in id order, so transfers cannot deadlock)
    and both stores happen in one outermost critical section.  This is
    the paradigmatic multi-store section: tearing it loses money, which
    is what Atlas's rollback prevents — and what a non-blocking map
    cannot express at all without multi-word atomic primitives (the
    generality gap Section 4.2 discusses).  Returns [false] (and moves
    nothing) if either key is absent or the debit balance is
    insufficient. *)

(** {1 Plain (uninstrumented) access — setup and verification} *)

val set_plain : t -> key:int -> value:int64 -> unit
(** Single-threaded insert using plain stores; for pre-run population. *)

val fold_plain :
  Pheap.Heap.t -> root:Pheap.Heap.addr -> (int -> int64 -> 'a -> 'a) -> 'a -> 'a
(** Traverse a persistent hash map directly (no locks, no instrumentation):
    what recovery code and the invariant checker use. *)

val size_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

(** {1 Wide (multi-word) values} *)

val value_words : t -> int

val set_wide : t -> tid:int -> key:int -> values:int64 array -> unit
(** Replace all value words of [key] (inserting if absent) in one
    critical section.  @raise Invalid_argument on width mismatch. *)

val get_wide : t -> tid:int -> key:int -> int64 array option

val fold_wide_plain :
  Pheap.Heap.t ->
  root:Pheap.Heap.addr ->
  (int -> int64 array -> 'a -> 'a) ->
  'a ->
  'a

val header_kind : int
val node_kind : int
