(** The common "map" interface of Section 5.1: a local key-value store
    from integer keys to integer values, shared by the mutex-based hash
    table and the lock-free skip list so the workload driver and the
    benchmarks treat them uniformly. *)

type ops = {
  name : string;
  set : tid:int -> key:int -> value:int64 -> unit;
      (** insert or overwrite, atomically and in isolation *)
  get : tid:int -> key:int -> int64 option;
  incr : tid:int -> key:int -> by:int64 -> unit;
      (** atomic read-modify-write; inserts [by] when the key is absent *)
  remove : tid:int -> key:int -> bool;
}

type kind = Mutex_hashmap | Lockfree_skiplist

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result
val pp_kind : kind Fmt.t
