(** The non-blocking map of Section 5.1: a lock-free skip list after
    Herlihy & Shavit (The Art of Multiprocessor Programming, pp. 339-349,
    the algorithm behind the nbds library the paper uses), built directly
    on persistent-heap words and CAS.

    Non-blocking property: threads never hold locks; a thread suspended
    or killed at any instruction boundary cannot prevent others from
    completing operations (they help by snipping marked nodes).  By the
    argument of Section 4.1 this gives consistent crash recovery {e for
    free} under TSP — there is no logging, no flushing and no recovery
    pass; recovery is merely re-attaching to the root.

    Node layout: key, value, level, then [level] next pointers whose low
    bit is the deletion mark.  Deletion marks top-down and is linearised
    at the bottom-level mark; traversals physically unlink marked nodes
    as they pass. *)

type t

val default_max_level : int

val create :
  Pheap.Heap.t ->
  ?max_level:int ->
  ?op_cycles:int ->
  num_threads:int ->
  seed:int ->
  unit ->
  t
(** Allocate head and tail sentinels, point the heap root at the head,
    and build per-thread level generators from [seed]. *)

val attach :
  Pheap.Heap.t -> ?op_cycles:int -> num_threads:int -> seed:int -> Pheap.Heap.addr -> t
(** Re-attach after recovery: nothing to repair, by design.
    @raise Invalid_argument if the root is not a skip-list head. *)

val root : t -> Pheap.Heap.addr
val max_level : t -> int
val ops : t -> Map_intf.ops

(** {1 Plain access — setup and verification} *)

val set_plain : t -> key:int -> value:int64 -> unit
val fold_plain :
  Pheap.Heap.t -> root:Pheap.Heap.addr -> (int -> int64 -> 'a -> 'a) -> 'a -> 'a
val size_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> int

val check_plain : Pheap.Heap.t -> root:Pheap.Heap.addr -> (unit, string) result
(** Structural sanity: bottom-level keys strictly increase from the head
    sentinel to the tail sentinel. *)

val node_kind : int
