lib/sched/scheduler.mli:
