lib/sched/scheduler.ml: Array Effect Fmt List Option Printexc Printf Queue Sim_rng
