lib/sched/sim_rng.mli:
