lib/sched/sim_rng.ml: Fmt Int64
