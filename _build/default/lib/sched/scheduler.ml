type runnable =
  | Fresh of (unit -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation

type thread_state = Runnable of runnable | Running | Blocked | Done

type thread = {
  id : int;
  name : string;
  mutable vclock : int;
  mutable state : thread_state;
}

type t = {
  mutable threads : thread array;
  rng : Sim_rng.t;
  cost_jitter : int;
  mutable steps : int;
  mutable crash_at_step : int option;
  mutable crashed : bool;
  mutable current : int;  (* -1 when no thread is executing *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable started : bool;
  mutable next_mutex_id : int;
}

type outcome =
  | Completed
  | Crashed of { at_step : int }
  | Deadlocked of { blocked : string list }

type mutex = {
  mid : int;
  sched : t;
  mutable owner : int option;
  waiters : (thread * (unit, unit) Effect.Deep.continuation) Queue.t;
}

type _ Effect.t +=
  | Step_eff : int -> unit Effect.t
  | Block_eff : mutex -> unit Effect.t

let create ?(seed = 42) ?(cost_jitter = 0) () =
  {
    threads = [||];
    rng = Sim_rng.create ~seed;
    cost_jitter;
    steps = 0;
    crash_at_step = None;
    crashed = false;
    current = -1;
    failure = None;
    started = false;
    next_mutex_id = 0;
  }

let thread_count t = Array.length t.threads

let spawn t ?name f =
  if t.started then invalid_arg "Scheduler.spawn: scheduler already ran";
  let id = Array.length t.threads in
  let name = Option.value name ~default:(Printf.sprintf "thread-%d" id) in
  let th = { id; name; vclock = 0; state = Runnable (Fresh f) } in
  t.threads <- Array.append t.threads [| th |];
  id

let current_thread t =
  if t.current < 0 then
    invalid_arg "Scheduler: not inside a simulated thread";
  t.threads.(t.current)

let self t = (current_thread t).id

let step t ~cost =
  ignore (current_thread t : thread);
  Effect.perform (Step_eff cost)

let yield t = step t ~cost:0

let elapsed_cycles t =
  Array.fold_left (fun acc th -> max acc th.vclock) 0 t.threads

let total_steps t = t.steps
let thread_cycles t id = t.threads.(id).vclock
let is_crashed t = t.crashed

(* One deep handler is installed per fiber at its first resumption; every
   later [continue] re-enters it, so the closed-over [th] is always the
   fiber's own record. *)
let handler t th =
  {
    Effect.Deep.retc = (fun () -> th.state <- Done);
    exnc =
      (fun e ->
        th.state <- Done;
        if t.failure = None then
          t.failure <- Some (e, Printexc.get_raw_backtrace ()));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Step_eff cost ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let jitter =
                  if t.cost_jitter > 0 then Sim_rng.int t.rng (t.cost_jitter + 1)
                  else 0
                in
                th.vclock <- th.vclock + cost + jitter;
                t.steps <- t.steps + 1;
                match t.crash_at_step with
                | Some c when t.steps >= c ->
                    (* Abandon the continuation: the operation that would
                       have followed this step never executes, and neither
                       does anything else in any thread. *)
                    t.crashed <- true
                | _ -> th.state <- Runnable (Suspended k))
        | Block_eff m ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                th.state <- Blocked;
                Queue.add (th, k) m.waiters)
        | _ -> None);
  }

let pick t =
  let best = ref None in
  let ties = ref 0 in
  Array.iter
    (fun th ->
      match th.state with
      | Runnable _ -> begin
          match !best with
          | None ->
              best := Some th;
              ties := 1
          | Some b ->
              if th.vclock < b.vclock then begin
                best := Some th;
                ties := 1
              end
              else if th.vclock = b.vclock then begin
                (* Reservoir-sample among clock ties so that equal-time
                   threads interleave differently across seeds. *)
                incr ties;
                if Sim_rng.int t.rng !ties = 0 then best := Some th
              end
        end
      | Running | Blocked | Done -> ())
    t.threads;
  !best

let run ?crash_at_step t =
  if t.started then invalid_arg "Scheduler.run: scheduler already ran";
  t.started <- true;
  t.crash_at_step <- crash_at_step;
  let rec loop () =
    if t.crashed then Crashed { at_step = t.steps }
    else
      match t.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> begin
          match pick t with
          | None ->
              let blocked =
                Array.to_list t.threads
                |> List.filter (fun th -> th.state = Blocked)
                |> List.map (fun th -> th.name)
              in
              if blocked = [] then Completed else Deadlocked { blocked }
          | Some th ->
              t.current <- th.id;
              (match th.state with
              | Runnable r -> begin
                  th.state <- Running;
                  match r with
                  | Fresh f -> Effect.Deep.match_with f () (handler t th)
                  | Suspended k -> Effect.Deep.continue k ()
                end
              | Running | Blocked | Done -> assert false);
              t.current <- -1;
              loop ()
        end
  in
  loop ()

module Mutex = struct
  type nonrec mutex = mutex

  let create t =
    let mid = t.next_mutex_id in
    t.next_mutex_id <- mid + 1;
    { mid; sched = t; owner = None; waiters = Queue.create () }

  let id m = m.mid

  let lock m =
    let me = current_thread m.sched in
    match m.owner with
    | Some o when o = me.id ->
        Fmt.invalid_arg "Scheduler.Mutex.lock: %s already holds mutex %d"
          me.name m.mid
    | None -> m.owner <- Some me.id
    | Some _ ->
        (* Suspend; [unlock] hands ownership over before resuming us, so
           on return the mutex is ours. *)
        Effect.perform (Block_eff m)

  let unlock m =
    let me = current_thread m.sched in
    match m.owner with
    | Some o when o = me.id -> begin
        match Queue.take_opt m.waiters with
        | Some (th, k) ->
            m.owner <- Some th.id;
            (* The waiter could not have proceeded before the release, so
               its clock jumps forward to the release instant. *)
            th.vclock <- max th.vclock me.vclock;
            th.state <- Runnable (Suspended k)
        | None -> m.owner <- None
      end
    | Some _ | None ->
        Fmt.invalid_arg "Scheduler.Mutex.unlock: %s does not hold mutex %d"
          me.name m.mid

  let owner m = m.owner
end
