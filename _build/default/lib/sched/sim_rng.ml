type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t n =
  if n <= 0 then Fmt.invalid_arg "Sim_rng.int: bound %d must be positive" n;
  (* Rejection-free modulo is fine here: n is always far below 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))
