let c1 ~tid = 2 * tid
let c2 ~tid = (2 * tid) + 1
let l_size ~threads = 2 * threads
let h_start = 1024
let h_key i = h_start + i
let is_h k = k >= h_start
let is_counter ~threads k = k >= 0 && k < l_size ~threads
