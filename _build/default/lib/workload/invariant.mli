(** Integrity invariants checked after completed runs and after crash
    recovery. *)

type check = { name : string; ok : bool; detail : string }
type result = { ok : bool; checks : check list }

val counters : entries:(int * int64) list -> threads:int -> result
(** The two inequalities of Section 5.1 over a dump of the map, plus the
    per-thread refinement they are derived from:

    - Eq. (1): [0 <= sum c1 - sum c2 <= T]
    - Eq. (2): [sum c1 >= sum over H of map value >= sum c2]
    - per thread: [c2 <= c1 <= c2 + 1] *)

val counters_resumed : entries:(int * int64) list -> threads:int -> result
(** The counter invariants adjusted for a run that resumed after a
    crash: because each iteration's three steps are separate atomic
    operations, resumption may redo at most one data increment per
    thread, so Eq. (2)'s upper bound relaxes to
    [sum c1 <= sum H <= sum c1 + T]. *)

val transfers : entries:(int * int64) list -> expected_total:int64 -> result
(** Conservation for the bank-transfer workload: balances sum to the
    initial total and none is negative.  A crash that tears a transfer in
    an unfortified run breaks conservation — the multi-store hazard that
    motivates Atlas. *)

val untorn : wide_entries:(int * int64 array) list -> result
(** For the wide-value workload: every multi-word value must be
    internally consistent (all words written by the same operation).  A
    torn value is a failure-atomicity violation — the store prefix was
    durable, but the update was not atomic. *)

val ycsb : entries:(int * int64) list -> records:int -> result
(** For the YCSB workload: the record count never changes (no workload
    op inserts), and every value remains congruent to its key modulo the
    record count (updates write the canonical value, RMW adds the record
    count). *)

val failed : string -> result
(** A result representing an unverifiable state (e.g. corrupt heap). *)

val pp : result Fmt.t
