lib/workload/runner.mli: Atlas Fmt Invariant Nvm Pheap Tsp_core Ycsb
