lib/workload/table1.mli: Format Nvm Runner
