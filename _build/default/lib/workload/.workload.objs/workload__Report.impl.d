lib/workload/report.ml: Array Float Format List Option Printf String
