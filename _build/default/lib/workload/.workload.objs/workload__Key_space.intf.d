lib/workload/key_space.mli:
