lib/workload/fault_injector.ml: Atlas Fmt Invariant List Nvm Option Pheap Runner Sched Tsp_core
