lib/workload/invariant.ml: Array Fmt Int64 Key_space List Printf String
