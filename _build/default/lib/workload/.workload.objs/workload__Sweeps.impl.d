lib/workload/sweeps.ml: Atlas Fmt Format List Nvm Printf Report Runner Tsp_core Ycsb
