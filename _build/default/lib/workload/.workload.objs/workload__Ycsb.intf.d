lib/workload/ycsb.mli: Sched
