lib/workload/sweeps.mli: Fmt Format Ycsb
