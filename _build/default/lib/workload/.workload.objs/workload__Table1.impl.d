lib/workload/table1.ml: Atlas Float Fmt Format List Nvm Printf Report Runner
