lib/workload/report.mli: Format
