lib/workload/fault_injector.mli: Fmt Invariant Runner
