lib/workload/ycsb.ml: Float Printf Sched
