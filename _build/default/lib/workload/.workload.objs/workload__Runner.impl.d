lib/workload/runner.ml: Array Atlas Fmt Fun Int64 Invariant Key_space Lazy List Nvm Option Pheap Printexc Printf Sched String Sys Tsp_core Tsp_maps Ycsb
