lib/workload/invariant.mli: Fmt
