lib/workload/key_space.ml:
