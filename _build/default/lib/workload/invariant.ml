type check = { name : string; ok : bool; detail : string }
type result = { ok : bool; checks : check list }

let make checks = { ok = List.for_all (fun (c : check) -> c.ok) checks; checks }

let counter_sums ~entries ~threads =
  let c1 = Array.make threads 0L in
  let c2 = Array.make threads 0L in
  let sum_h = ref 0L in
  List.iter
    (fun (key, v) ->
      if Key_space.is_h key then sum_h := Int64.add !sum_h v
      else if Key_space.is_counter ~threads key then
        if key land 1 = 0 then c1.(key / 2) <- v else c2.(key / 2) <- v)
    entries;
  (c1, c2, !sum_h)

let per_thread_check ~threads c1 c2 =
  let bad = ref [] in
  for tid = 0 to threads - 1 do
    if not (c2.(tid) <= c1.(tid) && c1.(tid) <= Int64.add c2.(tid) 1L) then
      bad := tid :: !bad
  done;
  {
    name = "per-thread: c2 <= c1 <= c2 + 1";
    ok = !bad = [];
    detail =
      (match !bad with
      | [] -> "all threads consistent"
      | l ->
          Printf.sprintf "violated by threads %s"
            (String.concat "," (List.map string_of_int l)));
  }

let counters ~entries ~threads =
  let c1, c2, sum_h = counter_sums ~entries ~threads in
  let sum_h = ref sum_h in
  let sum a = Array.fold_left Int64.add 0L a in
  let sum_c1 = sum c1 and sum_c2 = sum c2 in
  let diff = Int64.sub sum_c1 sum_c2 in
  let eq1 =
    {
      name = "eq1: 0 <= sum(c1) - sum(c2) <= T";
      ok = diff >= 0L && diff <= Int64.of_int threads;
      detail =
        Printf.sprintf "sum(c1)=%Ld sum(c2)=%Ld diff=%Ld T=%d" sum_c1 sum_c2
          diff threads;
    }
  in
  let eq2 =
    {
      name = "eq2: sum(c1) >= sum(H) >= sum(c2)";
      ok = sum_c1 >= !sum_h && !sum_h >= sum_c2;
      detail =
        Printf.sprintf "sum(c1)=%Ld sum(H)=%Ld sum(c2)=%Ld" sum_c1 !sum_h
          sum_c2;
    }
  in
  let per_thread = per_thread_check ~threads c1 c2 in
  make [ eq1; eq2; per_thread ]

let counters_resumed ~entries ~threads =
  let c1, c2, sum_h = counter_sums ~entries ~threads in
  let sum a = Array.fold_left Int64.add 0L a in
  let sum_c1 = sum c1 and sum_c2 = sum c2 in
  let t64 = Int64.of_int threads in
  let diff = Int64.sub sum_c1 sum_c2 in
  let eq1 =
    {
      name = "eq1: 0 <= sum(c1) - sum(c2) <= T";
      ok = diff >= 0L && diff <= t64;
      detail = Printf.sprintf "sum(c1)=%Ld sum(c2)=%Ld" sum_c1 sum_c2;
    }
  in
  let eq2' =
    {
      name = "eq2 (at-least-once): sum(c1) <= sum(H) <= sum(c1) + T";
      ok = sum_c1 <= sum_h && sum_h <= Int64.add sum_c1 t64;
      detail =
        Printf.sprintf "sum(c1)=%Ld sum(H)=%Ld duplicates=%Ld" sum_c1 sum_h
          (Int64.sub sum_h sum_c1);
    }
  in
  let per_thread = per_thread_check ~threads c1 c2 in
  make [ eq1; eq2'; per_thread ]

let transfers ~entries ~expected_total =
  let total = ref 0L in
  let negative = ref 0 in
  List.iter
    (fun (_, v) ->
      total := Int64.add !total v;
      if v < 0L then incr negative)
    entries;
  let conservation =
    {
      name = "conservation: sum(balances) = initial total";
      ok = Int64.equal !total expected_total;
      detail = Printf.sprintf "sum=%Ld expected=%Ld" !total expected_total;
    }
  in
  let non_negative =
    {
      name = "no negative balances";
      ok = !negative = 0;
      detail = Printf.sprintf "%d negative balances" !negative;
    }
  in
  make [ conservation; non_negative ]

let failed msg =
  { ok = false; checks = [ { name = "verifiable state"; ok = false; detail = msg } ] }

let pp ppf r =
  let pp_check ppf (c : check) =
    Fmt.pf ppf "%s %s (%s)" (if c.ok then "PASS" else "FAIL") c.name c.detail
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_check) r.checks

let untorn ~wide_entries =
  let torn = ref 0 and total = ref 0 in
  List.iter
    (fun (_, (values : int64 array)) ->
      incr total;
      if Array.length values > 1 then begin
        let first = values.(0) in
        if not (Array.for_all (Int64.equal first) values) then incr torn
      end)
    wide_entries;
  make
    [
      {
        name = "untorn: all words of every value agree";
        ok = !torn = 0;
        detail = Printf.sprintf "%d of %d values torn" !torn !total;
      };
    ]

let ycsb ~entries ~records =
  let size_ok =
    {
      name = "ycsb: record count unchanged";
      ok = List.length entries = records;
      detail = Printf.sprintf "%d records, expected %d" (List.length entries) records;
    }
  in
  let bad = ref 0 in
  List.iter
    (fun (k, v) ->
      let m = Int64.of_int records in
      if Int64.rem (Int64.sub v (Int64.of_int k)) m <> 0L then incr bad)
    entries;
  let congruent =
    {
      name = "ycsb: values congruent to keys (mod records)";
      ok = !bad = 0;
      detail = Printf.sprintf "%d incongruent values" !bad;
    }
  in
  make [ size_ok; congruent ]
