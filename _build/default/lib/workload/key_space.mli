(** The key-space split of Section 5.1: a small lower range [L] holds the
    per-thread integrity counters, the much larger higher range [H] holds
    the data keys whose values the workload increments. *)

val c1 : tid:int -> int
(** Key of thread [tid]'s first counter (written {e before} the data
    increment each iteration). *)

val c2 : tid:int -> int
(** Key of thread [tid]'s second counter (written {e after}). *)

val l_size : threads:int -> int

val h_start : int
(** First key of the data range [H]; well above any counter key. *)

val h_key : int -> int
(** [h_key i] is the [i]-th data key. *)

val is_h : int -> bool
val is_counter : threads:int -> int -> bool
