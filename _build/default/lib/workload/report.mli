(** Plain-text table rendering for experiment output. *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** Render an aligned ASCII table. *)

val ratio : float -> float -> string
(** ["0.65x"]-style ratio of measured to baseline; ["-"] if undefined. *)

val pct_change : base:float -> float -> string
(** Signed percentage change from [base] (e.g. ["-35%"]). *)

val percentiles : int array -> float list -> (float * int) list
(** [percentiles samples [0.5; 0.99]] returns the requested quantiles of
    the samples (nearest-rank); empty input gives an empty list. *)
