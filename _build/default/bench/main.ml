(* Benchmark harness.

   Part 1 regenerates the paper's evaluation: Table 1 (its only numeric
   artifact) in full, followed by the sweep series that make the prose
   claims measurable (E4/E7/E8 of DESIGN.md).  Throughput is simulated
   time — the reproduction target.

   Part 2 is a Bechamel microbenchmark suite: one Test.make per Table 1
   cell (host wall-time of simulating that cell, i.e. simulator speed)
   plus the primitive operations of the stack.  These measure the
   implementation, not the paper. *)

open Bechamel
open Toolkit

(* --- Part 1: the paper's numbers --- *)

let reproduce_table1 () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1a: Table 1 reproduction (simulated time)@.";
  Fmt.pr "==================================================================@.@.";
  let rows = Workload.Table1.run ~iterations:2500 ~repeats:3 () in
  Workload.Table1.render rows Format.std_formatter;
  (match rows with
  | desktop :: _ -> Workload.Table1.render_breakdown desktop Format.std_formatter
  | [] -> ());
  Fmt.pr "@."

let reproduce_sweeps () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1b: sweep series (E4, E7, E8, E11, E12, cache ablation)@.";
  Fmt.pr "==================================================================@.@.";
  let render t = Workload.Sweeps.render t Format.std_formatter; Fmt.pr "@." in
  render (Workload.Sweeps.flush_latency ~iterations:600 ());
  render (Workload.Sweeps.thread_scaling ~iterations:600 ());
  render (Workload.Sweeps.log_cost_ablation ~iterations:600 ());
  render (Workload.Sweeps.cache_ablation ~iterations:600 ());
  render (Workload.Sweeps.read_ratio ~iterations:600 ());
  Fmt.pr "%a@.@." Workload.Sweeps.pp_ledger
    (Workload.Sweeps.procrastination_ledger ~iterations:600
       ~crash_step:60_000 ());
  Workload.Sweeps.render_ycsb
    (Workload.Sweeps.ycsb_table ~iterations:600 Workload.Ycsb.A)
    Format.std_formatter;
  Fmt.pr "@.";
  Workload.Sweeps.render_ycsb
    (Workload.Sweeps.ycsb_table ~iterations:600 Workload.Ycsb.B)
    Format.std_formatter;
  Fmt.pr "@." 

let reproduce_fault_summary () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 1c: fault-injection spot check (E3/E9)@.";
  Fmt.pr "==================================================================@.@.";
  let base =
    {
      (Workload.Runner.calibrated_config Nvm.Config.desktop) with
      Workload.Runner.iterations = 400;
      workload = Workload.Runner.Counters { h_keys = 4096; preload = true };
    }
  in
  let campaign name cfg =
    let spec =
      {
        (Workload.Fault_injector.default_spec cfg) with
        Workload.Fault_injector.runs = 12;
        max_step = 60_000;
      }
    in
    let s = Workload.Fault_injector.run spec in
    Fmt.pr "%-46s %d/%d consistent@." name s.Workload.Fault_injector.consistent_recoveries
      s.Workload.Fault_injector.crashes
  in
  campaign "mutex+log-only, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only };
  campaign "non-blocking, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Nonblocking_map };
  campaign "B+-tree + log-only, process crash (TSP):"
    { base with Workload.Runner.variant = Workload.Runner.Mutex_btree Atlas.Mode.Log_only };
  campaign "log-only, power outage, no TSP (control):"
    {
      base with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      hardware = Tsp_core.Hardware.conventional_server;
      failure = Tsp_core.Failure_class.Power_outage;
    };
  Fmt.pr "@."

(* --- Part 2: Bechamel microbenchmarks --- *)

(* Primitive device operations. *)
let bench_pmem_ops () =
  let cfg = Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024) in
  let pmem = Nvm.Pmem.create cfg in
  let i = ref 0 in
  let test name f = Test.make ~name (Staged.stage f) in
  [
    test "pmem/store" (fun () ->
        incr i;
        Nvm.Pmem.store pmem (!i * 8 land 0xFFF8) 1L);
    test "pmem/load" (fun () ->
        incr i;
        ignore (Nvm.Pmem.load pmem (!i * 8 land 0xFFF8)));
    test "pmem/flush+fence" (fun () ->
        Nvm.Pmem.store pmem 0 2L;
        Nvm.Pmem.flush pmem 0;
        Nvm.Pmem.fence pmem);
    test "pmem/cas" (fun () ->
        ignore (Nvm.Pmem.cas pmem 64 ~expected:0L ~desired:0L));
  ]

let bench_heap_ops () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (8 * 1024 * 1024))
  in
  let heap = Pheap.Heap.create pmem ~base:0 ~size:(8 * 1024 * 1024) in
  [
    Test.make ~name:"heap/alloc+free"
      (Staged.stage (fun () ->
           let a = Pheap.Heap.alloc heap ~kind:Pheap.Kind.raw ~words:4 in
           Pheap.Heap.free heap a));
  ]

let bench_skiplist_ops () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (16 * 1024 * 1024))
  in
  let heap = Pheap.Heap.create pmem ~base:0 ~size:(16 * 1024 * 1024) in
  let sl = Tsp_maps.Lockfree_skiplist.create heap ~num_threads:1 ~seed:1 () in
  for k = 0 to 9999 do
    Tsp_maps.Lockfree_skiplist.set_plain sl ~key:(k * 2) ~value:1L
  done;
  let ops = Tsp_maps.Lockfree_skiplist.ops sl in
  let i = ref 0 in
  [
    Test.make ~name:"skiplist/get(10k)"
      (Staged.stage (fun () ->
           incr i;
           ignore (ops.Tsp_maps.Map_intf.get ~tid:0 ~key:(!i * 7 mod 20000))));
    Test.make ~name:"skiplist/set(10k)"
      (Staged.stage (fun () ->
           incr i;
           ops.Tsp_maps.Map_intf.set ~tid:0 ~key:(!i * 2 mod 20000) ~value:2L));
  ]

let bench_undo_log () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (1024 * 1024))
  in
  let log = Atlas.Undo_log.format pmem ~base:0 ~size:(512 * 1024) ~num_threads:1 in
  let seq = ref 0 in
  [
    Test.make ~name:"undo-log/append+prune"
      (Staged.stage (fun () ->
           incr seq;
           let at =
             Atlas.Undo_log.append log ~tid:0
               {
                 Atlas.Log_entry.seq = !seq;
                 tid = 0;
                 payload = Atlas.Log_entry.Update { addr = 64; old = 0L };
               }
           in
           Atlas.Undo_log.advance_tail log ~tid:0
             ~new_tail:(Atlas.Undo_log.next_slot log at)
             ~flush:false));
  ]

(* One Test.make per Table 1 cell: host time to simulate that cell with
   a reduced iteration count.  Name format "<platform>/<variant>". *)
let bench_table1_cells () =
  let cell platform variant =
    let config =
      {
        (Workload.Runner.calibrated_config platform) with
        Workload.Runner.variant;
        iterations = 40;
        workload = Workload.Runner.Counters { h_keys = 2048; preload = true };
        n_buckets = 1024;
        log_mib = 2;
      }
    in
    let name =
      Printf.sprintf "table1/%s/%s"
        (if platform.Nvm.Config.name = Nvm.Config.desktop.Nvm.Config.name
         then "desktop"
         else "server")
        (Workload.Runner.variant_to_string variant)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let r = Workload.Runner.run config in
           assert (Workload.Runner.consistent r)))
  in
  List.concat_map
    (fun platform -> List.map (cell platform) Workload.Table1.variants)
    [ Nvm.Config.desktop; Nvm.Config.server ]

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"tsp" tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.1f" est
        | _ -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Workload.Report.table ~header:[ "benchmark"; "ns/run (host)" ] ~rows
    Format.std_formatter

let () =
  reproduce_table1 ();
  reproduce_sweeps ();
  reproduce_fault_summary ();
  Fmt.pr "==================================================================@.";
  Fmt.pr "Part 2: Bechamel microbenchmarks (host wall time of the simulator)@.";
  Fmt.pr "==================================================================@.@.";
  run_bechamel
    (bench_pmem_ops () @ bench_heap_ops () @ bench_skiplist_ops ()
   @ bench_undo_log () @ bench_table1_cells ())
