test/test_queue.ml: Alcotest Config Heap Helpers Int64 List Pheap Pmem Printf QCheck2 Queue Scheduler Tsp_maps
