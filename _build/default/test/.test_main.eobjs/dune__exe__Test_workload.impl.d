test/test_workload.ml: Alcotest Array Atlas Format Helpers List Nvm Printf Sched String Tsp_core Workload
