test/test_btree.ml: Alcotest Atlas Config Fun Heap Helpers Int Int64 List Map Option Pheap Pmem QCheck2 Rng Scheduler Tsp_maps
