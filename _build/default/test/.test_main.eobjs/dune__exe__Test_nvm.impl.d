test/test_nvm.ml: Alcotest Config Float Format Helpers Int64 List Nvm Pmem Printf QCheck2
