test/test_maps.ml: Alcotest Atlas Config Fun Hashtbl Heap Helpers Int Int64 List Map Option Pheap Pmem Printf QCheck2 Scheduler Tsp_maps
