test/test_atlas.ml: Alcotest Array Atlas Config Format Heap Helpers Int64 List Nvm Option Pheap Pmem Printf QCheck2 Result Scheduler
