test/helpers.ml: Alcotest Fun List Nvm Pheap Printf QCheck2 QCheck_alcotest Sched
