test/test_sched.ml: Alcotest Helpers Int64 List Printf QCheck2 Rng Scheduler String
