test/test_main.ml: Alcotest Test_atlas Test_btree Test_core Test_maps Test_nvm Test_pheap Test_queue Test_sched Test_workload
