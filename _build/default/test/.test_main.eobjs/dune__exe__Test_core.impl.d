test/test_core.ml: Alcotest Helpers Int64 List Pmem Tsp_core
