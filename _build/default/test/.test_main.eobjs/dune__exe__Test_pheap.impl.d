test/test_pheap.ml: Alcotest Array Config Fun Hashtbl Heap Helpers Int64 List Pheap Pmem QCheck2 String
