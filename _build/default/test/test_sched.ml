(* Tests for the deterministic discrete-event scheduler: virtual-time
   semantics, mutex hand-off, crash injection, determinism. *)

open Helpers
module Mutex = Scheduler.Mutex

let test_single_thread () =
  let s = Scheduler.create () in
  let ran = ref false in
  ignore (Scheduler.spawn s (fun () -> ran := true) : int);
  (match Scheduler.run s with
  | Scheduler.Completed -> ()
  | _ -> Alcotest.fail "expected completion");
  Alcotest.(check bool) "body ran" true !ran

let test_spawn_ids_in_order () =
  let s = Scheduler.create () in
  let a = Scheduler.spawn s (fun () -> ()) in
  let b = Scheduler.spawn s (fun () -> ()) in
  Alcotest.(check (pair int int)) "ids" (0, 1) (a, b);
  Alcotest.(check int) "count" 2 (Scheduler.thread_count s)

let test_self () =
  let s = Scheduler.create () in
  let seen = ref (-1) in
  ignore (Scheduler.spawn s (fun () -> seen := Scheduler.self s) : int);
  ignore (Scheduler.run s);
  Alcotest.(check int) "self id" 0 !seen;
  check_raises_invalid "self outside" (fun () -> ignore (Scheduler.self s))

let test_elapsed_is_max_vclock () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> Scheduler.step s ~cost:100) : int);
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.step s ~cost:30;
         Scheduler.step s ~cost:40)
      : int);
  ignore (Scheduler.run s);
  (* Threads run on their own virtual cores: total time is the max. *)
  Alcotest.(check int) "elapsed" 100 (Scheduler.elapsed_cycles s);
  Alcotest.(check int) "thread 0" 100 (Scheduler.thread_cycles s 0);
  Alcotest.(check int) "thread 1" 70 (Scheduler.thread_cycles s 1);
  Alcotest.(check int) "steps" 3 (Scheduler.total_steps s)

let test_min_clock_scheduling () =
  (* The cheap-stepping thread runs many steps while the expensive one
     advances once: order follows virtual time, not spawn order. *)
  let s = Scheduler.create () in
  let trace = ref [] in
  let log tag = trace := tag :: !trace in
  ignore
    (Scheduler.spawn s (fun () ->
         log "A1";
         Scheduler.step s ~cost:1000;
         log "A2")
      : int);
  ignore
    (Scheduler.spawn s (fun () ->
         for i = 1 to 3 do
           log (Printf.sprintf "B%d" i);
           Scheduler.step s ~cost:10
         done)
      : int);
  ignore (Scheduler.run s);
  (* The initial tie at virtual time 0 may order A1 and B1 either way,
     but A's 1000-cycle step must outlast all three of B's 10-cycle
     steps: A2 comes last. *)
  let t = List.rev !trace in
  Alcotest.(check int) "five events" 5 (List.length t);
  Alcotest.(check string) "A2 last" "A2" (List.nth t 4);
  let b_indices =
    List.filteri (fun _ tag -> String.length tag = 2 && tag.[0] = 'B') t
  in
  Alcotest.(check (list string)) "B in order" [ "B1"; "B2"; "B3" ] b_indices

let test_determinism () =
  let run seed =
    let s = Scheduler.create ~seed ~cost_jitter:5 () in
    let trace = ref [] in
    for t = 0 to 3 do
      ignore
        (Scheduler.spawn s (fun () ->
             for _ = 1 to 20 do
               trace := t :: !trace;
               Scheduler.step s ~cost:3
             done)
          : int)
    done;
    ignore (Scheduler.run s);
    (!trace, Scheduler.elapsed_cycles s)
  in
  Alcotest.(check bool) "same seed, same trace" true (run 5 = run 5);
  Alcotest.(check bool) "different seed, different trace" true
    (run 5 <> run 6)

let test_crash_abandons_everything () =
  let s = Scheduler.create () in
  let completed = ref 0 in
  for _ = 0 to 3 do
    ignore
      (Scheduler.spawn s (fun () ->
           for _ = 1 to 100 do
             Scheduler.step s ~cost:1
           done;
           incr completed)
        : int)
  done;
  (match Scheduler.run ~crash_at_step:50 s with
  | Scheduler.Crashed { at_step } -> Alcotest.(check int) "step" 50 at_step
  | _ -> Alcotest.fail "expected crash");
  Alcotest.(check int) "nobody finished" 0 !completed;
  Alcotest.(check bool) "flag" true (Scheduler.is_crashed s);
  Alcotest.(check int) "no steps after crash" 50 (Scheduler.total_steps s)

let test_crash_beyond_end_is_completion () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> Scheduler.step s ~cost:1) : int);
  match Scheduler.run ~crash_at_step:1_000_000 s with
  | Scheduler.Completed -> ()
  | _ -> Alcotest.fail "crash point never reached: run completes"

let test_mutex_exclusion () =
  let s = Scheduler.create ~seed:3 () in
  let m = Mutex.create s in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for _ = 0 to 7 do
    ignore
      (Scheduler.spawn s (fun () ->
           for _ = 1 to 25 do
             Mutex.lock m;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Scheduler.step s ~cost:7;
             incr total;
             decr inside;
             Mutex.unlock m
           done)
        : int)
  done;
  ignore (Scheduler.run s);
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all sections ran" 200 !total

let test_mutex_handoff_advances_clock () =
  let s = Scheduler.create () in
  let m = Mutex.create s in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m;
         Scheduler.step s ~cost:500;
         Mutex.unlock m)
      : int);
  ignore
    (Scheduler.spawn s (fun () ->
         Scheduler.step s ~cost:1 (* arrive second *);
         Mutex.lock m;
         Scheduler.step s ~cost:10;
         Mutex.unlock m)
      : int);
  ignore (Scheduler.run s);
  (* The waiter resumed at the release time (>= 500) and then did 10. *)
  Alcotest.(check bool) "waiter clock jumped" true
    (Scheduler.thread_cycles s 1 >= 510)

let test_mutex_errors () =
  let s = Scheduler.create () in
  let m = Mutex.create s in
  let errors = ref [] in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m;
         (try Mutex.lock m
          with Invalid_argument e -> errors := e :: !errors);
         Mutex.unlock m;
         try Mutex.unlock m with Invalid_argument e -> errors := e :: !errors)
      : int);
  ignore (Scheduler.run s);
  Alcotest.(check int) "recursive lock and bad unlock rejected" 2
    (List.length !errors)

let test_mutex_owner () =
  let s = Scheduler.create () in
  let m = Mutex.create s in
  let observed = ref None in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m;
         observed := Mutex.owner m;
         Mutex.unlock m)
      : int);
  ignore (Scheduler.run s);
  Alcotest.(check (option int)) "owner while held" (Some 0) !observed;
  Alcotest.(check (option int)) "free after" None (Mutex.owner m)

let test_deadlock_detection () =
  let s = Scheduler.create () in
  let m1 = Mutex.create s and m2 = Mutex.create s in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m1;
         Scheduler.step s ~cost:10;
         Mutex.lock m2;
         Mutex.unlock m2;
         Mutex.unlock m1)
      : int);
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m2;
         Scheduler.step s ~cost:10;
         Mutex.lock m1;
         Mutex.unlock m1;
         Mutex.unlock m2)
      : int);
  match Scheduler.run s with
  | Scheduler.Deadlocked { blocked } ->
      Alcotest.(check int) "both stuck" 2 (List.length blocked)
  | _ -> Alcotest.fail "expected deadlock"

let test_exception_propagates () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> failwith "boom") : int);
  Alcotest.check_raises "thread failure surfaces" (Failure "boom") (fun () ->
      ignore (Scheduler.run s))

let test_run_once_only () =
  let s = Scheduler.create () in
  ignore (Scheduler.spawn s (fun () -> ()) : int);
  ignore (Scheduler.run s);
  check_raises_invalid "second run" (fun () -> ignore (Scheduler.run s));
  check_raises_invalid "spawn after run" (fun () ->
      ignore (Scheduler.spawn s (fun () -> ())))

let test_fifo_handoff () =
  let s = Scheduler.create () in
  let m = Mutex.create s in
  let order = ref [] in
  ignore
    (Scheduler.spawn s (fun () ->
         Mutex.lock m;
         Scheduler.step s ~cost:100;
         Mutex.unlock m)
      : int);
  for t = 1 to 3 do
    ignore
      (Scheduler.spawn s (fun () ->
           Scheduler.step s ~cost:t (* stagger arrival: 1, 2, 3 *);
           Mutex.lock m;
           order := t :: !order;
           Mutex.unlock m)
        : int)
  done;
  ignore (Scheduler.run s);
  Alcotest.(check (list int)) "waiters served in arrival order" [ 1; 2; 3 ]
    (List.rev !order)

let test_rng_basics () =
  let r = Rng.create ~seed:1 in
  let a = Rng.next r and b = Rng.next r in
  Alcotest.(check bool) "progresses" true (not (Int64.equal a b));
  let r1 = Rng.create ~seed:1 in
  Alcotest.check int64 "deterministic" a (Rng.next r1);
  let c = Rng.copy r in
  Alcotest.check int64 "copy tracks state" (Rng.next r) (Rng.next c);
  let bounded = List.init 1000 (fun _ -> Rng.int r 7) in
  Alcotest.(check bool) "int in range" true
    (List.for_all (fun x -> x >= 0 && x < 7) bounded);
  let f = Rng.float r 2.0 in
  Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.);
  check_raises_invalid "bad bound" (fun () -> ignore (Rng.int r 0))

let prop_elapsed_is_max_of_sums =
  qcheck ~count:100 "elapsed = max over threads of cost sums"
    QCheck2.Gen.(list_size (int_range 1 6) (list_size (int_range 1 30) (int_range 0 50)))
    (fun costs_per_thread ->
      let s = Scheduler.create () in
      List.iter
        (fun costs ->
          ignore
            (Scheduler.spawn s (fun () ->
                 List.iter (fun c -> Scheduler.step s ~cost:c) costs)
              : int))
        costs_per_thread;
      ignore (Scheduler.run s);
      let expect =
        List.fold_left
          (fun m costs -> max m (List.fold_left ( + ) 0 costs))
          0 costs_per_thread
      in
      Scheduler.elapsed_cycles s = expect)

let prop_crash_step_bounds_steps =
  qcheck ~count:100 "a crash at k executes exactly min(k, total) steps"
    QCheck2.Gen.(pair (int_range 1 120) (int_range 1 4))
    (fun (k, threads) ->
      let s = Scheduler.create () in
      for _ = 1 to threads do
        ignore
          (Scheduler.spawn s (fun () ->
               for _ = 1 to 25 do
                 Scheduler.step s ~cost:1
               done)
            : int)
      done;
      ignore (Scheduler.run ~crash_at_step:k s);
      Scheduler.total_steps s = min k (threads * 25))

let suite =
  ( "sched",
    [
      case "single thread completes" test_single_thread;
      case "spawn ids in order" test_spawn_ids_in_order;
      case "self inside and outside" test_self;
      case "elapsed is max virtual clock" test_elapsed_is_max_vclock;
      case "min-clock scheduling order" test_min_clock_scheduling;
      case "determinism under seed" test_determinism;
      case "crash abandons all threads" test_crash_abandons_everything;
      case "crash point beyond end completes" test_crash_beyond_end_is_completion;
      case "mutex: mutual exclusion" test_mutex_exclusion;
      case "mutex: handoff advances waiter clock"
        test_mutex_handoff_advances_clock;
      case "mutex: recursive lock / foreign unlock rejected" test_mutex_errors;
      case "mutex: owner reporting" test_mutex_owner;
      case "mutex: FIFO handoff" test_fifo_handoff;
      case "deadlock detection" test_deadlock_detection;
      case "thread exception propagates" test_exception_propagates;
      case "run-once discipline" test_run_once_only;
      case "rng basics" test_rng_basics;
      prop_elapsed_is_max_of_sums;
      prop_crash_step_bounds_steps;
    ] )
