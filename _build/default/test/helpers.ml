(* Shared scaffolding for the test suites. *)

module Pmem = Nvm.Pmem
module Config = Nvm.Config
module Heap = Pheap.Heap
module Scheduler = Sched.Scheduler
module Rng = Sched.Sim_rng

let small_pmem ?(journal = false) () = Pmem.create ~journal Config.test_small

let desktop_pmem ?(journal = false) ?(region_mib = 8) () =
  Pmem.create ~journal
    (Config.with_region_size Config.desktop (region_mib * 1024 * 1024))

let small_heap ?journal () =
  let pmem = small_pmem ?journal () in
  (pmem, Heap.create pmem ~base:0 ~size:(Config.test_small.Config.region_size))

let desktop_heap ?journal ?region_mib () =
  let pmem = desktop_pmem ?journal ?region_mib () in
  let size = (Pmem.config pmem).Config.region_size in
  (pmem, Heap.create pmem ~base:0 ~size)

(* Run [threads] bodies under a scheduler with the pmem step hook wired,
   as the real runner does.  Returns the scheduler outcome. *)
let run_threads ?seed ?crash_at_step pmem bodies =
  let sched = Scheduler.create ?seed () in
  List.iteri
    (fun i body ->
      ignore (Scheduler.spawn sched ~name:(Printf.sprintf "t%d" i) body : int))
    bodies;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  Fun.protect
    ~finally:(fun () -> Pmem.clear_step_hook pmem)
    (fun () -> Scheduler.run ?crash_at_step sched)

(* Same, but also hands each body the scheduler (for mutexes). *)
let run_threads_s ?seed ?crash_at_step pmem bodies =
  let sched = Scheduler.create ?seed () in
  List.iteri
    (fun i body ->
      ignore
        (Scheduler.spawn sched
           ~name:(Printf.sprintf "t%d" i)
           (fun () -> body sched)
          : int))
    bodies;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  Fun.protect
    ~finally:(fun () -> Pmem.clear_step_hook pmem)
    (fun () -> Scheduler.run ?crash_at_step sched)

let check_raises_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

let check_raises_corrupt name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Heap.Corrupt" name
  | exception Heap.Corrupt _ -> ()

let int64 = Alcotest.int64

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
