(* Tests for the TSP concept library: failure classes, hardware presets,
   the WSP energy model, the decision procedure (the executable form of
   Section 3), the recovery observer, and the facade. *)

open Helpers
module FC = Tsp_core.Failure_class
module HW = Tsp_core.Hardware
module Req = Tsp_core.Requirement
module Wsp = Tsp_core.Wsp
module Policy = Tsp_core.Policy
module Observer = Tsp_core.Recovery_observer
module Tsp = Tsp_core.Tsp

(* --- Failure_class --- *)

let test_fc_strings () =
  List.iter
    (fun fc ->
      match FC.of_string (FC.to_string fc) with
      | Ok fc' -> Alcotest.(check bool) "roundtrip" true (fc = fc')
      | Error e -> Alcotest.fail e)
    FC.all;
  Alcotest.(check bool) "aliases" true (FC.of_string "sigkill" = Ok FC.Process_crash)

let test_fc_severity_order () =
  Alcotest.(check bool) "process < kernel" true
    (FC.compare FC.Process_crash FC.Kernel_panic < 0);
  Alcotest.(check bool) "kernel < power" true
    (FC.compare FC.Kernel_panic FC.Power_outage < 0);
  Alcotest.(check (list int)) "severities distinct" [ 0; 1; 2 ]
    (List.map FC.severity FC.all)

(* --- Hardware --- *)

let test_hw_find () =
  List.iter
    (fun h ->
      match HW.find h.HW.name with
      | Some h' -> Alcotest.(check string) "found" h.HW.name h'.HW.name
      | None -> Alcotest.failf "%s not found" h.HW.name)
    HW.all;
  Alcotest.(check bool) "unknown" true (HW.find "nonesuch" = None)

let test_hw_presets_sane () =
  Alcotest.(check bool) "conventional has no standby energy" true
    (HW.conventional_server.HW.residual_energy_j = 0.);
  Alcotest.(check bool) "nvram memory tech" true
    (HW.nvram_machine.HW.memory = HW.Nvram);
  Alcotest.(check bool) "nvcache machine has nv caches" true
    HW.nvram_nvcache_machine.HW.nonvolatile_caches;
  Alcotest.(check bool) "ups server has ups" true HW.ups_server.HW.ups

(* --- Requirement --- *)

let test_requirement () =
  let r = Req.default in
  Alcotest.(check int) "tolerates all three" 3 (List.length r.Req.tolerated);
  Alcotest.(check bool) "fail-stop admits non-blocking" true
    (Req.mechanism r = `Non_blocking_suffices);
  let r2 = Req.make ~integrity:Req.Corrupting_sections [ FC.Process_crash ] in
  Alcotest.(check bool) "corruption needs rollback" true
    (Req.mechanism r2 = `Needs_rollback)

(* --- WSP --- *)

let test_wsp_stage_math () =
  let s =
    { Wsp.label = "x"; data_mb = 1000.; bandwidth_mb_s = 500.; power_w = 100.;
      budget_j = 250. }
  in
  let r = Wsp.run_stage s in
  Alcotest.(check bool) "time 2s" true (abs_float (r.Wsp.time_s -. 2.) < 1e-9);
  Alcotest.(check bool) "energy 200J" true
    (abs_float (r.Wsp.energy_j -. 200.) < 1e-9);
  Alcotest.(check bool) "feasible" true r.Wsp.feasible;
  let r2 = Wsp.run_stage { s with Wsp.budget_j = 100. } in
  Alcotest.(check bool) "infeasible on short budget" false r2.Wsp.feasible

let test_wsp_empty_stage () =
  let s =
    { Wsp.label = "none"; data_mb = 0.; bandwidth_mb_s = 1.; power_w = 100.;
      budget_j = 0. }
  in
  let r = Wsp.run_stage s in
  Alcotest.(check bool) "zero time" true (r.Wsp.time_s = 0.);
  Alcotest.(check bool) "feasible for free" true r.Wsp.feasible

let test_wsp_plan_shapes () =
  Alcotest.(check int) "dram machine: two stages" 2
    (List.length (Wsp.plan_for HW.wsp_machine));
  Alcotest.(check int) "nvram machine: one stage" 1
    (List.length (Wsp.plan_for HW.nvram_machine));
  Alcotest.(check int) "nv caches: nothing to do" 0
    (List.length (Wsp.plan_for HW.nvram_nvcache_machine))

let test_wsp_machine_succeeds () =
  let o = Wsp.of_hardware HW.wsp_machine in
  Alcotest.(check bool) "rescue fits" true o.Wsp.success;
  Alcotest.(check bool) "headroom > 1" true (Wsp.headroom o > 1.)

let test_wsp_conventional_fails () =
  let o = Wsp.of_hardware HW.conventional_server in
  Alcotest.(check bool) "no energy, no rescue" false o.Wsp.success

let test_wsp_headroom_empty_plan () =
  let o = Wsp.of_hardware HW.nvram_nvcache_machine in
  Alcotest.(check bool) "infinite headroom" true (Wsp.headroom o = infinity);
  Alcotest.(check bool) "trivially succeeds" true o.Wsp.success

(* --- Policy: the full Section 3 matrix, one expectation per cell --- *)

let is_tsp h fc = Policy.is_tsp (Policy.decide h fc)

let runtime_of h fc =
  match Policy.decide h fc with
  | Policy.Tsp _ -> Policy.No_runtime_action
  | Policy.Not_tsp { runtime; _ } -> runtime

let test_matrix_process_crash_always_tsp () =
  (* Appendix A: every POSIX platform gets process-crash TSP for free. *)
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (h.HW.name ^ ": process crash is TSP")
        true
        (is_tsp h FC.Process_crash))
    HW.all

let test_matrix_kernel_panic () =
  Alcotest.(check bool) "conventional: no panic TSP" false
    (is_tsp HW.conventional_server FC.Kernel_panic);
  Alcotest.(check bool) "hardened: panic TSP via flush+dump" true
    (is_tsp HW.panic_hardened_server FC.Kernel_panic);
  Alcotest.(check bool) "nvdimm: panic TSP" true
    (is_tsp HW.nvdimm_server FC.Kernel_panic);
  Alcotest.(check bool) "nvram: panic TSP" true
    (is_tsp HW.nvram_machine FC.Kernel_panic);
  Alcotest.(check bool) "conventional panic obligation is write-through" true
    (runtime_of HW.conventional_server FC.Kernel_panic
    = Policy.Write_through_to_storage)

let test_matrix_power_outage () =
  Alcotest.(check bool) "conventional: no outage TSP" false
    (is_tsp HW.conventional_server FC.Power_outage);
  Alcotest.(check bool) "ups: outage TSP" true
    (is_tsp HW.ups_server FC.Power_outage);
  Alcotest.(check bool) "wsp: outage TSP" true
    (is_tsp HW.wsp_machine FC.Power_outage);
  Alcotest.(check bool) "nvdimm: outage TSP" true
    (is_tsp HW.nvdimm_server FC.Power_outage);
  Alcotest.(check bool) "nvram: outage TSP" true
    (is_tsp HW.nvram_machine FC.Power_outage)

let test_matrix_nvram_without_energy () =
  (* NVRAM but not even enough standby energy to flush caches: stores
     must be flushed eagerly, but only to the NVM — not to storage. *)
  let h = { HW.nvram_machine with HW.residual_energy_j = 0. } in
  Alcotest.(check bool) "not TSP" false (is_tsp h FC.Power_outage);
  Alcotest.(check bool) "obligation is log flushing" true
    (runtime_of h FC.Power_outage = Policy.Flush_log_entries)

let test_matrix_nvcache_no_actions () =
  (match Policy.decide HW.nvram_nvcache_machine FC.Kernel_panic with
  | Policy.Tsp { actions = []; _ } -> ()
  | v -> Alcotest.failf "expected empty action list, got %a" Policy.pp_verdict v);
  match Policy.decide HW.nvram_nvcache_machine FC.Power_outage with
  | Policy.Tsp { actions = []; _ } -> ()
  | v -> Alcotest.failf "expected empty action list, got %a" Policy.pp_verdict v

let test_matrix_panic_without_handler_nvram () =
  let h = { HW.nvram_machine with HW.panic_flush_handler = false } in
  Alcotest.(check bool) "not TSP" false (is_tsp h FC.Kernel_panic);
  Alcotest.(check bool) "flush obligation suffices over NVRAM" true
    (runtime_of h FC.Kernel_panic = Policy.Flush_log_entries)

let test_weakest_obligation () =
  let ob h fcs = Policy.weakest_runtime_obligation h (Req.make fcs) in
  Alcotest.(check bool) "nvram tolerates all with no action" true
    (ob HW.nvram_machine FC.all = Policy.No_runtime_action);
  Alcotest.(check bool) "conventional, crash only: no action" true
    (ob HW.conventional_server [ FC.Process_crash ] = Policy.No_runtime_action);
  Alcotest.(check bool) "conventional, all: write-through" true
    (ob HW.conventional_server FC.all = Policy.Write_through_to_storage);
  let nvram_no_handler =
    { HW.nvram_machine with HW.panic_flush_handler = false }
  in
  Alcotest.(check bool) "mixed: strongest obligation wins" true
    (ob nvram_no_handler [ FC.Process_crash; FC.Kernel_panic ]
    = Policy.Flush_log_entries)

let test_crash_mode_mapping () =
  Alcotest.(check bool) "tsp -> rescue" true
    (Policy.crash_mode (Policy.decide HW.nvram_machine FC.Power_outage)
    = Pmem.Rescue);
  Alcotest.(check bool) "non-tsp -> discard" true
    (Policy.crash_mode (Policy.decide HW.conventional_server FC.Power_outage)
    = Pmem.Discard)

let test_decision_matrix_covers_everything () =
  let m = Policy.decision_matrix () in
  Alcotest.(check int) "all platforms" (List.length HW.all) (List.length m);
  List.iter
    (fun (_, verdicts) ->
      Alcotest.(check int) "all failure classes" 3 (List.length verdicts))
    m

(* --- Recovery observer --- *)

let test_observer_rescue () =
  let p = small_pmem ~journal:true () in
  for i = 0 to 40 do
    Pmem.store p (i * 8) (Int64.of_int i)
  done;
  Pmem.crash p Pmem.Rescue;
  let v = Observer.observe p in
  Alcotest.(check bool) "prefix ok" true v.Observer.prefix_ok;
  Alcotest.(check int) "no losses" 0 v.Observer.lost;
  Alcotest.(check int) "counts" 41 v.Observer.total_stores;
  Alcotest.(check int) "addresses" 41 v.Observer.distinct_addresses

let test_observer_discard () =
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 1L;
  Pmem.crash p Pmem.Discard;
  let v = Observer.observe p in
  Alcotest.(check bool) "prefix broken" false v.Observer.prefix_ok;
  Alcotest.(check int) "one lost" 1 v.Observer.lost

(* --- Crash executor --- *)

module Exec = Tsp_core.Crash_executor

let test_executor_tsp_bills_actions () =
  let p = small_pmem () in
  for i = 0 to 9 do
    Pmem.store p (i * 64) 1L
  done;
  let e = Exec.execute p ~hardware:HW.nvram_machine ~failure:FC.Kernel_panic in
  Alcotest.(check bool) "verdict tsp" true (Policy.is_tsp e.Exec.verdict);
  Alcotest.(check int) "ten lines rescued" 10 e.Exec.rescued_lines;
  Alcotest.(check int) "nothing dropped" 0 e.Exec.dropped_lines;
  Alcotest.(check bool) "flush action billed" true
    (List.exists
       (fun b -> b.Exec.action = Policy.Panic_flush_caches)
       e.Exec.bills);
  Alcotest.(check bool) "time positive" true (e.Exec.total_seconds > 0.)

let test_executor_process_crash_is_free () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  let e =
    Exec.execute p ~hardware:HW.conventional_server ~failure:FC.Process_crash
  in
  Alcotest.(check bool) "rescued anyway" true (e.Exec.rescued_lines = 1);
  Alcotest.(check bool) "zero cost" true
    (e.Exec.total_seconds = 0. && e.Exec.total_energy_j = 0.)

let test_executor_no_tsp_drops () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  let e =
    Exec.execute p ~hardware:HW.conventional_server ~failure:FC.Power_outage
  in
  Alcotest.(check bool) "not tsp" false (Policy.is_tsp e.Exec.verdict);
  Alcotest.(check int) "line dropped" 1 e.Exec.dropped_lines;
  Alcotest.(check (list unit)) "no actions billed" []
    (List.map (fun _ -> ()) e.Exec.bills)

let test_executor_wsp_bill_matches_model () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  let e = Exec.execute p ~hardware:HW.wsp_machine ~failure:FC.Power_outage in
  let expected = Tsp_core.Wsp.of_hardware HW.wsp_machine in
  Alcotest.(check bool) "energy matches the WSP model" true
    (abs_float (e.Exec.total_energy_j -. expected.Tsp_core.Wsp.total_energy_j)
     < 1e-6)

(* --- Facade --- *)

let test_plan_and_crash () =
  let plan = Tsp.plan HW.nvram_machine Req.default in
  Alcotest.(check bool) "tsp everywhere on nvram" true (Tsp.tsp_everywhere plan);
  Alcotest.(check bool) "no obligation" true
    (plan.Tsp.obligation = Policy.No_runtime_action);
  let plan2 = Tsp.plan HW.conventional_server Req.default in
  Alcotest.(check bool) "not everywhere on conventional" false
    (Tsp.tsp_everywhere plan2);
  (* The facade applies the right device semantics. *)
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 5L;
  let v =
    Tsp.crash p ~hardware:HW.nvram_machine ~failure:FC.Power_outage
  in
  Alcotest.(check bool) "verdict is tsp" true (Policy.is_tsp v);
  Alcotest.check int64 "value rescued" 5L (Pmem.load_durable p 0)

let test_crash_discard_via_facade () =
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 5L;
  let v =
    Tsp.crash p ~hardware:HW.conventional_server ~failure:FC.Power_outage
  in
  Alcotest.(check bool) "verdict not tsp" false (Policy.is_tsp v);
  Alcotest.check int64 "value lost" 0L (Pmem.load_durable p 0)

let suite =
  ( "core",
    [
      case "failure class: strings" test_fc_strings;
      case "failure class: severity order" test_fc_severity_order;
      case "hardware: find" test_hw_find;
      case "hardware: preset sanity" test_hw_presets_sane;
      case "requirement: mechanism selection" test_requirement;
      case "wsp: stage arithmetic" test_wsp_stage_math;
      case "wsp: empty stage" test_wsp_empty_stage;
      case "wsp: plan shapes per memory tech" test_wsp_plan_shapes;
      case "wsp: the WSP machine's rescue fits" test_wsp_machine_succeeds;
      case "wsp: conventional hardware cannot rescue"
        test_wsp_conventional_fails;
      case "wsp: empty plan semantics" test_wsp_headroom_empty_plan;
      case "policy: process crash is always TSP (Appendix A)"
        test_matrix_process_crash_always_tsp;
      case "policy: kernel panic column" test_matrix_kernel_panic;
      case "policy: power outage column" test_matrix_power_outage;
      case "policy: NVRAM without standby energy" test_matrix_nvram_without_energy;
      case "policy: nothing to do with NV caches" test_matrix_nvcache_no_actions;
      case "policy: NVRAM without a panic handler"
        test_matrix_panic_without_handler_nvram;
      case "policy: weakest runtime obligation" test_weakest_obligation;
      case "policy: crash mode mapping" test_crash_mode_mapping;
      case "policy: matrix covers platforms x failures"
        test_decision_matrix_covers_everything;
      case "executor: TSP actions billed and executed"
        test_executor_tsp_bills_actions;
      case "executor: process-crash rescue is free"
        test_executor_process_crash_is_free;
      case "executor: non-TSP crash drops lines" test_executor_no_tsp_drops;
      case "executor: WSP bill matches the energy model"
        test_executor_wsp_bill_matches_model;
      case "observer: rescue shows the full prefix" test_observer_rescue;
      case "observer: discard breaks the prefix" test_observer_discard;
      case "facade: plan and TSP crash" test_plan_and_crash;
      case "facade: non-TSP crash discards" test_crash_discard_via_facade;
    ] )
