(* Tests for the lock-free Michael-Scott queue: FIFO semantics,
   model-based random testing, concurrency, and the Section 4.1 claim on
   a second non-blocking structure — crash anywhere, re-attach, done. *)

open Helpers
module Queue_lf = Tsp_maps.Lockfree_queue
module Heap_gc = Pheap.Heap_gc

let fresh () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  (pmem, heap, Queue_lf.create heap ())

let test_fifo_basics () =
  let _, _, q = fresh () in
  Alcotest.(check bool) "fresh empty" true (Queue_lf.is_empty q);
  Alcotest.(check (option int64)) "dequeue empty" None (Queue_lf.dequeue q);
  Queue_lf.enqueue q 1L;
  Queue_lf.enqueue q 2L;
  Queue_lf.enqueue q 3L;
  Alcotest.(check int) "length" 3 (Queue_lf.length q);
  Alcotest.(check (list int64)) "snapshot order" [ 1L; 2L; 3L ]
    (Queue_lf.to_list q);
  Alcotest.(check (option int64)) "fifo 1" (Some 1L) (Queue_lf.dequeue q);
  Alcotest.(check (option int64)) "fifo 2" (Some 2L) (Queue_lf.dequeue q);
  Queue_lf.enqueue q 4L;
  Alcotest.(check (option int64)) "fifo 3" (Some 3L) (Queue_lf.dequeue q);
  Alcotest.(check (option int64)) "fifo 4" (Some 4L) (Queue_lf.dequeue q);
  Alcotest.(check bool) "drained" true (Queue_lf.is_empty q)

let test_attach () =
  let _, heap, q = fresh () in
  Queue_lf.enqueue q 9L;
  let q2 = Queue_lf.attach heap (Queue_lf.root q) in
  Alcotest.(check (list int64)) "same contents" [ 9L ] (Queue_lf.to_list q2);
  check_raises_invalid "attach to non-header" (fun () ->
      ignore (Queue_lf.attach heap 64))

let test_check_plain () =
  let _, heap, q = fresh () in
  for i = 1 to 5 do
    Queue_lf.enqueue q (Int64.of_int i)
  done;
  ignore (Queue_lf.dequeue q);
  Alcotest.(check bool) "audit ok" true
    (Queue_lf.check_plain heap ~root:(Queue_lf.root q) = Ok ())

let prop_queue_vs_model =
  qcheck ~count:80 "queue behaves like Stdlib.Queue"
    QCheck2.Gen.(list_size (int_range 1 150) (option (int_range 0 1000)))
    (fun script ->
      let _, _, q = fresh () in
      let model : int64 Queue.t = Queue.create () in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              Queue_lf.enqueue q (Int64.of_int v);
              Queue.add (Int64.of_int v) model;
              true
          | None ->
              let got = Queue_lf.dequeue q in
              let expected = Queue.take_opt model in
              got = expected)
        script
      && Queue_lf.to_list q = List.of_seq (Queue.to_seq model))

let test_concurrent_producers_consumers () =
  let pmem, heap, q = fresh () in
  let produced = 4 * 60 in
  let consumed = ref [] in
  let sched = Scheduler.create ~seed:13 () in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched
         ~name:(Printf.sprintf "producer-%d" tid)
         (fun () ->
           for i = 0 to 59 do
             Queue_lf.enqueue q (Int64.of_int ((1000 * tid) + i))
           done)
        : int)
  done;
  for _ = 0 to 1 do
    ignore
      (Scheduler.spawn sched ~name:"consumer" (fun () ->
           for _ = 1 to 80 do
             match Queue_lf.dequeue q with
             | Some v -> consumed := v :: !consumed
             | None -> ()
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  ignore (Scheduler.run sched);
  Pmem.clear_step_hook pmem;
  let remaining = Queue_lf.to_list q in
  (* Conservation: everything produced is either consumed or queued,
     exactly once. *)
  Alcotest.(check int) "nothing lost or duplicated" produced
    (List.length !consumed + List.length remaining);
  let all = List.sort compare (!consumed @ remaining) in
  Alcotest.(check bool) "all values distinct" true
    (List.length (List.sort_uniq compare all) = produced);
  (* Per-producer FIFO: the consumed+queued sequence of each producer's
     values must be in increasing order. *)
  let in_order tid =
    let seq =
      List.filter
        (fun v -> Int64.to_int v / 1000 = tid)
        (List.rev !consumed @ remaining)
    in
    let rec sorted = function
      | a :: (b :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    sorted seq
  in
  for tid = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "producer %d FIFO preserved" tid)
      true (in_order tid)
  done;
  Alcotest.(check bool) "audit ok" true
    (Queue_lf.check_plain heap ~root:(Queue_lf.root q) = Ok ())

let test_crash_recovery_zero_mechanism () =
  (* The Section 4.1 claim on a second structure: crash all threads at
     an arbitrary point, rescue (TSP), re-attach.  No logs, no rollback;
     the queue must audit clean, preserve per-producer FIFO order and
     neither lose nor duplicate values that were fully enqueued. *)
  let pmem, heap, q = fresh () in
  Pmem.persist_all pmem;
  let consumed = ref [] in
  let sched = Scheduler.create ~seed:41 () in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 0 to 199 do
             Queue_lf.enqueue q (Int64.of_int ((1000 * tid) + i))
           done)
        : int)
  done;
  ignore
    (Scheduler.spawn sched (fun () ->
         for _ = 1 to 300 do
           match Queue_lf.dequeue q with
           | Some v -> consumed := v :: !consumed
           | None -> ()
         done)
      : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:15_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Rescue;
  Pmem.recover pmem;
  let size = (Pmem.config pmem).Config.region_size in
  let heap' = Heap.attach pmem ~base:0 ~size in
  ignore heap;
  let root = Heap.get_root heap' in
  Alcotest.(check bool) "audit ok after crash" true
    (Queue_lf.check_plain heap' ~root = Ok ());
  let q' = Queue_lf.attach heap' root in
  let remaining = Queue_lf.to_list q' in
  let all = List.sort compare (!consumed @ remaining) in
  Alcotest.(check bool) "no duplicates after crash" true
    (List.length (List.sort_uniq compare all) = List.length all);
  (* The dequeued dummies the consumer orphaned are reclaimed by GC. *)
  let gc = Heap_gc.collect heap' in
  Alcotest.(check bool) "GC reclaimed dequeued nodes" true
    (gc.Heap_gc.freed_objects >= List.length !consumed - 1);
  (* The queue is usable immediately. *)
  Queue_lf.enqueue q' 424242L;
  Alcotest.(check bool) "usable after recovery" true
    (List.mem 424242L (Queue_lf.to_list q'))

let suite =
  ( "queue",
    [
      case "fifo basics" test_fifo_basics;
      case "attach" test_attach;
      case "structural audit" test_check_plain;
      prop_queue_vs_model;
      case "concurrent producers/consumers conserve values"
        test_concurrent_producers_consumers;
      slow_case "crash recovery with zero mechanism (Section 4.1)"
        test_crash_recovery_zero_mechanism;
    ] )
