(* Whole-System Persistence energy accounting (Section 3's archetypal
   TSP design), across hardware design points.

   The rescue is "timely" (runs only at power failure) and must be
   "sufficient" (each stage's energy budget covers its data).  We print
   the plan for every platform preset and then sweep the supercapacitor
   budget to find the cliff where the DRAM-to-flash stage stops fitting.

   Run with: dune exec examples/wsp_demo.exe *)

let () =
  List.iter
    (fun hw ->
      let outcome = Tsp_core.Wsp.of_hardware hw in
      Fmt.pr "@[<v2>%a:@ %a@ headroom %.2f@]@.@." Tsp_core.Hardware.pp hw
        Tsp_core.Wsp.pp_outcome outcome
        (Tsp_core.Wsp.headroom outcome))
    Tsp_core.Hardware.all;

  Fmt.pr "supercap sizing sweep for the WSP machine (64 GB DRAM @ 1 GB/s \
          to flash, 150 W):@.";
  List.iter
    (fun budget ->
      let hw =
        { Tsp_core.Hardware.wsp_machine with Tsp_core.Hardware.supercap_energy_j = budget }
      in
      let o = Tsp_core.Wsp.of_hardware hw in
      Fmt.pr "  %7.0f J -> %s (needs %.0f J)@." budget
        (if o.Tsp_core.Wsp.success then "rescue fits" else "INSUFFICIENT")
        o.Tsp_core.Wsp.total_energy_j)
    [ 2_000.; 5_000.; 9_000.; 9_900.; 10_000.; 15_000.; 25_000. ];
  Fmt.pr
    "@.Below the cliff, the designer must either add energy storage or \
     fall back to a non-TSP mechanism (synchronous write-through).@."
