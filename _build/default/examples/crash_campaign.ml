(* A miniature Section 5.2: repeated fault injection over both map
   implementations, with the recovery observer enabled.

   Every injected crash abandons all eight workers between two memory
   operations; recovery must then produce a heap whose invariants hold.
   We run both paper variants (Atlas log-only for the mutex map, nothing
   at all for the skip list) under a TSP-covered failure, then the E9
   negative control: the same Atlas mode under a power outage on
   hardware with no standby energy — where TSP's premise is false and
   violations appear.

   Run with: dune exec examples/crash_campaign.exe *)

module Runner = Workload.Runner
module FI = Workload.Fault_injector

let campaign name base runs =
  let spec = { (FI.default_spec base) with FI.runs } in
  let s = FI.run spec in
  Fmt.pr "@[<v2>%s:@ %a@]@.@." name FI.pp_summary s;
  s

let () =
  let base =
    {
      (Runner.calibrated_config Nvm.Config.desktop) with
      Runner.iterations = 600;
      journal = true;
      workload = Runner.Counters { h_keys = 8192; preload = true };
    }
  in
  let mutex_tsp =
    campaign "mutex map + Atlas log-only, process crash (TSP)"
      { base with Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only }
      25
  in
  let nonblocking =
    campaign "lock-free skip list, no mechanism at all, process crash (TSP)"
      { base with Runner.variant = Runner.Nonblocking_map }
      25
  in
  let negative =
    campaign
      "NEGATIVE CONTROL: log-only under power outage on conventional \
       hardware (no TSP)"
      {
        base with
        Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
        hardware = Tsp_core.Hardware.conventional_server;
        failure = Tsp_core.Failure_class.Power_outage;
      }
      25
  in
  Fmt.pr "summary: mutex+TSP %s, non-blocking+TSP %s, no-TSP control %s@."
    (if FI.all_consistent mutex_tsp then "all consistent" else "VIOLATIONS")
    (if FI.all_consistent nonblocking then "all consistent" else "VIOLATIONS")
    (if FI.all_consistent negative then
       "unexpectedly consistent (weak crash point?)"
     else "violations, as predicted")
