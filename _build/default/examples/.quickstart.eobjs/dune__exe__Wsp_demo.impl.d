examples/wsp_demo.ml: Fmt List Tsp_core
