examples/kvstore_nonblocking.mli:
