examples/memcache_like.mli:
