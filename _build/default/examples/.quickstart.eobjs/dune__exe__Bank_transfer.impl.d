examples/bank_transfer.ml: Atlas Fmt Int64 List Nvm Tsp_core Workload
