examples/memcache_like.ml: Array Atlas Bytes Char Fmt Hashtbl Nvm Pheap Printf Scanf Sched String Tsp_core Tsp_maps
