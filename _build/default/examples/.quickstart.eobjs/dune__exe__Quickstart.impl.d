examples/quickstart.ml: Dump Fmt Int64 Nvm Pheap Tsp_core
