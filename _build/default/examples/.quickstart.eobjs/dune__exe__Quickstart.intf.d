examples/quickstart.mli:
