examples/crash_campaign.mli:
