examples/kvstore_nonblocking.ml: Fmt Int64 Nvm Pheap Printf Sched Tsp_core Tsp_maps
