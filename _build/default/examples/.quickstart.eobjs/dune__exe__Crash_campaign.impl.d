examples/crash_campaign.ml: Atlas Fmt Nvm Tsp_core Workload
