examples/wsp_demo.mli:
