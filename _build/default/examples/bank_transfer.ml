(* Bank transfers: why mutex-based software needs Atlas.

   A transfer debits one account and credits another inside one critical
   section — two stores that must be failure-atomic.  We crash the same
   workload twice, at the same step, under the same TSP-covered failure:

   - unfortified (No_log): the crash can land between the debit and the
     credit, and recovery finds money destroyed;
   - Atlas in TSP mode (Log_only): the interrupted section is rolled
     back during recovery and the books balance — with no synchronous
     flushing during the run.

   Run with: dune exec examples/bank_transfer.exe *)

module Runner = Workload.Runner

let accounts = 256
let initial_balance = 1000

let run_one mode crash_at seed =
  let base = Runner.calibrated_config Nvm.Config.desktop in
  Runner.run
    {
      base with
      Runner.variant = Runner.Mutex_map mode;
      workload = Runner.Transfers { accounts; initial_balance };
      iterations = 2000;
      threads = 8;
      seed;
      crash_at_step = Some crash_at;
      hardware = Tsp_core.Hardware.nvram_machine;
      failure = Tsp_core.Failure_class.Process_crash;
    }

let total entries =
  List.fold_left (fun acc (_, v) -> Int64.add acc v) 0L entries

let find_torn_seed () =
  (* Scan seeds and crash points until the unfortified run tears a
     transfer; determinism makes the tear reproducible. *)
  let rec search seed =
    if seed > 400 then None
    else
      let crash_at = 20_000 + (97 * seed) in
      let r = run_one Atlas.Mode.No_log crash_at seed in
      if not r.Runner.invariants.Workload.Invariant.ok then
        Some (seed, crash_at, r)
      else search (seed + 1)
  in
  search 1

let () =
  let expected = Int64.of_int (accounts * initial_balance) in
  Fmt.pr "Initial funds across %d accounts: %Ld@.@." accounts expected;
  match find_torn_seed () with
  | None ->
      Fmt.pr
        "No torn transfer found in the scanned seeds — increase the range.@."
  | Some (seed, crash_at, unfortified) ->
      Fmt.pr "--- unfortified mutex code, crash at step %d (seed %d) ---@."
        crash_at seed;
      Fmt.pr "recovered total: %Ld (expected %Ld)@." (total unfortified.Runner.entries)
        expected;
      Fmt.pr "%a@.@." Workload.Invariant.pp unfortified.Runner.invariants;
      let fortified = run_one Atlas.Mode.Log_only crash_at seed in
      Fmt.pr "--- same crash, Atlas log-only (TSP mode) ---@.";
      (match fortified.Runner.crash with
      | Some { Runner.atlas_recovery = Some rep; _ } ->
          Fmt.pr "recovery: %a@." Atlas.Recovery.pp_report rep
      | _ -> ());
      Fmt.pr "recovered total: %Ld (expected %Ld)@." (total fortified.Runner.entries)
        expected;
      Fmt.pr "%a@.@." Workload.Invariant.pp fortified.Runner.invariants;
      Fmt.pr
        "Atlas rolled the interrupted section back; the unfortified run \
         lost the difference. Same crash, same hardware — the logging made \
         the difference, and TSP made the logging cheap.@."
