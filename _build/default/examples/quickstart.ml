(* Quickstart: the "NVM style" of programming on the simulated device.

   We create a persistent heap, build a tiny linked list reachable from
   the heap root, crash the machine under a TSP-covered failure, recover,
   and find the data intact — without a single flush during operation.

   Run with: dune exec examples/quickstart.exe *)

module Pmem = Nvm.Pmem
module Heap = Pheap.Heap
module Kind = Pheap.Kind

(* A cons cell: [0] = value (raw), [1] = next (pointer). *)
let cell_kind =
  Kind.register ~name:"quickstart_cell"
    ~scan:(fun ~load ~addr ~words:_ ->
      let next = Int64.to_int (load (addr + 8)) in
      if next <> 0 then [ next ] else [])
    ()

let cons heap value next =
  let cell = Heap.alloc heap ~kind:cell_kind ~words:2 in
  Heap.store_field heap cell 0 (Int64.of_int value);
  Heap.store_field_int heap cell 1 next;
  cell

let rec to_list heap cell =
  if cell = Heap.null then []
  else
    Heap.load_field_int heap cell 0
    :: to_list heap (Heap.load_field_int heap cell 1)

let () =
  (* A journaling device so we can ask the recovery observer afterwards
     whether every store survived. *)
  let pmem = Pmem.create ~journal:true Nvm.Config.desktop in
  let size = 1024 * 1024 in
  let heap = Heap.create pmem ~base:0 ~size in

  (* Build [1; 2; 3] in the persistent heap and hang it off the root. *)
  let list = cons heap 1 (cons heap 2 (cons heap 3 Heap.null)) in
  Heap.set_root heap list;
  Fmt.pr "before crash: root list = %a@."
    Fmt.(Dump.list int)
    (to_list heap (Heap.get_root heap));
  Fmt.pr "dirty cache lines right now: %d (nothing was flushed)@."
    (Pmem.dirty_line_count pmem);

  (* Crash under a failure class for which TSP is available on this
     hardware: the policy engine decides the device's behaviour. *)
  let verdict =
    Tsp_core.Tsp.crash pmem ~hardware:Tsp_core.Hardware.nvram_machine
      ~failure:Tsp_core.Failure_class.Process_crash
  in
  Fmt.pr "@.crash injected: %a@." Tsp_core.Policy.pp_verdict verdict;
  Fmt.pr "%a@." Tsp_core.Recovery_observer.pp
    (Tsp_core.Recovery_observer.observe pmem);

  (* Recover: re-attach, let the recovery GC rebuild allocator state. *)
  Pmem.recover pmem;
  let heap = Heap.attach pmem ~base:0 ~size in
  let gc = Pheap.Heap_gc.collect heap in
  Fmt.pr "@.after recovery: root list = %a@."
    Fmt.(Dump.list int)
    (to_list heap (Heap.get_root heap));
  Fmt.pr "recovery GC: %a@." Pheap.Heap_gc.pp_stats gc;
  Fmt.pr "@.The list survived a crash with zero failure-free overhead: that \
          is Timely Sufficient Persistence.@."
