(* A crash-resilient key-value store in ~zero lines of recovery code.

   Section 4.1's observation, executed: a lock-free skip list over a
   persistent heap is consistently recoverable under TSP with no logging,
   no flushing and no recovery logic whatsoever.  We run concurrent
   writers, kill them all mid-flight, and simply re-attach.

   Run with: dune exec examples/kvstore_nonblocking.exe *)

module Pmem = Nvm.Pmem
module Heap = Pheap.Heap
module Skiplist = Tsp_maps.Lockfree_skiplist
module Scheduler = Sched.Scheduler

let () =
  let pmem = Pmem.create Nvm.Config.desktop in
  let size = 8 * 1024 * 1024 in
  let heap = Heap.create pmem ~base:0 ~size in
  let threads = 8 in
  let store = Skiplist.create heap ~num_threads:threads ~seed:42 () in
  let ops = Skiplist.ops store in

  (* Concurrent writers under the deterministic scheduler; each thread
     upserts its own key range and bumps a shared hit counter. *)
  let sched = Scheduler.create ~seed:7 () in
  for tid = 0 to threads - 1 do
    ignore
      (Scheduler.spawn sched ~name:(Printf.sprintf "writer-%d" tid)
         (fun () ->
           for i = 1 to 500 do
             ops.Tsp_maps.Map_intf.set ~tid
               ~key:((1000 * tid) + (i mod 100))
               ~value:(Int64.of_int i);
             ops.Tsp_maps.Map_intf.incr ~tid ~key:0 ~by:1L
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:60_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed { at_step } ->
      Fmt.pr "killed all %d writers at step %d@." threads at_step
  | _ -> Fmt.pr "writers finished before the crash point@.");
  Fmt.pr "flushes issued during the whole run: %d@."
    (Pmem.stats pmem).Nvm.Stats.flushes;

  (* TSP crash, then recovery = re-attach.  That's all of it. *)
  ignore
    (Tsp_core.Tsp.crash pmem ~hardware:Tsp_core.Hardware.nvram_machine
       ~failure:Tsp_core.Failure_class.Process_crash
      : Tsp_core.Policy.verdict);
  Pmem.recover pmem;
  let heap = Heap.attach pmem ~base:0 ~size in
  let root = Heap.get_root heap in
  (match Skiplist.check_plain heap ~root with
  | Ok () -> Fmt.pr "@.skip list structurally consistent after crash@."
  | Error e -> Fmt.pr "@.UNEXPECTED: %s@." e);
  let entries = Skiplist.size_plain heap ~root in
  let hits =
    Skiplist.fold_plain heap ~root
      (fun k v acc -> if k = 0 then v else acc)
      0L
  in
  Fmt.pr "%d keys present; shared counter reached %Ld@." entries hits;
  (* The recovery GC is optional here — it only reclaims nodes whose
     insertion lost its race or was cut off before linking. *)
  let gc = Pheap.Heap_gc.collect heap in
  Fmt.pr "optional GC pass: %a@." Pheap.Heap_gc.pp_stats gc;
  Fmt.pr
    "@.Zero runtime overhead, zero recovery code: the non-blocking \
     algorithm plus TSP did all the work.@."
