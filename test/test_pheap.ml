(* Tests for the persistent heap: layout codec, kind registry, free
   lists, the allocator, and the recovery-time GC. *)

open Helpers
module Layout = Pheap.Layout
module Kind = Pheap.Kind
module Freelist = Pheap.Freelist
module Heap_gc = Pheap.Heap_gc

(* A test kind whose every word is a pointer, distinct from the builtin
   so kind dispatch is exercised. *)
let pair_kind =
  Kind.register ~name:"test_pair"
    ~scan:(fun ~load ~addr ~words ->
      List.filter_map
        (fun i ->
          let v = Int64.to_int (load (addr + (8 * i))) in
          if v <> 0 then Some v else None)
        (List.init words (fun i -> i)))
    ()

(* --- Layout --- *)

let test_header_roundtrip () =
  let h = Layout.encode_header ~kind:7 ~words:12345 in
  Alcotest.(check bool) "valid" true (Layout.header_valid h);
  Alcotest.(check int) "kind" 7 (Layout.header_kind h);
  Alcotest.(check int) "words" 12345 (Layout.header_words h)

let test_header_validity () =
  Alcotest.(check bool) "zero invalid" false (Layout.header_valid 0L);
  Alcotest.(check bool) "random invalid" false
    (Layout.header_valid 0x123456789ABCDEFL);
  check_raises_invalid "kind too big" (fun () ->
      ignore (Layout.encode_header ~kind:256 ~words:1));
  check_raises_invalid "zero words" (fun () ->
      ignore (Layout.encode_header ~kind:1 ~words:0))

let test_obj_addresses () =
  Alcotest.(check int) "header below data" 92 (Layout.obj_header_addr 100);
  Alcotest.(check int) "total bytes" 32 (Layout.obj_total_bytes ~words:3)

(* --- Kind --- *)

let test_kind_builtins () =
  let load _ = 0L in
  Alcotest.(check (list int)) "raw scans nothing" []
    (Kind.scan_object ~kind:Kind.raw ~load ~addr:0 ~words:5);
  let load a = if a = 8 then 128L else 0L in
  Alcotest.(check (list int)) "all_pointers finds non-null" [ 128 ]
    (Kind.scan_object ~kind:Kind.all_pointers ~load ~addr:0 ~words:3)

let test_kind_registry () =
  Alcotest.(check bool) "registered" true (Kind.is_registered pair_kind);
  Alcotest.(check string) "name" "test_pair" (Kind.name pair_kind);
  Alcotest.(check bool) "free not registered" false
    (Kind.is_registered Layout.kind_free);
  (* Re-registering the same id with the same name is idempotent. *)
  let again = Kind.register ~kind:pair_kind ~name:"test_pair"
      ~scan:(fun ~load:_ ~addr:_ ~words:_ -> []) () in
  Alcotest.(check int) "same id" pair_kind again;
  check_raises_invalid "conflicting rebind" (fun () ->
      ignore (Kind.register ~kind:pair_kind ~name:"other" ~scan:(fun ~load:_ ~addr:_ ~words:_ -> []) ()));
  check_raises_invalid "unknown kind" (fun () ->
      ignore (Kind.scan_object ~kind:250 ~load:(fun _ -> 0L) ~addr:0 ~words:1))

(* --- Freelist --- *)

let test_freelist_exact () =
  let f = Freelist.create () in
  Freelist.add f ~addr:100 ~words:4;
  Alcotest.(check int) "free words" 4 (Freelist.total_free_words f);
  Alcotest.(check (option (pair int int))) "exact hit" (Some (100, 4))
    (Freelist.take f ~words:4);
  Alcotest.(check (option (pair int int))) "empty" None (Freelist.take f ~words:4);
  Alcotest.(check int) "drained" 0 (Freelist.total_free_words f)

let test_freelist_split_rule () =
  let f = Freelist.create () in
  Freelist.add f ~addr:100 ~words:5;
  (* A 5-word block cannot serve a 4-word request: the 1-word remainder
     has no room for a header+payload. *)
  Alcotest.(check (option (pair int int))) "unsplittable" None
    (Freelist.take f ~words:4);
  Freelist.add f ~addr:300 ~words:6;
  Alcotest.(check (option (pair int int))) "smallest splittable" (Some (300, 6))
    (Freelist.take f ~words:4)

let test_freelist_prefers_exact () =
  let f = Freelist.create () in
  Freelist.add f ~addr:100 ~words:10;
  Freelist.add f ~addr:200 ~words:4;
  Alcotest.(check (option (pair int int))) "exact beats larger" (Some (200, 4))
    (Freelist.take f ~words:4);
  Alcotest.(check int) "count" 1 (Freelist.block_count f);
  Freelist.clear f;
  Alcotest.(check int) "cleared" 0 (Freelist.block_count f)

(* --- Heap --- *)

let test_heap_create_attach () =
  let pmem, heap = small_heap () in
  let size = Config.test_small.Config.region_size in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.store_field heap a 0 77L;
  Heap.set_root heap a;
  let heap2 = Heap.attach pmem ~base:0 ~size in
  Alcotest.(check int) "root preserved" a (Heap.get_root heap2);
  Alcotest.check int64 "data readable" 77L (Heap.load_field heap2 a 0);
  Alcotest.(check int) "heap_end agrees" (Heap.end_addr heap) (Heap.end_addr heap2)

let test_heap_attach_bad_magic () =
  let pmem = small_pmem () in
  check_raises_corrupt "no heap formatted" (fun () ->
      Heap.attach pmem ~base:0 ~size:4096)

let test_heap_alloc_properties () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:pair_kind ~words:3 in
  Alcotest.(check int) "aligned" 0 (a land 7);
  Alcotest.(check int) "kind" pair_kind (Heap.kind_of heap a);
  Alcotest.(check int) "words" 3 (Heap.words_of heap a);
  Alcotest.(check bool) "object start" true (Heap.is_object_start heap a);
  Alcotest.(check bool) "middle is not" false
    (Heap.is_object_start heap (a + 8));
  let b = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  Alcotest.(check bool) "disjoint" true (b >= a + 32);
  check_raises_invalid "zero words" (fun () ->
      ignore (Heap.alloc heap ~kind:Kind.raw ~words:0));
  check_raises_invalid "free kind" (fun () ->
      ignore (Heap.alloc heap ~kind:Layout.kind_free ~words:1))

let expect_oom f =
  match f () with
  | _ -> Alcotest.fail "expected Out_of_memory"
  | exception Heap.Out_of_memory -> ()

let test_heap_oom () =
  let _, heap = small_heap () in
  expect_oom (fun () ->
      (* The region is 64 KiB; this cannot fit. *)
      ignore (Heap.alloc heap ~kind:Kind.raw ~words:100_000))

let test_heap_free_reuse () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:4 in
  let end_before = Heap.end_addr heap in
  Heap.free heap a;
  Alcotest.(check int) "free words tracked" 4 (Heap.free_words heap);
  let b = Heap.alloc heap ~kind:Kind.raw ~words:4 in
  Alcotest.(check int) "same block reused" a b;
  Alcotest.(check int) "no bump growth" end_before (Heap.end_addr heap)

let test_heap_free_split () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:10 in
  Heap.free heap a;
  let b = Heap.alloc heap ~kind:Kind.raw ~words:4 in
  Alcotest.(check int) "front of old block" a b;
  (* Remainder: 10 - 4 - 1 header = 5 words, immediately reusable. *)
  let c = Heap.alloc heap ~kind:Kind.raw ~words:5 in
  Alcotest.(check int) "remainder reused" (a + (5 * 8)) c

let test_heap_double_free () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.free heap a;
  check_raises_invalid "double free" (fun () -> Heap.free heap a);
  check_raises_invalid "free bad addr" (fun () -> Heap.free heap 24)

let test_heap_fields () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:3 in
  Heap.store_field heap a 0 1L;
  Heap.store_field_int heap a 1 2;
  Alcotest.check int64 "field 0" 1L (Heap.load_field heap a 0);
  Alcotest.(check int) "field 1" 2 (Heap.load_field_int heap a 1);
  Alcotest.(check bool) "cas ok" true
    (Heap.cas_field heap a 0 ~expected:1L ~desired:5L);
  Alcotest.(check bool) "cas stale" false
    (Heap.cas_field heap a 0 ~expected:1L ~desired:6L);
  Alcotest.(check bool) "cas_int" true
    (Heap.cas_field_int heap a 1 ~expected:2 ~desired:9)

let test_heap_debug_checks () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.set_debug_checks true;
  Fun.protect
    ~finally:(fun () -> Heap.set_debug_checks false)
    (fun () ->
      Heap.store_field heap a 1 1L (* in bounds: fine *);
      check_raises_invalid "index out of bounds" (fun () ->
          Heap.store_field heap a 2 1L);
      check_raises_corrupt "not an object" (fun () ->
          Heap.load_field heap (a + 800) 0))

let test_heap_iter_blocks () =
  let _, heap = small_heap () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  let b = Heap.alloc heap ~kind:pair_kind ~words:3 in
  Heap.free heap a;
  let seen = ref [] in
  Heap.iter_blocks heap (fun ~addr ~kind ~words ->
      seen := (addr, kind, words) :: !seen);
  Alcotest.(check (list (triple int int int)))
    "all blocks in address order"
    [ (a, Layout.kind_free, 2); (b, pair_kind, 3) ]
    (List.rev !seen)

let test_heap_root_defaults_null () =
  let _, heap = small_heap () in
  Alcotest.(check int) "null root" Heap.null (Heap.get_root heap)

(* --- GC --- *)

let alloc_cell heap next =
  let c = Heap.alloc heap ~kind:pair_kind ~words:2 in
  Heap.store_field heap c 0 0L;
  Heap.store_field_int heap c 1 next;
  c

let test_gc_reclaims_garbage () =
  let _, heap = small_heap () in
  let live = alloc_cell heap Heap.null in
  let _garbage = alloc_cell heap Heap.null in
  let _garbage2 = Heap.alloc heap ~kind:Kind.raw ~words:5 in
  Heap.set_root heap live;
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "one live" 1 stats.Heap_gc.live_objects;
  Alcotest.(check int) "two freed" 2 stats.Heap_gc.freed_objects;
  Alcotest.(check int) "no dangling" 0 stats.Heap_gc.dangling_refs;
  (* The two adjacent dead blocks coalesce into one free block. *)
  Alcotest.(check int) "coalesced" 1 stats.Heap_gc.coalesced_blocks;
  Alcotest.(check bool) "free space reusable" true (Heap.free_words heap > 0)

let test_gc_preserves_reachable_chain () =
  let _, heap = small_heap () in
  let c3 = alloc_cell heap Heap.null in
  let c2 = alloc_cell heap c3 in
  let c1 = alloc_cell heap c2 in
  Heap.set_root heap c1;
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "chain live" 3 stats.Heap_gc.live_objects;
  Alcotest.(check int) "nothing freed" 0 stats.Heap_gc.freed_objects;
  Alcotest.check int64 "chain intact" (Int64.of_int c3)
    (Heap.load_field heap c2 1)

let test_gc_handles_cycles () =
  let _, heap = small_heap () in
  let a = alloc_cell heap Heap.null in
  let b = alloc_cell heap a in
  Heap.store_field_int heap a 1 b (* a <-> b *);
  Heap.set_root heap a;
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "cycle live" 2 stats.Heap_gc.live_objects

let test_gc_null_root_frees_all () =
  let _, heap = small_heap () in
  ignore (alloc_cell heap Heap.null);
  ignore (alloc_cell heap Heap.null);
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "none live" 0 stats.Heap_gc.live_objects;
  Alcotest.(check int) "all freed" 2 stats.Heap_gc.freed_objects

let test_gc_counts_dangling () =
  let _, heap = small_heap () in
  let a = alloc_cell heap Heap.null in
  Heap.store_field_int heap a 1 (Heap.end_addr heap + 64) (* wild pointer *);
  Heap.set_root heap a;
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "dangling counted" 1 stats.Heap_gc.dangling_refs

let test_gc_marked_pointers_followed () =
  (* The GC must strip skip-list-style low tag bits before chasing. *)
  let _, heap = small_heap () in
  let target = alloc_cell heap Heap.null in
  let a = Heap.alloc heap ~kind:pair_kind ~words:2 in
  Heap.store_field_int heap a 0 (target lor 1) (* marked pointer *);
  Heap.store_field heap a 1 0L;
  Heap.set_root heap a;
  let stats = Heap_gc.collect heap in
  Alcotest.(check int) "both live" 2 stats.Heap_gc.live_objects;
  Alcotest.(check int) "no dangling" 0 stats.Heap_gc.dangling_refs

let test_gc_rebuilds_allocator () =
  let _, heap = small_heap () in
  let keep = alloc_cell heap Heap.null in
  let dead = Heap.alloc heap ~kind:Kind.raw ~words:6 in
  ignore (dead : int);
  Heap.set_root heap keep;
  ignore (Heap_gc.collect heap);
  (* The swept space must satisfy an allocation without bump growth. *)
  let end_before = Heap.end_addr heap in
  let b = Heap.alloc heap ~kind:Kind.raw ~words:6 in
  Alcotest.(check int) "reused swept block" dead b;
  Alcotest.(check int) "no growth" end_before (Heap.end_addr heap)

let test_verify_clean_heap () =
  let _, heap = small_heap () in
  let a = alloc_cell heap Heap.null in
  Heap.set_root heap a;
  match Heap_gc.verify heap with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_verify_detects_smashed_header () =
  let pmem, heap = small_heap () in
  let a = alloc_cell heap Heap.null in
  Heap.set_root heap a;
  (* Corrupt the header word directly through the device. *)
  Pmem.store pmem (Layout.obj_header_addr a) 0xDEADL;
  (match Heap_gc.verify heap with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verify accepted a smashed header");
  check_raises_corrupt "iter_blocks also rejects" (fun () ->
      Heap.iter_blocks heap (fun ~addr:_ ~kind:_ ~words:_ -> ()))

let test_verify_detects_wild_pointer () =
  let _, heap = small_heap () in
  let a = alloc_cell heap Heap.null in
  Heap.store_field_int heap a 1 (a + 8) (* interior pointer: invalid *);
  Heap.set_root heap a;
  match Heap_gc.verify heap with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verify accepted a wild pointer"

let test_reachable_set () =
  let _, heap = small_heap () in
  let c2 = alloc_cell heap Heap.null in
  let c1 = alloc_cell heap c2 in
  let orphan = alloc_cell heap Heap.null in
  Heap.set_root heap c1;
  let marks = Heap_gc.reachable heap in
  Alcotest.(check bool) "c1" true (Nvm.Intset.mem marks c1);
  Alcotest.(check bool) "c2" true (Nvm.Intset.mem marks c2);
  Alcotest.(check bool) "orphan" false (Nvm.Intset.mem marks orphan)

(* --- properties --- *)

let prop_blocks_tile_heap =
  qcheck ~count:100 "blocks tile the allocated span exactly"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 12))
    (fun sizes ->
      let _, heap = small_heap () in
      let addrs = List.map (fun w -> Heap.alloc heap ~kind:Kind.raw ~words:w) sizes in
      (* Free every other allocation to mix live and free blocks. *)
      List.iteri (fun i a -> if i mod 2 = 0 then Heap.free heap a) addrs;
      let covered = ref (Heap.start_addr heap) in
      let ok = ref true in
      Heap.iter_blocks heap (fun ~addr ~kind:_ ~words ->
          if addr <> !covered + 8 then ok := false;
          covered := addr + (8 * words));
      !ok && !covered = Heap.end_addr heap)

let prop_gc_preserves_exactly_reachable =
  qcheck ~count:60 "GC frees exactly the unreachable objects"
    QCheck2.Gen.(list_size (int_range 1 30) (pair bool (int_range 0 29)))
    (fun spec ->
      let _, heap = small_heap () in
      (* Build a pool of cells; each optionally points at an earlier cell. *)
      let cells =
        List.mapi
          (fun i (linked, target) ->
            let next = if linked && target < i then target else -1 in
            (i, next))
          spec
      in
      let addrs = Array.make (List.length cells) 0 in
      List.iter
        (fun (i, next) ->
          let next_addr = if next >= 0 then addrs.(next) else Heap.null in
          addrs.(i) <- alloc_cell heap next_addr)
        cells;
      (* Root at the last cell; reachability = transitive next chain. *)
      let n = Array.length addrs in
      Heap.set_root heap addrs.(n - 1);
      let rec chain i acc =
        let acc = i :: acc in
        match List.assoc i cells with
        | next when next >= 0 -> chain next acc
        | _ -> acc
      in
      let live = chain (n - 1) [] in
      let stats = Heap_gc.collect heap in
      stats.Heap_gc.live_objects = List.length (List.sort_uniq compare live)
      && stats.Heap_gc.freed_objects = n - List.length (List.sort_uniq compare live))

let suite =
  ( "pheap",
    [
      case "layout: header roundtrip" test_header_roundtrip;
      case "layout: validity and limits" test_header_validity;
      case "layout: address helpers" test_obj_addresses;
      case "kind: builtins" test_kind_builtins;
      case "kind: registry discipline" test_kind_registry;
      case "freelist: exact take" test_freelist_exact;
      case "freelist: split rule" test_freelist_split_rule;
      case "freelist: prefers exact size" test_freelist_prefers_exact;
      case "heap: create/attach roundtrip" test_heap_create_attach;
      case "heap: attach rejects bad magic" test_heap_attach_bad_magic;
      case "heap: alloc invariants" test_heap_alloc_properties;
      case "heap: out of memory" test_heap_oom;
      case "heap: free and reuse" test_heap_free_reuse;
      case "heap: split on reuse" test_heap_free_split;
      case "heap: double free rejected" test_heap_double_free;
      case "heap: field access and CAS" test_heap_fields;
      case "heap: debug checks" test_heap_debug_checks;
      case "heap: iter_blocks" test_heap_iter_blocks;
      case "heap: fresh root is null" test_heap_root_defaults_null;
      case "gc: reclaims garbage and coalesces" test_gc_reclaims_garbage;
      case "gc: preserves reachable chain" test_gc_preserves_reachable_chain;
      case "gc: handles cycles" test_gc_handles_cycles;
      case "gc: null root frees everything" test_gc_null_root_frees_all;
      case "gc: counts dangling references" test_gc_counts_dangling;
      case "gc: strips pointer tag bits" test_gc_marked_pointers_followed;
      case "gc: rebuilds the allocator" test_gc_rebuilds_allocator;
      case "verify: accepts a clean heap" test_verify_clean_heap;
      case "verify: rejects a smashed header" test_verify_detects_smashed_header;
      case "verify: rejects wild pointers" test_verify_detects_wild_pointer;
      case "gc: reachable set" test_reachable_set;
      prop_blocks_tile_heap;
      prop_gc_preserves_exactly_reachable;
    ] )
