let () =
  Alcotest.run "tsp"
    [ Test_nvm.suite; Test_hotpath.suite; Test_sched.suite; Test_pheap.suite;
      Test_atlas.suite;
      Test_core.suite; Test_maps.suite; Test_queue.suite; Test_btree.suite;
      Test_workload.suite; Test_determinism.suite; Test_quantum.suite;
      Test_faults.suite;
      Test_checker.suite; Test_obs.suite; Test_service.suite;
      Test_recovery.suite ]
