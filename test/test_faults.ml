(* Adversarial crash fidelity: graceful degraded recovery over the whole
   fault-model spectrum, recovery idempotence (including a crash in the
   middle of recovery itself), and the campaign machinery's violation
   judgement and shrinking. *)

open Helpers
module FM = Nvm.Fault_model
module Mode = Atlas.Mode
module Rt = Atlas.Runtime
module Recovery = Atlas.Recovery
module Kind = Pheap.Kind
module Runner = Workload.Runner
module FI = Workload.Fault_injector

(* The `faults --smoke` configuration: a small counter workload on a
   32 KiB cache, so the footprint exceeds the cache and discard-class
   faults genuinely lose lines (on the stock 512 KiB cache everything
   stays resident and Full_discard reverts to a clean snapshot). *)
let small_config =
  let platform = { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 } in
  let base = Runner.calibrated_config platform in
  {
    base with
    Runner.variant = Runner.Mutex_map Mode.Log_only;
    workload = Runner.Counters { h_keys = 256; preload = true };
    threads = 4;
    iterations = 200;
    n_buckets = 512;
    log_mib = 1;
  }

(* --- Graceful degraded recovery: the runner must return a structured
   verdict for every model at every crash point, never raise. --- *)

let test_adversarial_models_never_raise () =
  List.iter
    (fun fault ->
      List.iter
        (fun crash_at ->
          let r =
            Runner.run
              {
                small_config with
                Runner.seed = 21;
                crash_at_step = Some crash_at;
                fault_model = Some fault;
              }
          in
          let c =
            match r.Runner.crash with
            | Some c -> c
            | None -> Alcotest.failf "%s: run did not crash" (FM.to_string fault)
          in
          match (c.Runner.recovery_verdict, fault) with
          | (Recovery.Clean | Recovery.Degraded _), _ -> ()
          | Recovery.Unrecoverable _, FM.Bit_rot _ -> ()
          | Recovery.Unrecoverable msg, _ ->
              Alcotest.failf "%s: unrecoverable (%s)" (FM.to_string fault) msg)
        [ 2_000; 9_000; 21_000 ])
    FM.reference

let test_full_rescue_is_tsp_crash () =
  (* Under Full_rescue the adversarial path must be indistinguishable
     from the paper's TSP crash: consistent and verdict-clean. *)
  let r =
    Runner.run
      {
        small_config with
        Runner.seed = 5;
        crash_at_step = Some 9_000;
        fault_model = Some FM.Full_rescue;
      }
  in
  Alcotest.(check bool) "consistent" true (Runner.consistent r);
  match r.Runner.crash with
  | Some c ->
      Alcotest.(check bool) "clean verdict" true
        (c.Runner.recovery_verdict = Recovery.Clean)
  | None -> Alcotest.fail "did not crash"

let test_nonblocking_prefix_under_full_rescue () =
  (* Section 4.1: the lock-free map needs no logging because a rescued
     crash preserves a prefix of the store order.  The recovery observer
     must still certify that under the Full_rescue fault model. *)
  let r =
    Runner.run
      {
        small_config with
        Runner.variant = Runner.Nonblocking_map;
        seed = 13;
        crash_at_step = Some 9_000;
        fault_model = Some FM.Full_rescue;
        journal = true;
      }
  in
  Alcotest.(check bool) "consistent" true (Runner.consistent r);
  match r.Runner.crash with
  | Some { Runner.observer = Some o; _ } ->
      Alcotest.(check bool) "prefix observed" true
        o.Tsp_core.Recovery_observer.prefix_ok
  | _ -> Alcotest.fail "expected a crash with an observer verdict"

(* --- Recovery idempotence on raw Atlas environments --- *)

let make_env ?(mode = Mode.Log_only) ?(threads = 2) () =
  let pmem = desktop_pmem ~region_mib:2 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (256 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode ~heap ~log_base ~log_size:(256 * 1024)
      ~num_threads:threads ()
  in
  (pmem, heap, atlas, log_base)

(* Two threads of small locked transactions over a shared slot array,
   interrupted mid-flight. *)
let crashed_env ~crash_at () =
  let pmem, heap, atlas, log_base = make_env () in
  let slots = Heap.alloc heap ~kind:Kind.raw ~words:16 in
  for i = 0 to 15 do
    Heap.store_field heap slots i 0L
  done;
  Heap.set_root heap slots;
  Nvm.Pmem.persist_all pmem;
  let outcome =
    run_threads_s pmem ~crash_at_step:crash_at
      [
        (fun sched ->
          let ctx = Rt.thread_ctx atlas ~tid:0 in
          let m = Rt.make_mutex atlas sched in
          for i = 0 to 39 do
            Rt.with_lock atlas ctx m (fun () ->
                Rt.store_field atlas ctx slots (i mod 16)
                  (Int64.of_int (100 + i));
                Rt.store_field atlas ctx slots ((i + 1) mod 16)
                  (Int64.of_int (200 + i)))
          done);
        (fun sched ->
          let ctx = Rt.thread_ctx atlas ~tid:1 in
          let m = Rt.make_mutex atlas sched in
          for i = 0 to 39 do
            Rt.with_lock atlas ctx m (fun () ->
                Rt.store_field atlas ctx slots ((i + 8) mod 16)
                  (Int64.of_int (300 + i)))
          done);
      ]
  in
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected the run to crash");
  (pmem, log_base)

let recover_once pmem ~log_base =
  let heap = Heap.attach pmem ~base:0 ~size:log_base in
  let report = Recovery.run ~heap ~log_base () in
  (report, Pmem.durable_snapshot pmem)

let test_recovery_idempotent () =
  List.iter
    (fun fault ->
      let pmem, log_base = crashed_env ~crash_at:700 () in
      let rng =
        let r = Rng.create ~seed:3 in
        fun bound -> Rng.int r bound
      in
      ignore (Pmem.crash_with pmem ~fault ~rng () : Pmem.crash_damage);
      Pmem.recover pmem;
      match recover_once pmem ~log_base with
      | exception Heap.Corrupt _
        when (match fault with FM.Bit_rot _ -> true | _ -> false) ->
          (* bit rot may take out the heap header itself; the runner maps
             this to an Unrecoverable verdict *)
          ()
      | r1, s1 ->
          let r2, s2 = recover_once pmem ~log_base in
          Alcotest.(check bool)
            (FM.to_string fault ^ ": image fixed point")
            true (String.equal s1 s2);
          Alcotest.(check bool)
            (FM.to_string fault ^ ": verdict stable")
            true
            (r1.Recovery.verdict = r2.Recovery.verdict))
    FM.reference

exception Cut_short

let test_recovery_idempotent_across_recovery_crash () =
  (* Crash the machine again in the middle of recovery: the partial
     repair must not change what a subsequent complete recovery
     produces.  (Recovery never mutates the logs, so any prefix of its
     heap repairs is just another crash image for the next attempt.) *)
  let pmem, log_base = crashed_env ~crash_at:700 () in
  let rng =
    let r = Rng.create ~seed:11 in
    fun bound -> Rng.int r bound
  in
  ignore
    (Pmem.crash_with pmem ~fault:(FM.Torn_lines { prob = 0.4 }) ~rng ()
      : Pmem.crash_damage);
  Pmem.recover pmem;
  let steps = ref 0 in
  (* First attempt, cut short after a fixed number of costed steps. *)
  Pmem.set_step_hook pmem (fun ~cost:_ ->
      incr steps;
      if !steps = 120 then raise Cut_short);
  (match recover_once pmem ~log_base with
  | _ -> Alcotest.fail "recovery was expected to be cut short"
  | exception Cut_short -> ());
  Pmem.clear_step_hook pmem;
  (* The interrupted attempt's dirty repairs die in a second crash. *)
  ignore
    (Pmem.crash_with pmem ~fault:FM.Full_discard ~rng:(fun _ -> 0) ()
      : Pmem.crash_damage);
  Pmem.recover pmem;
  let r1, s1 = recover_once pmem ~log_base in
  let r2, s2 = recover_once pmem ~log_base in
  Alcotest.(check bool) "post-interruption recovery is a fixed point" true
    (String.equal s1 s2);
  Alcotest.(check bool) "verdict stable" true
    (r1.Recovery.verdict = r2.Recovery.verdict);
  match r1.Recovery.verdict with
  | Recovery.Unrecoverable m -> Alcotest.failf "unrecoverable: %s" m
  | _ -> ()

(* --- Campaign judgement and shrinking --- *)

let campaign_spec ?(fault_models = [ None ]) ?exhaustive ?(shrink = false) () =
  {
    (FI.default_spec small_config) with
    FI.runs = 4;
    min_step = 2_000;
    max_step = 20_000;
    fault_models;
    exhaustive;
    shrink;
  }

(* Substring containment, for asserting over generated reproducers. *)
let contains ~needle hay =
  let nh = String.length needle and hh = String.length hay in
  let rec go i = i + nh <= hh && (String.sub hay i nh = needle || go (i + 1)) in
  nh = 0 || go 0

let test_campaign_judges_discard_expected () =
  (* Full_discard on an unflushed variant loses lines: violations, but
     every one of them expected — the campaign must not flag them. *)
  let s =
    FI.run ~jobs:1
      (campaign_spec
         ~fault_models:[ Some FM.Full_discard ]
         ~exhaustive:{ FI.from_step = 40_000; window = 3; stride = 1 }
         ())
  in
  Alcotest.(check int) "three runs" 3 s.FI.total;
  Alcotest.(check bool) "violations found" true (s.FI.violations > 0);
  Alcotest.(check int) "all expected" 0 s.FI.unexpected_violations;
  List.iter
    (fun (o : FI.run_outcome) ->
      Alcotest.(check bool) "graceful" true o.FI.graceful;
      if o.FI.violation then begin
        Alcotest.(check bool) "repro names the model" true
          (contains ~needle:"--fault-model full-discard" o.FI.repro);
        Alcotest.(check bool) "repro pins the crash step" true
          (contains ~needle:(Printf.sprintf "--from %d" o.FI.crash_step)
             o.FI.repro)
      end)
    s.FI.outcomes

let test_campaign_adversarial_all_graceful () =
  let s =
    FI.run ~jobs:1
      (campaign_spec
         ~fault_models:(List.map Option.some FM.reference)
         ~exhaustive:{ FI.from_step = 40_000; window = 2; stride = 1 }
         ())
  in
  Alcotest.(check int) "5 models x 2 steps"
    (2 * List.length FM.reference)
    s.FI.total;
  List.iter
    (fun (o : FI.run_outcome) ->
      Alcotest.(check bool) "graceful" true o.FI.graceful)
    s.FI.outcomes;
  Alcotest.(check int) "per-model ledger rows" (List.length FM.reference)
    (List.length s.FI.per_model);
  Alcotest.(check int) "no unexpected violations" 0 s.FI.unexpected_violations

let test_campaign_shrinks_violation () =
  let s =
    FI.run ~jobs:1
      (campaign_spec
         ~fault_models:[ Some FM.Full_discard ]
         ~exhaustive:{ FI.from_step = 40_000; window = 1; stride = 1 }
         ~shrink:true ())
  in
  Alcotest.(check bool) "found a violation" true (s.FI.violations > 0);
  match s.FI.shrunk with
  | None -> Alcotest.fail "expected a shrunk reproducer"
  | Some sh ->
      Alcotest.(check bool) "crash step shrank" true
        (sh.FI.final_crash_step < 40_000);
      Alcotest.(check bool) "iterations shrank" true
        (sh.FI.final_iterations < small_config.Runner.iterations);
      (* The minimized triple must still violate. *)
      let o =
        FI.one
          {
            (campaign_spec ~fault_models:[ Some FM.Full_discard ] ()) with
            FI.base =
              {
                small_config with
                Runner.iterations = sh.FI.final_iterations;
              };
          }
          ~fault:(Some FM.Full_discard)
          ~seed:
            (match
               List.find_opt (fun (o : FI.run_outcome) -> o.FI.violation)
                 s.FI.outcomes
             with
            | Some o -> o.FI.seed
            | None -> 99)
          ~crash_step:sh.FI.final_crash_step
      in
      Alcotest.(check bool) "minimized repro still violates" true o.FI.violation

let suite =
  ( "faults",
    [
      slow_case "adversarial models: runner never raises"
        test_adversarial_models_never_raise;
      case "full rescue behaves as a TSP crash" test_full_rescue_is_tsp_crash;
      case "lock-free map keeps the 4.1 prefix property under full rescue"
        test_nonblocking_prefix_under_full_rescue;
      slow_case "recovery is idempotent for every fault model"
        test_recovery_idempotent;
      case "recovery idempotent across a crash during recovery"
        test_recovery_idempotent_across_recovery_crash;
      case "campaign: discard violations are expected, graceful"
        test_campaign_judges_discard_expected;
      case "campaign: whole spectrum graceful with per-model ledger"
        test_campaign_adversarial_all_graceful;
      slow_case "campaign: shrinker produces a smaller, still-failing repro"
        test_campaign_shrinks_violation;
    ] )
