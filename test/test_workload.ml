(* End-to-end tests: the key space, the invariants of Section 5.1, the
   runner, fault-injection campaigns, the Table 1 driver and the sweeps. *)

open Helpers
module Runner = Workload.Runner
module Invariant = Workload.Invariant
module Key_space = Workload.Key_space
module FI = Workload.Fault_injector
module Table1 = Workload.Table1
module Sweeps = Workload.Sweeps
module Report = Workload.Report
module Mode = Atlas.Mode
module HW = Tsp_core.Hardware
module FC = Tsp_core.Failure_class

(* Small, fast configurations: the simulation is deterministic, so small
   runs exercise the same code paths as big ones. *)
let small_config =
  {
    Runner.default_config with
    Runner.iterations = 120;
    workload = Runner.Counters { h_keys = 512; preload = true };
    n_buckets = 256;
    log_mib = 2;
  }

(* --- Key space --- *)

let test_key_space () =
  Alcotest.(check int) "c1 of 3" 6 (Key_space.c1 ~tid:3);
  Alcotest.(check int) "c2 of 3" 7 (Key_space.c2 ~tid:3);
  Alcotest.(check int) "l size" 16 (Key_space.l_size ~threads:8);
  Alcotest.(check bool) "h above l" true
    (Key_space.h_key 0 > Key_space.c2 ~tid:100);
  Alcotest.(check bool) "h recognised" true (Key_space.is_h (Key_space.h_key 5));
  Alcotest.(check bool) "counter recognised" true
    (Key_space.is_counter ~threads:8 15);
  Alcotest.(check bool) "h not counter" false
    (Key_space.is_counter ~threads:8 (Key_space.h_key 0))

(* --- Invariants --- *)

let entries_of_counters ~threads ~c1 ~c2 ~h =
  List.concat
    [
      List.init threads (fun t -> (Key_space.c1 ~tid:t, List.nth c1 t));
      List.init threads (fun t -> (Key_space.c2 ~tid:t, List.nth c2 t));
      List.mapi (fun i v -> (Key_space.h_key i, v)) h;
    ]

let test_invariant_counters_pass () =
  (* Thread 0 finished iteration 5; thread 1 is mid-iteration 4. *)
  let entries =
    entries_of_counters ~threads:2 ~c1:[ 5L; 4L ] ~c2:[ 5L; 3L ]
      ~h:[ 4L; 4L; 1L ]
  in
  let r = Invariant.counters ~entries ~threads:2 in
  Alcotest.(check bool) "ok" true r.Invariant.ok

let test_invariant_counters_eq1_fail () =
  (* diff = 5 > T = 2. *)
  let entries =
    entries_of_counters ~threads:2 ~c1:[ 5L; 4L ] ~c2:[ 2L; 2L ] ~h:[ 5L ]
  in
  let r = Invariant.counters ~entries ~threads:2 in
  Alcotest.(check bool) "fails" false r.Invariant.ok

let test_invariant_counters_eq2_fail () =
  let entries =
    entries_of_counters ~threads:2 ~c1:[ 5L; 5L ] ~c2:[ 5L; 5L ] ~h:[ 20L ]
  in
  let r = Invariant.counters ~entries ~threads:2 in
  Alcotest.(check bool) "sum H above c1" false r.Invariant.ok

let test_invariant_counters_per_thread_fail () =
  (* Sums satisfy both equations but thread 1 regressed: c1 < c2. *)
  let entries =
    entries_of_counters ~threads:2 ~c1:[ 6L; 3L ] ~c2:[ 5L; 4L ] ~h:[ 9L ]
  in
  let r = Invariant.counters ~entries ~threads:2 in
  Alcotest.(check bool) "per-thread check catches it" false r.Invariant.ok

let test_invariant_transfers () =
  let ok =
    Invariant.transfers
      ~entries:[ (1, 400L); (2, 600L) ]
      ~expected_total:1000L
  in
  Alcotest.(check bool) "conserved" true ok.Invariant.ok;
  let lost =
    Invariant.transfers ~entries:[ (1, 399L); (2, 600L) ] ~expected_total:1000L
  in
  Alcotest.(check bool) "lost money detected" false lost.Invariant.ok;
  let negative =
    Invariant.transfers
      ~entries:[ (1, -5L); (2, 1005L) ]
      ~expected_total:1000L
  in
  Alcotest.(check bool) "negative detected" false negative.Invariant.ok

let test_invariant_failed () =
  let r = Invariant.failed "because" in
  Alcotest.(check bool) "not ok" false r.Invariant.ok

(* --- Runner --- *)

let test_runner_completes_all_variants () =
  List.iter
    (fun variant ->
      let r = Runner.run { small_config with Runner.variant } in
      Alcotest.(check bool)
        (Runner.variant_to_string variant ^ " completes")
        true
        (r.Runner.outcome = Runner.Completed);
      Alcotest.(check bool) "consistent" true (Runner.consistent r);
      Alcotest.(check int) "all iterations"
        (small_config.Runner.threads * small_config.Runner.iterations)
        r.Runner.iterations_done;
      Alcotest.(check bool) "positive throughput" true
        (r.Runner.miters_per_sec > 0.))
    Workload.Machine.all_variants

(* CLI spelling round-trip: every variant the runner knows must parse
   back from its canonical spelling — the conv in bin/main.ml and the
   fault injector's printed reproducers both lean on this. *)
let test_variant_round_trip () =
  List.iter
    (fun v ->
      let s = Workload.Machine.variant_to_cli_string v in
      match Workload.Machine.variant_of_string s with
      | Ok v' ->
          Alcotest.(check bool) (s ^ " round-trips") true (v = v')
      | Error e -> Alcotest.fail (s ^ " failed to parse: " ^ e))
    Workload.Machine.all_variants;
  (match Workload.Machine.variant_of_string "no-such-variant" with
  | Ok _ -> Alcotest.fail "nonsense spelling accepted"
  | Error _ -> ());
  (* A couple of documented aliases. *)
  Alcotest.(check bool) "tsp alias" true
    (Workload.Machine.variant_of_string "tsp"
    = Ok (Workload.Machine.Mutex_map Mode.Log_only));
  Alcotest.(check bool) "rcas alias" true
    (Workload.Machine.variant_of_string "rcas"
    = Ok Workload.Machine.Delayfree_map)

let test_runner_deterministic () =
  let run () =
    let r = Runner.run { small_config with Runner.seed = 77 } in
    (r.Runner.iterations_done, r.Runner.elapsed_cycles, r.Runner.total_steps)
  in
  Alcotest.(check bool) "identical replay" true (run () = run ())

let test_runner_seed_changes_interleaving () =
  let steps seed =
    (Runner.run
       {
         small_config with
         Runner.seed;
         variant = Runner.Mutex_map Mode.Log_only;
       })
      .Runner.elapsed_cycles
  in
  Alcotest.(check bool) "different seeds, different elapsed" true
    (steps 1 <> steps 2)

let test_runner_crash_tsp_consistent () =
  List.iter
    (fun variant ->
      let r =
        Runner.run
          {
            small_config with
            Runner.variant;
            crash_at_step = Some 9_000;
            journal = true;
            hardware = HW.nvram_machine;
            failure = FC.Power_outage;
          }
      in
      (match r.Runner.outcome with
      | Runner.Crashed _ -> ()
      | _ -> Alcotest.fail "expected crash");
      Alcotest.(check bool)
        (Runner.variant_to_string variant ^ " recovers consistent")
        true (Runner.consistent r);
      match r.Runner.crash with
      | Some c ->
          Alcotest.(check bool) "heap audit ok" true c.Runner.heap_audit_ok;
          (match c.Runner.observer with
          | Some o ->
              Alcotest.(check bool) "observer prefix" true
                o.Tsp_core.Recovery_observer.prefix_ok
          | None -> Alcotest.fail "journal requested");
          Alcotest.(check bool) "verdict TSP" true
            (Tsp_core.Policy.is_tsp c.Runner.verdict)
      | None -> Alcotest.fail "crash report missing")
    [ Runner.Mutex_map Mode.Log_only; Runner.Nonblocking_map ]

let test_runner_crash_no_tsp_breaks_log_only () =
  (* The E9 negative control: at least some seeds must produce violations
     when dirty lines are dropped and nothing was flushed. *)
  let violated = ref false in
  for seed = 1 to 6 do
    let r =
      Runner.run
        {
          small_config with
          Runner.seed;
          variant = Runner.Mutex_map Mode.Log_only;
          crash_at_step = Some 9_000;
          hardware = HW.conventional_server;
          failure = FC.Power_outage;
        }
    in
    if not (Runner.consistent r) then violated := true
  done;
  Alcotest.(check bool) "some run violated" true !violated

let test_runner_crash_no_tsp_log_flush_survives () =
  for seed = 1 to 3 do
    let r =
      Runner.run
        {
          small_config with
          Runner.seed;
          variant = Runner.Mutex_map Mode.Log_flush;
          crash_at_step = Some 9_000;
          hardware = HW.conventional_server;
          failure = FC.Power_outage;
        }
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d consistent without TSP" seed)
      true (Runner.consistent r)
  done

let test_runner_transfers_conserve () =
  let r =
    Runner.run
      {
        small_config with
        Runner.workload = Runner.Transfers { accounts = 64; initial_balance = 100 };
        variant = Runner.Mutex_map Mode.Log_only;
        iterations = 150;
      }
  in
  Alcotest.(check bool) "completed consistent" true (Runner.consistent r)

let test_runner_transfers_crash_recovers () =
  let r =
    Runner.run
      {
        small_config with
        Runner.workload = Runner.Transfers { accounts = 64; initial_balance = 100 };
        variant = Runner.Mutex_map Mode.Log_only;
        iterations = 400;
        crash_at_step = Some 15_000;
      }
  in
  (match r.Runner.outcome with
  | Runner.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "transfers rolled back cleanly" true
    (Runner.consistent r)

let test_runner_flush_counts_ordered () =
  let flushes variant =
    let r = Runner.run { small_config with Runner.variant } in
    r.Runner.device_stats.Nvm.Stats.flushes
  in
  let log_only = flushes (Runner.Mutex_map Mode.Log_only) in
  let log_flush = flushes (Runner.Mutex_map Mode.Log_flush) in
  Alcotest.(check bool)
    (Printf.sprintf "log-flush (%d) >> log-only (%d)" log_flush log_only)
    true
    (log_flush > (10 * (log_only + 1)))

let test_runner_throughput_ordering () =
  let m variant =
    (Runner.run
       { small_config with Runner.variant; iterations = 400 })
      .Runner.miters_per_sec
  in
  let native = m (Runner.Mutex_map Mode.No_log) in
  let log_only = m (Runner.Mutex_map Mode.Log_only) in
  let log_flush = m (Runner.Mutex_map Mode.Log_flush) in
  Alcotest.(check bool) "native > log" true (native > log_only);
  Alcotest.(check bool) "log > log+flush" true (log_only > log_flush)

let test_runner_mixed_workload () =
  let r =
    Runner.run
      {
        small_config with
        Runner.workload = Runner.Mixed { h_keys = 512; read_pct = 50 };
        variant = Runner.Mutex_map Mode.Log_only;
      }
  in
  Alcotest.(check bool) "mixed completes consistent" true (Runner.consistent r)

let test_runner_mixed_overhead_falls_with_reads () =
  let overhead read_pct =
    let m variant =
      (Runner.run
         {
           small_config with
           Runner.workload = Runner.Mixed { h_keys = 512; read_pct };
           iterations = 300;
           variant;
         })
        .Runner.miters_per_sec
    in
    m (Runner.Mutex_map Mode.No_log) /. m (Runner.Mutex_map Mode.Log_flush)
  in
  Alcotest.(check bool) "read-heavy cheaper to fortify" true
    (overhead 90 < overhead 0)

let test_resume_completes_counters () =
  List.iter
    (fun variant ->
      let r =
        Runner.run_with_resume
          {
            small_config with
            Runner.variant;
            iterations = 200;
            crash_at_step = Some 8_000;
          }
      in
      Alcotest.(check bool)
        (Runner.variant_to_string variant ^ " resumed")
        true r.Runner.resumed;
      Alcotest.(check bool)
        (Runner.variant_to_string variant ^ " completed")
        true r.Runner.completion_ok;
      Alcotest.(check bool) "duplicates within the at-least-once bound" true
        (r.Runner.duplicated_increments <= small_config.Runner.threads))
    [ Runner.Mutex_map Mode.Log_only; Runner.Nonblocking_map ]

let test_resume_without_crash_is_identity () =
  let r =
    Runner.run_with_resume { small_config with Runner.iterations = 100 }
  in
  Alcotest.(check bool) "no resume phase" false r.Runner.resumed;
  Alcotest.(check bool) "completed" true r.Runner.completion_ok;
  Alcotest.(check int) "no duplicates" 0 r.Runner.duplicated_increments

let test_resume_rejects_transfers () =
  Alcotest.(check bool) "transfers rejected" true
    (match
       Runner.run_with_resume
         {
           small_config with
           Runner.workload =
             Runner.Transfers { accounts = 8; initial_balance = 10 };
         }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_procrastination_ledger () =
  let l =
    Sweeps.procrastination_ledger ~iterations:300 ~crash_step:25_000 ()
  in
  Alcotest.(check bool) "non-TSP paid many flushes" true
    (l.Sweeps.runtime_flushes_no_tsp > 100);
  Alcotest.(check bool) "TSP rescued a bounded set of lines" true
    (l.Sweeps.rescued_lines_tsp > 0);
  Alcotest.(check bool) "procrastination wins per line" true
    (l.Sweeps.flushes_avoided_per_rescued_line > 1.)

let test_wide_torn_without_rollback () =
  (* E13: multi-word updates + unfortified code: even under a perfect
     TSP rescue (every store durable), a crash inside the store loop
     leaves a torn value.  Scan seeds until one exhibits it. *)
  let wide seed variant =
    Runner.run
      {
        small_config with
        Runner.seed;
        variant;
        workload = Runner.Wide { h_keys = 64; value_words = 8 };
        iterations = 300;
        crash_at_step = Some 9_000;
      }
  in
  let rec find_torn seed =
    if seed > 60 then None
    else
      let r = wide seed (Runner.Mutex_map Mode.No_log) in
      if not r.Runner.invariants.Invariant.ok then Some seed
      else find_torn (seed + 1)
  in
  match find_torn 1 with
  | None -> Alcotest.fail "no torn wide value found in 60 seeds"
  | Some seed ->
      (* The same crash under Atlas log-only must recover untorn. *)
      let fortified = wide seed (Runner.Mutex_map Mode.Log_only) in
      Alcotest.(check bool) "Atlas rollback untears" true
        (Runner.consistent fortified)

let test_wide_fault_campaign_fortified () =
  let spec =
    {
      (FI.default_spec
         {
           small_config with
           Runner.variant = Runner.Mutex_map Mode.Log_only;
           workload = Runner.Wide { h_keys = 64; value_words = 8 };
           iterations = 300;
         })
      with
      FI.runs = 6;
      min_step = 1_000;
      max_step = 25_000;
    }
  in
  let s = FI.run spec in
  Alcotest.(check bool) "never torn under rollback" true (FI.all_consistent s)

let test_runner_btree_variant () =
  let r =
    Runner.run
      {
        small_config with
        Runner.variant = Runner.Mutex_btree Mode.Log_only;
        iterations = 150;
      }
  in
  Alcotest.(check bool) "btree counters complete consistent" true
    (Runner.consistent r)

let test_runner_btree_crash_recovers () =
  let r =
    Runner.run
      {
        small_config with
        Runner.variant = Runner.Mutex_btree Mode.Log_only;
        iterations = 400;
        crash_at_step = Some 25_000;
      }
  in
  (match r.Runner.outcome with
  | Runner.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "btree recovers consistent (incl. tree audit)" true
    (Runner.consistent r)

let test_runner_async_mode_consistent () =
  (* Deferred durability under a non-TSP crash must still verify: the
     recovered state is the watermark prefix, which satisfies the
     invariants like any earlier execution point. *)
  for seed = 1 to 3 do
    let r =
      Runner.run
        {
          small_config with
          Runner.seed;
          variant = Runner.Mutex_map Mode.Log_flush_async;
          crash_at_step = Some 9_000;
          hardware = HW.conventional_server;
          failure = FC.Power_outage;
        }
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d consistent under deferred durability" seed)
      true (Runner.consistent r)
  done

(* --- YCSB --- *)

module Ycsb = Workload.Ycsb

let test_zipf_properties () =
  let z = Ycsb.Zipf.create ~n:1000 () in
  let rng = Sched.Sim_rng.create ~seed:7 in
  let counts = Array.make 1000 0 in
  let samples = 20_000 in
  for _ = 1 to samples do
    let r = Ycsb.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (r >= 0 && r < 1000);
    counts.(r) <- counts.(r) + 1
  done;
  (* Zipf theta=0.99 over 1000 items: rank 0 takes a large share and the
     head dominates the tail. *)
  Alcotest.(check bool) "rank 0 hottest" true
    (counts.(0) > counts.(1) && counts.(0) > samples / 20);
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 100) in
  Alcotest.(check bool)
    (Printf.sprintf "head 10%% gets the majority (%d/%d)" head samples)
    true
    (head > samples / 2);
  check_raises_invalid "bad theta" (fun () ->
      ignore (Ycsb.Zipf.create ~theta:1.5 ~n:10 ()));
  check_raises_invalid "bad n" (fun () -> ignore (Ycsb.Zipf.create ~n:0 ()))

let test_ycsb_mixes () =
  let rng = Sched.Sim_rng.create ~seed:3 in
  let count preset =
    let r = ref 0 and u = ref 0 and m = ref 0 in
    for _ = 1 to 10_000 do
      match Ycsb.pick_op preset rng with
      | Ycsb.Read -> incr r
      | Ycsb.Update -> incr u
      | Ycsb.Rmw -> incr m
    done;
    (!r, !u, !m)
  in
  let r, u, m = count Ycsb.A in
  Alcotest.(check bool) "A is ~50/50 read/update" true
    (abs (r - u) < 1000 && m = 0);
  let r, _, _ = count Ycsb.B in
  Alcotest.(check bool) "B is read-mostly" true (r > 9_200);
  let r, u, m = count Ycsb.C in
  Alcotest.(check (pair int int)) "C is read-only" (0, 0) (u, m);
  ignore r;
  let _, u, m = count Ycsb.F in
  Alcotest.(check bool) "F replaces updates with RMW" true (u = 0 && m > 4_000);
  List.iter
    (fun p ->
      Alcotest.(check bool) "preset string roundtrip" true
        (Ycsb.preset_of_string (Ycsb.preset_to_string p) = Ok p))
    Ycsb.all_presets

let ycsb_config preset =
  {
    small_config with
    Runner.workload = Runner.Ycsb { preset; records = 1024 };
    iterations = 200;
    record_latency = true;
  }

let test_ycsb_runs_consistent () =
  List.iter
    (fun preset ->
      let r = Runner.run (ycsb_config preset) in
      Alcotest.(check bool)
        ("YCSB-" ^ Ycsb.preset_to_string preset ^ " consistent")
        true (Runner.consistent r);
      Alcotest.(check bool) "latencies recorded" true
        (Array.length r.Runner.latencies_cycles > 0))
    Ycsb.all_presets

let test_ycsb_crash_recovers () =
  let r =
    Runner.run
      {
        (ycsb_config Ycsb.A) with
        Runner.variant = Runner.Mutex_map Mode.Log_only;
        iterations = 600;
        crash_at_step = Some 20_000;
      }
  in
  (match r.Runner.outcome with
  | Runner.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Alcotest.(check bool) "records intact after crash" true (Runner.consistent r)

let test_latency_percentiles () =
  let samples = Array.init 100 (fun i -> i + 1) in
  Alcotest.(check (list (pair (float 0.001) int)))
    "quantiles"
    [ (0.5, 50); (0.99, 99) ]
    (Report.percentiles samples [ 0.5; 0.99 ]);
  Alcotest.(check (list (pair (float 0.001) int))) "empty" []
    (Report.percentiles [||] [ 0.5 ])

(* --- Fault injector --- *)

let test_fault_campaign_tsp () =
  let spec =
    {
      (FI.default_spec
         { small_config with Runner.variant = Runner.Mutex_map Mode.Log_only })
      with
      FI.runs = 8;
      min_step = 200;
      max_step = 20_000;
    }
  in
  let s = FI.run spec in
  Alcotest.(check int) "all runs executed" 8 s.FI.total;
  Alcotest.(check bool) "every crash recovered" true (FI.all_consistent s);
  Alcotest.(check bool) "rate zero" true (FI.violation_rate s = 0.)

let test_fault_campaign_records_outcomes () =
  let spec =
    {
      (FI.default_spec
         { small_config with Runner.variant = Runner.Nonblocking_map })
      with
      FI.runs = 5;
      min_step = 200;
      max_step = 15_000;
    }
  in
  let s = FI.run spec in
  Alcotest.(check int) "outcome per run" 5 (List.length s.FI.outcomes);
  List.iter
    (fun o ->
      Alcotest.(check bool) "crash step recorded" true (o.FI.crash_step >= 200))
    s.FI.outcomes

let test_fault_campaign_negative_control () =
  let spec =
    {
      (FI.default_spec
         {
           small_config with
           Runner.variant = Runner.Mutex_map Mode.Log_only;
           hardware = HW.conventional_server;
           failure = FC.Power_outage;
         })
      with
      FI.runs = 6;
      min_step = 2_000;
      max_step = 20_000;
    }
  in
  let s = FI.run spec in
  Alcotest.(check bool) "violations detected" true (s.FI.violations > 0)

(* --- Table 1 --- *)

let test_table1_shape () =
  let row =
    Table1.run_row ~threads:8 ~iterations:400 Nvm.Config.desktop
      Table1.paper_desktop
  in
  Alcotest.(check bool) "ordering holds" true (Table1.shape_ok row);
  Alcotest.(check int) "four cells" 4 (List.length row.Table1.cells);
  let rendered = Format.asprintf "%t" (Table1.render [ row ]) in
  Alcotest.(check bool) "render mentions platform" true
    (String.length rendered > 0)

(* --- Sweeps / report --- *)

let test_sweep_flush_latency_widens_gap () =
  let t = Sweeps.flush_latency ~iterations:250 ~latencies:[ 50; 800 ] () in
  let speedup p = List.assoc "TSP speedup" p.Sweeps.values in
  match t.Sweeps.points with
  | [ low; high ] ->
      Alcotest.(check bool)
        (Printf.sprintf "gap widens: %.2f -> %.2f" (speedup low) (speedup high))
        true
        (speedup high > speedup low)
  | _ -> Alcotest.fail "two points expected"

let test_sweep_log_cost_raises_overhead () =
  let t = Sweeps.log_cost_ablation ~iterations:250 ~log_cycles:[ 45; 900 ] () in
  let ov p = List.assoc "overhead log-only" p.Sweeps.values in
  match t.Sweeps.points with
  | [ cheap; dear ] ->
      Alcotest.(check bool) "overhead grows with log cost" true
        (ov dear > ov cheap)
  | _ -> Alcotest.fail "two points expected"

let test_report_table () =
  let out =
    Format.asprintf "%t"
      (Report.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ])
  in
  Alcotest.(check bool) "aligned output" true
    (String.length out > 0 && String.contains out '-')

let test_report_ratio_pct () =
  Alcotest.(check string) "ratio" "2.00x" (Report.ratio 4. 2.);
  Alcotest.(check string) "ratio undefined" "-" (Report.ratio 4. 0.);
  Alcotest.(check string) "pct" "-50%" (Report.pct_change ~base:4. 2.);
  Alcotest.(check string) "pct up" "+25%" (Report.pct_change ~base:4. 5.)

let suite =
  ( "workload",
    [
      case "key space split" test_key_space;
      case "invariants: consistent counters pass" test_invariant_counters_pass;
      case "invariants: eq1 violation detected" test_invariant_counters_eq1_fail;
      case "invariants: eq2 violation detected" test_invariant_counters_eq2_fail;
      case "invariants: per-thread violation detected"
        test_invariant_counters_per_thread_fail;
      case "invariants: transfer conservation" test_invariant_transfers;
      case "invariants: failed result" test_invariant_failed;
      slow_case "runner: all variants complete consistently"
        test_runner_completes_all_variants;
      case "runner: variant spellings round-trip" test_variant_round_trip;
      case "runner: deterministic replay" test_runner_deterministic;
      case "runner: seed perturbs interleaving"
        test_runner_seed_changes_interleaving;
      slow_case "runner: TSP crash recovery (both case studies)"
        test_runner_crash_tsp_consistent;
      slow_case "runner: E9 negative control violates"
        test_runner_crash_no_tsp_breaks_log_only;
      slow_case "runner: log-flush survives without TSP"
        test_runner_crash_no_tsp_log_flush_survives;
      case "runner: transfers conserve money" test_runner_transfers_conserve;
      case "runner: transfers recover after crash"
        test_runner_transfers_crash_recovers;
      case "runner: flush counts ordered by mode"
        test_runner_flush_counts_ordered;
      case "runner: throughput ordering" test_runner_throughput_ordering;
      case "runner: mixed workload consistent" test_runner_mixed_workload;
      slow_case "runner: overhead falls with read share (E12)"
        test_runner_mixed_overhead_falls_with_reads;
      slow_case "resume: crash, recover, finish (both case studies)"
        test_resume_completes_counters;
      case "resume: no crash means no resume phase"
        test_resume_without_crash_is_identity;
      case "resume: transfers rejected" test_resume_rejects_transfers;
      slow_case "procrastination ledger (E11)" test_procrastination_ledger;
      slow_case "wide values tear without rollback, not with it (E13)"
        test_wide_torn_without_rollback;
      slow_case "wide values: fortified fault campaign"
        test_wide_fault_campaign_fortified;
      case "runner: btree variant completes" test_runner_btree_variant;
      slow_case "runner: btree crash recovery with tree audit"
        test_runner_btree_crash_recovers;
      slow_case "runner: deferred durability survives non-TSP crashes"
        test_runner_async_mode_consistent;
      case "ycsb: zipfian generator" test_zipf_properties;
      case "ycsb: operation mixes" test_ycsb_mixes;
      slow_case "ycsb: all presets run consistent" test_ycsb_runs_consistent;
      case "ycsb: crash recovery keeps records" test_ycsb_crash_recovers;
      case "report: latency percentiles" test_latency_percentiles;
      slow_case "fault campaign: TSP always recovers" test_fault_campaign_tsp;
      case "fault campaign: outcome bookkeeping"
        test_fault_campaign_records_outcomes;
      slow_case "fault campaign: negative control"
        test_fault_campaign_negative_control;
      slow_case "table 1: qualitative shape" test_table1_shape;
      slow_case "sweep: flush latency widens the TSP gap"
        test_sweep_flush_latency_widens_gap;
      slow_case "sweep: log cost raises overhead"
        test_sweep_log_cost_raises_overhead;
      case "report: table rendering" test_report_table;
      case "report: ratio and percentage" test_report_ratio_pct;
    ] )
