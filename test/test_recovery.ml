(* Recovery at scale (E22): determinism of the parallel mark across job
   counts, crash-idempotence of incremental recovery (no stores before
   [Incremental.finish]), equivalence of on-demand and eager recovery,
   and an allocation-rate guard on the streamed mark loop. *)

module RS = Workload.Recovery_scaling
module Machine = Workload.Machine
module Populate = Workload.Populate
module Heap = Pheap.Heap
module Heap_gc = Pheap.Heap_gc

let variant = Machine.Mutex_map Atlas.Mode.Log_only

let image m =
  RS.image_hash m.Machine.pmem ~lo:0 ~hi:(Machine.log_base m.Machine.spec)

(* A populated machine, crashed mid-workload — the state every recovery
   mode starts from.  Pure function of (objects, seed): twins built with
   the same arguments carry byte-identical images. *)
let crashed ~objects ~seed =
  let spec = RS.default_spec ~variant ~seed in
  let m = Populate.build spec ~objects ~seed in
  ignore (Machine.crash_execute m : Tsp_core.Crash_executor.execution);
  m

(* The parallel scan must be a pure refactoring of the sequential one:
   same outage bill, same stats, same phase split, same heap image for
   any job count (the merge is in chunk order, not completion order). *)
let test_jobs_identity () =
  let cell jobs =
    RS.run_cell ~variant ~objects:3_000 ~mode:(Machine.Parallel_gc jobs)
      ~seed:7 ()
  in
  let c1 = cell 1 and c2 = cell 2 and c4 = cell 4 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (RS.cells_match c1 c2);
  Alcotest.(check bool) "jobs 1 = jobs 4" true (RS.cells_match c1 c4);
  let eager = RS.run_cell ~variant ~objects:3_000 ~mode:Machine.Eager ~seed:7 () in
  Alcotest.(check bool)
    "parallel heap image = eager heap image" true
    (eager.RS.image_hash = c2.RS.image_hash);
  Alcotest.(check bool)
    "audits pass" true
    (eager.RS.heap_audit_ok && c1.RS.heap_audit_ok && c2.RS.heap_audit_ok)

(* Crash during incremental recovery: planning, [advance], [on_demand]
   and [touch] issue no stores, so a collector that dies before [finish]
   leaves the image exactly as recovery left it — and a restarted
   collection lands on the same final image and stats as one that was
   never interrupted. *)
let test_incremental_crash_idempotent () =
  let a = crashed ~objects:2_500 ~seed:13 in
  let b = crashed ~objects:2_500 ~seed:13 in
  let ra = Machine.recover ~mode:Machine.Incremental_gc a in
  ignore (Machine.recover ~mode:Machine.Incremental_gc b : Machine.recovery);
  let inc_a = Option.get ra.Machine.gc_pending in
  let heap_a = Option.get ra.Machine.heap in
  ignore (Heap_gc.Incremental.advance inc_a ~budget:2_000 : int);
  ignore (Heap_gc.Incremental.on_demand inc_a : int);
  let n = ref 0 in
  Heap.iter_blocks heap_a (fun ~addr ~kind:_ ~words:_ ->
      if !n < 16 then (
        incr n;
        ignore (Heap_gc.Incremental.touch inc_a ~addr : int)));
  Alcotest.(check bool)
    "partial collection issued no stores" true
    (image a = image b);
  (* The collector dies here (inc_a is abandoned, finish never runs); a
     restarted recovery plans the collection afresh on the same image. *)
  let inc_a' = Heap_gc.Incremental.start heap_a in
  let stats_a, quar_a = Heap_gc.Incremental.finish inc_a' in
  let stats_b, quar_b =
    match Machine.finish_background_gc b with
    | Some r -> r
    | None -> Alcotest.fail "machine b lost its pending collection"
  in
  Alcotest.(check bool) "same final image" true (image a = image b);
  Alcotest.(check bool) "same gc stats" true (stats_a = stats_b);
  Alcotest.(check bool) "same quarantine" true (quar_a = quar_b)

(* Touching every object on demand before the background collector gets
   to it must recover exactly what eager recovery recovers: same map
   contents, same heap image. *)
let test_on_demand_full_touch () =
  let a = crashed ~objects:2_000 ~seed:23 in
  let b = crashed ~objects:2_000 ~seed:23 in
  ignore (Machine.recover ~mode:Machine.Eager a : Machine.recovery);
  let rb = Machine.recover ~mode:Machine.Incremental_gc b in
  let inc = Option.get rb.Machine.gc_pending in
  let heap_b = Option.get rb.Machine.heap in
  let touched = ref 0 in
  Heap.iter_blocks heap_b (fun ~addr ~kind:_ ~words:_ ->
      if Heap_gc.Incremental.touch inc ~addr > 0 then incr touched);
  Alcotest.(check bool) "some objects recovered on demand" true (!touched > 0);
  ignore
    (Machine.finish_background_gc b
      : (Heap_gc.stats * Heap_gc.quarantine) option);
  Alcotest.(check bool) "same heap image" true (image a = image b);
  let dump m = List.sort compare (Machine.dump m) in
  Alcotest.(check (list (pair int int64)))
    "same map contents" (dump a) (dump b)

(* qcheck: for any (seed, size, on-demand sample), incremental recovery
   finishes on the eager image with a clean audit and the same verdict. *)
let prop_on_demand_equals_eager =
  QCheck2.Test.make ~count:8 ~name:"incremental recovery = eager recovery"
    QCheck2.Gen.(
      triple (int_range 1 500) (int_range 200 1_500) (int_range 0 40))
    (fun (seed, objects, touches) ->
      let eager = RS.run_cell ~variant ~objects ~mode:Machine.Eager ~seed () in
      let inc =
        RS.run_cell ~variant ~objects ~mode:Machine.Incremental_gc ~seed
          ~touches ()
      in
      eager.RS.image_hash = inc.RS.image_hash
      && eager.RS.verdict = inc.RS.verdict
      && eager.RS.heap_audit_ok && inc.RS.heap_audit_ok
      && inc.RS.outage_cycles < eager.RS.outage_cycles)

(* Allocation guard for the streamed mark loop: the Intset mark set and
   int-indexed frontier chunks keep the per-object minor-heap traffic
   bounded — a regression to boxed visited-sets or per-object closures
   shows up as words-per-object here long before it shows up in wall
   clock. *)
let test_mark_allocation_guard () =
  let objects = 20_000 in
  let m = crashed ~objects ~seed:31 in
  let r = Machine.recover ~mode:Machine.Incremental_gc m in
  let heap = Option.get r.Machine.heap in
  ignore
    (Machine.finish_background_gc m
      : (Heap_gc.stats * Heap_gc.quarantine) option);
  (* Steady-state measurement on the recovered heap: everything the
     collector needs is already faulted in. *)
  ignore (Heap_gc.collect_streamed heap : Heap_gc.stats * Heap_gc.quarantine);
  let w0 = Gc.minor_words () in
  let stats, _ = Heap_gc.collect_streamed heap in
  let dw = Gc.minor_words () -. w0 in
  let per_object = dw /. float_of_int (max 1 stats.Heap_gc.live_objects) in
  if per_object > 48. then
    Alcotest.failf
      "streamed mark allocates %.1f minor words per live object (%d live, \
       %.0f words total) — the mark loop is boxing again"
      per_object stats.Heap_gc.live_objects dw

let suite =
  ( "recovery_scaling",
    [
      Alcotest.test_case "parallel scan identical across job counts" `Quick
        test_jobs_identity;
      Alcotest.test_case "crash during incremental recovery is idempotent"
        `Quick test_incremental_crash_idempotent;
      Alcotest.test_case "on-demand touches recover the eager image" `Quick
        test_on_demand_full_touch;
      QCheck_alcotest.to_alcotest prop_on_demand_equals_eager;
      Alcotest.test_case "streamed mark minor-allocation guard" `Slow
        test_mark_allocation_guard;
    ] )
