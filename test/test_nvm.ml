(* Tests for the NVM device model: configuration, the two memory images,
   the cache model, the device itself, and the crash semantics that the
   whole reproduction rests on. *)

open Helpers
module Cache = Nvm.Cache
module Memory = Nvm.Memory
module Stats = Nvm.Stats
module Cost_model = Nvm.Cost_model

(* --- Config --- *)

let test_presets_valid () =
  List.iter
    (fun cfg ->
      match Config.validate cfg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" cfg.Config.name e)
    [ Config.desktop; Config.server; Config.test_small ]

let test_validate_rejects () =
  let bad f = { Config.test_small with Config.name = "bad" } |> f in
  let expect_error cfg =
    match Config.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected validation error"
  in
  expect_error (bad (fun c -> { c with Config.line_size = 48 }));
  expect_error (bad (fun c -> { c with Config.region_size = 100 }));
  expect_error (bad (fun c -> { c with Config.cache_ways = 0 }));
  expect_error (bad (fun c -> { c with Config.cache_lines = 17 }));
  expect_error (bad (fun c -> { c with Config.ghz = 0. }));
  expect_error (bad (fun c -> { c with Config.flush_cost = -1 }))

let test_with_region_size () =
  let c = Config.with_region_size Config.test_small 100 in
  Alcotest.(check int) "rounded to line" 128 c.Config.region_size;
  let c = Config.with_region_size Config.test_small 4096 in
  Alcotest.(check int) "exact multiple kept" 4096 c.Config.region_size

let test_n_sets () =
  Alcotest.(check int) "test_small sets" 8 (Config.n_sets Config.test_small);
  Alcotest.(check int) "desktop sets" 1024 (Config.n_sets Config.desktop)

(* --- Memory --- *)

let test_memory_roundtrip () =
  let m = Memory.create ~size:1024 in
  Memory.store m 64 0x1122334455667788L;
  Alcotest.check int64 "load back" 0x1122334455667788L (Memory.load m 64);
  Alcotest.check int64 "durable still zero" 0L (Memory.load_durable m 64)

let test_memory_alignment () =
  let m = Memory.create ~size:1024 in
  check_raises_invalid "misaligned" (fun () -> ignore (Memory.load m 12));
  check_raises_invalid "negative" (fun () -> ignore (Memory.load m (-8)));
  check_raises_invalid "past end" (fun () -> ignore (Memory.load m 1020))

let test_memory_write_back () =
  let m = Memory.create ~size:1024 in
  Memory.store m 64 7L;
  Memory.store m 72 8L;
  Memory.write_back m ~line_addr:64 ~len:64;
  Alcotest.check int64 "durable after wb" 7L (Memory.load_durable m 64);
  Alcotest.check int64 "same line too" 8L (Memory.load_durable m 72)

let test_memory_discard () =
  let m = Memory.create ~size:1024 in
  Memory.store m 0 1L;
  Memory.store m 64 2L;
  Memory.write_back m ~line_addr:0 ~len:64;
  Memory.discard_current m;
  Alcotest.check int64 "written-back survives" 1L (Memory.load m 0);
  Alcotest.check int64 "unwritten lost" 0L (Memory.load m 64)

let test_memory_diff_lines () =
  let m = Memory.create ~size:256 in
  Alcotest.(check (list int)) "clean" [] (Memory.diff_lines m ~line_size:64);
  Memory.store m 0 1L;
  Memory.store m 128 1L;
  Alcotest.(check (list int))
    "two dirty lines" [ 0; 128 ]
    (Memory.diff_lines m ~line_size:64);
  Memory.promote_all m;
  Alcotest.(check (list int)) "promoted" [] (Memory.diff_lines m ~line_size:64)

let test_memory_diff_lines_tail () =
  (* A region that is not a multiple of the line size: the trailing
     partial line must be compared over its own short range, not
     skipped.  104 bytes = one full 64-byte line + a 40-byte tail. *)
  let m = Memory.create ~size:104 in
  Alcotest.(check (list int)) "clean" [] (Memory.diff_lines m ~line_size:64);
  Memory.store m 96 1L (* last aligned word, inside the tail line *);
  Alcotest.(check (list int))
    "tail line reported" [ 64 ]
    (Memory.diff_lines m ~line_size:64);
  Memory.store m 0 2L;
  Alcotest.(check (list int))
    "full line and tail line" [ 0; 64 ]
    (Memory.diff_lines m ~line_size:64);
  Memory.promote_all m;
  Alcotest.(check (list int)) "promoted" [] (Memory.diff_lines m ~line_size:64)

let test_memory_blit_string () =
  let m = Memory.create ~size:256 in
  Memory.blit_string m 64 "\x01\x00\x00\x00\x00\x00\x00\x00";
  Alcotest.check int64 "current" 1L (Memory.load m 64);
  Alcotest.check int64 "durable too" 1L (Memory.load_durable m 64)

(* --- Cache --- *)

let make_cache ?(sets = 2) ?(ways = 2) () =
  let wb = ref [] in
  let c =
    Cache.create ~sets ~ways ~line_size:64 ~write_back:(fun a -> wb := a :: !wb)
  in
  (c, wb)

let test_cache_hit_miss () =
  let c, _ = make_cache () in
  Alcotest.(check int)
    "cold access misses clean" Cache.miss_clean
    (Cache.touch c ~addr:0 ~dirty:false);
  Alcotest.(check int)
    "same line hits" Cache.hit
    (Cache.touch c ~addr:8 ~dirty:false);
  (* The boxed shim decodes the same outcome. *)
  match Cache.touch_boxed c ~addr:16 ~dirty:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "boxed shim should agree on a hit"

let test_cache_dirty_tracking () =
  let c, _ = make_cache () in
  ignore (Cache.touch c ~addr:0 ~dirty:false);
  Alcotest.(check bool) "clean after load" false (Cache.is_dirty c ~addr:0);
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  Alcotest.(check bool) "dirty after store" true (Cache.is_dirty c ~addr:0);
  Alcotest.(check (list int)) "dirty list" [ 0 ] (Cache.dirty_lines c)

let test_cache_eviction_writes_back () =
  let c, wb = make_cache ~sets:1 ~ways:2 () in
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  ignore (Cache.touch c ~addr:64 ~dirty:true);
  Alcotest.(check (list int)) "no wb yet" [] !wb;
  (* Third distinct line in a 2-way set evicts the LRU (line 0). *)
  Alcotest.(check int)
    "expected dirty eviction" Cache.miss_dirty
    (Cache.touch c ~addr:128 ~dirty:false);
  Alcotest.(check (list int)) "line 0 written back" [ 0 ] !wb;
  Alcotest.(check bool) "line 0 gone" false (Cache.cached c ~addr:0);
  (* The boxed shim decodes the next eviction (dirty line 64) the same
     way. *)
  (match Cache.touch_boxed c ~addr:192 ~dirty:false with
  | Cache.Miss { evicted_dirty = true } -> ()
  | _ -> Alcotest.fail "boxed shim: expected dirty eviction");
  Alcotest.(check (list int)) "line 64 written back next" [ 64; 0 ] !wb

let test_cache_lru_order () =
  let c, wb = make_cache ~sets:1 ~ways:2 () in
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  ignore (Cache.touch c ~addr:64 ~dirty:true);
  (* Touch line 0 again: line 64 becomes LRU. *)
  ignore (Cache.touch c ~addr:0 ~dirty:false);
  ignore (Cache.touch c ~addr:128 ~dirty:false);
  Alcotest.(check (list int)) "LRU line 64 evicted" [ 64 ] !wb

let test_cache_flush_line () =
  let c, wb = make_cache () in
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  Alcotest.(check bool) "flush writes back" true (Cache.flush_line c ~addr:0);
  Alcotest.(check (list int)) "callback fired" [ 0 ] !wb;
  Alcotest.(check bool) "now clean" false (Cache.is_dirty c ~addr:0);
  Alcotest.(check bool) "still cached (clwb)" true (Cache.cached c ~addr:0);
  Alcotest.(check bool) "second flush no-op" false (Cache.flush_line c ~addr:0);
  Alcotest.(check bool) "uncached flush no-op" false
    (Cache.flush_line c ~addr:4096)

let test_cache_write_back_all () =
  let c, wb = make_cache ~sets:4 ~ways:2 () in
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  ignore (Cache.touch c ~addr:64 ~dirty:true);
  ignore (Cache.touch c ~addr:128 ~dirty:false);
  Alcotest.(check int) "two dirty rescued" 2 (Cache.write_back_all c);
  Alcotest.(check int) "both written" 2 (List.length !wb);
  Alcotest.(check (list int)) "nothing dirty" [] (Cache.dirty_lines c)

let test_cache_drop_all () =
  let c, wb = make_cache ~sets:4 ~ways:2 () in
  ignore (Cache.touch c ~addr:0 ~dirty:true);
  ignore (Cache.touch c ~addr:64 ~dirty:false);
  Alcotest.(check int) "one dirty lost" 1 (Cache.drop_all c);
  Alcotest.(check (list int)) "no write-back on drop" [] !wb;
  Alcotest.(check bool) "cache empty" false (Cache.cached c ~addr:64)

let test_cache_set_isolation () =
  (* Lines in different sets never evict each other. *)
  let c, wb = make_cache ~sets:2 ~ways:1 () in
  ignore (Cache.touch c ~addr:0 ~dirty:true) (* set 0 *);
  ignore (Cache.touch c ~addr:64 ~dirty:true) (* set 1 *);
  Alcotest.(check (list int)) "both resident" [] !wb;
  ignore (Cache.touch c ~addr:128 ~dirty:false) (* set 0 again *);
  Alcotest.(check (list int)) "only set-0 line evicted" [ 0 ] !wb;
  Alcotest.(check bool) "set-1 line untouched" true (Cache.cached c ~addr:64)

(* --- Pmem --- *)

let test_pmem_store_load () =
  let p = small_pmem () in
  Pmem.store p 128 42L;
  Alcotest.check int64 "load" 42L (Pmem.load p 128);
  Pmem.store_int p 136 7;
  Alcotest.(check int) "int helpers" 7 (Pmem.load_int p 136)

let test_pmem_cas () =
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 5L;
  Alcotest.(check bool) "cas ok" true
    (Pmem.cas p 0 ~expected:5L ~desired:6L);
  Alcotest.check int64 "updated" 6L (Pmem.load p 0);
  Alcotest.(check bool) "cas fail" false
    (Pmem.cas p 0 ~expected:5L ~desired:9L);
  Alcotest.check int64 "unchanged" 6L (Pmem.load p 0);
  let st = Pmem.stats p in
  Alcotest.(check int) "cas count" 2 st.Stats.cas_ops;
  Alcotest.(check int) "cas failures" 1 st.Stats.cas_failures;
  Alcotest.(check bool) "cas_int" true
    (Pmem.cas_int p 0 ~expected:6 ~desired:7)

let test_pmem_flush_durability () =
  let p = small_pmem () in
  Pmem.store p 64 9L;
  Alcotest.check int64 "not durable yet" 0L (Pmem.load_durable p 64);
  Pmem.flush p 64;
  Pmem.fence p;
  Alcotest.check int64 "durable after flush" 9L (Pmem.load_durable p 64)

let test_pmem_crash_rescue () =
  let p = small_pmem ~journal:true () in
  for i = 0 to 63 do
    Pmem.store p (i * 8) (Int64.of_int i)
  done;
  Pmem.crash p Pmem.Rescue;
  Alcotest.(check bool) "all stores durable" true
    (Pmem.durable_reflects_all_stores p);
  Alcotest.(check int) "no losses" 0 (Pmem.lost_store_count p)

let test_pmem_crash_discard () =
  let p = small_pmem ~journal:true () in
  (* One store, never evicted (nothing else touches its set): must die. *)
  Pmem.store p 0 123L;
  Pmem.crash p Pmem.Discard;
  Alcotest.(check bool) "store lost" false (Pmem.durable_reflects_all_stores p);
  Alcotest.check int64 "durable stale" 0L (Pmem.load_durable p 0)

let test_pmem_crash_then_ops_fail () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  Pmem.crash p Pmem.Rescue;
  Alcotest.check_raises "store after crash" Pmem.Crashed_device (fun () ->
      Pmem.store p 0 2L);
  Alcotest.check_raises "load after crash" Pmem.Crashed_device (fun () ->
      ignore (Pmem.load p 0));
  Alcotest.(check bool) "is_crashed" true (Pmem.is_crashed p)

let test_pmem_recover () =
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 11L;
  Pmem.crash p Pmem.Rescue;
  Pmem.recover p;
  Alcotest.(check bool) "usable again" false (Pmem.is_crashed p);
  Alcotest.check int64 "rescued value visible" 11L (Pmem.load p 0);
  Alcotest.(check (list (pair int int64))) "journal cleared" []
    (Pmem.store_history p)

let test_pmem_recover_discard_installs_durable () =
  let p = small_pmem () in
  Pmem.store p 0 5L;
  Pmem.flush p 0;
  Pmem.store p 0 6L (* dirty again, will be dropped *);
  Pmem.crash p Pmem.Discard;
  Pmem.recover p;
  Alcotest.check int64 "current = durable after recover" 5L (Pmem.load p 0)

let test_pmem_recover_requires_crash () =
  let p = small_pmem () in
  check_raises_invalid "recover uncrashed" (fun () -> Pmem.recover p)

(* crash_with: the adversarial fault-model spectrum.  test-small has
   64-byte lines (8 words), 16 cache lines in 8 sets. *)

let no_rng : int -> int =
 fun _ -> Alcotest.fail "this fault model must not consult the RNG"

let test_crash_with_full_rescue () =
  let p = small_pmem () in
  for i = 0 to 3 do
    Pmem.store p (i * 64) (Int64.of_int (i + 1))
  done;
  let d = Pmem.crash_with p ~fault:Nvm.Fault_model.Full_rescue ~rng:no_rng () in
  Alcotest.(check int) "rescued" 4 d.Pmem.rescued;
  Alcotest.(check int) "no drops" 0 d.Pmem.dropped;
  for i = 0 to 3 do
    Alcotest.check int64 "line durable"
      (Int64.of_int (i + 1))
      (Pmem.load_durable p (i * 64))
  done;
  Alcotest.(check bool) "device crashed" true (Pmem.is_crashed p)

let test_crash_with_full_discard () =
  let p = small_pmem () in
  Pmem.store p 0 123L;
  let d = Pmem.crash_with p ~fault:Nvm.Fault_model.Full_discard ~rng:no_rng () in
  Alcotest.(check int) "dropped" 1 d.Pmem.dropped;
  Alcotest.check int64 "durable stale" 0L (Pmem.load_durable p 0)

let test_crash_with_partial_rescue () =
  let p = small_pmem () in
  (* Four dirty lines; a budget of two rescues the two lowest-addressed
     ones, deterministically. *)
  for i = 0 to 3 do
    Pmem.store p (i * 64) (Int64.of_int (i + 1))
  done;
  let d =
    Pmem.crash_with p
      ~fault:(Nvm.Fault_model.Partial_rescue { energy_budget_j = 1e-3 })
      ~rescue_limit:2 ~rng:no_rng ()
  in
  Alcotest.(check int) "rescued" 2 d.Pmem.rescued;
  Alcotest.(check int) "dropped" 2 d.Pmem.dropped;
  Alcotest.check int64 "line 0 rescued" 1L (Pmem.load_durable p 0);
  Alcotest.check int64 "line 1 rescued" 2L (Pmem.load_durable p 64);
  Alcotest.check int64 "line 2 lost" 0L (Pmem.load_durable p 128);
  Alcotest.check int64 "line 3 lost" 0L (Pmem.load_durable p 192);
  let st = Pmem.stats p in
  Alcotest.(check int) "stats.rescued_lines" 2 st.Stats.rescued_lines;
  Alcotest.(check int) "stats.dropped_lines" 2 st.Stats.dropped_lines

let test_crash_with_partial_rescue_unbounded () =
  let p = small_pmem () in
  for i = 0 to 3 do
    Pmem.store p (i * 64) 7L
  done;
  let d =
    Pmem.crash_with p
      ~fault:(Nvm.Fault_model.Partial_rescue { energy_budget_j = 1.0 })
      ~rng:no_rng ()
  in
  Alcotest.(check int) "all rescued without a limit" 4 d.Pmem.rescued;
  Alcotest.(check int) "nothing dropped" 0 d.Pmem.dropped

let test_crash_with_torn_lines () =
  let p = small_pmem () in
  (* One dirty line holding words 10..17. *)
  for w = 0 to 7 do
    Pmem.store p (w * 8) (Int64.of_int (10 + w))
  done;
  (* prob 1.0 always tears; the word draw says 3 leading words land. *)
  let rng bound = if bound = 1_000_000 then 0 else 3 in
  let d =
    Pmem.crash_with p
      ~fault:(Nvm.Fault_model.Torn_lines { prob = 1.0 })
      ~rng ()
  in
  Alcotest.(check int) "torn" 1 d.Pmem.torn;
  Alcotest.(check int) "rescued" 0 d.Pmem.rescued;
  for w = 0 to 2 do
    Alcotest.check int64 "leading words durable"
      (Int64.of_int (10 + w))
      (Pmem.load_durable p (w * 8))
  done;
  for w = 3 to 7 do
    Alcotest.check int64 "trailing words stale" 0L (Pmem.load_durable p (w * 8))
  done

let test_crash_with_torn_zero_words_no_writeback () =
  (* A tear of zero words moves no bytes: it must count as torn damage
     but NOT as a write-back in the statistics ledger (a historical bug
     inflated [writebacks] here). *)
  let p = small_pmem () in
  Pmem.store p 0 7L;
  let wb_before = (Pmem.stats p).Stats.writebacks in
  let rng bound = if bound = 1_000_000 then 0 else 0 in
  let d =
    Pmem.crash_with p ~fault:(Nvm.Fault_model.Torn_lines { prob = 1.0 }) ~rng ()
  in
  Alcotest.(check int) "torn" 1 d.Pmem.torn;
  Alcotest.(check int) "no words landed" 0
    (Int64.to_int (Pmem.load_durable p 0));
  Alcotest.(check int)
    "zero-word tear is not a write-back" wb_before
    (Pmem.stats p).Stats.writebacks

let test_crash_with_torn_prob_zero_is_rescue () =
  let p = small_pmem () in
  Pmem.store p 0 9L;
  let rng bound = if bound = 1_000_000 then 0 else 0 in
  let d =
    Pmem.crash_with p ~fault:(Nvm.Fault_model.Torn_lines { prob = 0. }) ~rng ()
  in
  Alcotest.(check int) "nothing torn" 0 d.Pmem.torn;
  Alcotest.(check int) "rescued instead" 1 d.Pmem.rescued;
  Alcotest.check int64 "value durable" 9L (Pmem.load_durable p 0)

let test_crash_with_bit_rot () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  (* Scripted draws: flip bit 5 of word 1 and bit 9 of word 2. *)
  let k = ref 0 in
  let rng _bound =
    incr k;
    match !k with 1 -> 1 | 2 -> 5 | 3 -> 2 | _ -> 9
  in
  let d =
    Pmem.crash_with p ~fault:(Nvm.Fault_model.Bit_rot { flips = 2 }) ~rng ()
  in
  Alcotest.(check int) "flips recorded" 2 d.Pmem.bit_flips;
  Alcotest.(check int) "dirty line still rescued" 1 d.Pmem.rescued;
  Alcotest.check int64 "store survived the rescue" 1L (Pmem.load_durable p 0);
  Alcotest.check int64 "bit 5 of word 1 flipped" 32L (Pmem.load_durable p 8);
  Alcotest.check int64 "bit 9 of word 2 flipped" 512L (Pmem.load_durable p 16);
  Alcotest.(check int) "stats.flipped_bits" 2 (Pmem.stats p).Stats.flipped_bits

let test_crash_with_deterministic_rng () =
  (* The same seed-derived stream produces a bit-identical durable image,
     whichever model consumes it. *)
  let image fault =
    let p = small_pmem () in
    for i = 0 to 15 do
      Pmem.store p (i * 8 * 13 mod (64 * 1024 / 8 * 8)) (Int64.of_int i)
    done;
    let r = Rng.create ~seed:5 in
    let rng bound = Rng.int r bound in
    let d = Pmem.crash_with p ~fault ~rng () in
    (d, Pmem.durable_snapshot p)
  in
  List.iter
    (fun fault ->
      let d1, s1 = image fault in
      let d2, s2 = image fault in
      Alcotest.(check bool) "same damage" true (d1 = d2);
      Alcotest.(check bool) "same durable image" true (String.equal s1 s2))
    Nvm.Fault_model.reference

let test_crash_with_then_recover () =
  let p = small_pmem () in
  Pmem.store p 0 3L;
  ignore
    (Pmem.crash_with p ~fault:(Nvm.Fault_model.Torn_lines { prob = 0.5 })
       ~rng:(fun b -> b / 2) ()
      : Pmem.crash_damage);
  Alcotest.check_raises "ops fail while crashed" Pmem.Crashed_device (fun () ->
      Pmem.store p 0 4L);
  Pmem.recover p;
  Alcotest.(check bool) "usable again" false (Pmem.is_crashed p);
  Alcotest.check int64 "current = durable" (Pmem.load_durable p 0)
    (Pmem.load p 0)

let test_pmem_persist_all () =
  let p = small_pmem () in
  for i = 0 to 9 do
    Pmem.store p (i * 8) 1L
  done;
  Pmem.persist_all p;
  Alcotest.(check int) "nothing dirty" 0 (Pmem.dirty_line_count p);
  Pmem.crash p Pmem.Discard;
  Alcotest.check int64 "persisted survives discard" 1L (Pmem.load_durable p 0)

let test_pmem_step_hook () =
  let p = small_pmem () in
  let costs = ref [] in
  Pmem.set_step_hook p (fun ~cost -> costs := cost :: !costs);
  Pmem.store p 0 1L (* miss: store_cost + store_miss_extra = 6 *);
  Pmem.store p 0 2L (* hit: 1 *);
  ignore (Pmem.load p 0) (* hit: 1 *);
  Pmem.flush p 0 (* 20 *);
  Pmem.fence p (* 5 *);
  Pmem.charge p 100;
  Pmem.clear_step_hook p;
  Pmem.charge p 50 (* goes to the stats clock instead *);
  Alcotest.(check (list int)) "costs seen by hook" [ 100; 5; 20; 1; 1; 6 ]
    !costs;
  Alcotest.(check int) "clock without hook" 50 (Pmem.stats p).Stats.clock

let test_pmem_peek_costless () =
  let p = small_pmem () in
  Pmem.store p 0 3L;
  let before = Stats.total_ops (Pmem.stats p) in
  Alcotest.check int64 "peek value" 3L (Pmem.peek p 0);
  Alcotest.(check int) "no ops recorded" before (Stats.total_ops (Pmem.stats p))

let test_pmem_journal_history () =
  let p = small_pmem ~journal:true () in
  Pmem.store p 0 1L;
  Pmem.store p 8 2L;
  Pmem.store p 0 3L;
  Alcotest.(check (list (pair int int64)))
    "history in order"
    [ (0, 1L); (8, 2L); (0, 3L) ]
    (Pmem.store_history p)

let test_pmem_eviction_preserves_data () =
  (* Write more distinct lines than the cache holds: evictions must land
     in the durable image, so a Discard crash keeps the evicted ones. *)
  let p = small_pmem ~journal:true () in
  let lines = Config.test_small.Config.cache_lines * 4 in
  for i = 0 to lines - 1 do
    Pmem.store p (i * 64) (Int64.of_int (i + 1))
  done;
  let st = Pmem.stats p in
  Alcotest.(check bool) "evictions happened" true (st.Stats.writebacks > 0);
  Pmem.crash p Pmem.Discard;
  let survived = lines - Pmem.lost_store_count p in
  Alcotest.(check bool)
    (Printf.sprintf "most lines survived via eviction (%d/%d)" survived lines)
    true
    (survived >= lines - Config.test_small.Config.cache_lines)

let test_stats_reset_and_hit_rate () =
  let p = small_pmem () in
  Pmem.store p 0 1L;
  ignore (Pmem.load p 0);
  let st = Pmem.stats p in
  Alcotest.(check bool) "hit rate 0.5" true (abs_float (Stats.hit_rate st -. 0.5) < 1e-9);
  Stats.reset st;
  Alcotest.(check int) "reset" 0 (Stats.total_ops st);
  Alcotest.(check bool) "hit rate nan" true (Float.is_nan (Stats.hit_rate st))

let test_cost_model () =
  Alcotest.(check bool) "seconds" true
    (abs_float (Cost_model.seconds Config.desktop ~cycles:3_400_000_000 -. 1.0)
     < 1e-9);
  let m =
    Cost_model.miter_per_sec Config.desktop ~iterations:3_660_000
      ~cycles:3_400_000_000
  in
  Alcotest.(check bool) "miter" true (abs_float (m -. 3.66) < 1e-6);
  Alcotest.(check string) "pp kcy" "1.50 kcy"
    (Format.asprintf "%a" Cost_model.pp_cycles 1500)

(* --- properties --- *)

let prop_rescue_preserves_everything =
  qcheck ~count:100 "crash Rescue preserves every store"
    QCheck2.Gen.(list_size (int_range 1 200) (pair (int_range 0 255) (int_range 0 10_000)))
    (fun ops ->
      let p = small_pmem ~journal:true () in
      List.iter (fun (slot, v) -> Pmem.store p (slot * 8) (Int64.of_int v)) ops;
      Pmem.crash p Pmem.Rescue;
      Pmem.durable_reflects_all_stores p)

let prop_discard_is_per_word_prefix =
  qcheck ~count:100 "crash Discard leaves each word at some prior value"
    QCheck2.Gen.(list_size (int_range 1 300) (pair (int_range 0 63) (int_range 1 10_000)))
    (fun ops ->
      let p = small_pmem ~journal:true () in
      List.iter (fun (slot, v) -> Pmem.store p (slot * 8) (Int64.of_int v)) ops;
      Pmem.crash p Pmem.Discard;
      (* For every touched word, the durable value is either the initial
         zero or one of the values stored to that word. *)
      List.for_all
        (fun (slot, _) ->
          let durable = Pmem.load_durable p (slot * 8) in
          Int64.equal durable 0L
          || List.exists
               (fun (s, v) -> s = slot && Int64.equal durable (Int64.of_int v))
               ops)
        ops)

let suite =
  ( "nvm",
    [
      case "config: presets valid" test_presets_valid;
      case "config: validate rejects bad geometry" test_validate_rejects;
      case "config: with_region_size rounds up" test_with_region_size;
      case "config: n_sets" test_n_sets;
      case "memory: store/load roundtrip" test_memory_roundtrip;
      case "memory: alignment and bounds" test_memory_alignment;
      case "memory: write_back copies a line" test_memory_write_back;
      case "memory: discard_current drops unsaved data" test_memory_discard;
      case "memory: diff_lines and promote_all" test_memory_diff_lines;
      case "memory: diff_lines covers a trailing partial line"
        test_memory_diff_lines_tail;
      case "memory: blit_string writes both images" test_memory_blit_string;
      case "cache: hit after miss" test_cache_hit_miss;
      case "cache: dirty bit tracking" test_cache_dirty_tracking;
      case "cache: eviction writes dirty victim back"
        test_cache_eviction_writes_back;
      case "cache: LRU victim selection" test_cache_lru_order;
      case "cache: flush_line clwb semantics" test_cache_flush_line;
      case "cache: write_back_all rescues all dirty" test_cache_write_back_all;
      case "cache: drop_all loses dirty silently" test_cache_drop_all;
      case "cache: sets are independent" test_cache_set_isolation;
      case "pmem: store/load" test_pmem_store_load;
      case "pmem: cas atomically succeeds/fails" test_pmem_cas;
      case "pmem: flush makes a line durable" test_pmem_flush_durability;
      case "pmem: Rescue crash keeps all stores" test_pmem_crash_rescue;
      case "pmem: Discard crash loses cached stores" test_pmem_crash_discard;
      case "pmem: operations fail after crash" test_pmem_crash_then_ops_fail;
      case "pmem: recover restores service" test_pmem_recover;
      case "pmem: recover installs the durable image"
        test_pmem_recover_discard_installs_durable;
      case "pmem: recover requires a crash" test_pmem_recover_requires_crash;
      case "pmem: crash_with full-rescue saves every line"
        test_crash_with_full_rescue;
      case "pmem: crash_with full-discard loses dirty lines"
        test_crash_with_full_discard;
      case "pmem: crash_with partial rescue honours the line budget"
        test_crash_with_partial_rescue;
      case "pmem: crash_with partial rescue without a limit rescues all"
        test_crash_with_partial_rescue_unbounded;
      case "pmem: crash_with tears a word prefix" test_crash_with_torn_lines;
      case "pmem: zero-word tear does not count as a write-back"
        test_crash_with_torn_zero_words_no_writeback;
      case "pmem: crash_with torn prob 0 degenerates to rescue"
        test_crash_with_torn_prob_zero_is_rescue;
      case "pmem: crash_with bit rot flips scripted bits"
        test_crash_with_bit_rot;
      case "pmem: crash_with is a pure function of the RNG stream"
        test_crash_with_deterministic_rng;
      case "pmem: crash_with marks the device crashed until recover"
        test_crash_with_then_recover;
      case "pmem: persist_all empties the cache" test_pmem_persist_all;
      case "pmem: step hook sees per-op costs" test_pmem_step_hook;
      case "pmem: peek is free" test_pmem_peek_costless;
      case "pmem: journal records history in order" test_pmem_journal_history;
      case "pmem: natural eviction preserves data across Discard"
        test_pmem_eviction_preserves_data;
      case "stats: reset and hit rate" test_stats_reset_and_hit_rate;
      case "cost model conversions" test_cost_model;
      prop_rescue_preserves_everything;
      prop_discard_is_per_word_prefix;
    ] )
