(* The zero-allocation fast path, checked from two directions:

   - equivalence: random load/store/flush/drop traces driven through the
     production SoA cache (both its unboxed [touch] and the retained
     boxed shim) and through [Reference_cache], the verbatim pre-SoA
     record implementation.  Every observable — access outcome,
     write-back sequence, dirty set, residency — must agree at every
     step.
   - allocation: a long store/load/cas loop through the [_int] device
     operations must not allocate on the minor heap, measured with
     [Gc.minor_words].

   Plus direct unit tests for [Atlas.Intset], the open-addressed set
   behind the runtime's per-store bookkeeping. *)

open Helpers
module Cache = Nvm.Cache
module Intset = Atlas.Intset

(* --- SoA cache vs the reference model --- *)

(* One step of a random trace.  Addresses are word-aligned slots into a
   region spanning 32 lines over a 4-set * 2-way cache, so evictions,
   set conflicts and re-touches all happen constantly. *)
type op =
  | Touch of int * bool
  | Flush of int
  | Write_back_all
  | Drop_all

let op_gen =
  QCheck2.Gen.(
    let addr = map (fun slot -> slot * 8) (int_range 0 255) in
    frequency
      [
        (6, map2 (fun a d -> Touch (a, d)) addr bool);
        (2, map (fun a -> Flush a) addr);
        (1, return Write_back_all);
        (1, return Drop_all);
      ])

let code_of_ref = function
  | Reference_cache.Hit -> Cache.hit
  | Reference_cache.Miss { evicted_dirty = false } -> Cache.miss_clean
  | Reference_cache.Miss { evicted_dirty = true } -> Cache.miss_dirty

let code_of_boxed = function
  | Cache.Hit -> Cache.hit
  | Cache.Miss { evicted_dirty = false } -> Cache.miss_clean
  | Cache.Miss { evicted_dirty = true } -> Cache.miss_dirty

let prop_soa_matches_reference =
  qcheck ~count:300 "SoA cache == record-based reference on random traces"
    QCheck2.Gen.(list_size (int_range 1 400) op_gen)
    (fun ops ->
      let wb_soa = ref [] and wb_box = ref [] and wb_ref = ref [] in
      let soa =
        Cache.create ~sets:4 ~ways:2 ~line_size:64 ~write_back:(fun a ->
            wb_soa := a :: !wb_soa)
      in
      let box =
        Cache.create ~sets:4 ~ways:2 ~line_size:64 ~write_back:(fun a ->
            wb_box := a :: !wb_box)
      in
      let reference =
        Reference_cache.create ~sets:4 ~ways:2 ~line_size:64
          ~write_back:(fun a -> wb_ref := a :: !wb_ref)
      in
      let check_op op =
        (match op with
        | Touch (addr, dirty) ->
            let c = Cache.touch soa ~addr ~dirty in
            let b = code_of_boxed (Cache.touch_boxed box ~addr ~dirty) in
            let r = code_of_ref (Reference_cache.touch reference ~addr ~dirty) in
            if c <> r || b <> r then
              QCheck2.Test.fail_reportf
                "touch %d dirty:%b diverged: soa=%d boxed=%d ref=%d" addr dirty
                c b r
        | Flush addr ->
            let c = Cache.flush_line soa ~addr in
            let b = Cache.flush_line box ~addr in
            let r = Reference_cache.flush_line reference ~addr in
            if c <> r || b <> r then
              QCheck2.Test.fail_reportf "flush %d diverged" addr
        | Write_back_all ->
            let c = Cache.write_back_all soa in
            let b = Cache.write_back_all box in
            let r = Reference_cache.write_back_all reference in
            if c <> r || b <> r then
              QCheck2.Test.fail_reportf "write_back_all diverged: %d/%d/%d" c b
                r
        | Drop_all ->
            let c = Cache.drop_all soa in
            let b = Cache.drop_all box in
            let r = Reference_cache.drop_all reference in
            if c <> r || b <> r then
              QCheck2.Test.fail_reportf "drop_all diverged: %d/%d/%d" c b r);
        (* Invariants after every step. *)
        if Cache.dirty_count soa <> Reference_cache.dirty_count reference then
          QCheck2.Test.fail_reportf "dirty_count diverged";
        let a = match op with Touch (a, _) | Flush a -> a | _ -> 0 in
        if Cache.cached soa ~addr:a <> Reference_cache.cached reference ~addr:a
        then QCheck2.Test.fail_reportf "cached %d diverged" a;
        if
          Cache.is_dirty soa ~addr:a
          <> Reference_cache.is_dirty reference ~addr:a
        then QCheck2.Test.fail_reportf "is_dirty %d diverged" a
      in
      List.iter check_op ops;
      !wb_soa = !wb_ref && !wb_box = !wb_ref
      && Cache.dirty_lines soa = Reference_cache.dirty_lines reference
      && Cache.dirty_lines box = Reference_cache.dirty_lines reference)

(* --- allocation regression --- *)

(* The device's int-typed operations must perform zero minor-heap
   allocation once warm.  [Gc.minor_words ()] itself boxes a float, so
   the assertion is per-op with a generous constant slack: 10_000 ops
   must allocate fewer than 100 words in total (any boxing bug costs
   >= 2 words per op = 20_000). *)
let test_zero_alloc_loop () =
  let p = desktop_pmem ~region_mib:1 () in
  let ops = 10_000 in
  let body () =
    let acc = ref 0 in
    for i = 0 to ops - 1 do
      let addr = i * 8 land 0xFFF8 in
      Pmem.store_int p addr i;
      acc := !acc + Pmem.load_int p addr;
      if i land 1023 = 0 then
        ignore (Pmem.cas_int p addr ~expected:i ~desired:(i + 1) : bool)
    done;
    !acc
  in
  ignore (body () : int) (* warm up: fault in any lazy setup *);
  let before = Gc.minor_words () in
  let acc = body () in
  let after = Gc.minor_words () in
  let words = after -. before in
  Alcotest.(check bool)
    (Printf.sprintf "minor words for %d ops: %.0f (acc %d)" ops words acc)
    true
    (words < 100.)

(* The boxed A/B path exists precisely to allocate like the historical
   implementation: sanity-check that it still does, so the benchmark's
   comparison stays meaningful. *)
let test_boxed_path_allocates () =
  let p = desktop_pmem ~region_mib:1 () in
  Pmem.set_boxed_access p true;
  let ops = 10_000 in
  let body () =
    for i = 0 to ops - 1 do
      let addr = i * 8 land 0xFFF8 in
      Pmem.store_int p addr i;
      ignore (Pmem.load_int p addr : int)
    done
  in
  body ();
  let before = Gc.minor_words () in
  body ();
  let after = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "boxed path allocates (%.0f words)" (after -. before))
    true
    (after -. before > float_of_int ops)

(* Boxed and unboxed paths are observationally identical: same values,
   same statistics. *)
let test_boxed_unboxed_same_stats () =
  let run boxed =
    let p = small_pmem () in
    Pmem.set_boxed_access p boxed;
    for i = 0 to 999 do
      let addr = i * 64 land 0xFFF8 in
      Pmem.store_int p addr i;
      ignore (Pmem.load_int p addr : int);
      ignore (Pmem.cas_int p addr ~expected:i ~desired:(i + 1) : bool)
    done;
    let st = Pmem.stats p in
    ( st.Nvm.Stats.clock,
      Nvm.Stats.total_ops st,
      st.Nvm.Stats.writebacks,
      Pmem.durable_snapshot p )
  in
  let c1, o1, w1, s1 = run false and c2, o2, w2, s2 = run true in
  Alcotest.(check int) "same clock" c1 c2;
  Alcotest.(check int) "same ops" o1 o2;
  Alcotest.(check int) "same writebacks" w1 w2;
  Alcotest.(check bool) "same durable image" true (String.equal s1 s2)

(* --- Intset --- *)

let test_intset_basics () =
  let s = Intset.create ~capacity:8 () in
  Alcotest.(check bool) "empty" false (Intset.mem s 0);
  Alcotest.(check bool) "first add" true (Intset.add s 64);
  Alcotest.(check bool) "second add is a no-op" false (Intset.add s 64);
  Alcotest.(check bool) "mem" true (Intset.mem s 64);
  Alcotest.(check int) "cardinal" 1 (Intset.cardinal s);
  Intset.clear s;
  Alcotest.(check bool) "cleared" false (Intset.mem s 64);
  Alcotest.(check int) "cardinal 0" 0 (Intset.cardinal s);
  Alcotest.(check bool) "re-add after clear" true (Intset.add s 64)

let test_intset_growth_and_order () =
  let s = Intset.create ~capacity:8 () in
  (* Line-like addresses (multiples of 64) force the hash to mix high
     bits; push far past the initial capacity. *)
  for i = 0 to 999 do
    Alcotest.(check bool) "insert fresh" true (Intset.add s (i * 64))
  done;
  Alcotest.(check int) "cardinal" 1000 (Intset.cardinal s);
  for i = 0 to 999 do
    Alcotest.(check bool) "still present" true (Intset.mem s (i * 64))
  done;
  (* Iteration is insertion order, regardless of growth history. *)
  let seen = ref [] in
  Intset.iter (fun x -> seen := x :: !seen) s;
  let expected = List.init 1000 (fun i -> (999 - i) * 64) in
  Alcotest.(check (list int)) "insertion order" expected !seen

let prop_intset_matches_hashtbl =
  qcheck ~count:200 "Intset == Hashtbl on random add/clear traces"
    QCheck2.Gen.(
      list_size (int_range 1 300)
        (frequency
           [ (10, map (fun x -> `Add (x * 8)) (int_range 0 500)); (1, return `Clear) ]))
    (fun ops ->
      let s = Intset.create ~capacity:8 () in
      let h = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | `Add x ->
              let fresh = not (Hashtbl.mem h x) in
              Hashtbl.replace h x ();
              Intset.add s x = fresh
              && Intset.mem s x
              && Intset.cardinal s = Hashtbl.length h
          | `Clear ->
              Hashtbl.reset h;
              Intset.clear s;
              Intset.cardinal s = 0)
        ops)

let suite =
  ( "hotpath",
    [
      prop_soa_matches_reference;
      case "device int ops allocate nothing" test_zero_alloc_loop;
      case "boxed A/B path still allocates" test_boxed_path_allocates;
      case "boxed and unboxed paths agree on stats and bytes"
        test_boxed_unboxed_same_stats;
      case "intset: add/mem/clear" test_intset_basics;
      case "intset: growth keeps members and order" test_intset_growth_and_order;
      prop_intset_matches_hashtbl;
    ] )
