(* End-to-end determinism guarantees introduced by the perf overhaul:
   the scheduler's uncontended fast path and the multicore sweep
   execution must both be invisible in every simulated observable. *)

open Helpers
module Stats = Nvm.Stats
module Mutex = Scheduler.Mutex
module Sweeps = Workload.Sweeps
module Table1 = Workload.Table1

(* A small mixed workload: contended phase (two threads through a mutex)
   followed by a long uncontended tail, with cost jitter so the RNG
   stream matters.  Returns every observable of the run. *)
let mini_run ~slice =
  let pmem = desktop_pmem ~region_mib:1 () in
  let sched =
    Scheduler.create ~seed:7 ~cost_jitter:3 ~deterministic_slice:slice ()
  in
  let m = Mutex.create sched in
  let body tid () =
    for i = 0 to 399 do
      Mutex.lock m;
      let addr = (i * 64) land 0xFFFF in
      Pmem.store_int pmem addr ((tid * 100_000) + i);
      ignore (Pmem.load_int pmem addr : int);
      if i land 63 = 0 then begin
        Pmem.flush pmem addr;
        Pmem.fence pmem
      end;
      Mutex.unlock m
    done;
    (* Uncontended tail for thread 0 only: exercises the fast path. *)
    if tid = 0 then
      for i = 0 to 1_999 do
        Pmem.store_int pmem ((i * 8) land 0xFFFF) i
      done
  in
  ignore (Scheduler.spawn sched ~name:"t0" (body 0) : int);
  ignore (Scheduler.spawn sched ~name:"t1" (body 1) : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | _ -> Alcotest.fail "expected completion");
  Pmem.clear_step_hook pmem;
  ( Pmem.stats pmem,
    Pmem.durable_snapshot pmem,
    Scheduler.elapsed_cycles sched,
    Scheduler.total_steps sched )

let test_fast_path_invisible () =
  let stats_on, durable_on, cycles_on, steps_on =
    mini_run ~slice:Scheduler.default_slice
  in
  let stats_off, durable_off, cycles_off, steps_off = mini_run ~slice:0 in
  Alcotest.(check int) "elapsed cycles" cycles_off cycles_on;
  Alcotest.(check int) "total steps" steps_off steps_on;
  Alcotest.(check bool)
    "all device counters identical" true
    (stats_on = stats_off);
  Alcotest.(check int)
    "total cycles identical"
    (Stats.total_cycles stats_off)
    (Stats.total_cycles stats_on);
  Alcotest.(check bool)
    "final durable bytes identical" true
    (String.equal durable_on durable_off)

let test_fast_path_invisible_under_crash () =
  (* The crash window must open at the same step either way, leaving the
     same durable image. *)
  let crashed ~slice =
    let pmem = desktop_pmem ~region_mib:1 () in
    let sched = Scheduler.create ~seed:11 ~deterministic_slice:slice () in
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 0 to 9_999 do
             Pmem.store_int pmem ((i * 8) land 0xFFFF) i
           done)
        : int);
    Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
    let outcome = Scheduler.run ~crash_at_step:1234 sched in
    Pmem.clear_step_hook pmem;
    (match outcome with
    | Scheduler.Crashed { at_step } ->
        Alcotest.(check int) "crash step" 1234 at_step
    | _ -> Alcotest.fail "expected a crash");
    Pmem.crash pmem Pmem.Rescue;
    Pmem.durable_snapshot pmem
  in
  Alcotest.(check bool)
    "post-crash durable image identical" true
    (String.equal (crashed ~slice:Scheduler.default_slice) (crashed ~slice:0))

let test_sweep_jobs_invariant () =
  let sweep jobs =
    Sweeps.flush_latency ~iterations:40 ~latencies:[ 100; 400 ] ~jobs ()
  in
  let s1 = sweep 1 and s4 = sweep 4 in
  Alcotest.(check bool) "flush-latency sweep: jobs 1 = jobs 4" true (s1 = s4)

let test_table1_jobs_invariant () =
  let row jobs =
    Table1.run_row ~threads:2 ~iterations:120 ~repeats:2 ~jobs
      Nvm.Config.desktop Table1.paper_desktop
  in
  let extract (r : Table1.row) =
    List.map
      (fun (c : Table1.cell) ->
        ( c.Table1.measured_miters,
          c.Table1.spread_miters,
          c.Table1.result.Workload.Runner.elapsed_cycles ))
      r.Table1.cells
  in
  Alcotest.(check bool)
    "table1 row: jobs 1 = jobs 4" true
    (extract (row 1) = extract (row 4))

let test_fault_campaign_jobs_invariant () =
  (* An exhaustive crash-point campaign must render byte-identically no
     matter how the runs are fanned out — per fault model, including the
     RNG-driven adversarial ones (their randomness is seed-derived per
     run, never drawn from a shared stream during the fan-out). *)
  let module FI = Workload.Fault_injector in
  let module FM = Nvm.Fault_model in
  let base =
    let platform =
      { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 }
    in
    {
      (Workload.Runner.calibrated_config platform) with
      Workload.Runner.variant = Workload.Runner.Mutex_map Atlas.Mode.Log_only;
      workload = Workload.Runner.Counters { h_keys = 256; preload = true };
      threads = 4;
      iterations = 60;
      n_buckets = 512;
      log_mib = 1;
    }
  in
  List.iter
    (fun fm ->
      let spec =
        {
          (FI.default_spec base) with
          FI.fault_models = [ Some fm ];
          exhaustive = Some { FI.from_step = 2_000; window = 600; stride = 150 };
        }
      in
      let render jobs = Fmt.str "%a" FI.pp_summary (FI.run ~jobs spec) in
      Alcotest.(check bool)
        (FM.to_string fm ^ ": jobs 1 = jobs 4")
        true
        (String.equal (render 1) (render 4)))
    FM.reference

let suite =
  ( "determinism",
    [
      case "scheduler fast path is observationally invisible"
        test_fast_path_invisible;
      case "fast path invisible across a crash" test_fast_path_invisible_under_crash;
      case "sweep results independent of --jobs" test_sweep_jobs_invariant;
      case "table1 results independent of --jobs" test_table1_jobs_invariant;
      slow_case "exhaustive fault campaigns independent of --jobs"
        test_fault_campaign_jobs_invariant;
    ] )
