(* The pre-SoA record-based cache model, retained verbatim as an
   executable reference.  The production [Nvm.Cache] now stores tags,
   stamps and dirty bits in flat arrays and returns unboxed int codes;
   this module keeps the original way-record implementation so a
   property test can drive both with the same random traces and demand
   identical observable behaviour (access outcomes, write-back
   sequences, dirty sets).  Do not "improve" this file: its value is
   that it is the old code. *)

type way = { mutable tag : int; mutable dirty : bool; mutable stamp : int }
(* [tag] is the line number (addr / line_size), or -1 when the way is
   empty.  [stamp] implements LRU: lower stamp = least recently used. *)

type t = {
  sets : way array array;
  line_size : int;
  line_shift : int;  (* log2 line_size: addr lsr line_shift = line *)
  n_sets : int;
  set_mask : int;  (* n_sets - 1: line land set_mask = set index *)
  write_back : int -> unit;
  mutable tick : int;
  mutable n_dirty : int;
      (* incremental count of dirty ways; every dirty-bit transition
         below must keep it in sync so [dirty_count] stays O(1) *)
}

type access = Hit | Miss of { evicted_dirty : bool }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  let rec go shift = if 1 lsl shift >= n then shift else go (shift + 1) in
  go 0

let create ~sets ~ways ~line_size ~write_back =
  if not (is_power_of_two line_size) then
    Fmt.invalid_arg "Cache.create: line_size %d not a power of two" line_size;
  if not (is_power_of_two sets) then
    Fmt.invalid_arg "Cache.create: set count %d not a power of two" sets;
  let make_set _ =
    Array.init ways (fun _ -> { tag = -1; dirty = false; stamp = 0 })
  in
  {
    sets = Array.init sets make_set;
    line_size;
    line_shift = log2_exact line_size;
    n_sets = sets;
    set_mask = sets - 1;
    write_back;
    tick = 0;
    n_dirty = 0;
  }

let line_of t addr = addr lsr t.line_shift
let set_of t line = line land t.set_mask

let find_way t line =
  let set = t.sets.(set_of t line) in
  let rec go i =
    if i >= Array.length set then None
    else if set.(i).tag = line then Some set.(i)
    else go (i + 1)
  in
  go 0

let next_stamp t =
  t.tick <- t.tick + 1;
  t.tick

let lru_way set =
  let best = ref set.(0) in
  Array.iter (fun w -> if w.stamp < !best.stamp then best := w) set;
  !best

let touch t ~addr ~dirty =
  let line = line_of t addr in
  match find_way t line with
  | Some w ->
      w.stamp <- next_stamp t;
      if dirty && not w.dirty then begin
        w.dirty <- true;
        t.n_dirty <- t.n_dirty + 1
      end;
      Hit
  | None ->
      let set = t.sets.(set_of t line) in
      let victim = lru_way set in
      let evicted_dirty = victim.tag >= 0 && victim.dirty in
      if evicted_dirty then begin
        t.write_back (victim.tag lsl t.line_shift);
        t.n_dirty <- t.n_dirty - 1
      end;
      victim.tag <- line;
      victim.dirty <- dirty;
      if dirty then t.n_dirty <- t.n_dirty + 1;
      victim.stamp <- next_stamp t;
      Miss { evicted_dirty }

let flush_line t ~addr =
  let line = line_of t addr in
  match find_way t line with
  | Some w when w.dirty ->
      t.write_back (line lsl t.line_shift);
      w.dirty <- false;
      t.n_dirty <- t.n_dirty - 1;
      true
  | Some _ | None -> false

let dirty_count t = t.n_dirty

let dirty_lines t =
  let acc = ref [] in
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          if w.tag >= 0 && w.dirty then acc := (w.tag lsl t.line_shift) :: !acc)
        set)
    t.sets;
  List.sort compare !acc

let write_back_all t =
  let n = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          if w.tag >= 0 && w.dirty then begin
            t.write_back (w.tag lsl t.line_shift);
            w.dirty <- false;
            incr n
          end)
        set)
    t.sets;
  t.n_dirty <- 0;
  !n

let drop_all t =
  let lost = ref 0 in
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          if w.tag >= 0 && w.dirty then incr lost;
          w.tag <- -1;
          w.dirty <- false;
          w.stamp <- 0)
        set)
    t.sets;
  t.n_dirty <- 0;
  !lost

let cached t ~addr = Option.is_some (find_way t (line_of t addr))

let is_dirty t ~addr =
  match find_way t (line_of t addr) with
  | Some w -> w.dirty
  | None -> false
